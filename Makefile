GO ?= go

.PHONY: all vet build test race ci bench bench-fault clean

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the full gate: everything a change must pass before merging.
ci: vet build test race

bench:
	$(GO) test -bench=. -benchmem .

# bench-fault guards the zero-overhead claim of the fault-injected
# collect path: no-fault-layer and zero-rate-faults must be within
# noise of each other.
bench-fault:
	$(GO) test -run xxx -bench BenchmarkCollectFaultOverhead -benchtime 20x .

clean:
	$(GO) clean ./...
