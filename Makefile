GO ?= go

.PHONY: all vet build fmt-check lint staticgate lockgraph test race conform conform-mutate fuzz cover ci bench bench-fault bench-trace bench-obs bench-cost bench-ci profile serve-smoke obs-slo clean

# BENCHMD, when set, makes every benchcheck invocation append its
# markdown results table (benchmark, ns/op, gate, verdict) to that
# file; CI points it at $GITHUB_STEP_SUMMARY.
BENCHMD_FLAG = $(if $(BENCHMD),-md '$(BENCHMD)')

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# fmt-check fails (listing the files) if anything is not gofmt-clean.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# lint runs the repo-local style gate (see cmd/lintgate): gofmt
# cleanliness and the file-level rules (no unsafe, tracked t.Skip).
lint:
	$(GO) run ./cmd/lintgate .

# staticgate runs the type-aware whole-program gate (see
# internal/staticlint): wall-clock and randomness confinement, error
# handling, float comparisons, context propagation, mutex hygiene,
# obs naming, and the determinism proof over the named root set. The
# committed baseline may only shrink, and the zero budget keeps it
# empty.
staticgate:
	$(GO) run ./cmd/staticgate -baseline .staticgate-baseline.json -baseline-budget 0 .

# lockgraph writes the whole-program lock-acquisition graph as
# lockgraph.json and lockgraph.dot (render with `dot -Tsvg`). Both
# encodings are byte-stable for a given tree; CI uploads them as
# artifacts so any ordering change is reviewable as a plain diff.
lockgraph:
	$(GO) run ./cmd/staticgate -only lockorder -lockgraph lockgraph .
	@echo "wrote lockgraph.json lockgraph.dot"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# conform runs the differential conformance engine (see
# internal/conform) twice with the standard budget and requires the two
# JSON reports to be bit-identical: one run proves the tree conforms,
# the comparison proves the engine itself is deterministic.
conform:
	$(GO) run ./cmd/conform -trials 200 -seed 1 -o conform-a.json
	$(GO) run ./cmd/conform -trials 200 -seed 1 -o conform-b.json 2>/dev/null
	cmp conform-a.json conform-b.json
	@rm -f conform-a.json conform-b.json

# conform-mutate is the engine's own sanity check: every deliberate bug
# behind the conformmutate build tag must be caught by a named property
# or by the differential pillar (-v so the shrunk counterexample and its
# reproduction seed are visible in the log).
conform-mutate:
	$(GO) test -tags conformmutate ./internal/conform -run TestMutation -v

# fuzz runs every fuzz target briefly; long exploratory sessions should
# raise -fuzztime by hand. Minimization is capped so a short budget is
# spent fuzzing rather than shrinking interesting inputs.
FUZZTIME ?= 15s
fuzz:
	$(GO) test ./internal/conform -run '^$$' -fuzz '^FuzzConformTrial$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 5s
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzFingerprint$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 5s
	$(GO) test ./internal/tracecache -run '^$$' -fuzz '^FuzzEntryDecode$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 5s

# cover enforces statement-coverage floors on the packages carrying the
# study's correctness burden (see cmd/covercheck). Floors sit a few
# points under current coverage: the gate catches collapses, not drift.
cover:
	$(GO) test -cover ./... > cover.out || { cat cover.out; rm -f cover.out; exit 1; }
	$(GO) run ./cmd/covercheck -in cover.out \
		-floor gpuport/internal/apps,90 \
		-floor gpuport/internal/conform,88 \
		-floor gpuport/internal/cost,92 \
		-floor gpuport/internal/cost/columnar,95 \
		-floor gpuport/internal/irgl,89 \
		-floor gpuport/internal/obs/tsdb,90 \
		-floor gpuport/internal/server,85 \
		-floor gpuport/internal/staticlint,92
	@rm -f cover.out

# ci is the full gate: everything a change must pass before merging.
ci: vet build fmt-check lint staticgate test race conform conform-mutate cover

# serve-smoke boots gpuportd, drives a full campaign over real HTTP,
# polls it to completion and diffs the served CSV against the gpuport
# CLI's dataset for the same seed - the end-to-end proof that the
# daemon is a pure transport. A second overlapping campaign exercises
# the shared trace cache. Leaves gpuportd-metrics.prom,
# gpuportd-obs-trace.json and the live gpuportd-stream.ndjson telemetry
# capture behind for upload (and for obs-slo).
serve-smoke:
	./scripts/serve_smoke.sh

# obs-slo is the SLO regression gate: it runs the serve smoke, then
# evaluates request-latency / queue-wait / cache-hit floors against the
# captured telemetry stream with `obsview slo`, proves the gate trips
# on an injected latency regression, and records the observations as
# BENCH_obs.json via benchcheck (the serve job's copy carries the SLO
# block; the bench job's carries the span-overhead bound). Leaves
# slo-report.txt behind for upload.
obs-slo: serve-smoke
	BENCHMD='$(BENCHMD)' ./scripts/obs_slo.sh

bench:
	$(GO) test -bench=. -benchmem .

# bench-fault guards the zero-overhead claim of the fault-injected
# collect path: no-fault-layer and zero-rate-faults must be within
# noise of each other.
bench-fault:
	$(GO) test -run xxx -bench BenchmarkCollectFaultOverhead -benchtime 20x .

# bench-trace records the trace-pipeline benchmarks in BENCH_trace.json
# and enforces the pipeline's speedup claims: a warm cache is >= 10x
# faster than cold tracing everywhere, and 4 workers are >= 2x faster
# than serial wherever >= 4 CPUs exist (benchcheck skips that gate on
# smaller machines, where the speedup is physically impossible).
bench-trace:
	$(GO) test -run xxx -bench '^(BenchmarkTraces|BenchmarkTracesParallel|BenchmarkTracesCached)$$' \
		-benchtime 10x -benchmem . | tee bench-trace.out
	$(GO) run ./cmd/benchcheck -in bench-trace.out -json BENCH_trace.json $(BENCHMD_FLAG) \
		-speedup 'BenchmarkTraces,BenchmarkTracesParallel,2.0,4' \
		-speedup 'BenchmarkTraces,BenchmarkTracesCached,10.0'
	@rm -f bench-trace.out

# bench-obs guards the observability overhead bound: full span capture
# plus the simulated kernel timeline (what -obs-trace enables) must
# stay within 1.5x of the always-on stage/counter layer. Recorded in
# BENCH_obs.json.
bench-obs:
	$(GO) test -run xxx -bench '^BenchmarkSpanOverhead$$' -benchtime 20x -benchmem . | tee bench-obs.out
	$(GO) run ./cmd/benchcheck -in bench-obs.out -json BENCH_obs.json $(BENCHMD_FLAG) \
		-maxratio 'BenchmarkSpanOverhead/stages-only,BenchmarkSpanOverhead/spans-sim,1.5'
	@rm -f bench-obs.out

# profile collects CPU and heap profiles plus a span trace of a full
# dataset sweep; inspect with `go tool pprof cpu.pprof` or load
# obs-trace.json into https://ui.perfetto.dev.
profile:
	$(GO) run ./cmd/gpuport -cpuprofile cpu.pprof -memprofile mem.pprof \
		-obs-trace obs-trace.json -obs-metrics obs-metrics.prom \
		-out profile-study.csv dataset
	@echo "wrote cpu.pprof mem.pprof obs-trace.json obs-metrics.prom"

# bench-cost guards the columnar sweep engine's contract (see
# internal/cost/columnar and DESIGN.md 5f): replaying the sweep grid
# through Columns/Evaluator is >= 10x faster than the reference
# cost.Estimate path on one thread, and building the columns costs at
# most half of even the columnar sweep, so per-trace Build amortises
# within a single (chip x config) grid. -count=4 repeats feed
# benchcheck's min-fold, binding the gates on steady-state figures
# rather than a noisy repeat. Recorded in BENCH_cost.json.
bench-cost:
	$(GO) test -run xxx -bench '^(BenchmarkSweepReference|BenchmarkSweepColumnar|BenchmarkColumnarBuild)$$' \
		-benchtime 20x -count 4 . | tee bench-cost.out
	$(GO) run ./cmd/benchcheck -in bench-cost.out -json BENCH_cost.json $(BENCHMD_FLAG) \
		-speedup 'BenchmarkSweepReference,BenchmarkSweepColumnar,10.0' \
		-maxratio 'BenchmarkSweepColumnar,BenchmarkColumnarBuild,0.5'
	@rm -f bench-cost.out

# bench-ci is the benchmark-regression job: the full suite recorded as
# BENCH_ci.json, gated on the fault-layer overhead claim (zero-rate
# faults within noise of no fault layer; 1.5x absorbs CI jitter), plus
# the bench-cost sweep-throughput gates.
bench-ci: bench-cost
	$(GO) test -run xxx -bench=. -benchtime 10x -benchmem . | tee bench-ci.out
	$(GO) run ./cmd/benchcheck -in bench-ci.out -json BENCH_ci.json $(BENCHMD_FLAG) \
		-maxratio 'BenchmarkCollectFaultOverhead/no-fault-layer,BenchmarkCollectFaultOverhead/zero-rate-faults,1.5' \
		-speedup 'BenchmarkTraces,BenchmarkTracesCached,10.0'
	@rm -f bench-ci.out

clean:
	$(GO) clean ./...
	rm -f bench-trace.out bench-ci.out bench-obs.out bench-cost.out cover.out conform-a.json conform-b.json lockgraph.json lockgraph.dot
	rm -f cpu.pprof mem.pprof obs-trace.json obs-metrics.prom profile-study.csv
	rm -f gpuportd-metrics.prom gpuportd-obs-trace.json gpuportd-stream.ndjson slo-report.txt slo-bench.out
