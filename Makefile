GO ?= go

.PHONY: all vet build fmt-check lint test race ci bench bench-fault bench-trace bench-ci clean

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# fmt-check fails (listing the files) if anything is not gofmt-clean.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# lint runs the repo-local static gate (see cmd/lintgate): gofmt
# cleanliness plus the determinism rules (time.Now confined to the
# instrumentation layers, math/rand confined to internal/stats).
lint:
	$(GO) run ./cmd/lintgate .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the full gate: everything a change must pass before merging.
ci: vet build fmt-check lint test race

bench:
	$(GO) test -bench=. -benchmem .

# bench-fault guards the zero-overhead claim of the fault-injected
# collect path: no-fault-layer and zero-rate-faults must be within
# noise of each other.
bench-fault:
	$(GO) test -run xxx -bench BenchmarkCollectFaultOverhead -benchtime 20x .

# bench-trace records the trace-pipeline benchmarks in BENCH_trace.json
# and enforces the pipeline's speedup claims: a warm cache is >= 10x
# faster than cold tracing everywhere, and 4 workers are >= 2x faster
# than serial wherever >= 4 CPUs exist (benchcheck skips that gate on
# smaller machines, where the speedup is physically impossible).
bench-trace:
	$(GO) test -run xxx -bench '^(BenchmarkTraces|BenchmarkTracesParallel|BenchmarkTracesCached)$$' \
		-benchtime 10x -benchmem . | tee bench-trace.out
	$(GO) run ./cmd/benchcheck -in bench-trace.out -json BENCH_trace.json \
		-speedup 'BenchmarkTraces,BenchmarkTracesParallel,2.0,4' \
		-speedup 'BenchmarkTraces,BenchmarkTracesCached,10.0'
	@rm -f bench-trace.out

# bench-ci is the benchmark-regression job: the full suite recorded as
# BENCH_ci.json, gated on the fault-layer overhead claim (zero-rate
# faults within noise of no fault layer; 1.5x absorbs CI jitter).
bench-ci:
	$(GO) test -run xxx -bench=. -benchtime 10x -benchmem . | tee bench-ci.out
	$(GO) run ./cmd/benchcheck -in bench-ci.out -json BENCH_ci.json \
		-maxratio 'BenchmarkCollectFaultOverhead/no-fault-layer,BenchmarkCollectFaultOverhead/zero-rate-faults,1.5' \
		-speedup 'BenchmarkTraces,BenchmarkTracesCached,10.0'
	@rm -f bench-ci.out

clean:
	$(GO) clean ./...
	rm -f bench-trace.out bench-ci.out
