// Package gpuport reproduces "One Size Doesn't Fit All: Quantifying
// Performance Portability of Graph Applications on GPUs" (IISWC 2019)
// as a self-contained Go library.
//
// The library has three layers:
//
//  1. A workload substrate: graph generators (internal/graph), 17 graph
//     applications over an IrGL-like operator IR (internal/apps,
//     internal/irgl), and a deterministic GPU performance model for six
//     chips across four vendors (internal/chip, internal/cost,
//     internal/ocl).
//  2. An experiment harness that sweeps 6 chips x 17 applications x 3
//     inputs x 96 optimisation configurations x 3 timed runs into a
//     dataset (internal/measure, internal/dataset).
//  3. The paper's contribution: a magnitude-agnostic, rank-based
//     analysis (Mann-Whitney U over significance-gated mirror-pair
//     comparisons) that derives optimisation strategies at every degree
//     of specialisation between fully portable and per-test oracle
//     (internal/analysis), plus the microbenchmarks that explain the
//     per-chip recommendations (internal/microbench).
//
// This root package is the public facade: it re-exports the types and
// entry points a downstream user needs, so examples and external tools
// can depend on a single import path.
package gpuport

import (
	"io"

	"gpuport/internal/analysis"
	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/dataset"
	"gpuport/internal/fault"
	"gpuport/internal/graph"
	"gpuport/internal/irglc"
	"gpuport/internal/measure"
	"gpuport/internal/microbench"
	"gpuport/internal/opt"
	"gpuport/internal/study"
)

// Re-exported core types. The aliases point at internal packages; the
// methods of these types are part of the public API.
type (
	// Study is a collected dataset plus cached analysis results.
	Study = study.Study
	// Options configures dataset collection.
	Options = measure.Options
	// Dataset is the raw measurement collection.
	Dataset = dataset.Dataset
	// Tuple identifies one (chip, application, input) test.
	Tuple = dataset.Tuple
	// Config is one optimisation configuration.
	Config = opt.Config
	// Flag is one binary optimisation as the analysis sees it.
	Flag = opt.Flag
	// Dims selects the dimensions a strategy specialises on.
	Dims = analysis.Dims
	// Strategy maps tuples to configurations.
	Strategy = analysis.Strategy
	// Specialisation is a full Algorithm 1 run at one degree of
	// specialisation.
	Specialisation = analysis.Specialisation
	// FlagDecision is one Table IX cell: a per-flag recommendation
	// with its MWU statistics.
	FlagDecision = analysis.FlagDecision
	// StrategyEval scores a strategy over the test set (Figures 3-4).
	StrategyEval = analysis.StrategyEval
	// Heatmap is the Figure 1 cross-chip portability matrix.
	Heatmap = analysis.Heatmap
	// FaultProfile configures deterministic fault injection for a
	// collection run (internal/fault): transient launch failures, hung
	// launches, corrupted samples and whole-chip dropouts, plus the
	// retry/backoff/deadline policy that heals them.
	FaultProfile = fault.Profile
	// CollectionReport accounts for every cell of a collection run:
	// coverage, retries, quarantined samples, and a reason for every
	// missing cell of a partial dataset.
	CollectionReport = measure.Report
	// CellFailure explains one missing cell of a partial dataset.
	CellFailure = measure.CellFailure
	// Chip is one GPU platform model.
	Chip = chip.Chip
	// App is one graph application.
	App = apps.App
	// Graph is a CSR graph input.
	Graph = graph.Graph
)

// NewStudy collects a dataset with the given options and prepares it
// for analysis. With the zero Options it runs the full standard study.
func NewStudy(o Options) (*Study, error) { return study.New(o) }

// DefaultStudy runs the standard full study (seed 42, 3 runs per cell).
func DefaultStudy() (*Study, error) { return study.Default() }

// StudyFromDataset wraps a dataset loaded from elsewhere (e.g. CSV).
func StudyFromDataset(d *Dataset) *Study { return study.FromDataset(d) }

// ReadDatasetCSV loads a dataset written by Dataset.WriteCSV.
func ReadDatasetCSV(r io.Reader) (*Dataset, error) { return dataset.ReadCSV(r) }

// ParseFaultProfile parses a fault-injection spec: "", "none", the
// presets "light" and "heavy" (optionally with overrides, e.g.
// "heavy,seed=9"), or key=value pairs like "transient=0.05,corrupt=0.02".
func ParseFaultProfile(spec string) (*FaultProfile, error) { return fault.Parse(spec) }

// CollectWithReport runs the measurement sweep and returns the dataset
// together with its collection report. Under fault injection (or when
// resuming from a checkpoint) the report is the authoritative account
// of coverage and of every missing cell.
func CollectWithReport(o Options) (*Dataset, *CollectionReport, error) {
	return measure.CollectReport(o)
}

// Chips returns the six GPU models of the study (Table I).
func Chips() []Chip { return chip.All() }

// Applications returns the seventeen graph applications (Table VII).
func Applications() []App { return apps.All() }

// StandardInputs returns the three standard graph inputs (Table VIII).
func StandardInputs() []*Graph { return graph.StandardInputs() }

// Configurations returns all 96 optimisation configurations.
func Configurations() []Config { return opt.All() }

// AllDims returns the eight specialisation combinations of Table V.
func AllDims() []Dims { return analysis.AllDims() }

// RankConfigs ranks every configuration globally by harm (Table III).
func RankConfigs(d *Dataset) []analysis.ConfigRank { return analysis.RankConfigs(d) }

// TableX runs the sg-cmb and m-divg microbenchmarks on the given chips.
func TableX(chips []Chip) (sgcmb, mdivg []microbench.Speedup) {
	return microbench.TableX(chips)
}

// LaunchOverhead sweeps the Figure 5 utilisation microbenchmark.
func LaunchOverhead(ch Chip, kernelNS []float64) []microbench.UtilisationPoint {
	return microbench.LaunchOverhead(ch, kernelNS)
}

// DSLProgram is a compiled IrGL-like DSL program (see internal/irglc).
type DSLProgram = irglc.Executable

// CompileDSL parses and checks an IrGL-like DSL program.
func CompileDSL(src string) (*DSLProgram, error) { return irglc.Compile(src) }

// DSLSamples returns the shipped DSL programs (bfs, sssp, cc).
func DSLSamples() map[string]string { return irglc.Samples() }

// GenerateOpenCL emits the OpenCL C translation of a compiled DSL
// program under one optimisation configuration.
func GenerateOpenCL(p *DSLProgram, cfg Config) string {
	return irglc.GenerateOpenCL(p.Program(), cfg)
}
