module gpuport

go 1.22
