#!/usr/bin/env bash
# obs_slo.sh - the SLO gate over the serve-smoke telemetry capture.
# Evaluates request-latency, queue-wait and cache-hit floors against
# the NDJSON stream serve_smoke.sh left behind, proves the gate is
# live by checking that an injected latency regression breaches it,
# and records the observations (with their floors as -floor twins) as
# BENCH_obs.json via benchcheck so the serve job's run page carries
# the numbers. Writes slo-report.txt for artifact upload.
#
# Floors are generous: CI runners are slow and shared, and this gate
# exists to catch collapses (a handler suddenly blocking, the queue
# jamming, the trace cache never hitting), not microsecond drift.
#
# Requires: go. Run from the repository root (`make obs-slo`, which
# runs serve-smoke first).
set -euo pipefail

STREAM=gpuportd-stream.ndjson
[ -s "$STREAM" ] || { echo "missing $STREAM - run make serve-smoke first"; exit 1; }

FLOORS=(-p50-ms 250 -p99-ms 2000 -queue-p99-ms 10000 -cache-hit-min 0.01)

echo "== evaluating SLO floors against $STREAM"
go run ./cmd/obsview slo "${FLOORS[@]}" \
    -bench slo-bench.out -report slo-report.txt "$STREAM"

echo "== negative check: an injected 3s regression must breach"
if go run ./cmd/obsview slo "${FLOORS[@]}" -inject-latency-ns 3000000000 \
    "$STREAM" > /dev/null 2>&1; then
    echo "injected latency regression was NOT caught - the gate is dead"
    exit 1
fi
echo "   breach detected, gate is live"

echo "== recording SLO observations and gates (BENCH_obs.json)"
go run ./cmd/benchcheck -in slo-bench.out -json BENCH_obs.json \
    ${BENCHMD:+-md "$BENCHMD"} \
    -maxratio 'BenchmarkSLO/submit-latency-p50-floor,BenchmarkSLO/submit-latency-p50,1.0' \
    -maxratio 'BenchmarkSLO/submit-latency-p99-floor,BenchmarkSLO/submit-latency-p99,1.0' \
    -maxratio 'BenchmarkSLO/queue-wait-p99-floor,BenchmarkSLO/queue-wait-p99,1.0' \
    -maxratio 'BenchmarkSLO/cache-hit-permicro,BenchmarkSLO/cache-hit-permicro-floor,1.0'
rm -f slo-bench.out

echo "== obs-slo passed"
