#!/usr/bin/env bash
# serve_smoke.sh - end-to-end smoke test of the gpuportd campaign
# server. Boots the daemon on an ephemeral port, submits the default
# full-study campaign over HTTP, polls status to completion, fetches
# the result CSV and diffs it byte-for-byte against the gpuport CLI's
# dataset for the same seed. Also scrapes /metrics and the daemon's
# Chrome trace so CI can upload them as artifacts.
#
# Requires: curl, jq, go. Run from the repository root (`make
# serve-smoke`).
set -euo pipefail

SEED=42
RUNS=3
WORKDIR=$(mktemp -d)
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== building gpuportd and gpuport"
go build -o "$WORKDIR/gpuportd" ./cmd/gpuportd
go build -o "$WORKDIR/gpuport" ./cmd/gpuport

echo "== booting gpuportd"
"$WORKDIR/gpuportd" -listen 127.0.0.1:0 \
    -jobdir "$WORKDIR/jobs" -trace-cache "$WORKDIR/cache" \
    > "$WORKDIR/daemon.log" &
DAEMON_PID=$!

BASE=""
for _ in $(seq 1 100); do
    BASE=$(sed -n 's/^gpuportd listening on //p' "$WORKDIR/daemon.log" | head -1)
    [ -n "$BASE" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$WORKDIR/daemon.log"; echo "daemon died"; exit 1; }
    sleep 0.1
done
[ -n "$BASE" ] || { echo "daemon never printed its listen banner"; exit 1; }
echo "   $BASE"

curl -fsS "$BASE/healthz" > /dev/null

echo "== submitting default full-study campaign (seed $SEED, runs $RUNS)"
SUBMIT=$(curl -fsS -X POST "$BASE/v1/campaigns" \
    -H 'Content-Type: application/json' \
    -d "{\"seed\":$SEED,\"runs\":$RUNS}")
ID=$(echo "$SUBMIT" | jq -r .id)
echo "   campaign $ID ($(echo "$SUBMIT" | jq -r .cells) cells)"

echo "== polling to completion"
STATE="queued"
for _ in $(seq 1 600); do
    STATUS=$(curl -fsS "$BASE/v1/campaigns/$ID")
    STATE=$(echo "$STATUS" | jq -r .state)
    case "$STATE" in
        done) break ;;
        failed|canceled) echo "campaign $STATE: $STATUS"; exit 1 ;;
    esac
    sleep 0.5
done
[ "$STATE" = "done" ] || { echo "campaign still $STATE after poll budget"; exit 1; }
echo "   $(curl -fsS "$BASE/v1/campaigns/$ID" | jq -c .result)"

echo "== fetching server result"
curl -fsS "$BASE/v1/campaigns/$ID/result" -o "$WORKDIR/server.csv"

echo "== running the CLI path for the same campaign"
"$WORKDIR/gpuport" -seed "$SEED" -runs "$RUNS" -out "$WORKDIR/cli.csv" dataset > /dev/null

echo "== diffing server vs CLI datasets"
cmp "$WORKDIR/server.csv" "$WORKDIR/cli.csv"
echo "   byte-identical ($(wc -c < "$WORKDIR/server.csv") bytes)"

echo "== scraping observability artifacts"
curl -fsS "$BASE/metrics" -o gpuportd-metrics.prom
curl -fsS "$BASE/debug/obs-trace" -o gpuportd-obs-trace.json
grep -q 'gpuport_counter_total{name="jobs-completed"} 1' gpuportd-metrics.prom
jq -e '.traceEvents | length > 0' gpuportd-obs-trace.json > /dev/null

echo "== serve smoke passed"
