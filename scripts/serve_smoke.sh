#!/usr/bin/env bash
# serve_smoke.sh - end-to-end smoke test of the gpuportd campaign
# server. Boots the daemon on an ephemeral port, captures its live
# telemetry stream, submits the default full-study campaign over HTTP,
# polls status to completion, fetches the result CSV and diffs it
# byte-for-byte against the gpuport CLI's dataset for the same seed.
# A second, overlapping campaign then exercises the shared trace cache
# (its traces were already produced by the full study, so it must
# generate cache hits). Also scrapes /metrics and the daemon's Chrome
# trace, and leaves the NDJSON stream capture behind, so CI can upload
# them as artifacts and `make obs-slo` can evaluate SLO floors.
#
# Requires: curl, jq, go. Run from the repository root (`make
# serve-smoke`).
set -euo pipefail

SEED=42
RUNS=3
WORKDIR=$(mktemp -d)
DAEMON_PID=""
STREAM_PID=""

cleanup() {
    if [ -n "$STREAM_PID" ] && kill -0 "$STREAM_PID" 2>/dev/null; then
        kill "$STREAM_PID" 2>/dev/null || true
        wait "$STREAM_PID" 2>/dev/null || true
    fi
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== building gpuportd and gpuport"
go build -o "$WORKDIR/gpuportd" ./cmd/gpuportd
go build -o "$WORKDIR/gpuport" ./cmd/gpuport

echo "== booting gpuportd"
"$WORKDIR/gpuportd" -listen 127.0.0.1:0 \
    -jobdir "$WORKDIR/jobs" -trace-cache "$WORKDIR/cache" \
    > "$WORKDIR/daemon.log" &
DAEMON_PID=$!

BASE=""
for _ in $(seq 1 100); do
    BASE=$(sed -n 's/^gpuportd listening on //p' "$WORKDIR/daemon.log" | head -1)
    [ -n "$BASE" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$WORKDIR/daemon.log"; echo "daemon died"; exit 1; }
    sleep 0.1
done
[ -n "$BASE" ] || { echo "daemon never printed its listen banner"; exit 1; }
echo "   $BASE"

curl -fsS "$BASE/healthz" > /dev/null

echo "== capturing live telemetry stream"
curl -sN "$BASE/debug/obs-stream" -o gpuportd-stream.ndjson &
STREAM_PID=$!

# submit POSTs a campaign spec and prints its id.
submit() {
    local resp
    resp=$(curl -fsS -X POST "$BASE/v1/campaigns" \
        -H 'Content-Type: application/json' -d "$1")
    echo "   campaign $(echo "$resp" | jq -r .id) ($(echo "$resp" | jq -r .cells) cells)" >&2
    echo "$resp" | jq -r .id
}

# poll_done polls a campaign id until it reaches the done state.
poll_done() {
    local id=$1 state="queued" status
    for _ in $(seq 1 600); do
        status=$(curl -fsS "$BASE/v1/campaigns/$id")
        state=$(echo "$status" | jq -r .state)
        case "$state" in
            done) return 0 ;;
            failed|canceled) echo "campaign $state: $status"; return 1 ;;
        esac
        sleep 0.5
    done
    echo "campaign still $state after poll budget"
    return 1
}

echo "== submitting default full-study campaign (seed $SEED, runs $RUNS)"
ID=$(submit "{\"seed\":$SEED,\"runs\":$RUNS}")

echo "== polling to completion"
poll_done "$ID"
echo "   $(curl -fsS "$BASE/v1/campaigns/$ID" | jq -c .result)"

echo "== fetching server result"
curl -fsS "$BASE/v1/campaigns/$ID/result" -o "$WORKDIR/server.csv"

echo "== running the CLI path for the same campaign"
"$WORKDIR/gpuport" -seed "$SEED" -runs "$RUNS" -out "$WORKDIR/cli.csv" dataset > /dev/null

echo "== diffing server vs CLI datasets"
cmp "$WORKDIR/server.csv" "$WORKDIR/cli.csv"
echo "   byte-identical ($(wc -c < "$WORKDIR/server.csv") bytes)"

echo "== submitting overlapping campaign (shared trace cache must hit)"
ID2=$(submit "{\"seed\":$SEED,\"runs\":$RUNS,\"apps\":[\"bfs-wl\"]}")
poll_done "$ID2"

echo "== scraping observability artifacts"
curl -fsS "$BASE/metrics" -o gpuportd-metrics.prom
curl -fsS "$BASE/debug/obs-trace" -o gpuportd-obs-trace.json
grep -q 'gpuport_counter_total{name="jobs-completed"} 2' gpuportd-metrics.prom
grep -q 'gpuport_counter_total{name="trace-cache-hits"}' gpuportd-metrics.prom
jq -e '.traceEvents | length > 0' gpuportd-obs-trace.json > /dev/null

# Stop the stream capture and check it caught the campaigns' journey.
kill "$STREAM_PID" 2>/dev/null || true
wait "$STREAM_PID" 2>/dev/null || true
STREAM_PID=""
grep -q '"kind":"span"' gpuportd-stream.ndjson
grep -q '"kind":"counter"' gpuportd-stream.ndjson
echo "   stream capture: $(wc -l < gpuportd-stream.ndjson) events"

echo "== serve smoke passed"
