package conform

import (
	"testing"

	"gpuport/internal/apps"
)

// FuzzConformTrial drives the differential pillar's front half from an
// arbitrary seed: whatever graph GenGraph derives must be structurally
// valid, and a representative application slice must run, validate and
// never panic on it. The seed corpus in testdata/fuzz covers every
// generator family; the fuzzer then explores the seed space around
// them. Runs bounded in CI (make fuzz).
func FuzzConformTrial(f *testing.F) {
	// One seed per family (verified by TestFuzzSeedCorpusCoverage).
	for _, seed := range fuzzFamilySeeds {
		f.Add(seed)
	}
	var sel []apps.App
	for _, name := range []string{"bfs-wl", "bfs-hybrid", "sssp-nf", "cc-sv", "mst-boruvka", "tri-merge"} {
		a, err := apps.ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		sel = append(sel, a)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		g, fam := GenGraph(seed)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %#x (%s): invalid graph: %v", seed, fam, err)
		}
		for _, a := range sel {
			if err := RunChecked(a, g); err != nil {
				t.Errorf("seed %#x (%s): %s: %v", seed, fam, a.Name, err)
			}
		}
	})
}

// fuzzFamilySeeds holds one GenGraph seed per generator family, found
// by scanning from 0. The same seeds are committed as corpus files in
// testdata/fuzz/FuzzConformTrial; TestFuzzSeedCorpusCoverage fails if a
// family loses its representative.
var fuzzFamilySeeds = []uint64{
	0,  // road
	2,  // disconnected
	4,  // mesh
	5,  // uniform
	7,  // powerlaw
	9,  // empty
	14, // single
	17, // star
	39, // selfloops
}

// TestFuzzSeedCorpusCoverage pins that the fuzz seeds above still cover
// every generator family (the family mix is part of GenGraph's
// deterministic output, so this only changes if the mix does).
func TestFuzzSeedCorpusCoverage(t *testing.T) {
	covered := map[string]bool{}
	for _, seed := range fuzzFamilySeeds {
		_, fam := GenGraph(seed)
		covered[fam] = true
	}
	for _, fam := range familyMix {
		if !covered[fam] {
			t.Errorf("fuzz seed corpus no longer covers family %s; rescan seeds", fam)
		}
	}
}
