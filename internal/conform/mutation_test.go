//go:build conformmutate

package conform

import (
	"strings"
	"testing"

	"gpuport/internal/cost"
	"gpuport/internal/irgl"
)

// Mutation sanity: each deliberate bug injected behind the conformmutate
// build tag must be caught by at least one named property (cost-model
// mutants) or by the differential pillar with a shrunk counterexample
// (runtime mutants). This is the proof that the engine has teeth - a
// registry that passes on both the correct tree and on broken ones
// would be theatre.
//
// Run with: go test -tags conformmutate ./internal/conform -run TestMutation

const mutationTrials = 25

func resetMutations() {
	cost.Mutation = ""
	irgl.Mutation = ""
}

func runEngine(t *testing.T) *Report {
	t.Helper()
	rep, err := Run(Options{Trials: mutationTrials, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func failedProps(rep *Report) []string {
	var out []string
	for _, pr := range rep.Props {
		if pr.Status != "pass" {
			out = append(out, pr.Name)
		}
	}
	return out
}

// TestMutationCleanTreePasses pins the baseline: with no mutation
// active, the tagged build behaves exactly like the normal one.
func TestMutationCleanTreePasses(t *testing.T) {
	resetMutations()
	rep := runEngine(t)
	if rep.Failures != 0 {
		t.Fatalf("clean tagged tree has %d failures: props %v", rep.Failures, failedProps(rep))
	}
}

// TestMutationCostModel checks that every cost-model mutant is detected
// by at least one of the properties documented to guard its term.
func TestMutationCostModel(t *testing.T) {
	cases := []struct {
		mutation string
		catchers []string // at least one of these must fail
	}{
		{"drop-launch-latency", []string{"param-launch-latency-live", "cost-empty-launch-invariant"}},
		{"drop-divergence", []string{"param-divergence-live"}},
		{"drop-wg-barrier", []string{"param-wg-barrier-live"}},
		{"drop-coopcv-overhead", []string{"chip-jit-coopcv-overhead"}},
	}
	for _, tc := range cases {
		t.Run(tc.mutation, func(t *testing.T) {
			resetMutations()
			cost.Mutation = tc.mutation
			defer resetMutations()
			rep := runEngine(t)
			failed := failedProps(rep)
			if len(failed) == 0 {
				t.Fatalf("mutant %s survived: no property failed", tc.mutation)
			}
			caught := false
			for _, name := range failed {
				for _, want := range tc.catchers {
					if name == want {
						caught = true
					}
				}
			}
			if !caught {
				t.Fatalf("mutant %s failed %v but none of its documented catchers %v", tc.mutation, failed, tc.catchers)
			}
			t.Logf("mutant %s caught by %v", tc.mutation, failed)
		})
	}
}

// TestMutationRuntime checks the app-level mutant: a runtime that drops
// the last worklist item must be caught by the differential pillar, and
// the failing graph must shrink to a minimal counterexample that is
// reported together with its reproduction seed.
func TestMutationRuntime(t *testing.T) {
	resetMutations()
	irgl.Mutation = "skip-last-frontier"
	defer resetMutations()
	rep := runEngine(t)

	var found *AppFailure
	var foundApp string
	for _, ar := range rep.Apps {
		for i := range ar.Failures {
			if found == nil {
				found = &ar.Failures[i]
				foundApp = ar.App
			}
		}
	}
	if found == nil {
		t.Fatal("mutant skip-last-frontier survived the differential pillar")
	}
	if found.TrialSeed == 0 {
		t.Error("failure carries no reproduction seed")
	}
	// The minimal graph on which dropping the last frontier item breaks
	// a traversal is tiny; anything big means shrinking is not working.
	if found.ShrunkNodes > 4 {
		t.Errorf("shrunk counterexample has %d nodes, want <= 4 (shrinker regression?)", found.ShrunkNodes)
	}
	if found.ShrunkError == "" || strings.Contains(found.ShrunkError, "shrinker bug") {
		t.Errorf("shrunk graph does not preserve the failure: %q", found.ShrunkError)
	}
	if len(found.Counterexample) == 0 && found.ShrunkEdges > 0 {
		t.Error("no counterexample edge list reported")
	}
	t.Logf("mutant skip-last-frontier caught by %s: seed=%#x family=%s", foundApp, found.TrialSeed, found.Family)
	t.Logf("shrunk counterexample (%d nodes, %d undirected edges): %v -> %s",
		found.ShrunkNodes, found.ShrunkEdges/2, found.Counterexample, found.ShrunkError)
}
