package conform

import (
	"context"
	"strings"
	"testing"

	"gpuport/internal/server"
	"gpuport/internal/stats"
)

// TestServerCampaignDifferential runs the server/CLI pillar with a
// small trial budget; the full budget runs from cmd/conform.
func TestServerCampaignDifferential(t *testing.T) {
	if err := ServerCampaignDifferential(context.Background(), 42, 4); err != nil {
		t.Fatal(err)
	}
}

// TestRandomCampaignSpecValid proves every spec the differential can
// draw resolves: the generator and the validator cannot drift apart.
func TestRandomCampaignSpecValid(t *testing.T) {
	r := stats.NewRNG(propSeed(1, "server-campaign-differential"))
	var specs []server.Spec
	for i := 0; i < 40; i++ {
		specs = append(specs, randomCampaignSpec(r))
	}
	for i, spec := range specs {
		if _, _, err := spec.Resolve(); err != nil {
			t.Fatalf("spec %d does not resolve: %v (%+v)", i, err, spec)
		}
	}
}

// TestRandomCampaignSpecDeterministic pins the seed discipline: equal
// seeds draw equal spec streams.
func TestRandomCampaignSpecDeterministic(t *testing.T) {
	a := stats.NewRNG(propSeed(7, "server-campaign-differential"))
	b := stats.NewRNG(propSeed(7, "server-campaign-differential"))
	for i := 0; i < 50; i++ {
		x, y := randomCampaignSpec(a), randomCampaignSpec(b)
		if strings.Join(x.Chips, ",") != strings.Join(y.Chips, ",") ||
			x.Seed != y.Seed || x.Apps[0] != y.Apps[0] ||
			x.Inputs[0] != y.Inputs[0] ||
			strings.Join(x.Configs, ";") != strings.Join(y.Configs, ";") {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, x, y)
		}
	}
}
