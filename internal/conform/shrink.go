package conform

import "gpuport/internal/graph"

// Counterexample shrinking, delta-debugging style. Given a graph on
// which a predicate holds (an application fails), greedily delete node
// chunks, then single nodes, then undirected edges, keeping every
// deletion that preserves the failure. The result is 1-minimal with
// respect to those operations when the evaluation budget suffices;
// otherwise it is simply the smallest failing graph found in budget.
//
// Deletions always go through graph.Induced / graph.WithoutEdgePair,
// so intermediate candidates keep the invariants applications assume
// (dense IDs, symmetric edges, loop-free sorted CSR).

type shrinker struct {
	fails    func(*graph.Graph) bool
	evals    int
	maxEvals int
}

// check runs the predicate under budget; once the budget is exhausted
// every candidate is treated as non-failing, freezing further progress.
func (s *shrinker) check(g *graph.Graph) bool {
	if s.evals >= s.maxEvals {
		return false
	}
	s.evals++
	return s.fails(g)
}

// Shrink minimises g subject to fails staying true, spending at most
// maxEvals predicate evaluations. fails(g) must be true on entry; the
// returned graph also satisfies it.
func Shrink(g *graph.Graph, fails func(*graph.Graph) bool, maxEvals int) *graph.Graph {
	s := &shrinker{fails: fails, maxEvals: maxEvals}
	cur := g

	// Phase 1: node chunks of halving size, down to single nodes.
	for chunk := cur.NumNodes() / 2; chunk >= 1; chunk /= 2 {
		cur = s.nodePass(cur, chunk)
	}
	// Phase 2: individual undirected edges.
	cur = s.edgePass(cur)
	// Phase 3: edge removal may have disconnected nodes that can now go.
	cur = s.nodePass(cur, 1)
	return cur
}

// nodePass repeatedly deletes any chunk-sized contiguous block of node
// IDs whose removal preserves the failure, until no block works.
func (s *shrinker) nodePass(cur *graph.Graph, chunk int) *graph.Graph {
	for {
		n := cur.NumNodes()
		if n == 0 || chunk > n {
			return cur
		}
		progressed := false
		for start := 0; start < n; start += chunk {
			end := min(start+chunk, n)
			keep := make([]bool, n)
			for i := range keep {
				keep[i] = i < start || i >= end
			}
			cand := graph.Induced(cur, keep)
			if s.check(cand) {
				cur = cand
				progressed = true
				break // IDs shifted; rescan from the smaller graph
			}
		}
		if !progressed {
			return cur
		}
	}
}

// edgePass repeatedly deletes any undirected edge whose removal
// preserves the failure, until none works.
func (s *shrinker) edgePass(cur *graph.Graph) *graph.Graph {
	for {
		progressed := false
	scan:
		for u := int32(0); int(u) < cur.NumNodes(); u++ {
			for _, v := range cur.Neighbors(u) {
				if v < u {
					continue
				}
				cand := graph.WithoutEdgePair(cur, u, v)
				if s.check(cand) {
					cur = cand
					progressed = true
					break scan
				}
			}
		}
		if !progressed {
			return cur
		}
	}
}
