package conform

import (
	"fmt"

	"gpuport/internal/graph"
	"gpuport/internal/irgl"
	"gpuport/internal/stats"
)

// Synthetic trace generation for the cost-model properties. Launch
// statistics are produced by running the *real* irgl accounting (ForAll
// + Item.Work) over explicit per-item work values, so the histogram,
// max and zero-item bookkeeping the cost model consumes is exactly what
// an application would have produced - the properties never re-derive
// that logic and so cannot drift from it.

// buildLaunch runs the runtime accounting over works and returns the
// finalised KernelStats with the remaining counters attached.
func buildLaunch(name string, loopID int, works []int64, pushes, rmws, random int64) irgl.KernelStats {
	g := graph.NewBuilder("synth", graph.ClassRandom, 0).Build()
	rt := irgl.NewRuntime("conform-synth", g)
	k := rt.Launch(name)
	idx := 0
	k.ForAll(make([]int32, len(works)), func(it *irgl.Item, _ int32) {
		it.Work(works[idx])
		idx++
	})
	k.End()
	st := rt.Trace().Launches[0]
	st.LoopID = loopID
	st.AtomicPushes = pushes
	st.AtomicRMWs = rmws
	st.RandomAccesses = random
	return st
}

// worksUniform draws items work values uniformly from [lo, hi].
func worksUniform(r *stats.RNG, items, lo, hi int) []int64 {
	out := make([]int64, items)
	for i := range out {
		out[i] = int64(lo + r.Intn(hi-lo+1))
	}
	return out
}

// worksSkewed draws a heavy-tailed distribution: mostly tiny items with
// a few hubs, the shape that activates every nested-parallelism branch.
func worksSkewed(r *stats.RNG, items int) []int64 {
	out := make([]int64, items)
	for i := range out {
		switch r.Intn(10) {
		case 0: // hub
			out[i] = int64(64 + r.Intn(448))
		case 1, 2: // medium
			out[i] = int64(8 + r.Intn(56))
		default: // rim
			out[i] = int64(r.Intn(4)) // zero-work items included
		}
	}
	return out
}

func sumWorks(ws []int64) int64 {
	var s int64
	for _, w := range ws {
		s += w
	}
	return s
}

// randLaunch draws one generic launch: possibly empty, uniform or
// skewed work, atomics and divergence scaled to the work.
func randLaunch(r *stats.RNG, name string, loopID int) irgl.KernelStats {
	items := r.Intn(300)
	if r.Intn(12) == 0 {
		items = 0 // empty frontier launches happen in real traces
	}
	var works []int64
	if items > 0 {
		if r.Intn(2) == 0 {
			works = worksSkewed(r, items)
		} else {
			works = worksUniform(r, items, 0, 16)
		}
	}
	total := sumWorks(works)
	var pushes, rmws, random int64
	if total > 0 {
		pushes = int64(r.Intn(int(total) + 1))
		rmws = int64(r.Intn(int(total) + 1))
		random = total + int64(r.Intn(int(total)+1))
	}
	return buildLaunch(name, loopID, works, pushes, rmws, random)
}

// randTrace draws a generic mixed trace: a few loops, a few launches,
// some inside loops, some empty.
func randTrace(r *stats.RNG) *irgl.Trace {
	t := &irgl.Trace{App: "conform-synth", Input: "synth"}
	nLoops := r.Intn(3)
	for id := 0; id < nLoops; id++ {
		t.Loops = append(t.Loops, irgl.LoopStats{
			ID:         id,
			Name:       fmt.Sprintf("loop%d", id),
			Iterations: int64(1 + r.Intn(20)),
		})
	}
	nLaunches := 1 + r.Intn(6)
	for i := 0; i < nLaunches; i++ {
		loopID := -1
		if nLoops > 0 && r.Intn(2) == 0 {
			loopID = r.Intn(nLoops)
		}
		st := randLaunch(r, fmt.Sprintf("k%d", i), loopID)
		t.Launches = append(t.Launches, st)
		if loopID >= 0 {
			t.Loops[loopID].Launches++
		}
	}
	return t
}

// launchHeavyTrace models a long fixpoint loop of tiny frontiers - the
// road-network BFS shape where launch latency dominates and oitergb
// pays off (DESIGN.md section 4, phenomenon 1).
func launchHeavyTrace(r *stats.RNG) *irgl.Trace {
	iters := 40 + r.Intn(80)
	t := &irgl.Trace{App: "conform-launchheavy", Input: "synth"}
	t.Loops = append(t.Loops, irgl.LoopStats{
		ID: 0, Name: "fixpoint", Iterations: int64(iters), Launches: int64(iters),
	})
	for i := 0; i < iters; i++ {
		works := worksUniform(r, 8+r.Intn(56), 1, 6)
		st := buildLaunch(fmt.Sprintf("k%d", i), 0, works, 0, 0, sumWorks(works))
		t.Launches = append(t.Launches, st)
	}
	return t
}

// pushHeavyTrace models worklist expansion: nearly every edge visit
// pushes, the dense-atomics shape where subgroup combining matters
// (DESIGN.md section 4, phenomenon 2).
func pushHeavyTrace(r *stats.RNG) *irgl.Trace {
	t := &irgl.Trace{App: "conform-pushheavy", Input: "synth"}
	launches := 2 + r.Intn(4)
	for i := 0; i < launches; i++ {
		works := worksUniform(r, 100+r.Intn(200), 2, 12)
		total := sumWorks(works)
		pushes := total - int64(r.Intn(int(total)/8+1)) // density near 1
		st := buildLaunch(fmt.Sprintf("k%d", i), -1, works, pushes, 0, total)
		t.Launches = append(t.Launches, st)
	}
	return t
}

// divergenceTrace models skewed kernels dominated by irregular access -
// the shape where barrier-induced divergence relief matters most
// (DESIGN.md section 4, phenomenon 3: MALI).
func divergenceTrace(r *stats.RNG) *irgl.Trace {
	t := &irgl.Trace{App: "conform-divergence", Input: "synth"}
	launches := 2 + r.Intn(3)
	for i := 0; i < launches; i++ {
		works := worksSkewed(r, 150+r.Intn(150))
		total := sumWorks(works)
		st := buildLaunch(fmt.Sprintf("k%d", i), -1, works, 0, 0, total)
		t.Launches = append(t.Launches, st)
	}
	return t
}
