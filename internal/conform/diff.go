package conform

import (
	"fmt"

	"gpuport/internal/apps"
	"gpuport/internal/graph"
)

// Differential app validation: run one application on one graph,
// validate the output against its sequential reference, and convert
// panics into ordinary failures so a crash in one trial cannot take
// down the engine (a panic on a degenerate graph is exactly the kind
// of bug this pillar exists to find).

// RunChecked executes a on g and validates the output, converting any
// panic (from Run or Check) into an error. Exported for cmd/conform's
// -repro mode.
func RunChecked(a apps.App, g *graph.Graph) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	_, out := a.Run(g)
	return a.Check(g, out)
}

// shrinkFailure minimises the failing graph and assembles the report
// entry. The shrink predicate is "the application still fails for any
// reason" - the failure mode may legitimately change as the graph
// shrinks (e.g. a wrong distance collapsing into a panic); both the
// original and final errors are reported.
func shrinkFailure(a apps.App, trialSeed uint64, family string, g *graph.Graph, orig error) AppFailure {
	fails := func(cand *graph.Graph) bool {
		return RunChecked(a, cand) != nil
	}
	shrunk := Shrink(g, fails, shrinkBudget)
	f := AppFailure{
		TrialSeed:   trialSeed,
		Family:      family,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Error:       orig.Error(),
		ShrunkNodes: shrunk.NumNodes(),
		ShrunkEdges: shrunk.NumEdges(),
	}
	if err := RunChecked(a, shrunk); err != nil {
		f.ShrunkError = err.Error()
	} else {
		// Only possible if the shrinker somehow lost the failure; report
		// it rather than hide it.
		f.ShrunkError = "(shrunk graph no longer fails - shrinker bug?)"
	}
	f.Counterexample = edgeList(shrunk, maxCounterexampleEdges)
	return f
}

// edgeList renders the undirected edges of g as "u-v w" strings,
// truncated to limit entries (with a trailing marker when truncated).
func edgeList(g *graph.Graph, limit int) []string {
	out := []string{}
	n := int32(g.NumNodes())
	total := 0
	for u := int32(0); u < n; u++ {
		ws := g.EdgeWeights(u)
		for i, v := range g.Neighbors(u) {
			if v < u {
				continue // report each undirected edge once
			}
			total++
			if len(out) < limit {
				out = append(out, fmt.Sprintf("%d-%d %d", u, v, ws[i]))
			}
		}
	}
	if total > limit {
		out = append(out, fmt.Sprintf("... %d more", total-limit))
	}
	return out
}
