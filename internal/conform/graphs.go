package conform

import (
	"fmt"

	"gpuport/internal/graph"
	"gpuport/internal/stats"
)

// Randomized graph generation for differential validation. Each trial
// draws one graph from a weighted mix of structural families: the three
// study-like classes (power-law, road-like, mesh/uniform) plus the
// adversarial degenerate shapes that historically break graph codes
// (empty, single node, stars, disconnected unions with isolated nodes,
// inputs full of self-loops and parallel edges for the builder to
// normalise away).
//
// Everything is derived from a single uint64 seed, so any failure is
// reproducible from the seed alone (cmd/conform -repro).

// Families in generation order. The weights slice below repeats names
// to bias sampling toward the structurally rich families while still
// visiting every degenerate shape often.
const (
	FamilyPowerLaw     = "powerlaw"
	FamilyRoad         = "road"
	FamilyMesh         = "mesh"
	FamilyUniform      = "uniform"
	FamilyStar         = "star"
	FamilyDisconnected = "disconnected"
	FamilySelfLoops    = "selfloops"
	FamilyEmpty        = "empty"
	FamilySingle       = "single"
)

var familyMix = []string{
	FamilyPowerLaw, FamilyPowerLaw, FamilyPowerLaw,
	FamilyRoad, FamilyRoad,
	FamilyMesh,
	FamilyUniform, FamilyUniform,
	FamilyStar,
	FamilyDisconnected, FamilyDisconnected,
	FamilySelfLoops,
	FamilyEmpty,
	FamilySingle,
}

// maxNodes bounds trial graphs: large enough for every structural
// effect the applications respond to, small enough that 17 apps x
// hundreds of trials (plus their sequential references) run in seconds.
const maxNodes = 160

// GenGraph deterministically generates the trial graph for seed,
// returning it with its family name.
func GenGraph(seed uint64) (*graph.Graph, string) {
	r := stats.NewRNG(seed)
	family := familyMix[r.Intn(len(familyMix))]
	name := fmt.Sprintf("conform-%s-%016x", family, seed)
	return genFamily(r, family, name), family
}

func genFamily(r *stats.RNG, family, name string) *graph.Graph {
	switch family {
	case FamilyPowerLaw:
		return genPowerLaw(r, name)
	case FamilyRoad:
		return genRoad(r, name)
	case FamilyMesh:
		return genMesh(r, name)
	case FamilyUniform:
		return genUniform(r, name)
	case FamilyStar:
		return genStar(r, name)
	case FamilyDisconnected:
		return genDisconnected(r, name)
	case FamilySelfLoops:
		return genSelfLoops(r, name)
	case FamilyEmpty:
		return graph.NewBuilder(name, graph.ClassRandom, 0).Build()
	case FamilySingle:
		return graph.NewBuilder(name, graph.ClassRandom, 1).Build()
	default:
		panic("conform: unknown family " + family)
	}
}

// weight draws an edge weight: usually 1..100, occasionally 0 (legal
// for every application: Dijkstra needs only non-negative weights).
func weight(r *stats.RNG) int32 {
	if r.Intn(20) == 0 {
		return 0
	}
	return int32(1 + r.Intn(100))
}

// genPowerLaw grows a hub-skewed graph by preferential-style
// attachment: each new node links to a few earlier nodes with a double
// bias toward low IDs, producing the heavy-tailed degree distribution
// the nested-parallelism optimisations key on.
func genPowerLaw(r *stats.RNG, name string) *graph.Graph {
	n := 2 + r.Intn(maxNodes-1)
	b := graph.NewBuilder(name, graph.ClassSocial, n)
	for u := 1; u < n; u++ {
		links := 1 + r.Intn(3)
		for l := 0; l < links; l++ {
			v := r.Intn(u)
			v = r.Intn(v + 1) // second draw skews toward the oldest hubs
			b.AddUndirected(int32(u), int32(v), weight(r))
		}
	}
	return b.Build()
}

// genRoad is a miniature of graph.GenerateRoad: a grid with missing
// streets and a couple of long shortcuts.
func genRoad(r *stats.RNG, name string) *graph.Graph {
	side := 1 + r.Intn(12)
	n := side * side
	b := graph.NewBuilder(name, graph.ClassRoad, n)
	id := func(row, col int) int32 { return int32(row*side + col) }
	for row := 0; row < side; row++ {
		for col := 0; col < side; col++ {
			if col+1 < side && r.Intn(10) > 0 {
				b.AddUndirected(id(row, col), id(row, col+1), weight(r))
			}
			if row+1 < side && r.Intn(10) > 0 {
				b.AddUndirected(id(row, col), id(row+1, col), weight(r))
			}
		}
	}
	for i := 0; i < side/4; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.AddUndirected(int32(u), int32(v), weight(r))
		}
	}
	return b.Build()
}

// genMesh is a fully regular grid: uniform degree, zero imbalance - the
// workload where nested parallelism is pure overhead.
func genMesh(r *stats.RNG, name string) *graph.Graph {
	side := 2 + r.Intn(11)
	n := side * side
	b := graph.NewBuilder(name, graph.ClassRoad, n)
	id := func(row, col int) int32 { return int32(row*side + col) }
	for row := 0; row < side; row++ {
		for col := 0; col < side; col++ {
			if col+1 < side {
				b.AddUndirected(id(row, col), id(row, col+1), weight(r))
			}
			if row+1 < side {
				b.AddUndirected(id(row, col), id(row+1, col), weight(r))
			}
		}
	}
	return b.Build()
}

// genUniform gives every node a few random neighbours.
func genUniform(r *stats.RNG, name string) *graph.Graph {
	n := 2 + r.Intn(maxNodes-1)
	b := graph.NewBuilder(name, graph.ClassRandom, n)
	for u := 0; u < n; u++ {
		deg := 1 + r.Intn(4)
		for d := 0; d < deg; d++ {
			v := r.Intn(n)
			if v != u {
				b.AddUndirected(int32(u), int32(v), weight(r))
			}
		}
	}
	return b.Build()
}

// genStar is one hub connected to every rim node, with a few rim-rim
// chords: the maximum-imbalance shape (one item owns all the work).
func genStar(r *stats.RNG, name string) *graph.Graph {
	n := 2 + r.Intn(maxNodes-1)
	b := graph.NewBuilder(name, graph.ClassSocial, n)
	for v := 1; v < n; v++ {
		b.AddUndirected(0, int32(v), weight(r))
	}
	for i := 0; i < r.Intn(5); i++ {
		u, v := 1+r.Intn(n-1), 1+r.Intn(n-1)
		if u != v {
			b.AddUndirected(int32(u), int32(v), weight(r))
		}
	}
	return b.Build()
}

// genDisconnected unions two or three independent uniform blobs and a
// stripe of fully isolated nodes, so traversal outputs must carry
// Infinity / distinct component labels correctly.
func genDisconnected(r *stats.RNG, name string) *graph.Graph {
	blobs := 2 + r.Intn(2)
	isolated := r.Intn(8)
	sizes := make([]int, blobs)
	n := isolated
	for i := range sizes {
		sizes[i] = 1 + r.Intn(maxNodes/4)
		n += sizes[i]
	}
	b := graph.NewBuilder(name, graph.ClassRandom, n)
	base := isolated // isolated nodes occupy the lowest IDs
	for _, sz := range sizes {
		for u := 0; u < sz; u++ {
			deg := 1 + r.Intn(3)
			for d := 0; d < deg; d++ {
				v := r.Intn(sz)
				if v != u {
					b.AddUndirected(int32(base+u), int32(base+v), weight(r))
				}
			}
		}
		base += sz
	}
	return b.Build()
}

// genSelfLoops feeds the builder a stream heavy with self-loops and
// duplicate parallel edges. The builder's contract is to normalise them
// away (CSR graphs are loop-free and deduplicated); this family proves
// the applications see only the normalised structure.
func genSelfLoops(r *stats.RNG, name string) *graph.Graph {
	n := 1 + r.Intn(maxNodes/4)
	b := graph.NewBuilder(name, graph.ClassRandom, n)
	attempts := n * 3
	for i := 0; i < attempts; i++ {
		u := r.Intn(n)
		switch r.Intn(3) {
		case 0: // self-loop: must be dropped
			b.AddUndirected(int32(u), int32(u), weight(r))
		case 1: // duplicate edge: smallest weight must be kept
			v := r.Intn(n)
			if v != u {
				w := weight(r)
				b.AddUndirected(int32(u), int32(v), w)
				b.AddUndirected(int32(u), int32(v), w+1)
			}
		default:
			v := r.Intn(n)
			if v != u {
				b.AddUndirected(int32(u), int32(v), weight(r))
			}
		}
	}
	return b.Build()
}
