package conform

import (
	"testing"

	"gpuport/internal/stats"
)

// TestEachPropertyPassesIndividually runs every registered property on
// its own stream with a modest budget. Redundant with the engine-level
// clean run, but failures here name the broken property directly in the
// test output.
func TestEachPropertyPassesIndividually(t *testing.T) {
	for _, p := range Properties() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Check(p.eng, stats.NewRNG(propSeed(2, p.Name)), 15); err != nil {
				t.Errorf("%s: %v", p.Name, err)
			}
		})
	}
}

// TestPropertyChecksDeterministic: a property given the same seed and
// budget must make the same decision (the engine's byte-stable report
// depends on it).
func TestPropertyChecksDeterministic(t *testing.T) {
	for _, p := range Properties() {
		e1 := p.Check(p.eng, stats.NewRNG(propSeed(4, p.Name)), 8)
		e2 := p.Check(p.eng, stats.NewRNG(propSeed(4, p.Name)), 8)
		s1, s2 := "", ""
		if e1 != nil {
			s1 = e1.Error()
		}
		if e2 != nil {
			s2 = e2.Error()
		}
		if s1 != s2 {
			t.Errorf("%s: nondeterministic check: %q vs %q", p.Name, s1, s2)
		}
	}
}

// TestSyntheticTraceBuilders: the trace generators must produce traces
// the cost model accepts, with the advertised shapes.
func TestSyntheticTraceBuilders(t *testing.T) {
	r := stats.NewRNG(6)
	for i := 0; i < 20; i++ {
		if tr := pushHeavyTrace(r); tr.Launches[0].AtomicPushes == 0 {
			t.Fatal("pushHeavyTrace produced no pushes")
		}
		if tr := launchHeavyTrace(r); len(tr.Loops) == 0 || tr.Loops[0].Iterations < 40 {
			t.Fatal("launchHeavyTrace is not launch-heavy")
		}
		if tr := uniformDivTrace(r); tr.Launches[0].RandomAccesses == 0 {
			t.Fatal("uniformDivTrace produced no irregular accesses")
		}
		tr := randTrace(r)
		if len(tr.Launches) == 0 {
			t.Fatal("randTrace produced no launches")
		}
		for _, l := range tr.Launches {
			if l.LoopID >= len(tr.Loops) {
				t.Fatalf("launch references loop %d of %d", l.LoopID, len(tr.Loops))
			}
		}
	}
}

// TestBuildLaunchMatchesRuntimeAccounting: the synthetic launch builder
// must agree with the runtime on the aggregate quantities.
func TestBuildLaunchMatchesRuntimeAccounting(t *testing.T) {
	works := []int64{0, 1, 5, 5, 130, 0, 2}
	st := buildLaunch("k", 3, works, 7, 11, 13)
	if st.Items != int64(len(works)) {
		t.Errorf("Items = %d, want %d", st.Items, len(works))
	}
	if st.ZeroWorkItems != 2 {
		t.Errorf("ZeroWorkItems = %d, want 2", st.ZeroWorkItems)
	}
	if st.TotalWork != 143 {
		t.Errorf("TotalWork = %d, want 143", st.TotalWork)
	}
	if st.MaxWork != 130 {
		t.Errorf("MaxWork = %d, want 130", st.MaxWork)
	}
	if st.LoopID != 3 || st.AtomicPushes != 7 || st.AtomicRMWs != 11 || st.RandomAccesses != 13 {
		t.Errorf("counters not attached: %+v", st)
	}
}
