package conform

import (
	"fmt"

	"gpuport/internal/chip"
	"gpuport/internal/cost"
	"gpuport/internal/cost/columnar"
	"gpuport/internal/irgl"
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// engine selects which cost-model implementation a property evaluates:
// the reference walk (internal/cost) or the columnar replay
// (internal/cost/columnar). Every engine-scoped property in the
// registry is instantiated once per engine, so a columnar regression
// trips the same named invariant as a reference one would - and the
// differential property below pins the two to the same bits.
type engine int

const (
	refEngine engine = iota
	colEngine
)

// profile carries one trace in both engine representations; the
// columnar form is built on first use so reference-engine properties
// never pay for it.
type profile struct {
	tp   *cost.TraceProfile
	cols *columnar.Columns
}

func newProfile(tr *irgl.Trace) *profile {
	return &profile{tp: cost.NewTraceProfile(tr)}
}

func (p *profile) columns() *columnar.Columns {
	if p.cols == nil {
		p.cols = columnar.Build(p.tp)
	}
	return p.cols
}

// est evaluates the trace on ch under cfg through the engine.
func (e engine) est(ch chip.Chip, cfg opt.Config, p *profile) float64 {
	if e == colEngine {
		return columnar.Estimate(ch, cfg, p.columns())
	}
	return cost.Estimate(ch, cfg, p.tp)
}

// diffShrinkBudget caps re-evaluations of the full chip x config grid
// while shrinking a differential counterexample.
const diffShrinkBudget = 400

// checkEngineDifferential cross-validates the reference and columnar
// engines: every generated trace must produce bit-identical model times
// on every chip under every one of the 96 configurations, with sweeps
// reusing one evaluator per chip exactly as measure does. A mismatch is
// shrunk to a minimal trace before reporting. The engine parameter is
// ignored - this property is inherently about both.
func checkEngineDifferential(_ engine, r *stats.RNG, trials int) error {
	for t := 0; t < trials; t++ {
		var tr *irgl.Trace
		switch t % 4 {
		case 0:
			tr = randTrace(r)
		case 1:
			tr = launchHeavyTrace(r)
		case 2:
			tr = pushHeavyTrace(r)
		default:
			tr = divergenceTrace(r)
		}
		err := diffTrace(tr)
		if err == nil {
			continue
		}
		budget := diffShrinkBudget
		shrunk := shrinkDiffTrace(tr, func(c *irgl.Trace) bool {
			budget--
			return budget >= 0 && diffTrace(c) != nil
		})
		return fmt.Errorf("trial %d (%s): %v\nshrunk to %d launches, %d loops: %v",
			t, tr.App, err, len(shrunk.Launches), len(shrunk.Loops), diffTrace(shrunk))
	}
	return nil
}

// diffTrace compares the engines over every chip and configuration,
// returning an error naming the first bit-level mismatch (hex floats,
// so one-ulp differences are visible).
func diffTrace(tr *irgl.Trace) error {
	tp := cost.NewTraceProfile(tr)
	cols := columnar.Build(tp)
	for _, ch := range chip.All() {
		ev := columnar.NewEvaluator(ch, cols)
		for _, cfg := range opt.All() {
			ref := cost.Estimate(ch, cfg, tp)
			got := ev.Estimate(cfg)
			if got != ref {
				return fmt.Errorf("engines disagree on %s under %s: columnar %x != reference %x (delta %g)",
					ch.Name, cfg, got, ref, got-ref)
			}
		}
	}
	return nil
}

// shrinkDiffTrace greedily minimises a trace while failing(trace) stays
// true: drop launches, drop loops, then zero out per-launch counters,
// iterating to a fixpoint. The predicate owns its own evaluation
// budget; when the budget runs out every probe reports false and the
// shrink stops where it stands.
func shrinkDiffTrace(tr *irgl.Trace, failing func(*irgl.Trace) bool) *irgl.Trace {
	cur := cloneTrace(tr)
	for {
		changed := false
		for i := 0; i < len(cur.Launches); {
			cand := cloneTrace(cur)
			cand.Launches = append(cand.Launches[:i], cand.Launches[i+1:]...)
			if failing(cand) {
				cur, changed = cand, true
			} else {
				i++
			}
		}
		for i := 0; i < len(cur.Loops); {
			cand := cloneTrace(cur)
			cand.Loops = append(cand.Loops[:i], cand.Loops[i+1:]...)
			if failing(cand) {
				cur, changed = cand, true
			} else {
				i++
			}
		}
		for i := range cur.Launches {
			for f := 0; f < 4; f++ {
				cand := cloneTrace(cur)
				ks := &cand.Launches[i]
				switch f {
				case 0:
					ks.AtomicPushes = 0
				case 1:
					ks.AtomicRMWs = 0
				case 2:
					ks.RandomAccesses = 0
				default:
					ks.LoopID = -1
				}
				if *ks == cur.Launches[i] {
					continue // field already trivial
				}
				if failing(cand) {
					cur, changed = cand, true
				}
			}
		}
		if !changed {
			return cur
		}
	}
}

func cloneTrace(tr *irgl.Trace) *irgl.Trace {
	return &irgl.Trace{
		App:      tr.App,
		Input:    tr.Input,
		Launches: append([]irgl.KernelStats{}, tr.Launches...),
		Loops:    append([]irgl.LoopStats{}, tr.Loops...),
	}
}
