package conform

import (
	"encoding/json"
	"testing"

	"gpuport/internal/apps"
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
	"gpuport/internal/stats"
)

// appThatPanics is a synthetic application whose Run always panics,
// for exercising the engine's panic containment.
func appThatPanics() apps.App {
	return apps.App{
		Name: "panic-app",
		Run: func(g *graph.Graph) (*irgl.Trace, any) {
			panic("deliberate test panic")
		},
		Check: func(*graph.Graph, any) error { return nil },
	}
}

// TestRunDeterministic pins the acceptance-critical property: two runs
// with equal options marshal to byte-identical reports.
func TestRunDeterministic(t *testing.T) {
	opts := Options{Trials: 40, Seed: 42}
	r1, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("reports differ between identical runs:\n%s\n%s", b1, b2)
	}
}

// TestCleanRunPasses: the unmutated tree must conform.
func TestCleanRunPasses(t *testing.T) {
	rep, err := Run(Options{Trials: 40, Seed: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failures != 0 {
		blob, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("clean tree has %d conformance failures:\n%s", rep.Failures, blob)
	}
	if len(rep.Apps) != 17 {
		t.Errorf("validated %d apps, want 17", len(rep.Apps))
	}
	if len(rep.Props) != len(Properties()) {
		t.Errorf("ran %d properties, want %d", len(rep.Props), len(Properties()))
	}
}

// TestFiltering: app and property filters restrict the run without
// changing determinism, and unknown names are rejected.
func TestFiltering(t *testing.T) {
	rep, err := Run(Options{Trials: 10, Seed: 5, Apps: []string{"bfs-wl"}, Props: []string{"cost-finite-positive"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Apps) != 1 || rep.Apps[0].App != "bfs-wl" {
		t.Errorf("app filter not applied: %+v", rep.Apps)
	}
	if len(rep.Props) != 1 || rep.Props[0].Name != "cost-finite-positive" {
		t.Errorf("prop filter not applied: %+v", rep.Props)
	}
	if _, err := Run(Options{Trials: 1, Apps: []string{"no-such-app"}}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Run(Options{Trials: 1, Props: []string{"no-such-prop"}}); err == nil {
		t.Error("unknown property accepted")
	}
}

// TestPropFilterIndependence: a property observes the same stream
// whether it runs alone or alongside the full registry, so -props
// filtering can never mask or manufacture a failure.
func TestPropFilterIndependence(t *testing.T) {
	name := "cost-launch-append-monotone"
	full, err := Run(Options{Trials: 15, Seed: 9})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	solo, err := Run(Options{Trials: 15, Seed: 9, Props: []string{name}, Apps: []string{"bfs-topo"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var fromFull *PropResult
	for i := range full.Props {
		if full.Props[i].Name == name {
			fromFull = &full.Props[i]
		}
	}
	if fromFull == nil {
		t.Fatalf("property %s missing from full run", name)
	}
	if *fromFull != solo.Props[0] {
		t.Errorf("property result changed under filtering: %+v vs %+v", *fromFull, solo.Props[0])
	}
}

// TestPropertyRegistry: names are unique, non-empty and documented.
func TestPropertyRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Properties() {
		if p.Name == "" || p.Doc == "" || p.Check == nil {
			t.Errorf("incomplete property %+v", p.Name)
		}
		if seen[p.Name] {
			t.Errorf("duplicate property name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if len(PropertyNames()) != len(Properties()) {
		t.Error("PropertyNames length mismatch")
	}
}

// TestGenGraphFamilies: every family's generator produces structurally
// valid CSR graphs, deterministically per seed.
func TestGenGraphFamilies(t *testing.T) {
	families := map[string]int{}
	for seed := uint64(0); seed < 400; seed++ {
		g, fam := GenGraph(seed)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d (%s): invalid graph: %v", seed, fam, err)
		}
		g2, fam2 := GenGraph(seed)
		if fam2 != fam || g.Fingerprint() != g2.Fingerprint() {
			t.Fatalf("seed %d: GenGraph not deterministic", seed)
		}
		families[fam]++
	}
	for _, fam := range familyMix {
		if families[fam] == 0 {
			t.Errorf("family %s never sampled in 400 seeds", fam)
		}
	}
}

// TestShrinkMinimises: a predicate satisfiable by a tiny subgraph must
// shrink all the way down to it.
func TestShrinkMinimises(t *testing.T) {
	// Scan seeds for a reasonably sized starting graph.
	var g *graph.Graph
	for seed := uint64(12); ; seed++ {
		if c, _ := GenGraph(seed); c.NumEdges() >= 8 {
			g = c
			break
		}
	}
	// "Has at least one undirected edge" is satisfied by a 2-node graph.
	fails := func(c *graph.Graph) bool { return c.NumEdges() >= 2 }
	shrunk := Shrink(g, fails, 2000)
	if shrunk.NumNodes() != 2 || shrunk.NumEdges() != 2 {
		t.Errorf("shrunk to %d nodes / %d directed edges, want 2 / 2", shrunk.NumNodes(), shrunk.NumEdges())
	}
	if !fails(shrunk) {
		t.Error("shrunk graph no longer satisfies the predicate")
	}
}

// TestShrinkRespectsBudget: with a zero budget the input comes back
// unchanged (no predicate evaluations happen at all).
func TestShrinkRespectsBudget(t *testing.T) {
	g, _ := GenGraph(12)
	calls := 0
	fails := func(c *graph.Graph) bool { calls++; return true }
	shrunk := Shrink(g, fails, 0)
	if calls != 0 {
		t.Errorf("zero-budget shrink evaluated the predicate %d times", calls)
	}
	if shrunk.NumNodes() != g.NumNodes() || shrunk.NumEdges() != g.NumEdges() {
		t.Error("zero-budget shrink modified the graph")
	}
}

// TestRunCheckedRecoversPanics: a panicking application must surface as
// an error, not kill the engine.
func TestRunCheckedRecoversPanics(t *testing.T) {
	a := appThatPanics()
	g, _ := GenGraph(1)
	err := RunChecked(a, g)
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

// TestEdgeListTruncation: the counterexample listing is bounded.
func TestEdgeListTruncation(t *testing.T) {
	g := genStar(stats.NewRNG(77), "star")
	limit := 5
	list := edgeList(g, limit)
	if len(list) > limit+1 {
		t.Errorf("edge list has %d entries, want <= %d", len(list), limit+1)
	}
}
