// Package conform is the differential conformance engine: seeded,
// deterministic property-based cross-validation of the study's three
// load-bearing layers against each other.
//
// Pillar 1 (differential app validation, diff.go): every registered
// application runs on randomized graphs drawn from structurally diverse
// families - including adversarial degenerate shapes - and its output is
// checked against the sequential references. A failing graph is shrunk
// to a minimal counterexample (shrink.go) and reported with the trial
// seed that regenerates it bit-for-bit.
//
// Pillar 2 (metamorphic cost-model invariants, props.go): a registry of
// named properties asserts relationships the cost model must satisfy on
// randomized traces across every chip and optimisation configuration -
// finiteness, monotonicities, permutation invariance, per-flag cost-term
// scoping, and the DESIGN.md section 4 chip phenomena as orderings.
//
// Pillar 3 (mutation sanity, mutation_test.go): deliberate bugs behind
// the conformmutate build tag must each be caught by at least one named
// property or by the differential pillar, proving the engine has teeth.
//
// Everything is derived from one uint64 seed; two runs with equal
// options produce byte-identical reports.
package conform

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gpuport/internal/apps"
	"gpuport/internal/stats"
)

// Options configures a conformance run.
type Options struct {
	// Trials is the per-pillar trial budget (graphs for the differential
	// pillar, sampled workloads per property). Defaults to 100.
	Trials int
	// Seed is the master seed; every random choice derives from it.
	Seed uint64
	// Props restricts the property pillar to the named properties
	// (nil/empty = all). Filtering never changes what an included
	// property observes: each property owns an independent seed stream.
	Props []string
	// Apps restricts the differential pillar to the named applications
	// (nil/empty = all). Filtering never changes the trial graphs.
	Apps []string
}

// maxFailuresPerApp bounds how many failures are shrunk and reported
// per application; beyond it only the count is kept. One is usually
// enough to debug; shrinking hundreds of duplicates is waste.
const maxFailuresPerApp = 3

// maxCounterexampleEdges bounds the edge listing embedded in a report.
const maxCounterexampleEdges = 64

// shrinkBudget caps predicate evaluations (application runs) per shrink.
const shrinkBudget = 600

// Report is the full outcome of a conformance run. It contains no maps,
// timestamps or other nondeterminism: marshalling it with encoding/json
// is byte-stable for fixed Options.
type Report struct {
	Seed     uint64       `json:"seed"`
	Trials   int          `json:"trials"`
	Apps     []AppResult  `json:"apps"`
	Props    []PropResult `json:"properties"`
	Failures int          `json:"failures"`
}

// AppResult summarises the differential pillar for one application.
type AppResult struct {
	App      string       `json:"app"`
	Trials   int          `json:"trials"`
	Failures []AppFailure `json:"failures,omitempty"`
	// Unreported counts additional failing trials beyond the per-app
	// shrink budget.
	Unreported int `json:"unreported,omitempty"`
}

// AppFailure is one failing trial, shrunk to a minimal counterexample.
// Re-running the application on GenGraph(TrialSeed) reproduces the
// original failure; the embedded edge list is the shrunk graph.
type AppFailure struct {
	TrialSeed uint64 `json:"trial_seed"`
	Family    string `json:"family"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	Error     string `json:"error"`

	ShrunkNodes int    `json:"shrunk_nodes"`
	ShrunkEdges int    `json:"shrunk_edges"`
	ShrunkError string `json:"shrunk_error"`
	// Counterexample lists the shrunk graph's undirected edges as
	// "u-v w" strings (truncated at maxCounterexampleEdges).
	Counterexample []string `json:"counterexample"`
}

// PropResult is the outcome of one metamorphic property.
type PropResult struct {
	Name   string `json:"name"`
	Trials int    `json:"trials"`
	Status string `json:"status"` // "pass" or "fail"
	Error  string `json:"error,omitempty"`
}

// Run executes the conformance engine and returns its report. The error
// is non-nil only for invalid options (unknown app/property names);
// conformance failures are reported in Report.Failures.
func Run(o Options) (*Report, error) {
	if o.Trials <= 0 {
		o.Trials = 100
	}
	appList, err := selectApps(o.Apps)
	if err != nil {
		return nil, err
	}
	propList, err := selectProps(o.Props)
	if err != nil {
		return nil, err
	}

	rep := &Report{Seed: o.Seed, Trials: o.Trials}

	// Pillar 1: differential app validation. Trial seeds are drawn up
	// front from the master stream so that app filtering cannot shift
	// which graphs later trials see.
	master := stats.NewRNG(o.Seed)
	trialSeeds := make([]uint64, o.Trials)
	for i := range trialSeeds {
		trialSeeds[i] = master.Uint64()
	}
	results := make([]AppResult, len(appList))
	for i, a := range appList {
		results[i] = AppResult{App: a.Name, Trials: o.Trials}
	}
	for _, ts := range trialSeeds {
		g, family := GenGraph(ts)
		for i, a := range appList {
			err := RunChecked(a, g)
			if err == nil {
				continue
			}
			if len(results[i].Failures) >= maxFailuresPerApp {
				results[i].Unreported++
				continue
			}
			results[i].Failures = append(results[i].Failures, shrinkFailure(a, ts, family, g, err))
		}
	}
	rep.Apps = results

	// Pillar 2: metamorphic properties, each on an independent stream.
	for _, p := range propList {
		pr := PropResult{Name: p.Name, Trials: o.Trials, Status: "pass"}
		if err := p.Check(p.eng, stats.NewRNG(propSeed(o.Seed, p.Name)), o.Trials); err != nil {
			pr.Status = "fail"
			pr.Error = err.Error()
		}
		rep.Props = append(rep.Props, pr)
	}

	for _, ar := range rep.Apps {
		rep.Failures += len(ar.Failures) + ar.Unreported
	}
	for _, pr := range rep.Props {
		if pr.Status != "pass" {
			rep.Failures++
		}
	}
	return rep, nil
}

// propSeed derives the per-property seed: a function of the master seed
// and the property name only, so -props filtering is observation-free.
func propSeed(seed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ h.Sum64()
}

func selectApps(names []string) ([]apps.App, error) {
	all := apps.All()
	if len(names) == 0 {
		return all, nil
	}
	var out []apps.App
	for _, n := range names {
		a, err := apps.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func selectProps(names []string) ([]Property, error) {
	all := Properties()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Property, len(all))
	for _, p := range all {
		byName[p.Name] = p
	}
	var out []Property
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("conform: unknown property %q (see PropertyNames)", n)
		}
		out = append(out, p)
	}
	return out, nil
}

// PropertyNames returns the registered property names, sorted.
func PropertyNames() []string {
	var out []string
	for _, p := range Properties() {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}
