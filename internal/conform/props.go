package conform

import (
	"fmt"
	"math"

	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// The metamorphic property registry. Each property is a named,
// self-contained check over randomized workloads: it receives its own
// deterministic RNG (derived from the master seed and the property
// name, so filtering with -props cannot shift what any property sees)
// and a trial budget, and returns nil or an error describing the first
// violation.
//
// Three kinds of properties live here:
//
//   - cost-* / flag-*: metamorphic invariants of the cost model itself
//     (finiteness, monotonicities, order invariance, and per-flag
//     cost-term scoping: a Table VI flag must not perturb terms its
//     documentation does not mention);
//   - param-*: liveness of individual chip parameters - scaling a
//     parameter x10 must strictly move the cost of a workload that
//     exercises it. These give the mutation-sanity pillar its teeth:
//     deleting a cost term makes the matching parameter dead;
//   - chip-*: the DESIGN.md section 4 chip phenomena expressed as
//     orderings over sampled workloads (Nvidia's cheap launches, JIT
//     atomic combining, MALI's divergence sensitivity), so the chip
//     table cannot silently lose the behaviours the study depends on.

// Property is one named conformance property.
type Property struct {
	Name string
	Doc  string
	// Check runs up to trials randomized probes from r through the
	// given cost engine, returning an error describing the first
	// violation. Engine-independent checks ignore the engine.
	Check func(e engine, r *stats.RNG, trials int) error
	// eng is the cost engine this registry instance evaluates.
	eng engine
	// engineFree marks checks that never consult the cost engine, so
	// no columnar twin is registered for them.
	engineFree bool
}

// Properties returns the registry in canonical (report) order: the
// historical reference-engine properties first (names unchanged), then
// a "-columnar" twin of every engine-scoped property evaluating the
// columnar engine, then the reference-vs-columnar differential. Twins
// draw independent seed streams (propSeed is keyed by name), so adding
// them shifts nothing the reference instances observe.
func Properties() []Property {
	base := baseProperties()
	out := append([]Property{}, base...)
	for _, p := range base {
		if p.engineFree {
			continue
		}
		p.Name += "-columnar"
		p.Doc += " (columnar engine)"
		p.eng = colEngine
		out = append(out, p)
	}
	out = append(out, Property{
		Name:  "engine-columnar-differential",
		Doc:   "reference and columnar cost engines produce bit-identical model times on randomized traces across every chip and configuration, shrinking any mismatch to a minimal trace",
		Check: checkEngineDifferential,
	})
	return out
}

// baseProperties returns the reference-engine registry.
func baseProperties() []Property {
	return []Property{
		{
			Name:  "cost-finite-positive",
			Doc:   "every (chip, config) cost of a random trace is finite and strictly positive",
			Check: checkFinitePositive,
		},
		{
			Name:  "cost-empty-launch-invariant",
			Doc:   "a zero-item launch outside any loop costs exactly the launch latency under every config",
			Check: checkEmptyLaunch,
		},
		{
			Name:  "cost-launch-append-monotone",
			Doc:   "appending a launch to a trace strictly increases every (chip, config) cost",
			Check: checkLaunchAppend,
		},
		{
			Name:  "cost-loop-iteration-monotone",
			Doc:   "an extra host-loop iteration strictly increases cost unless oitergb outlines the loop, in which case cost is unchanged",
			Check: checkLoopIteration,
		},
		{
			Name:       "cost-item-order-invariant",
			Doc:        "runtime accounting and cost are invariant to the order items are processed in",
			Check:      checkItemOrder,
			engineFree: true,
		},
		{
			Name:       "app-trace-permutation-invariant",
			Doc:        "node-ID permutation leaves the traces of order-robust applications identical",
			Check:      checkPermInvariant,
			engineFree: true,
		},
		{
			Name:  "flag-oitergb-scope",
			Doc:   "oitergb has no effect on traces without host loops",
			Check: checkOiterGBScope,
		},
		{
			Name:  "flag-coopcv-scope",
			Doc:   "coop-cv has no effect on traces without worklist pushes",
			Check: checkCoopCVScope,
		},
		{
			Name:  "flag-np-scope",
			Doc:   "sg/wg/fg have no effect on kernels whose items never exceed one unit of work",
			Check: checkNPScope,
		},
		{
			Name:  "param-launch-latency-live",
			Doc:   "scaling LaunchNS x10 strictly increases non-outlined cost on every chip",
			Check: checkLaunchLatencyLive,
		},
		{
			Name:  "param-copy-live",
			Doc:   "scaling CopyNS x10 strictly increases looped-trace cost on every chip",
			Check: checkCopyLive,
		},
		{
			Name:  "param-divergence-live",
			Doc:   "scaling DivergencePenaltyNS x10 strictly increases cost of irregular-access kernels on every chip",
			Check: checkDivergenceLive,
		},
		{
			Name:  "param-wg-barrier-live",
			Doc:   "scaling WorkgroupBarrierNS x10 strictly increases wg-scheme cost on every chip",
			Check: checkWGBarrierLive,
		},
		{
			Name:  "param-atomic-live",
			Doc:   "scaling AtomicNS x10 strictly increases push-heavy cost on every chip",
			Check: checkAtomicLive,
		},
		{
			Name:  "chip-nvidia-cheap-launch",
			Doc:   "oitergb relief on launch-heavy loops is smallest on the two Nvidia chips (their lean runtime makes launches cheap) and exceeds 1 everywhere else",
			Check: checkNvidiaCheapLaunch,
		},
		{
			Name:  "chip-jit-coopcv-overhead",
			Doc:   "coop-cv strictly costs on chips whose JIT already combines atomics (M4000, GTX1080, HD5500) and on subgroup-less MALI",
			Check: checkJITCoopCVOverhead,
		},
		{
			Name:  "chip-combining-wins-r9-iris",
			Doc:   "coop-cv's median speedup on push-heavy kernels exceeds 1 on R9 and IRIS and stays below 1 on every other chip",
			Check: checkCombiningWins,
		},
		{
			Name:  "chip-mali-divergence-relief",
			Doc:   "sg's relief ratio on uniform irregular-access kernels is largest on MALI (divergence sensitivity with subgroup width 1) and exceeds 1 only there",
			Check: checkMALIDivergenceRelief,
		},
		{
			Name:  "chip-jit-combining-load-bearing",
			Doc:   "turning JITCombinesAtomics off strictly increases push-heavy baseline cost on the chips that have it (HD5500, M4000, GTX1080)",
			Check: checkJITLoadBearing,
		},
	}
}

// --- shared helpers ---

// sampleConfigs returns the baseline plus k distinct configurations
// drawn deterministically from the full space.
func sampleConfigs(r *stats.RNG, k int) []opt.Config {
	all := opt.All()
	out := []opt.Config{{}}
	for _, i := range r.Perm(len(all))[:k] {
		out = append(out, all[i])
	}
	return out
}

// forEachChip runs fn over the six study chips.
func forEachChip(fn func(ch chip.Chip) error) error {
	for _, ch := range chip.All() {
		if err := fn(ch); err != nil {
			return err
		}
	}
	return nil
}

// --- cost-model metamorphic invariants ---

func checkFinitePositive(e engine, r *stats.RNG, trials int) error {
	for t := 0; t < trials; t++ {
		tp := newProfile(randTrace(r))
		cfgs := sampleConfigs(r, 12)
		err := forEachChip(func(ch chip.Chip) error {
			for _, cfg := range cfgs {
				v := e.est(ch, cfg, tp)
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					return fmt.Errorf("trial %d: cost %v on %s under %s", t, v, ch.Name, cfg)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func checkEmptyLaunch(e engine, r *stats.RNG, trials int) error {
	// One probe suffices: the trace is fully determined. Keep the trial
	// loop shape anyway so the property scales like the others.
	_ = r
	tr := &irgl.Trace{App: "conform-empty", Input: "synth"}
	tr.Launches = append(tr.Launches, buildLaunch("empty", -1, nil, 0, 0, 0))
	tp := newProfile(tr)
	_ = trials
	return forEachChip(func(ch chip.Chip) error {
		base := e.est(ch, opt.Config{}, tp)
		if base <= 0 {
			return fmt.Errorf("empty launch costs %v on %s, want > 0 (launch latency)", base, ch.Name)
		}
		for _, cfg := range opt.All() {
			if v := e.est(ch, cfg, tp); v != base {
				return fmt.Errorf("empty launch on %s costs %v under %s but %v at baseline", ch.Name, v, cfg, base)
			}
		}
		return nil
	})
}

func checkLaunchAppend(e engine, r *stats.RNG, trials int) error {
	for t := 0; t < trials; t++ {
		tr := randTrace(r)
		var extra irgl.KernelStats
		if t%2 == 0 {
			// Half the probes append an empty launch: only its latency
			// term distinguishes the traces, pinning that term alive.
			extra = buildLaunch("appended", -1, nil, 0, 0, 0)
		} else {
			works := worksUniform(r, 1+r.Intn(50), 1, 8)
			extra = buildLaunch("appended", -1, works, 0, 0, sumWorks(works))
		}
		t2 := &irgl.Trace{
			App:      tr.App,
			Input:    tr.Input,
			Launches: append(append([]irgl.KernelStats{}, tr.Launches...), extra),
			Loops:    tr.Loops,
		}
		tp1, tp2 := newProfile(tr), newProfile(t2)
		cfgs := sampleConfigs(r, 10)
		err := forEachChip(func(ch chip.Chip) error {
			for _, cfg := range cfgs {
				v1, v2 := e.est(ch, cfg, tp1), e.est(ch, cfg, tp2)
				if !(v2 > v1) {
					return fmt.Errorf("trial %d: appending a launch on %s under %s: %v -> %v, want strict increase", t, ch.Name, cfg, v1, v2)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func checkLoopIteration(e engine, r *stats.RNG, trials int) error {
	for t := 0; t < trials; t++ {
		tr := randTrace(r)
		if len(tr.Loops) == 0 {
			continue
		}
		loops2 := append([]irgl.LoopStats{}, tr.Loops...)
		loops2[r.Intn(len(loops2))].Iterations++
		t2 := &irgl.Trace{App: tr.App, Input: tr.Input, Launches: tr.Launches, Loops: loops2}
		tp1, tp2 := newProfile(tr), newProfile(t2)
		cfgs := sampleConfigs(r, 10)
		err := forEachChip(func(ch chip.Chip) error {
			for _, cfg := range cfgs {
				v1, v2 := e.est(ch, cfg, tp1), e.est(ch, cfg, tp2)
				if cfg.OiterGB {
					// Outlined loops dispatch once; iteration count must
					// not leak into the cost.
					if v1 != v2 {
						return fmt.Errorf("trial %d: extra iteration under outlining on %s (%s): %v -> %v, want unchanged", t, ch.Name, cfg, v1, v2)
					}
				} else if !(v2 > v1) {
					return fmt.Errorf("trial %d: extra iteration on %s under %s: %v -> %v, want strict increase", t, ch.Name, cfg, v1, v2)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func checkItemOrder(_ engine, r *stats.RNG, trials int) error {
	for t := 0; t < trials; t++ {
		works := worksSkewed(r, 1+r.Intn(200))
		shuffled := make([]int64, len(works))
		for i, j := range r.Perm(len(works)) {
			shuffled[i] = works[j]
		}
		st1 := buildLaunch("k", -1, works, 3, 5, 7)
		st2 := buildLaunch("k", -1, shuffled, 3, 5, 7)
		if st1 != st2 {
			return fmt.Errorf("trial %d: kernel stats depend on item order: %+v vs %+v", t, st1, st2)
		}
	}
	return nil
}

// permApps are the applications whose traces are provably invariant
// under node relabelling: integer-arithmetic, level-synchronous, with
// per-level aggregates that do not depend on visit order. The other
// applications are legitimately order-sensitive (pull early-exit,
// order-dependent relaxation counts, float convergence, degree-tie
// orientation) and are excluded by design.
var permApps = []string{"bfs-wl", "bfs-topo", "bfs-tp"}

// genPermGraph builds a graph with a unique maximum-degree node (the
// hub, adjacent to everything), so SourceNode selects the same actual
// node before and after relabelling and the traversals are comparable.
func genPermGraph(r *stats.RNG) *graph.Graph {
	n := 24 + r.Intn(96)
	b := graph.NewBuilder("conform-perm", graph.ClassSocial, n)
	for u := 1; u < n; u++ {
		for d := 0; d < 1+r.Intn(2); d++ {
			v := 1 + r.Intn(n-1)
			if v != u {
				b.AddUndirected(int32(u), int32(v), weight(r))
			}
		}
	}
	for v := 1; v < n; v++ {
		b.AddUndirected(0, int32(v), weight(r))
	}
	return b.Build()
}

func checkPermInvariant(_ engine, r *stats.RNG, trials int) error {
	n := trials/4 + 1
	var appList []apps.App
	for _, name := range permApps {
		a, err := apps.ByName(name)
		if err != nil {
			return err
		}
		appList = append(appList, a)
	}
	for t := 0; t < n; t++ {
		g := genPermGraph(r)
		perm := make([]int32, g.NumNodes())
		for i, p := range r.Perm(g.NumNodes()) {
			perm[i] = int32(p)
		}
		pg := graph.Permute(g, perm)
		for _, a := range appList {
			tr1, _ := a.Run(g)
			tr2, _ := a.Run(pg)
			if len(tr1.Launches) != len(tr2.Launches) {
				return fmt.Errorf("trial %d: %s launch count changed under permutation: %d vs %d", t, a.Name, len(tr1.Launches), len(tr2.Launches))
			}
			for i := range tr1.Launches {
				if tr1.Launches[i] != tr2.Launches[i] {
					return fmt.Errorf("trial %d: %s launch %d differs under permutation:\n  %+v\n  %+v", t, a.Name, i, tr1.Launches[i], tr2.Launches[i])
				}
			}
			if len(tr1.Loops) != len(tr2.Loops) {
				return fmt.Errorf("trial %d: %s loop count changed under permutation", t, a.Name)
			}
			for i := range tr1.Loops {
				if tr1.Loops[i] != tr2.Loops[i] {
					return fmt.Errorf("trial %d: %s loop %d differs under permutation", t, a.Name, i)
				}
			}
		}
	}
	return nil
}

// --- flag scoping ---

// noLoopTrace draws a trace whose launches all sit outside any loop.
func noLoopTrace(r *stats.RNG) *irgl.Trace {
	t := &irgl.Trace{App: "conform-noloop", Input: "synth"}
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		t.Launches = append(t.Launches, randLaunch(r, fmt.Sprintf("k%d", i), -1))
	}
	return t
}

func checkOiterGBScope(e engine, r *stats.RNG, trials int) error {
	for t := 0; t < trials; t++ {
		tp := newProfile(noLoopTrace(r))
		err := forEachChip(func(ch chip.Chip) error {
			for _, cfg := range opt.All() {
				if cfg.OiterGB {
					continue
				}
				v1 := e.est(ch, cfg, tp)
				v2 := e.est(ch, cfg.With(opt.FlagOiterGB, true), tp)
				if v1 != v2 {
					return fmt.Errorf("trial %d: oitergb changed a loop-free trace on %s under %s: %v -> %v", t, ch.Name, cfg, v1, v2)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func checkCoopCVScope(e engine, r *stats.RNG, trials int) error {
	for t := 0; t < trials; t++ {
		tr := randTrace(r)
		for i := range tr.Launches {
			tr.Launches[i].AtomicPushes = 0
		}
		tp := newProfile(tr)
		err := forEachChip(func(ch chip.Chip) error {
			for _, cfg := range opt.All() {
				if cfg.CoopCV {
					continue
				}
				v1 := e.est(ch, cfg, tp)
				v2 := e.est(ch, cfg.With(opt.FlagCoopCV, true), tp)
				if v1 != v2 {
					return fmt.Errorf("trial %d: coop-cv changed a push-free trace on %s under %s: %v -> %v", t, ch.Name, cfg, v1, v2)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func checkNPScope(e engine, r *stats.RNG, trials int) error {
	for t := 0; t < trials; t++ {
		// Trivial kernels: every item does zero or one unit of work, so
		// there is no inner loop for sg/wg/fg to rewrite.
		works := worksUniform(r, 1+r.Intn(200), 0, 1)
		tr := &irgl.Trace{App: "conform-trivial", Input: "synth"}
		total := sumWorks(works)
		tr.Launches = append(tr.Launches, buildLaunch("k", -1, works, 0, total, total))
		tp := newProfile(tr)
		err := forEachChip(func(ch chip.Chip) error {
			for _, cfg := range opt.All() {
				stripped := cfg
				stripped.SG, stripped.WG, stripped.FG = false, false, opt.FGOff
				v1, v2 := e.est(ch, stripped, tp), e.est(ch, cfg, tp)
				if v1 != v2 {
					return fmt.Errorf("trial %d: nested parallelism changed a trivial kernel on %s under %s: %v vs %v", t, ch.Name, cfg, v1, v2)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// --- chip parameter liveness ---

// checkParamLive asserts that scaling one chip parameter x10 strictly
// increases the cost of a workload built to exercise it, on every chip.
func checkParamLive(e engine, r *stats.RNG, trials int, param string, scale func(*chip.Chip), mk func(*stats.RNG) *irgl.Trace, cfg opt.Config) error {
	for t := 0; t < trials; t++ {
		tp := newProfile(mk(r))
		err := forEachChip(func(ch chip.Chip) error {
			scaledCh := ch
			scale(&scaledCh)
			v1, v2 := e.est(ch, cfg, tp), e.est(scaledCh, cfg, tp)
			if !(v2 > v1) {
				return fmt.Errorf("trial %d: scaling %s x10 on %s under %s: %v -> %v, want strict increase (dead cost term?)", t, param, ch.Name, cfg, v1, v2)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func checkLaunchLatencyLive(e engine, r *stats.RNG, trials int) error {
	return checkParamLive(e, r, trials, "LaunchNS",
		func(c *chip.Chip) { c.LaunchNS *= 10 },
		noLoopTrace, opt.Config{})
}

func checkCopyLive(e engine, r *stats.RNG, trials int) error {
	mk := func(r *stats.RNG) *irgl.Trace {
		t := &irgl.Trace{App: "conform-loopy", Input: "synth"}
		t.Loops = append(t.Loops, irgl.LoopStats{ID: 0, Name: "loop", Iterations: int64(1 + r.Intn(30))})
		t.Launches = append(t.Launches, randLaunch(r, "k", 0))
		return t
	}
	return checkParamLive(e, r, trials, "CopyNS",
		func(c *chip.Chip) { c.CopyNS *= 10 },
		mk, opt.Config{})
}

func checkDivergenceLive(e engine, r *stats.RNG, trials int) error {
	mk := func(r *stats.RNG) *irgl.Trace {
		works := worksUniform(r, 20+r.Intn(200), 1, 12)
		t := &irgl.Trace{App: "conform-div", Input: "synth"}
		t.Launches = append(t.Launches, buildLaunch("k", -1, works, 0, 0, sumWorks(works)))
		return t
	}
	return checkParamLive(e, r, trials, "DivergencePenaltyNS",
		func(c *chip.Chip) { c.DivergencePenaltyNS *= 10 },
		mk, opt.Config{})
}

func checkWGBarrierLive(e engine, r *stats.RNG, trials int) error {
	mk := func(r *stats.RNG) *irgl.Trace {
		works := worksSkewed(r, 50+r.Intn(150))
		works = append(works, 200) // guarantee an inner loop to rewrite
		t := &irgl.Trace{App: "conform-wg", Input: "synth"}
		t.Launches = append(t.Launches, buildLaunch("k", -1, works, 0, 0, sumWorks(works)))
		return t
	}
	// wg alone routes every bucket through the workgroup scheme, so the
	// barrier surcharge is guaranteed to appear.
	return checkParamLive(e, r, trials, "WorkgroupBarrierNS",
		func(c *chip.Chip) { c.WorkgroupBarrierNS *= 10 },
		mk, opt.Config{WG: true})
}

func checkAtomicLive(e engine, r *stats.RNG, trials int) error {
	return checkParamLive(e, r, trials, "AtomicNS",
		func(c *chip.Chip) { c.AtomicNS *= 10 },
		pushHeavyTrace, opt.Config{})
}

// --- chip phenomena (DESIGN.md section 4) as orderings ---

// medianRatios evaluates ratio(cost(base), cost(variant)) per chip over
// n sampled workloads and returns the per-chip medians keyed by Table I
// order.
func medianRatios(e engine, r *stats.RNG, n int, mk func(*stats.RNG) *irgl.Trace, base, variant opt.Config) map[string]float64 {
	chipsAll := chip.All()
	samples := make(map[string][]float64, len(chipsAll))
	for t := 0; t < n; t++ {
		tp := newProfile(mk(r))
		for _, ch := range chipsAll {
			samples[ch.Name] = append(samples[ch.Name], e.est(ch, base, tp)/e.est(ch, variant, tp))
		}
	}
	out := make(map[string]float64, len(chipsAll))
	for name, xs := range samples {
		out[name] = stats.Median(xs)
	}
	return out
}

func phenomenonTrials(trials int) int {
	n := trials / 4
	if n < 9 {
		n = 9
	}
	return n
}

func checkNvidiaCheapLaunch(e engine, r *stats.RNG, trials int) error {
	relief := medianRatios(e, r, phenomenonTrials(trials), launchHeavyTrace,
		opt.Config{}, opt.Config{OiterGB: true})
	nv := []string{chip.M4000, chip.GTX1080}
	others := []string{chip.HD5500, chip.IRIS, chip.R9, chip.MALI}
	maxNv := math.Inf(-1)
	for _, n := range nv {
		if relief[n] > maxNv {
			maxNv = relief[n]
		}
	}
	for _, n := range others {
		if relief[n] <= 1 {
			return fmt.Errorf("median oitergb relief on %s is %.3f, want > 1 (launches are expensive off Nvidia)", n, relief[n])
		}
		if relief[n] <= maxNv {
			return fmt.Errorf("median oitergb relief on %s (%.3f) does not exceed Nvidia's max (%.3f); cheap-launch phenomenon lost", n, relief[n], maxNv)
		}
	}
	return nil
}

func checkJITCoopCVOverhead(e engine, r *stats.RNG, trials int) error {
	for t := 0; t < trials; t++ {
		tp := newProfile(pushHeavyTrace(r))
		err := forEachChip(func(ch chip.Chip) error {
			if !ch.JITCombinesAtomics && ch.SubgroupSize > 1 {
				return nil
			}
			v1 := e.est(ch, opt.Config{}, tp)
			v2 := e.est(ch, opt.Config{CoopCV: true}, tp)
			if !(v2 > v1) {
				return fmt.Errorf("trial %d: coop-cv on %s: %v -> %v, want strictly worse (combining is redundant there, only the overhead should remain)", t, ch.Name, v1, v2)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func checkCombiningWins(e engine, r *stats.RNG, trials int) error {
	speedup := medianRatios(e, r, phenomenonTrials(trials), pushHeavyTrace,
		opt.Config{}, opt.Config{CoopCV: true})
	for _, ch := range chip.All() {
		s := speedup[ch.Name]
		if ch.Name == chip.R9 || ch.Name == chip.IRIS {
			if s <= 1 {
				return fmt.Errorf("median coop-cv speedup on %s is %.3f, want > 1 (manual combining should win there)", ch.Name, s)
			}
		} else if s >= 1 {
			return fmt.Errorf("median coop-cv speedup on %s is %.3f, want < 1 (combining is redundant or subgroup-less there)", ch.Name, s)
		}
	}
	return nil
}

// uniformDivTrace isolates the divergence-relief channel: constant
// per-item work means zero SIMD imbalance, so sg's only benefit is the
// barrier-induced divergence relief (plus its own overheads).
func uniformDivTrace(r *stats.RNG) *irgl.Trace {
	w := 6 + r.Intn(7)
	items := 150 + r.Intn(150)
	works := make([]int64, items)
	for i := range works {
		works[i] = int64(w)
	}
	t := &irgl.Trace{App: "conform-unifdiv", Input: "synth"}
	t.Launches = append(t.Launches, buildLaunch("k", -1, works, 0, 0, sumWorks(works)))
	return t
}

func checkMALIDivergenceRelief(e engine, r *stats.RNG, trials int) error {
	relief := medianRatios(e, r, phenomenonTrials(trials), uniformDivTrace,
		opt.Config{}, opt.Config{SG: true})
	mali := relief[chip.MALI]
	if mali <= 1 {
		return fmt.Errorf("median sg relief on MALI is %.3f, want > 1 (divergence relief must outweigh sg overhead there)", mali)
	}
	for _, ch := range chip.All() {
		if ch.Name == chip.MALI {
			continue
		}
		s := relief[ch.Name]
		if s >= mali {
			return fmt.Errorf("median sg relief on %s (%.3f) is not below MALI's (%.3f); MALI's divergence sensitivity lost", ch.Name, s, mali)
		}
		if s >= 1 {
			return fmt.Errorf("median sg relief on %s is %.3f, want < 1 on uniform kernels (no imbalance to fix, little divergence to relieve)", ch.Name, s)
		}
	}
	return nil
}

func checkJITLoadBearing(e engine, r *stats.RNG, trials int) error {
	for t := 0; t < trials; t++ {
		tp := newProfile(pushHeavyTrace(r))
		err := forEachChip(func(ch chip.Chip) error {
			if !ch.JITCombinesAtomics {
				return nil
			}
			noJIT := ch
			noJIT.JITCombinesAtomics = false
			v1, v2 := e.est(ch, opt.Config{}, tp), e.est(noJIT, opt.Config{}, tp)
			if !(v2 > v1) {
				return fmt.Errorf("trial %d: disabling JIT combining on %s: %v -> %v, want strictly worse (the JIT's combining must be load-bearing)", t, ch.Name, v1, v2)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
