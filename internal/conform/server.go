package conform

import (
	"bytes"
	"context"
	"fmt"

	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/measure"
	"gpuport/internal/opt"
	"gpuport/internal/server"
	"gpuport/internal/stats"
)

// Pillar 4 (server/CLI differential): the sweep-as-a-service daemon
// must be a pure transport. For randomized campaign specs, a campaign
// submitted to an in-process server (priority queue, runner pool,
// per-job recorder, checkpointless execution) must produce the exact
// dataset CSV bytes of the same campaign run directly through the
// measure job object - the CLI path. Cell-for-cell equality is implied
// by byte equality because the CSV row order is canonical sweep order.
//
// This pillar is deliberately not registered in Properties(): it
// exercises the full measurement pipeline (wall-clock stage timers and
// all), so it lives outside the determinism-proof roots that gate the
// property registry and runs from its own entry points (the conform
// test suite and `conform -server-diff`).

// serverDiffInputs is the input pool the differential samples from:
// the standard study inputs, smallest first so most trials stay cheap.
var serverDiffInputs = []string{"rand-8k", "soc-pokec", "usa.ny"}

// randomCampaignSpec draws one small campaign spec: 1-2 chips, one
// app, one input, 1-3 configs, 1-3 runs, fresh seed.
func randomCampaignSpec(r *stats.RNG) server.Spec {
	allChips := chip.All()
	allApps := apps.All()
	allCfgs := opt.All()

	spec := server.Spec{
		Seed: r.Uint64(),
		Runs: 1 + r.Intn(3),
	}
	for _, i := range r.Perm(len(allChips))[:1+r.Intn(2)] {
		spec.Chips = append(spec.Chips, allChips[i].Name)
	}
	spec.Apps = []string{allApps[r.Intn(len(allApps))].Name}
	spec.Inputs = []string{serverDiffInputs[r.Intn(len(serverDiffInputs))]}
	for _, i := range r.Perm(len(allCfgs))[:1+r.Intn(3)] {
		spec.Configs = append(spec.Configs, allCfgs[i].String())
	}
	return spec
}

// ServerCampaignDifferential runs the pillar: trials randomized specs,
// each executed through both paths and compared byte-for-byte. The
// first mismatch is reported with the offending spec and the first
// differing CSV line; a reported spec reproduces the mismatch
// deterministically.
func ServerCampaignDifferential(ctx context.Context, seed uint64, trials int) error {
	if trials <= 0 {
		trials = 20
	}
	r := stats.NewRNG(propSeed(seed, "server-campaign-differential"))
	for trial := 0; trial < trials; trial++ {
		spec := randomCampaignSpec(r)

		_, camp, serr := spec.Resolve()
		if serr != nil {
			return fmt.Errorf("server-diff trial %d: generated spec invalid: %w", trial, serr)
		}
		ds, _, err := camp.Run(ctx, measure.Env{})
		if err != nil {
			return fmt.Errorf("server-diff trial %d: CLI path: %w", trial, err)
		}
		var cli bytes.Buffer
		if err := ds.WriteCSV(&cli); err != nil {
			return fmt.Errorf("server-diff trial %d: %w", trial, err)
		}

		got, err := runViaServer(ctx, spec)
		if err != nil {
			return fmt.Errorf("server-diff trial %d: server path: %w", trial, err)
		}

		if !bytes.Equal(got, cli.Bytes()) {
			return fmt.Errorf("server-diff trial %d: server and CLI datasets differ for spec %+v: %s",
				trial, spec, firstCSVDiff(got, cli.Bytes()))
		}
	}
	return nil
}

// runViaServer executes the spec on a freshly booted in-process server
// and returns its result bytes.
func runViaServer(ctx context.Context, spec server.Spec) ([]byte, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	srv, err := server.New(server.Config{Ctx: sctx, Campaigns: 2})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	j, _, serr := srv.Submit(spec)
	if serr != nil {
		return nil, serr
	}
	if err := j.Wait(ctx); err != nil {
		return nil, err
	}
	body, rerr := j.Result()
	if rerr != nil {
		return nil, rerr
	}
	return body, nil
}

// firstCSVDiff locates the first line where two CSV renderings differ.
func firstCSVDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("first diff at line %d: server=%q cli=%q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: server=%d cli=%d", len(al), len(bl))
}
