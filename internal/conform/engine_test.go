package conform

import (
	"testing"

	"gpuport/internal/chip"
	"gpuport/internal/irgl"
	"gpuport/internal/stats"
)

// TestEnginesAgreeOnGeneratedTraces drives diffTrace directly over each
// generator family (the property exercises the same path through Run).
func TestEnginesAgreeOnGeneratedTraces(t *testing.T) {
	r := stats.NewRNG(11)
	for i := 0; i < 5; i++ {
		for _, tr := range []*irgl.Trace{
			randTrace(r), launchHeavyTrace(r), pushHeavyTrace(r), divergenceTrace(r),
		} {
			if err := diffTrace(tr); err != nil {
				t.Fatalf("%s: %v", tr.App, err)
			}
		}
	}
}

// TestEngineEstEquivalence pins the est dispatch itself: both engines
// through the profile wrapper, same bits.
func TestEngineEstEquivalence(t *testing.T) {
	r := stats.NewRNG(12)
	tp := newProfile(randTrace(r))
	for _, ch := range chip.All() {
		for _, cfg := range sampleConfigs(r, 16) {
			ref := refEngine.est(ch, cfg, tp)
			col := colEngine.est(ch, cfg, tp)
			if ref != col {
				t.Fatalf("est dispatch disagrees on %s under %s: %x vs %x", ch.Name, cfg, col, ref)
			}
		}
	}
}

// TestShrinkDiffTrace exercises the greedy shrinker with an artificial
// failure predicate: "some launch still has atomic pushes". The minimal
// failing trace is one push-bearing launch with every other launch,
// loop and irrelevant counter stripped.
func TestShrinkDiffTrace(t *testing.T) {
	r := stats.NewRNG(13)
	tr := randTrace(r)
	// Guarantee at least one push-bearing launch and some clutter.
	tr.Launches = append(tr.Launches, buildLaunch("pusher", 0, []int64{4, 9}, 21, 5, 8))
	tr.Loops = append(tr.Loops, irgl.LoopStats{ID: len(tr.Loops), Name: "clutter", Iterations: 3})

	failing := func(c *irgl.Trace) bool {
		for i := range c.Launches {
			if c.Launches[i].AtomicPushes > 0 {
				return true
			}
		}
		return false
	}
	shrunk := shrinkDiffTrace(tr, failing)
	if !failing(shrunk) {
		t.Fatal("shrunk trace no longer fails the predicate")
	}
	if len(shrunk.Launches) != 1 {
		t.Fatalf("shrunk to %d launches, want 1", len(shrunk.Launches))
	}
	if len(shrunk.Loops) != 0 {
		t.Fatalf("shrunk trace keeps %d loops, want 0", len(shrunk.Loops))
	}
	ks := shrunk.Launches[0]
	if ks.AtomicPushes == 0 {
		t.Fatal("shrunk launch lost its pushes")
	}
	if ks.AtomicRMWs != 0 || ks.RandomAccesses != 0 || ks.LoopID != -1 {
		t.Fatalf("irrelevant counters not zeroed: %+v", ks)
	}
	// The original trace must be untouched (shrinking works on clones).
	if tr.Launches[len(tr.Launches)-1].AtomicPushes != 21 {
		t.Fatal("shrinker mutated its input")
	}
}

// TestShrinkDiffTraceBudget: an exhausted budget stops the shrink
// gracefully rather than looping or over-shrinking.
func TestShrinkDiffTraceBudget(t *testing.T) {
	r := stats.NewRNG(14)
	tr := randTrace(r)
	budget := 0
	shrunk := shrinkDiffTrace(tr, func(*irgl.Trace) bool {
		budget--
		return budget >= 0 // immediately exhausted: nothing shrinks
	})
	if len(shrunk.Launches) != len(tr.Launches) || len(shrunk.Loops) != len(tr.Loops) {
		t.Fatalf("budget-exhausted shrink changed the trace: %d/%d launches, %d/%d loops",
			len(shrunk.Launches), len(tr.Launches), len(shrunk.Loops), len(tr.Loops))
	}
}

// TestColumnarTwinRegistry pins the registry construction: every
// engine-scoped base property has exactly one -columnar twin, the
// engine-free ones have none, and the differential is registered.
func TestColumnarTwinRegistry(t *testing.T) {
	byName := map[string]Property{}
	for _, p := range Properties() {
		byName[p.Name] = p
	}
	for _, p := range baseProperties() {
		twin, ok := byName[p.Name+"-columnar"]
		if p.engineFree {
			if ok {
				t.Errorf("engine-free property %s has a columnar twin", p.Name)
			}
			continue
		}
		if !ok {
			t.Errorf("property %s has no columnar twin", p.Name)
			continue
		}
		if twin.eng != colEngine {
			t.Errorf("twin %s does not evaluate the columnar engine", twin.Name)
		}
		if byName[p.Name].eng != refEngine {
			t.Errorf("base %s does not evaluate the reference engine", p.Name)
		}
	}
	if _, ok := byName["engine-columnar-differential"]; !ok {
		t.Error("differential property not registered")
	}
}
