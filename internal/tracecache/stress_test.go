package tracecache

import (
	"fmt"
	"sync"
	"testing"
)

// TestStressMixedOperations drives every public operation concurrently
// against one directory through two independent Store handles (the
// documented cross-process scenario), with a size cap small enough that
// eviction runs continuously. Invariants, checked under -race:
//
//   - no operation panics or corrupts an entry (every hit decodes, so a
//     torn write would surface as a Corrupt count);
//   - Purge and eviction racing Put/Get never produce an error other
//     than a miss;
//   - after the storm settles, a final Put/Get round trip still works
//     and Len agrees with a fresh handle's view of the directory.
//
// TestConcurrentAccess covers the simple reader/writer race; this test
// exists to put eviction, Purge and Len into the mix, which touch the
// directory scan paths rather than single entry files.
func TestStressMixedOperations(t *testing.T) {
	dir := t.TempDir()
	tr, key := testTrace(t)
	entrySize := func() int64 {
		p, err := tr.AppendJSONCompact(nil)
		if err != nil {
			t.Fatal(err)
		}
		return int64(len(appendHeader(nil, p)) + len(p))
	}()
	// Budget for ~3 entries while writers rotate over 8 keys: eviction
	// triggers on nearly every Put.
	s1, err := Open(dir, 3*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 3*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	stores := []*Store{s1, s2}

	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = key
		keys[i].GraphFP = fmt.Sprintf("gfp-stress-%04d", i)
	}

	const workers = 12
	const iters = 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := stores[w%len(stores)]
			for i := 0; i < iters; i++ {
				k := keys[(w*7+i)%len(keys)]
				switch w % 4 {
				case 0:
					if err := s.Put(k, tr); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 1:
					if got, ok := s.Get(k); ok && got.App != tr.App {
						t.Error("get returned a wrong trace")
						return
					}
				case 2:
					s.Len()
					if got, ok := s.Get(k); ok && got.Input != tr.Input {
						t.Error("get returned a wrong trace")
						return
					}
				case 3:
					if i%20 == 19 {
						if err := s.Purge(); err != nil {
							t.Errorf("purge: %v", err)
							return
						}
					} else if err := s.Put(k, tr); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	for _, s := range stores {
		if st := s.Stats(); st.Corrupt != 0 {
			t.Errorf("stress storm produced %d corrupt reads (torn write?)", st.Corrupt)
		}
	}

	// The store must still work after the storm.
	if err := s1.Put(keys[0], tr); err != nil {
		t.Fatalf("put after storm: %v", err)
	}
	if _, ok := s2.Get(keys[0]); !ok {
		t.Fatal("entry written after the storm is not readable via the second handle")
	}
	fresh, err := Open(dir, 3*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := s1.Len(), fresh.Len(); a != b {
		t.Errorf("Len disagrees across handles: %d vs %d", a, b)
	}
}
