package tracecache

import (
	"bytes"
	"testing"
)

// FuzzEntryDecode feeds arbitrary bytes to the entry verifier/decoder.
// Every input the store could ever read off disk - including truncated,
// bit-flipped and outright hostile files - must either decode cleanly
// or be rejected with an error; a panic here would let one damaged
// cache file kill a whole measurement campaign. When an input is
// accepted, re-encoding the trace through the store's own writer must
// reach a fixed point: the canonical entry decodes to a trace whose
// canonical encoding is byte-identical. The committed corpus in
// testdata/fuzz holds real entry files (written through Store.Put) plus
// damaged variants. Runs bounded in CI (make fuzz).
func FuzzEntryDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(headerMagic))
	f.Add([]byte(headerMagic + " 1 deadbeef 4\nabcd"))
	// A minimal well-formed entry, built with the store's own writer.
	payload := []byte(`{"app":"bfs-wl","input":"fz","launches":[]}`)
	f.Add(append(appendHeader(nil, payload), payload...))

	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := decodeEntry(raw)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		p1, err := tr.AppendJSONCompact(nil)
		if err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		entry := append(appendHeader(nil, p1), p1...)
		tr2, err := decodeEntry(entry)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		p2, err := tr2.AppendJSONCompact(nil)
		if err != nil {
			t.Fatalf("second re-encoding failed: %v", err)
		}
		if !bytes.Equal(p1, p2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\n%s", p1, p2)
		}
	})
}
