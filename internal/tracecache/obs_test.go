package tracecache

import (
	"fmt"
	"os"
	"testing"
	"time"

	"gpuport/internal/obs"
)

func TestSetObsCountsHealsAndEvictions(t *testing.T) {
	tr, key := testTrace(t)
	rec := obs.New().EnableTracing()

	// Heal: a damaged entry is deleted and reported.
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetObs(rec)
	if err := s.Put(key, tr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(s.path(key), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}

	// Evict: budget for ~two entries, insert three.
	payload, err := tr.AppendJSONCompact(nil)
	if err != nil {
		t.Fatal(err)
	}
	entrySize := int64(len(appendHeader(nil, payload)) + len(payload))
	s2, err := Open(t.TempDir(), 2*entrySize+entrySize/2)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetObs(rec)
	for i := 0; i < 3; i++ {
		k := key
		k.GraphFP = fmt.Sprintf("gfp1-%04d", i)
		if err := s2.Put(k, tr); err != nil {
			t.Fatal(err)
		}
		now := time.Unix(1000+int64(i), 0)
		if err := os.Chtimes(s2.path(k), now, now); err != nil {
			t.Fatal(err)
		}
		if err := s2.evict(s2.path(k)); err != nil {
			t.Fatal(err)
		}
	}

	snap := rec.Snapshot()
	if got := snap.Summary.Counter(obs.CtrCacheCorrupt); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrCacheCorrupt, got)
	}
	if got := snap.Summary.Counter(obs.CtrCacheEvictions); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrCacheEvictions, got)
	}
	var heals, evicts int
	for _, ev := range snap.Events {
		switch ev.Name {
		case obs.EvCacheHeal:
			heals++
		case obs.EvCacheEvict:
			evicts++
		}
		if len(ev.Attrs) != 1 || ev.Attrs[0].Key != obs.AttrPath || ev.Attrs[0].Value == "" {
			t.Errorf("cache event missing path attr: %+v", ev)
		}
	}
	if heals != 1 || evicts != 1 {
		t.Errorf("heal events = %d, evict events = %d, want 1 and 1", heals, evicts)
	}
}

func TestStoreWithoutObsRecorder(t *testing.T) {
	// A store with no recorder attached must behave exactly as before.
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, key := testTrace(t)
	if err := s.Put(key, tr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(s.path(key), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
}
