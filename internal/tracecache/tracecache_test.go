package tracecache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuport/internal/apps"
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
)

func testTrace(t *testing.T) (*irgl.Trace, Key) {
	t.Helper()
	g := graph.GenerateUniform("tc-g", 400, 5, 3)
	app, err := apps.ByName("bfs-wl")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := app.Run(g)
	return tr, Key{App: app.Name, AppVersion: app.Version, GraphFP: g.Fingerprint()}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, key := testTrace(t)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key, tr); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("cached trace is not bit-identical to the original")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss", st)
	}
}

func TestKeyFieldsAreIndependent(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, key := testTrace(t)
	if err := s.Put(key, tr); err != nil {
		t.Fatal(err)
	}
	for name, k := range map[string]Key{
		"app":       {App: "other", AppVersion: key.AppVersion, GraphFP: key.GraphFP},
		"version":   {App: key.App, AppVersion: "2", GraphFP: key.GraphFP},
		"input":     {App: key.App, AppVersion: key.AppVersion, GraphFP: "gfp1-ffff"},
		"validated": {App: key.App, AppVersion: key.AppVersion, GraphFP: key.GraphFP, Validated: true},
	} {
		if _, ok := s.Get(k); ok {
			t.Errorf("changing the %s key field still hit the cache", name)
		}
	}
	// Field boundaries must not alias: ("ab","c") vs ("a","bc").
	a := Key{App: "ab", AppVersion: "c"}
	b := Key{App: "a", AppVersion: "bc"}
	if a.id() == b.id() {
		t.Error("key ids alias across field boundaries")
	}
}

// corrupt each entry file in a specific way and prove the store treats
// it as a miss (never an error, never a bad trace) and deletes it.
func TestCorruptionFallsBackToMiss(t *testing.T) {
	tr, key := testTrace(t)
	cases := []struct {
		name   string
		mangle func(path string, raw []byte) []byte
	}{
		{"truncated", func(_ string, raw []byte) []byte {
			return raw[:len(raw)/2]
		}},
		{"checksum-mismatch", func(_ string, raw []byte) []byte {
			raw[len(raw)-2] ^= 0x40 // flip a payload bit; header untouched
			return raw
		}},
		{"stale-version", func(_ string, raw []byte) []byte {
			return []byte(strings.Replace(string(raw), headerMagic+" 1 ", headerMagic+" 0 ", 1))
		}},
		{"no-header", func(_ string, raw []byte) []byte {
			return []byte("not a cache entry at all")
		}},
		{"bad-payload", func(_ string, raw []byte) []byte {
			// Valid header over an undecodable payload.
			payload := []byte(`{"app":"x","input":"y","launches":[{"Items":-1}]}`)
			return append(appendHeader(nil, payload), payload...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(key, tr); err != nil {
				t.Fatal(err)
			}
			path := s.path(key)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(path, raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry not deleted")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Errorf("Corrupt = %d, want 1", st.Corrupt)
			}
			// The slot is reusable: re-put, re-get.
			if err := s.Put(key, tr); err != nil {
				t.Fatal(err)
			}
			got, ok := s.Get(key)
			if !ok || !reflect.DeepEqual(got, tr) {
				t.Fatal("re-put after corruption did not restore the entry")
			}
		})
	}
}

func TestLRUEviction(t *testing.T) {
	tr, key := testTrace(t)
	// Budget for roughly three entries of this trace's size.
	payload, err := tr.AppendJSONCompact(nil)
	if err != nil {
		t.Fatal(err)
	}
	entrySize := int64(len(appendHeader(nil, payload)) + len(payload))
	s, err := Open(t.TempDir(), 3*entrySize+entrySize/2)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = key
		keys[i].GraphFP = fmt.Sprintf("gfp1-%04d", i)
		if err := s.Put(keys[i], tr); err != nil {
			t.Fatal(err)
		}
		// File mtimes order the LRU queue; make them strictly increase
		// even on coarse-granularity filesystems.
		now := time.Unix(1000+int64(i), 0)
		if err := os.Chtimes(s.path(keys[i]), now, now); err != nil {
			t.Fatal(err)
		}
		if err := s.evict(s.path(keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Len(); n != 3 {
		t.Fatalf("entries after eviction = %d, want 3", n)
	}
	if st := s.Stats(); st.Evicted != 2 {
		t.Errorf("Evicted = %d, want 2", st.Evicted)
	}
	for i, k := range keys {
		_, ok := s.Get(k)
		if want := i >= 2; ok != want {
			t.Errorf("key %d cached = %v, want %v (oldest two evicted)", i, ok, want)
		}
	}
}

func TestOversizedPutKeepsNewestEntry(t *testing.T) {
	tr, key := testTrace(t)
	s, err := Open(t.TempDir(), 1) // absurdly small budget
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, tr); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("a single over-budget entry should survive its own eviction pass")
	}
}

func TestPurge(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, key := testTrace(t)
	if err := s.Put(key, tr); err != nil {
		t.Fatal(err)
	}
	// Foreign files survive a purge.
	foreign := filepath.Join(dir, "README")
	if err := os.WriteFile(foreign, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Purge(); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 0 {
		t.Errorf("entries after purge = %d, want 0", n)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Error("purge removed a foreign file")
	}
	if _, ok := s.Get(key); ok {
		t.Error("hit after purge")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("", 0); err == nil {
		t.Error("empty dir should error")
	}
	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file, 0); err == nil {
		t.Error("opening over a regular file should error")
	}
}

// TestConcurrentAccess hammers one store from many goroutines; run
// under -race this proves reader/writer safety, and every Get must see
// either a miss or a fully-written, verifiable entry.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, key := testTrace(t)
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = key
		keys[i].GraphFP = fmt.Sprintf("gfp1-%04d", i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keys[(w+i)%len(keys)]
				if w%2 == 0 {
					if err := s.Put(k, tr); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				} else if got, ok := s.Get(k); ok && got.App != tr.App {
					t.Error("concurrent get returned a wrong trace")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Errorf("concurrent access produced %d corrupt reads", st.Corrupt)
	}
}
