// Package tracecache is a content-addressed on-disk store for
// application execution traces. Tracing is the dominant wall-clock cost
// of a measurement campaign and a trace depends only on (application,
// input), so repeated campaigns - the common development loop - can
// skip execution entirely when an identical trace was already recorded.
//
// A trace is keyed by (app, appVersion, graph fingerprint, validate
// flag): the graph fingerprint covers everything an application can
// observe of its input (internal/graph.Fingerprint), the app version
// token covers the implementation (internal/apps.App.Version), and the
// validate flag is included because a validated run proves more than an
// unvalidated one (a cached unvalidated trace must never satisfy a
// -validate campaign). Any change to the fingerprint scheme, an app, or
// the store format itself therefore invalidates exactly the affected
// entries.
//
// Entries are self-verifying: a one-line header carries the store
// format version, the payload length and a SHA-256 checksum, followed
// by the trace's canonical compact JSON. Readers treat any mismatch -
// truncation, corruption, or a stale format version - as a miss and
// delete the bad file; the pipeline then re-traces, so a damaged cache
// can degrade performance but never correctness. Writes go through a
// temp file and an atomic rename, making the store safe for concurrent
// readers and writers (including across processes). Total size is
// capped: after each write the least-recently-used entries are evicted
// until the store fits the budget.
package tracecache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpuport/internal/irgl"
	"gpuport/internal/obs"
)

// formatVersion is written into every entry header. Bump it whenever
// the entry encoding changes; readers treat older versions as misses.
const formatVersion = 1

// headerMagic identifies trace-cache entries.
const headerMagic = "gpuport-tracecache"

// DefaultMaxBytes caps the store at 256 MiB unless Open is told
// otherwise - roughly four orders of magnitude above a full standard
// campaign, so eviction only matters for long-lived shared caches.
const DefaultMaxBytes = 256 << 20

// entryExt suffixes every entry file; Purge and eviction only ever
// touch files with this extension.
const entryExt = ".trace"

// Key identifies one cached trace.
type Key struct {
	// App and AppVersion name the application implementation
	// (apps.App.Name, apps.App.Version).
	App        string
	AppVersion string
	// GraphFP is the input's content fingerprint (graph.Fingerprint).
	GraphFP string
	// Validated records whether the trace was produced under output
	// validation.
	Validated bool
}

// id returns the entry's content address: a hash of every key field
// behind a scheme version, so no field boundary ambiguity can alias
// two keys.
func (k Key) id() string {
	h := sha256.New()
	fmt.Fprintf(h, "k%d|%d|%s|%d|%s|%d|%s|%v",
		formatVersion, len(k.App), k.App, len(k.AppVersion), k.AppVersion, len(k.GraphFP), k.GraphFP, k.Validated)
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// Stats counts store traffic since Open.
type Stats struct {
	// Hits and Misses count Get outcomes; a corrupt entry counts as a
	// miss and additionally as Corrupt.
	Hits, Misses int64
	// Corrupt counts entries rejected by verification (truncated,
	// checksum mismatch, stale format version, undecodable payload).
	Corrupt int64
	// Evicted counts entries removed by the LRU size cap.
	Evicted int64
	// PutErrors counts failed writes (the pipeline treats these as
	// non-fatal: the trace is still returned, just not cached).
	PutErrors int64
}

// Store is an open trace cache. Safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	// rec, when set, receives store-level events the pipeline cannot
	// see from its own Get/Put counters: LRU evictions and healed
	// (deleted-because-damaged) entries.
	rec *obs.Recorder

	mu    sync.Mutex
	stats Stats // guarded by mu
}

// Open opens (creating if necessary) the store rooted at dir. maxBytes
// caps the total size of cached entries; <= 0 means DefaultMaxBytes.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracecache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Store{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetObs attaches an observability recorder. The store then counts
// evictions and healed entries (obs.CtrCacheEvictions,
// obs.CtrCacheCorrupt) and, when tracing is enabled, emits one event
// per occurrence naming the entry file. Deliberately distinct from the
// pipeline-level hit/miss counters so nothing is double counted. Call
// before concurrent use begins.
func (s *Store) SetObs(rec *obs.Recorder) *Store {
	s.rec = rec
	return s
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.id()+entryExt)
}

// Get returns the cached trace for k, or (nil, false) on a miss. A
// verifiably damaged entry is deleted and reported as a miss; Get never
// fails: any problem at all falls back to "not cached".
func (s *Store) Get(k Key) (*irgl.Trace, bool) {
	path := s.path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	tr, err := decodeEntry(raw)
	if err != nil {
		_ = os.Remove(path) // best-effort heal; a stuck entry re-misses next time
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		s.rec.Add(obs.CtrCacheCorrupt, 1)
		s.rec.Event(obs.EvCacheHeal, 0, obs.String(obs.AttrPath, filepath.Base(path)))
		return nil, false
	}
	// Touch the entry so LRU eviction sees the access. Best-effort: a
	// failed touch only skews eviction order.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	s.count(func(st *Stats) { st.Hits++ })
	return tr, true
}

// Put stores tr under k, then enforces the size cap. Errors are
// returned for observability but callers are expected to treat them as
// non-fatal - a trace that fails to cache is simply re-traced next run.
func (s *Store) Put(k Key, tr *irgl.Trace) error {
	if err := s.put(k, tr); err != nil {
		s.count(func(st *Stats) { st.PutErrors++ })
		return err
	}
	return s.evict(s.path(k))
}

func (s *Store) put(k Key, tr *irgl.Trace) error {
	payload, err := tr.AppendJSONCompact(nil)
	if err != nil {
		return fmt.Errorf("tracecache: encode: %w", err)
	}
	entry := appendHeader(nil, payload)
	entry = append(entry, payload...)

	// Write-then-rename keeps concurrent readers (and other processes)
	// from ever observing a partial entry.
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	_, werr := tmp.Write(entry)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup; the write error takes precedence
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("tracecache: write: %w", werr)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup; the write error takes precedence
		return fmt.Errorf("tracecache: %w", err)
	}
	return nil
}

// appendHeader appends the entry header for payload to dst.
func appendHeader(dst, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	return fmt.Appendf(dst, "%s %d %x %d\n", headerMagic, formatVersion, sum, len(payload))
}

// decodeEntry verifies and decodes one entry file.
func decodeEntry(raw []byte) (*irgl.Trace, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("tracecache: truncated header")
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 4 || fields[0] != headerMagic {
		return nil, fmt.Errorf("tracecache: malformed header")
	}
	if v, err := strconv.Atoi(fields[1]); err != nil || v != formatVersion {
		return nil, fmt.Errorf("tracecache: stale format version %q", fields[1])
	}
	wantLen, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, fmt.Errorf("tracecache: malformed length")
	}
	payload := raw[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("tracecache: truncated payload: %d of %d bytes", len(payload), wantLen)
	}
	if sum := sha256.Sum256(payload); fmt.Sprintf("%x", sum) != fields[2] {
		return nil, fmt.Errorf("tracecache: checksum mismatch")
	}
	return irgl.ReadTraceJSON(bytes.NewReader(payload))
}

// evict removes least-recently-used entries until the store fits
// maxBytes. The entry at keep (the one just written) is evicted last so
// a single oversized put still leaves the new trace readable.
func (s *Store) evict(keep string) error {
	// Serialise evictions: concurrent writers racing the scan would
	// double-count and over-evict.
	s.mu.Lock()
	defer s.mu.Unlock()
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("tracecache: evict: %w", err)
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), entryExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent eviction
		}
		entries = append(entries, entry{filepath.Join(s.dir, de.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool {
		ei, ej := entries[i], entries[j]
		if (ei.path == keep) != (ej.path == keep) {
			return ej.path == keep // keep sorts last
		}
		if !ei.mtime.Equal(ej.mtime) {
			return ei.mtime.Before(ej.mtime)
		}
		return ei.path < ej.path // tie-break for stable tests
	})
	for _, e := range entries {
		if total <= s.maxBytes || e.path == keep {
			break
		}
		if err := os.Remove(e.path); err != nil {
			continue
		}
		total -= e.size
		s.stats.Evicted++
		s.rec.Add(obs.CtrCacheEvictions, 1)
		s.rec.Event(obs.EvCacheEvict, 0, obs.String(obs.AttrPath, filepath.Base(e.path)))
	}
	return nil
}

// Purge removes every entry (but not the directory itself or any
// foreign files in it). Counters are left running.
func (s *Store) Purge() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("tracecache: purge: %w", err)
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), entryExt) {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, de.Name())); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("tracecache: purge: %w", err)
		}
	}
	return nil
}

// Len returns the number of entries currently on disk.
func (s *Store) Len() int {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), entryExt) {
			n++
		}
	}
	return n
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}
