package staticlint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry is one historically accepted finding. Line numbers are
// deliberately absent: a baselined finding is matched by rule, file
// and message, so edits elsewhere in the file do not churn it.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
}

func (e BaselineEntry) key() string { return e.Rule + "\x00" + e.File + "\x00" + e.Message }

// Baseline is the committed debt ledger. Policy: it may only shrink.
// A finding not in the baseline fails the gate (no new debt), and a
// baseline entry that no longer fires also fails the gate (paid-off
// debt must be deleted from the ledger, keeping it honest).
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, so a repo without one is held to the zero-findings bar.
func ReadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("staticlint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Apply splits the result's diagnostics against the baseline: fresh
// findings (not baselined) and stale entries (baselined but no longer
// firing). Both lists are sorted and both must be empty for the gate
// to pass.
func (b *Baseline) Apply(r *Result) (fresh []Diagnostic, stale []BaselineEntry) {
	budget := map[string]int{}
	for _, e := range b.Entries {
		budget[e.key()]++
	}
	for _, d := range r.Diagnostics {
		if budget[d.key()] > 0 {
			budget[d.key()]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		if budget[e.key()] > 0 {
			budget[e.key()]--
			stale = append(stale, e)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].key() < stale[j].key() })
	return fresh, stale
}
