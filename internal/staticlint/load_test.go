package staticlint_test

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"gpuport/internal/staticlint"
)

func TestLoadFixtureShape(t *testing.T) {
	prog := loadFixture(t)
	if prog.ModulePath != "fixture" {
		t.Fatalf("module path = %q, want fixture", prog.ModulePath)
	}
	det := prog.PackageByRel("internal/det")
	if det == nil {
		t.Fatal("internal/det not loaded")
	}
	if det.Path != "fixture/internal/det" {
		t.Errorf("det path = %q", det.Path)
	}
	if prog.PackageByRel("no/such/pkg") != nil {
		t.Error("PackageByRel invented a package")
	}
	// Packages are sorted by import path for deterministic walks.
	for i := 1; i < len(prog.Packages); i++ {
		if prog.Packages[i-1].Path >= prog.Packages[i].Path {
			t.Fatalf("packages out of order: %s before %s", prog.Packages[i-1].Path, prog.Packages[i].Path)
		}
	}
}

// TestBuildTagExclusion: the conformmutate-tagged file must not be in
// the analysed program (its planted error drop would otherwise fire).
func TestBuildTagExclusion(t *testing.T) {
	prog := loadFixture(t)
	errs := prog.PackageByRel("internal/errs")
	if errs == nil {
		t.Fatal("internal/errs not loaded")
	}
	for _, name := range errs.FileNames {
		if strings.HasSuffix(name, "mutate.go") {
			t.Fatalf("conformmutate-tagged file was loaded: %s", name)
		}
	}
}

func TestFuncDisplayName(t *testing.T) {
	prog := loadFixture(t)
	mu := prog.PackageByRel("internal/mu")
	want := map[string]string{
		"Inc":   "fixture/internal/mu.Counter.Inc",
		"Clone": "fixture/internal/mu.Clone",
	}
	found := 0
	for _, obj := range mu.Info.Defs {
		f, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if w, ok := want[f.Name()]; ok {
			found++
			if got := staticlint.FuncDisplayName(f); got != w {
				t.Errorf("FuncDisplayName(%s) = %q, want %q", f.Name(), got, w)
			}
		}
	}
	if found != len(want) {
		t.Fatalf("found %d of %d functions in internal/mu", found, len(want))
	}
}

// TestLoadErrors drives every refusal path of the loader.
func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name, root, want string
	}{
		{"missing root", filepath.Join("testdata", "src", "nothere"), "go.mod"},
		{"no module line", filepath.Join("testdata", "src", "emptymod"), "no module line"},
		{"cgo", filepath.Join("testdata", "src", "badcgo"), "cgo is not supported"},
		{"type error", filepath.Join("testdata", "src", "badtypes"), "type-checking"},
		{"parse error", filepath.Join("testdata", "src", "badparse"), "expected"},
		{"import cycle", filepath.Join("testdata", "src", "cycle"), "import cycle"},
		{"missing local import", filepath.Join("testdata", "src", "badimport"), "badimport/internal/nothere"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := staticlint.Load(c.root)
			if err == nil {
				t.Fatalf("Load(%s) succeeded, want error containing %q", c.root, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("Load(%s) error = %v, want substring %q", c.root, err, c.want)
			}
		})
	}
}
