module badcgo

go 1.24
