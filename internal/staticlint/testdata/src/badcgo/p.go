// Package p imports cgo, which the loader refuses.
package p

import "C"

var _ = C.int(0)
