module cycle

go 1.24
