// Package b starts the import cycle.
package b

import "cycle/a"

// Y depends on a.
var Y = a.X + 1
