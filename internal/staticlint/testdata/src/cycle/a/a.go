// Package a completes the import cycle.
package a

import "cycle/b"

// X depends on b.
var X = b.Y + 1
