module badparse

go 1.24
