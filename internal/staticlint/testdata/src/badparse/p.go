// Package p does not parse.
package p

func F( {
