// Package p does not type-check.
package p

func F() int { return "not an int" }
