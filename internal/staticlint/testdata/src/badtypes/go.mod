module badtypes

go 1.24
