module badimport

go 1.24
