// Package badimport imports a module-local package that does not
// exist on disk.
package badimport

import "badimport/internal/nothere"

var _ = nothere.X
