// Package p sits in a module whose go.mod names no module.
package p
