// Package det hosts the determinism-proof fixture roots: two clean
// roots, one that reaches the wall clock two hops down, and one whose
// map iteration order leaks into a float sum.
package det

import "fixture/internal/wall"

// Good is a clean root: pure arithmetic through a helper.
func Good(n int) int { return double(n) + 1 }

func double(n int) int { return n * 2 }

// Bad reaches the wall clock two hops down the call graph.
func Bad(n int) int { return indirect(n) }

func indirect(n int) int { return wall.Stamp(n) }

// BadOrder folds map values into a float in iteration order; float
// addition does not associate, so the result is order-dependent.
func BadOrder(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// checkSum is matched by the det.check* glob in the fixture proof set.
func checkSum(ns []int) int {
	total := 0
	for _, n := range ns {
		total += Good(n)
	}
	return total
}
