//go:build conformmutate

package errs

import "os"

// MutateDrop would be an errcheck finding, but the conformmutate tag
// keeps this file out of the analysed program, exactly as it is kept
// out of the default build.
func MutateDrop(path string) {
	os.Remove(path)
}
