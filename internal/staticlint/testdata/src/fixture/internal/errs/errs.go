// Package errs exercises the errcheck analyzer: a silent drop, the
// explicit-assignment escape, a documented suppression, a malformed
// suppression, and the infallible-sink exemptions.
package errs

import (
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

// Drop silently discards the error: planted bug.
func Drop(path string) {
	os.Remove(path)
}

// Explicit assigns the error away, which is visible intent.
func Explicit(path string) {
	_ = os.Remove(path)
}

// Suppressed documents the drop with an allow pragma.
func Suppressed(path string) {
	//lint:allow errcheck best-effort cleanup on the fixture path
	os.Remove(path)
}

// Bare is missing the reason, so the pragma itself is a finding and
// the drop still fires.
func Bare(path string) {
	//lint:allow errcheck
	os.Remove(path)
}

// Sinks writes to infallible and sticky sinks, which are exempt.
func Sinks(parts []string) string {
	var b strings.Builder
	b.WriteString("head")
	fmt.Fprintf(&b, " %d parts", len(parts))
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return fmt.Sprint(h.Sum64())
}
