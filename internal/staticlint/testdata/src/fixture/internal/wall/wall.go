// Package wall plants a wall-clock read outside the instrumentation
// scope, for the walltime analyzer and the detpure taint walk.
package wall

import "time"

// Stamp mixes the clock into its argument.
func Stamp(n int) int { return n + int(time.Now().UnixNano()) }
