// Package obsemit exercises the obsnames analyzer: named obs
// constants pass, ad-hoc literals and foreign constants fail, and
// computed names stay allowed.
package obsemit

import "fixture/internal/obs"

const localName = "local.counter"

// Emit records a mix of blessed and ad-hoc names.
func Emit(r *obs.Recorder, kernel string) {
	r.Add(obs.CtrHits, 1)
	r.Add("adhoc.counter", 1)
	r.Add(localName, 1)
	r.Event(obs.EvStart+kernel, 0)
	_ = obs.String(obs.AttrPath, kernel)
	_ = obs.String("adhoc.attr", kernel)
}
