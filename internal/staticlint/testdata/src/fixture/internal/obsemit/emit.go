// Package obsemit exercises the obsnames analyzer: named obs
// constants pass, ad-hoc literals and foreign constants fail, and
// computed names stay allowed.
package obsemit

import "fixture/internal/obs"

const localName = "local.counter"

// Emit records a mix of blessed and ad-hoc names.
func Emit(r *obs.Recorder, kernel string) {
	r.Add(obs.CtrHits, 1)
	r.Add("adhoc.counter", 1)
	r.Add(localName, 1)
	r.Event(obs.EvStart+kernel, 0)
	_ = obs.String(obs.AttrPath, kernel)
	_ = obs.String("adhoc.attr", kernel)
}

// payload exercises obsliteral's struct-tag exemption: a tag may spell
// an obs value (wire schemas are their own contract).
type payload struct {
	Hits int64 `json:"cache.hits"`
}

// Describe returns a raw literal duplicating obs.CtrHits - the drift
// obsliteral exists to flag - next to a clean unrelated literal.
func Describe() (string, string) {
	return "cache.hits", "unrelated"
}
