// Package stats is the clean twin for the globalrand rule: the seeded
// stats scope may reference math/rand.
package stats

import "math/rand"

// RNG wraps a seeded source.
type RNG struct{ r *rand.Rand }

// New seeds a generator.
func New(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

// Intn draws from the seeded stream.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }
