// Package obs is the fixture's miniature observability layer: the
// named constants and recorder surface the obsnames analyzer checks.
// Reading the clock here is legitimate (the package is in the
// walltime-allowed scope), mirroring the real instrumentation layer.
package obs

import "time"

const (
	CtrHits  = "cache.hits"
	EvStart  = "ev.start"
	AttrPath = "path"
)

// Recorder mirrors the real recorder's name-taking surface.
type Recorder struct {
	counts map[string]int64
}

// Add bumps a named counter.
func (r *Recorder) Add(name string, v int64) {
	if r.counts == nil {
		r.counts = map[string]int64{}
	}
	r.counts[name] += v
}

// Event records a named point event.
func (r *Recorder) Event(name string, lane int) {}

// StartSpan opens a named span.
func (r *Recorder) StartSpan(name string) time.Time { return time.Now() }

// String builds a key/value attribute.
func String(key, value string) [2]string { return [2]string{key, value} }
