// Package measure exercises the ctxprop analyzer: a context minted
// outside the entry points, a goroutine pool with no context in
// scope, and the clean twin that threads one.
package measure

import (
	"context"
	"sync"
)

// Mint defaults a context outside cmd/: planted bug.
func Mint() context.Context { return context.Background() }

// Spawn starts workers with no context in scope: planted bug.
func Spawn(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

// SpawnCtx threads the caller's context, the clean twin.
func SpawnCtx(ctx context.Context, jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ctx.Done()
		}()
	}
	wg.Wait()
}
