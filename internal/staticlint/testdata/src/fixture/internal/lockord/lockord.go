// Package lockord plants an AB/BA lock-order cycle next to a clean,
// consistently ordered third lock.
package lockord

import "sync"

var (
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
)

// TakeAB nests b under a: one half of the planted cycle.
func TakeAB() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

// TakeBA nests a under b: the other half; together a cycle.
func TakeBA() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

// TakeAC and TakeBC keep c strictly innermost: clean twins, no cycle
// through c.
func TakeAC() {
	a.Lock()
	defer a.Unlock()
	lockC()
}

// TakeBC reaches c through a helper call, proving edges propagate
// interprocedurally without creating false cycles.
func TakeBC() {
	b.Lock()
	defer b.Unlock()
	lockC()
}

func lockC() {
	c.Lock()
	c.Unlock()
}
