// Package cost exercises the floatcmp analyzer.
package cost

// Equal compares floats exactly: planted bug.
func Equal(a, b float64) bool { return a == b }

// ZeroGuard compares against literal zero, the allowed guard.
func ZeroGuard(x float64) bool { return x == 0 }

// Near compares against a tolerance, the blessed form.
func Near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// Ints may compare exactly.
func Ints(a, b int) bool { return a == b }
