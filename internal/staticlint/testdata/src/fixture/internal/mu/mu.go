// Package mu exercises the mutexlock analyzer: a leaked lock, a
// value receiver and an assignment that copy the lock, and the clean
// lock/defer-unlock twin.
package mu

import "sync"

// Counter guards a count.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc locks and defers the unlock: clean.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Leak locks and never unlocks: planted bug.
func (c *Counter) Leak() int {
	c.mu.Lock()
	return c.n
}

// Snapshot has a value receiver, copying the lock: planted bug.
func (c Counter) Snapshot() int {
	return c.n
}

// Clone copies a lock-bearing value by assignment: planted bug.
func Clone(c *Counter) int {
	cp := *c
	return cp.n
}
