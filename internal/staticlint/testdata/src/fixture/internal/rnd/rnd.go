// Package rnd plants a global math/rand draw outside the seeded stats
// scope, for the globalrand analyzer.
package rnd

import "math/rand"

// Pick draws from the global stream.
func Pick(n int) int { return rand.Intn(n) }
