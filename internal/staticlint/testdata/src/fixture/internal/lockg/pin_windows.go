// Excluded from the analysed program on every CI platform by its
// GOOS filename suffix; exists so the loader's OS/arch file selection
// is exercised on a real package.
package lockg

// winPinned would be a planted unguarded write if this file were ever
// selected on linux CI; it must not appear in the fixture golden.
func winPinned(b *Box) { b.n++ }
