// Package lockg plants lockguard violations next to clean twins: an
// unguarded write, a contract call without the lock, a write under a
// read lock, and a registered struct with no annotations.
package lockg

import (
	"os"
	"sync"
)

// Box is a guarded counter.
type Box struct {
	mu sync.Mutex
	n  int // guarded by mu
	r  int // guarded by mu
}

// Get locks around the read: clean twin.
func (b *Box) Get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Bump writes the guarded field without the lock: planted bug.
func (b *Box) Bump() {
	b.n++
}

// bumpLocked is the annotated helper; requires mu held.
func (b *Box) bumpLocked() { b.n++ }

// Sum calls the helper while holding the lock: clean twin.
func (b *Box) Sum() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bumpLocked()
	return b.n + b.r
}

// BadCall calls the annotated helper without the lock: planted bug.
func (b *Box) BadCall() { b.bumpLocked() }

// Reset shows the branch join: both arms hold the lock, so the write
// after the if is clean.
func (b *Box) Reset(hard bool) {
	if hard {
		b.mu.Lock()
	} else {
		b.mu.Lock()
	}
	b.n = 0
	b.mu.Unlock()
}

// RW is a read-write guarded value.
type RW struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

// Read holds the read lock: clean twin.
func (r *RW) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

// BadWrite mutates under only a read lock: planted bug.
func (r *RW) BadWrite() {
	r.mu.RLock()
	r.v++
	r.mu.RUnlock()
}

// Naked is registered in the fixture lock registry but annotates no
// field: the registry finding proves missing annotations cannot hide.
type Naked struct {
	mu sync.Mutex
	n  int
}

// Touch locks conventionally; only the missing annotation fires.
func (k *Naked) Touch() {
	k.mu.Lock()
	k.n++
	k.mu.Unlock()
}

// --- clean twins exercising the walker's full statement surface ---

// table pairs a guarded map with a guarded scalar, so index writes and
// pointer hand-outs both hit the lock-set checks.
type table struct {
	mu   sync.Mutex
	m    map[string]int // guarded by mu
	mode int            // guarded by mu
}

// regMu is a package-level mutex: its lock identity is the package
// variable itself, not a struct field.
var regMu sync.Mutex

var reg int

// Classify drives switch, type-switch and select joins with the lock
// held on every path: clean twin.
func (t *table) Classify(k string, v any, ch chan int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch k {
	case "a":
		t.mode = 1
	case "b":
		t.mode = 2
	default:
		t.mode = 0
	}
	switch v := v.(type) {
	case int:
		t.m[k] = v
	case string:
		t.m[k] = len(v)
	}
	select {
	case n := <-ch:
		t.m[k] += n
	default:
	}
	return t.mode
}

// drainLocked empties the table through a parameter-rooted contract;
// requires t.mu held.
func drainLocked(t *table) {
	for k := range t.m {
		delete(t.m, k)
	}
}

// Drain locks, then delegates to the parameter-contract helper: clean
// twin of a contract call resolved through an argument, not a
// receiver.
func (t *table) Drain() {
	t.mu.Lock()
	drainLocked(t)
	t.mu.Unlock()
}

// Ptr hands out the guarded field's address only under the lock.
func (t *table) Ptr() {
	t.mu.Lock()
	p := &t.mode
	*p = 3
	t.mu.Unlock()
}

// Global bumps a package-level counter under the package-level mutex.
func Global() {
	regMu.Lock()
	reg++
	regMu.Unlock()
}

// Scratch locks a function-local mutex, whose identity collapses to
// the package.
func Scratch() int {
	var mu sync.Mutex
	n := 0
	mu.Lock()
	n++
	mu.Unlock()
	return n
}

// Peek reads under either lock flavour; the branch join keeps the
// weaker capability, so the read stays clean.
func (r *RW) Peek(fast bool) int {
	if fast {
		r.mu.RLock()
		defer r.mu.RUnlock()
	} else {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	return r.v
}

// Demote writes first, reads second: the join of a write lock and a
// read lock is a read lock, so the trailing read is still clean.
func (r *RW) Demote(fast bool) int {
	if !fast {
		r.mu.Lock()
		defer r.mu.Unlock()
	} else {
		r.mu.RLock()
		defer r.mu.RUnlock()
	}
	return r.v
}

// Pair nests two instances of the same lock; the collapsed identity
// makes that a self-edge, which the order graph deliberately skips.
func Pair(x, y *Box) {
	x.mu.Lock()
	if y != nil {
		y.mu.Lock()
	}
	x.n = 1
	x.mu.Unlock()
	if y != nil {
		y.mu.Unlock()
	}
}

// wrap reaches a lock through a two-hop field path, so contracts and
// identities resolve across an intermediate struct.
type wrap struct {
	inner table
}

// resetLocked zeroes the inner mode; requires w.inner.mu held.
func resetLocked(w *wrap) {
	w.inner.mode = 0
}

// ResetInner acquires the inner lock through the wrapper: clean twin
// of a multi-hop contract.
func (w *wrap) ResetInner() {
	w.inner.mu.Lock()
	resetLocked(w)
	w.inner.mu.Unlock()
}

// anon is a mutex inside an anonymous struct: no named owner, so its
// lock identity falls back to the expression form.
var anon = struct {
	mu sync.Mutex
	n  int
}{}

// Anon locks the anonymous struct's mutex conventionally.
func Anon() {
	anon.mu.Lock()
	anon.n++
	anon.mu.Unlock()
}

// Must panics on the error path; the panicking branch terminates, so
// the join keeps the lock for the trailing read.
func (t *table) Must(ok bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !ok {
		panic("bad table")
	}
	if t.mode < 0 {
		os.Exit(1)
	}
	return t.mode
}

// Exercise walks the remaining expression shapes - slices, type
// asserts, composite literals, pointer reads - with the lock held.
func (t *table) Exercise(v any, xs []int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	pair := []int{t.mode, t.m["a"]}
	sub := xs[0:len(pair)]
	if n, ok := v.(int); ok && t.mode > n {
		t.mode = n - len(sub)
	}
	p := &t.mode
	n := *p
	byName := map[string]int{"base": n}
	_ = table{mode: 1} // composite-literal keys are field names, not reads
	return byName["base"] + pair[0]
}
