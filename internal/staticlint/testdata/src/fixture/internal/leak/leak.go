// Package leak plants fire-and-forget goroutines next to the three
// accepted shutdown disciplines.
package leak

import (
	"context"
	"sync"
)

// Forever spins with no exit signal: planted bug.
func Forever() {
	go func() {
		for {
			step()
		}
	}()
}

// WithCtx ties the goroutine to ctx: clean twin.
func WithCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				use(v)
			}
		}
	}()
}

// WithWG joins through the wait group: clean twin.
func WithWG(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			step()
		}()
	}
	wg.Wait()
}

// Drain ranges the channel until it closes: clean twin.
func Drain(ch chan int) {
	go func() {
		for v := range ch {
			use(v)
		}
	}()
}

// run is a named worker with no exit path; the finding lands on the
// go statement that spawns it.
func run(ch chan int) {
	for {
		ch <- 1
	}
}

// SpawnNamed spawns the leaky named worker: planted bug.
func SpawnNamed(ch chan int) {
	go run(ch)
}

func step()     {}
func use(v int) { _ = v }
