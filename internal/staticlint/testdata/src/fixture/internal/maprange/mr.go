// Package maprange exercises the maprange analyzer: the blessed
// collect-then-sort idiom, the planted unsorted append and direct
// encode, and the order-independent shapes that must stay silent.
package maprange

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Keys collects then sorts: the blessed idiom.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Unsorted appends in iteration order and never sorts: planted bug.
func Unsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Encode streams entries straight from the map: planted bug.
func Encode(m map[string]int) []byte {
	var b bytes.Buffer
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.Bytes()
}

// Invert writes through keys, which is order-independent.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Total accumulates ints, which commutes.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Render streams keys through a Builder method: the other planted
// encode shape.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}

// LastWins assigns a loop value to an outer variable: last-key-wins,
// surfaced only through the determinism prover, not maprange.
func LastWins(m map[string]int) int {
	last := 0
	for _, v := range m {
		last = v
	}
	return last
}

// First returns from inside the loop: first-key-wins, ditto.
func First(m map[string]int) (int, bool) {
	for _, v := range m {
		return v, true
	}
	return 0, false
}

// Push sends values down a channel in iteration order, ditto.
func Push(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v
	}
}

// SetFlag assigns a constant, which no visit order can change.
func SetFlag(m map[string]int) bool {
	found := false
	for range m {
		found = true
	}
	return found
}

// SetOuter assigns a loop-invariant value: order-independent.
func SetOuter(m map[string]int, x int) int {
	got := 0
	for range m {
		got = x
	}
	return got
}

// Derived launders the loop value through a temporary; the verdict
// (last-key-wins, prover-only) must not change.
func Derived(m map[string]int) int {
	last := 0
	for _, v := range m {
		w := v * 2
		last = w
	}
	return last
}

type acc struct{ n int }

// Sum accumulates ints through a selector and a pointer: the target
// resolver chases both, and integer += stays exempt.
func Sum(m map[string]int, a *acc, p *int) {
	for _, v := range m {
		a.n += v
		*p += v
	}
}

// Each hands values to a caller-supplied function: out of scope.
func Each(m map[string]int, f func(int)) {
	for _, v := range m {
		f(v)
	}
}
