// Command app is the fixture entry point: cmd/ may mint contexts and
// read the clock, and sits outside the errcheck scope.
package main

import (
	"context"
	"fmt"
	"time"
)

func main() {
	ctx := context.Background()
	_ = ctx
	fmt.Println(time.Now().Unix())
}
