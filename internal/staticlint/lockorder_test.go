package staticlint_test

import (
	"bytes"
	"strings"
	"testing"

	"gpuport/internal/staticlint"
)

// TestLockGraphFixture proves the exported lock-graph surface over the
// fixture module: the interprocedural edges exist, the planted cycle
// is found canonically, and both encodings are deterministic.
func TestLockGraphFixture(t *testing.T) {
	g := staticlint.BuildLockGraph(loadFixture(t))

	nodes := g.Nodes()
	for _, want := range []string{
		"fixture/internal/lockord.a",
		"fixture/internal/lockord.b",
		"fixture/internal/lockord.c",
		"fixture/internal/lockg.Box.mu",
		"fixture/internal/lockg.regMu",
		"fixture/internal/lockg.(local).mu",
	} {
		found := false
		for _, n := range nodes {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("lock graph missing node %s (have %v)", want, nodes)
		}
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("nodes out of order: %s before %s", nodes[i-1], nodes[i])
		}
	}

	edges := g.Edges()
	hasEdge := func(from, to string) bool {
		for _, e := range edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	// The AB/BA pair is the planted cycle; a->c flows through the
	// lockC helper, so its presence proves interprocedural edges.
	for _, e := range [][2]string{
		{"fixture/internal/lockord.a", "fixture/internal/lockord.b"},
		{"fixture/internal/lockord.b", "fixture/internal/lockord.a"},
		{"fixture/internal/lockord.a", "fixture/internal/lockord.c"},
		{"fixture/internal/lockord.b", "fixture/internal/lockord.c"},
	} {
		if !hasEdge(e[0], e[1]) {
			t.Errorf("lock graph missing edge %s -> %s", e[0], e[1])
		}
	}
	for _, e := range edges {
		if e.From == e.To {
			t.Errorf("self-edge on %s: instance-collapsed identities must not self-cycle", e.From)
		}
		if !strings.Contains(e.Site, ".go:") {
			t.Errorf("edge %s -> %s has no source site: %q", e.From, e.To, e.Site)
		}
	}

	cycles := g.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want exactly the planted AB/BA cycle: %v", len(cycles), cycles)
	}
	cyc := cycles[0]
	if cyc[0].From != "fixture/internal/lockord.a" {
		t.Errorf("cycle not canonicalised to smallest-first: starts at %s", cyc[0].From)
	}
	if cyc[len(cyc)-1].To != cyc[0].From {
		t.Errorf("cycle does not close: %v", cyc)
	}
}

// TestLockGraphEncodingsDeterministic: both artifact encodings are
// byte-identical across independent builds of the graph.
func TestLockGraphEncodingsDeterministic(t *testing.T) {
	prog := loadFixture(t)
	g1 := staticlint.BuildLockGraph(prog)
	g2 := staticlint.BuildLockGraph(prog)

	j1, err := g1.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := g2.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("EncodeJSON is not byte-stable across builds")
	}
	if !strings.HasPrefix(string(j1), "{\n  \"version\": 1,") {
		t.Errorf("JSON must lead with its version, got %.40q", j1)
	}
	if !strings.Contains(string(j1), `"module": "fixture"`) {
		t.Errorf("JSON missing the module name:\n%.200s", j1)
	}

	d1, d2 := g1.EncodeDOT(), g2.EncodeDOT()
	if !bytes.Equal(d1, d2) {
		t.Error("EncodeDOT is not byte-stable across builds")
	}
	dot := string(d1)
	if !strings.HasPrefix(dot, "digraph lockorder {") || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("DOT shape drifted:\n%s", dot)
	}
	if !strings.Contains(dot, `"fixture/internal/lockord.a" -> "fixture/internal/lockord.b"`) {
		t.Errorf("DOT missing the planted edge:\n%s", dot)
	}
}

// TestLockRegistryMisses drives the registry refusal paths: malformed
// entries and entries naming vanished types must fire, so the
// concurrency proof cannot silently shrink on a rename.
func TestLockRegistryMisses(t *testing.T) {
	prog := loadFixture(t)
	cfg := fixtureConfig()
	cfg.LockGuarded = []string{
		"noDotEntry",
		"fixture/internal/lockg.Gone",
		"fixture/internal/nosuchpkg.T",
		"fixture/internal/lockg.Box", // valid and annotated: silent
	}
	res := staticlint.Run(prog, cfg, staticlint.AnalyzersByName([]string{"lockguard"}))
	var msgs []string
	for _, d := range res.Diagnostics {
		if strings.Contains(d.Message, "registry") {
			msgs = append(msgs, d.Message)
		}
	}
	if len(msgs) != 3 {
		t.Fatalf("registry findings = %d, want 3:\n%s", len(msgs), strings.Join(msgs, "\n"))
	}
	for _, want := range []string{
		`lock registry entry "noDotEntry" is not of the form pkg/path.Type`,
		`lock registry entry "fixture/internal/lockg.Gone" matches no struct type`,
		`lock registry entry "fixture/internal/nosuchpkg.T" matches no struct type`,
	} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing registry finding %q in:\n%s", want, strings.Join(msgs, "\n"))
		}
	}
}
