package staticlint

// The lockorder analyzer: build the global lock-acquisition graph —
// an edge A -> B means some path acquires lock B while holding lock A,
// directly or through any chain of module-local calls — and fail on
// any cycle, which is the static signature of a potential deadlock.
// The graph itself is a reviewable artifact: staticgate -lockgraph
// emits it as deterministic JSON and DOT, and `make lockgraph`
// renders it locally.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockEdge is one acquisition-order edge with the site that witnesses
// it (the inner Lock call, or the call that transitively acquires).
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Site string `json:"site"` // module-relative file:line

	pos token.Pos
}

// LockGraph is the module's lock-acquisition graph.
type LockGraph struct {
	Module string
	edges  map[string]map[string]LockEdge // from -> to -> witness
	nodes  map[string]bool                // every lock ever acquired
}

// funcLockSummary is the per-function state the interprocedural pass
// accumulates.
type funcLockSummary struct {
	fn       *types.Func
	acquires map[lockID]bool // transitive: locks this function may take
	callees  map[*types.Func]bool
	// heldCalls are call sites executed with locks held; once the
	// fixpoint settles, each contributes held -> acquires(callee) edges.
	heldCalls []heldCall
}

type heldCall struct {
	callee *types.Func
	held   []lockID
	pos    token.Pos
}

// BuildLockGraph computes the lock-acquisition graph for the whole
// program. Function literals that escape their declaration site (go,
// defer, stored closures) contribute the edges of their own bodies,
// but their acquisitions do not join the declaring function's summary
// — a returned cancel closure does not run under the locks of the
// function that built it.
func BuildLockGraph(prog *Program) *LockGraph {
	facts := collectLockFacts(prog)
	g := &LockGraph{
		Module: prog.ModulePath,
		edges:  map[string]map[string]LockEdge{},
		nodes:  map[string]bool{},
	}
	summaries := map[*types.Func]*funcLockSummary{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				s := &funcLockSummary{fn: fn, acquires: map[lockID]bool{}, callees: map[*types.Func]bool{}}
				summaries[fn] = s
				g.scanFunc(prog, facts, pkg, fd, s)
			}
		}
	}
	// Fixpoint: propagate acquisitions up the call graph.
	for changed := true; changed; {
		changed = false
		for _, s := range summaries {
			for callee := range s.callees {
				cs := summaries[callee]
				if cs == nil {
					continue
				}
				for id := range cs.acquires {
					if !s.acquires[id] {
						s.acquires[id] = true
						changed = true
					}
				}
			}
		}
	}
	// Transitive edges: a call made with locks held acquires everything
	// its callee (transitively) acquires.
	for _, s := range summaries {
		for _, hc := range s.heldCalls {
			cs := summaries[hc.callee]
			if cs == nil {
				continue
			}
			for id := range cs.acquires {
				for _, h := range hc.held {
					g.addEdge(prog, h, id, hc.pos)
				}
			}
		}
	}
	return g
}

// scanFunc walks one function, recording direct acquisitions, direct
// edges, and the calls made while holding locks.
func (g *LockGraph) scanFunc(prog *Program, facts *lockFacts, pkg *Package, fd *ast.FuncDecl, s *funcLockSummary) {
	w := &lockWalker{facts: facts, pkg: pkg}
	w.onAcquire = func(key string, lock heldLock, pos token.Pos, held lockState) {
		g.nodes[string(lock.id)] = true
		for _, h := range held {
			g.addEdge(prog, h.id, lock.id, pos)
		}
		if w.detached == 0 {
			s.acquires[lock.id] = true
		}
	}
	record := func(callee *types.Func, pos token.Pos, held lockState) {
		if w.detached == 0 {
			s.callees[callee] = true
		}
		if len(held) == 0 {
			return
		}
		ids := make([]lockID, 0, len(held))
		for _, h := range held {
			ids = append(ids, h.id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		s.heldCalls = append(s.heldCalls, heldCall{callee: callee, held: ids, pos: pos})
	}
	w.onCall = record
	w.onContractCall = func(callee *types.Func, requiredKey string, pos token.Pos, held lockState) {
		// onCall fires for contract callees too; nothing extra here.
	}
	w.walkFunc(fd)
}

// addEdge records an edge, keeping the lexicographically smallest
// witness site so the artifact is byte-identical across runs.
func (g *LockGraph) addEdge(prog *Program, from, to lockID, pos token.Pos) {
	if from == to {
		// Identities collapse instances (every *Recorder's mu is one
		// node), so a self-edge usually means two distinct instances,
		// not recursive locking; reporting it would be noise.
		return
	}
	g.nodes[string(from)] = true
	g.nodes[string(to)] = true
	p := prog.Fset.Position(pos)
	e := LockEdge{From: string(from), To: string(to), Site: fmt.Sprintf("%s:%d", prog.FileName(pos), p.Line), pos: pos}
	if g.edges[e.From] == nil {
		g.edges[e.From] = map[string]LockEdge{}
	}
	if old, ok := g.edges[e.From][e.To]; ok && old.Site <= e.Site {
		return
	}
	g.edges[e.From][e.To] = e
}

// Nodes returns every lock in the graph, sorted.
func (g *LockGraph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges returns every edge, sorted by (From, To).
func (g *LockGraph) Edges() []LockEdge {
	var out []LockEdge
	for _, tos := range g.edges {
		for _, e := range tos {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Cycles returns every elementary cycle's canonical rendering, sorted,
// each with the edge list that witnesses it. Detection is a DFS over
// sorted adjacency, so the result is deterministic.
func (g *LockGraph) Cycles() [][]LockEdge {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var cycles [][]LockEdge
	seen := map[string]bool{}

	adj := func(n string) []string {
		var out []string
		for to := range g.edges[n] {
			out = append(out, to)
		}
		sort.Strings(out)
		return out
	}
	var dfs func(n string)
	dfs = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		for _, to := range adj(n) {
			switch color[to] {
			case white:
				dfs(to)
			case gray:
				// stack[i..] + to closes a cycle.
				i := len(stack) - 1
				for i >= 0 && stack[i] != to {
					i--
				}
				cyc := append(append([]string{}, stack[i:]...), to)
				cyc = canonicalCycle(cyc)
				key := fmt.Sprint(cyc)
				if !seen[key] {
					seen[key] = true
					var edges []LockEdge
					for k := 0; k+1 < len(cyc); k++ {
						edges = append(edges, g.edges[cyc[k]][cyc[k+1]])
					}
					cycles = append(cycles, edges)
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range g.Nodes() {
		if color[n] == white {
			dfs(n)
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return cycleString(cycles[i]) < cycleString(cycles[j]) })
	return cycles
}

// canonicalCycle rotates a cycle (first == last) so its smallest node
// leads, making equal cycles found from different roots compare equal.
func canonicalCycle(cyc []string) []string {
	body := cyc[:len(cyc)-1]
	min := 0
	for i, n := range body {
		if n < body[min] {
			min = i
		}
	}
	out := append(append([]string{}, body[min:]...), body[:min]...)
	return append(out, out[0])
}

// cycleString renders a cycle's node path "A -> B -> A".
func cycleString(edges []LockEdge) string {
	var b bytes.Buffer
	for i, e := range edges {
		if i == 0 {
			b.WriteString(e.From)
		}
		b.WriteString(" -> ")
		b.WriteString(e.To)
	}
	return b.String()
}

// EncodeJSON renders the graph as indented, byte-stable JSON.
func (g *LockGraph) EncodeJSON() ([]byte, error) {
	out := struct {
		Version int        `json:"version"`
		Module  string     `json:"module"`
		Nodes   []string   `json:"nodes"`
		Edges   []LockEdge `json:"edges"`
	}{Version: 1, Module: g.Module, Nodes: g.Nodes(), Edges: g.Edges()}
	if out.Edges == nil {
		out.Edges = []LockEdge{}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeDOT renders the graph in Graphviz DOT form, byte-stable.
func (g *LockGraph) EncodeDOT() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "digraph lockorder {\n")
	fmt.Fprintf(&b, "  label=%q;\n  labelloc=\"t\";\n  rankdir=\"LR\";\n", g.Module+" lock-acquisition order")
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, e.Site)
	}
	b.WriteString("}\n")
	return b.Bytes()
}

func runLockOrder(pass *Pass) {
	g := BuildLockGraph(pass.Prog)
	for _, cyc := range g.Cycles() {
		var sites bytes.Buffer
		for i, e := range cyc {
			if i > 0 {
				sites.WriteString(", ")
			}
			fmt.Fprintf(&sites, "%s->%s at %s", e.From, e.To, e.Site)
		}
		pass.Reportf(cyc[0].pos, "lock acquisition cycle %s (deadlock risk: pick one global order; edges: %s)", cycleString(cyc), sites.String())
	}
}
