package staticlint_test

import (
	"os"
	"path/filepath"
	"testing"

	"gpuport/internal/staticlint"
)

func TestBaselineApply(t *testing.T) {
	res := &staticlint.Result{Diagnostics: []staticlint.Diagnostic{
		{Rule: "errcheck", File: "a.go", Line: 3, Message: "dropped"},
		{Rule: "errcheck", File: "a.go", Line: 9, Message: "dropped"},
		{Rule: "floatcmp", File: "b.go", Line: 1, Message: "exact"},
	}}

	t.Run("empty baseline: everything fresh", func(t *testing.T) {
		fresh, stale := (&staticlint.Baseline{}).Apply(res)
		if len(fresh) != 3 || len(stale) != 0 {
			t.Fatalf("fresh=%d stale=%d, want 3/0", len(fresh), len(stale))
		}
	})

	t.Run("matching is a multiset", func(t *testing.T) {
		// One ledger entry absorbs exactly one of the two identical
		// line-less findings; the second stays fresh.
		bl := &staticlint.Baseline{Entries: []staticlint.BaselineEntry{
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
		}}
		fresh, stale := bl.Apply(res)
		if len(fresh) != 2 || len(stale) != 0 {
			t.Fatalf("fresh=%d stale=%d, want 2/0", len(fresh), len(stale))
		}
	})

	t.Run("stale entries surface", func(t *testing.T) {
		bl := &staticlint.Baseline{Entries: []staticlint.BaselineEntry{
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
			{Rule: "floatcmp", File: "b.go", Message: "exact"},
			{Rule: "gone", File: "c.go", Message: "paid off"},
		}}
		fresh, stale := bl.Apply(res)
		if len(fresh) != 0 {
			t.Errorf("fresh=%d, want 0", len(fresh))
		}
		if len(stale) != 1 || stale[0].Rule != "gone" {
			t.Fatalf("stale=%v, want the paid-off entry", stale)
		}
	})
}

// TestBaselineKeyEdgeCases pins the matching semantics of the
// line-less (rule, file, message) key under the inputs that churn real
// ledgers: several identical findings on one line, file renames, and
// identical messages under different rules or files.
func TestBaselineKeyEdgeCases(t *testing.T) {
	t.Run("duplicate findings on one line", func(t *testing.T) {
		// Two findings can legitimately share rule, file, message AND
		// line (two dropped errors in one statement). The ledger is a
		// multiset, so each needs its own entry - one entry must not
		// absorb both.
		res := &staticlint.Result{Diagnostics: []staticlint.Diagnostic{
			{Rule: "errcheck", File: "a.go", Line: 7, Col: 2, Message: "dropped"},
			{Rule: "errcheck", File: "a.go", Line: 7, Col: 14, Message: "dropped"},
		}}
		one := &staticlint.Baseline{Entries: []staticlint.BaselineEntry{
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
		}}
		fresh, stale := one.Apply(res)
		if len(fresh) != 1 || len(stale) != 0 {
			t.Fatalf("one entry: fresh=%d stale=%d, want 1/0", len(fresh), len(stale))
		}
		two := &staticlint.Baseline{Entries: []staticlint.BaselineEntry{
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
		}}
		fresh, stale = two.Apply(res)
		if len(fresh) != 0 || len(stale) != 0 {
			t.Fatalf("two entries: fresh=%d stale=%d, want 0/0", len(fresh), len(stale))
		}
	})

	t.Run("file rename strands the entry", func(t *testing.T) {
		// Renaming a file moves its findings to a new key: the old
		// entry goes stale and the finding comes back fresh, so the
		// gate forces the ledger to follow the rename instead of
		// silently carrying debt against a file that no longer exists.
		res := &staticlint.Result{Diagnostics: []staticlint.Diagnostic{
			{Rule: "errcheck", File: "internal/new/renamed.go", Line: 3, Message: "dropped"},
		}}
		bl := &staticlint.Baseline{Entries: []staticlint.BaselineEntry{
			{Rule: "errcheck", File: "internal/old/original.go", Message: "dropped"},
		}}
		fresh, stale := bl.Apply(res)
		if len(fresh) != 1 || fresh[0].File != "internal/new/renamed.go" {
			t.Fatalf("fresh=%v, want the renamed finding", fresh)
		}
		if len(stale) != 1 || stale[0].File != "internal/old/original.go" {
			t.Fatalf("stale=%v, want the stranded entry", stale)
		}
	})

	t.Run("message collisions stay distinct", func(t *testing.T) {
		// The same message text under a different rule or file is a
		// different finding; entries must not cross-absorb on message
		// alone, and the \x00 separator keeps adversarial field values
		// from aliasing ("a" + "b.go" vs "ab" + ".go").
		res := &staticlint.Result{Diagnostics: []staticlint.Diagnostic{
			{Rule: "errcheck", File: "a.go", Line: 1, Message: "dropped"},
			{Rule: "mutexlock", File: "a.go", Line: 2, Message: "dropped"},
			{Rule: "errcheck", File: "b.go", Line: 3, Message: "dropped"},
		}}
		bl := &staticlint.Baseline{Entries: []staticlint.BaselineEntry{
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
		}}
		fresh, stale := bl.Apply(res)
		if len(fresh) != 2 || len(stale) != 0 {
			t.Fatalf("fresh=%d stale=%d, want 2/0", len(fresh), len(stale))
		}
		for _, d := range fresh {
			if d.Rule == "errcheck" && d.File == "a.go" {
				t.Fatalf("the baselined finding leaked through as fresh: %+v", d)
			}
		}
	})

	t.Run("line and column moves do not churn", func(t *testing.T) {
		// Lines are deliberately absent from the key: editing elsewhere
		// in the file must not invalidate the ledger.
		res := &staticlint.Result{Diagnostics: []staticlint.Diagnostic{
			{Rule: "errcheck", File: "a.go", Line: 900, Col: 40, Message: "dropped"},
		}}
		bl := &staticlint.Baseline{Entries: []staticlint.BaselineEntry{
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
		}}
		fresh, stale := bl.Apply(res)
		if len(fresh) != 0 || len(stale) != 0 {
			t.Fatalf("fresh=%d stale=%d, want 0/0", len(fresh), len(stale))
		}
	})
}

func TestReadBaseline(t *testing.T) {
	dir := t.TempDir()

	t.Run("missing file is the empty baseline", func(t *testing.T) {
		bl, err := staticlint.ReadBaseline(filepath.Join(dir, "absent.json"))
		if err != nil || len(bl.Entries) != 0 {
			t.Fatalf("got %v entries, err %v; want empty, nil", bl, err)
		}
	})

	t.Run("malformed json is an error", func(t *testing.T) {
		path := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := staticlint.ReadBaseline(path); err == nil {
			t.Fatal("want parse error")
		}
	})

	t.Run("round trip", func(t *testing.T) {
		path := filepath.Join(dir, "ok.json")
		body := `{"entries":[{"rule":"errcheck","file":"a.go","message":"dropped"}]}`
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		bl, err := staticlint.ReadBaseline(path)
		if err != nil || len(bl.Entries) != 1 || bl.Entries[0].Rule != "errcheck" {
			t.Fatalf("entries=%v err=%v", bl.Entries, err)
		}
	})

	t.Run("unreadable file is an error", func(t *testing.T) {
		if _, err := staticlint.ReadBaseline(dir); err == nil {
			t.Fatal("reading a directory should fail")
		}
	})
}
