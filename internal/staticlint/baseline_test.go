package staticlint_test

import (
	"os"
	"path/filepath"
	"testing"

	"gpuport/internal/staticlint"
)

func TestBaselineApply(t *testing.T) {
	res := &staticlint.Result{Diagnostics: []staticlint.Diagnostic{
		{Rule: "errcheck", File: "a.go", Line: 3, Message: "dropped"},
		{Rule: "errcheck", File: "a.go", Line: 9, Message: "dropped"},
		{Rule: "floatcmp", File: "b.go", Line: 1, Message: "exact"},
	}}

	t.Run("empty baseline: everything fresh", func(t *testing.T) {
		fresh, stale := (&staticlint.Baseline{}).Apply(res)
		if len(fresh) != 3 || len(stale) != 0 {
			t.Fatalf("fresh=%d stale=%d, want 3/0", len(fresh), len(stale))
		}
	})

	t.Run("matching is a multiset", func(t *testing.T) {
		// One ledger entry absorbs exactly one of the two identical
		// line-less findings; the second stays fresh.
		bl := &staticlint.Baseline{Entries: []staticlint.BaselineEntry{
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
		}}
		fresh, stale := bl.Apply(res)
		if len(fresh) != 2 || len(stale) != 0 {
			t.Fatalf("fresh=%d stale=%d, want 2/0", len(fresh), len(stale))
		}
	})

	t.Run("stale entries surface", func(t *testing.T) {
		bl := &staticlint.Baseline{Entries: []staticlint.BaselineEntry{
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
			{Rule: "errcheck", File: "a.go", Message: "dropped"},
			{Rule: "floatcmp", File: "b.go", Message: "exact"},
			{Rule: "gone", File: "c.go", Message: "paid off"},
		}}
		fresh, stale := bl.Apply(res)
		if len(fresh) != 0 {
			t.Errorf("fresh=%d, want 0", len(fresh))
		}
		if len(stale) != 1 || stale[0].Rule != "gone" {
			t.Fatalf("stale=%v, want the paid-off entry", stale)
		}
	})
}

func TestReadBaseline(t *testing.T) {
	dir := t.TempDir()

	t.Run("missing file is the empty baseline", func(t *testing.T) {
		bl, err := staticlint.ReadBaseline(filepath.Join(dir, "absent.json"))
		if err != nil || len(bl.Entries) != 0 {
			t.Fatalf("got %v entries, err %v; want empty, nil", bl, err)
		}
	})

	t.Run("malformed json is an error", func(t *testing.T) {
		path := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := staticlint.ReadBaseline(path); err == nil {
			t.Fatal("want parse error")
		}
	})

	t.Run("round trip", func(t *testing.T) {
		path := filepath.Join(dir, "ok.json")
		body := `{"entries":[{"rule":"errcheck","file":"a.go","message":"dropped"}]}`
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		bl, err := staticlint.ReadBaseline(path)
		if err != nil || len(bl.Entries) != 1 || bl.Entries[0].Rule != "errcheck" {
			t.Fatalf("entries=%v err=%v", bl.Entries, err)
		}
	})

	t.Run("unreadable file is an error", func(t *testing.T) {
		if _, err := staticlint.ReadBaseline(dir); err == nil {
			t.Fatal("reading a directory should fail")
		}
	})
}
