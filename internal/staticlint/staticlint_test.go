package staticlint_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"gpuport/internal/staticlint"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureConfig mirrors DefaultConfig's shape against the fixture
// module's layout, with the fixture's own determinism roots.
func fixtureConfig() staticlint.Config {
	return staticlint.Config{
		DetRoots: []string{
			"fixture/internal/det.Good",
			"fixture/internal/det.Bad",
			"fixture/internal/det.BadOrder",
			"fixture/internal/det.check*",
		},
		WalltimeAllowed:      []string{"internal/obs", "cmd/"},
		RandAllowed:          []string{"internal/stats"},
		ErrcheckScope:        []string{"internal/"},
		FloatCmpScope:        []string{"internal/cost"},
		CtxScope:             []string{"internal/measure"},
		CtxBackgroundAllowed: []string{"cmd/"},
		MapRangeScope:        []string{"internal/"},
		ObsPath:              "internal/obs",
		ObsLiteralScope:      []string{"internal/obsemit"},
		LockGuarded: []string{
			"fixture/internal/lockg.Box",
			"fixture/internal/lockg.RW",
			"fixture/internal/lockg.Naked",
		},
		GoLeakScope: []string{"internal/leak", "internal/measure"},
	}
}

var (
	fixtureOnce sync.Once
	fixtureProg *staticlint.Program
	fixtureErr  error
)

// loadFixture loads the fixture module once for all tests; the load
// type-checks standard-library dependencies from source and is the
// expensive part of every test here.
func loadFixture(t *testing.T) *staticlint.Program {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureProg, fixtureErr = staticlint.Load(filepath.Join("testdata", "src", "fixture"))
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixture: %v", fixtureErr)
	}
	return fixtureProg
}

// TestAnalyzerFixtures runs each analyzer alone over the fixture
// module and checks it fires exactly on the planted bugs — and
// therefore stays silent on every clean twin in the same packages.
func TestAnalyzerFixtures(t *testing.T) {
	prog := loadFixture(t)
	want := map[string][]string{
		"ctxprop": {
			"internal/measure/measure.go:12", // context.Background outside cmd/
			"internal/measure/measure.go:19", // goroutines with no ctx in scope
		},
		"detpure": {
			"internal/det/det.go:22",  // float accumulation over map order
			"internal/wall/wall.go:8", // time.Now two hops from det.Bad
		},
		"errcheck": {
			"internal/errs/errs.go:15", // silent drop
			"internal/errs/errs.go:33", // bare allow does not suppress
		},
		"floatcmp":   {"internal/cost/cost.go:5"},
		"globalrand": {"internal/rnd/rnd.go:8"},
		"goleak": {
			"internal/leak/leak.go:12", // infinite loop, no exit signal
			"internal/leak/leak.go:65", // named worker with no exit path
		},
		"lockguard": {
			"internal/lockg/lockg.go:27", // write without the lock
			"internal/lockg/lockg.go:42", // contract call without the lock
			"internal/lockg/lockg.go:72", // write under RLock
			"internal/lockg/lockg.go:78", // registered struct, no annotations
		},
		"lockorder": {
			"internal/lockord/lockord.go:16", // a->b edge closing the AB/BA cycle
		},
		"maprange": {
			"internal/maprange/mr.go:26", // append without sort
			"internal/maprange/mr.go:35", // encode via Fprintf
			"internal/maprange/mr.go:63", // encode via Builder method
		},
		"mutexlock": {
			"internal/mu/mu.go:23", // Lock without Unlock
			"internal/mu/mu.go:28", // value receiver
			"internal/mu/mu.go:34", // assignment copy
		},
		"obsliteral": {
			"internal/obsemit/emit.go:29", // raw literal duplicating obs.CtrHits (tag on :23 exempt)
		},
		"obsnames": {
			"internal/obsemit/emit.go:13", // literal name
			"internal/obsemit/emit.go:14", // constant from the wrong package
			"internal/obsemit/emit.go:17", // literal attr key
		},
		"walltime": {"internal/wall/wall.go:8"},
	}
	if len(want) != len(staticlint.Analyzers()) {
		t.Fatalf("fixture expectations cover %d analyzers, engine ships %d", len(want), len(staticlint.Analyzers()))
	}
	for name, expect := range want {
		t.Run(name, func(t *testing.T) {
			r := staticlint.Run(prog, fixtureConfig(), staticlint.AnalyzersByName([]string{name}))
			var got []string
			for _, d := range r.Diagnostics {
				if d.Rule != name {
					continue // the "lint" bare-pragma finding rides along in every run
				}
				got = append(got, fmt.Sprintf("%s:%d", d.File, d.Line))
			}
			if !reflect.DeepEqual(got, expect) {
				t.Errorf("%s diagnostics:\n got %v\nwant %v", name, got, expect)
			}
		})
	}
}

// TestDetpureChain pins the message format: the full call chain from
// the root to the taint, so a finding is actionable without re-running.
func TestDetpureChain(t *testing.T) {
	prog := loadFixture(t)
	r := staticlint.Run(prog, fixtureConfig(), staticlint.AnalyzersByName([]string{"detpure"}))
	found := false
	for _, d := range r.Diagnostics {
		if d.Rule == "detpure" && strings.Contains(d.Message, "reads the wall clock (time.Now)") {
			found = true
			const chain = "via internal/det.Bad -> internal/det.indirect -> internal/wall.Stamp"
			if !strings.Contains(d.Message, chain) {
				t.Errorf("taint message lacks the call chain %q:\n%s", chain, d.Message)
			}
		}
	}
	if !found {
		t.Fatal("no wall-clock taint reported from the det.Bad root")
	}
}

// TestDetRootUnmatched: a proof-set pattern naming no function is a
// finding, so renaming a root cannot silently shrink the proof.
func TestDetRootUnmatched(t *testing.T) {
	prog := loadFixture(t)
	cfg := fixtureConfig()
	cfg.DetRoots = []string{"fixture/internal/det.Gone"}
	r := staticlint.Run(prog, cfg, staticlint.AnalyzersByName([]string{"detpure"}))
	var msgs []string
	for _, d := range r.Diagnostics {
		if d.Rule == "detpure" {
			msgs = append(msgs, d.Message)
		}
	}
	if len(msgs) != 1 || !strings.Contains(msgs[0], "matches no function") {
		t.Fatalf("want one matches-no-function finding, got %v", msgs)
	}
}

// TestSuppressions: a well-formed //lint:allow silences its finding
// and is counted; a bare one is itself a "lint" finding.
func TestSuppressions(t *testing.T) {
	prog := loadFixture(t)
	r := staticlint.Run(prog, fixtureConfig(), staticlint.AnalyzersByName([]string{"errcheck"}))
	if r.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (errs.Suppressed)", r.Suppressed)
	}
	var lint []string
	for _, d := range r.Diagnostics {
		if d.Rule == "lint" {
			lint = append(lint, fmt.Sprintf("%s:%d", d.File, d.Line))
		}
	}
	if !reflect.DeepEqual(lint, []string{"internal/errs/errs.go:32"}) {
		t.Errorf("lint findings = %v, want the bare pragma at errs.go:32", lint)
	}
}

// TestFixtureGolden runs the full analyzer set and compares the
// rendered text against the committed golden byte for byte.
func TestFixtureGolden(t *testing.T) {
	prog := loadFixture(t)
	r := staticlint.Run(prog, fixtureConfig(), staticlint.Analyzers())
	got := staticlint.RenderText(r)
	golden := filepath.Join("testdata", "fixture.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to write it)", err)
	}
	if got != string(want) {
		t.Errorf("fixture diagnostics drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestOutputStability: JSON and text renderings are byte-identical
// across repeated runs over the same program.
func TestOutputStability(t *testing.T) {
	prog := loadFixture(t)
	r1 := staticlint.Run(prog, fixtureConfig(), staticlint.Analyzers())
	r2 := staticlint.Run(prog, fixtureConfig(), staticlint.Analyzers())
	j1, err := staticlint.EncodeJSON(r1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := staticlint.EncodeJSON(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("EncodeJSON is not byte-stable across runs")
	}
	if staticlint.RenderText(r1) != staticlint.RenderText(r2) {
		t.Error("RenderText is not byte-stable across runs")
	}
	if !strings.HasPrefix(string(j1), "{\n  \"version\": 1,") {
		t.Errorf("JSON report must lead with its version, got %.40q", j1)
	}
}

// TestProofSetNames pins the repository's determinism proof set by
// name: dropping or renaming a root here is a reviewed decision, not
// an accident.
func TestProofSetNames(t *testing.T) {
	want := []string{
		"gpuport/internal/cost.Estimate",
		"gpuport/internal/cost/columnar.Build",
		"gpuport/internal/cost/columnar.NewEvaluator",
		"gpuport/internal/cost/columnar.Evaluator.Estimate",
		"gpuport/internal/graph.Graph.Fingerprint",
		"gpuport/internal/tracecache.appendHeader",
		"gpuport/internal/tracecache.decodeEntry",
		"gpuport/internal/irgl.Trace.AppendJSONCompact",
		"gpuport/internal/conform.Properties",
		"gpuport/internal/conform.check*",
		"gpuport/internal/obs.CanonicalTrace",
		"gpuport/internal/obs.CanonicalMetrics",
		"gpuport/internal/obs.NewTraceID",
		"gpuport/internal/obs.StreamEvent.AppendNDJSON",
		"gpuport/internal/obs/tsdb.Store.WriteMetrics",
		"gpuport/internal/measure.Campaign.Fingerprint",
		"gpuport/internal/server.Spec.Resolve",
		"gpuport/internal/server.queue.*",
		"gpuport/internal/server.Job.StatusBytes",
	}
	if got := staticlint.DefaultConfig().DetRoots; !reflect.DeepEqual(got, want) {
		t.Errorf("determinism proof set drifted:\n got %v\nwant %v", got, want)
	}
}

// TestInScope pins the scope-prefix grammar analyzer configs rely on.
func TestInScope(t *testing.T) {
	cases := []struct {
		rel      string
		prefixes []string
		want     bool
	}{
		{"internal/cost", []string{"internal/cost"}, true},
		{"internal/cost/deep", []string{"internal/cost"}, true},
		{"internal/costmodel", []string{"internal/cost"}, false},
		{"cmd/gpuport", []string{"cmd/"}, true},
		{"cmd", []string{"cmd/"}, false},
		{"internal/obs", []string{"internal/"}, true},
		{"", []string{"internal/"}, false},
	}
	for _, c := range cases {
		if got := staticlint.InScope(c.rel, c.prefixes); got != c.want {
			t.Errorf("InScope(%q, %v) = %v, want %v", c.rel, c.prefixes, got, c.want)
		}
	}
}
