// Package staticlint is the repo's whole-program static analysis
// engine: a module-aware source loader built on go/parser and
// go/types, a small analyzer framework (positioned diagnostics,
// //lint:allow suppressions, a shrink-only baseline, byte-stable JSON
// and text output), and the repo-specific analyzers that prove the
// determinism invariants the trace cache, conformance engine and
// canonical observability exports depend on.
//
// Everything here is standard library only. Imports inside the
// analysed module are resolved from source relative to the module
// root; standard-library imports are type-checked from GOROOT source
// via go/importer's "source" compiler, so the engine never fetches
// anything over the network and CI needs no tool downloads.
package staticlint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the analysed module.
type Package struct {
	// Path is the full import path ("gpuport/internal/cost").
	Path string
	// Rel is the module-relative path ("internal/cost", "" for the
	// module root package). Analyzer scopes are expressed against it.
	Rel string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the parsed, build-tag-selected, non-test files.
	Files []*ast.File
	// FileNames[i] is the module-relative slash path of Files[i].
	FileNames []string
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Program is the loaded whole program: every package of the module
// under one shared FileSet, fully type-checked.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string
	// Packages is sorted by import path, so every per-package walk in
	// the engine is deterministic.
	Packages []*Package

	byPath map[string]*Package
}

// PackageByRel returns the package with the given module-relative
// path, or nil.
func (p *Program) PackageByRel(rel string) *Package {
	path := p.ModulePath
	if rel != "" {
		path = p.ModulePath + "/" + rel
	}
	return p.byPath[path]
}

// FileName returns the module-relative slash path of the file
// containing pos, falling back to the FileSet's name for positions
// outside the module (standard library).
func (p *Program) FileName(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if rel, err := filepath.Rel(p.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// loader resolves imports for one Load call: module-local paths are
// type-checked from source under the module root, everything else is
// delegated to the GOROOT source importer.
type loader struct {
	fset    *token.FileSet
	root    string
	module  string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Load parses and type-checks every non-test package under root,
// which must contain a go.mod naming the module. Directories named
// testdata, hidden directories and _-prefixed directories are skipped,
// matching the go tool.
func Load(root string) (*Program, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		root:    absRoot,
		module:  modulePath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	dirs, err := packageDirs(absRoot)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       fset,
		ModulePath: modulePath,
		Root:       absRoot,
		byPath:     map[string]*Package{},
	}
	for _, dir := range dirs {
		rel, _ := filepath.Rel(absRoot, dir)
		path := modulePath
		if rel != "." {
			path = modulePath + "/" + filepath.ToSlash(rel)
		}
		if _, err := ld.load(path); err != nil {
			return nil, err
		}
	}
	for _, pkg := range ld.pkgs {
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[pkg.Path] = pkg
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("staticlint: cannot read %s (the analysis root must be a module root): %w", gomod, err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if path := strings.TrimSpace(rest); path != "" {
				return strings.Trim(path, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("staticlint: no module line in %s", gomod)
}

// packageDirs lists, in sorted order, every directory under root that
// holds at least one non-test .go file.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if n := len(dirs); n == 0 || dirs[n-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// Import implements types.Importer. Module-local paths recurse into
// the loader; "unsafe" and the standard library go to the GOROOT
// source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("staticlint: cgo is not supported")
	}
	local := path == ld.module || strings.HasPrefix(path, ld.module+"/")
	if !local {
		return ld.std.Import(path)
	}
	pkg, err := ld.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// load type-checks one module-local package (memoised).
func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("staticlint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.module), "/")
	dir := filepath.Join(ld.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("staticlint: package %s: %w", path, err)
	}
	pkg := &Package{Path: path, Rel: rel, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !fileSelected(name, src) {
			continue
		}
		file, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("staticlint: %w", err)
		}
		pkg.Files = append(pkg.Files, file)
		relFile := name
		if rel != "" {
			relFile = rel + "/" + name
		}
		pkg.FileNames = append(pkg.FileNames, relFile)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("staticlint: package %s has no buildable go files", path)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("staticlint: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	ld.pkgs[path] = pkg
	return pkg, nil
}

// fileSelected reports whether a file participates in the default
// build: its //go:build / +build constraints (and any GOOS/GOARCH
// filename suffix) must be satisfied with no custom tags set, exactly
// like a plain `go build` on this machine. This is what keeps the
// conformmutate-tagged mutation hooks out of the analysed program.
func fileSelected(name string, src []byte) bool {
	if !goodOSArchFile(name) {
		return false
	}
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if constraint.IsGoBuild(trimmed) || constraint.IsPlusBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				continue
			}
			if !expr.Eval(tagSatisfied) {
				return false
			}
		}
	}
	return true
}

// tagSatisfied is the default-build tag oracle: host OS/arch, the gc
// toolchain, and every go1.N language version are on; custom tags
// (conformmutate) are off.
func tagSatisfied(tag string) bool {
	return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
		strings.HasPrefix(tag, "go1.")
}

// knownOSArch covers the GOOS/GOARCH filename suffixes that could
// plausibly appear here; the repo itself has none, so the list only
// needs to keep foreign-platform files out if one ever lands.
var knownOSArch = map[string]bool{
	"linux": true, "darwin": true, "windows": true, "freebsd": true,
	"netbsd": true, "openbsd": true, "js": true, "wasip1": true,
	"amd64": true, "arm64": true, "386": true, "arm": true,
	"riscv64": true, "wasm": true, "ppc64le": true, "s390x": true,
}

func goodOSArchFile(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	// Consider up to the final two _-separated chunks, matching the go
	// tool's name_GOOS_GOARCH.go convention.
	tags := parts[max(1, len(parts)-2):]
	for _, t := range tags {
		if knownOSArch[t] && t != runtime.GOOS && t != runtime.GOARCH {
			return false
		}
	}
	return true
}
