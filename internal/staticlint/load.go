// Package staticlint is the repo's whole-program static analysis
// engine: a module-aware source loader built on go/parser and
// go/types, a small analyzer framework (positioned diagnostics,
// //lint:allow suppressions, a shrink-only baseline, byte-stable JSON
// and text output), and the repo-specific analyzers that prove the
// determinism invariants the trace cache, conformance engine and
// canonical observability exports depend on.
//
// Everything here is standard library only. Imports inside the
// analysed module are resolved from source relative to the module
// root; standard-library imports are type-checked from GOROOT source
// via go/importer's "source" compiler, so the engine never fetches
// anything over the network and CI needs no tool downloads.
package staticlint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one type-checked package of the analysed module.
type Package struct {
	// Path is the full import path ("gpuport/internal/cost").
	Path string
	// Rel is the module-relative path ("internal/cost", "" for the
	// module root package). Analyzer scopes are expressed against it.
	Rel string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the parsed, build-tag-selected, non-test files.
	Files []*ast.File
	// FileNames[i] is the module-relative slash path of Files[i].
	FileNames []string
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Program is the loaded whole program: every package of the module
// under one shared FileSet, fully type-checked.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string
	// Packages is sorted by import path, so every per-package walk in
	// the engine is deterministic.
	Packages []*Package

	byPath map[string]*Package
}

// PackageByRel returns the package with the given module-relative
// path, or nil.
func (p *Program) PackageByRel(rel string) *Package {
	path := p.ModulePath
	if rel != "" {
		path = p.ModulePath + "/" + rel
	}
	return p.byPath[path]
}

// FileName returns the module-relative slash path of the file
// containing pos, falling back to the FileSet's name for positions
// outside the module (standard library).
func (p *Program) FileName(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if rel, err := filepath.Rel(p.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// loader resolves imports for one Load call: module-local paths are
// served from the already-type-checked package map, everything else is
// delegated to the GOROOT source importer. It is shared by the
// concurrent type-check workers, so both the package map and the
// source importer (which memoises internally without locking) are
// mutex-guarded.
type loader struct {
	fset   *token.FileSet
	root   string
	module string

	mu   sync.Mutex // guarded by mu: pkgs
	pkgs map[string]*Package

	stdMu sync.Mutex // serialises std, which is not safe for concurrent use
	std   types.Importer
}

// parsedPkg is one package after the parse phase: files read,
// build-tag-selected and parsed, but not yet type-checked. localDeps
// lists its module-local imports, which drive type-check scheduling.
type parsedPkg struct {
	pkg       *Package
	localDeps []string
}

// Load parses and type-checks every non-test package under root,
// which must contain a go.mod naming the module. Directories named
// testdata, hidden directories and _-prefixed directories are skipped,
// matching the go tool.
//
// Loading is parallel in two phases - every package parses
// concurrently, then type-checking proceeds in dependency waves with
// up to GOMAXPROCS packages checked at once - but the result and every
// error are independent of scheduling: packages stay sorted by import
// path and the first error in path order wins.
func Load(root string) (*Program, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	dirs, err := packageDirs(absRoot)
	if err != nil {
		return nil, err
	}
	parsed, err := parseAll(fset, absRoot, modulePath, dirs)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:   fset,
		root:   absRoot,
		module: modulePath,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
	}
	if err := ld.checkAll(parsed); err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       fset,
		ModulePath: modulePath,
		Root:       absRoot,
		byPath:     map[string]*Package{},
	}
	for _, pkg := range ld.pkgs {
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[pkg.Path] = pkg
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// parseAll reads and parses every package directory concurrently. The
// shared FileSet synchronises internally, so parallel ParseFile calls
// are safe; position order within a file is what analyzers sort on, so
// file registration order across packages does not matter. dirs is
// sorted, and on failure the error from the smallest directory wins,
// keeping errors deterministic under any scheduling.
func parseAll(fset *token.FileSet, root, module string, dirs []string) ([]*parsedPkg, error) {
	parsed := make([]*parsedPkg, len(dirs))
	errs := make([]error, len(dirs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, dir string) {
			defer wg.Done()
			defer func() { <-sem }()
			parsed[i], errs[i] = parsePackage(fset, root, module, dir)
		}(i, dir)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parsed, nil
}

// parsePackage parses one directory into a not-yet-type-checked
// package.
func parsePackage(fset *token.FileSet, root, module, dir string) (*parsedPkg, error) {
	rel, _ := filepath.Rel(root, dir)
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	path := module
	if rel != "" {
		path = module + "/" + rel
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("staticlint: package %s: %w", path, err)
	}
	pkg := &Package{Path: path, Rel: rel, Dir: dir}
	deps := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !fileSelected(name, src) {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("staticlint: %w", err)
		}
		pkg.Files = append(pkg.Files, file)
		relFile := name
		if rel != "" {
			relFile = rel + "/" + name
		}
		pkg.FileNames = append(pkg.FileNames, relFile)
		for _, imp := range file.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == module || strings.HasPrefix(p, module+"/") {
				deps[p] = true
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("staticlint: package %s has no buildable go files", path)
	}
	pp := &parsedPkg{pkg: pkg}
	for p := range deps {
		pp.localDeps = append(pp.localDeps, p)
	}
	sort.Strings(pp.localDeps)
	return pp, nil
}

// checkAll type-checks the parsed packages in dependency waves: each
// wave holds every package whose module-local imports are already
// checked, and its members check concurrently (capped at GOMAXPROCS).
// An empty wave with packages still pending means the module-local
// import graph has a cycle.
func (ld *loader) checkAll(parsed []*parsedPkg) error {
	known := map[string]bool{}
	for _, pp := range parsed {
		known[pp.pkg.Path] = true
	}
	pending := append([]*parsedPkg(nil), parsed...)
	sort.Slice(pending, func(i, j int) bool { return pending[i].pkg.Path < pending[j].pkg.Path })
	done := map[string]bool{}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for len(pending) > 0 {
		var wave, blocked []*parsedPkg
		for _, pp := range pending {
			ready := true
			for _, dep := range pp.localDeps {
				// Imports of unknown module-local paths stay schedulable;
				// type-checking them produces the real import error.
				if known[dep] && !done[dep] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, pp)
			} else {
				blocked = append(blocked, pp)
			}
		}
		if len(wave) == 0 {
			// Every pending package waits on another pending package:
			// a cycle. pending is sorted, so the reported path is
			// deterministic.
			return fmt.Errorf("staticlint: import cycle through %s", blocked[0].pkg.Path)
		}
		errs := make([]error, len(wave))
		var wg sync.WaitGroup
		for i, pp := range wave {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, pp *parsedPkg) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = ld.check(pp.pkg)
			}(i, pp)
		}
		wg.Wait()
		// wave is in path order, so the surviving error is the one the
		// sequential loader would have hit first.
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		for _, pp := range wave {
			done[pp.pkg.Path] = true
		}
		pending = blocked
	}
	return nil
}

// check type-checks one package whose module-local imports are all
// checked already.
func (ld *loader) check(pkg *Package) error {
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(pkg.Path, ld.fset, pkg.Files, pkg.Info)
	if err != nil {
		return fmt.Errorf("staticlint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	ld.mu.Lock()
	ld.pkgs[pkg.Path] = pkg
	ld.mu.Unlock()
	return nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("staticlint: cannot read %s (the analysis root must be a module root): %w", gomod, err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if path := strings.TrimSpace(rest); path != "" {
				return strings.Trim(path, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("staticlint: no module line in %s", gomod)
}

// packageDirs lists, in sorted order, every directory under root that
// holds at least one non-test .go file.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if n := len(dirs); n == 0 || dirs[n-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// Import implements types.Importer. Module-local paths are served
// from the checked-package map (wave scheduling guarantees a package's
// imports check before it does); "unsafe" and the standard library go
// to the GOROOT source importer under stdMu.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("staticlint: cgo is not supported")
	}
	local := path == ld.module || strings.HasPrefix(path, ld.module+"/")
	if !local {
		ld.stdMu.Lock()
		defer ld.stdMu.Unlock()
		return ld.std.Import(path)
	}
	ld.mu.Lock()
	pkg := ld.pkgs[path]
	ld.mu.Unlock()
	if pkg != nil {
		return pkg.Types, nil
	}
	// Not in the parsed set: the import names a module-local directory
	// that is missing or holds no buildable files.
	rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.module), "/")
	if _, err := os.ReadDir(filepath.Join(ld.root, filepath.FromSlash(rel))); err != nil {
		return nil, fmt.Errorf("staticlint: package %s: %w", path, err)
	}
	return nil, fmt.Errorf("staticlint: package %s has no buildable go files", path)
}

// fileSelected reports whether a file participates in the default
// build: its //go:build / +build constraints (and any GOOS/GOARCH
// filename suffix) must be satisfied with no custom tags set, exactly
// like a plain `go build` on this machine. This is what keeps the
// conformmutate-tagged mutation hooks out of the analysed program.
func fileSelected(name string, src []byte) bool {
	if !goodOSArchFile(name) {
		return false
	}
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if constraint.IsGoBuild(trimmed) || constraint.IsPlusBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				continue
			}
			if !expr.Eval(tagSatisfied) {
				return false
			}
		}
	}
	return true
}

// tagSatisfied is the default-build tag oracle: host OS/arch, the gc
// toolchain, and every go1.N language version are on; custom tags
// (conformmutate) are off.
func tagSatisfied(tag string) bool {
	return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
		strings.HasPrefix(tag, "go1.")
}

// knownOSArch covers the GOOS/GOARCH filename suffixes that could
// plausibly appear here; the repo itself has none, so the list only
// needs to keep foreign-platform files out if one ever lands.
var knownOSArch = map[string]bool{
	"linux": true, "darwin": true, "windows": true, "freebsd": true,
	"netbsd": true, "openbsd": true, "js": true, "wasip1": true,
	"amd64": true, "arm64": true, "386": true, "arm": true,
	"riscv64": true, "wasm": true, "ppc64le": true, "s390x": true,
}

func goodOSArchFile(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	// Consider up to the final two _-separated chunks, matching the go
	// tool's name_GOOS_GOARCH.go convention.
	tags := parts[max(1, len(parts)-2):]
	for _, t := range tags {
		if knownOSArch[t] && t != runtime.GOOS && t != runtime.GOARCH {
			return false
		}
	}
	return true
}
