package staticlint

// Shared infrastructure for the concurrency-safety analyzers
// (lockguard, lockorder): annotation collection and a lock-set
// dataflow walker.
//
// Two annotation forms are recognised, both of which already existed
// as prose in this repository and become checked documentation here:
//
//   - a field comment containing "guarded by <mu>" marks the field as
//     protected by the sibling mutex field <mu>;
//   - a function doc comment containing "requires <x.mu> held" or
//     "Caller(s) hold(s) <x.mu>" states a lock contract: the named
//     receiver/parameter mutex is held on entry, and every call site
//     must prove it.
//
// The walker tracks the set of provably held locks through straight
// line code, branches (joined by intersection, with terminating
// branches excluded), loops, switches and selects. Locks are keyed by
// the source expression of their owner ("s.mu", "h.r.mu"), which is
// exactly the granularity the annotations speak in; a helper reached
// through a different expression must carry its own contract.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// guardedField is one "guarded by <mu>" field annotation.
type guardedField struct {
	guard string       // sibling mutex field name
	owner *types.Named // struct type declaring the field
}

// lockContract is a resolved requires-held annotation on a function:
// the lock root.path[0].path[1]... must be held by every caller.
type lockContract struct {
	root *types.Var // receiver or parameter owning the lock
	path []string   // field path from root to the mutex ("mu"; "fwd", "mu")
}

// factProblem is a malformed or unresolvable annotation; lockguard
// reports these so annotations cannot silently rot.
type factProblem struct {
	pos token.Pos
	msg string
}

// lockFacts is everything the lock analyzers know about the module.
type lockFacts struct {
	prog      *Program
	guarded   map[*types.Var]*guardedField
	contracts map[*types.Func]*lockContract
	// annotated records, per named struct type display name
	// ("pkg/path.Type"), whether it declares any guarded field; used to
	// check Config.LockGuarded registry entries.
	annotated map[string]bool
	problems  []factProblem
}

var (
	guardedByPattern  = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
	requiresPattern   = regexp.MustCompile(`requires\s+([A-Za-z_][A-Za-z0-9_.]*)\s+held|[Cc]allers?\s+holds?\s+([A-Za-z_][A-Za-z0-9_.]*)`)
	mutexMethodNames  = map[string]bool{"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true}
	mutexAcquireRead  = map[string]bool{"Lock": false, "RLock": true}
	mutexReleaseNames = map[string]bool{"Unlock": true, "RUnlock": true}
)

// collectLockFacts scans every package for guarded-field and
// requires-held annotations.
func collectLockFacts(prog *Program) *lockFacts {
	f := &lockFacts{
		prog:      prog,
		guarded:   map[*types.Var]*guardedField{},
		contracts: map[*types.Func]*lockContract{},
		annotated: map[string]bool{},
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch decl := decl.(type) {
				case *ast.GenDecl:
					f.collectStructAnnotations(pkg, decl)
				case *ast.FuncDecl:
					f.collectContract(pkg, decl)
				}
			}
		}
	}
	return f
}

func (f *lockFacts) collectStructAnnotations(pkg *Package, decl *ast.GenDecl) {
	if decl.Tok != token.TYPE {
		return
	}
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		named, _ := tn.Type().(*types.Named)
		for _, field := range st.Fields.List {
			guard := fieldGuardName(field)
			if guard == "" {
				continue
			}
			if !structHasMutexField(pkg.Info, st, guard) {
				f.problems = append(f.problems, factProblem{field.Pos(),
					"guarded-by annotation names " + guard + ", which is not a sibling sync.Mutex/RWMutex field"})
				continue
			}
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					f.guarded[v] = &guardedField{guard: guard, owner: named}
				}
			}
			if named != nil && named.Obj().Pkg() != nil {
				f.annotated[named.Obj().Pkg().Path()+"."+named.Obj().Name()] = true
			}
		}
	}
}

// fieldGuardName extracts the guard name from a field's doc or
// trailing comment, or "".
func fieldGuardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByPattern.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// structHasMutexField reports whether the literal struct declares a
// field with the given name whose type is sync.Mutex or sync.RWMutex.
func structHasMutexField(info *types.Info, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name != name {
				continue
			}
			v, ok := info.Defs[id].(*types.Var)
			return ok && isMutexType(v.Type())
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

func (f *lockFacts) collectContract(pkg *Package, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	m := requiresPattern.FindStringSubmatch(fd.Doc.Text())
	if m == nil {
		return
	}
	name := m[1]
	if name == "" {
		name = m[2]
	}
	name = strings.TrimRight(name, ".")
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	c := resolveContract(fn, name)
	if c == nil {
		f.problems = append(f.problems, factProblem{fd.Pos(),
			"lock contract \"" + name + "\" on " + fd.Name.Name + " does not resolve to a mutex field of its receiver or a parameter"})
		return
	}
	f.contracts[fn] = c
}

// resolveContract maps a contract name ("mu", "j.mu", "r.fwd.mu") to
// the receiver or parameter it roots in, validating that the field
// path ends at a mutex. A bare "mu" means receiver.mu.
func resolveContract(fn *types.Func, name string) *lockContract {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	parts := strings.Split(name, ".")
	rootName, path := parts[0], parts[1:]
	if len(path) == 0 {
		// Bare mutex name: the lock is receiver.<name>.
		rootName, path = "", parts
	}
	var root *types.Var
	if recv := sig.Recv(); recv != nil && (rootName == "" || recv.Name() == rootName) {
		root = recv
	}
	if root == nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if p := sig.Params().At(i); p.Name() == rootName {
				root = p
				break
			}
		}
	}
	if root == nil || !mutexPathValid(root.Type(), path) {
		return nil
	}
	return &lockContract{root: root, path: path}
}

// mutexPathValid walks a field path from t and reports whether it ends
// at a sync mutex.
func mutexPathValid(t types.Type, path []string) bool {
	for i, hop := range path {
		st, ok := derefStruct(t)
		if !ok {
			return false
		}
		var next types.Type
		for j := 0; j < st.NumFields(); j++ {
			if st.Field(j).Name() == hop {
				next = st.Field(j).Type()
				break
			}
		}
		if next == nil {
			return false
		}
		if i == len(path)-1 {
			return isMutexType(next)
		}
		t = next
	}
	return false
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// namedOf returns the named type behind t (through one pointer), or
// nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// lockID is the instance-collapsed identity of a lock, used by the
// lock-order graph: "pkg/path.Type.mu" for struct mutexes,
// "pkg/path.var" for package-level ones. When a lock is reached
// through a field of its own declaring type (obs.Recorder.fwd, the
// forward target), the identity is refined with the field name
// ("pkg/path.Recorder.mu[fwd]") so the documented parent-before-child
// order does not read as a self-cycle.
type lockID string

// lockIdentity computes the identity of the mutex named by the owner
// expression of a Lock/Unlock call (the sel.X of "s.mu.Lock()").
func lockIdentity(pkg *Package, e ast.Expr) lockID {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		v, _ := pkg.Info.Uses[e.Sel].(*types.Var)
		if v == nil {
			break
		}
		if !v.IsField() {
			// Package-qualified mutex variable (pkg.Mu).
			if v.Pkg() != nil {
				return lockID(v.Pkg().Path() + "." + v.Name())
			}
			break
		}
		base := ast.Unparen(e.X)
		owner := namedOf(pkg.Info.Types[base].Type)
		if owner == nil || owner.Obj().Pkg() == nil {
			break
		}
		id := owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + v.Name()
		if bsel, ok := base.(*ast.SelectorExpr); ok {
			if namedOf(pkg.Info.Types[bsel.X].Type) == owner {
				id += "[" + bsel.Sel.Name + "]"
			}
		}
		return lockID(id)
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return lockID(v.Pkg().Path() + "." + v.Name())
			}
			// Function-local mutex: collapse per package; a local lock
			// cannot order against anything beyond the functions that
			// can see it, so this stays sound for cycle detection.
			return lockID(v.Pkg().Path() + ".(local)." + v.Name())
		}
	}
	return lockID(pkg.Path + ".(expr)." + types.ExprString(e))
}

// contractKey renders a contract's lock as a held-set key rooted at
// the given base expression text ("j" + ["mu"] -> "j.mu").
func contractKey(base string, path []string) string {
	return base + "." + strings.Join(path, ".")
}

// contractLockID computes the lock identity of a contract's mutex by
// walking the declared field path, mirroring lockIdentity's via-field
// refinement for paths like r.fwd.mu.
func contractLockID(pkg *Package, c *lockContract) lockID {
	t := c.root.Type()
	var prevOwner *types.Named
	var prevField string
	for i, hop := range c.path {
		owner := namedOf(t)
		if owner == nil {
			break
		}
		st, ok := derefStruct(t)
		if !ok {
			break
		}
		var next types.Type
		for j := 0; j < st.NumFields(); j++ {
			if st.Field(j).Name() == hop {
				next = st.Field(j).Type()
				break
			}
		}
		if next == nil {
			break
		}
		if i == len(c.path)-1 {
			if owner.Obj().Pkg() == nil {
				break
			}
			id := owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + hop
			if prevOwner == owner {
				id += "[" + prevField + "]"
			}
			return lockID(id)
		}
		prevOwner, prevField = namedOf(next), hop
		t = next
	}
	return lockID(pkg.Path + ".(contract)." + contractKey(c.root.Name(), c.path))
}

// heldLock is one provably held lock in the walker's state.
type heldLock struct {
	id   lockID
	read bool // held via RLock only
}

// lockState maps held-set keys (owner expression text, "s.mu") to the
// lock held under that key.
type lockState map[string]heldLock

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// setTo replaces s's contents with src.
func (s lockState) setTo(src lockState) {
	for k := range s {
		delete(s, k)
	}
	for k, v := range src {
		s[k] = v
	}
}

// intersect keeps only locks held in every state; an RLock-only hold
// in any branch demotes the join to read.
func intersectStates(states []lockState) lockState {
	if len(states) == 0 {
		return lockState{}
	}
	out := states[0].clone()
	for _, s := range states[1:] {
		for k, v := range out {
			o, ok := s[k]
			if !ok {
				delete(out, k)
				continue
			}
			if o.read {
				v.read = true
				out[k] = v
			}
		}
	}
	return out
}

// lockWalker runs the lock-set dataflow over one function body,
// invoking callbacks at the events the two analyzers care about. Any
// callback may be nil.
type lockWalker struct {
	facts *lockFacts
	pkg   *Package

	// onAcquire fires when a Lock/RLock executes, with the set held
	// just before the acquisition.
	onAcquire func(key string, lock heldLock, pos token.Pos, held lockState)
	// onAccess fires on every guarded-field access; requiredKey is the
	// held-set key that must be present ("s.mu").
	onAccess func(field *types.Var, g *guardedField, requiredKey string, write bool, pos token.Pos, held lockState)
	// onContractCall fires on a call to a contract-annotated function;
	// requiredKey is resolved against the call's receiver/argument, or
	// "" when the root expression cannot be rendered.
	onContractCall func(callee *types.Func, requiredKey string, pos token.Pos, held lockState)
	// onCall fires on every other module-local static call.
	onCall func(callee *types.Func, pos token.Pos, held lockState)

	// detached counts how deep the walker currently is inside function
	// literals that do not run at their declaration site (go, defer,
	// stored closures). Lock acquisitions inside them are real events,
	// but they must not join the declaring function's summary.
	detached int
}

// walkFunc analyses one declared function: the entry state comes from
// its lock contract (if any), and every function literal that is not
// invoked on the spot is analysed with an empty held set, because it
// may run on any goroutine at any time.
func (w *lockWalker) walkFunc(fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	held := lockState{}
	if fn, ok := w.pkg.Info.Defs[fd.Name].(*types.Func); ok {
		if c := w.facts.contracts[fn]; c != nil {
			key := contractKey(c.root.Name(), c.path)
			held[key] = heldLock{id: contractLockID(w.pkg, c)}
		}
	}
	w.block(fd.Body, held)
}

// block walks statements sequentially; it reports whether control
// provably does not flow past the block's end.
func (w *lockWalker) block(b *ast.BlockStmt, held lockState) bool {
	if b == nil {
		return false
	}
	for _, s := range b.List {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt, held lockState) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.block(s, held)
	case *ast.ExprStmt:
		w.expr(s.X, held)
		return isTerminalCall(w.pkg.Info, s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the current flow; joining them into
		// the fallthrough state would be unsound (see Close's
		// unlock-then-return-early pattern).
		return true
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, held)
		}
		for _, l := range s.Lhs {
			w.writeTarget(l, held)
		}
		return false
	case *ast.IncDecStmt:
		w.writeTarget(s.X, held)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
		return false
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
		return false
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		thenSt := held.clone()
		thenTerm := w.block(s.Body, thenSt)
		elseSt := held.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			held.setTo(elseSt)
		case elseTerm:
			held.setTo(thenSt)
		default:
			held.setTo(intersectStates([]lockState{thenSt, elseSt}))
		}
		return false
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := held.clone()
		term := w.block(s.Body, body)
		w.stmt(s.Post, body)
		if !term {
			held.setTo(intersectStates([]lockState{held, body}))
		}
		return false
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.writeTarget(s.Key, held)
		w.writeTarget(s.Value, held)
		body := held.clone()
		if !w.block(s.Body, body) {
			held.setTo(intersectStates([]lockState{held, body}))
		}
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return w.switchStmt(s, held)
	case *ast.SelectStmt:
		var outs []lockState
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cs := held.clone()
			w.stmt(cc.Comm, cs)
			term := false
			for _, b := range cc.Body {
				if w.stmt(b, cs) {
					term = true
					break
				}
			}
			if !term {
				outs = append(outs, cs)
			}
		}
		if len(s.Body.List) > 0 && len(outs) == 0 {
			return true
		}
		if len(outs) > 0 {
			held.setTo(intersectStates(outs))
		}
		return false
	case *ast.GoStmt:
		// The goroutine runs with no lock inherited from the spawner.
		w.detachedCall(s.Call, held)
		return false
	case *ast.DeferStmt:
		// A deferred unlock releases at return, not here: walking past
		// it with the lock still held is exactly right. Other deferred
		// work runs at an unknowable lock state; analyse it detached.
		if f := calleeFunc(w.pkg.Info, s.Call); f != nil && isMutexMethod(f) && mutexReleaseNames[f.Name()] {
			return false
		}
		w.detachedCall(s.Call, held)
		return false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return false
}

// switchStmt joins all case bodies by intersection; without a default
// clause the entry state joins too (no case may match... a value
// switch always runs some path, but a case-less or sparse switch can
// fall through untouched).
func (w *lockWalker) switchStmt(s ast.Stmt, held lockState) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		body = s.Body
	}
	var outs []lockState
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		cs := held.clone()
		for _, e := range cc.List {
			w.expr(e, cs)
		}
		term := false
		for _, b := range cc.Body {
			if w.stmt(b, cs) {
				term = true
				break
			}
		}
		if !term {
			outs = append(outs, cs)
		}
	}
	if !hasDefault {
		outs = append(outs, held.clone())
	}
	if len(outs) == 0 {
		return true
	}
	held.setTo(intersectStates(outs))
	return false
}

// writeTarget processes an assignment target: a guarded selector is a
// write; writing through an index or dereference requires the lock on
// the container it reads.
func (w *lockWalker) writeTarget(e ast.Expr, held lockState) {
	switch e := ast.Unparen(e).(type) {
	case nil:
	case *ast.SelectorExpr:
		w.access(e, true, held)
		w.expr(e.X, held)
	case *ast.IndexExpr:
		// m[k] = v mutates the container: the container read itself
		// needs write-level protection.
		if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			w.access(sel, true, held)
			w.expr(sel.X, held)
		} else if e.X != nil {
			w.expr(e.X, held)
		}
		w.expr(e.Index, held)
	case *ast.StarExpr:
		w.expr(e.X, held)
	case *ast.Ident:
	default:
		if e != nil {
			w.expr(e, held)
		}
	}
}

// expr walks an expression in evaluation order, processing lock
// operations, guarded reads and calls.
func (w *lockWalker) expr(e ast.Expr, held lockState) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e, held)
	case *ast.SelectorExpr:
		w.access(e, false, held)
		w.expr(e.X, held)
	case *ast.FuncLit:
		// Not invoked here: it may run later, on any goroutine, so it
		// proves nothing from the current held set.
		w.detachedLit(e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				// Taking a guarded field's address hands out unchecked
				// access: require write-level protection at the site.
				w.access(sel, true, held)
				w.expr(sel.X, held)
				return
			}
		}
		w.expr(e.X, held)
	case *ast.BinaryExpr:
		w.expr(e.X, held)
		w.expr(e.Y, held)
	case *ast.ParenExpr:
		w.expr(e.X, held)
	case *ast.StarExpr:
		w.expr(e.X, held)
	case *ast.IndexExpr:
		w.expr(e.X, held)
		w.expr(e.Index, held)
	case *ast.IndexListExpr:
		w.expr(e.X, held)
	case *ast.SliceExpr:
		w.expr(e.X, held)
		w.expr(e.Low, held)
		w.expr(e.High, held)
		w.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		w.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				// Struct-literal keys are field names, not reads.
				if _, isIdent := kv.Key.(*ast.Ident); !isIdent {
					w.expr(kv.Key, held)
				}
				w.expr(kv.Value, held)
				continue
			}
			w.expr(el, held)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, held)
		w.expr(e.Value, held)
	}
}

// access checks one selector against the guarded-field annotations.
func (w *lockWalker) access(sel *ast.SelectorExpr, write bool, held lockState) {
	if w.onAccess == nil {
		return
	}
	v := fieldVarOf(w.pkg.Info, sel)
	if v == nil {
		return
	}
	g := w.facts.guarded[v]
	if g == nil {
		return
	}
	key := types.ExprString(ast.Unparen(sel.X)) + "." + g.guard
	w.onAccess(v, g, key, write, sel.Sel.Pos(), held)
}

// fieldVarOf resolves a selector to the struct field it reads, or nil.
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

func isMutexMethod(f *types.Func) bool {
	return mutexMethodNames[f.Name()] && f.Pkg() != nil && f.Pkg().Path() == "sync" &&
		strings.HasPrefix(f.FullName(), "(*sync.")
}

func (w *lockWalker) call(call *ast.CallExpr, held lockState) {
	for _, a := range call.Args {
		w.expr(a, held)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately invoked: runs right here, under the current locks.
		w.block(lit.Body, held)
		return
	}
	f := calleeFunc(w.pkg.Info, call)
	if f == nil {
		w.expr(call.Fun, held)
		return
	}
	if isMutexMethod(f) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		key := types.ExprString(ast.Unparen(sel.X))
		switch f.Name() {
		case "Lock", "RLock":
			lock := heldLock{id: lockIdentity(w.pkg, sel.X), read: mutexAcquireRead[f.Name()]}
			if w.onAcquire != nil {
				w.onAcquire(key, lock, call.Pos(), held)
			}
			held[key] = lock
		case "Unlock", "RUnlock":
			delete(held, key)
		}
		return
	}
	// The receiver chain of a method call still reads fields
	// (j.waitSpan.End() reads j.waitSpan).
	w.expr(call.Fun, held)
	if c := w.facts.contracts[f]; c != nil {
		key := w.callContractKey(call, f, c)
		if w.onContractCall != nil {
			w.onContractCall(f, key, call.Pos(), held)
		}
	}
	if w.onCall != nil && w.moduleLocal(f) {
		w.onCall(f, call.Pos(), held)
	}
}

// callContractKey resolves a contract's lock against the shape of one
// call: the receiver expression for method contracts, the matching
// argument for parameter contracts.
func (w *lockWalker) callContractKey(call *ast.CallExpr, f *types.Func, c *lockContract) string {
	sig := f.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && c.root == recv {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return contractKey(types.ExprString(ast.Unparen(sel.X)), c.path)
		}
		return ""
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == c.root {
			if i < len(call.Args) {
				return contractKey(types.ExprString(ast.Unparen(call.Args[i])), c.path)
			}
			return ""
		}
	}
	return ""
}

func (w *lockWalker) moduleLocal(f *types.Func) bool {
	return f.Pkg() != nil && (f.Pkg().Path() == w.facts.prog.ModulePath ||
		strings.HasPrefix(f.Pkg().Path(), w.facts.prog.ModulePath+"/"))
}

// detachedCall analyses a go/defer call: arguments evaluate now under
// the current locks, but the body runs at an unknowable lock state.
func (w *lockWalker) detachedCall(call *ast.CallExpr, held lockState) {
	for _, a := range call.Args {
		w.expr(a, held)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.detachedLit(lit)
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X, held)
	}
}

// detachedLit analyses a function literal with an empty held set.
func (w *lockWalker) detachedLit(lit *ast.FuncLit) {
	w.detached++
	w.block(lit.Body, lockState{})
	w.detached--
}

// isTerminalCall reports whether the expression statement provably
// stops control flow (panic, os.Exit, log.Fatal*, runtime.Goexit).
func isTerminalCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "os":
		return f.Name() == "Exit"
	case "log":
		return strings.HasPrefix(f.Name(), "Fatal")
	case "runtime":
		return f.Name() == "Goexit"
	}
	return false
}
