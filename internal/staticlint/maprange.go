package staticlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapRangeOrderDependence classifies a range statement: "" when the
// loop's effect cannot depend on map iteration order, otherwise a
// short kind tag describing why it can.
//
// The classification is a deliberately conservative syntactic
// analysis of the loop body:
//
//   - writes through a map index are order-independent (last write per
//     key wins regardless of visit order);
//   - compound integer accumulation (+=, |=, ^=, &=, min/max guards
//     expressed as conditional assignment of a constant) commutes;
//   - append into a variable that outlives the loop is order-DEPENDENT
//     unless the enclosing function sorts after the loop (the
//     collect-keys-then-sort idiom), kind "append-no-sort";
//   - emitting bytes from the body (Write*/Encode*/Print*/Fprint*
//     calls, or any method on bytes.Buffer, strings.Builder,
//     bufio.Writer or json.Encoder) is order-dependent, kind "encode";
//   - float accumulation is order-dependent because float addition
//     does not associate, kind "float-accum";
//   - a return or channel send that references the loop variables is
//     first-key-wins, kind "order-sensitive";
//   - plain assignment of a loop-derived value to a variable that
//     outlives the loop is last-key-wins, kind "order-sensitive".
//
// Anything the analysis cannot see (the loop body handing loop
// variables to an arbitrary function that stores them) is out of
// scope; //lint:allow exists for the true positives it cannot prove
// and the gate's fixtures pin the cases it must catch.
func mapRangeOrderDependence(info *types.Info, enclosing *ast.FuncDecl, rng *ast.RangeStmt) string {
	tv, ok := info.Types[rng.X]
	if !ok {
		return ""
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return ""
	}
	loopVars := rangeLoopVars(info, rng)

	kind := ""
	note := func(k string) {
		// Keep the most specific verdict: encode/float-accum/
		// order-sensitive beat append-no-sort.
		if kind == "" || kind == "append-no-sort" {
			kind = k
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			classifyAssign(info, rng, loopVars, n, note)
		case *ast.CallExpr:
			if isEmitCall(info, n) {
				note("encode")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesAny(info, res, loopVars) {
					note("order-sensitive")
				}
			}
		case *ast.SendStmt:
			note("order-sensitive")
		}
		return true
	})
	if kind == "append-no-sort" && sortsAfter(info, enclosing, rng.End()) {
		return ""
	}
	return kind
}

// rangeLoopVars collects the key/value variable objects of the range.
func rangeLoopVars(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// classifyAssign judges one assignment inside the loop body.
func classifyAssign(info *types.Info, rng *ast.RangeStmt, loopVars map[types.Object]bool, as *ast.AssignStmt, note func(string)) {
	for i, lhs := range as.Lhs {
		if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
			continue // keyed write: order-independent
		}
		obj := assignTarget(info, lhs)
		if obj == nil || obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			continue // loop-local temporary
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		if rhs != nil && isAppendCall(rhs) {
			note("append-no-sort")
			continue
		}
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// Compound assignment: commutative on integers, not on
			// floats.
			if isFloat(obj.Type()) {
				note("float-accum")
			}
			continue
		}
		// Plain assignment to an outer variable: harmless when the
		// value is loop-invariant (e.g. a constant flag), last-key-wins
		// when it involves the loop variables.
		if rhs != nil && (usesAny(info, rhs, loopVars) || info.Types[rhs].Value == nil && !loopInvariant(info, rhs, rng)) {
			note("order-sensitive")
		}
	}
}

// assignTarget resolves the variable an lvalue writes to, or nil for
// selectors/stars whose base the analysis does not track. A selector
// write (x.f = v) is attributed to the base variable x.
func assignTarget(info *types.Info, lhs ast.Expr) types.Object {
	for {
		switch e := lhs.(type) {
		case *ast.Ident:
			if obj := info.Defs[e]; obj != nil {
				return obj
			}
			return info.Uses[e]
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		default:
			return nil
		}
	}
}

// loopInvariant reports whether the expression references nothing
// declared inside the range statement.
func loopInvariant(info *types.Info, e ast.Expr, rng *ast.RangeStmt) bool {
	invariant := true
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
				invariant = false
			}
		}
		return invariant
	})
	return invariant
}

// usesAny reports whether the expression references any of the given
// objects.
func usesAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			used = true
		}
		return !used
	})
	return used
}

func isAppendCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// emitReceiverTypes are the concrete output-building types whose
// methods make a loop body an emitter.
var emitReceiverTypes = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
	"bufio.Writer":    true,
	"json.Encoder":    true,
}

// isEmitCall reports whether a call writes to an output stream or
// encoder: a method on one of the emit receiver types, or any
// function whose name starts with Write, Encode, Print, Fprint or
// Marshal.
func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				t := sig.Recv().Type()
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
					key := shortPkg(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
					if emitReceiverTypes[key] {
						return true
					}
				}
			}
		}
	default:
		return false
	}
	for _, prefix := range []string{"Write", "Encode", "Print", "Fprint", "Marshal"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// sortsAfter reports whether the function calls into package sort or a
// slices.Sort* helper at a position after pos — the second half of the
// collect-keys-then-sort idiom.
func sortsAfter(info *types.Info, fd *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if f, ok := info.Uses[sel.Sel].(*types.Func); ok && f.Pkg() != nil {
				p := f.Pkg().Path()
				if p == "sort" || (p == "slices" && strings.HasPrefix(f.Name(), "Sort")) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
