package staticlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// funcNode is one module-local function in the call graph, with the
// determinism taints it carries directly.
type funcNode struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl
	// callees are the module-local functions this one calls or takes
	// the value of, in source order, deduplicated.
	callees []*funcNode
	// taints are the direct determinism violations in this body.
	taints []taint
}

// taint is a direct source of nondeterminism inside one function.
type taint struct {
	pos  token.Pos
	what string
}

// callGraph is the static, whole-module call graph. Dynamic dispatch
// (interface methods, calls through function values) has no edges
// here; see the detpure analyzer doc for why that is sound enough in
// this repo.
type callGraph struct {
	prog  *Program
	nodes map[*types.Func]*funcNode
}

// buildCallGraph indexes every declared function in the module and
// records, per function, its static callees and direct taints. Bodies
// of function literals are attributed to the declaring function: a
// goroutine or callback minted inside Estimate taints Estimate.
func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{prog: prog, nodes: map[*types.Func]*funcNode{}}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &funcNode{fn: fn, pkg: pkg, decl: fd}
			}
		}
	}
	for _, node := range g.nodes {
		g.scanBody(node)
	}
	return g
}

// scanBody fills in a node's callees and taints.
func (g *callGraph) scanBody(node *funcNode) {
	info := node.pkg.Info
	seen := map[*types.Func]bool{}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj, ok := info.Uses[n].(*types.Func)
			if !ok {
				return true
			}
			if what := externalTaint(obj); what != "" {
				node.taints = append(node.taints, taint{n.Pos(), what})
			}
			if callee, ok := g.nodes[obj]; ok && !seen[obj] {
				seen[obj] = true
				node.callees = append(node.callees, callee)
			}
		case *ast.RangeStmt:
			if kind := mapRangeOrderDependence(info, node.decl, n); kind != "" {
				node.taints = append(node.taints, taint{n.Pos(),
					"iterates a map in iteration-order-dependent fashion (" + kind + ")"})
			}
		}
		return true
	})
	sort.Slice(node.taints, func(i, j int) bool { return node.taints[i].pos < node.taints[j].pos })
}

// externalTaint classifies a referenced function from outside the
// module as a determinism taint source, or returns "".
func externalTaint(f *types.Func) string {
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" {
			return "reads the wall clock (time." + f.Name() + ")"
		}
	case "math/rand", "math/rand/v2":
		sig, ok := f.Type().(*types.Signature)
		if ok && sig.Recv() == nil && !strings.HasPrefix(f.Name(), "New") {
			return "draws from the global math/rand stream (rand." + f.Name() + ")"
		}
	}
	return ""
}

// FuncDisplayName renders a function as "pkg/path.Func" or
// "pkg/path.Recv.Method" (pointer receivers written without the
// star), the grammar Config.DetRoots patterns are written in.
func FuncDisplayName(f *types.Func) string {
	prefix := ""
	if f.Pkg() != nil {
		prefix = f.Pkg().Path() + "."
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return prefix + named.Obj().Name() + "." + f.Name()
		}
	}
	return prefix + f.Name()
}

// shortName strips the module path off a display name for chains.
func (g *callGraph) shortName(f *types.Func) string {
	return strings.TrimPrefix(FuncDisplayName(f), g.prog.ModulePath+"/")
}

// rootsMatching resolves one DetRoots pattern (exact name, or a
// trailing-* glob) to the functions it names, sorted by display name.
func (g *callGraph) rootsMatching(pattern string) []*funcNode {
	var out []*funcNode
	for fn, node := range g.nodes {
		name := FuncDisplayName(fn)
		if name == pattern ||
			(strings.HasSuffix(pattern, "*") && strings.HasPrefix(name, strings.TrimSuffix(pattern, "*"))) {
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return FuncDisplayName(out[i].fn) < FuncDisplayName(out[j].fn)
	})
	return out
}

// proveDeterminism walks the call graph breadth-first from every root
// pattern and reports each taint reachable from the proof set, with
// the call chain that reaches it. A pattern matching no function is
// itself a finding: a renamed root silently dropping out of the proof
// is exactly the regression the gate exists to catch. Each taint site
// is reported once, attributed to the first root (in pattern order)
// that reaches it.
func proveDeterminism(pass *Pass) {
	g := buildCallGraph(pass.Prog)
	reported := map[token.Pos]bool{}
	for _, pattern := range pass.Config.DetRoots {
		roots := g.rootsMatching(pattern)
		if len(roots) == 0 {
			pass.Reportf(token.NoPos, "determinism root %q matches no function in the program (renamed or deleted? update the proof set)", pattern)
			continue
		}
		for _, root := range roots {
			g.reportReachableTaints(pass, root, reported)
		}
	}
}

func (g *callGraph) reportReachableTaints(pass *Pass, root *funcNode, reported map[token.Pos]bool) {
	parent := map[*funcNode]*funcNode{root: nil}
	queue := []*funcNode{root}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, t := range node.taints {
			if reported[t.pos] {
				continue
			}
			reported[t.pos] = true
			pass.Reportf(t.pos, "%s in %s, reachable from determinism root %s via %s",
				t.what, g.shortName(node.fn), g.shortName(root.fn), g.chain(parent, node))
		}
		for _, callee := range node.callees {
			if _, ok := parent[callee]; !ok {
				parent[callee] = node
				queue = append(queue, callee)
			}
		}
	}
}

// chain renders root -> ... -> node, eliding the middle of very deep
// chains so messages stay readable (and byte-stable).
func (g *callGraph) chain(parent map[*funcNode]*funcNode, node *funcNode) string {
	var names []string
	for n := node; n != nil; n = parent[n] {
		names = append(names, g.shortName(n.fn))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	if len(names) > 8 {
		names = append(append(names[:4:4], fmt.Sprintf("(%d elided)", len(names)-7)), names[len(names)-3:]...)
	}
	return strings.Join(names, " -> ")
}
