package staticlint

// The lockguard analyzer: every field annotated "guarded by <mu>" may
// only be read or written while the guarding mutex is provably held,
// and every call to a function documenting a lock contract
// ("requires mu held" / "Callers hold j.mu") must prove the contract
// at the call site. Unlike -race, which only observes the schedules a
// test run happens to explore, this is a whole-program proof over
// every path the lock-set dataflow can see.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func runLockGuard(pass *Pass) {
	facts := collectLockFacts(pass.Prog)
	for _, p := range facts.problems {
		pass.Reportf(p.pos, "%s", p.msg)
	}
	checkLockRegistry(pass, facts)
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				checkGuardedAccess(pass, facts, pkg, fd)
			}
		}
	}
}

// checkLockRegistry verifies Config.LockGuarded: every registered
// struct must exist and declare at least one guarded field, so the
// concurrency proof cannot silently shrink when a struct is renamed
// or its annotations are dropped.
func checkLockRegistry(pass *Pass, facts *lockFacts) {
	for _, entry := range pass.Config.LockGuarded {
		dot := strings.LastIndex(entry, ".")
		if dot < 0 {
			pass.Reportf(token.NoPos, "lock registry entry %q is not of the form pkg/path.Type", entry)
			continue
		}
		pkgPath, typeName := entry[:dot], entry[dot+1:]
		pkg := pass.Prog.byPath[pkgPath]
		var tn *types.TypeName
		if pkg != nil {
			tn, _ = pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
		}
		if tn == nil {
			pass.Reportf(token.NoPos, "lock registry entry %q matches no struct type in the program (renamed or deleted? update the registry)", entry)
			continue
		}
		if !facts.annotated[entry] {
			pass.Reportf(tn.Pos(), "%s is registered as lock-guarded but annotates no field (mark its mutex-protected fields with `guarded by <mu>` comments)", typeName)
		}
	}
}

// checkGuardedAccess runs the lock-set walker over one function,
// reporting guarded-field accesses and contract calls the held set
// does not cover.
func checkGuardedAccess(pass *Pass, facts *lockFacts, pkg *Package, fd *ast.FuncDecl) {
	w := &lockWalker{facts: facts, pkg: pkg}
	w.onAccess = func(field *types.Var, g *guardedField, requiredKey string, write bool, pos token.Pos, held lockState) {
		owner := field.Name()
		if g.owner != nil {
			owner = g.owner.Obj().Name() + "." + field.Name()
		}
		lock, ok := held[requiredKey]
		if !ok {
			word := "read"
			if write {
				word = "write to"
			}
			pass.Reportf(pos, "unguarded %s %s (guarded by %s); hold the mutex, or document the enclosing helper's contract (requires %s held)",
				word, owner, requiredKey, requiredKey)
			return
		}
		if write && lock.read {
			pass.Reportf(pos, "write to %s while holding only a read lock on %s (upgrade the caller to Lock)", owner, requiredKey)
		}
	}
	w.onContractCall = func(callee *types.Func, requiredKey string, pos token.Pos, held lockState) {
		if requiredKey == "" {
			return // call shape hides the root; the body's own proof still runs
		}
		if _, ok := held[requiredKey]; !ok {
			pass.Reportf(pos, "call to %s requires %s held (per its doc contract); acquire the lock first or lift the contract to this caller", callee.Name(), requiredKey)
		}
	}
	w.walkFunc(fd)
}
