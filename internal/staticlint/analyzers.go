package staticlint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// DefaultConfig is the gate configuration for this repository: the
// determinism proof set (the functions whose outputs are golden- or
// bit-identity-tested elsewhere in the tree) and the scopes of the
// supporting rules.
func DefaultConfig() Config {
	return Config{
		DetRoots: []string{
			// The cost model: conform properties and the study's tables
			// assume Estimate is a pure function of its arguments.
			"gpuport/internal/cost.Estimate",
			// The columnar engine: measure's datasets are bit-identical
			// to the reference path only if build, chip application and
			// per-config assembly are all deterministic.
			"gpuport/internal/cost/columnar.Build",
			"gpuport/internal/cost/columnar.NewEvaluator",
			"gpuport/internal/cost/columnar.Evaluator.Estimate",
			// Content addressing: a fingerprint that drifts invalidates
			// every cached trace.
			"gpuport/internal/graph.Graph.Fingerprint",
			// The trace-cache codec: entries must encode and decode
			// bit-identically across runs and machines.
			"gpuport/internal/tracecache.appendHeader",
			"gpuport/internal/tracecache.decodeEntry",
			"gpuport/internal/irgl.Trace.AppendJSONCompact",
			// The conformance engine: seeded repro depends on every
			// property being deterministic given its RNG.
			"gpuport/internal/conform.Properties",
			"gpuport/internal/conform.check*",
			// Canonical observability exports: golden-tested
			// byte-for-byte across runs and worker counts. Trace IDs are
			// content-addressed, stream lines and the realtime metrics
			// block are canonical by construction.
			"gpuport/internal/obs.CanonicalTrace",
			"gpuport/internal/obs.CanonicalMetrics",
			"gpuport/internal/obs.NewTraceID",
			"gpuport/internal/obs.StreamEvent.AppendNDJSON",
			"gpuport/internal/obs/tsdb.Store.WriteMetrics",
			// The campaign server: job identity (content-addressed
			// fingerprints), spec resolution and the scheduling queue
			// must be wall-clock- and randomness-free, or cached
			// answers, dedupe and the byte-canonical HTTP bodies all
			// break.
			"gpuport/internal/measure.Campaign.Fingerprint",
			"gpuport/internal/server.Spec.Resolve",
			"gpuport/internal/server.queue.*",
			"gpuport/internal/server.Job.StatusBytes",
		},
		WalltimeAllowed:      []string{"internal/obs", "internal/tracecache", "cmd/"},
		RandAllowed:          []string{"internal/stats"},
		ErrcheckScope:        []string{"internal/"},
		FloatCmpScope:        []string{"internal/cost", "internal/stats"},
		CtxScope:             []string{"internal/measure", "internal/fault", "internal/server"},
		CtxBackgroundAllowed: []string{"cmd/"},
		MapRangeScope:        []string{"internal/"},
		ObsPath:              "internal/obs",
		ObsLiteralScope:      []string{"internal/server", "cmd/gpuportd"},
		// The daemon's shared-state structs: each must annotate its
		// mutex-protected fields, making the locking discipline checked
		// documentation rather than tribal knowledge.
		LockGuarded: []string{
			"gpuport/internal/server.Server",
			"gpuport/internal/server.Job",
			"gpuport/internal/tracecache.Store",
			"gpuport/internal/obs.Recorder",
			"gpuport/internal/obs/tsdb.Store",
		},
		GoLeakScope: []string{"internal/server", "internal/measure", "internal/obs"},
	}
}

// Analyzers returns every analyzer, sorted by name.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{Name: "ctxprop", Doc: "goroutine-spawning functions in the measurement layers must thread a context; context.Background/TODO only at entry points", Run: runCtxProp},
		{Name: "detpure", Doc: "proves the determinism roots (cost model, fingerprint, cache codec, conform properties, canonical exports) transitively free of wall clock, global rand and map-order dependence", Run: proveDeterminism},
		{Name: "errcheck", Doc: "no silently dropped errors in internal packages", Run: runErrcheck},
		{Name: "floatcmp", Doc: "no float == / != in the model and stats packages (compare against a tolerance, or guard exact zero)", Run: runFloatCmp},
		{Name: "globalrand", Doc: "math/rand only inside the seeded stats layer", Run: runGlobalRand},
		{Name: "goleak", Doc: "every go statement in the daemon layers has a provable termination path (ctx.Done, WaitGroup, or closed-channel range/select)", Run: runGoLeak},
		{Name: "lockguard", Doc: "fields annotated `guarded by <mu>` (and helpers documenting `requires mu held`) are only touched with the guarding mutex provably held, via interprocedural lock-set dataflow", Run: runLockGuard},
		{Name: "lockorder", Doc: "the global lock-acquisition graph is cycle-free; staticgate -lockgraph emits it as JSON/DOT", Run: runLockOrder},
		{Name: "maprange", Doc: "no map iteration feeding an encoder or an ordered collection without a sort", Run: runMapRange},
		{Name: "mutexlock", Doc: "no mutex copies; every Lock has a matching Unlock in the same function", Run: runMutexLock},
		{Name: "obsliteral", Doc: "string literals in the server layers must not duplicate obs name constants (use the constant)", Run: runObsLiteral},
		{Name: "obsnames", Doc: "obs span/counter/event/attr names must be constants declared in the obs package", Run: runObsNames},
		{Name: "walltime", Doc: "time.Now/Since confined to the instrumentation layers and entry points", Run: runWallTime},
	}
}

// AnalyzersByName filters Analyzers to the given names; unknown names
// are ignored (the caller validates them).
func AnalyzersByName(names []string) []*Analyzer {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// calleeFunc resolves the static callee of a call, or nil for builtins,
// conversions and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// eachScopedFile invokes fn for every file of every package whose
// module-relative path is in scope.
func eachScopedFile(pass *Pass, scope []string, fn func(pkg *Package, file *ast.File)) {
	for _, pkg := range pass.Prog.Packages {
		if !InScope(pkg.Rel, scope) {
			continue
		}
		for _, file := range pkg.Files {
			fn(pkg, file)
		}
	}
}

// --- walltime -------------------------------------------------------

func runWallTime(pass *Pass) {
	for _, pkg := range pass.Prog.Packages {
		if InScope(pkg.Rel, pass.Config.WalltimeAllowed) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				f, ok := pkg.Info.Uses[id].(*types.Func)
				if ok && f.Pkg() != nil && f.Pkg().Path() == "time" && (f.Name() == "Now" || f.Name() == "Since") {
					pass.Reportf(id.Pos(), "time.%s outside the instrumentation layers (the model is deterministic; route timing through internal/obs)", f.Name())
				}
				return true
			})
		}
	}
}

// --- globalrand -----------------------------------------------------

func runGlobalRand(pass *Pass) {
	for _, pkg := range pass.Prog.Packages {
		if InScope(pkg.Rel, pass.Config.RandAllowed) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if p := obj.Pkg().Path(); p == "math/rand" || p == "math/rand/v2" {
					pass.Reportf(id.Pos(), "math/rand reference (%s.%s) outside internal/stats; all randomness flows through the seeded stats.RNG", p, obj.Name())
				}
				return true
			})
		}
	}
}

// --- errcheck -------------------------------------------------------

// infallibleSinks are types whose write-path error results are
// documented never to be non-nil (strings.Builder, bytes.Buffer, the
// hash.Hash family) plus bufio.Writer, whose first error is latched
// and re-returned by Flush — and Flush itself is NOT exempt, so the
// rule still forces the one check that matters.
var infallibleSinks = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
	"bufio.Writer":    true,
}

// runErrcheck flags calls whose error result vanishes: a call
// statement (plain, go or defer) returning an error that nobody
// reads. Assigning the error — even to _ — is visible intent and
// passes; the rule targets silent drops. Writes into infallible or
// sticky sinks are exempt, whether as methods (b.WriteString) or as
// the writer argument of fmt.Fprint*/io.WriteString.
func runErrcheck(pass *Pass) {
	eachScopedFile(pass, pass.Config.ErrcheckScope, func(pkg *Package, file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil || !returnsError(pkg.Info, call) {
				return true
			}
			if f := calleeFunc(pkg.Info, call); f != nil {
				// Method on a sink: judge by the receiver expression's
				// static type (h.Write where h is a hash.Hash64 is the
				// hash's method even though Write is declared on
				// io.Writer).
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && f.Name() != "Flush" {
					if tv, ok := pkg.Info.Types[sel.X]; ok && tv.Type != nil && infallibleSinks[sinkKey(tv.Type)] {
						return true
					}
				}
				if writesToInfallibleSink(pkg.Info, f, call) {
					return true
				}
			}
			pass.Reportf(call.Pos(), "error result silently dropped (assign it and handle or propagate it)")
			return true
		})
	})
}

// writesToInfallibleSink reports whether the call is a formatted write
// whose destination argument is an infallible or sticky sink.
func writesToInfallibleSink(info *types.Info, f *types.Func, call *ast.CallExpr) bool {
	if f.Pkg() == nil || len(call.Args) == 0 {
		return false
	}
	switch {
	case f.Pkg().Path() == "fmt" && strings.HasPrefix(f.Name(), "Fprint"):
	case f.Pkg().Path() == "io" && f.Name() == "WriteString":
	default:
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	return infallibleSinks[sinkKey(tv.Type)]
}

// sinkKey renders a (possibly pointer) named type as "pkg.Type" using
// the package base name, or "".
func sinkKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return shortPkg(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
}

// returnsError reports whether the call's result set includes an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// --- floatcmp -------------------------------------------------------

func runFloatCmp(pass *Pass) {
	eachScopedFile(pass, pass.Config.FloatCmpScope, func(pkg *Package, file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(pkg.Info, bin.X) && !isFloatExpr(pkg.Info, bin.Y) {
				return true
			}
			// Comparing against exact zero is the well-defined
			// divide-by-zero / empty-input guard; everything else must
			// use a tolerance.
			if isConstZero(pkg.Info, bin.X) || isConstZero(pkg.Info, bin.Y) {
				return true
			}
			pass.Reportf(bin.Pos(), "float %s comparison (compare |a-b| against a tolerance, or restructure; exact compare only against literal 0)", bin.Op)
			return true
		})
	})
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isFloat(tv.Type)
}

func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// --- ctxprop --------------------------------------------------------

func runCtxProp(pass *Pass) {
	// (a) context.Background/TODO confined to the entry points.
	for _, pkg := range pass.Prog.Packages {
		if InScope(pkg.Rel, pass.Config.CtxBackgroundAllowed) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				f, ok := pkg.Info.Uses[id].(*types.Func)
				if ok && f.Pkg() != nil && f.Pkg().Path() == "context" && (f.Name() == "Background" || f.Name() == "TODO") {
					pass.Reportf(id.Pos(), "context.%s minted outside cmd/; thread the caller's context instead", f.Name())
				}
				return true
			})
		}
	}
	// (b) goroutine-spawning functions in the measurement layers must
	// have a context in scope, so the goroutines they start are
	// cancellable.
	eachScopedFile(pass, pass.Config.CtxScope, func(pkg *Package, file *ast.File) {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var firstGo *ast.GoStmt
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok && firstGo == nil {
					firstGo = g
				}
				return true
			})
			if firstGo == nil || referencesContext(pkg.Info, fd) {
				continue
			}
			pass.Reportf(firstGo.Pos(), "%s starts goroutines without a context.Context in scope (thread ctx so the pool is cancellable)", fd.Name.Name)
		}
	})
}

// referencesContext reports whether the function's body or signature
// mentions any value of type context.Context.
func referencesContext(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok && types.TypeString(v.Type(), nil) == "context.Context" {
			found = true
		}
		return !found
	})
	return found
}

// --- maprange -------------------------------------------------------

func runMapRange(pass *Pass) {
	eachScopedFile(pass, pass.Config.MapRangeScope, func(pkg *Package, file *ast.File) {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				switch kind := mapRangeOrderDependence(pkg.Info, fd, rng); kind {
				case "append-no-sort":
					pass.Reportf(rng.Pos(), "map iteration appends to an ordered collection without a later sort (collect keys, sort, then iterate)")
				case "encode":
					pass.Reportf(rng.Pos(), "map iteration feeds an encoder/writer directly (iteration order is randomised; sort the keys first)")
				}
				return true
			})
		}
	})
}

// --- mutexlock ------------------------------------------------------

func runMutexLock(pass *Pass) {
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				checkMutexCopies(pass, pkg, fd)
				if fd.Body != nil {
					checkLockPairing(pass, pkg, fd)
				}
			}
		}
	}
}

// checkMutexCopies flags signatures and statements that copy a value
// containing a sync.Mutex or sync.RWMutex.
func checkMutexCopies(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && containsMutex(recv.Type(), nil) {
		pass.Reportf(recv.Pos(), "value receiver copies its lock (use a pointer receiver)")
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); containsMutex(p.Type(), nil) {
			pass.Reportf(p.Pos(), "parameter %s copies a lock by value (pass a pointer)", p.Name())
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if copiesMutexValue(pkg.Info, rhs) {
					pass.Reportf(rhs.Pos(), "assignment copies a lock by value")
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if tv, ok := pkg.Info.Types[n.Value]; ok && tv.Type != nil && containsMutex(tv.Type, nil) {
					pass.Reportf(n.Value.Pos(), "range copies a lock-bearing element by value (range over the index instead)")
				}
			}
		}
		return true
	})
}

// copiesMutexValue reports whether evaluating the expression yields a
// by-value copy of a lock-bearing value: dereferences, plain variable
// reads and field selections count; fresh composite literals and
// function results do not (they are the value's one home).
func copiesMutexValue(info *types.Info, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return false
	}
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.Type != nil && tv.Value == nil && !tv.IsType() && containsMutex(tv.Type, nil)
}

// containsMutex walks a type for a sync.Mutex / sync.RWMutex held by
// value.
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return containsMutex(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsMutex(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(t.Elem(), seen)
	}
	return false
}

// lockMethods maps the sync lock methods to their unlock partner.
var lockMethods = map[string]string{
	"(*sync.Mutex).Lock":    "(*sync.Mutex).Unlock",
	"(*sync.RWMutex).Lock":  "(*sync.RWMutex).Unlock",
	"(*sync.RWMutex).RLock": "(*sync.RWMutex).RUnlock",
}

// checkLockPairing requires every Lock/RLock in a function to have a
// matching Unlock/RUnlock on the same lock expression somewhere in the
// same function (defers and closures included). This does not prove
// every path unlocks, but it catches the classic leaked-lock bug where
// the unlock lives in no path at all.
func checkLockPairing(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	type lockUse struct {
		pos  token.Pos
		name string
	}
	locks := map[string]lockUse{} // expr+kind -> first Lock site
	unlocks := map[string]bool{}  // expr+kind -> has Unlock
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pkg.Info, call)
		if f == nil {
			return true
		}
		full := f.FullName()
		key := types.ExprString(sel.X)
		if unlock, isLock := lockMethods[full]; isLock {
			if _, ok := locks[key+unlock]; !ok {
				locks[key+unlock] = lockUse{call.Pos(), key + "." + f.Name()}
			}
		}
		for _, unlock := range lockMethods {
			if full == unlock {
				unlocks[key+unlock] = true
			}
		}
		return true
	})
	var keys []string
	for k := range locks {
		keys = append(keys, k)
	}
	// Deterministic report order for multiple leaked locks.
	sort.Strings(keys)
	for _, k := range keys {
		if !unlocks[k] {
			pass.Reportf(locks[k].pos, "%s without a matching unlock in this function (defer the unlock next to the lock)", locks[k].name)
		}
	}
}

// --- obsnames -------------------------------------------------------

// obsNameArg maps obs recorder / span-handle methods and attribute
// constructors to the index of their name argument.
var obsNameArg = map[string]int{
	"Start":       0,
	"StartSpan":   0,
	"Event":       0,
	"Add":         0,
	"ObserveHist": 0,
	"MergeHist":   0,
	"NameLane":    2,
	"SimSpan":     2,
	"MergeStage":  0,
	"String":      0,
	"Int":         0,
	"Bool":        0,
}

// runObsNames is the typed re-implementation of lintgate's obs-names
// rule: any constant-valued name reaching an obs recorder must be a
// single named constant declared in the obs package itself. Unlike the
// old syntactic rule this catches aliased imports, concatenated
// literals and locally declared constants; computed (non-constant)
// names such as kernel names remain allowed.
func runObsNames(pass *Pass) {
	obsPkgPath := pass.Prog.ModulePath + "/" + pass.Config.ObsPath
	for _, pkg := range pass.Prog.Packages {
		if pkg.Rel == pass.Config.ObsPath {
			continue // the obs package declares the names
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pkg.Info, call)
				if f == nil || f.Pkg() == nil || f.Pkg().Path() != obsPkgPath {
					return true
				}
				idx, ok := obsNameArg[f.Name()]
				if !ok || idx >= len(call.Args) {
					return true
				}
				arg := call.Args[idx]
				tv, ok := pkg.Info.Types[arg]
				if !ok || tv.Value == nil {
					return true // computed name: allowed
				}
				if c := constOf(pkg.Info, arg); c != nil && c.Pkg() != nil && c.Pkg().Path() == obsPkgPath {
					return true
				}
				pass.Reportf(arg.Pos(), "constant obs name %s passed to %s is not a named constant from %s/names.go (ad-hoc names break the canonical-export schema)",
					tv.Value.ExactString(), f.Name(), pass.Config.ObsPath)
				return true
			})
		}
	}
}

// --- obsliteral -----------------------------------------------------

// runObsLiteral is obsnames' converse, scoped to the server layers:
// a raw string literal whose value coincides with an exported obs name
// constant works today but is detached from names.go, so a rename
// there silently forks the export schema (exactly the drift obsnames
// cannot see, because the literal never flows into a recorder call).
// Struct tags and import paths are exempt - they are schemas of their
// own - as is the obs package itself.
func runObsLiteral(pass *Pass) {
	// Exported string constant values declared by the obs package.
	// Scope.Names is sorted, so a value shared by two constants resolves
	// to the same name on every run.
	values := map[string]string{}
	for _, pkg := range pass.Prog.Packages {
		if pkg.Rel != pass.Config.ObsPath {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !c.Exported() || c.Val().Kind() != constant.String {
				continue
			}
			v := constant.StringVal(c.Val())
			if _, taken := values[v]; !taken {
				values[v] = name
			}
		}
	}
	if len(values) == 0 {
		return
	}
	eachScopedFile(pass, pass.Config.ObsLiteralScope, func(pkg *Package, file *ast.File) {
		exempt := map[token.Pos]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if n.Tag != nil {
					exempt[n.Tag.Pos()] = true
				}
			case *ast.ImportSpec:
				exempt[n.Path.Pos()] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || exempt[lit.Pos()] {
				return true
			}
			v, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if name, ok := values[v]; ok {
				pass.Reportf(lit.Pos(), "string literal %q duplicates obs.%s; use the constant so a rename in %s/names.go cannot fork the export schema",
					v, name, pass.Config.ObsPath)
			}
			return true
		})
	})
}

// constOf resolves an expression to the constant object it names, or
// nil when it is a literal or a computed constant expression.
func constOf(info *types.Info, e ast.Expr) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}
