package staticlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in module-relative terms so
// reports are byte-identical regardless of where the checkout lives.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// key identifies a diagnostic for baseline matching. Line and column
// are deliberately excluded so unrelated edits above a baselined
// finding do not churn the baseline.
func (d Diagnostic) key() string {
	return d.Rule + "\x00" + d.File + "\x00" + d.Message
}

// Analyzer is one named rule set run over the whole program.
type Analyzer struct {
	// Name is the rule name diagnostics carry and //lint:allow refers to.
	Name string
	// Doc is a one-line description (shown by `staticgate -list`).
	Doc string
	// Run reports findings through the pass.
	Run func(*Pass)
}

// Pass is what an analyzer sees: the loaded program, the engine
// configuration, and a reporting sink that stamps the rule name on.
type Pass struct {
	Prog   *Program
	Config Config

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.analyzer.Name,
		File:    p.Prog.FileName(pos),
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// InScope reports whether a module-relative package path falls under
// any of the given prefixes. A prefix matches the package itself and
// everything below it ("internal/cost" matches "internal/cost" and
// "internal/cost/deep"); a trailing slash matches strictly below
// ("cmd/" matches every command but not a package literally named cmd).
func InScope(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(rel, p) {
				return true
			}
			continue
		}
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// Config carries the analyzer scopes, expressed as module-relative
// path prefixes (see InScope), plus the determinism proof set.
type Config struct {
	// DetRoots are the determinism roots: every function matching one
	// of these patterns must be transitively free of wall-clock reads,
	// global math/rand state and order-dependent map iteration.
	// Patterns are "pkg/path.Func" or "pkg/path.Recv.Method"
	// (pointer receivers written without the star); a trailing *
	// globs over function names.
	DetRoots []string
	// WalltimeAllowed lists where time.Now/time.Since are legitimate.
	WalltimeAllowed []string
	// RandAllowed lists where math/rand may be referenced.
	RandAllowed []string
	// ErrcheckScope is where dropped errors are violations.
	ErrcheckScope []string
	// FloatCmpScope is where float ==/!= is a violation.
	FloatCmpScope []string
	// CtxScope is where goroutine-spawning functions must have a
	// context.Context in scope.
	CtxScope []string
	// CtxBackgroundAllowed is where context.Background/TODO may be
	// minted.
	CtxBackgroundAllowed []string
	// MapRangeScope is where encoder/append-feeding map ranges are
	// checked.
	MapRangeScope []string
	// ObsPath is the module-relative path of the observability package
	// whose name constants the obsnames rule enforces.
	ObsPath string
	// ObsLiteralScope is where raw string literals duplicating an obs
	// name constant's value are violations (the obsliteral rule).
	ObsLiteralScope []string
	// LockGuarded registers the structs ("pkg/path.Type") whose shared
	// state must carry `guarded by <mu>` field annotations; lockguard
	// fails if a registered struct exists without any. Annotated fields
	// anywhere in the module are checked regardless of this registry.
	LockGuarded []string
	// GoLeakScope is where every go statement must have a provable
	// termination path (the goleak rule).
	GoLeakScope []string
}

// Result is a finished engine run.
type Result struct {
	Module string `json:"module"`
	// Diagnostics is sorted by file, line, column, rule, message and
	// has suppressed findings removed.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed counts findings silenced by //lint:allow.
	Suppressed int `json:"suppressed"`
}

// Run executes the analyzers over prog and returns the sorted,
// suppression-filtered result. Malformed suppression comments are
// themselves diagnostics (rule "lint"), so a reason can never be
// silently omitted.
func Run(prog *Program, cfg Config, analyzers []*Analyzer) *Result {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Prog: prog, Config: cfg, analyzer: a, diags: &diags}
		a.Run(pass)
	}
	sup, diags := collectSuppressions(prog, diags)
	kept := diags[:0]
	suppressed := 0
	for _, d := range diags {
		if sup.allows(d) {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return &Result{Module: prog.ModulePath, Diagnostics: kept, Suppressed: suppressed}
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// suppressions maps file -> line -> rules allowed there.
type suppressions map[string]map[int]map[string]bool

// allows reports whether d is covered by a //lint:allow on its own
// line or the line directly above it.
func (s suppressions) allows(d Diagnostic) bool {
	lines := s[d.File]
	if lines == nil {
		return false
	}
	return lines[d.Line][d.Rule] || lines[d.Line-1][d.Rule]
}

var allowPattern = regexp.MustCompile(`^//\s*lint:allow\s*(.*)$`)

// collectSuppressions scans every comment for //lint:allow markers.
// A marker must name a rule and give a reason; a bare marker is a
// "lint" diagnostic appended to diags.
func collectSuppressions(prog *Program, diags []Diagnostic) (suppressions, []Diagnostic) {
	sup := suppressions{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := allowPattern.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(m[1])
					if len(fields) < 2 {
						diags = append(diags, Diagnostic{
							Rule: "lint", File: prog.FileName(c.Pos()),
							Line: pos.Line, Col: pos.Column,
							Message: "//lint:allow needs a rule name and a reason (//lint:allow <rule> <why>)",
						})
						continue
					}
					name := prog.FileName(c.Pos())
					if sup[name] == nil {
						sup[name] = map[int]map[string]bool{}
					}
					if sup[name][pos.Line] == nil {
						sup[name][pos.Line] = map[string]bool{}
					}
					sup[name][pos.Line][fields[0]] = true
				}
			}
		}
	}
	return sup, diags
}

// RenderText formats the result the way compilers do, one finding per
// line, ending with a count. The output is byte-stable.
func RenderText(r *Result) string {
	var b strings.Builder
	for _, d := range r.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "staticgate: %d finding(s), %d suppressed\n", len(r.Diagnostics), r.Suppressed)
	return b.String()
}

// EncodeJSON renders the result as indented, byte-stable JSON (the
// diagnostics are already sorted; struct field order does the rest).
func EncodeJSON(r *Result) ([]byte, error) {
	out := struct {
		Version int `json:"version"`
		*Result
	}{Version: 1, Result: r}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
