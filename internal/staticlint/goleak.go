package staticlint

// The goleak analyzer: every `go` statement in the daemon layers must
// have a provable termination path — the spawned body (or the named
// function it calls) must observe a context.Context (ctx.Done), sign
// off through a sync.WaitGroup (wg.Done), or drain a channel whose
// close is the shutdown signal (range over a channel, or a select
// with a receive arm). Fire-and-forget goroutines in a long-running
// daemon are leaks: they outlive requests, pin memory, and keep the
// race detector's schedule space unexplorable.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func runGoLeak(pass *Pass) {
	// Named spawn targets resolve through the module call graph.
	decls := map[*types.Func]*funcNode{}
	for fn, node := range buildCallGraph(pass.Prog).nodes {
		decls[fn] = node
	}
	eachScopedFile(pass, pass.Config.GoLeakScope, func(pkg *Package, file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			var bodyPkg *Package
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				body, bodyPkg = lit.Body, pkg
			} else if f := calleeFunc(pkg.Info, g.Call); f != nil {
				if node := decls[f]; node != nil {
					body, bodyPkg = node.decl.Body, node.pkg
				}
			}
			if body == nil {
				pass.Reportf(g.Pos(), "goroutine body is not statically visible (dynamic call); spawn a named function or literal so termination is provable")
				return true
			}
			if !hasTerminationEvidence(bodyPkg.Info, body) {
				pass.Reportf(g.Pos(), "goroutine has no provable termination path (tie it to ctx.Done, a sync.WaitGroup Done, or a closed-channel range/select)")
			}
			return true
		})
	})
}

// hasTerminationEvidence scans a goroutine body for any of the three
// accepted shutdown disciplines.
func hasTerminationEvidence(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := calleeFunc(info, n); f != nil {
				switch f.FullName() {
				case "(context.Context).Done", "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait":
					found = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && isReceiveComm(cc.Comm) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isReceiveComm reports whether a select comm clause is a receive.
func isReceiveComm(s ast.Stmt) bool {
	var x ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		x = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			x = s.Rhs[0]
		}
	default:
		return false
	}
	u, ok := ast.Unparen(x).(*ast.UnaryExpr)
	return ok && u.Op == token.ARROW
}
