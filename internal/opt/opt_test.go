package opt

import (
	"testing"
	"testing/quick"
)

func TestAllCount(t *testing.T) {
	all := All()
	if len(all) != 96 {
		t.Fatalf("configuration count = %d, want 96", len(all))
	}
	if !all[0].IsBaseline() {
		t.Errorf("first config should be baseline, got %v", all[0])
	}
	if nb := NonBaseline(); len(nb) != 95 {
		t.Errorf("non-baseline count = %d, want 95 (the paper's space)", len(nb))
	}
	seen := map[Config]bool{}
	for _, c := range all {
		if seen[c] {
			t.Errorf("duplicate config %v", c)
		}
		seen[c] = true
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, c := range All() {
		got, err := Parse(c.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("round trip %q -> %v, want %v", c.String(), got, c)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("fg,fg8"); err == nil {
		t.Error("both fg variants should be rejected")
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("unknown flag should be rejected")
	}
	c, err := Parse("")
	if err != nil || !c.IsBaseline() {
		t.Error("empty string should parse as baseline")
	}
}

func TestBaselineString(t *testing.T) {
	if (Config{}).String() != "baseline" {
		t.Errorf("baseline renders as %q", (Config{}).String())
	}
}

func TestWithMirrorSetting(t *testing.T) {
	// The Algorithm 1 construction: os with opt enabled vs the mirror
	// with opt disabled must differ only in that flag.
	for _, f := range Flags() {
		for _, c := range SettingsWith(f) {
			mirror := c.With(f, false)
			if mirror.Has(f) {
				t.Fatalf("mirror of %v still has %v", c, f)
			}
			// Re-enabling must restore the original.
			if back := mirror.With(f, true); back != c {
				t.Errorf("with(%v): %v -> %v -> %v", f, c, mirror, back)
			}
		}
	}
}

func TestFGExclusivity(t *testing.T) {
	c := Config{}.With(FlagFG1, true)
	if c.FG != FG1 {
		t.Fatalf("FG = %v", c.FG)
	}
	c = c.With(FlagFG8, true)
	if c.FG != FG8 || c.Has(FlagFG1) {
		t.Errorf("enabling fg8 should displace fg1: %v", c)
	}
	c = c.With(FlagFG1, false)
	if c.FG != FG8 {
		t.Errorf("disabling fg1 should not clear fg8: %v", c)
	}
	c = c.With(FlagFG8, false)
	if c.FG != FGOff {
		t.Errorf("disabling fg8 should clear: %v", c)
	}
}

func TestSettingsWithCounts(t *testing.T) {
	// Each plain binary flag appears in half of the boolean space times
	// all three fg states: 16 * 3 = 48. Each fg variant appears in 32.
	for _, f := range Flags() {
		got := len(SettingsWith(f))
		want := 48
		if f == FlagFG1 || f == FlagFG8 {
			want = 32
		}
		if got != want {
			t.Errorf("SettingsWith(%v) = %d, want %d", f, got, want)
		}
	}
}

func TestWorkgroupSize(t *testing.T) {
	if (Config{}).WorkgroupSize() != 128 {
		t.Error("default workgroup size should be 128")
	}
	if (Config{SZ256: true}).WorkgroupSize() != 256 {
		t.Error("sz256 workgroup size should be 256")
	}
}

func TestFromFlags(t *testing.T) {
	c := FromFlags([]Flag{FlagSG, FlagFG8, FlagOiterGB})
	if !c.SG || c.FG != FG8 || !c.OiterGB || c.CoopCV {
		t.Errorf("FromFlags = %v", c)
	}
	// fg8 wins over fg1 regardless of order.
	a := FromFlags([]Flag{FlagFG1, FlagFG8})
	b := FromFlags([]Flag{FlagFG8, FlagFG1})
	if a.FG != FG8 || b.FG != FG8 {
		t.Errorf("fg conflict resolution: %v / %v", a.FG, b.FG)
	}
}

func TestEnabledFlagsMatchesHas(t *testing.T) {
	f := func(bits uint8, fg uint8) bool {
		c := Config{
			CoopCV:  bits&1 != 0,
			SG:      bits&2 != 0,
			WG:      bits&4 != 0,
			FG:      FG(fg % 3),
			OiterGB: bits&8 != 0,
			SZ256:   bits&16 != 0,
		}
		set := map[Flag]bool{}
		for _, fl := range c.EnabledFlags() {
			set[fl] = true
		}
		for _, fl := range Flags() {
			if c.Has(fl) != set[fl] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlagStringRoundTrip(t *testing.T) {
	for _, f := range Flags() {
		got, err := ParseFlag(f.String())
		if err != nil || got != f {
			t.Errorf("flag %v round trip failed: %v, %v", f, got, err)
		}
	}
	if _, err := ParseFlag("zzz"); err == nil {
		t.Error("unknown flag name should error")
	}
}
