// Package opt defines the study's optimisation space (Section V of the
// paper): cooperative conversion (coop-cv), nested parallelism at
// subgroup (sg), workgroup (wg) and fine-grained (fg1 / fg8)
// granularity, iteration outlining via a global barrier (oitergb), and
// the workgroup size switch (sz256).
//
// All optimisations are independent binaries except fg, which is
// three-valued (off / 1 edge / 8 edges per scheduling step), giving
// 2^5 * 3 = 96 configurations: 95 optimisation combinations plus the
// all-off baseline.
package opt

import (
	"fmt"
	"sort"
	"strings"
)

// FG selects the fine-grained nested parallelism granularity.
type FG uint8

const (
	// FGOff disables fine-grained load balancing.
	FGOff FG = iota
	// FG1 processes one edge per scheduling step.
	FG1
	// FG8 processes eight edges per scheduling step.
	FG8
)

// Config is one point in the optimisation space. The zero value is the
// baseline (everything off, workgroup size 128).
type Config struct {
	// CoopCV aggregates worklist push atomics within a subgroup.
	CoopCV bool
	// SG redistributes inner-loop work across the subgroup.
	SG bool
	// WG redistributes inner-loop work across the workgroup.
	WG bool
	// FG linearises the inner iteration space at the given granularity.
	FG FG
	// OiterGB outlines host fixpoint loops onto the device behind a
	// portable global barrier.
	OiterGB bool
	// SZ256 raises the workgroup size from 128 to 256.
	SZ256 bool
}

// WorkgroupSize returns the workgroup size the config selects.
func (c Config) WorkgroupSize() int {
	if c.SZ256 {
		return 256
	}
	return 128
}

// IsBaseline reports whether every optimisation is disabled.
func (c Config) IsBaseline() bool { return c == Config{} }

// Flag identifies one binary optimisation as the analysis sees it: fg1
// and fg8 are separate, mutually exclusive flags (Section III).
type Flag uint8

const (
	FlagCoopCV Flag = iota
	FlagSG
	FlagWG
	FlagFG1
	FlagFG8
	FlagOiterGB
	FlagSZ256
	numFlags
)

// Flags returns all analysis flags in canonical order.
func Flags() []Flag {
	return []Flag{FlagCoopCV, FlagSG, FlagWG, FlagFG1, FlagFG8, FlagOiterGB, FlagSZ256}
}

// String returns the paper's name for the flag.
func (f Flag) String() string {
	switch f {
	case FlagCoopCV:
		return "coop-cv"
	case FlagSG:
		return "sg"
	case FlagWG:
		return "wg"
	case FlagFG1:
		return "fg"
	case FlagFG8:
		return "fg8"
	case FlagOiterGB:
		return "oitergb"
	case FlagSZ256:
		return "sz256"
	default:
		return fmt.Sprintf("flag(%d)", uint8(f))
	}
}

// ParseFlag inverts Flag.String.
func ParseFlag(s string) (Flag, error) {
	for _, f := range Flags() {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("opt: unknown flag %q", s)
}

// Has reports whether the config enables the flag.
func (c Config) Has(f Flag) bool {
	switch f {
	case FlagCoopCV:
		return c.CoopCV
	case FlagSG:
		return c.SG
	case FlagWG:
		return c.WG
	case FlagFG1:
		return c.FG == FG1
	case FlagFG8:
		return c.FG == FG8
	case FlagOiterGB:
		return c.OiterGB
	case FlagSZ256:
		return c.SZ256
	default:
		return false
	}
}

// With returns a copy of c with flag f set to enabled. Enabling fg1
// displaces fg8 and vice versa; disabling either sets FG off (the
// "mirror setting" construction of Algorithm 1, line 12).
func (c Config) With(f Flag, enabled bool) Config {
	switch f {
	case FlagCoopCV:
		c.CoopCV = enabled
	case FlagSG:
		c.SG = enabled
	case FlagWG:
		c.WG = enabled
	case FlagFG1:
		if enabled {
			c.FG = FG1
		} else if c.FG == FG1 {
			c.FG = FGOff
		}
	case FlagFG8:
		if enabled {
			c.FG = FG8
		} else if c.FG == FG8 {
			c.FG = FGOff
		}
	case FlagOiterGB:
		c.OiterGB = enabled
	case FlagSZ256:
		c.SZ256 = enabled
	}
	return c
}

// EnabledFlags returns the flags c enables, in canonical order.
func (c Config) EnabledFlags() []Flag {
	var out []Flag
	for _, f := range Flags() {
		if c.Has(f) {
			out = append(out, f)
		}
	}
	return out
}

// FromFlags builds a Config enabling exactly the given flags. If both
// fg1 and fg8 are present, fg8 wins (the coarser granularity is the
// paper's default recommendation when both test positive).
func FromFlags(flags []Flag) Config {
	var c Config
	for _, f := range flags {
		if f == FlagFG1 && c.FG == FG8 {
			continue
		}
		c = c.With(f, true)
	}
	return c
}

// String renders the config as the paper writes it: a comma-separated
// flag list, or "baseline".
func (c Config) String() string {
	flags := c.EnabledFlags()
	if len(flags) == 0 {
		return "baseline"
	}
	parts := make([]string, len(flags))
	for i, f := range flags {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// Parse inverts String.
func Parse(s string) (Config, error) {
	if s == "baseline" || s == "" {
		return Config{}, nil
	}
	var c Config
	for _, part := range strings.Split(s, ",") {
		f, err := ParseFlag(strings.TrimSpace(part))
		if err != nil {
			return Config{}, err
		}
		if (f == FlagFG1 && c.FG == FG8) || (f == FlagFG8 && c.FG == FG1) {
			return Config{}, fmt.Errorf("opt: %q enables both fg variants", s)
		}
		c = c.With(f, true)
	}
	return c, nil
}

// All returns all 96 configurations (baseline first) in a deterministic
// order: by number of enabled flags, then lexicographically by name.
func All() []Config {
	var out []Config
	for _, fg := range []FG{FGOff, FG1, FG8} {
		for bits := 0; bits < 32; bits++ {
			out = append(out, Config{
				CoopCV:  bits&1 != 0,
				SG:      bits&2 != 0,
				WG:      bits&4 != 0,
				FG:      fg,
				OiterGB: bits&8 != 0,
				SZ256:   bits&16 != 0,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ni, nj := len(out[i].EnabledFlags()), len(out[j].EnabledFlags())
		if ni != nj {
			return ni < nj
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// NonBaseline returns the 95 optimisation combinations.
func NonBaseline() []Config {
	all := All()
	out := make([]Config, 0, len(all)-1)
	for _, c := range all {
		if !c.IsBaseline() {
			out = append(out, c)
		}
	}
	return out
}

// SettingsWith returns every configuration that enables flag f
// (ALL_OPT_SETTINGS of Algorithm 1, line 11).
func SettingsWith(f Flag) []Config {
	var out []Config
	for _, c := range All() {
		if c.Has(f) {
			out = append(out, c)
		}
	}
	return out
}
