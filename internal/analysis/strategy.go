// Package analysis implements the paper's core contribution: a
// magnitude-agnostic, rank-based methodology that consumes the study's
// empirical dataset and produces optimisation strategies at every
// degree of specialisation between "baseline" (never optimise) and
// "oracle" (per-test best), quantifying the performance cost of
// portability along the way.
//
// The centrepiece is Algorithm 1 of the paper (OptsForPartition here):
// for each optimisation flag, mirror-pair configurations differing only
// in that flag are compared per test under a 95% confidence-interval
// significance gate; the surviving normalised runtimes are tested
// against 1.0 with the Mann-Whitney U rank test, and the flag is
// enabled only on a statistically significant median speedup.
package analysis

import (
	"fmt"
	"sort"

	"gpuport/internal/dataset"
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// Alpha is the significance level used throughout the study.
const Alpha = 0.05

// Dims selects which environment dimensions a strategy specialises on.
// The zero value is the fully-portable "global" strategy.
type Dims struct {
	Chip  bool
	App   bool
	Input bool
}

// Name returns the paper's name for the specialisation: "global" for
// none, else the underscore-joined dimension list (e.g. "chip_app").
func (d Dims) Name() string {
	var parts []string
	if d.Chip {
		parts = append(parts, "chip")
	}
	if d.App {
		parts = append(parts, "app")
	}
	if d.Input {
		parts = append(parts, "input")
	}
	if len(parts) == 0 {
		return "global"
	}
	name := parts[0]
	for _, p := range parts[1:] {
		name += "_" + p
	}
	return name
}

// Count returns the number of specialised dimensions.
func (d Dims) Count() int {
	n := 0
	for _, b := range []bool{d.Chip, d.App, d.Input} {
		if b {
			n++
		}
	}
	return n
}

// AllDims returns the 8 specialisation combinations in order of
// increasing specialisation (Table V, minus baseline and oracle).
func AllDims() []Dims {
	out := []Dims{
		{},
		{Chip: true}, {App: true}, {Input: true},
		{Chip: true, App: true}, {Chip: true, Input: true}, {App: true, Input: true},
		{Chip: true, App: true, Input: true},
	}
	return out
}

// PartitionKey identifies a data partition: the dimension values a
// strategy is specialised to, with "" meaning "any".
type PartitionKey struct {
	Chip  string
	App   string
	Input string
}

// String renders the key for reports.
func (k PartitionKey) String() string {
	get := func(s string) string {
		if s == "" {
			return "*"
		}
		return s
	}
	return fmt.Sprintf("(%s,%s,%s)", get(k.Chip), get(k.App), get(k.Input))
}

// keyFor projects a tuple onto the specialised dimensions.
func (d Dims) keyFor(t dataset.Tuple) PartitionKey {
	var k PartitionKey
	if d.Chip {
		k.Chip = t.Chip
	}
	if d.App {
		k.App = t.App
	}
	if d.Input {
		k.Input = t.Input
	}
	return k
}

// Strategy maps tuples to optimisation configurations (Table V).
type Strategy struct {
	// Name identifies the strategy in reports ("baseline", "global",
	// "chip_app", "oracle", ...).
	Name string
	pick func(dataset.Tuple) opt.Config
}

// Config returns the configuration the strategy selects for t.
func (s *Strategy) Config(t dataset.Tuple) opt.Config { return s.pick(t) }

// Baseline returns the strategy that never optimises.
func Baseline() *Strategy {
	return &Strategy{Name: "baseline", pick: func(dataset.Tuple) opt.Config { return opt.Config{} }}
}

// Oracle returns the strategy that picks, for every tuple, the
// configuration with the best mean runtime in d.
func Oracle(d *dataset.Dataset) *Strategy {
	table := make(map[dataset.Tuple]opt.Config)
	for _, t := range d.Tuples() {
		if cfg, _, ok := d.BestConfig(t); ok {
			table[t] = cfg
		}
	}
	return &Strategy{Name: "oracle", pick: func(t dataset.Tuple) opt.Config { return table[t] }}
}

// FlagDecision records the analysis verdict for one flag on one
// partition - the contents of a Table IX cell.
type FlagDecision struct {
	Flag opt.Flag
	// Enabled is the recommendation.
	Enabled bool
	// Confident is false when too few significant comparisons existed
	// for the MWU test to reach p < Alpha in either direction (the
	// paper's fg8-on-MALI case).
	Confident bool
	// P is the MWU two-sided p-value (NaN with no data).
	P float64
	// CL is the common-language effect size: the probability that a
	// random significant comparison shows a speedup.
	CL float64
	// MedianRatio is the median normalised runtime (enabled/disabled);
	// below 1.0 means the flag helps.
	MedianRatio float64
	// Comparisons is the number of significant mirror-pair comparisons
	// that fed the test.
	Comparisons int
}

// Partition is one data subset with its analysis outcome.
type Partition struct {
	Key       PartitionKey
	Tuples    []dataset.Tuple
	Decisions []FlagDecision
	Config    opt.Config
}

// Specialisation is the full result of running Algorithm 1 at one
// degree of specialisation.
type Specialisation struct {
	Dims       Dims
	Strategy   *Strategy
	Partitions []Partition
}

// Specialise partitions d along dims and derives a recommendation per
// partition (Algorithm 1, SPECIALISE_FOR_*).
func Specialise(d *dataset.Dataset, dims Dims) *Specialisation {
	return specialise(d, dims, true)
}

// SpecialiseUngated is the ablation variant of Specialise that skips
// Algorithm 1's 95% CI significance gate: every mirror-pair ratio feeds
// the MWU test, noise included. It exists to quantify what the gate
// buys (see BenchmarkAblationSignificanceGate); it is not part of the
// paper's methodology.
func SpecialiseUngated(d *dataset.Dataset, dims Dims) *Specialisation {
	return specialise(d, dims, false)
}

func specialise(d *dataset.Dataset, dims Dims, gated bool) *Specialisation {
	parts := map[PartitionKey][]dataset.Tuple{}
	var order []PartitionKey
	for _, t := range d.Tuples() {
		k := dims.keyFor(t)
		if _, ok := parts[k]; !ok {
			order = append(order, k)
		}
		parts[k] = append(parts[k], t)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Chip != b.Chip {
			return a.Chip < b.Chip
		}
		if a.App != b.App {
			return a.App < b.App
		}
		return a.Input < b.Input
	})

	spec := &Specialisation{Dims: dims}
	table := make(map[PartitionKey]opt.Config, len(order))
	for _, k := range order {
		p := Partition{Key: k, Tuples: parts[k]}
		p.Decisions = optsForPartition(d, p.Tuples, gated)
		p.Config = configFromDecisions(p.Decisions)
		table[k] = p.Config
		spec.Partitions = append(spec.Partitions, p)
	}
	spec.Strategy = &Strategy{
		Name: dims.Name(),
		pick: func(t dataset.Tuple) opt.Config { return table[dims.keyFor(t)] },
	}
	return spec
}

// OptsForPartition implements Algorithm 1's OPTS_FOR_PARTITION: for
// every flag, gather normalised runtimes from all mirror-pair
// configuration comparisons with significant differences, and enable
// the flag when the MWU test confirms a median speedup.
func OptsForPartition(d *dataset.Dataset, tuples []dataset.Tuple) []FlagDecision {
	return optsForPartition(d, tuples, true)
}

func optsForPartition(d *dataset.Dataset, tuples []dataset.Tuple, gated bool) []FlagDecision {
	decisions := make([]FlagDecision, 0, len(opt.Flags()))
	for _, f := range opt.Flags() {
		var a, b []float64
		for _, os := range opt.SettingsWith(f) {
			dis := os.With(f, false)
			for _, t := range tuples {
				en := d.Samples(t, os)
				di := d.Samples(t, dis)
				if en == nil || di == nil {
					continue
				}
				if gated && !stats.SignificantlyDifferent(en, di) {
					continue
				}
				a = append(a, stats.Mean(en)/stats.Mean(di))
				b = append(b, 1.0)
			}
		}
		dec := FlagDecision{Flag: f, Comparisons: len(a)}
		res := stats.MannWhitneyU(a, b)
		dec.P = res.P
		dec.CL = res.CL
		dec.MedianRatio = stats.Median(a)
		if res.Significant(Alpha) {
			dec.Confident = true
			dec.Enabled = dec.MedianRatio < 1.0
		}
		decisions = append(decisions, dec)
	}
	return decisions
}

// configFromDecisions assembles the recommended configuration. If both
// fg variants win, the one with the stronger (smaller) median ratio is
// kept; FromFlags would otherwise always prefer fg8.
func configFromDecisions(decs []FlagDecision) opt.Config {
	var flags []opt.Flag
	var fg1, fg8 *FlagDecision
	for i := range decs {
		dec := &decs[i]
		if !dec.Enabled {
			continue
		}
		switch dec.Flag {
		case opt.FlagFG1:
			fg1 = dec
		case opt.FlagFG8:
			fg8 = dec
		default:
			flags = append(flags, dec.Flag)
		}
	}
	switch {
	case fg1 != nil && fg8 != nil:
		if fg1.MedianRatio < fg8.MedianRatio {
			flags = append(flags, opt.FlagFG1)
		} else {
			flags = append(flags, opt.FlagFG8)
		}
	case fg1 != nil:
		flags = append(flags, opt.FlagFG1)
	case fg8 != nil:
		flags = append(flags, opt.FlagFG8)
	}
	return opt.FromFlags(flags)
}
