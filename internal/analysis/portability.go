package analysis

import (
	"gpuport/internal/dataset"
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// Heatmap is the Figure 1 structure: Cell[i][j] is the geomean slowdown
// suffered by chip Rows[i] when running with the optimisation settings
// that are optimal for chip Cols[j] (diagonal = 1.0).
type Heatmap struct {
	Rows, Cols []string
	Cell       [][]float64
	// ColMean[j] is the geomean of column j over all rows (the paper's
	// bottom row); RowMean[i] the geomean over row i (right column).
	ColMean []float64
	RowMean []float64
	// ColMeanOffDiag[j] excludes the diagonal: the geomean slowdown a
	// chip-specialised strategy causes on the *other* chips.
	ColMeanOffDiag []float64
}

// CrossChipHeatmap computes Figure 1: per-tuple optimal configurations
// for each chip, cross-applied to every other chip.
func CrossChipHeatmap(d *dataset.Dataset) *Heatmap {
	chips := d.Chips()
	n := len(chips)

	// bestFor[chip][app/input pair] = that chip's optimal config.
	type pair struct{ app, input string }
	bestFor := make(map[string]map[pair]opt.Config, n)
	for _, c := range chips {
		bestFor[c] = map[pair]opt.Config{}
	}
	for _, t := range d.Tuples() {
		if cfg, _, ok := d.BestConfig(t); ok {
			bestFor[t.Chip][pair{t.App, t.Input}] = cfg
		}
	}

	h := &Heatmap{Rows: chips, Cols: chips}
	h.Cell = make([][]float64, n)
	for i, run := range chips {
		h.Cell[i] = make([]float64, n)
		for j, from := range chips {
			var ratios []float64
			for _, t := range d.Tuples() {
				if t.Chip != run {
					continue
				}
				p := pair{t.App, t.Input}
				own, okOwn := bestFor[run][p]
				other, okOther := bestFor[from][p]
				if !okOwn || !okOther {
					continue
				}
				mOwn, ok1 := d.Mean(t, own)
				mOther, ok2 := d.Mean(t, other)
				if !ok1 || !ok2 || mOwn <= 0 {
					continue
				}
				ratios = append(ratios, mOther/mOwn)
			}
			h.Cell[i][j] = stats.GeoMean(ratios)
		}
	}

	h.ColMean = make([]float64, n)
	h.ColMeanOffDiag = make([]float64, n)
	h.RowMean = make([]float64, n)
	for j := range chips {
		var all, off []float64
		for i := range chips {
			all = append(all, h.Cell[i][j])
			if i != j {
				off = append(off, h.Cell[i][j])
			}
		}
		h.ColMean[j] = stats.GeoMean(all)
		h.ColMeanOffDiag[j] = stats.GeoMean(off)
	}
	for i := range chips {
		h.RowMean[i] = stats.GeoMean(h.Cell[i])
	}
	return h
}

// Extreme is one row of Table II: the largest optimisation-induced
// speedup and slowdown observed on a chip, with their environments.
type Extreme struct {
	Chip string

	MaxSpeedup   float64
	SpeedupApp   string
	SpeedupInput string
	SpeedupCfg   opt.Config

	MaxSlowdown   float64 // expressed as a factor >= 1 (e.g. 22 means 22x slower)
	SlowdownApp   string
	SlowdownInput string
	SlowdownCfg   opt.Config
}

// Extremes computes Table II: per chip, the best and worst single-test
// configuration effects relative to baseline.
func Extremes(d *dataset.Dataset) []Extreme {
	var out []Extreme
	for _, c := range d.Chips() {
		e := Extreme{Chip: c, MaxSpeedup: 1, MaxSlowdown: 1}
		for _, t := range d.Tuples() {
			if t.Chip != c {
				continue
			}
			base, ok := d.Mean(t, opt.Config{})
			if !ok {
				continue
			}
			for _, cfg := range opt.NonBaseline() {
				m, ok := d.Mean(t, cfg)
				if !ok || m <= 0 {
					continue
				}
				if sp := base / m; sp > e.MaxSpeedup {
					e.MaxSpeedup = sp
					e.SpeedupApp, e.SpeedupInput, e.SpeedupCfg = t.App, t.Input, cfg
				}
				if sl := m / base; sl > e.MaxSlowdown {
					e.MaxSlowdown = sl
					e.SlowdownApp, e.SlowdownInput, e.SlowdownCfg = t.App, t.Input, cfg
				}
			}
		}
		out = append(out, e)
	}
	return out
}

// MaxOracleGeoMean returns the geometric mean speedup of the oracle
// over baseline across all tuples - the "maximum geomean speedup
// queried from our dataset" of Section II-B.
func MaxOracleGeoMean(d *dataset.Dataset) float64 {
	var ratios []float64
	for _, t := range d.Tuples() {
		base, ok1 := d.Mean(t, opt.Config{})
		_, best, ok2 := d.BestConfig(t)
		if ok1 && ok2 && best > 0 {
			ratios = append(ratios, base/best)
		}
	}
	return stats.GeoMean(ratios)
}

// FlagFrequency counts, per chip, in how many (app, input) tests each
// flag participates in the oracle (top-speedup) configuration - the
// data behind Figure 2.
type FlagFrequency struct {
	Chip string
	// Count[f] = number of tests whose oracle config enables flag f.
	Count map[opt.Flag]int
	// Tests is the number of tests with a strict oracle speedup.
	Tests int
}

// TopSpeedupOpts computes Figure 2: which optimisations appear in the
// per-test optimal configurations, chip by chip. Only tests whose
// oracle configuration significantly beats baseline are counted.
func TopSpeedupOpts(d *dataset.Dataset) []FlagFrequency {
	var out []FlagFrequency
	for _, c := range d.Chips() {
		ff := FlagFrequency{Chip: c, Count: map[opt.Flag]int{}}
		for _, t := range d.Tuples() {
			if t.Chip != c {
				continue
			}
			cfg, _, ok := d.BestConfig(t)
			if !ok || cfg.IsBaseline() {
				continue
			}
			if outc, _ := Classify(d, t, cfg); outc != Speedup {
				continue
			}
			ff.Tests++
			for _, f := range cfg.EnabledFlags() {
				ff.Count[f]++
			}
		}
		out = append(out, ff)
	}
	return out
}
