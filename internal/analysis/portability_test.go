package analysis

import (
	"math"
	"testing"

	"gpuport/internal/dataset"
	"gpuport/internal/opt"
)

func TestCrossChipHeatmapStructure(t *testing.T) {
	// sg helps only on chipA; wg helps only on chipB. Each chip's
	// optimal settings hurt the other chip, so off-diagonal cells
	// exceed 1 and the diagonal is exactly 1.
	tuples := grid([]string{"chipA", "chipB"}, []string{"a1", "a2"}, []string{"i1", "i2"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG {
			if tp.Chip == "chipA" {
				return 0.5
			}
			return 1.8
		}
		if f == opt.FlagWG {
			if tp.Chip == "chipB" {
				return 0.6
			}
			return 1.7
		}
		return 1.0
	})
	h := CrossChipHeatmap(d)
	if len(h.Rows) != 2 || len(h.Cols) != 2 {
		t.Fatalf("heatmap %dx%d", len(h.Rows), len(h.Cols))
	}
	for i := range h.Rows {
		if math.Abs(h.Cell[i][i]-1) > 1e-9 {
			t.Errorf("diagonal [%d][%d] = %v, want 1", i, i, h.Cell[i][i])
		}
		for j := range h.Cols {
			if i != j && h.Cell[i][j] <= 1.2 {
				t.Errorf("off-diagonal [%d][%d] = %v, want > 1.2", i, j, h.Cell[i][j])
			}
		}
	}
	for j := range h.Cols {
		if h.ColMeanOffDiag[j] <= h.ColMean[j] {
			t.Errorf("off-diagonal column mean should exceed the all-rows mean (diagonal is 1)")
		}
	}
	for i := range h.Rows {
		if h.RowMean[i] <= 1 {
			t.Errorf("row mean %d = %v, want > 1", i, h.RowMean[i])
		}
	}
}

func TestExtremes(t *testing.T) {
	tuples := grid([]string{"c"}, []string{"fastapp", "slowapp"}, []string{"i"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG && tp.App == "fastapp" {
			return 0.1 // 10x speedup available
		}
		if f == opt.FlagWG && tp.App == "slowapp" {
			return 8.0 // 8x slowdown possible
		}
		return 1.0
	})
	ex := Extremes(d)
	if len(ex) != 1 {
		t.Fatalf("extremes = %d", len(ex))
	}
	e := ex[0]
	if e.MaxSpeedup < 9 || e.SpeedupApp != "fastapp" || !e.SpeedupCfg.SG {
		t.Errorf("speedup extreme %+v", e)
	}
	if e.MaxSlowdown < 7 || e.SlowdownApp != "slowapp" || !e.SlowdownCfg.WG {
		t.Errorf("slowdown extreme %+v", e)
	}
}

func TestMaxOracleGeoMean(t *testing.T) {
	tuples := grid([]string{"c"}, []string{"a1", "a2"}, []string{"i"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG {
			return 0.25 // 4x speedup on every tuple
		}
		return 1.0
	})
	got := MaxOracleGeoMean(d)
	if math.Abs(got-4) > 0.05 {
		t.Errorf("oracle geomean = %v, want ~4", got)
	}
}

func TestTopSpeedupOpts(t *testing.T) {
	tuples := grid([]string{"c1", "c2"}, []string{"a1", "a2", "a3"}, []string{"i"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagFG8 && tp.Chip == "c1" {
			return 0.4
		}
		if f == opt.FlagOiterGB && tp.Chip == "c2" {
			return 0.4
		}
		return 1.0
	})
	ffs := TopSpeedupOpts(d)
	byChip := map[string]FlagFrequency{}
	for _, ff := range ffs {
		byChip[ff.Chip] = ff
	}
	// The flags carrying the real effect always appear in the optimal
	// configurations; flags without effect may ride along by noise (the
	// argmin over 96 near-tied configs picks them arbitrarily), so only
	// the load-bearing counts are asserted.
	c1 := byChip["c1"]
	if c1.Tests != 3 || c1.Count[opt.FlagFG8] != 3 {
		t.Errorf("c1 frequencies %+v", c1)
	}
	c2 := byChip["c2"]
	if c2.Count[opt.FlagOiterGB] != 3 {
		t.Errorf("c2 frequencies %+v", c2)
	}
}
