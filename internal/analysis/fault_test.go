package analysis

// Fault-degradation proof: the analysis layer must draw (nearly) the
// same conclusions from a sweep that lost cells and samples to injected
// faults as from a clean one. This is the test that calibrates
// FaultAgreementFloor and FaultRankTauFloor.

import (
	"testing"

	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/dataset"
	"gpuport/internal/fault"
	"gpuport/internal/graph"
	"gpuport/internal/measure"
)

// faultSweepOptions is a small but non-trivial sweep: 2 chips x 3 apps
// x 2 inputs x 96 configs.
func faultSweepOptions() measure.Options {
	var as []apps.App
	for _, name := range []string{"bfs-wl", "pr-residual", "sssp-nf"} {
		a, err := apps.ByName(name)
		if err != nil {
			panic(err)
		}
		as = append(as, a)
	}
	return measure.Options{
		Seed:  7,
		Runs:  3,
		Chips: chip.All()[:2],
		Apps:  as,
		Inputs: []*graph.Graph{
			graph.GenerateUniform("fa-rand", 600, 5, 9),
			graph.GenerateUniform("fa-rand2", 500, 6, 17),
		},
	}
}

func TestFaultedSweepAgreesWithClean(t *testing.T) {
	clean, err := measure.Collect(faultSweepOptions())
	if err != nil {
		t.Fatal(err)
	}
	// ~5% fault rates with a single retry, so some cells genuinely go
	// missing, some heal on the (differently-noised) retry stream, and
	// some samples are quarantined - a partial AND perturbed dataset.
	o := faultSweepOptions()
	o.Faults = &fault.Profile{
		Seed:       3,
		Transient:  0.05,
		Hang:       0.02,
		Corrupt:    0.05,
		MaxRetries: 1,
	}
	faulted, rep, err := measure.CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retried == 0 || rep.Quarantined == 0 {
		t.Fatalf("fault profile was inert: %+v", rep)
	}
	t.Logf("faulted sweep: coverage %.3f, %d retried, %d quarantined, %d failed",
		rep.Coverage(), rep.Retried, rep.Quarantined, len(rep.Failures))

	agree, undecided := AgreementBetween(
		Specialise(clean, Dims{Chip: true}),
		Specialise(faulted, Dims{Chip: true}))
	t.Logf("per-chip agreement %.3f (undecided %.3f)", agree, undecided)
	if agree < FaultAgreementFloor {
		t.Errorf("per-chip agreement %.3f below documented floor %v",
			agree, FaultAgreementFloor)
	}

	tau := RankCorrelation(RankConfigs(clean), RankConfigs(faulted))
	t.Logf("rank tau %.3f", tau)
	if tau < FaultRankTauFloor {
		t.Errorf("rank correlation %.3f below documented floor %v",
			tau, FaultRankTauFloor)
	}
}

// TestAnalysisSurvivesChipDropout is the graceful-degradation
// acceptance: a whole chip dies mid-sweep and every analysis entry
// point must still complete on the partial dataset.
func TestAnalysisSurvivesChipDropout(t *testing.T) {
	o := faultSweepOptions()
	o.Faults = &fault.Profile{Seed: 4, Dropout: 1}
	d, rep, err := measure.CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DropoutChip == "" || rep.Complete() {
		t.Fatalf("dropout did not degrade the sweep: %+v", rep)
	}
	t.Logf("dropout killed %s from cell %d; coverage %.3f",
		rep.DropoutChip, rep.DropoutFrom, rep.Coverage())

	ranks := RankConfigs(d)
	if len(ranks) == 0 {
		t.Error("RankConfigs returned nothing on partial dataset")
	}
	for _, dims := range append(AllDims(), Dims{}) {
		sp := Specialise(d, dims)
		if sp == nil || sp.Strategy == nil {
			t.Fatalf("Specialise(%s) degenerated on partial dataset", dims.Name())
		}
	}
	strategies := []*Strategy{Baseline(), Specialise(d, Dims{Chip: true}).Strategy, Oracle(d)}
	evals, excluded := EvaluateAll(d, strategies)
	if len(evals) != len(strategies) {
		t.Fatalf("EvaluateAll returned %d evals for %d strategies", len(evals), len(strategies))
	}
	t.Logf("EvaluateAll on partial data: %d excluded tests", excluded)
	if h := CrossChipHeatmap(d); h == nil {
		t.Error("CrossChipHeatmap returned nil on partial dataset")
	}
	if ex := Extremes(d); len(ex) == 0 {
		t.Error("Extremes returned nothing on partial dataset")
	}

	// The surviving chip's partition must still reach real decisions.
	surviving := ""
	for _, ch := range o.Chips {
		if ch.Name != rep.DropoutChip {
			surviving = ch.Name
		}
	}
	perChip := Specialise(d, Dims{Chip: true})
	found := false
	for _, part := range perChip.Partitions {
		if part.Key.Chip == surviving {
			found = true
		}
	}
	if !found {
		t.Errorf("surviving chip %s missing from per-chip specialisation", surviving)
	}
	_ = dataset.Tuple{}
}
