package analysis

// This file implements the paper's second future-work item (Section
// IX): moving from descriptive to *predictive* models. The question:
// if a strategy is derived without ever seeing a particular
// application (or input, or chip), how well does it perform there?
// Leave-one-out cross-validation over any dimension answers that with
// the machinery already in place.

import (
	"gpuport/internal/dataset"
	"gpuport/internal/opt"
)

// LOOResult is the outcome of one leave-one-out fold.
type LOOResult struct {
	// Held is the held-out dimension value (an app, input or chip name).
	Held string
	// TestCount is the number of improvable held-out tests scored.
	TestCount int
	// Eval scores the strategy trained without Held on Held's tests,
	// against the full-data oracle.
	Eval StrategyEval
}

// LOODimension selects what to hold out.
type LOODimension int

const (
	// LOOApp holds out one application per fold.
	LOOApp LOODimension = iota
	// LOOInput holds out one input per fold.
	LOOInput
	// LOOChip holds out one chip per fold.
	LOOChip
)

// String returns the dimension name.
func (d LOODimension) String() string {
	switch d {
	case LOOApp:
		return "app"
	case LOOInput:
		return "input"
	case LOOChip:
		return "chip"
	default:
		return "?"
	}
}

// values returns the distinct values of the dimension in ds.
func (d LOODimension) values(ds *dataset.Dataset) []string {
	switch d {
	case LOOApp:
		return ds.Apps()
	case LOOInput:
		return ds.Inputs()
	default:
		return ds.Chips()
	}
}

// of projects a tuple onto the dimension.
func (d LOODimension) of(t dataset.Tuple) string {
	switch d {
	case LOOApp:
		return t.App
	case LOOInput:
		return t.Input
	default:
		return t.Chip
	}
}

// trainDims returns the specialisation the predictor may use: it can
// specialise on everything except the held-out dimension, since it
// will never have seen the held-out value.
func (d LOODimension) trainDims() Dims {
	switch d {
	case LOOApp:
		return Dims{Chip: true, Input: true}
	case LOOInput:
		return Dims{Chip: true, App: true}
	default:
		return Dims{App: true, Input: true}
	}
}

// CrossValidate performs leave-one-out cross-validation along dim: for
// every value v, Algorithm 1 derives a strategy from all tests NOT
// involving v (specialised over the remaining two dimensions, with the
// training set's global configuration as a fallback for partitions the
// training data never produced), then scores it on v's improvable
// tests against the per-test oracle.
func CrossValidate(d *dataset.Dataset, dim LOODimension) []LOOResult {
	oracle := Oracle(d)
	trainDims := dim.trainDims()
	var out []LOOResult
	for _, held := range dim.values(d) {
		held := held
		train := d.TuplesWhere(func(t dataset.Tuple) bool { return dim.of(t) != held })
		test := improvableSubset(d, d.TuplesWhere(func(t dataset.Tuple) bool { return dim.of(t) == held }))

		spec := specialiseTuples(d, trainDims, train)
		table := make(map[PartitionKey]opt.Config, len(spec.Partitions))
		for _, p := range spec.Partitions {
			table[p.Key] = p.Config
		}
		fallback := configFromDecisions(OptsForPartition(d, train))

		predictor := &Strategy{
			Name: "loo-" + dim.String(),
			pick: func(t dataset.Tuple) opt.Config {
				if cfg, ok := table[trainDims.keyFor(t)]; ok {
					return cfg
				}
				return fallback
			},
		}
		eval := EvaluateStrategy(d, predictor, oracle, test)
		eval.Name = "loo-" + dim.String() + "/" + held
		out = append(out, LOOResult{Held: held, TestCount: len(test), Eval: eval})
	}
	return out
}

func improvableSubset(d *dataset.Dataset, tuples []dataset.Tuple) []dataset.Tuple {
	var out []dataset.Tuple
	for _, t := range tuples {
		if Improvable(d, t) {
			out = append(out, t)
		}
	}
	return out
}
