package analysis

import (
	"testing"

	"gpuport/internal/dataset"
	"gpuport/internal/opt"
)

func samplingFixture() *dataset.Dataset {
	tuples := grid(
		[]string{"c1", "c2"},
		[]string{"a1", "a2", "a3", "a4", "a5"},
		[]string{"i1", "i2", "i3"},
	)
	return synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		switch f {
		case opt.FlagSG:
			return 0.7
		case opt.FlagWG:
			return 1.5
		case opt.FlagOiterGB:
			if tp.Chip == "c1" {
				return 0.6
			}
			return 1.4
		default:
			return 1.0
		}
	})
}

func TestSamplingCurveFullFractionAgrees(t *testing.T) {
	d := samplingFixture()
	pts := SamplingCurve(d, Dims{Chip: true}, []float64{1.0}, 3, 11)
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	p := pts[0]
	if p.MeanAgreement < 0.999 || p.MinAgreement < 0.999 {
		t.Errorf("full-fraction agreement = %v/%v, want 1.0", p.MeanAgreement, p.MinAgreement)
	}
	if p.MeanUndecided > 0.001 {
		t.Errorf("full-fraction undecided = %v, want 0", p.MeanUndecided)
	}
}

func TestSamplingCurveMonotoneish(t *testing.T) {
	d := samplingFixture()
	pts := SamplingCurve(d, Dims{Chip: true}, []float64{0.1, 0.5, 1.0}, 5, 11)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Agreement should not collapse at half the data, and the tiny
	// sample should leave more undecided than the full one.
	if pts[1].MeanAgreement < 0.7 {
		t.Errorf("50%% sample agreement = %v, want >= 0.7", pts[1].MeanAgreement)
	}
	if pts[0].MeanUndecided < pts[2].MeanUndecided {
		t.Errorf("10%% sample should leave more undecided than 100%%: %v vs %v",
			pts[0].MeanUndecided, pts[2].MeanUndecided)
	}
	for _, p := range pts {
		if p.MeanAgreement < 0 || p.MeanAgreement > 1 || p.MeanUndecided < 0 || p.MeanUndecided > 1 {
			t.Errorf("point out of range: %+v", p)
		}
		if p.MinAgreement > p.MeanAgreement+1e-9 {
			t.Errorf("min agreement above mean: %+v", p)
		}
	}
}

func TestSamplingCurveDeterministic(t *testing.T) {
	d := samplingFixture()
	a := SamplingCurve(d, Dims{}, []float64{0.3}, 4, 5)
	b := SamplingCurve(d, Dims{}, []float64{0.3}, 4, 5)
	if a[0] != b[0] {
		t.Errorf("sampling curve not deterministic: %+v vs %+v", a[0], b[0])
	}
}

func TestCrossValidateApp(t *testing.T) {
	// sg helps everywhere; an unseen app should still be predicted well.
	tuples := grid([]string{"c1", "c2"}, []string{"a1", "a2", "a3"}, []string{"i1", "i2"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG {
			return 0.6
		}
		if f == opt.FlagWG {
			return 1.5
		}
		return 1.0
	})
	results := CrossValidate(d, LOOApp)
	if len(results) != 3 {
		t.Fatalf("folds = %d, want 3", len(results))
	}
	for _, r := range results {
		if r.TestCount == 0 {
			t.Errorf("fold %s scored no tests", r.Held)
			continue
		}
		if r.Eval.Slowdowns > 0 {
			t.Errorf("fold %s: %d slowdowns predicting a universal optimisation", r.Held, r.Eval.Slowdowns)
		}
		if r.Eval.Speedups != r.TestCount {
			t.Errorf("fold %s: %d/%d speedups", r.Held, r.Eval.Speedups, r.TestCount)
		}
	}
}

func TestCrossValidateChipConflict(t *testing.T) {
	// sg's sign depends on the chip. Holding out a chip forces the
	// predictor to use a chip-agnostic recommendation, so at least one
	// fold must do markedly worse than the chip-aware oracle.
	tuples := grid([]string{"c1", "c2"}, []string{"a1", "a2", "a3", "a4"}, []string{"i1", "i2"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG {
			if tp.Chip == "c1" {
				return 0.5
			}
			return 1.6
		}
		return 1.0
	})
	results := CrossValidate(d, LOOChip)
	if len(results) != 2 {
		t.Fatalf("folds = %d", len(results))
	}
	for _, r := range results {
		switch r.Held {
		case "c1":
			// Trained only on c2 (where sg hurts): predicts baseline,
			// missing c1's speedups -> far from oracle.
			if r.Eval.GeoMeanSlowdownVsOracle < 1.5 {
				t.Errorf("held c1 should be far from oracle, got %v", r.Eval.GeoMeanSlowdownVsOracle)
			}
		case "c2":
			// Trained only on c1 (sg helps): predicts sg, which hurts
			// c2. c2 tests are essentially non-improvable (nothing
			// helps there), so the fold is empty up to noise flukes.
			if r.TestCount > 2 {
				t.Errorf("c2 should have at most fluke improvable tests, got %d", r.TestCount)
			}
		}
	}
}

func TestLOODimensionNames(t *testing.T) {
	if LOOApp.String() != "app" || LOOInput.String() != "input" || LOOChip.String() != "chip" {
		t.Error("dimension names wrong")
	}
	if LOODimension(99).String() != "?" {
		t.Error("unknown dimension should render as ?")
	}
}
