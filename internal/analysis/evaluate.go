package analysis

import (
	"sort"

	"gpuport/internal/dataset"
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// Outcome classifies one test under a strategy relative to baseline.
type Outcome int

const (
	// NoChange means the difference was not statistically significant.
	NoChange Outcome = iota
	// Speedup means a significant improvement over baseline.
	Speedup
	// Slowdown means a significant regression.
	Slowdown
)

// Classify compares the samples of cfg against baseline on tuple t:
// significant (95% CI) and faster -> Speedup; significant and slower ->
// Slowdown; otherwise NoChange. The returned ratio is baseline mean /
// cfg mean (above 1.0 means cfg is faster).
func Classify(d *dataset.Dataset, t dataset.Tuple, cfg opt.Config) (Outcome, float64) {
	base := d.Samples(t, opt.Config{})
	cur := d.Samples(t, cfg)
	if base == nil || cur == nil {
		return NoChange, 1
	}
	ratio := stats.Mean(base) / stats.Mean(cur)
	if cfg.IsBaseline() || !stats.SignificantlyDifferent(base, cur) {
		return NoChange, ratio
	}
	if ratio > 1 {
		return Speedup, ratio
	}
	return Slowdown, ratio
}

// Improvable reports whether any configuration yields a significant
// speedup over baseline on t. The paper excludes the ~43% of tests
// where no optimisation helps from its strategy comparison (Figure 3).
func Improvable(d *dataset.Dataset, t dataset.Tuple) bool {
	for _, cfg := range opt.NonBaseline() {
		if out, _ := Classify(d, t, cfg); out == Speedup {
			return true
		}
	}
	return false
}

// StrategyEval summarises one strategy across a test set (the data
// behind Figures 3 and 4).
type StrategyEval struct {
	Name string
	// Speedups / Slowdowns / NoChanges count classified tests.
	Speedups, Slowdowns, NoChanges int
	// GeoMeanVsBaseline is the geometric mean of baseline/strategy
	// runtimes (above 1 = strategy faster on average).
	GeoMeanVsBaseline float64
	// GeoMeanSlowdownVsOracle is the geometric mean of strategy/oracle
	// runtimes (1.0 = oracle-equal; Figure 4's metric).
	GeoMeanSlowdownVsOracle float64
	// MaxSpeedup is the best single-test improvement over baseline.
	MaxSpeedup float64
}

// Tests returns the number of classified tests.
func (e StrategyEval) Tests() int { return e.Speedups + e.Slowdowns + e.NoChanges }

// EvaluateStrategy scores one strategy over the given tuples.
func EvaluateStrategy(d *dataset.Dataset, s *Strategy, oracle *Strategy, tuples []dataset.Tuple) StrategyEval {
	ev := StrategyEval{Name: s.Name, MaxSpeedup: 1}
	var vsBase, vsOracle []float64
	for _, t := range tuples {
		cfg := s.Config(t)
		out, ratio := Classify(d, t, cfg)
		switch out {
		case Speedup:
			ev.Speedups++
		case Slowdown:
			ev.Slowdowns++
		default:
			ev.NoChanges++
		}
		vsBase = append(vsBase, ratio)
		if ratio > ev.MaxSpeedup {
			ev.MaxSpeedup = ratio
		}
		sm, okS := d.Mean(t, cfg)
		om, okO := d.Mean(t, oracle.Config(t))
		if okS && okO && om > 0 {
			vsOracle = append(vsOracle, sm/om)
		}
	}
	ev.GeoMeanVsBaseline = stats.GeoMean(vsBase)
	ev.GeoMeanSlowdownVsOracle = stats.GeoMean(vsOracle)
	return ev
}

// StandardStrategies derives the ten strategies of the study: baseline,
// the eight Algorithm-1 specialisations, and the oracle.
func StandardStrategies(d *dataset.Dataset) []*Strategy {
	out := []*Strategy{Baseline()}
	for _, dims := range AllDims() {
		out = append(out, Specialise(d, dims).Strategy)
	}
	out = append(out, Oracle(d))
	return out
}

// EvaluateAll evaluates the given strategies over the improvable subset
// of d's tuples (the paper's Figure 3 / Figure 4 protocol). It returns
// the evaluations in the order the strategies were given, plus the
// number of excluded (non-improvable) tuples.
func EvaluateAll(d *dataset.Dataset, strategies []*Strategy) ([]StrategyEval, int) {
	oracle := findOracle(strategies, d)
	var tuples []dataset.Tuple
	excluded := 0
	for _, t := range d.Tuples() {
		if Improvable(d, t) {
			tuples = append(tuples, t)
		} else {
			excluded++
		}
	}
	evals := make([]StrategyEval, 0, len(strategies))
	for _, s := range strategies {
		evals = append(evals, EvaluateStrategy(d, s, oracle, tuples))
	}
	return evals, excluded
}

func findOracle(strategies []*Strategy, d *dataset.Dataset) *Strategy {
	for _, s := range strategies {
		if s.Name == "oracle" {
			return s
		}
	}
	return Oracle(d)
}

// ConfigRank is one row of the paper's Table III: a configuration
// applied globally, scored by how many tests it harms.
type ConfigRank struct {
	Rank      int
	Config    opt.Config
	Slowdowns int
	Speedups  int
	// GeoMean is baseline/config across all tuples (above 1 = good).
	GeoMean float64
	// MaxSpeedup is the best single-test improvement.
	MaxSpeedup float64
}

// RankConfigs scores every non-baseline configuration globally and
// ranks by ascending slowdown count (ties by descending speedups, then
// geomean). This reproduces Table III and exposes why "do no harm" and
// "fewest slowdowns" fail as portable-policy constructions.
func RankConfigs(d *dataset.Dataset) []ConfigRank {
	tuples := d.Tuples()
	var out []ConfigRank
	for _, cfg := range opt.NonBaseline() {
		r := ConfigRank{Config: cfg, MaxSpeedup: 1}
		var ratios []float64
		for _, t := range tuples {
			outc, ratio := Classify(d, t, cfg)
			switch outc {
			case Speedup:
				r.Speedups++
			case Slowdown:
				r.Slowdowns++
			}
			ratios = append(ratios, ratio)
			if ratio > r.MaxSpeedup {
				r.MaxSpeedup = ratio
			}
		}
		r.GeoMean = stats.GeoMean(ratios)
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Slowdowns != b.Slowdowns {
			return a.Slowdowns < b.Slowdowns
		}
		if a.Speedups != b.Speedups {
			return a.Speedups > b.Speedups
		}
		return a.GeoMean > b.GeoMean
	})
	for i := range out {
		out[i].Rank = i
	}
	return out
}

// MaxGeoMeanConfig returns the ranked configuration with the highest
// global geomean (the flawed "maximise geomean" policy of Section II-C).
func MaxGeoMeanConfig(ranks []ConfigRank) ConfigRank {
	best := ranks[0]
	for _, r := range ranks[1:] {
		if r.GeoMean > best.GeoMean {
			best = r
		}
	}
	return best
}

// ChipCounts is one row of Table IV: per-chip outcome counts for a
// configuration applied to every (app, input) pair on that chip.
type ChipCounts struct {
	Chip       string
	Speedups   int
	Slowdowns  int
	NoChanges  int
	GeoMean    float64
	MaxSpeedup float64
}

// PerChipCounts scores cfg on each chip separately, exposing the
// per-chip bias that global magnitude-based metrics hide (Table IV).
func PerChipCounts(d *dataset.Dataset, cfg opt.Config) []ChipCounts {
	var out []ChipCounts
	for _, chipName := range d.Chips() {
		cc := ChipCounts{Chip: chipName, MaxSpeedup: 1}
		var ratios []float64
		for _, t := range d.Tuples() {
			if t.Chip != chipName {
				continue
			}
			outc, ratio := Classify(d, t, cfg)
			switch outc {
			case Speedup:
				cc.Speedups++
			case Slowdown:
				cc.Slowdowns++
			default:
				cc.NoChanges++
			}
			ratios = append(ratios, ratio)
			if ratio > cc.MaxSpeedup {
				cc.MaxSpeedup = ratio
			}
		}
		cc.GeoMean = stats.GeoMean(ratios)
		out = append(out, cc)
	}
	return out
}
