package analysis

import (
	"testing"

	"gpuport/internal/dataset"
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// synthDataset builds a dataset where each tuple's runtime is a pure
// function of the configuration: base multiplied by a per-flag factor
// (below 1.0 = flag helps on that tuple), with tiny deterministic
// noise so confidence intervals are tight.
func synthDataset(tuples []dataset.Tuple, factor func(t dataset.Tuple, f opt.Flag) float64) *dataset.Dataset {
	d := dataset.New()
	rng := stats.NewRNG(12345)
	for _, t := range tuples {
		base := 1000.0
		for _, cfg := range opt.All() {
			v := base
			for _, f := range cfg.EnabledFlags() {
				v *= factor(t, f)
			}
			samples := make([]float64, 3)
			for i := range samples {
				samples[i] = v * (1 + 0.001*(rng.Float64()-0.5))
			}
			d.Add(dataset.Record{Key: dataset.Key{Tuple: t, Config: cfg}, Samples: samples})
		}
	}
	return d
}

func grid(chips, apps, inputs []string) []dataset.Tuple {
	var out []dataset.Tuple
	for _, c := range chips {
		for _, a := range apps {
			for _, i := range inputs {
				out = append(out, dataset.Tuple{Chip: c, App: a, Input: i})
			}
		}
	}
	return out
}

func TestDimsNames(t *testing.T) {
	cases := map[string]Dims{
		"global":         {},
		"chip":           {Chip: true},
		"app":            {App: true},
		"input":          {Input: true},
		"chip_app":       {Chip: true, App: true},
		"chip_input":     {Chip: true, Input: true},
		"app_input":      {App: true, Input: true},
		"chip_app_input": {Chip: true, App: true, Input: true},
	}
	for want, d := range cases {
		if got := d.Name(); got != want {
			t.Errorf("Dims%+v.Name() = %q, want %q", d, got, want)
		}
	}
	if len(AllDims()) != 8 {
		t.Errorf("AllDims = %d, want 8", len(AllDims()))
	}
}

func TestGlobalEnablesUniversallyGoodFlag(t *testing.T) {
	tuples := grid([]string{"c1", "c2"}, []string{"a1", "a2"}, []string{"i1"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		switch f {
		case opt.FlagSG:
			return 0.7 // always helps
		case opt.FlagWG:
			return 1.4 // always hurts
		default:
			return 1.0 // no effect -> never significant
		}
	})
	spec := Specialise(d, Dims{})
	if len(spec.Partitions) != 1 {
		t.Fatalf("global partitions = %d", len(spec.Partitions))
	}
	cfg := spec.Strategy.Config(tuples[0])
	if !cfg.SG {
		t.Error("sg should be enabled globally")
	}
	if cfg.WG {
		t.Error("wg should be disabled globally")
	}
	for _, dec := range spec.Partitions[0].Decisions {
		switch dec.Flag {
		case opt.FlagSG:
			if !dec.Enabled || !dec.Confident || dec.CL < 0.95 {
				t.Errorf("sg decision %+v", dec)
			}
		case opt.FlagWG:
			if dec.Enabled || !dec.Confident || dec.CL > 0.05 {
				t.Errorf("wg decision %+v", dec)
			}
		default:
			// Flags with no effect produce at most a handful of noise
			// flukes - far too few for the MWU test to act on.
			if dec.Comparisons > 10 {
				t.Errorf("%v has %d significant pairs from pure noise", dec.Flag, dec.Comparisons)
			}
			if dec.Enabled {
				t.Errorf("%v enabled from pure noise: %+v", dec.Flag, dec)
			}
		}
	}
}

func TestChipSpecialisationSplitsConflict(t *testing.T) {
	// sg helps on chipA, hurts on chipB: the chip specialisation must
	// recommend it only for chipA.
	tuples := grid([]string{"chipA", "chipB"}, []string{"a1", "a2", "a3"}, []string{"i1", "i2"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG {
			if tp.Chip == "chipA" {
				return 0.6
			}
			return 1.5
		}
		return 1.0
	})
	spec := Specialise(d, Dims{Chip: true})
	if len(spec.Partitions) != 2 {
		t.Fatalf("partitions = %d, want 2", len(spec.Partitions))
	}
	cfgA := spec.Strategy.Config(dataset.Tuple{Chip: "chipA", App: "a1", Input: "i1"})
	cfgB := spec.Strategy.Config(dataset.Tuple{Chip: "chipB", App: "a1", Input: "i1"})
	if !cfgA.SG {
		t.Error("chipA should enable sg")
	}
	if cfgB.SG {
		t.Error("chipB should not enable sg")
	}
}

func TestInputSpecialisation(t *testing.T) {
	tuples := grid([]string{"c"}, []string{"a1", "a2", "a3", "a4"}, []string{"road", "social"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagOiterGB && tp.Input == "road" {
			return 0.3
		}
		if f == opt.FlagOiterGB {
			return 1.2
		}
		return 1.0
	})
	spec := Specialise(d, Dims{Input: true})
	road := spec.Strategy.Config(dataset.Tuple{Chip: "c", App: "a1", Input: "road"})
	social := spec.Strategy.Config(dataset.Tuple{Chip: "c", App: "a1", Input: "social"})
	if !road.OiterGB || social.OiterGB {
		t.Errorf("oitergb: road=%v social=%v, want true/false", road.OiterGB, social.OiterGB)
	}
}

func TestFGConflictResolvedByMedian(t *testing.T) {
	tuples := grid([]string{"c1", "c2"}, []string{"a1", "a2", "a3"}, []string{"i1", "i2"})
	// Both fg variants help; fg1 helps more.
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		switch f {
		case opt.FlagFG1:
			return 0.5
		case opt.FlagFG8:
			return 0.8
		default:
			return 1.0
		}
	})
	spec := Specialise(d, Dims{})
	cfg := spec.Strategy.Config(tuples[0])
	if cfg.FG != opt.FG1 {
		t.Errorf("fg conflict: got %v, want FG1 (stronger median)", cfg.FG)
	}
}

func TestBaselineStrategy(t *testing.T) {
	s := Baseline()
	if s.Name != "baseline" {
		t.Errorf("name = %q", s.Name)
	}
	if !s.Config(dataset.Tuple{Chip: "x"}).IsBaseline() {
		t.Error("baseline must map everything to the empty config")
	}
}

func TestOracleStrategy(t *testing.T) {
	tuples := grid([]string{"c1"}, []string{"a1"}, []string{"i1"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG {
			return 0.5
		}
		if f == opt.FlagFG8 {
			return 0.9
		}
		return 1.1
	})
	o := Oracle(d)
	cfg := o.Config(tuples[0])
	// Best config enables exactly sg and fg8 (the only helpful flags).
	if !cfg.SG || cfg.FG != opt.FG8 || cfg.WG || cfg.CoopCV || cfg.OiterGB || cfg.SZ256 {
		t.Errorf("oracle config = %v", cfg)
	}
}

func TestPartitionKeyString(t *testing.T) {
	k := PartitionKey{Chip: "c"}
	if k.String() != "(c,*,*)" {
		t.Errorf("key string = %q", k.String())
	}
}

func TestDimsCount(t *testing.T) {
	if (Dims{}).Count() != 0 || (Dims{Chip: true, Input: true}).Count() != 2 {
		t.Error("Count wrong")
	}
}
