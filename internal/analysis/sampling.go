package analysis

// This file implements the paper's first future-work item (Section IX):
// "explore whether smaller sample sizes from the test domain could be
// sufficient to yield significant results". SamplingCurve repeatedly
// derives strategies from random subsets of the tests and measures how
// well the subsampled recommendations agree with the full-data ones.

import (
	"sort"

	"gpuport/internal/dataset"
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// SamplingPoint summarises subsampled analyses at one sampling rate.
type SamplingPoint struct {
	// Fraction of tests sampled (0 < Fraction <= 1).
	Fraction float64
	// Trials is the number of random subsets evaluated.
	Trials int
	// MeanAgreement is the average fraction of per-partition flag
	// recommendations (enabled/disabled) matching the full-data
	// analysis.
	MeanAgreement float64
	// MinAgreement is the worst trial.
	MinAgreement float64
	// MeanUndecided is the average fraction of decisions that lose
	// confidence (p >= alpha both ways) under subsampling.
	MeanUndecided float64
}

// SamplingCurve runs Algorithm 1 at the given specialisation over
// random test subsets of increasing size and reports agreement with the
// full-data recommendations. Deterministic for a given seed.
func SamplingCurve(d *dataset.Dataset, dims Dims, fractions []float64, trials int, seed uint64) []SamplingPoint {
	full := Specialise(d, dims)
	fullDec := decisionTable(full)
	tuples := d.Tuples()
	rng := stats.NewRNG(seed)

	var out []SamplingPoint
	for _, frac := range fractions {
		n := int(frac*float64(len(tuples)) + 0.5)
		if n < 1 {
			n = 1
		}
		if n > len(tuples) {
			n = len(tuples)
		}
		pt := SamplingPoint{Fraction: frac, Trials: trials, MinAgreement: 1}
		var sumAgree, sumUndecided float64
		for trial := 0; trial < trials; trial++ {
			perm := rng.Perm(len(tuples))
			subset := make([]dataset.Tuple, n)
			for i := 0; i < n; i++ {
				subset[i] = tuples[perm[i]]
			}
			sub := specialiseTuples(d, dims, subset)
			agree, undecided := compareDecisions(fullDec, sub)
			sumAgree += agree
			sumUndecided += undecided
			if agree < pt.MinAgreement {
				pt.MinAgreement = agree
			}
		}
		pt.MeanAgreement = sumAgree / float64(trials)
		pt.MeanUndecided = sumUndecided / float64(trials)
		out = append(out, pt)
	}
	return out
}

// specialiseTuples runs Algorithm 1 over an explicit tuple subset.
func specialiseTuples(d *dataset.Dataset, dims Dims, tuples []dataset.Tuple) *Specialisation {
	parts := map[PartitionKey][]dataset.Tuple{}
	var order []PartitionKey
	for _, t := range tuples {
		k := dims.keyFor(t)
		if _, ok := parts[k]; !ok {
			order = append(order, k)
		}
		parts[k] = append(parts[k], t)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Chip != b.Chip {
			return a.Chip < b.Chip
		}
		if a.App != b.App {
			return a.App < b.App
		}
		return a.Input < b.Input
	})
	spec := &Specialisation{Dims: dims}
	table := make(map[PartitionKey]opt.Config, len(order))
	for _, k := range order {
		p := Partition{Key: k, Tuples: parts[k]}
		p.Decisions = OptsForPartition(d, p.Tuples)
		p.Config = configFromDecisions(p.Decisions)
		table[k] = p.Config
		spec.Partitions = append(spec.Partitions, p)
	}
	spec.Strategy = &Strategy{
		Name: dims.Name() + "-sampled",
		pick: func(t dataset.Tuple) opt.Config { return table[dims.keyFor(t)] },
	}
	return spec
}

type decisionKey struct {
	part PartitionKey
	flag opt.Flag
}

func decisionTable(s *Specialisation) map[decisionKey]FlagDecision {
	out := map[decisionKey]FlagDecision{}
	for _, p := range s.Partitions {
		for _, dec := range p.Decisions {
			out[decisionKey{p.Key, dec.Flag}] = dec
		}
	}
	return out
}

// compareDecisions returns the fraction of the full analysis' decisions
// the subsampled analysis reproduces, and the fraction of confident
// full-data decisions the subsample leaves undecided. Matching
// unconfidence counts as agreement (the subsample correctly declined to
// decide); a confident full-data decision the subsample cannot make
// counts as undecided, not as disagreement.
func compareDecisions(full map[decisionKey]FlagDecision, sub *Specialisation) (agree, undecided float64) {
	subDec := decisionTable(sub)
	if len(full) == 0 {
		return 1, 0
	}
	var match, undec float64
	for k, fd := range full {
		sd, ok := subDec[k]
		switch {
		case !fd.Confident:
			// The reference itself declined: agreement means the
			// subsample also declines (or is absent).
			if !ok || !sd.Confident {
				match++
			}
		case !ok || !sd.Confident:
			undec++
		case sd.Enabled == fd.Enabled:
			match++
		}
	}
	n := float64(len(full))
	return match / n, undec / n
}
