package analysis

import (
	"math"
	"testing"

	"gpuport/internal/dataset"
	"gpuport/internal/opt"
)

func TestClassify(t *testing.T) {
	tuples := grid([]string{"c"}, []string{"a"}, []string{"i"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		switch f {
		case opt.FlagSG:
			return 0.5
		case opt.FlagWG:
			return 2.0
		default:
			return 1.0
		}
	})
	tp := tuples[0]
	if out, ratio := Classify(d, tp, opt.Config{SG: true}); out != Speedup || ratio < 1.9 {
		t.Errorf("sg: %v %v", out, ratio)
	}
	if out, ratio := Classify(d, tp, opt.Config{WG: true}); out != Slowdown || ratio > 0.6 {
		t.Errorf("wg: %v %v", out, ratio)
	}
	if out, _ := Classify(d, tp, opt.Config{CoopCV: true}); out != NoChange {
		t.Errorf("noop flag should be NoChange, got %v", out)
	}
	if out, ratio := Classify(d, tp, opt.Config{}); out != NoChange || ratio != 1 {
		t.Errorf("baseline vs baseline: %v %v", out, ratio)
	}
}

func TestImprovable(t *testing.T) {
	tuples := grid([]string{"cGood", "cBad"}, []string{"a"}, []string{"i"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if tp.Chip == "cGood" && f == opt.FlagSG {
			return 0.5
		}
		return 1.0 // nothing helps on cBad
	})
	if !Improvable(d, tuples[0]) {
		t.Error("cGood should be improvable")
	}
	if Improvable(d, tuples[1]) {
		t.Error("cBad should not be improvable")
	}
}

func TestEvaluateAllCountsAndOracle(t *testing.T) {
	tuples := grid([]string{"c1", "c2"}, []string{"a1", "a2"}, []string{"i1", "i2"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG {
			if tp.Chip == "c1" {
				return 0.5
			}
			return 1.6
		}
		return 1.0
	})
	strategies := StandardStrategies(d)
	evals, excluded := EvaluateAll(d, strategies)
	if len(evals) != 10 {
		t.Fatalf("evals = %d, want 10 strategies", len(evals))
	}
	// c2 tuples are not improvable (sg only hurts there): excluded.
	if excluded != 4 {
		t.Errorf("excluded = %d, want 4", excluded)
	}
	byName := map[string]StrategyEval{}
	for _, e := range evals {
		byName[e.Name] = e
	}
	base := byName["baseline"]
	if base.Speedups != 0 || base.Slowdowns != 0 || base.NoChanges != 4 {
		t.Errorf("baseline eval %+v", base)
	}
	oracle := byName["oracle"]
	if oracle.Speedups != 4 || oracle.Slowdowns != 0 {
		t.Errorf("oracle eval %+v", oracle)
	}
	if math.Abs(oracle.GeoMeanSlowdownVsOracle-1) > 1e-9 {
		t.Errorf("oracle vs oracle = %v, want 1", oracle.GeoMeanSlowdownVsOracle)
	}
	// The global strategy enables sg (c1 wins outnumber c2 losses in
	// pair counts 4 configs..): either way chip specialisation must be
	// at least as good as global on every chip.
	global := byName["global"]
	chipEval := byName["chip"]
	if chipEval.Slowdowns > global.Slowdowns {
		t.Errorf("chip specialisation has more slowdowns (%d) than global (%d)",
			chipEval.Slowdowns, global.Slowdowns)
	}
	if chipEval.GeoMeanSlowdownVsOracle > global.GeoMeanSlowdownVsOracle+1e-9 {
		t.Errorf("chip (%v) worse than global (%v) vs oracle",
			chipEval.GeoMeanSlowdownVsOracle, global.GeoMeanSlowdownVsOracle)
	}
}

func TestRankConfigs(t *testing.T) {
	tuples := grid([]string{"c1", "c2"}, []string{"a1", "a2"}, []string{"i1"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		switch f {
		case opt.FlagSG:
			return 0.8
		case opt.FlagSZ256:
			return 1.5
		default:
			return 1.0
		}
	})
	ranks := RankConfigs(d)
	if len(ranks) != 95 {
		t.Fatalf("ranks = %d, want 95", len(ranks))
	}
	for i, r := range ranks {
		if r.Rank != i {
			t.Fatalf("rank field mismatch at %d", i)
		}
		if i > 0 && r.Slowdowns < ranks[i-1].Slowdowns {
			t.Fatalf("ranking not sorted by slowdowns at %d", i)
		}
	}
	// The top rank must not contain sz256 (it hurts everywhere).
	if ranks[0].Config.SZ256 {
		t.Errorf("top rank contains sz256: %v", ranks[0].Config)
	}
	// Bottom rank must contain sz256.
	if !ranks[len(ranks)-1].Config.SZ256 {
		t.Errorf("bottom rank lacks sz256: %v", ranks[len(ranks)-1].Config)
	}
	best := MaxGeoMeanConfig(ranks)
	for _, r := range ranks {
		if r.GeoMean > best.GeoMean {
			t.Errorf("MaxGeoMeanConfig missed %v (%v > %v)", r.Config, r.GeoMean, best.GeoMean)
		}
	}
}

func TestPerChipCounts(t *testing.T) {
	tuples := grid([]string{"c1", "c2"}, []string{"a1", "a2", "a3"}, []string{"i1"})
	d := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG {
			if tp.Chip == "c1" {
				return 0.5
			}
			return 2.0
		}
		return 1.0
	})
	counts := PerChipCounts(d, opt.Config{SG: true})
	if len(counts) != 2 {
		t.Fatalf("counts = %d chips", len(counts))
	}
	for _, cc := range counts {
		switch cc.Chip {
		case "c1":
			if cc.Speedups != 3 || cc.Slowdowns != 0 {
				t.Errorf("c1 counts %+v", cc)
			}
			if cc.MaxSpeedup < 1.9 {
				t.Errorf("c1 max speedup %v", cc.MaxSpeedup)
			}
		case "c2":
			if cc.Speedups != 0 || cc.Slowdowns != 3 {
				t.Errorf("c2 counts %+v", cc)
			}
		}
	}
}

func TestStrategyEvalTests(t *testing.T) {
	e := StrategyEval{Speedups: 3, Slowdowns: 2, NoChanges: 5}
	if e.Tests() != 10 {
		t.Errorf("Tests() = %d", e.Tests())
	}
}
