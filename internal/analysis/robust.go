package analysis

// Robustness utilities: the paper stresses that performance analysis
// can be "confounded by chance effects" (Section I) and chose its
// statistics accordingly. These helpers quantify how stable this
// study's conclusions are when the measurement noise changes (different
// seeds) or when the test domain shifts.

import (
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// AgreementBetween compares two specialisations partition by partition
// and returns the fraction of reference (a) decisions that b
// reproduces, plus the fraction of a's confident decisions b leaves
// undecided. Partitions must be keyed identically (same dims over the
// same dimension values).
func AgreementBetween(a, b *Specialisation) (agree, undecided float64) {
	return compareDecisions(decisionTable(a), b)
}

// RankCorrelation computes Kendall's tau-b between two Table III
// rankings: for each configuration present in both, its rank positions
// in a and b form a pair. Tau near 1 means the harm ordering of the
// optimisation space is stable.
func RankCorrelation(a, b []ConfigRank) float64 {
	posB := make(map[opt.Config]int, len(b))
	for _, r := range b {
		posB[r.Config] = r.Rank
	}
	var xs, ys []float64
	for _, r := range a {
		if pb, ok := posB[r.Config]; ok {
			xs = append(xs, float64(r.Rank))
			ys = append(ys, float64(pb))
		}
	}
	return stats.KendallTau(xs, ys)
}
