package analysis

// Robustness utilities: the paper stresses that performance analysis
// can be "confounded by chance effects" (Section I) and chose its
// statistics accordingly. These helpers quantify how stable this
// study's conclusions are when the measurement noise changes (different
// seeds) or when the test domain shifts.

import (
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// Fault-degradation tolerances. A measurement campaign that loses a few
// percent of its cells to injected faults (internal/fault: retried
// transients resample the noise stream, corrupted samples are
// quarantined, exhausted cells go missing) still has to support the
// study's conclusions. These floors state how much the headline
// statistics may move at roughly 5% fault rates before we consider the
// analysis fault-brittle; they are calibrated with safety margin by
// TestFaultedSweepAgreesWithClean, which observes substantially higher
// values on the standard small sweep.
const (
	// FaultAgreementFloor bounds AgreementBetween(clean, faulted) for
	// per-chip flag decisions: at least this fraction of the clean
	// sweep's confident decisions must be reproduced.
	FaultAgreementFloor = 0.80
	// FaultRankTauFloor bounds RankCorrelation between the clean and the
	// faulted Table III rankings (Kendall tau-b over shared configs).
	FaultRankTauFloor = 0.70
)

// AgreementBetween compares two specialisations partition by partition
// and returns the fraction of reference (a) decisions that b
// reproduces, plus the fraction of a's confident decisions b leaves
// undecided. Partitions must be keyed identically (same dims over the
// same dimension values).
func AgreementBetween(a, b *Specialisation) (agree, undecided float64) {
	return compareDecisions(decisionTable(a), b)
}

// RankCorrelation computes Kendall's tau-b between two Table III
// rankings: for each configuration present in both, its rank positions
// in a and b form a pair. Tau near 1 means the harm ordering of the
// optimisation space is stable.
func RankCorrelation(a, b []ConfigRank) float64 {
	posB := make(map[opt.Config]int, len(b))
	for _, r := range b {
		posB[r.Config] = r.Rank
	}
	var xs, ys []float64
	for _, r := range a {
		if pb, ok := posB[r.Config]; ok {
			xs = append(xs, float64(r.Rank))
			ys = append(ys, float64(pb))
		}
	}
	return stats.KendallTau(xs, ys)
}
