package analysis

import (
	"math"
	"testing"

	"gpuport/internal/dataset"
	"gpuport/internal/opt"
)

func TestAgreementBetweenIdentical(t *testing.T) {
	d := samplingFixture()
	a := Specialise(d, Dims{Chip: true})
	b := Specialise(d, Dims{Chip: true})
	agree, undec := AgreementBetween(a, b)
	if agree < 0.999 || undec > 0.001 {
		t.Errorf("identical specs: agree %v, undec %v", agree, undec)
	}
}

func TestAgreementBetweenConflicting(t *testing.T) {
	tuples := grid([]string{"c1"}, []string{"a1", "a2", "a3"}, []string{"i1", "i2"})
	dGood := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG {
			return 0.5
		}
		return 1.0
	})
	dBad := synthDataset(tuples, func(tp dataset.Tuple, f opt.Flag) float64 {
		if f == opt.FlagSG {
			return 2.0
		}
		return 1.0
	})
	a := Specialise(dGood, Dims{})
	b := Specialise(dBad, Dims{})
	agree, _ := AgreementBetween(a, b)
	if agree > 0.95 {
		t.Errorf("opposite datasets should disagree somewhere: agree = %v", agree)
	}
}

func TestRankCorrelationIdentical(t *testing.T) {
	d := samplingFixture()
	ranks := RankConfigs(d)
	if tau := RankCorrelation(ranks, ranks); !almostEq(tau, 1) {
		t.Errorf("self correlation = %v, want 1", tau)
	}
}

func TestRankCorrelationReversed(t *testing.T) {
	d := samplingFixture()
	ranks := RankConfigs(d)
	rev := make([]ConfigRank, len(ranks))
	for i, r := range ranks {
		r.Rank = len(ranks) - 1 - i
		rev[i] = r
	}
	if tau := RankCorrelation(ranks, rev); !almostEq(tau, -1) {
		t.Errorf("reversed correlation = %v, want -1", tau)
	}
}

func TestRankCorrelationDisjoint(t *testing.T) {
	d := samplingFixture()
	ranks := RankConfigs(d)
	if tau := RankCorrelation(ranks, nil); !math.IsNaN(tau) {
		t.Errorf("no overlap should be NaN, got %v", tau)
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
