package apps

import (
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
	"gpuport/internal/stats"
)

// MIS node states.
const (
	misUndecided int32 = iota
	misIn
	misOut
)

// misPriorities returns deterministic pseudo-random priorities, the
// symmetry-breaking device of Luby's algorithm. Ties are broken by node
// ID in the comparison, so distinct priorities are not required.
func misPriorities(n int) []int32 {
	p := make([]int32, n)
	r := stats.NewRNG(771144)
	for i := range p {
		p[i] = int32(r.Uint64() & 0x7fffffff)
	}
	return p
}

// misBeats reports whether node a (priority pa) beats node b (pb) in
// the symmetry-breaking order.
func misBeats(pa int32, a int32, pb int32, b int32) bool {
	if pa != pb {
		return pa > pb
	}
	return a > b
}

// runMISWL is Luby's maximal independent set with a worklist of
// undecided nodes: local maxima join the set and knock out their
// neighbours; survivors are re-queued.
func runMISWL(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("mis-wl", g)
	n := g.NumNodes()
	prio := misPriorities(n)
	status := make([]int32, n)
	wl := irgl.NewWorklist(n)
	for i := 0; i < n; i++ {
		wl.SeedHost(int32(i))
	}

	// prev snapshots the statuses the select kernel reads: in the GPU
	// original select reads the previous round's array, so a node that
	// joins mid-kernel must not hide itself from later comparisons.
	prev := make([]int32, n)

	rt.Iterate("mis", func(iter int) bool {
		copy(prev, status)
		// Select kernel: local maxima among undecided neighbours join.
		sel := rt.Launch("mis_select")
		sel.ForAll(wl.Items(), func(it *irgl.Item, u int32) {
			if prev[u] != misUndecided {
				return
			}
			isMax := true
			it.VisitEdges(u, func(v, w int32) {
				if prev[v] == misUndecided && misBeats(prio[v], v, prio[u], u) {
					isMax = false
				}
			})
			if isMax {
				status[u] = misIn
			}
		})
		sel.End()

		// Knockout + requeue kernel.
		ko := rt.Launch("mis_knockout")
		ko.ForAll(wl.Items(), func(it *irgl.Item, u int32) {
			switch status[u] {
			case misIn:
				it.VisitEdges(u, func(v, w int32) {
					if status[v] == misUndecided {
						it.AtomicCAS(status, v, misUndecided, misOut)
					}
				})
			case misUndecided:
				it.Work(1)
				it.Push(wl, u)
			}
		})
		ko.End()
		return wl.Swap() > 0
	})
	return rt.Trace(), status
}

// runMISTopo is the topology-driven variant: every round scans all
// nodes rather than tracking the undecided set.
func runMISTopo(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("mis-topo", g)
	n := g.NumNodes()
	prio := misPriorities(n)
	status := make([]int32, n)

	prev := make([]int32, n)

	rt.Iterate("mis", func(iter int) bool {
		copy(prev, status)
		sel := rt.Launch("mis_select")
		sel.ForAllNodes(func(it *irgl.Item, u int32) {
			if prev[u] != misUndecided {
				return
			}
			isMax := true
			it.VisitEdges(u, func(v, w int32) {
				if prev[v] == misUndecided && misBeats(prio[v], v, prio[u], u) {
					isMax = false
				}
			})
			if isMax {
				status[u] = misIn
			}
		})
		sel.End()

		remaining := false
		ko := rt.Launch("mis_knockout")
		ko.ForAllNodes(func(it *irgl.Item, u int32) {
			switch status[u] {
			case misIn:
				it.VisitEdges(u, func(v, w int32) {
					if status[v] == misUndecided {
						it.AtomicCAS(status, v, misUndecided, misOut)
					}
				})
			case misUndecided:
				it.Work(1)
				remaining = true
			}
		})
		ko.End()
		return remaining
	})
	return rt.Trace(), status
}

// checkMIS verifies independence (no two set members adjacent) and
// maximality (every non-member has a member neighbour).
func checkMIS(g *graph.Graph, out any) error {
	status, err := asInt32Slice(g, out)
	if err != nil {
		return err
	}
	return verifyMIS(g, status)
}
