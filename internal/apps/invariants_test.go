package apps

// Algorithm-specific invariant tests, beyond the reference-equality
// checks of apps_test.go: structural properties each answer must hold
// on its own terms, evaluated on graphs with known closed-form answers.

import (
	"math"
	"testing"

	"gpuport/internal/graph"
)

func gridGraph(rows, cols int) *graph.Graph {
	b := graph.NewBuilder("t-grid", graph.ClassRoad, rows*cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddUndirected(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				b.AddUndirected(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return b.Build()
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder("t-cycle", graph.ClassRoad, n)
	for i := 0; i < n; i++ {
		b.AddUndirected(int32(i), int32((i+1)%n), 1)
	}
	return b.Build()
}

// BFS: every edge connects nodes whose levels differ by at most one,
// and exactly one node (the source) sits at level zero.
func TestBFSLevelInvariant(t *testing.T) {
	g := graph.GenerateRMAT("inv-bfs", 9, 8, 31)
	for _, name := range []string{"bfs-wl", "bfs-topo", "bfs-hybrid", "bfs-tp"} {
		app, _ := ByName(name)
		_, out := app.Run(g)
		dist := out.([]int32)
		src := SourceNode(g)
		if dist[src] != 0 {
			t.Errorf("%s: source level %d", name, dist[src])
		}
		for u := int32(0); int(u) < g.NumNodes(); u++ {
			if dist[u] == Infinity {
				continue
			}
			for _, v := range g.Neighbors(u) {
				if dist[v] == Infinity {
					t.Errorf("%s: reached %d has unreached neighbour %d", name, u, v)
					continue
				}
				d := dist[u] - dist[v]
				if d < -1 || d > 1 {
					t.Errorf("%s: edge (%d,%d) spans levels %d and %d", name, u, v, dist[u], dist[v])
				}
			}
		}
	}
}

// SSSP: relaxed distances satisfy the triangle inequality along every
// edge, with equality along at least one incoming edge per reached
// non-source node (a shortest-path tree exists).
func TestSSSPRelaxationInvariant(t *testing.T) {
	g := graph.GenerateRoad("inv-sssp", 20, 13)
	for _, name := range []string{"sssp-wl", "sssp-topo", "sssp-nf"} {
		app, _ := ByName(name)
		_, out := app.Run(g)
		dist := out.([]int32)
		src := SourceNode(g)
		for u := int32(0); int(u) < g.NumNodes(); u++ {
			if dist[u] == Infinity {
				continue
			}
			ws := g.EdgeWeights(u)
			for i, v := range g.Neighbors(u) {
				if dist[v] > dist[u]+ws[i] {
					t.Errorf("%s: edge (%d,%d) violates triangle inequality", name, u, v)
				}
			}
			if u == src {
				continue
			}
			tight := false
			for w := int32(0); int(w) < g.NumNodes() && !tight; w++ {
				if dist[w] == Infinity {
					continue
				}
				wws := g.EdgeWeights(w)
				for i, v := range g.Neighbors(w) {
					if v == u && dist[w]+wws[i] == dist[u] {
						tight = true
						break
					}
				}
			}
			if !tight {
				t.Errorf("%s: node %d has no tight incoming edge", name, u)
			}
		}
	}
}

// CC on a known topology: a cycle is one component; the label each
// implementation converges to is the component's minimum node id.
func TestCCMinLabelOnCycle(t *testing.T) {
	g := cycleGraph(24)
	for _, name := range []string{"cc-sv", "cc-wl"} {
		app, _ := ByName(name)
		_, out := app.Run(g)
		comp := out.([]int32)
		for i, c := range comp {
			if c != 0 {
				t.Errorf("%s: node %d label %d, want 0 (min id of the single component)", name, i, c)
			}
		}
	}
}

// MIS on a path: the greedy-by-priority set must cover at least 1/3 of
// the nodes (any maximal independent set on a path does) and the
// included nodes can never be adjacent.
func TestMISDensityOnPath(t *testing.T) {
	g := pathGraph(60)
	for _, name := range []string{"mis-wl", "mis-topo"} {
		app, _ := ByName(name)
		_, out := app.Run(g)
		status := out.([]int32)
		in := 0
		for _, s := range status {
			if s == misIn {
				in++
			}
		}
		if in < g.NumNodes()/3 {
			t.Errorf("%s: only %d of %d nodes in the set", name, in, g.NumNodes())
		}
	}
}

// MST on a grid with unit weights: the spanning tree weight is exactly
// nodes-1.
func TestMSTUnitGrid(t *testing.T) {
	g := gridGraph(9, 7)
	app, _ := ByName("mst-boruvka")
	_, out := app.Run(g)
	if w := out.(int64); w != int64(g.NumNodes()-1) {
		t.Errorf("unit-weight MST = %d, want %d", w, g.NumNodes()-1)
	}
}

// PageRank: the ranks are a probability distribution (sum 1) and on a
// vertex-transitive graph (cycle) every node has the same rank.
func TestPageRankDistribution(t *testing.T) {
	for _, name := range []string{"pr-topo", "pr-residual"} {
		app, _ := ByName(name)
		g := cycleGraph(30)
		_, out := app.Run(g)
		pr := out.([]float64)
		sum := 0.0
		for _, v := range pr {
			sum += v
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Errorf("%s: ranks sum to %v", name, sum)
		}
		want := 1.0 / float64(len(pr))
		for i, v := range pr {
			if math.Abs(v-want) > 1e-4 {
				t.Errorf("%s: rank[%d] = %v on a symmetric cycle, want %v", name, i, v, want)
			}
		}
	}
}

// PageRank hubs: on a star, the centre's rank must dominate every leaf.
func TestPageRankStarHub(t *testing.T) {
	b := graph.NewBuilder("t-star2", graph.ClassSocial, 12)
	for i := 1; i < 12; i++ {
		b.AddUndirected(0, int32(i), 1)
	}
	g := b.Build()
	for _, name := range []string{"pr-topo", "pr-residual"} {
		app, _ := ByName(name)
		_, out := app.Run(g)
		pr := out.([]float64)
		for i := 1; i < 12; i++ {
			if pr[0] <= pr[i] {
				t.Errorf("%s: hub rank %v <= leaf rank %v", name, pr[0], pr[i])
			}
		}
	}
}

// Triangles on structured graphs: a grid has none; a cycle of length
// > 3 has none; gluing one chord into a 4-cycle creates exactly two.
func TestTriangleStructured(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int64
	}{
		{gridGraph(6, 6), 0},
		{cycleGraph(10), 0},
		{func() *graph.Graph {
			b := graph.NewBuilder("t-chord", graph.ClassRandom, 4)
			b.AddUndirected(0, 1, 1)
			b.AddUndirected(1, 2, 1)
			b.AddUndirected(2, 3, 1)
			b.AddUndirected(3, 0, 1)
			b.AddUndirected(0, 2, 1) // chord -> triangles {0,1,2} and {0,2,3}
			return b.Build()
		}(), 2},
	}
	for _, name := range []string{"tri-bs", "tri-merge", "tri-hash"} {
		app, _ := ByName(name)
		for _, c := range cases {
			_, out := app.Run(c.g)
			if got := out.(int64); got != c.want {
				t.Errorf("%s on %s: %d triangles, want %d", name, c.g.Name, got, c.want)
			}
		}
	}
}

// Loop accounting: data-driven BFS performs exactly one launch per
// level plus the terminating check, and its loop iteration count
// matches the eccentricity of the source plus one.
func TestBFSLaunchAccounting(t *testing.T) {
	g := pathGraph(16) // source = max degree = an interior node
	app, _ := ByName("bfs-wl")
	trace, out := app.Run(g)
	dist := out.([]int32)
	var ecc int32
	for _, d := range dist {
		if d != Infinity && d > ecc {
			ecc = d
		}
	}
	if len(trace.Loops) != 1 {
		t.Fatalf("loops = %d", len(trace.Loops))
	}
	if got := trace.Loops[0].Iterations; got != int64(ecc)+1 {
		t.Errorf("iterations = %d, want eccentricity+1 = %d", got, ecc+1)
	}
}
