package apps

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"gpuport/internal/graph"
)

// This file holds the sequential reference implementations that every
// application's output is validated against, plus the comparison
// helpers. References are written independently of the IR layer so a
// bug in the runtime cannot hide behind an identical bug here.

func errTypeMismatch(app, want string, got any) error {
	return fmt.Errorf("%s: output type %T, want %s", app, got, want)
}

func asInt32Slice(g *graph.Graph, out any) ([]int32, error) {
	s, ok := out.([]int32)
	if !ok {
		return nil, errTypeMismatch("app", "[]int32", out)
	}
	if len(s) != g.NumNodes() {
		return nil, fmt.Errorf("output length %d, want %d", len(s), g.NumNodes())
	}
	return s, nil
}

// refBFS computes hop distances from src with a sequential queue BFS.
// On the empty graph it returns an empty slice (there is no source).
func refBFS(g *graph.Graph, src int32) []int32 {
	dist := initDist(g.NumNodes(), src)
	if g.NumNodes() == 0 {
		return dist
	}
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Infinity {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// distHeap is a binary heap of (dist, node) pairs for Dijkstra.
type distHeap []struct {
	d int32
	u int32
}

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(struct{ d, u int32 })) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refDijkstra computes weighted shortest path distances from src.
// On the empty graph it returns an empty slice (there is no source).
func refDijkstra(g *graph.Graph, src int32) []int32 {
	dist := initDist(g.NumNodes(), src)
	if g.NumNodes() == 0 {
		return dist
	}
	h := &distHeap{{0, src}}
	for h.Len() > 0 {
		top := heap.Pop(h).(struct{ d, u int32 })
		if top.d > dist[top.u] {
			continue
		}
		ws := g.EdgeWeights(top.u)
		for i, v := range g.Neighbors(top.u) {
			nd := top.d + ws[i]
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(h, struct{ d, u int32 }{nd, v})
			}
		}
	}
	return dist
}

func compareDist(app string, want, got []int32) error {
	if len(want) != len(got) {
		return fmt.Errorf("%s: length %d, want %d", app, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("%s: dist[%d] = %d, want %d", app, i, got[i], want[i])
		}
	}
	return nil
}

// refComponents labels connected components by sequential BFS.
func refComponents(g *graph.Graph) []int32 {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for s := int32(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = s
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if comp[v] < 0 {
					comp[v] = s
					queue = append(queue, v)
				}
			}
		}
	}
	return comp
}

// compareComponents checks that got induces exactly the same partition
// as the reference labelling (label values may differ).
func compareComponents(g *graph.Graph, got []int32) error {
	want := refComponents(g)
	n := g.NumNodes()
	fwd := map[int32]int32{} // want label -> got label
	rev := map[int32]int32{} // got label -> want label
	for i := 0; i < n; i++ {
		w, gl := want[i], got[i]
		if m, ok := fwd[w]; ok && m != gl {
			return fmt.Errorf("cc: node %d label %d, but component %d mapped to %d", i, gl, w, m)
		}
		if m, ok := rev[gl]; ok && m != w {
			return fmt.Errorf("cc: label %d spans reference components %d and %d", gl, m, w)
		}
		fwd[w] = gl
		rev[gl] = w
	}
	return nil
}

// verifyMIS checks independence and maximality directly (no reference
// set needed: any maximal independent set is acceptable).
func verifyMIS(g *graph.Graph, status []int32) error {
	n := g.NumNodes()
	if len(status) != n {
		return fmt.Errorf("mis: length %d, want %d", len(status), n)
	}
	for u := int32(0); int(u) < n; u++ {
		switch status[u] {
		case misIn:
			for _, v := range g.Neighbors(u) {
				if status[v] == misIn {
					return fmt.Errorf("mis: adjacent nodes %d and %d both in set", u, v)
				}
			}
		case misOut:
			covered := false
			for _, v := range g.Neighbors(u) {
				if status[v] == misIn {
					covered = true
					break
				}
			}
			if !covered {
				return fmt.Errorf("mis: node %d excluded but has no set neighbour", u)
			}
		default:
			return fmt.Errorf("mis: node %d still undecided (status %d)", u, status[u])
		}
	}
	return nil
}

// refMSFWeight computes the minimum spanning forest weight with
// Kruskal's algorithm over a union-find.
func refMSFWeight(g *graph.Graph) int64 {
	type edge struct {
		w    int32
		u, v int32
	}
	var edges []edge
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		ws := g.EdgeWeights(u)
		for i, v := range g.Neighbors(u) {
			if u < v { // undirected: take each edge once
				edges = append(edges, edge{ws[i], u, v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })

	parent := make([]int32, g.NumNodes())
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var total int64
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			total += int64(e.w)
		}
	}
	return total
}

func compareMSTWeight(g *graph.Graph, got int64) error {
	want := refMSFWeight(g)
	if got != want {
		return fmt.Errorf("mst: forest weight %d, want %d", got, want)
	}
	return nil
}

// refPageRank runs power iteration to near machine precision.
func refPageRank(g *graph.Graph) []float64 {
	n := g.NumNodes()
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1.0 / float64(n)
	}
	base := (1 - prDamping) / float64(n)
	for iter := 0; iter < 500; iter++ {
		var diff float64
		for u := int32(0); int(u) < n; u++ {
			sum := 0.0
			for _, v := range g.Neighbors(u) {
				if d := g.Degree(v); d > 0 {
					sum += pr[v] / float64(d)
				}
			}
			next[u] = base + prDamping*sum
			diff += math.Abs(next[u] - pr[u])
		}
		pr, next = next, pr
		if diff < 1e-12 {
			break
		}
	}
	return pr
}

// comparePageRank allows a small L1 deviation: the two variants use
// different stopping rules, both well inside this budget.
func comparePageRank(g *graph.Graph, got []float64) error {
	if len(got) != g.NumNodes() {
		return fmt.Errorf("pr: length %d, want %d", len(got), g.NumNodes())
	}
	want := refPageRank(g)
	var l1 float64
	for i := range want {
		l1 += math.Abs(want[i] - got[i])
	}
	if l1 > 1e-3 {
		return fmt.Errorf("pr: L1 deviation %g from reference (budget 1e-3)", l1)
	}
	return nil
}

// refTriangles counts triangles by oriented intersection with HasEdge
// lookups - independent of the kernels' shared oriented adjacency.
func refTriangles(g *graph.Graph) int64 {
	n := g.NumNodes()
	less := func(a, b int32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da < db
		}
		return a < b
	}
	var count int64
	for u := int32(0); int(u) < n; u++ {
		nbrs := g.Neighbors(u)
		for i, v := range nbrs {
			if !less(u, v) {
				continue
			}
			for _, w := range nbrs[i+1:] {
				if !less(u, w) {
					continue
				}
				// u is the apex; count the closing edge once.
				if g.HasEdge(v, w) {
					count++
				}
			}
		}
	}
	return count
}

func compareTriangles(g *graph.Graph, got int64) error {
	want := refTriangles(g)
	if got != want {
		return fmt.Errorf("tri: count %d, want %d", got, want)
	}
	return nil
}
