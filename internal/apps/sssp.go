package apps

import (
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
)

// runSSSPWL is data-driven Bellman-Ford: a worklist of nodes whose
// distance improved, each relaxing its out-edges with atomic min.
func runSSSPWL(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("sssp-wl", g)
	if g.NumNodes() == 0 {
		return rt.Trace(), []int32{}
	}
	src := SourceNode(g)
	dist := initDist(g.NumNodes(), src)
	wl := irgl.NewWorklist(g.NumNodes())
	wl.SeedHost(src)

	rt.Iterate("sssp", func(iter int) bool {
		k := rt.Launch("sssp_relax")
		k.ForAll(wl.Items(), func(it *irgl.Item, u int32) {
			du := dist[u]
			it.VisitEdges(u, func(v, w int32) {
				if it.AtomicMin(dist, v, du+w) {
					it.Push(wl, v)
				}
			})
		})
		k.End()
		return wl.Swap() > 0
	})
	return rt.Trace(), dist
}

// runSSSPTopo is topology-driven Bellman-Ford: every iteration relaxes
// every edge until a fixpoint. Heavy redundant work but no worklist.
func runSSSPTopo(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("sssp-topo", g)
	src := SourceNode(g)
	dist := initDist(g.NumNodes(), src)

	rt.Iterate("sssp", func(iter int) bool {
		changed := false
		k := rt.Launch("sssp_all")
		k.ForAllNodes(func(it *irgl.Item, u int32) {
			du := dist[u]
			if du == Infinity {
				return
			}
			it.VisitEdges(u, func(v, w int32) {
				if it.AtomicMin(dist, v, du+w) {
					changed = true
				}
			})
		})
		k.End()
		return changed
	})
	return rt.Trace(), dist
}

// runSSSPNF is near-far (delta-stepping-like) SSSP: relaxations whose
// tentative distance stays below the current threshold go to the near
// worklist and are processed this phase; the rest wait in the far list.
// The fastest strategy on road networks.
func runSSSPNF(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("sssp-nf", g)
	n := g.NumNodes()
	if n == 0 {
		return rt.Trace(), []int32{}
	}
	src := SourceNode(g)
	dist := initDist(n, src)

	// Delta: mean edge weight (the usual heuristic).
	var wsum int64
	for _, w := range g.Weight {
		wsum += int64(w)
	}
	delta := int32(1)
	if g.NumEdges() > 0 {
		delta = int32(wsum/int64(g.NumEdges())) + 1
	}

	near := irgl.NewWorklist(n)
	far := irgl.NewWorklist(n)
	near.SeedHost(src)
	threshold := delta

	rt.Iterate("sssp_phases", func(phase int) bool {
		// Drain the near worklist for the current threshold.
		rt.Iterate("sssp_near", func(iter int) bool {
			k := rt.Launch("sssp_nf_relax")
			k.ForAll(near.Items(), func(it *irgl.Item, u int32) {
				du := dist[u]
				if du >= threshold {
					// Stale entry belonging to a later bucket.
					it.Push(far, u)
					return
				}
				it.VisitEdges(u, func(v, w int32) {
					if it.AtomicMin(dist, v, du+w) {
						if du+w < threshold {
							it.Push(near, v)
						} else {
							it.Push(far, v)
						}
					}
				})
			})
			k.End()
			return near.Swap() > 0
		})
		// Promote the far list (its entries sit in the next buffer until
		// swapped in); duplicates are filtered by the stale check above.
		far.Swap()
		kf := rt.Launch("sssp_nf_promote")
		kf.ForAll(far.Items(), func(it *irgl.Item, u int32) {
			it.Work(1)
			it.Push(near, u)
		})
		kf.End()
		threshold += delta
		return near.Swap() > 0
	})
	return rt.Trace(), dist
}

// checkSSSP validates distances against sequential Dijkstra.
func checkSSSP(g *graph.Graph, out any) error {
	dist, err := asInt32Slice(g, out)
	if err != nil {
		return err
	}
	return compareDist("sssp", refDijkstra(g, SourceNode(g)), dist)
}
