package apps

import (
	"sort"

	"gpuport/internal/graph"
	"gpuport/internal/irgl"
)

// orientByDegree builds the degree-oriented adjacency: edge (u, v) is
// kept as u -> v iff (deg(u), u) < (deg(v), v). Every triangle then has
// exactly one "apex" orientation, and the heaviest hubs keep the
// shortest lists - the standard O(m^1.5) preparation all three triangle
// kernels share (done once on the host, as GPU frameworks do).
func orientByDegree(g *graph.Graph) [][]int32 {
	n := g.NumNodes()
	out := make([][]int32, n)
	less := func(a, b int32) bool {
		da, db := g.Degree(a), g.Degree(b)
		if da != db {
			return da < db
		}
		return a < b
	}
	for u := int32(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			if less(u, v) {
				out[u] = append(out[u], v)
			}
		}
		sort.Slice(out[u], func(i, j int) bool { return out[u][i] < out[u][j] })
	}
	return out
}

// runTRIBS counts triangles with per-edge binary search: for each
// oriented edge (u, v), each w in N+(u) is searched in N+(v).
func runTRIBS(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("tri-bs", g)
	adj := orientByDegree(g)
	var count int64

	k := rt.Launch("tri_bs")
	k.ForAllNodes(func(it *irgl.Item, u int32) {
		au := adj[u]
		for _, v := range au {
			av := adj[v]
			for _, w := range au {
				if w == v {
					continue
				}
				// Binary search w in av.
				steps := int64(1)
				lo, hi := 0, len(av)
				for lo < hi {
					steps++
					mid := (lo + hi) / 2
					if av[mid] < w {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				it.Work(steps)
				it.RandomAccess(steps)
				if lo < len(av) && av[lo] == w {
					count++
				}
			}
		}
	})
	k.End()
	// Each triangle {a,b,c} with orientation a->b, a->c, b->c is found
	// twice from apex a (searching c in N+(b) and b in N+(c)? no - only
	// w in N+(a) searched within N+(v) for each v in N+(a); the pair
	// (v=b, w=c) hits iff c in N+(b); the pair (v=c, w=b) misses since
	// b < c in orientation implies b not in N+(c)). Count is exact.
	return rt.Trace(), count
}

// runTRIMerge counts triangles by merging sorted oriented lists.
func runTRIMerge(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("tri-merge", g)
	adj := orientByDegree(g)
	var count int64

	k := rt.Launch("tri_merge")
	k.ForAllNodes(func(it *irgl.Item, u int32) {
		au := adj[u]
		for _, v := range au {
			av := adj[v]
			i, j := 0, 0
			steps := int64(0)
			for i < len(au) && j < len(av) {
				steps++
				switch {
				case au[i] < av[j]:
					i++
				case au[i] > av[j]:
					j++
				default:
					count++
					i++
					j++
				}
			}
			it.Work(steps + 1)
			it.RandomAccess(steps + 1)
		}
	})
	k.End()
	return rt.Trace(), count
}

// runTRIHash counts triangles with a per-node marker array: mark N+(u),
// then probe every w in N+(v) for each v in N+(u). Probes are O(1) but
// fully irregular.
func runTRIHash(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("tri-hash", g)
	n := g.NumNodes()
	adj := orientByDegree(g)
	mark := make([]bool, n)
	var count int64

	k := rt.Launch("tri_hash")
	k.ForAllNodes(func(it *irgl.Item, u int32) {
		au := adj[u]
		if len(au) == 0 {
			return
		}
		for _, w := range au {
			mark[w] = true
		}
		it.Work(int64(len(au)))
		it.RandomAccess(int64(len(au)))
		for _, v := range au {
			av := adj[v]
			it.Work(int64(len(av)))
			it.RandomAccess(int64(len(av)))
			for _, w := range av {
				if mark[w] {
					count++
				}
			}
		}
		for _, w := range au {
			mark[w] = false
		}
		it.Work(int64(len(au)))
	})
	k.End()
	return rt.Trace(), count
}

// checkTRI validates the triangle count against the reference.
func checkTRI(g *graph.Graph, out any) error {
	c, ok := out.(int64)
	if !ok {
		return errTypeMismatch("tri", "int64", out)
	}
	return compareTriangles(g, c)
}
