package apps

import (
	"math"

	"gpuport/internal/graph"
	"gpuport/internal/irgl"
)

// PageRank parameters shared by both variants and the reference.
const (
	prDamping  = 0.85
	prTolL1    = 1e-7 // pull variant: stop when L1 delta falls below this
	prMaxIters = 120
)

// runPRTopo is pull-style topology-driven PageRank: every iteration
// each node gathers contributions from its (in-)neighbours. Study
// inputs are symmetric, so the in-neighbour list is the adjacency list.
func runPRTopo(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("pr-topo", g)
	n := g.NumNodes()
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1.0 / float64(n)
	}
	base := (1 - prDamping) / float64(n)

	rt.Iterate("pr", func(iter int) bool {
		var diff float64
		k := rt.Launch("pr_pull")
		k.ForAllNodes(func(it *irgl.Item, u int32) {
			sum := 0.0
			it.VisitEdges(u, func(v, w int32) {
				if d := g.Degree(v); d > 0 {
					sum += pr[v] / float64(d)
				}
			})
			nv := base + prDamping*sum
			next[u] = nv
			diff += math.Abs(nv - pr[u])
		})
		k.End()
		pr, next = next, pr
		return diff > prTolL1 && iter < prMaxIters-1
	})
	return rt.Trace(), pr
}

// runPRResidual is push-style residual PageRank: nodes with residual
// above threshold commit it to their rank and push damped shares to
// their neighbours' residuals, activating them when they cross the
// threshold. Data-driven - the fastest strategy when ranks converge
// unevenly (road networks).
func runPRResidual(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("pr-residual", g)
	n := g.NumNodes()
	pr := make([]float64, n)
	res := make([]float64, n)
	inWL := make([]int32, n)
	base := (1 - prDamping) / float64(n)
	// Per-node activation threshold; total error is bounded by
	// n * eps / (1 - damping), well inside the checker's tolerance.
	eps := 1e-11

	wl := irgl.NewWorklist(n)
	for i := 0; i < n; i++ {
		res[i] = base
		inWL[i] = 1
		wl.SeedHost(int32(i))
	}

	rt.Iterate("pr", func(iter int) bool {
		k := rt.Launch("pr_push")
		k.ForAll(wl.Items(), func(it *irgl.Item, u int32) {
			inWL[u] = 0
			r := res[u]
			res[u] = 0
			if r <= eps {
				return
			}
			pr[u] += r
			d := g.Degree(u)
			if d == 0 {
				return
			}
			share := prDamping * r / float64(d)
			it.VisitEdges(u, func(v, w int32) {
				old := it.AtomicAddF(res, v, share)
				if old+share > eps && it.AtomicCAS(inWL, v, 0, 1) {
					it.Push(wl, v)
				}
			})
		})
		k.End()
		return wl.Swap() > 0
	})
	return rt.Trace(), pr
}

// checkPR validates ranks against the sequential power iteration.
func checkPR(g *graph.Graph, out any) error {
	pr, ok := out.([]float64)
	if !ok {
		return errTypeMismatch("pr", "[]float64", out)
	}
	return comparePageRank(g, pr)
}
