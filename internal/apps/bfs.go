package apps

import (
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
)

// runBFSWL is data-driven BFS: a worklist of frontier nodes, each
// relaxing its neighbours with an atomic distance update and pushing
// improved nodes. One kernel launch per BFS level.
func runBFSWL(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("bfs-wl", g)
	if g.NumNodes() == 0 {
		return rt.Trace(), []int32{}
	}
	src := SourceNode(g)
	dist := initDist(g.NumNodes(), src)
	wl := irgl.NewWorklist(g.NumNodes())
	wl.SeedHost(src)

	rt.Iterate("bfs", func(iter int) bool {
		k := rt.Launch("bfs_relax")
		k.ForAll(wl.Items(), func(it *irgl.Item, u int32) {
			du := dist[u]
			it.VisitEdges(u, func(v, w int32) {
				if it.AtomicMin(dist, v, du+1) {
					it.Push(wl, v)
				}
			})
		})
		k.End()
		return wl.Swap() > 0
	})
	return rt.Trace(), dist
}

// runBFSTopo is topology-driven level-synchronous BFS: every iteration
// scans all nodes and processes those on the current level. Simple, no
// worklist atomics, but launches |V| items per level - wasteful on
// high-diameter road networks.
func runBFSTopo(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("bfs-topo", g)
	src := SourceNode(g)
	dist := initDist(g.NumNodes(), src)

	rt.Iterate("bfs", func(iter int) bool {
		level := int32(iter)
		changed := false
		k := rt.Launch("bfs_level")
		k.ForAllNodes(func(it *irgl.Item, u int32) {
			if dist[u] != level {
				return
			}
			it.VisitEdges(u, func(v, w int32) {
				// Benign race in the GPU original: plain write of
				// level+1; all writers write the same value.
				if dist[v] > level+1 {
					dist[v] = level + 1
					it.RandomAccess(1)
					changed = true
				}
			})
		})
		k.End()
		return changed
	})
	return rt.Trace(), dist
}

// runBFSHybrid is direction-optimising BFS: push (worklist) while the
// frontier is small, switching to pull (scan unvisited nodes for a
// visited parent) when the frontier covers a large fraction of edges.
// This is the fastest BFS on social networks.
func runBFSHybrid(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("bfs-hybrid", g)
	n := g.NumNodes()
	if n == 0 {
		return rt.Trace(), []int32{}
	}
	src := SourceNode(g)
	dist := initDist(n, src)
	wl := irgl.NewWorklist(n)
	wl.SeedHost(src)

	// Switch to pull when frontier edges exceed this fraction of all
	// edges (Beamer's alpha heuristic, simplified).
	const pullThreshold = 0.05
	totalEdges := g.NumEdges()

	rt.Iterate("bfs", func(iter int) bool {
		level := int32(iter)
		frontierEdges := 0
		for _, u := range wl.Items() {
			frontierEdges += g.Degree(u)
		}
		if float64(frontierEdges) < pullThreshold*float64(totalEdges) {
			// Push phase.
			k := rt.Launch("bfs_push")
			k.ForAll(wl.Items(), func(it *irgl.Item, u int32) {
				du := dist[u]
				it.VisitEdges(u, func(v, w int32) {
					if it.AtomicMin(dist, v, du+1) {
						it.Push(wl, v)
					}
				})
			})
			k.End()
			return wl.Swap() > 0
		}
		// Pull phase: each unvisited node scans its neighbours for one
		// on the current level. The early exit on the first hit is the
		// source of the pull direction's advantage.
		changed := false
		k := rt.Launch("bfs_pull")
		k.ForAllNodes(func(it *irgl.Item, u int32) {
			if dist[u] != Infinity {
				return
			}
			nbrs := g.Neighbors(u)
			scanned := int64(0)
			for _, v := range nbrs {
				scanned++
				if dist[v] == level {
					dist[u] = level + 1
					it.Push(wl, u)
					changed = true
					break
				}
			}
			it.Work(scanned)
			it.RandomAccess(scanned)
		})
		k.End()
		wl.Swap()
		return changed
	})
	return rt.Trace(), dist
}

// runBFSTP is two-phase BFS: an expand kernel pushes every neighbour of
// the frontier (no filtering, one atomic push per edge), then a filter
// kernel claims unvisited nodes with a CAS. Maximum pressure on the
// worklist atomics, which is exactly what coop-cv targets.
func runBFSTP(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("bfs-tp", g)
	n := g.NumNodes()
	if n == 0 {
		return rt.Trace(), []int32{}
	}
	src := SourceNode(g)
	dist := initDist(n, src)
	expand := irgl.NewWorklist(n)
	frontier := irgl.NewWorklist(n)
	frontier.SeedHost(src)

	rt.Iterate("bfs", func(iter int) bool {
		level := int32(iter)
		ke := rt.Launch("bfs_expand")
		ke.ForAll(frontier.Items(), func(it *irgl.Item, u int32) {
			it.VisitEdges(u, func(v, w int32) {
				it.Push(expand, v)
			})
		})
		ke.End()
		expand.Swap()

		kf := rt.Launch("bfs_filter")
		kf.ForAll(expand.Items(), func(it *irgl.Item, v int32) {
			it.Work(1)
			if it.AtomicCAS(dist, v, Infinity, level+1) {
				it.Push(frontier, v)
			}
		})
		kf.End()
		return frontier.Swap() > 0
	})
	return rt.Trace(), dist
}

// checkBFS validates distances against the sequential reference.
func checkBFS(g *graph.Graph, out any) error {
	dist, err := asInt32Slice(g, out)
	if err != nil {
		return err
	}
	return compareDist("bfs", refBFS(g, SourceNode(g)), dist)
}
