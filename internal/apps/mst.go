package apps

import (
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
)

// mstInf is the "no outgoing edge" marker for the per-component best
// edge reduction.
const mstInf = int64(1) << 62

// encEdge packs (weight, u, v) into an int64 ordered primarily by
// weight. Node IDs fit in 20 bits for all study inputs; Builder weights
// fit comfortably in the high field.
func encEdge(w, u, v int32) int64 {
	return int64(w)<<40 | int64(u)<<20 | int64(v)
}

func decEdge(e int64) (w, u, v int32) {
	return int32(e >> 40), int32((e >> 20) & 0xfffff), int32(e & 0xfffff)
}

// runMSTBoruvka computes the minimum spanning forest weight with
// Boruvka's algorithm: each round every component finds its minimum
// outgoing edge via an atomic packed-min reduction, the chosen edges are
// contracted, and labels are compressed by pointer jumping. The output
// is the total MSF weight (unique even when the forest is not).
func runMSTBoruvka(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("mst-boruvka", g)
	n := g.NumNodes()
	if n >= 1<<20 {
		panic("mst-boruvka: node count exceeds edge encoding capacity")
	}
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = int32(i)
	}
	best := make([]int64, n)
	var msfWeight int64

	rt.Iterate("boruvka", func(round int) bool {
		// Reset per-component best edges.
		reset := rt.Launch("mst_reset")
		reset.ForAllNodes(func(it *irgl.Item, u int32) {
			it.Work(1)
			best[u] = mstInf
		})
		reset.End()

		// Find minimum outgoing edge per component.
		findMin := rt.Launch("mst_findmin")
		findMin.ForAllNodes(func(it *irgl.Item, u int32) {
			cu := comp[u]
			it.VisitEdges(u, func(v, w int32) {
				cv := comp[v]
				if cu != cv {
					it.AtomicMin64(best, cu, encEdge(w, u, v))
				}
			})
		})
		findMin.End()

		// Merge components along chosen edges. Executed as a kernel;
		// root walks are counted as irregular accesses. The sequential
		// runtime makes the unions race-free; the GPU original uses a
		// CAS loop with the same net effect.
		merged := false
		find := func(it *irgl.Item, x int32) int32 {
			for comp[x] != x {
				it.Work(1)
				it.RandomAccess(1)
				x = comp[x]
			}
			return x
		}
		merge := rt.Launch("mst_merge")
		merge.ForAllNodes(func(it *irgl.Item, c int32) {
			if comp[c] != c || best[c] == mstInf {
				return
			}
			w, u, v := decEdge(best[c])
			ru, rv := find(it, u), find(it, v)
			if ru == rv {
				return // the other side already merged us this round
			}
			if ru > rv {
				ru, rv = rv, ru
			}
			comp[rv] = ru
			msfWeight += int64(w)
			merged = true
		})
		merge.End()

		// Compress labels by pointer jumping.
		rt.Iterate("mst_compress", func(j int) bool {
			jumped := false
			sc := rt.Launch("mst_shortcut")
			sc.ForAllNodes(func(it *irgl.Item, u int32) {
				c := comp[u]
				cc := comp[c]
				it.Work(1)
				it.RandomAccess(2)
				if cc != c {
					comp[u] = cc
					jumped = true
				}
			})
			sc.End()
			return jumped
		})
		return merged
	})
	return rt.Trace(), msfWeight
}

// checkMST validates the forest weight against Kruskal's algorithm.
func checkMST(g *graph.Graph, out any) error {
	w, ok := out.(int64)
	if !ok {
		return errTypeMismatch("mst", "int64", out)
	}
	return compareMSTWeight(g, w)
}
