package apps

import (
	"testing"

	"gpuport/internal/graph"
)

// testGraphs returns small but structurally diverse graphs used across
// the application tests.
func testGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.GenerateRoad("t-road", 18, 11),
		graph.GenerateRMAT("t-rmat", 9, 8, 22),
		graph.GenerateUniform("t-rand", 400, 6, 33),
		pathGraph(25),
		completeGraph(12),
		disconnectedGraph(),
	}
}

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder("t-path", graph.ClassRoad, n)
	for i := 0; i < n-1; i++ {
		b.AddUndirected(int32(i), int32(i+1), int32(1+i%5))
	}
	return b.Build()
}

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder("t-complete", graph.ClassSocial, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddUndirected(int32(i), int32(j), int32(1+(i+j)%7))
		}
	}
	return b.Build()
}

func disconnectedGraph() *graph.Graph {
	b := graph.NewBuilder("t-disc", graph.ClassRandom, 10)
	// Two components: 0-4 cycle, 5-9 star; node 9 isolated? No: star
	// center 5 with leaves 6..9.
	for i := 0; i < 4; i++ {
		b.AddUndirected(int32(i), int32(i+1), 2)
	}
	b.AddUndirected(4, 0, 2)
	for i := 6; i <= 9; i++ {
		b.AddUndirected(5, int32(i), 3)
	}
	return b.Build()
}

// TestAllAppsCorrectOnAllGraphs is the central correctness gate: every
// application must produce a reference-validated answer on every test
// graph.
func TestAllAppsCorrectOnAllGraphs(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for _, g := range testGraphs() {
				trace, out := app.Run(g)
				if err := app.Check(g, out); err != nil {
					t.Errorf("%s on %s: %v", app.Name, g.Name, err)
				}
				if trace == nil || len(trace.Launches) == 0 {
					t.Errorf("%s on %s: empty trace", app.Name, g.Name)
				}
				if trace.App != app.Name {
					t.Errorf("trace app = %q, want %q", trace.App, app.Name)
				}
				if trace.Input != g.Name {
					t.Errorf("trace input = %q, want %q", trace.Input, g.Name)
				}
			}
		})
	}
}

func TestRegistryShape(t *testing.T) {
	apps := All()
	if len(apps) != 17 {
		t.Fatalf("application count = %d, want 17 (Table VII)", len(apps))
	}
	problems := Problems()
	if len(problems) != 7 {
		t.Fatalf("problem count = %d, want 7", len(problems))
	}
	seen := map[string]bool{}
	fastestPerProblem := map[string]int{}
	for _, a := range apps {
		if seen[a.Name] {
			t.Errorf("duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil || a.Check == nil {
			t.Errorf("%s: missing Run/Check", a.Name)
		}
		if a.Version == "" {
			t.Errorf("%s: missing Version (the trace cache cannot key an unversioned app)", a.Name)
		}
		if a.Fastest {
			fastestPerProblem[a.Problem]++
		}
	}
	for _, p := range problems {
		if fastestPerProblem[p] != 1 {
			t.Errorf("problem %s has %d fastest variants, want exactly 1", p, fastestPerProblem[p])
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("bfs-wl")
	if err != nil || a.Name != "bfs-wl" {
		t.Fatalf("ByName(bfs-wl) = %v, %v", a.Name, err)
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("expected error for unknown app")
	}
}

func TestSourceNodeIsMaxDegree(t *testing.T) {
	g := disconnectedGraph()
	if s := SourceNode(g); s != 5 {
		t.Errorf("source = %d, want 5 (the star centre)", s)
	}
}

func TestBFSVariantsAgree(t *testing.T) {
	g := graph.GenerateRMAT("agree", 8, 8, 9)
	ref := refBFS(g, SourceNode(g))
	for _, name := range []string{"bfs-wl", "bfs-topo", "bfs-hybrid", "bfs-tp"} {
		app, _ := ByName(name)
		_, out := app.Run(g)
		if err := compareDist(name, ref, out.([]int32)); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestSSSPVariantsAgree(t *testing.T) {
	g := graph.GenerateRoad("agree-road", 15, 3)
	ref := refDijkstra(g, SourceNode(g))
	for _, name := range []string{"sssp-wl", "sssp-topo", "sssp-nf"} {
		app, _ := ByName(name)
		_, out := app.Run(g)
		if err := compareDist(name, ref, out.([]int32)); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestTriangleVariantsAgree(t *testing.T) {
	g := completeGraph(10)
	want := int64(10 * 9 * 8 / 6) // C(10,3)
	for _, name := range []string{"tri-bs", "tri-merge", "tri-hash"} {
		app, _ := ByName(name)
		_, out := app.Run(g)
		if got := out.(int64); got != want {
			t.Errorf("%s on K10 = %d, want %d", name, got, want)
		}
	}
}

func TestMSTOnPath(t *testing.T) {
	g := pathGraph(10)
	app, _ := ByName("mst-boruvka")
	_, out := app.Run(g)
	var want int64
	for i := 0; i < 9; i++ {
		want += int64(1 + i%5)
	}
	if got := out.(int64); got != want {
		t.Errorf("mst on path = %d, want %d", got, want)
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := disconnectedGraph()
	app, _ := ByName("mst-boruvka")
	_, out := app.Run(g)
	// Cycle of 5 weight-2 edges needs 4; star needs all 4 weight-3 edges.
	want := int64(4*2 + 4*3)
	if got := out.(int64); got != want {
		t.Errorf("msf weight = %d, want %d", got, want)
	}
}

func TestTraceShapesDiffer(t *testing.T) {
	// The premise of the study: different strategies produce different
	// execution signatures on the same input.
	g := graph.GenerateRoad("shape", 30, 5)
	wlApp, _ := ByName("bfs-wl")
	topoApp, _ := ByName("bfs-topo")
	wlTrace, _ := wlApp.Run(g)
	topoTrace, _ := topoApp.Run(g)
	// Topology-driven BFS launches |V| items per level; worklist only
	// the frontier. Total items must differ hugely on a road network.
	var wlItems, topoItems int64
	for _, l := range wlTrace.Launches {
		wlItems += l.Items
	}
	for _, l := range topoTrace.Launches {
		topoItems += l.Items
	}
	if topoItems < 5*wlItems {
		t.Errorf("topo items %d vs wl items %d: expected topo to launch far more", topoItems, wlItems)
	}
}

func TestWorklistAppsPushAtomics(t *testing.T) {
	g := graph.GenerateRMAT("atomics", 8, 8, 13)
	app, _ := ByName("bfs-tp")
	trace, _ := app.Run(g)
	var pushes int64
	for _, l := range trace.Launches {
		pushes += l.AtomicPushes
	}
	if pushes == 0 {
		t.Error("two-phase BFS should record worklist pushes")
	}
}

func TestDeterministicTraces(t *testing.T) {
	g := graph.GenerateRMAT("det", 8, 8, 17)
	for _, name := range []string{"bfs-wl", "mis-wl", "pr-residual"} {
		app, _ := ByName(name)
		t1, _ := app.Run(g)
		t2, _ := app.Run(g)
		if len(t1.Launches) != len(t2.Launches) {
			t.Errorf("%s: launch count varies across runs", name)
			continue
		}
		for i := range t1.Launches {
			a, b := t1.Launches[i], t2.Launches[i]
			if a != b {
				t.Errorf("%s: launch %d differs across runs", name, i)
				break
			}
		}
	}
}
