package apps

import (
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
)

// runCCSV is Shiloach-Vishkin style connected components: alternating
// hook (lower label captures higher label along edges) and pointer-
// jumping shortcut kernels until a fixpoint.
func runCCSV(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("cc-sv", g)
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = int32(i)
	}

	rt.Iterate("cc", func(iter int) bool {
		changed := false
		hook := rt.Launch("cc_hook")
		hook.ForAllNodes(func(it *irgl.Item, u int32) {
			cu := comp[u]
			it.VisitEdges(u, func(v, w int32) {
				cv := comp[v]
				if cu < cv {
					if it.AtomicMin(comp, cv, cu) {
						changed = true
					}
				}
			})
		})
		hook.End()

		// Shortcut: pointer jumping until every label is a root.
		rt.Iterate("cc_compress", func(j int) bool {
			jumped := false
			sc := rt.Launch("cc_shortcut")
			sc.ForAllNodes(func(it *irgl.Item, u int32) {
				c := comp[u]
				cc := comp[c]
				it.Work(1)
				it.RandomAccess(2)
				if cc != c {
					comp[u] = cc
					jumped = true
				}
			})
			sc.End()
			return jumped
		})
		return changed
	})
	return rt.Trace(), comp
}

// runCCWL is worklist label propagation: nodes whose label dropped push
// their neighbours for re-examination.
func runCCWL(g *graph.Graph) (*irgl.Trace, any) {
	rt := irgl.NewRuntime("cc-wl", g)
	n := g.NumNodes()
	comp := make([]int32, n)
	wl := irgl.NewWorklist(n)
	for i := range comp {
		comp[i] = int32(i)
		wl.SeedHost(int32(i))
	}

	rt.Iterate("cc", func(iter int) bool {
		k := rt.Launch("cc_prop")
		k.ForAll(wl.Items(), func(it *irgl.Item, u int32) {
			cu := comp[u]
			it.VisitEdges(u, func(v, w int32) {
				if it.AtomicMin(comp, v, cu) {
					it.Push(wl, v)
				}
			})
		})
		k.End()
		return wl.Swap() > 0
	})
	return rt.Trace(), comp
}

// checkCC validates a component labelling: labels must be identical
// within a reference component and distinct across components.
func checkCC(g *graph.Graph, out any) error {
	comp, err := asInt32Slice(g, out)
	if err != nil {
		return err
	}
	return compareComponents(g, comp)
}
