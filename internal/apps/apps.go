// Package apps implements the study's 17 graph applications over the
// IrGL-like operator IR (Table VII of the paper): seven high-level
// problems - BFS, CC, MIS, MST, PR, SSSP and TRI - each with one or more
// implementation strategies (topology-driven, data-driven worklist,
// direction-optimising, two-phase, residual, ...).
//
// Every application is functionally real: it computes the correct answer
// on its input, validated against a sequential reference implementation
// in reference.go. Running an application produces an irgl.Trace that
// the performance model consumes.
package apps

import (
	"fmt"
	"sort"

	"gpuport/internal/graph"
	"gpuport/internal/irgl"
)

// App describes one application of the study.
type App struct {
	// Name is the study-wide identifier, e.g. "bfs-wl".
	Name string
	// Problem is the high-level problem, e.g. "BFS".
	Problem string
	// Variant distinguishes implementation strategies, e.g. "wl".
	Variant string
	// Fastest marks the variant implementing the fastest known
	// algorithm for the problem (the (*) rows of Table VII).
	Fastest bool
	// Version is the implementation's trace-compatibility token. A
	// trace depends only on (application, input); the trace cache keys
	// on (Name, Version, input fingerprint), so any change to an
	// application that can alter its trace or output MUST bump its
	// version here, or stale cached traces would be served.
	Version string
	// Run executes the application on g and returns the instrumented
	// trace plus the application-specific output (distances, labels,
	// counts, ...).
	Run func(g *graph.Graph) (*irgl.Trace, any)
	// Check validates an output produced by Run against a sequential
	// reference computation on the same graph.
	Check func(g *graph.Graph, out any) error
}

// All returns the 17 applications in their canonical order. The slice
// is freshly allocated; callers may reorder it.
func All() []App {
	return []App{
		{Name: "bfs-wl", Problem: "BFS", Variant: "worklist", Fastest: false, Version: "1", Run: runBFSWL, Check: checkBFS},
		{Name: "bfs-topo", Problem: "BFS", Variant: "topology", Fastest: false, Version: "1", Run: runBFSTopo, Check: checkBFS},
		{Name: "bfs-hybrid", Problem: "BFS", Variant: "direction-opt", Fastest: true, Version: "1", Run: runBFSHybrid, Check: checkBFS},
		{Name: "bfs-tp", Problem: "BFS", Variant: "two-phase", Fastest: false, Version: "1", Run: runBFSTP, Check: checkBFS},
		{Name: "cc-sv", Problem: "CC", Variant: "shiloach-vishkin", Fastest: true, Version: "1", Run: runCCSV, Check: checkCC},
		{Name: "cc-wl", Problem: "CC", Variant: "label-prop", Fastest: false, Version: "1", Run: runCCWL, Check: checkCC},
		{Name: "mis-wl", Problem: "MIS", Variant: "worklist", Fastest: true, Version: "1", Run: runMISWL, Check: checkMIS},
		{Name: "mis-topo", Problem: "MIS", Variant: "topology", Fastest: false, Version: "1", Run: runMISTopo, Check: checkMIS},
		{Name: "mst-boruvka", Problem: "MST", Variant: "", Fastest: true, Version: "1", Run: runMSTBoruvka, Check: checkMST},
		{Name: "pr-topo", Problem: "PR", Variant: "pull", Fastest: false, Version: "1", Run: runPRTopo, Check: checkPR},
		{Name: "pr-residual", Problem: "PR", Variant: "push-residual", Fastest: true, Version: "1", Run: runPRResidual, Check: checkPR},
		{Name: "sssp-wl", Problem: "SSSP", Variant: "worklist", Fastest: false, Version: "1", Run: runSSSPWL, Check: checkSSSP},
		{Name: "sssp-topo", Problem: "SSSP", Variant: "topology", Fastest: false, Version: "1", Run: runSSSPTopo, Check: checkSSSP},
		{Name: "sssp-nf", Problem: "SSSP", Variant: "near-far", Fastest: true, Version: "1", Run: runSSSPNF, Check: checkSSSP},
		{Name: "tri-bs", Problem: "TRI", Variant: "binary-search", Fastest: false, Version: "1", Run: runTRIBS, Check: checkTRI},
		{Name: "tri-merge", Problem: "TRI", Variant: "merge", Fastest: true, Version: "1", Run: runTRIMerge, Check: checkTRI},
		{Name: "tri-hash", Problem: "TRI", Variant: "hash", Fastest: false, Version: "1", Run: runTRIHash, Check: checkTRI},
	}
}

// ByName returns the application with the given name.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown application %q", name)
}

// Problems returns the distinct problem names in canonical order.
func Problems() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range All() {
		if !seen[a.Problem] {
			seen[a.Problem] = true
			out = append(out, a.Problem)
		}
	}
	return out
}

// Infinity is the "unreached" distance marker for BFS and SSSP.
const Infinity int32 = 1<<30 - 1

// SourceNode returns the traversal source for g: the highest-degree
// node. On social networks this is the hub (the conventional choice for
// GPU BFS studies); on road grids it is an ordinary intersection.
// Callers must handle the empty graph themselves (there is no valid
// source to return); the traversal applications short-circuit before
// asking for one.
func SourceNode(g *graph.Graph) int32 {
	best, bestDeg := int32(0), -1
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		if d := g.Degree(u); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// initDist allocates a distance array set to Infinity except src = 0.
func initDist(n int, src int32) []int32 {
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	if n > 0 {
		dist[src] = 0
	}
	return dist
}

// sortedCopy returns a sorted copy of xs (helper for worklist dedup in
// a few applications).
func sortedCopy(xs []int32) []int32 {
	s := append([]int32(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}
