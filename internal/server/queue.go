package server

// queue orders runnable jobs by (priority descending, submission
// sequence ascending). It is a plain sorted slice rather than a heap:
// campaign counts are small (each job is a whole sweep), pop order
// must be totally deterministic for the scheduling proof, and a slice
// keeps remove-by-id trivial for cancelling queued jobs. Not
// concurrency-safe; the server's mutex guards it.
type queue struct {
	items []*Job
}

// before reports whether a should run before b.
func before(a, b *Job) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

// push inserts the job at its scheduling position.
func (q *queue) push(j *Job) {
	lo, hi := 0, len(q.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if before(q.items[mid], j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.items = append(q.items, nil)
	copy(q.items[lo+1:], q.items[lo:])
	q.items[lo] = j
}

// pop removes and returns the next job to run, or nil when the queue
// is empty.
func (q *queue) pop() *Job {
	if len(q.items) == 0 {
		return nil
	}
	j := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return j
}

// remove extracts the job with the given id, or returns nil when it is
// not queued (running and terminal jobs are not in the queue).
func (q *queue) remove(id string) *Job {
	for i, j := range q.items {
		if j.id == id {
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			return j
		}
	}
	return nil
}

// len reports the number of queued jobs.
func (q *queue) len() int { return len(q.items) }
