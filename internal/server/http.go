package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"gpuport/internal/obs"
)

// maxBodyBytes bounds a request body; campaign specs are small.
const maxBodyBytes = 1 << 20

// Response headers carrying execution provenance. Provenance varies
// between executions of the same campaign (fresh vs cache, resumed
// cell counts), so it never appears in a body - bodies stay
// byte-canonical per (spec, lifecycle state).
const (
	// HeaderSource reports where the answer came from: "fresh" or
	// "cache".
	HeaderSource = "X-Gpuportd-Source"
	// HeaderResumed reports how many cells were restored from the job's
	// checkpoint instead of re-measured.
	HeaderResumed = "X-Gpuportd-Resumed"
)

// Endpoint labels: the obs.AttrEndpoint attribute on request spans and
// the suffix of per-endpoint latency series (obs.TSLatencyPrefix).
const (
	endpointSubmit    = "submit"
	endpointList      = "list"
	endpointStatus    = "status"
	endpointResult    = "result"
	endpointEvents    = "events"
	endpointCancel    = "cancel"
	endpointMetrics   = "metrics"
	endpointObsTrace  = "obs-trace"
	endpointObsStream = "obs-stream"
	endpointHealthz   = "healthz"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/campaigns              submit a campaign spec
//	GET    /v1/campaigns              list known campaigns
//	GET    /v1/campaigns/{id}         canonical status
//	GET    /v1/campaigns/{id}/result  dataset CSV (?wait=1 blocks)
//	GET    /v1/campaigns/{id}/events  NDJSON progress stream
//	DELETE /v1/campaigns/{id}         cancel
//	GET    /metrics                   Prometheus metrics (+ realtime series)
//	GET    /debug/obs-trace           Chrome trace of the daemon
//	GET    /debug/obs-stream          live NDJSON telemetry stream (?max=N)
//	GET    /healthz                   liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.timed(endpointSubmit, s.handleSubmit))
	mux.HandleFunc("GET /v1/campaigns", s.timed(endpointList, s.handleList))
	mux.HandleFunc("GET /v1/campaigns/{id}", s.timed(endpointStatus, s.handleStatus))
	mux.HandleFunc("GET /v1/campaigns/{id}/result", s.timed(endpointResult, s.handleResult))
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.timed(endpointEvents, s.handleEvents))
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.timed(endpointCancel, s.handleCancel))
	mux.HandleFunc("GET /metrics", s.timed(endpointMetrics, s.handleMetrics))
	mux.HandleFunc("GET /debug/obs-trace", s.timed(endpointObsTrace, s.handleObsTrace))
	mux.HandleFunc("GET /debug/obs-stream", s.handleObsStream)
	mux.HandleFunc("GET /healthz", s.timed(endpointHealthz, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprintln(w, "ok") // best-effort: client may have gone away
	}))
	return mux
}

// timed observes the handler's latency into the endpoint's time-series
// histogram. The clock is the recorder's (time.Now is confined to the
// instrumentation layers), and the series lives under the realtime
// prefix, so latency never touches canonical artifacts. The streaming
// endpoints' "latency" is connection lifetime; /debug/obs-stream is
// not timed at all, since watching the stream should not feed it.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.rec.NowNS()
		h(w, r)
		s.tsdb.Observe(obs.TSLatencyPrefix+endpoint, s.rec.NowNS()-start)
	}
}

// writeJSON sends a canonical JSON body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(marshalCanonical(v)) // best-effort: client may have gone away
}

// writeError sends a structured error body with its HTTP status.
func writeError(w http.ResponseWriter, e *Error) {
	writeJSON(w, e.Status, e)
}

// jobHeaders attaches the provenance headers every job response
// carries.
func jobHeaders(w http.ResponseWriter, j *Job) {
	w.Header().Set(HeaderSource, j.Source())
	w.Header().Set(HeaderResumed, strconv.Itoa(j.Resumed()))
}

// unknown is the 404 for an id with no job.
func unknown(id string) *Error {
	return &Error{Status: http.StatusNotFound, Code: "unknown_campaign", Message: fmt.Sprintf("no campaign %q", id)}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, &Error{Status: http.StatusBadRequest, Code: "bad_json", Message: err.Error()})
		return
	}
	j, body, errs := s.Submit(spec)
	if errs != nil {
		writeError(w, errs)
		return
	}
	jobHeaders(w, j)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body) // best-effort: client may have gone away
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	statuses := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string][]Status{"campaigns": statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, unknown(r.PathValue("id")))
		return
	}
	jobHeaders(w, j)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(j.StatusBytes()) // best-effort: client may have gone away
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, unknown(r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		if err := j.Wait(r.Context()); err != nil {
			writeError(w, &Error{Status: http.StatusRequestTimeout, Code: "wait_interrupted", Message: err.Error()})
			return
		}
	}
	body, errs := j.Result()
	if errs != nil {
		writeError(w, errs)
		return
	}
	jobHeaders(w, j)
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body) // best-effort: client may have gone away
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, unknown(r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	events, unsubscribe := j.subscribe()
	defer unsubscribe()
	flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-events:
			if !open {
				// Terminal: the stream's last line is the final state,
				// emitted here so slow readers can never miss it.
				_, _ = w.Write(marshalCanonical(Event{State: j.State()})) // best-effort
				flush()
				return
			}
			_, _ = w.Write(marshalCanonical(ev)) // best-effort: disconnect exits via ctx
			flush()
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, errs := s.Cancel(r.PathValue("id"))
	if errs != nil {
		writeError(w, errs)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": j.ID(), "canceling": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Deterministic families first, then the realtime (gpuport_rt_)
	// time-series block, which CanonicalMetrics strips.
	_ = obs.WriteMetrics(w, s.Snapshot()) // best-effort: client may have gone away
	_ = s.tsdb.WriteMetrics(w)            // best-effort: client may have gone away
}

// handleObsStream serves the recorder's live telemetry as NDJSON: one
// StreamEvent per line, written as spans close and counters move. The
// stream runs until the client disconnects, the server closes, or -
// with ?max=N - after N events (the self-terminating form scripts use).
func (s *Server) handleObsStream(w http.ResponseWriter, r *http.Request) {
	maxEvents := 0
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, &Error{Status: http.StatusBadRequest, Code: "bad_max", Message: fmt.Sprintf("max must be a positive integer, got %q", v)})
			return
		}
		maxEvents = n
	}
	// A deep buffer rides out bursts of span closes from the worker
	// pools; a watcher that still cannot keep up drops events rather
	// than stalling the instrumented paths.
	events, cancel := s.rec.Watch(1024)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	var buf []byte
	sent := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		case ev := <-events:
			buf = ev.AppendNDJSON(buf[:0])
			if _, err := w.Write(buf); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent++
			if maxEvents > 0 && sent >= maxEvents {
				return
			}
		}
	}
}

func (s *Server) handleObsTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, s.Snapshot()) // best-effort: client may have gone away
}
