package server

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestErrorRendering(t *testing.T) {
	withField := &Error{Status: 400, Code: "bad_spec", Field: "chips", Message: "unknown chip"}
	if got := withField.Error(); got != "bad_spec (chips): unknown chip" {
		t.Errorf("Error() = %q", got)
	}
	bare := &Error{Status: 404, Code: "unknown_campaign", Message: "no campaign"}
	if got := bare.Error(); got != "unknown_campaign: no campaign" {
		t.Errorf("Error() = %q", got)
	}
}

func TestJobAccessors(t *testing.T) {
	s := newTestServer(t, Config{})
	j := submit(t, s, testSpec())
	waitDone(t, j)
	if len(j.Fingerprint()) != 64 || !strings.HasPrefix(j.Fingerprint(), j.ID()) {
		t.Errorf("fingerprint %q does not extend id %q", j.Fingerprint(), j.ID())
	}
	rep := j.Report()
	if rep == nil || !rep.Complete() {
		t.Errorf("report = %+v, want complete", rep)
	}
}

func TestJobWaitCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := New(Config{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := submit(t, s, testSpec()) // runners are gone; never finishes
	if err := j.Wait(ctx); err == nil {
		t.Fatal("Wait with canceled ctx returned nil")
	}
}

func TestSubscribeOnTerminalJob(t *testing.T) {
	s := newTestServer(t, Config{})
	j := submit(t, s, testSpec())
	waitDone(t, j)
	ch, cancel := j.subscribe()
	defer cancel()
	if _, open := <-ch; open {
		t.Fatal("subscription to a terminal job should be closed immediately")
	}
}

// TestFaultyCampaignStatus runs a campaign under a whole-chip dropout:
// the job completes with a partial dataset and the status body carries
// the deterministic failure accounting.
func TestFaultyCampaignStatus(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := testSpec()
	spec.Faults = "dropout=1,seed=4"
	j := submit(t, s, spec)
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("state = %s: %s", j.State(), j.StatusBytes())
	}
	var st Status
	if err := json.Unmarshal(j.StatusBytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Result == nil {
		t.Fatal("done status missing result summary")
	}
	if st.Result.Measured >= st.Result.Cells {
		t.Fatalf("dropout=1 measured %d of %d cells, want a partial dataset", st.Result.Measured, st.Result.Cells)
	}
	if len(st.Result.Failures) == 0 || len(st.Result.FailuresByKind) == 0 {
		t.Fatalf("failure accounting missing: %s", j.StatusBytes())
	}
	if st.Result.Coverage == "1.0000" {
		t.Errorf("coverage = %s, want < 1", st.Result.Coverage)
	}
	// The same faulty campaign is still byte-deterministic end to end.
	again := newTestServer(t, Config{})
	k := submit(t, again, spec)
	waitDone(t, k)
	a, errs := j.Result()
	if errs != nil {
		t.Fatal(errs)
	}
	b, errs := k.Result()
	if errs != nil {
		t.Fatal(errs)
	}
	if string(a) != string(b) {
		t.Fatal("faulty campaign result not deterministic across servers")
	}
}
