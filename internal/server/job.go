package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"gpuport/internal/measure"
	"gpuport/internal/obs"
)

// State is the lifecycle state of a campaign job.
type State string

const (
	// StateQueued: accepted, waiting for a runner.
	StateQueued State = "queued"
	// StateRunning: executing on a runner.
	StateRunning State = "running"
	// StateDone: completed; the result is available.
	StateDone State = "done"
	// StateFailed: the campaign returned an error.
	StateFailed State = "failed"
	// StateCanceled: cancelled by request or by server shutdown. A
	// checkpointed job resumes bit-identically when resubmitted.
	StateCanceled State = "canceled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress notification of the NDJSON event stream:
// either a phase advance (phase/done/total) or a terminal state.
type Event struct {
	Phase string `json:"phase,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	State State  `json:"state,omitempty"`
}

// Progress counts completed work units per phase. Totals are fixed by
// the spec; done counts grow monotonically while the job runs and
// equal the totals once it is done, so terminal bodies are canonical.
type Progress struct {
	TracePairs int `json:"trace_pairs"`
	TraceTotal int `json:"trace_total"`
	SweepJobs  int `json:"sweep_jobs"`
	SweepTotal int `json:"sweep_total"`
}

// Failure is one missing cell of a partial result.
type Failure struct {
	Chip     string `json:"chip"`
	App      string `json:"app"`
	Input    string `json:"input"`
	Config   string `json:"config"`
	Reason   string `json:"reason"`
	Attempts int    `json:"attempts"`
}

// ResultSummary is the per-cell accounting of a finished campaign.
// Every field is bit-identical for a given spec: fault outcomes are
// seeded per cell, so attempts, retries, quarantines and the failure
// list do not depend on scheduling, worker counts or resumption.
// (Checkpoint-resumed cell counts are provenance, not identity; they
// travel in the X-Gpuportd-Resumed response header instead.)
type ResultSummary struct {
	Cells           int            `json:"cells"`
	Measured        int            `json:"measured"`
	Coverage        string         `json:"coverage"`
	Attempts        int            `json:"attempts"`
	Retried         int            `json:"retried"`
	Quarantined     int            `json:"quarantined"`
	Failures        []Failure      `json:"failures,omitempty"`
	FailuresByKind  map[string]int `json:"failures_by_kind,omitempty"`
	CheckpointError string         `json:"checkpoint_error,omitempty"`
}

// Status is the canonical public view of a job: everything in it is a
// pure function of the spec and the job's lifecycle state.
type Status struct {
	ID          string         `json:"id"`
	Fingerprint string         `json:"fingerprint"`
	State       State          `json:"state"`
	Spec        Spec           `json:"spec"`
	Cells       int            `json:"cells"`
	Progress    Progress       `json:"progress"`
	Result      *ResultSummary `json:"result,omitempty"`
	Error       string         `json:"error,omitempty"`
}

// Outcome values of the submit-outcome telemetry event (the
// obs.AttrOutcome attribute on the request span).
const (
	// OutcomeQueued: a fresh job was enqueued.
	OutcomeQueued = "queued"
	// OutcomeRequeued: a failed or canceled campaign was enqueued again
	// (it resumes from its checkpoint when one exists).
	OutcomeRequeued = "requeued"
	// OutcomeDeduped: the submission attached to a live job already
	// computing this fingerprint.
	OutcomeDeduped = "deduped"
	// OutcomeCached: the submission was answered from the persisted job
	// store without running anything.
	//lint:allow obsliteral coincides with the unrelated obs.AttrCached attribute key
	OutcomeCached = "cached"
	// OutcomeRejected: the spec failed validation (or the server is
	// shutting down).
	OutcomeRejected = "rejected"
)

// Source values reported in the X-Gpuportd-Source response header.
const (
	// SourceFresh: the result was measured by this server process.
	SourceFresh = "fresh"
	// SourceCache: the result was served from the persisted job store
	// without re-measuring anything.
	SourceCache = "cache"
)

// Job is one campaign in the server: a resolved spec, its queue
// position, its live progress and - once terminal - its canonical
// status and result bytes.
type Job struct {
	id       string
	fp       string
	spec     Spec
	camp     *measure.Campaign
	seq      uint64
	priority int

	cells      int
	traceTotal int
	sweepTotal int

	// done is closed when the job reaches a terminal state.
	done chan struct{}

	// trace is the job's content-addressed request trace ID and reqSpan
	// the submitting HTTP request span; both are pinned under the
	// server mutex before the job becomes dequeueable.
	trace   uint64
	reqSpan uint64

	mu        sync.Mutex
	state     State              // guarded by mu
	source    string             // guarded by mu
	waitSpan  *obs.SpanHandle    // guarded by mu
	traceDone int                // guarded by mu
	sweepDone int                // guarded by mu
	resumed   int                // guarded by mu
	report    *measure.Report    // guarded by mu
	result    []byte             // guarded by mu; dataset CSV, terminal done only
	status    []byte             // guarded by mu; canonical terminal status body
	errMsg    string             // guarded by mu
	canceling bool               // guarded by mu
	cancel    context.CancelFunc // guarded by mu
	subs      map[int]chan Event // guarded by mu
	nextSub   int                // guarded by mu
}

func newJob(id, fp string, spec Spec, camp *measure.Campaign, seq uint64) *Job {
	o := camp.Options()
	return &Job{
		id:         id,
		fp:         fp,
		spec:       spec,
		camp:       camp,
		seq:        seq,
		priority:   spec.Priority,
		cells:      camp.Cells(),
		traceTotal: len(o.Apps) * len(o.Inputs),
		sweepTotal: len(o.Chips) * len(o.Apps) * len(o.Inputs),
		done:       make(chan struct{}),
		state:      StateQueued,
		source:     SourceFresh,
		subs:       map[int]chan Event{},
	}
}

// ID returns the job's identifier (a fingerprint prefix).
func (j *Job) ID() string { return j.id }

// Fingerprint returns the campaign's full content address.
func (j *Job) Fingerprint() string { return j.fp }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Source reports where the result came from (fresh or cache).
func (j *Job) Source() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.source
}

// Resumed reports how many cells were loaded from the job's checkpoint
// instead of re-measured (provenance; 0 for uninterrupted runs).
func (j *Job) Resumed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resumed
}

// Report returns the collection report of a fresh run (nil for queued,
// running and cache-served jobs).
func (j *Job) Report() *measure.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Result returns the result CSV bytes, or an error when the job is
// not done.
func (j *Job) Result() ([]byte, *Error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		return nil, &Error{Status: 409, Code: "failed", Message: j.errMsg}
	case StateCanceled:
		return nil, &Error{Status: 409, Code: "canceled", Message: "campaign was canceled; resubmit to resume it"}
	default:
		return nil, &Error{Status: 409, Code: "not_ready", Message: fmt.Sprintf("campaign is %s", j.state)}
	}
}

// Wait blocks until the job is terminal or ctx is cancelled.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status returns the canonical snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked assembles the canonical status view. Callers hold j.mu.
func (j *Job) statusLocked() Status {
	st := Status{
		ID:          j.id,
		Fingerprint: j.fp,
		State:       j.state,
		Spec:        j.spec,
		Cells:       j.cells,
		Progress: Progress{
			TracePairs: j.traceDone, TraceTotal: j.traceTotal,
			SweepJobs: j.sweepDone, SweepTotal: j.sweepTotal,
		},
		Error: j.errMsg,
	}
	if j.report != nil {
		st.Result = summarize(j.report)
	}
	return st
}

// StatusBytes returns the canonical status body: the persisted bytes
// for terminal jobs (so fresh, restarted and cache-serving servers
// answer byte-identically) and a point-in-time snapshot otherwise.
func (j *Job) StatusBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != nil {
		return j.status
	}
	return marshalCanonical(j.statusLocked())
}

// summarize renders a collection report as the canonical result
// summary.
func summarize(rep *measure.Report) *ResultSummary {
	rs := &ResultSummary{
		Cells:           rep.Cells,
		Measured:        rep.Measured,
		Coverage:        strconv.FormatFloat(rep.Coverage(), 'f', 4, 64),
		Attempts:        rep.Attempts,
		Retried:         rep.Retried,
		Quarantined:     rep.Quarantined,
		CheckpointError: rep.CheckpointError,
	}
	for _, f := range rep.Failures {
		rs.Failures = append(rs.Failures, Failure{
			Chip:     f.Key.Chip,
			App:      f.Key.App,
			Input:    f.Key.Input,
			Config:   f.Key.Config.String(),
			Reason:   f.Reason.String(),
			Attempts: f.Attempts,
		})
	}
	if len(rep.FailuresByKind) > 0 {
		rs.FailuresByKind = map[string]int{}
		for kind, n := range rep.FailuresByKind {
			rs.FailuresByKind[kind.String()] = n
		}
	}
	return rs
}

// marshalCanonical renders a JSON body with a trailing newline.
// encoding/json is canonical for our shapes: struct fields emit in
// declaration order and map keys are sorted.
func marshalCanonical(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Status shapes contain no unmarshalable types; reaching this
		// is a programming error worth surfacing loudly in tests.
		panic(fmt.Sprintf("server: canonical marshal: %v", err))
	}
	return append(b, '\n')
}

// notify is the measure.Options.Notify sink: it advances the phase
// counters and fans the event out to stream subscribers.
func (j *Job) notify(phase string, done, total int) {
	j.mu.Lock()
	switch phase {
	case obs.StageTrace:
		if done > j.traceDone {
			j.traceDone = done
		}
	case obs.StageSweep:
		if done > j.sweepDone {
			j.sweepDone = done
		}
	}
	j.publishLocked(Event{Phase: phase, Done: done, Total: total})
	j.mu.Unlock()
}

// publishLocked sends the event to every subscriber without blocking:
// a slow stream reader misses intermediate progress, never the
// terminal state (the stream handler emits that itself). Callers hold
// j.mu.
func (j *Job) publishLocked(ev Event) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a progress listener. The channel is closed when
// the job reaches a terminal state; cancel unregisters early.
func (j *Job) subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, 64)
	if j.state.terminal() {
		close(ch)
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
	}
}

// endWaitLocked closes the job's queue-wait span (no-op when none is
// open). Callers hold j.mu.
func (j *Job) endWaitLocked() {
	if j.waitSpan != nil {
		j.waitSpan.End()
		j.waitSpan = nil
	}
}

// finishLocked moves the job to a terminal state: it pins the
// canonical status body, closes the done channel and releases every
// subscriber. Callers hold j.mu.
func (j *Job) finishLocked(state State) {
	j.state = state
	if state == StateDone {
		// A completed sweep reports full progress even when cells were
		// resumed or served from cache: totals are spec-derived.
		j.traceDone, j.sweepDone = j.traceTotal, j.sweepTotal
	}
	j.status = marshalCanonical(j.statusLocked())
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	close(j.done)
}
