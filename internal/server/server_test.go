package server

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpuport/internal/measure"
	"gpuport/internal/obs"
	"gpuport/internal/tracecache"
)

// testSpec is a campaign small enough to run in tens of milliseconds:
// 2 chips x 1 app x 1 input x 2 configs.
func testSpec() Spec {
	return Spec{
		Seed:    7,
		Runs:    2,
		Chips:   []string{"M4000", "GTX1080"},
		Apps:    []string{"bfs-wl"},
		Inputs:  []string{"rand-8k"},
		Configs: []string{"baseline", "sg"},
	}
}

// referenceBytes runs the spec's campaign directly through the measure
// job object - the CLI path - and returns its dataset CSV bytes.
func referenceBytes(t *testing.T, spec Spec) []byte {
	t.Helper()
	_, camp, errs := spec.Resolve()
	if errs != nil {
		t.Fatal(errs)
	}
	ds, _, err := camp.Run(context.Background(), measure.Env{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer starts a server that is shut down when the test ends.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if cfg.Ctx == nil {
		cfg.Ctx = ctx
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func submit(t *testing.T, s *Server, spec Spec) *Job {
	t.Helper()
	j, _, errs := s.Submit(spec)
	if errs != nil {
		t.Fatal(errs)
	}
	return j
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not finish: %v (state %s)", j.ID(), err, j.State())
	}
}

// TestServerMatchesCLI is the HTTP=CLI differential at the package
// level: a server-run campaign returns byte-identical CSV to the same
// campaign run directly through measure.
func TestServerMatchesCLI(t *testing.T) {
	s := newTestServer(t, Config{})
	j := submit(t, s, testSpec())
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("state = %s, want done", j.State())
	}
	got, errs := j.Result()
	if errs != nil {
		t.Fatal(errs)
	}
	if want := referenceBytes(t, testSpec()); !bytes.Equal(got, want) {
		t.Fatal("server result CSV differs from direct measure run")
	}
	if j.Source() != SourceFresh {
		t.Fatalf("source = %s, want fresh", j.Source())
	}
}

// TestSubmitDeduplicates proves fingerprint-level dedupe: the same spec
// submitted twice is one job, and specs differing only in runtime-free
// fields (priority) still dedupe.
func TestSubmitDeduplicates(t *testing.T) {
	s := newTestServer(t, Config{})
	a := submit(t, s, testSpec())
	spec := testSpec()
	spec.Priority = 3 // scheduling, not identity
	b := submit(t, s, spec)
	if a != b {
		t.Fatal("same campaign produced two jobs")
	}
	if got := s.Snapshot().Summary.Counter(obs.CtrJobsDeduped); got != 1 {
		t.Fatalf("jobs-deduped = %d, want 1", got)
	}
	waitDone(t, a)
}

// TestCacheServedAfterRestart proves the persisted job store: a new
// server process answers a finished campaign instantly, byte-for-byte,
// without re-measuring.
func TestCacheServedAfterRestart(t *testing.T) {
	jobDir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	a, err := New(Config{Ctx: ctx, JobDir: jobDir})
	if err != nil {
		t.Fatal(err)
	}
	ja := submit(t, a, testSpec())
	waitDone(t, ja)
	wantResult, errs := ja.Result()
	if errs != nil {
		t.Fatal(errs)
	}
	wantStatus := ja.StatusBytes()
	a.Close()

	b := newTestServer(t, Config{JobDir: jobDir})
	jb := submit(t, b, testSpec())
	if jb.State() != StateDone {
		t.Fatalf("restarted server state = %s, want instant done", jb.State())
	}
	if jb.Source() != SourceCache {
		t.Fatalf("source = %s, want cache", jb.Source())
	}
	gotResult, errs := jb.Result()
	if errs != nil {
		t.Fatal(errs)
	}
	if !bytes.Equal(gotResult, wantResult) {
		t.Fatal("cache-served result differs from original bytes")
	}
	if !bytes.Equal(jb.StatusBytes(), wantStatus) {
		t.Fatalf("cache-served status differs from original:\n%s\nvs\n%s", jb.StatusBytes(), wantStatus)
	}
	if got := b.Snapshot().Summary.Counter(obs.CtrJobsCached); got != 1 {
		t.Fatalf("jobs-result-cached = %d, want 1", got)
	}
}

// TestResumeFromCheckpoint proves deterministic resumption: a partial
// checkpoint left behind by an interrupted execution is loaded instead
// of re-measured, and the finished result is byte-identical to an
// uninterrupted run.
func TestResumeFromCheckpoint(t *testing.T) {
	jobDir := t.TempDir()
	spec := testSpec()
	_, camp, errs := spec.Resolve()
	if errs != nil {
		t.Fatal(errs)
	}
	id := camp.Fingerprint()[:16]

	// Simulate the interrupted daemon: one chip's cells are already in
	// the job's checkpoint shard when the server starts.
	partial := spec
	partial.Chips = partial.Chips[:1]
	_, pcamp, errs := partial.Resolve()
	if errs != nil {
		t.Fatal(errs)
	}
	_, prep, err := pcamp.Run(context.Background(), measure.Env{
		Checkpoint: filepath.Join(jobDir, id+".ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !prep.Complete() {
		t.Fatal("partial run incomplete")
	}

	s := newTestServer(t, Config{JobDir: jobDir})
	j := submit(t, s, spec)
	waitDone(t, j)
	if j.State() != StateDone {
		t.Fatalf("state = %s, want done", j.State())
	}
	wantResumed := pcamp.Cells()
	if got := j.Resumed(); got != wantResumed {
		t.Fatalf("resumed = %d, want %d", got, wantResumed)
	}
	got, errs := j.Result()
	if errs != nil {
		t.Fatal(errs)
	}
	if want := referenceBytes(t, testSpec()); !bytes.Equal(got, want) {
		t.Fatal("resumed result differs from uninterrupted run")
	}
}

// TestShutdownMidJobThenResume is the kill test proper: the server is
// closed while a campaign runs, a second server over the same job
// directory finishes the job, and the bytes match an uninterrupted run.
func TestShutdownMidJobThenResume(t *testing.T) {
	jobDir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a, err := New(Config{Ctx: ctx, JobDir: jobDir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	spec.Chips = nil   // all 6 chips
	spec.Configs = nil // all 96 configs: enough work to interrupt
	ja := submit(t, a, spec)
	deadline := time.Now().Add(30 * time.Second)
	for ja.Status().Progress.SweepJobs == 0 && ja.State() != StateDone {
		if time.Now().After(deadline) {
			t.Fatal("no sweep progress before deadline")
		}
		time.Sleep(time.Millisecond)
	}
	a.Close() // kill mid-flight; checkpoint survives

	b := newTestServer(t, Config{JobDir: jobDir})
	jb := submit(t, b, spec)
	waitDone(t, jb)
	if jb.State() != StateDone {
		t.Fatalf("state after restart = %s, want done", jb.State())
	}
	got, errs := jb.Result()
	if errs != nil {
		t.Fatal(errs)
	}
	if want := referenceBytes(t, spec); !bytes.Equal(got, want) {
		t.Fatal("post-restart result differs from uninterrupted run")
	}
}

// TestCancelQueuedJob cancels a job that never reached a runner.
func TestCancelQueuedJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // runners exit immediately: submissions stay queued
	s, err := New(Config{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := submit(t, s, testSpec())
	if j.State() != StateQueued {
		t.Fatalf("state = %s, want queued", j.State())
	}
	cj, errs := s.Cancel(j.ID())
	if errs != nil {
		t.Fatal(errs)
	}
	if cj.State() != StateCanceled {
		t.Fatalf("state = %s, want canceled", cj.State())
	}
	if _, errs := s.Cancel(j.ID()); errs == nil || errs.Status != 409 {
		t.Fatalf("second cancel = %v, want 409", errs)
	}
	if _, errs := j.Result(); errs == nil || errs.Code != "canceled" {
		t.Fatalf("result of canceled job = %v, want canceled error", errs)
	}
}

// TestCancelRunningJobThenRetry cancels an in-flight campaign, then
// resubmits it: the retry runs fresh (same id) and completes with the
// canonical bytes.
func TestCancelRunningJobThenRetry(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := testSpec()
	spec.Chips = nil
	spec.Configs = nil
	j := submit(t, s, spec)
	deadline := time.Now().Add(30 * time.Second)
	for j.State() == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, errs := s.Cancel(j.ID()); errs != nil && errs.Status != 409 {
		t.Fatal(errs)
	}
	waitDone(t, j)

	r := submit(t, s, spec)
	if r == j {
		// The job finished before the cancel landed; dedupe returned it.
		if r.State() != StateDone {
			t.Fatalf("deduped job state = %s", r.State())
		}
		return
	}
	waitDone(t, r)
	if r.State() != StateDone {
		t.Fatalf("retry state = %s, want done", r.State())
	}
	got, errs := r.Result()
	if errs != nil {
		t.Fatal(errs)
	}
	if want := referenceBytes(t, spec); !bytes.Equal(got, want) {
		t.Fatal("retried result differs from reference")
	}
}

// TestConcurrentCampaignsShareCacheBitIdentical is the -race stress
// gate: distinct campaigns run concurrently on one trace cache and one
// runner pool, and each result is byte-identical to its serial
// reference run.
func TestConcurrentCampaignsShareCacheBitIdentical(t *testing.T) {
	store, err := tracecache.Open(t.TempDir(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Campaigns: 4, TraceCache: store})

	specs := []Spec{}
	for seed := uint64(1); seed <= 3; seed++ {
		for _, app := range []string{"bfs-wl", "pr-residual"} {
			sp := testSpec()
			sp.Seed = seed
			sp.Apps = []string{app}
			specs = append(specs, sp)
		}
	}
	jobs := make([]*Job, len(specs))
	for i, sp := range specs {
		jobs[i] = submit(t, s, sp)
	}
	// Duplicate submissions land on the same jobs while they run.
	for _, sp := range specs {
		submit(t, s, sp)
	}
	for i, j := range jobs {
		waitDone(t, j)
		if j.State() != StateDone {
			t.Fatalf("job %d state = %s: %s", i, j.State(), j.StatusBytes())
		}
		got, errs := j.Result()
		if errs != nil {
			t.Fatal(errs)
		}
		if want := referenceBytes(t, specs[i]); !bytes.Equal(got, want) {
			t.Fatalf("job %d (seed %d, app %s): concurrent result differs from serial run",
				i, specs[i].Seed, specs[i].Apps[0])
		}
	}
	if store.Len() == 0 {
		t.Fatal("shared trace cache was never populated")
	}
}

// TestSubmitValidation pins the structured 4xx surface of Resolve.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name    string
		mutate  func(*Spec)
		field   string
		message string
	}{
		{"bad chip", func(sp *Spec) { sp.Chips = []string{"H100"} }, "chips", "unknown chip"},
		{"dup chip", func(sp *Spec) { sp.Chips = []string{"M4000", "M4000"} }, "chips", "duplicate"},
		{"bad app", func(sp *Spec) { sp.Apps = []string{"llm"} }, "apps", "unknown application"},
		{"bad input", func(sp *Spec) { sp.Inputs = []string{"twitter"} }, "inputs", "unknown input"},
		{"empty configs", func(sp *Spec) { sp.Configs = []string{} }, "configs", "empty"},
		{"bad config", func(sp *Spec) { sp.Configs = []string{"warp-magic"} }, "configs", "unknown flag"},
		{"bad faults", func(sp *Spec) { sp.Faults = "explode=yes" }, "faults", ""},
		{"runs too big", func(sp *Spec) { sp.Runs = 1000 }, "runs", "1..64"},
		{"negative runs", func(sp *Spec) { sp.Runs = -1 }, "runs", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := testSpec()
			tc.mutate(&sp)
			_, _, errs := s.Submit(sp)
			if errs == nil {
				t.Fatal("submit accepted an invalid spec")
			}
			if errs.Status != 400 || errs.Code != "bad_spec" || errs.Field != tc.field {
				t.Fatalf("error = %+v, want 400 bad_spec on %s", errs, tc.field)
			}
			if tc.message != "" && !strings.Contains(errs.Message, tc.message) {
				t.Fatalf("message %q does not mention %q", errs.Message, tc.message)
			}
		})
	}
}
