// Package server turns the measurement harness into a multi-tenant
// campaign service: portability-study requests (chip set, app set,
// graph inputs, optimisation-config subspace, fault profile) become
// resumable jobs on a priority queue, scheduled onto a pool of
// campaign runners that share one content-addressed trace cache, and
// surfaced over a small HTTP/JSON API with progress streaming,
// cancellation, Prometheus metrics and instant cache-served answers.
//
// Every response body is byte-canonical: job identity is the
// content-addressed campaign fingerprint, status bodies carry only
// fields that are bit-identical for a given spec (no wall clock, no
// scheduling artifacts), and result bodies are the dataset CSV the CLI
// harness would have written. Provenance that legitimately varies
// between executions of the same campaign (fresh vs cache-served,
// checkpoint-resumed cell counts) travels in response headers, never
// bodies, so goldens hold across runs, worker counts and restarts.
package server

import (
	"fmt"
	"net/http"

	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/fault"
	"gpuport/internal/graph"
	"gpuport/internal/measure"
	"gpuport/internal/opt"
)

// Spec is one campaign request as submitted over the API. Empty axes
// mean "the full study axis" (all 6 chips, all 17 apps, the 3 standard
// inputs, all 96 configurations); axis order is significant because it
// fixes the row order of the result CSV.
type Spec struct {
	// Seed drives the measurement noise streams.
	Seed uint64 `json:"seed"`
	// Runs is the number of timed samples per cell (default 3).
	Runs int `json:"runs,omitempty"`
	// Chips restricts the chip axis to these short names (Table I).
	Chips []string `json:"chips,omitempty"`
	// Apps restricts the application axis to these names (Table VII).
	Apps []string `json:"apps,omitempty"`
	// Inputs restricts the input axis to these standard or extended
	// graph names (Table VIII).
	Inputs []string `json:"inputs,omitempty"`
	// Configs restricts the optimisation subspace, in the paper's flag
	// syntax ("baseline", "sg", "coop,sz256", ...).
	Configs []string `json:"configs,omitempty"`
	// Faults enables deterministic fault injection, in the
	// internal/fault spec syntax ("light", "transient=0.05", ...).
	Faults string `json:"faults,omitempty"`
	// Validate re-checks every application output against its
	// reference implementation while tracing.
	Validate bool `json:"validate,omitempty"`
	// Priority orders the job queue: higher runs first; ties run in
	// submission order. Priority is scheduling, not identity - it does
	// not participate in the campaign fingerprint.
	Priority int `json:"priority,omitempty"`
}

// Error is a structured request error: machine-readable code, the spec
// field at fault when there is one, and a human-readable message. It
// renders as the JSON error body of a 4xx response.
type Error struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Field   string `json:"field,omitempty"`
	Message string `json:"message"`
}

func (e *Error) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s (%s): %s", e.Code, e.Field, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

func badSpec(field, format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Code: "bad_spec", Field: field, Message: fmt.Sprintf(format, args...)}
}

// maxRuns bounds the per-cell sampling budget a request may ask for;
// it exists to keep one hostile request from monopolising the pool.
const maxRuns = 64

// Resolve validates the spec and compiles it to the measurement
// campaign it denotes. Unknown names, duplicate axis entries, an
// explicitly empty config subspace and malformed fault or config
// syntax all return a *Error carrying the offending field; the spec is
// echoed back (with defaults filled) as the canonical form a status
// body reports.
func (s Spec) Resolve() (Spec, *measure.Campaign, *Error) {
	if s.Runs < 0 || s.Runs > maxRuns {
		return s, nil, badSpec("runs", "runs must be in 1..%d (0 means the default 3), got %d", maxRuns, s.Runs)
	}
	if s.Runs == 0 {
		s.Runs = 3
	}
	o := measure.Options{Seed: s.Seed, Runs: s.Runs, Validate: s.Validate}

	seen := map[string]bool{}
	dup := func(field, name string) *Error {
		if seen[field+"\x00"+name] {
			return badSpec(field, "duplicate entry %q", name)
		}
		seen[field+"\x00"+name] = true
		return nil
	}
	for _, name := range s.Chips {
		ch, err := chip.ByName(name)
		if err != nil {
			return s, nil, badSpec("chips", "%v", err)
		}
		if e := dup("chips", name); e != nil {
			return s, nil, e
		}
		o.Chips = append(o.Chips, ch)
	}
	for _, name := range s.Apps {
		a, err := apps.ByName(name)
		if err != nil {
			return s, nil, badSpec("apps", "%v", err)
		}
		if e := dup("apps", name); e != nil {
			return s, nil, e
		}
		o.Apps = append(o.Apps, a)
	}
	for _, name := range s.Inputs {
		g, err := graph.InputByName(name)
		if err != nil {
			return s, nil, badSpec("inputs", "%v", err)
		}
		if e := dup("inputs", name); e != nil {
			return s, nil, e
		}
		o.Inputs = append(o.Inputs, g)
	}
	if s.Configs != nil && len(s.Configs) == 0 {
		return s, nil, badSpec("configs", "config subspace is empty (omit the field to sweep all 96 configurations)")
	}
	for _, spec := range s.Configs {
		cfg, err := opt.Parse(spec)
		if err != nil {
			return s, nil, badSpec("configs", "%v", err)
		}
		if e := dup("configs", cfg.String()); e != nil {
			return s, nil, e
		}
		o.Configs = append(o.Configs, cfg)
	}
	profile, err := fault.Parse(s.Faults)
	if err != nil {
		return s, nil, badSpec("faults", "%v", err)
	}
	o.Faults = profile
	return s, measure.NewCampaign(o), nil
}
