package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"gpuport/internal/obs"
	"gpuport/internal/tracecache"
)

// connectedTraceRun boots a tracing server, submits the golden spec
// over HTTP, waits for completion and returns the raw and canonical
// Chrome trace exports. Campaigns stays fixed (runner lane names are
// part of the export); workers is the per-campaign pool size, which
// must never change a single canonical byte.
func connectedTraceRun(t *testing.T, workers int) (raw, canonical []byte) {
	t.Helper()
	_, ts := httpServer(t, Config{
		Campaigns: 2,
		Workers:   workers,
		Obs:       obs.New().EnableSim(),
	})
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", testSpecJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	resp, result := get(t, ts.URL+"/v1/campaigns/"+st.ID+"/result?wait=1")
	if resp.StatusCode != 200 {
		t.Fatalf("result status = %d: %s", resp.StatusCode, result)
	}
	_, raw = get(t, ts.URL+"/debug/obs-trace")
	canonical, err := obs.CanonicalTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	return raw, canonical
}

// traceSpan is the decoded identity of one exported complete event.
type traceSpan struct {
	id, parent, trace, links string
}

// spansByName indexes a raw Chrome trace's complete events by name.
func spansByName(t *testing.T, raw []byte) map[string][]traceSpan {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not Chrome trace JSON: %v", err)
	}
	str := func(args map[string]any, key string) string {
		s, _ := args[key].(string)
		return s
	}
	out := map[string][]traceSpan{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		out[ev.Name] = append(out[ev.Name], traceSpan{
			id:     str(ev.Args, "id"),
			parent: str(ev.Args, "parent"),
			trace:  str(ev.Args, "trace"),
			links:  str(ev.Args, "links"),
		})
	}
	return out
}

// TestConnectedTraceGolden proves the tentpole contract: one campaign
// submitted over HTTP yields a single connected trace - request,
// validate, enqueue, queue-wait, campaign and pipeline spans all under
// one content-addressed trace ID - whose canonical export is
// byte-identical across runs and across worker counts, pinned by a
// golden file.
func TestConnectedTraceGolden(t *testing.T) {
	raw, first := connectedTraceRun(t, 1)
	_, again := connectedTraceRun(t, 1)
	_, wide := connectedTraceRun(t, 4)

	if !bytes.Equal(first, again) {
		t.Fatal("canonical trace differs between two identical runs")
	}
	if !bytes.Equal(first, wide) {
		t.Fatal("canonical trace differs between workers=1 and workers=4")
	}
	golden(t, "obs_trace.golden.txt", first)

	spans := spansByName(t, raw)
	for _, name := range []string{
		obs.SpanHTTPRequest, obs.SpanValidate, obs.SpanEnqueue,
		obs.SpanQueueWait, obs.SpanCampaign, obs.SpanTracePair,
		obs.SpanSweepJob, obs.SpanSimTimeline,
	} {
		if len(spans[name]) == 0 {
			t.Fatalf("trace has no %q span", name)
		}
	}
	req := spans[obs.SpanHTTPRequest][0]
	if req.trace == "" {
		t.Fatal("request span carries no trace ID")
	}
	// Every span of the campaign's journey shares the request's trace.
	for name, list := range spans {
		for _, sp := range list {
			if sp.trace != req.trace {
				t.Errorf("%s span trace = %q, want %q (one connected trace)", name, sp.trace, req.trace)
			}
		}
	}
	// The async handoff: queue-wait hangs off the request span, and the
	// runner's campaign span links back to it across the queue boundary.
	if got := spans[obs.SpanQueueWait][0].parent; got != req.id {
		t.Errorf("queue-wait parent = %q, want request span %q", got, req.id)
	}
	camp := spans[obs.SpanCampaign][0]
	if !strings.Contains(camp.links, req.id) {
		t.Errorf("campaign links = %q, want to include request span %q", camp.links, req.id)
	}
	// The pipeline's stage roots were re-parented under the campaign
	// span, so every pipeline span's ancestry reaches the campaign.
	parentOf := map[string]string{}
	for _, list := range spans {
		for _, sp := range list {
			parentOf[sp.id] = sp.parent
		}
	}
	reaches := func(id, ancestor string) bool {
		for hops := 0; id != "" && hops < 32; hops++ {
			if id == ancestor {
				return true
			}
			id = parentOf[id]
		}
		return false
	}
	for _, name := range []string{obs.SpanTracePair, obs.SpanSweepJob} {
		for _, sp := range spans[name] {
			if !reaches(sp.id, camp.id) {
				t.Errorf("%s span %q does not descend from campaign span %q", name, sp.id, camp.id)
			}
		}
	}
}

// TestCanonicalMetricsStableAcrossRuns proves the /metrics surface -
// with the realtime tsdb block stripped alongside the stage-seconds
// family - is byte-identical across runs and worker counts too.
func TestCanonicalMetricsStableAcrossRuns(t *testing.T) {
	fetch := func(workers int) []byte {
		s, ts := httpServer(t, Config{Campaigns: 2, Workers: workers, Obs: obs.New().EnableSim()})
		j := submit(t, s, testSpec())
		waitDone(t, j)
		s.Sample(1_000_000_000) // realtime block must not leak into canonical bytes
		_, metrics := get(t, ts.URL+"/metrics")
		return obs.CanonicalMetrics(metrics)
	}
	first := fetch(1)
	if len(first) == 0 {
		t.Fatal("canonical metrics are empty")
	}
	if bytes.Contains(first, []byte(obs.RealtimePrefix)) {
		t.Fatalf("canonical metrics still contain realtime series:\n%s", first)
	}
	if wide := fetch(4); !bytes.Equal(first, wide) {
		t.Fatalf("canonical metrics differ between workers=1 and workers=4:\n--- w1\n%s\n--- w4\n%s", first, wide)
	}
}

// TestServerSampleTelemetry drives the virtual-clock tick and checks
// the time-series store and its /metrics block.
func TestServerSampleTelemetry(t *testing.T) {
	cache, err := tracecache.Open(t.TempDir(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := httpServer(t, Config{TraceCache: cache})
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", testSpecJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	j, ok := s.Get(st.ID)
	if !ok {
		t.Fatal("submitted job not registered")
	}
	waitDone(t, j)

	s.Sample(1_000_000_000)
	s.Sample(2_000_000_000)
	store := s.Metrics()
	if store.Ticks() != 2 {
		t.Fatalf("Ticks = %d, want 2", store.Ticks())
	}
	if pts := store.Window(obs.TSQueueDepth, 4); len(pts) != 2 || pts[1].Value != 0 {
		t.Fatalf("queue-depth window = %+v, want 2 samples ending at 0", pts)
	}
	// The submit was timed by the HTTP middleware.
	if h, ok := store.Total(obs.TSLatencyPrefix + endpointSubmit); !ok || h.Count != 1 {
		t.Fatalf("submit latency total = %+v,%v, want one observation", h, ok)
	}
	// The campaign traced two (chip, pair) jobs against an empty cache:
	// misses were mirrored from the daemon recorder by Sample.
	if v := store.Value(obs.CtrCacheMisses); v < 1 {
		t.Fatalf("mirrored %s = %d, want >= 1", obs.CtrCacheMisses, v)
	}

	_, metrics := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		obs.RealtimePrefix + `gauge{name="queue-depth"} 0`,
		obs.RealtimePrefix + `counter_total{name="ticks"} 2`,
		obs.RealtimePrefix + `hist_count{name="http-latency:submit"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHTTPObsStream reads the live NDJSON telemetry stream while a
// campaign runs: every line parses as a StreamEvent, span and counter
// events both appear, and the campaign's spans carry its trace ID.
func TestHTTPObsStream(t *testing.T) {
	s, ts := httpServer(t, Config{})

	// The stream registers its watcher before responding with headers,
	// so events published after this Get returns cannot be missed.
	stream, err := http.Get(ts.URL + "/debug/obs-stream?max=12")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type = %q", ct)
	}

	j := submit(t, s, testSpec())
	waitDone(t, j)

	var events []obs.StreamEvent
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var ev obs.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 12 {
		t.Fatalf("stream delivered %d events, want 12 (max)", len(events))
	}
	kinds := map[string]int{}
	var traced int
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.Kind == obs.StreamSpan && ev.Trace != "" {
			traced++
		}
	}
	if kinds[obs.StreamSpan] == 0 || kinds[obs.StreamCounter] == 0 {
		t.Fatalf("stream kinds = %v, want both span and counter events", kinds)
	}
	if traced == 0 {
		t.Fatal("no streamed span carried a trace ID")
	}
}

// TestHTTPObsStreamBadMax pins the 400 for a malformed max parameter.
func TestHTTPObsStreamBadMax(t *testing.T) {
	_, ts := pausedServer(t)
	for _, q := range []string{"max=0", "max=-1", "max=nope"} {
		resp, body := get(t, ts.URL+"/debug/obs-stream?"+q)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status = %d, want 400: %s", q, resp.StatusCode, body)
		}
	}
}
