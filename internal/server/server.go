package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gpuport/internal/measure"
	"gpuport/internal/obs"
	"gpuport/internal/tracecache"
)

// Config wires one Server instance to its runtime resources.
type Config struct {
	// Ctx is the root context: cancelling it stops every runner and
	// cancels every in-flight campaign. Required.
	Ctx context.Context
	// Campaigns is the number of campaign runners, i.e. how many jobs
	// execute concurrently (default 2). Each runner executes one job at
	// a time; concurrency never changes result bytes.
	Campaigns int
	// Workers caps each campaign's internal trace/sweep worker pools
	// (0 means GOMAXPROCS).
	Workers int
	// TraceCache is the content-addressed trace store shared by every
	// campaign; nil disables cross-campaign trace reuse.
	TraceCache *tracecache.Store
	// JobDir persists terminal results (<id>.status.json,
	// <id>.result.csv) and in-flight checkpoints (<id>.ckpt). A result
	// found there is served without re-measuring; a checkpoint found
	// there makes a resubmitted campaign resume instead of restart.
	// Empty disables persistence and resumability.
	JobDir string
	// CheckpointEvery flushes a job's checkpoint after this many
	// completed (chip, trace) sweep jobs (0 means the measure default).
	CheckpointEvery int
	// Obs is the daemon-lifetime recorder behind /metrics and the debug
	// trace: per-job counters are folded into it when jobs finish, and
	// each runner records one campaign span per job on its lane. When
	// nil a private recorder is created.
	Obs *obs.Recorder
}

// Server schedules campaign jobs onto a fixed pool of runners. Jobs
// are deduplicated and cached by campaign fingerprint, ordered by
// (priority, submission sequence), and isolated per execution: each
// job gets its own cancel scope, observability recorder and checkpoint
// file, while all jobs share one trace cache.
type Server struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	rec    *obs.Recorder
	wg     sync.WaitGroup

	// wake nudges idle runners when work arrives. Buffered with
	// non-blocking sends; runners re-poll the queue after every job, so
	// a dropped nudge is never a lost wakeup.
	wake chan struct{}

	mu     sync.Mutex
	jobs   map[string]*Job
	q      queue
	seq    uint64
	closed bool
}

// New starts a server: it validates the config, prepares the job
// directory and launches the runner pool.
func New(cfg Config) (*Server, error) {
	if cfg.Ctx == nil {
		return nil, fmt.Errorf("server: Config.Ctx is required")
	}
	if cfg.Campaigns <= 0 {
		cfg.Campaigns = 2
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New().EnableTracing()
	}
	if cfg.JobDir != "" {
		if err := os.MkdirAll(cfg.JobDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: job dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(cfg.Ctx)
	s := &Server{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		rec:    cfg.Obs,
		wake:   make(chan struct{}, 1024),
		jobs:   map[string]*Job{},
	}
	for lane := 0; lane < cfg.Campaigns; lane++ {
		s.rec.NameLane(obs.TrackReal, lane, fmt.Sprintf("runner %d", lane))
		s.wg.Add(1)
		go s.runner(ctx, lane)
	}
	return s, nil
}

// Close stops the server: it cancels every in-flight campaign (their
// checkpoints survive for resumption), fails the queue over to the
// canceled state and waits for the runners to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for j := s.q.pop(); j != nil; j = s.q.pop() {
		j.mu.Lock()
		j.finishLocked(StateCanceled)
		j.mu.Unlock()
		s.rec.Add(obs.CtrJobsCanceled, 1)
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// Snapshot returns the daemon recorder's observability snapshot
// (counters, campaign spans, folded per-job totals).
func (s *Server) Snapshot() *obs.Snapshot { return s.rec.Snapshot() }

// Get returns the job with the given id.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// Submit registers a campaign. The returned job is, in order of
// preference: the live job already computing this fingerprint
// (deduplicated), a terminal job served from memory or the persisted
// job store (cache), or a freshly queued job. Failed and canceled
// campaigns are requeued on resubmission and resume from their
// checkpoint when one exists.
//
// The returned body is the canonical response for this submission,
// snapshotted before any runner can touch the job: a fresh submission
// always answers in the "queued" form, a cache hit always answers with
// the persisted "done" form.
func (s *Server) Submit(spec Spec) (j *Job, body []byte, errs *Error) {
	spec, camp, errs := spec.Resolve()
	if errs != nil {
		return nil, nil, errs
	}
	fp := camp.Fingerprint()
	id := fp[:16]

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, &Error{Status: 503, Code: "shutting_down", Message: "server is shutting down"}
	}
	if j, ok := s.jobs[id]; ok {
		switch j.State() {
		case StateFailed, StateCanceled:
			// Retry: fall through to enqueue a fresh job object under
			// the same id; its checkpoint (if any) makes it a resume.
		default:
			s.rec.Add(obs.CtrJobsDeduped, 1)
			return j, j.StatusBytes(), nil
		}
	}

	j = newJob(id, fp, spec, camp, s.seq)
	s.seq++

	if status, result, ok := s.loadPersisted(id); ok {
		j.state = StateDone
		j.source = SourceCache
		j.status = status
		j.result = result
		j.traceDone, j.sweepDone = j.traceTotal, j.sweepTotal
		close(j.done)
		s.jobs[id] = j
		s.rec.Add(obs.CtrJobsCached, 1)
		return j, status, nil
	}

	// Snapshot the queued body while still holding s.mu: runners
	// dequeue under the same mutex, so no execution state can leak into
	// a submission response.
	body = j.StatusBytes()
	s.jobs[id] = j
	s.q.push(j)
	s.rec.Add(obs.CtrJobsSubmitted, 1)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return j, body, nil
}

// Cancel stops the job with the given id: a queued job is canceled
// immediately, a running one has its context cancelled and reaches the
// canceled state when its runner unwinds (its checkpoint survives).
func (s *Server) Cancel(id string) (*Job, *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, &Error{Status: 404, Code: "unknown_campaign", Message: fmt.Sprintf("no campaign %q", id)}
	}
	if q := s.q.remove(id); q != nil {
		j.mu.Lock()
		j.finishLocked(StateCanceled)
		j.mu.Unlock()
		s.rec.Add(obs.CtrJobsCanceled, 1)
		return j, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return nil, &Error{Status: 409, Code: "not_cancelable", Message: fmt.Sprintf("campaign is already %s", j.state)}
	}
	j.canceling = true
	if j.cancel != nil {
		j.cancel()
	}
	return j, nil
}

// next pops the highest-priority queued job and marks it running; nil
// when the queue is empty.
func (s *Server) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.q.pop()
	if j == nil {
		return nil
	}
	j.mu.Lock()
	j.state = StateRunning
	j.publishLocked(Event{State: StateRunning})
	j.mu.Unlock()
	return j
}

// runner is one campaign-execution loop. After finishing a job it
// re-polls the queue before blocking, so a wake dropped while it was
// busy cannot strand queued work.
func (s *Server) runner(ctx context.Context, lane int) {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			select {
			case <-ctx.Done():
				return
			case <-s.wake:
				continue
			}
		}
		s.runJob(ctx, lane, j)
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

// runJob executes one campaign with per-job isolation: its own cancel
// scope, its own recorder, its own checkpoint file. The shared trace
// cache is the only cross-job resource, and it is keyed by content, so
// sharing never changes bytes.
func (s *Server) runJob(ctx context.Context, lane int, j *Job) {
	span := s.rec.StartSpan(obs.SpanCampaign, lane, obs.String(obs.AttrJob, j.id))

	jrec := obs.New()
	env := measure.Env{
		Workers:    s.cfg.Workers,
		TraceCache: s.cfg.TraceCache,
		Obs:        jrec,
		Notify:     j.notify,
	}
	if s.cfg.JobDir != "" {
		env.Checkpoint = s.checkpointPath(j.id)
		env.CheckpointEvery = s.cfg.CheckpointEvery
	}
	jctx, jcancel := context.WithCancel(ctx)
	defer jcancel()
	j.mu.Lock()
	j.cancel = jcancel
	if j.canceling {
		// Cancel raced the dequeue; honour it before doing any work.
		jcancel()
	}
	j.mu.Unlock()

	ds, rep, err := j.camp.Run(jctx, env)
	s.foldCounters(jrec)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	switch {
	case err != nil && (j.canceling || ctx.Err() != nil):
		j.errMsg = ""
		j.finishLocked(StateCanceled)
		s.rec.Add(obs.CtrJobsCanceled, 1)
	case err != nil:
		j.errMsg = err.Error()
		j.finishLocked(StateFailed)
		s.rec.Add(obs.CtrJobsFailed, 1)
	default:
		var buf bytes.Buffer
		if werr := ds.WriteCSV(&buf); werr != nil {
			j.errMsg = werr.Error()
			j.finishLocked(StateFailed)
			s.rec.Add(obs.CtrJobsFailed, 1)
			break
		}
		j.report = rep
		j.resumed = rep.Resumed
		j.result = buf.Bytes()
		j.finishLocked(StateDone)
		s.rec.Add(obs.CtrJobsCompleted, 1)
		s.persist(j)
	}
	span.End()
}

// foldCounters accumulates a finished job's counters into the daemon
// recorder, so /metrics reports totals across all jobs.
func (s *Server) foldCounters(jrec *obs.Recorder) {
	for _, c := range jrec.Summary().Counters {
		s.rec.Add(c.Name, c.Value)
	}
}

// checkpointPath names the job's resumable shard file.
func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.cfg.JobDir, id+".ckpt")
}

// persist writes the terminal status and result bytes atomically and
// retires the checkpoint. Persistence failures are recorded on the
// daemon recorder but do not fail the job: the in-memory result is
// still valid. Caller holds j.mu (reads only pinned terminal bytes).
func (s *Server) persist(j *Job) {
	if s.cfg.JobDir == "" {
		return
	}
	if err := writeFileAtomic(filepath.Join(s.cfg.JobDir, j.id+".result.csv"), j.result); err != nil {
		return
	}
	if err := writeFileAtomic(filepath.Join(s.cfg.JobDir, j.id+".status.json"), j.status); err != nil {
		return
	}
	_ = os.Remove(s.checkpointPath(j.id)) // best-effort: a stale ckpt only costs a resume
}

// loadPersisted returns the terminal bytes persisted for id by an
// earlier run (possibly of an earlier server process). The status must
// parse and be done; anything less is treated as a miss.
func (s *Server) loadPersisted(id string) (status, result []byte, ok bool) {
	if s.cfg.JobDir == "" {
		return nil, nil, false
	}
	status, err := os.ReadFile(filepath.Join(s.cfg.JobDir, id+".status.json"))
	if err != nil {
		return nil, nil, false
	}
	result, err = os.ReadFile(filepath.Join(s.cfg.JobDir, id+".result.csv"))
	if err != nil {
		return nil, nil, false
	}
	var st Status
	if json.Unmarshal(status, &st) != nil || st.State != StateDone || st.ID != id {
		return nil, nil, false
	}
	return status, result, true
}

// writeFileAtomic writes data via a temp file and rename, so readers
// (and crashed writers) never observe a partial file.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // best-effort: the write error is the one worth reporting
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}
