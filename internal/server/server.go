package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gpuport/internal/measure"
	"gpuport/internal/obs"
	"gpuport/internal/obs/tsdb"
	"gpuport/internal/tracecache"
)

// Config wires one Server instance to its runtime resources.
type Config struct {
	// Ctx is the root context: cancelling it stops every runner and
	// cancels every in-flight campaign. Required.
	Ctx context.Context
	// Campaigns is the number of campaign runners, i.e. how many jobs
	// execute concurrently (default 2). Each runner executes one job at
	// a time; concurrency never changes result bytes.
	Campaigns int
	// Workers caps each campaign's internal trace/sweep worker pools
	// (0 means GOMAXPROCS).
	Workers int
	// TraceCache is the content-addressed trace store shared by every
	// campaign; nil disables cross-campaign trace reuse.
	TraceCache *tracecache.Store
	// JobDir persists terminal results (<id>.status.json,
	// <id>.result.csv) and in-flight checkpoints (<id>.ckpt). A result
	// found there is served without re-measuring; a checkpoint found
	// there makes a resubmitted campaign resume instead of restart.
	// Empty disables persistence and resumability.
	JobDir string
	// CheckpointEvery flushes a job's checkpoint after this many
	// completed (chip, trace) sweep jobs (0 means the measure default).
	CheckpointEvery int
	// Obs is the daemon-lifetime recorder behind /metrics and the debug
	// trace: each runner records one campaign span per job on its lane,
	// and a finished job's recorder (spans, counters, histograms, stage
	// timers) is adopted into it as one connected request trace. When
	// nil a private recorder is created.
	Obs *obs.Recorder
	// MetricsWindow is how many telemetry ticks the in-process
	// time-series store retains per series (0 means the tsdb default).
	MetricsWindow int
}

// Server schedules campaign jobs onto a fixed pool of runners. Jobs
// are deduplicated and cached by campaign fingerprint, ordered by
// (priority, submission sequence), and isolated per execution: each
// job gets its own cancel scope, observability recorder and checkpoint
// file, while all jobs share one trace cache.
type Server struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	rec    *obs.Recorder
	tsdb   *tsdb.Store
	wg     sync.WaitGroup

	// wake nudges idle runners when work arrives. Buffered with
	// non-blocking sends; runners re-poll the queue after every job, so
	// a dropped nudge is never a lost wakeup.
	wake chan struct{}

	mu     sync.Mutex
	jobs   map[string]*Job // guarded by mu
	q      queue           // guarded by mu
	seq    uint64          // guarded by mu
	busy   int64           // guarded by mu
	closed bool            // guarded by mu
}

// New starts a server: it validates the config, prepares the job
// directory and launches the runner pool.
func New(cfg Config) (*Server, error) {
	if cfg.Ctx == nil {
		return nil, fmt.Errorf("server: Config.Ctx is required")
	}
	if cfg.Campaigns <= 0 {
		cfg.Campaigns = 2
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New().EnableTracing()
	}
	if cfg.JobDir != "" {
		if err := os.MkdirAll(cfg.JobDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: job dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(cfg.Ctx)
	s := &Server{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		rec:    cfg.Obs,
		tsdb:   tsdb.New(cfg.MetricsWindow),
		wake:   make(chan struct{}, 1024),
		jobs:   map[string]*Job{},
	}
	for lane := 0; lane < cfg.Campaigns; lane++ {
		s.rec.NameLane(obs.TrackReal, lane, fmt.Sprintf("runner %d", lane))
		s.wg.Add(1)
		go s.runner(ctx, lane)
	}
	// The HTTP front end records its request spans one lane past the
	// runner pool.
	s.rec.NameLane(obs.TrackReal, s.httpLane(), obs.LaneHTTP)
	return s, nil
}

// httpLane is the real-track lane of the HTTP front end.
func (s *Server) httpLane() int { return s.cfg.Campaigns }

// Close stops the server: it cancels every in-flight campaign (their
// checkpoints survive for resumption), fails the queue over to the
// canceled state and waits for the runners to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for j := s.q.pop(); j != nil; j = s.q.pop() {
		j.mu.Lock()
		j.endWaitLocked()
		j.finishLocked(StateCanceled)
		j.mu.Unlock()
		s.rec.Add(obs.CtrJobsCanceled, 1)
	}
	s.tsdb.Set(obs.TSQueueDepth, 0)
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// Snapshot returns the daemon recorder's observability snapshot
// (counters, campaign spans, folded per-job totals).
func (s *Server) Snapshot() *obs.Snapshot { return s.rec.Snapshot() }

// Obs returns the daemon-lifetime recorder (the live-stream source).
func (s *Server) Obs() *obs.Recorder { return s.rec }

// Metrics returns the server's in-process time-series store.
func (s *Server) Metrics() *tsdb.Store { return s.tsdb }

// Sample takes one telemetry tick at the given timestamp: it refreshes
// the queue-depth gauge, mirrors the trace-cache counters into the
// time-series store and snapshots every series into its ring. The
// caller owns the clock (the daemon ticks wall time, tests tick a
// virtual clock), so the store itself never reads one.
func (s *Server) Sample(tsNS int64) {
	s.mu.Lock()
	depth := int64(s.q.len())
	s.mu.Unlock()
	s.tsdb.Set(obs.TSQueueDepth, depth)
	for _, c := range s.rec.Summary().Counters {
		switch c.Name {
		case obs.CtrCacheHits, obs.CtrCacheMisses, obs.CtrCacheMismatches,
			obs.CtrCachePutErrors, obs.CtrCacheEvictions, obs.CtrCacheCorrupt:
			s.tsdb.Mark(c.Name, c.Value)
		}
	}
	s.tsdb.Tick(tsNS)
}

// setBusy moves the runners-busy gauge by delta.
func (s *Server) setBusy(delta int64) {
	s.mu.Lock()
	s.busy += delta
	b := s.busy
	s.mu.Unlock()
	s.tsdb.Set(obs.TSRunnersBusy, b)
}

// Get returns the job with the given id.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// Submit registers a campaign. The returned job is, in order of
// preference: the live job already computing this fingerprint
// (deduplicated), a terminal job served from memory or the persisted
// job store (cache), or a freshly queued job. Failed and canceled
// campaigns are requeued on resubmission and resume from their
// checkpoint when one exists.
//
// The returned body is the canonical response for this submission,
// snapshotted before any runner can touch the job: a fresh submission
// always answers in the "queued" form, a cache hit always answers with
// the persisted "done" form.
func (s *Server) Submit(spec Spec) (j *Job, body []byte, errs *Error) {
	lane := s.httpLane()
	spec, camp, errs := spec.Resolve()
	if errs != nil {
		// A rejected spec has no fingerprint, so every rejection shares
		// one deterministic request-span identity and no trace.
		req := s.rec.StartSpan(obs.SpanHTTPRequest, lane, obs.String(obs.AttrEndpoint, endpointSubmit))
		req.StartSpan(obs.SpanValidate, lane).End()
		req.Event(obs.EvSubmitOutcome, obs.String(obs.AttrOutcome, OutcomeRejected))
		req.End()
		return nil, nil, errs
	}
	fp := camp.Fingerprint()
	id := fp[:16]

	// The request trace is content-addressed: every submission of the
	// same campaign joins the same trace, in every run and process.
	trace := obs.NewTraceID(obs.SpanCampaign, fp)
	req := s.rec.StartSpan(obs.SpanHTTPRequest, lane,
		obs.String(obs.AttrEndpoint, endpointSubmit), obs.String(obs.AttrJob, id)).InTrace(trace)
	defer req.End()
	// The span is created after Resolve has run (its identity needs the
	// fingerprint), so the validate child records structure, not timing;
	// real-track durations are non-canonical anyway.
	req.StartSpan(obs.SpanValidate, lane).End()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		req.Event(obs.EvSubmitOutcome, obs.String(obs.AttrOutcome, OutcomeRejected))
		return nil, nil, &Error{Status: 503, Code: "shutting_down", Message: "server is shutting down"}
	}
	outcome := OutcomeQueued
	if j, ok := s.jobs[id]; ok {
		switch j.State() {
		case StateFailed, StateCanceled:
			// Retry: fall through to enqueue a fresh job object under
			// the same id; its checkpoint (if any) makes it a resume.
			outcome = OutcomeRequeued
		default:
			s.rec.Add(obs.CtrJobsDeduped, 1)
			req.Event(obs.EvSubmitOutcome, obs.String(obs.AttrOutcome, OutcomeDeduped))
			return j, j.StatusBytes(), nil
		}
	}

	j = newJob(id, fp, spec, camp, s.seq)
	s.seq++

	if status, result, ok := s.loadPersisted(id); ok {
		// The job is not yet published (jobs map, queue), so nothing
		// races here - but the guarded fields are written under j.mu
		// anyway, keeping the lock discipline uniform and provable.
		j.mu.Lock()
		j.state = StateDone
		j.source = SourceCache
		j.status = status
		j.result = result
		j.traceDone, j.sweepDone = j.traceTotal, j.sweepTotal
		j.mu.Unlock()
		close(j.done)
		s.jobs[id] = j
		s.rec.Add(obs.CtrJobsCached, 1)
		req.Event(obs.EvSubmitOutcome, obs.String(obs.AttrOutcome, OutcomeCached))
		return j, status, nil
	}

	// Snapshot the queued body while still holding s.mu: runners
	// dequeue under the same mutex, so no execution state can leak into
	// a submission response.
	enq := req.StartSpan(obs.SpanEnqueue, lane)
	body = j.StatusBytes()
	j.trace = trace
	j.reqSpan = req.ID()
	// The queue-wait span stays open until a runner dequeues the job
	// (or it is canceled while queued); see endWaitLocked. Taking j.mu
	// under s.mu matches the global lock order (Server.mu -> Job.mu).
	j.mu.Lock()
	j.waitSpan = req.StartSpan(obs.SpanQueueWait, lane)
	j.mu.Unlock()
	s.jobs[id] = j
	s.q.push(j)
	s.rec.Add(obs.CtrJobsSubmitted, 1)
	enq.End()
	req.Event(obs.EvSubmitOutcome, obs.String(obs.AttrOutcome, outcome))
	s.tsdb.Set(obs.TSQueueDepth, int64(s.q.len()))
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return j, body, nil
}

// Cancel stops the job with the given id: a queued job is canceled
// immediately, a running one has its context cancelled and reaches the
// canceled state when its runner unwinds (its checkpoint survives).
func (s *Server) Cancel(id string) (*Job, *Error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, &Error{Status: 404, Code: "unknown_campaign", Message: fmt.Sprintf("no campaign %q", id)}
	}
	if q := s.q.remove(id); q != nil {
		j.mu.Lock()
		j.endWaitLocked()
		j.finishLocked(StateCanceled)
		j.mu.Unlock()
		s.rec.Add(obs.CtrJobsCanceled, 1)
		s.tsdb.Set(obs.TSQueueDepth, int64(s.q.len()))
		return j, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return nil, &Error{Status: 409, Code: "not_cancelable", Message: fmt.Sprintf("campaign is already %s", j.state)}
	}
	j.canceling = true
	if j.cancel != nil {
		j.cancel()
	}
	return j, nil
}

// next pops the highest-priority queued job and marks it running; nil
// when the queue is empty.
func (s *Server) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.q.pop()
	if j == nil {
		return nil
	}
	j.mu.Lock()
	j.endWaitLocked()
	j.state = StateRunning
	j.publishLocked(Event{State: StateRunning})
	j.mu.Unlock()
	s.tsdb.Set(obs.TSQueueDepth, int64(s.q.len()))
	return j
}

// runner is one campaign-execution loop. After finishing a job it
// re-polls the queue before blocking, so a wake dropped while it was
// busy cannot strand queued work.
func (s *Server) runner(ctx context.Context, lane int) {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			select {
			case <-ctx.Done():
				return
			case <-s.wake:
				continue
			}
		}
		s.runJob(ctx, lane, j)
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

// runJob executes one campaign with per-job isolation: its own cancel
// scope, its own recorder, its own checkpoint file. The shared trace
// cache is the only cross-job resource, and it is keyed by content, so
// sharing never changes bytes.
func (s *Server) runJob(ctx context.Context, lane int, j *Job) {
	s.setBusy(1)
	defer s.setBusy(-1)
	// j.trace/j.reqSpan were pinned before the job became dequeueable
	// (under s.mu in Submit), so reading them without j.mu is safe.
	span := s.rec.StartSpan(obs.SpanCampaign, lane, obs.String(obs.AttrJob, j.id)).InTrace(j.trace)
	span.Link(j.reqSpan)

	// The job's private recorder mirrors the daemon's capture level so
	// its pipeline spans can be adopted into the request trace when the
	// job finishes; while it runs, ForwardTo feeds them to live-stream
	// watchers stamped with the trace and the campaign span as parent.
	jrec := obs.New()
	if s.rec.TracingEnabled() {
		jrec.EnableTracing()
	}
	if s.rec.SimEnabled() {
		jrec.EnableSim()
	}
	jrec.ForwardTo(s.rec, j.trace, span.ID())
	env := measure.Env{
		Workers:    s.cfg.Workers,
		TraceCache: s.cfg.TraceCache,
		Obs:        jrec,
		Notify:     j.notify,
	}
	if s.cfg.JobDir != "" {
		env.Checkpoint = s.checkpointPath(j.id)
		env.CheckpointEvery = s.cfg.CheckpointEvery
	}
	jctx, jcancel := context.WithCancel(ctx)
	defer jcancel()
	j.mu.Lock()
	j.cancel = jcancel
	if j.canceling {
		// Cancel raced the dequeue; honour it before doing any work.
		jcancel()
	}
	j.mu.Unlock()

	ds, rep, err := j.camp.Run(jctx, env)
	// Adoption folds the whole job recorder - counters, histograms,
	// stage timers and (when tracing) its spans and events, re-parented
	// under the campaign span as one connected trace - into the daemon
	// recorder behind /metrics and /debug/obs-trace. Both the adoption
	// and the span close happen before the job turns terminal, so a
	// client woken by the done channel always sees the full trace.
	s.rec.Adopt(jrec.Snapshot(), j.trace, span.ID())
	span.End()

	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	// Counters are bumped before finishLocked closes the done channel:
	// a woken waiter must see the terminal counter state.
	switch {
	case err != nil && (j.canceling || ctx.Err() != nil):
		j.errMsg = ""
		s.rec.Add(obs.CtrJobsCanceled, 1)
		j.finishLocked(StateCanceled)
	case err != nil:
		j.errMsg = err.Error()
		s.rec.Add(obs.CtrJobsFailed, 1)
		j.finishLocked(StateFailed)
	default:
		var buf bytes.Buffer
		if werr := ds.WriteCSV(&buf); werr != nil {
			j.errMsg = werr.Error()
			s.rec.Add(obs.CtrJobsFailed, 1)
			j.finishLocked(StateFailed)
			break
		}
		j.report = rep
		j.resumed = rep.Resumed
		j.result = buf.Bytes()
		s.rec.Add(obs.CtrJobsCompleted, 1)
		j.finishLocked(StateDone)
		s.persist(j)
	}
}

// checkpointPath names the job's resumable shard file.
func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.cfg.JobDir, id+".ckpt")
}

// persist writes the terminal status and result bytes atomically and
// retires the checkpoint. Persistence failures are recorded on the
// daemon recorder but do not fail the job: the in-memory result is
// still valid. Caller holds j.mu (reads only pinned terminal bytes).
func (s *Server) persist(j *Job) {
	if s.cfg.JobDir == "" {
		return
	}
	if err := writeFileAtomic(filepath.Join(s.cfg.JobDir, j.id+".result.csv"), j.result); err != nil {
		return
	}
	if err := writeFileAtomic(filepath.Join(s.cfg.JobDir, j.id+".status.json"), j.status); err != nil {
		return
	}
	_ = os.Remove(s.checkpointPath(j.id)) // best-effort: a stale ckpt only costs a resume
}

// loadPersisted returns the terminal bytes persisted for id by an
// earlier run (possibly of an earlier server process). The status must
// parse and be done; anything less is treated as a miss.
func (s *Server) loadPersisted(id string) (status, result []byte, ok bool) {
	if s.cfg.JobDir == "" {
		return nil, nil, false
	}
	status, err := os.ReadFile(filepath.Join(s.cfg.JobDir, id+".status.json"))
	if err != nil {
		return nil, nil, false
	}
	result, err = os.ReadFile(filepath.Join(s.cfg.JobDir, id+".result.csv"))
	if err != nil {
		return nil, nil, false
	}
	var st Status
	if json.Unmarshal(status, &st) != nil || st.State != StateDone || st.ID != id {
		return nil, nil, false
	}
	return status, result, true
}

// writeFileAtomic writes data via a temp file and rename, so readers
// (and crashed writers) never observe a partial file.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // best-effort: the write error is the one worth reporting
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}
