package server

import "testing"

func qjob(id string, priority int, seq uint64) *Job {
	return &Job{id: id, priority: priority, seq: seq}
}

// TestQueueOrder pins the scheduling proof: pop order is exactly
// (priority descending, submission sequence ascending), regardless of
// push order.
func TestQueueOrder(t *testing.T) {
	var q queue
	q.push(qjob("c", 0, 2))
	q.push(qjob("a", 0, 0))
	q.push(qjob("e", 5, 4))
	q.push(qjob("b", 0, 1))
	q.push(qjob("d", 5, 3))
	want := []string{"d", "e", "a", "b", "c"}
	for i, id := range want {
		j := q.pop()
		if j == nil || j.id != id {
			t.Fatalf("pop %d = %v, want %s", i, j, id)
		}
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue should be nil")
	}
}

func TestQueueRemove(t *testing.T) {
	var q queue
	q.push(qjob("a", 0, 0))
	q.push(qjob("b", 0, 1))
	q.push(qjob("c", 0, 2))
	if j := q.remove("b"); j == nil || j.id != "b" {
		t.Fatalf("remove(b) = %v", j)
	}
	if j := q.remove("b"); j != nil {
		t.Fatalf("second remove(b) = %v, want nil", j)
	}
	if q.len() != 2 {
		t.Fatalf("len = %d, want 2", q.len())
	}
	if a, c := q.pop(), q.pop(); a.id != "a" || c.id != "c" {
		t.Fatalf("pop order after remove: %s, %s", a.id, c.id)
	}
}
