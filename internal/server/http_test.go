package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got with testdata/<name>, rewriting under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/server -update` to create goldens)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: response is not byte-identical to golden\ngot:  %s\nwant: %s", name, got, want)
	}
}

// httpServer boots a server plus its HTTP front end.
func httpServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// pausedServer boots a server whose runners have already exited, so
// submissions stay queued forever: deterministic "not ready" states.
func pausedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := New(Config{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// testSpecJSON is the wire form of testSpec, used by the golden suite.
const testSpecJSON = `{"seed":7,"runs":2,"chips":["M4000","GTX1080"],"apps":["bfs-wl"],"inputs":["rand-8k"],"configs":["baseline","sg"]}`

// TestHTTPGoldenLifecycle pins the submit, status and result bodies of
// one campaign byte-for-byte.
func TestHTTPGoldenLifecycle(t *testing.T) {
	s, ts := httpServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/campaigns", testSpecJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderSource); got != SourceFresh {
		t.Errorf("%s = %q, want fresh", HeaderSource, got)
	}
	golden(t, "submit_queued.golden.json", body)

	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	j, ok := s.Get(st.ID)
	if !ok {
		t.Fatalf("submitted job %q not registered", st.ID)
	}
	waitDone(t, j)

	resp, result := get(t, ts.URL+"/v1/campaigns/"+st.ID+"/result")
	if resp.StatusCode != 200 {
		t.Fatalf("result status = %d: %s", resp.StatusCode, result)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("result content-type = %q", ct)
	}
	if got := resp.Header.Get(HeaderResumed); got != "0" {
		t.Errorf("%s = %q, want 0", HeaderResumed, got)
	}
	golden(t, "result.golden.csv", result)
	if want := referenceBytes(t, testSpec()); !bytes.Equal(result, want) {
		t.Fatal("HTTP result differs from direct measure run")
	}

	resp, status := get(t, ts.URL+"/v1/campaigns/"+st.ID)
	if resp.StatusCode != 200 {
		t.Fatalf("status status = %d: %s", resp.StatusCode, status)
	}
	golden(t, "status_done.golden.json", status)
}

// TestHTTPCacheServedResponses proves a restarted server answers with
// the exact bytes of the original run, flagged as cache in headers.
func TestHTTPCacheServedResponses(t *testing.T) {
	jobDir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a, err := New(Config{Ctx: ctx, JobDir: jobDir})
	if err != nil {
		t.Fatal(err)
	}
	ja := submit(t, a, testSpec())
	waitDone(t, ja)
	wantStatus := ja.StatusBytes()
	wantResult, errs := ja.Result()
	if errs != nil {
		t.Fatal(errs)
	}
	a.Close()

	_, ts := httpServer(t, Config{JobDir: jobDir})
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", testSpecJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderSource); got != SourceCache {
		t.Errorf("%s = %q, want cache", HeaderSource, got)
	}
	if !bytes.Equal(body, wantStatus) {
		t.Fatal("cache-served submit body differs from original status bytes")
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	_, result := get(t, ts.URL+"/v1/campaigns/"+st.ID+"/result")
	if !bytes.Equal(result, wantResult) {
		t.Fatal("cache-served result differs from original bytes")
	}
}

// TestHTTPErrorTable pins the structured 4xx surface of the API.
func TestHTTPErrorTable(t *testing.T) {
	_, ts := pausedServer(t)
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		status   int
		code     string
		field    string
		contains string
	}{
		{"malformed json", "POST", "/v1/campaigns", `{"seed":`, 400, "bad_json", "", "unexpected EOF"},
		{"unknown field", "POST", "/v1/campaigns", `{"sede":1}`, 400, "bad_json", "", "unknown field"},
		{"bad chip", "POST", "/v1/campaigns", `{"chips":["H100"]}`, 400, "bad_spec", "chips", "unknown chip"},
		{"empty config subspace", "POST", "/v1/campaigns", `{"configs":[]}`, 400, "bad_spec", "configs", "empty"},
		{"malformed graph spec", "POST", "/v1/campaigns", `{"inputs":["twitter-2010"]}`, 400, "bad_spec", "inputs", "unknown input"},
		{"bad fault profile", "POST", "/v1/campaigns", `{"faults":"explode=yes"}`, 400, "bad_spec", "faults", "unknown spec key"},
		{"runs out of range", "POST", "/v1/campaigns", `{"runs":65}`, 400, "bad_spec", "runs", "1..64"},
		{"status of unknown id", "GET", "/v1/campaigns/deadbeef00000000", "", 404, "unknown_campaign", "", "deadbeef"},
		{"result of unknown id", "GET", "/v1/campaigns/deadbeef00000000/result", "", 404, "unknown_campaign", "", ""},
		{"events of unknown id", "GET", "/v1/campaigns/deadbeef00000000/events", "", 404, "unknown_campaign", "", ""},
		{"cancel of unknown id", "DELETE", "/v1/campaigns/deadbeef00000000", "", 404, "unknown_campaign", "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var e Error
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body is not JSON: %s", body)
			}
			if e.Code != tc.code || e.Field != tc.field {
				t.Errorf("error = %+v, want code %s field %q", e, tc.code, tc.field)
			}
			if tc.contains != "" && !strings.Contains(e.Message, tc.contains) {
				t.Errorf("message %q does not mention %q", e.Message, tc.contains)
			}
			if !bytes.HasSuffix(body, []byte("\n")) {
				t.Error("error body missing trailing newline")
			}
		})
	}
}

// TestHTTPResultNotReady pins the 409 for a queued campaign.
func TestHTTPResultNotReady(t *testing.T) {
	_, ts := pausedServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", testSpecJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/v1/campaigns/"+st.ID+"/result")
	if resp.StatusCode != 409 {
		t.Fatalf("result status = %d, want 409: %s", resp.StatusCode, body)
	}
	if want := `{"code":"not_ready","message":"campaign is queued"}` + "\n"; string(body) != want {
		t.Errorf("409 body = %q, want %q", body, want)
	}
}

// TestHTTPResultWait exercises the blocking form of the result fetch.
func TestHTTPResultWait(t *testing.T) {
	_, ts := httpServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", testSpecJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	resp, result := get(t, ts.URL+"/v1/campaigns/"+st.ID+"/result?wait=1")
	if resp.StatusCode != 200 {
		t.Fatalf("wait result status = %d: %s", resp.StatusCode, result)
	}
	if want := referenceBytes(t, testSpec()); !bytes.Equal(result, want) {
		t.Fatal("waited result differs from direct measure run")
	}
}

// TestHTTPEventStream reads the NDJSON progress stream to its end: every
// line parses as an Event and the final line is the terminal state.
func TestHTTPEventStream(t *testing.T) {
	_, ts := httpServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/campaigns", testSpecJSON)
	if resp.StatusCode != 200 {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	stream, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content-type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("stream produced no events")
	}
	last := events[len(events)-1]
	if !last.State.terminal() {
		t.Fatalf("last event = %+v, want terminal state", last)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.State == "" && ev.Total == 0 {
			t.Errorf("event %+v has neither phase totals nor a state", ev)
		}
	}
}

// TestHTTPCancel cancels a queued campaign over the API.
func TestHTTPCancel(t *testing.T) {
	s, ts := pausedServer(t)
	_, body := postJSON(t, ts.URL+"/v1/campaigns", testSpecJSON)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/campaigns/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	j, _ := s.Get(st.ID)
	if j.State() != StateCanceled {
		t.Fatalf("state = %s, want canceled", j.State())
	}
	_, statusBody := get(t, ts.URL+"/v1/campaigns/"+st.ID)
	var canceled Status
	if err := json.Unmarshal(statusBody, &canceled); err != nil {
		t.Fatal(err)
	}
	if canceled.State != StateCanceled {
		t.Fatalf("status body state = %s, want canceled", canceled.State)
	}
}

// TestHTTPList exercises the campaign listing.
func TestHTTPList(t *testing.T) {
	_, ts := pausedServer(t)
	postJSON(t, ts.URL+"/v1/campaigns", testSpecJSON)
	postJSON(t, ts.URL+"/v1/campaigns", `{"seed":8,"chips":["M4000"],"apps":["bfs-wl"],"inputs":["rand-8k"],"configs":["baseline"]}`)
	resp, body := get(t, ts.URL+"/v1/campaigns")
	if resp.StatusCode != 200 {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	var list struct {
		Campaigns []Status `json:"campaigns"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 2 {
		t.Fatalf("list has %d campaigns, want 2", len(list.Campaigns))
	}
	if list.Campaigns[0].Spec.Seed != 7 || list.Campaigns[1].Spec.Seed != 8 {
		t.Fatalf("list not in submission order: %s", body)
	}
}

// TestHTTPMetricsAndTrace checks the observability endpoints carry the
// job counters and a Chrome trace after a campaign completes.
func TestHTTPMetricsAndTrace(t *testing.T) {
	s, ts := httpServer(t, Config{})
	j := submit(t, s, testSpec())
	waitDone(t, j)

	resp, metrics := get(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		fmt.Sprintf("gpuport_counter_total{name=%q} 1", "jobs-submitted"),
		fmt.Sprintf("gpuport_counter_total{name=%q} 1", "jobs-completed"),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	resp, trace := get(t, ts.URL+"/debug/obs-trace")
	if resp.StatusCode != 200 {
		t.Fatalf("obs-trace status = %d", resp.StatusCode)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &tr); err != nil {
		t.Fatalf("obs-trace is not Chrome trace JSON: %v", err)
	}
	if !strings.Contains(string(trace), `"campaign"`) {
		t.Error("obs-trace missing the campaign span")
	}
}

// TestHTTPHealthz checks the liveness probe.
func TestHTTPHealthz(t *testing.T) {
	_, ts := pausedServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}
