package stats

import (
	"math"
	"testing"
)

func TestMAD(t *testing.T) {
	if !math.IsNaN(MAD(nil)) {
		t.Error("MAD(nil) should be NaN")
	}
	if got := MAD([]float64{1, 1, 1}); got != 0 {
		t.Errorf("MAD of constants = %v, want 0", got)
	}
	// Median 3, deviations {2,1,0,1,2} -> MAD 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
}

func TestRejectOutliersKeepsCleanSamples(t *testing.T) {
	xs := []float64{0.98, 1.0, 1.03}
	kept, rejected := RejectOutliers(xs, 8, 0.5)
	if rejected != 0 || len(kept) != 3 {
		t.Fatalf("clean samples quarantined: kept %v rejected %d", kept, rejected)
	}
}

func TestRejectOutliersCatchesCorruption(t *testing.T) {
	// One inflated and one truncated reading around a clean trio.
	xs := []float64{1.01, 97.0, 0.99, 1.02, 0.002}
	kept, rejected := RejectOutliers(xs, 8, 0.5)
	if rejected != 2 {
		t.Fatalf("rejected = %d, want 2 (kept %v)", rejected, kept)
	}
	want := []float64{1.01, 0.99, 1.02}
	if len(kept) != len(want) {
		t.Fatalf("kept = %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Errorf("kept[%d] = %v, want %v (order must be preserved)", i, kept[i], want[i])
		}
	}
}

func TestRejectOutliersFloorGuardsCollapsedMAD(t *testing.T) {
	// Two near-identical values collapse the MAD; the relative floor
	// must keep the third genuine reading.
	xs := []float64{1.0, 1.0, 1.1}
	if kept, rejected := RejectOutliers(xs, 8, 0.5); rejected != 0 || len(kept) != 3 {
		t.Fatalf("floor failed: kept %v rejected %d", kept, rejected)
	}
	// ... while a grossly corrupted third value is still caught.
	xs = []float64{1.0, 1.0, 40.0}
	if _, rejected := RejectOutliers(xs, 8, 0.5); rejected != 1 {
		t.Fatalf("corruption survived collapsed MAD: rejected %d", rejected)
	}
}

func TestRejectOutliersTinySamples(t *testing.T) {
	xs := []float64{1, 100}
	kept, rejected := RejectOutliers(xs, 8, 0.5)
	if rejected != 0 || len(kept) != 2 {
		t.Errorf("n<3 must not reject: kept %v rejected %d", kept, rejected)
	}
}

func TestRejectOutliersScaleInvariant(t *testing.T) {
	base := []float64{0.97, 1.0, 1.04, 55.0, 1.01}
	for _, scale := range []float64{1, 3.5e6, 1e-9} {
		xs := make([]float64, len(base))
		for i, x := range base {
			xs[i] = x * scale
		}
		_, rejected := RejectOutliers(xs, 8, 0.5)
		if rejected != 1 {
			t.Errorf("scale %g: rejected = %d, want 1", scale, rejected)
		}
	}
}
