// Package stats provides the statistical machinery used throughout the
// study: descriptive statistics (median, geometric mean, quantiles), the
// Mann-Whitney U rank test with tie correction, common-language effect
// sizes, confidence intervals for small samples, and a deterministic
// pseudo-random number generator used to model measurement noise.
//
// Everything in this package is deterministic given its inputs; the PRNG
// is seeded explicitly so dataset generation is reproducible bit-for-bit.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via SplitMix64). It is intentionally independent
// of math/rand so that the study's noise model cannot drift across Go
// releases.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed non-zero internal state for any seed value.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform. Two uniforms are consumed per call; no state is cached, so
// interleaving with other draws remains deterministic.
func (r *RNG) NormFloat64() float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a multiplicative noise factor exp(sigma * Z) where Z
// is standard normal. sigma around 0.01-0.05 models the run-to-run
// timing jitter seen on real GPU stacks (the paper notes OpenCL's lack
// of device timers makes its measurements "somewhat noisy").
func (r *RNG) LogNormal(sigma float64) float64 {
	return math.Exp(sigma * r.NormFloat64())
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator from the current one. The child
// stream is decorrelated from the parent by mixing a fixed constant into
// a fresh seed drawn from the parent.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}
