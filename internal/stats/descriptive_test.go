package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, math.NaN()},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("median of empty should be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("GeoMean(ones) = %v, want 1", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, 0, 2})) {
		t.Error("GeoMean with zero should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{-1})) {
		t.Error("GeoMean with negative should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean of empty should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
}

func TestGeoMeanLogIdentity(t *testing.T) {
	// Property: geomean(xs) == exp(mean(log(xs))) for positive xs.
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		m := int(n%20) + 1
		xs := make([]float64, m)
		logs := make([]float64, m)
		for i := range xs {
			xs[i] = 0.001 + r.Float64()*100
			logs[i] = math.Log(xs[i])
		}
		return almostEqual(GeoMean(xs), math.Exp(Mean(logs)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianBetweenMinAndMax(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		m := int(n%30) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		med := Median(xs)
		return med >= Min(xs) && med <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 17)
		for i := range xs {
			xs[i] = r.Float64() * 50
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
