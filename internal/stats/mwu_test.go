package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMWUEmptyInputs(t *testing.T) {
	r := MannWhitneyU(nil, []float64{1, 2, 3})
	if !math.IsNaN(r.P) || r.Significant(0.05) {
		t.Errorf("empty sample should give NaN p, got %v", r.P)
	}
	r = MannWhitneyU([]float64{1}, nil)
	if !math.IsNaN(r.P) {
		t.Errorf("empty sample should give NaN p, got %v", r.P)
	}
}

func TestMWUIdenticalSamples(t *testing.T) {
	a := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	r := MannWhitneyU(a, a)
	if r.Significant(0.05) {
		t.Errorf("identical constant samples must not be significant, p=%v", r.P)
	}
	if !almostEqual(r.CL, 0.5, 1e-12) {
		t.Errorf("CL of identical samples = %v, want 0.5", r.CL)
	}
}

func TestMWUClearSeparation(t *testing.T) {
	// A entirely below B: strongly significant, CL = 1 (every a < every b).
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	r := MannWhitneyU(a, b)
	if !r.Significant(0.05) {
		t.Errorf("separated samples should be significant, p=%v", r.P)
	}
	if !almostEqual(r.CL, 1, 1e-12) {
		t.Errorf("CL = %v, want 1", r.CL)
	}
	// Reversed direction.
	r2 := MannWhitneyU(b, a)
	if !r2.Significant(0.05) {
		t.Errorf("reversed should also be significant, p=%v", r2.P)
	}
	if !almostEqual(r2.CL, 0, 1e-12) {
		t.Errorf("reversed CL = %v, want 0", r2.CL)
	}
}

func TestMWUSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := make([]float64, 15)
		b := make([]float64, 12)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := range b {
			b[i] = r.NormFloat64() + 0.3
		}
		r1 := MannWhitneyU(a, b)
		r2 := MannWhitneyU(b, a)
		// p-values agree; CL values are complementary.
		return almostEqual(r1.P, r2.P, 1e-9) && almostEqual(r1.CL+r2.CL, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMWUShiftedDistributionsDetected(t *testing.T) {
	r := NewRNG(77)
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 1.0
	}
	res := MannWhitneyU(a, b)
	if !res.Significant(0.01) {
		t.Errorf("1-sigma shift with n=60 should be highly significant, p=%v", res.P)
	}
	if res.CL < 0.7 {
		t.Errorf("CL = %v, expected > 0.7 for a 1-sigma shift", res.CL)
	}
}

func TestMWUNoFalsePositivesRate(t *testing.T) {
	// Under the null, the 5% test should reject roughly 5% of the time.
	r := NewRNG(101)
	rejects := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 20)
		b := make([]float64, 20)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		if MannWhitneyU(a, b).Significant(0.05) {
			rejects++
		}
	}
	rate := float64(rejects) / trials
	if rate > 0.10 {
		t.Errorf("false positive rate = %v, want around 0.05", rate)
	}
}

func TestMWUHandlesTies(t *testing.T) {
	// Heavy ties should not blow up the variance computation.
	a := []float64{1, 1, 1, 2, 2, 2, 3, 3}
	b := []float64{2, 2, 3, 3, 3, 4, 4, 4}
	r := MannWhitneyU(a, b)
	if math.IsNaN(r.P) || r.P < 0 || r.P > 1 {
		t.Errorf("p out of range with ties: %v", r.P)
	}
	if r.CL <= 0.5 {
		t.Errorf("A is stochastically smaller; CL = %v, want > 0.5", r.CL)
	}
}

func TestMWUKnownSmallExample(t *testing.T) {
	// Hand-computed example: A = {1,2,3}, B = {4,5,6}.
	// U_A(pairs a<b) = 9 of 9, CL = 1. With n=3 each the normal
	// approximation gives |z| ~ 1.75..2.0, p ~ 0.05..0.08: not
	// necessarily significant, but direction must be right.
	r := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6})
	if !almostEqual(r.CL, 1, 1e-12) {
		t.Errorf("CL = %v, want 1", r.CL)
	}
	if r.U != 9 {
		t.Errorf("U = %v, want 9", r.U)
	}
	if r.P < 0 || r.P > 1 {
		t.Errorf("p out of range: %v", r.P)
	}
}

func TestMWUPValueInRange(t *testing.T) {
	f := func(seed uint64, na, nb uint8) bool {
		r := NewRNG(seed)
		la := int(na%30) + 1
		lb := int(nb%30) + 1
		a := make([]float64, la)
		b := make([]float64, lb)
		for i := range a {
			a[i] = math.Round(r.NormFloat64()*4) / 4 // induce ties
		}
		for i := range b {
			b[i] = math.Round(r.NormFloat64()*4) / 4
		}
		res := MannWhitneyU(a, b)
		return res.P >= 0 && res.P <= 1 && res.CL >= 0 && res.CL <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
