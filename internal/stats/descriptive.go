package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or NaN for an empty slice. The input
// is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values yield NaN (timings and ratios are always > 0 in
// this study, so a NaN flags a pipeline bug loudly rather than silently
// skewing a summary).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Variance returns the unbiased sample variance (n-1 denominator), or
// NaN when fewer than two samples are supplied.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the default
// of R and NumPy). It returns NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return Min(xs)
	}
	if q >= 1 {
		return Max(xs)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
