package stats

import (
	"math"
	"sort"
)

// MWUResult reports the outcome of a two-sided Mann-Whitney U test.
type MWUResult struct {
	// U is the test statistic for the first sample (number of pairs
	// (a, b) with a < b, counting ties as one half).
	U float64
	// Z is the standardised statistic under the normal approximation
	// with tie correction.
	Z float64
	// P is the two-sided p-value.
	P float64
	// CL is the common-language effect size: the probability that a
	// randomly chosen element of A is smaller than a randomly chosen
	// element of B (ties counted half). For normalised runtimes where
	// smaller means faster, CL is the probability the optimisation wins.
	CL float64
	// NA and NB record the sample sizes.
	NA, NB int
}

// Significant reports whether the null hypothesis (identical
// distributions) is rejected at the given alpha, e.g. 0.05.
func (r MWUResult) Significant(alpha float64) bool {
	return !math.IsNaN(r.P) && r.P < alpha
}

// MannWhitneyU performs a two-sided Mann-Whitney U test comparing
// samples a and b, using the normal approximation with continuity and
// tie corrections. This is the paper's rank-based, magnitude-agnostic
// significance test (Section III-A): it asks whether one sample is
// stochastically smaller than the other without regard to by how much.
//
// The approximation is standard for n >= 8 combined; the study's A/B
// lists hold dozens to hundreds of entries, far above that. For tiny or
// empty inputs the result carries P = NaN (never significant).
func MannWhitneyU(a, b []float64) MWUResult {
	na, nb := len(a), len(b)
	res := MWUResult{NA: na, NB: nb, P: math.NaN(), CL: math.NaN()}
	if na == 0 || nb == 0 {
		return res
	}

	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, na+nb)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks to tied groups and accumulate the tie
	// correction term sum(t^3 - t).
	n := na + nb
	ranks := make([]float64, n)
	tieTerm := 0.0
	for i := 0; i < n; {
		j := i
		//lint:allow floatcmp tie groups need exact equality; a tolerance would merge distinct ranks
		for j < n && all[j].v == all[i].v {
			j++
		}
		// Observations i..j-1 are tied; mid-rank is the average of
		// ranks i+1..j (1-based).
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}

	ra := 0.0
	for i, o := range all {
		if o.fromA {
			ra += ranks[i]
		}
	}
	fa, fb := float64(na), float64(nb)
	ua := ra - fa*(fa+1)/2 // U statistic counting pairs where a > b (+half ties)
	// CL as defined above wants P(a < b), which is 1 - ua/(na*nb).
	res.U = fa*fb - ua
	res.CL = res.U / (fa * fb)

	mu := fa * fb / 2
	fn := float64(n)
	varU := fa * fb / 12 * ((fn + 1) - tieTerm/(fn*(fn-1)))
	if varU <= 0 {
		// All observations identical: no evidence of any difference.
		res.Z = 0
		res.P = 1
		return res
	}
	// Continuity correction of 0.5 toward the mean.
	d := ua - mu
	switch {
	case d > 0:
		d -= 0.5
	case d < 0:
		d += 0.5
	}
	z := d / math.Sqrt(varU)
	res.Z = z
	res.P = 2 * normSF(math.Abs(z))
	if res.P > 1 {
		res.P = 1
	}
	return res
}

// normSF is the standard normal survival function 1 - Phi(x).
func normSF(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}
