package stats

import "math"

// Robust outlier machinery for the fault-tolerant measurement harness:
// corrupted timing samples (truncated or wildly inflated readings from a
// hung queue, a clock rollover, a driver hiccup) are quarantined before
// they reach any mean, so one bad reading cannot poison a cell.

// MAD returns the median absolute deviation of xs: the median of
// |x - median(xs)|. It is the standard robust scale estimator (50%
// breakdown point) and returns NaN for an empty slice.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// RejectOutliers partitions xs into kept values (original order
// preserved) and a rejected count. A value is rejected when its distance
// from the median exceeds max(k*MAD, floorFrac*|median|).
//
// The relative floor matters for tiny samples: with three timings two of
// which are nearly identical, the MAD collapses towards zero and a pure
// k*MAD rule would reject the third genuine reading. The floor keeps any
// value within floorFrac of the median, so only gross corruption (far
// outside the run-to-run noise envelope) is quarantined. With fewer than
// three values there is no basis for rejection and xs is kept whole.
//
// The rule is scale-invariant: multiplying every value by a positive
// constant scales the median, the MAD and the floor identically, so the
// same elements are rejected. The fault-injection replay path relies on
// this to reconstruct quarantine decisions from unit-base noise factors.
func RejectOutliers(xs []float64, k, floorFrac float64) (kept []float64, rejected int) {
	if len(xs) < 3 {
		return xs, 0
	}
	med := Median(xs)
	limit := math.Max(k*MAD(xs), floorFrac*math.Abs(med))
	kept = make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.Abs(x-med) > limit {
			rejected++
			continue
		}
		kept = append(kept, x)
	}
	return kept, rejected
}
