package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTCritical95(t *testing.T) {
	if !almostEqual(TCritical95(2), 4.303, 1e-9) {
		t.Errorf("df=2: %v", TCritical95(2))
	}
	if TCritical95(1000) != 1.96 {
		t.Errorf("large df should fall back to 1.96, got %v", TCritical95(1000))
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestCI95Degenerate(t *testing.T) {
	iv := CI95([]float64{5})
	if iv.Lo != 5 || iv.Hi != 5 {
		t.Errorf("single sample CI = %v, want [5,5]", iv)
	}
	iv = CI95(nil)
	if !math.IsNaN(iv.Lo) {
		t.Errorf("empty CI should be NaN, got %v", iv)
	}
}

func TestCI95ContainsMean(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		m := int(n%10) + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		iv := CI95(xs)
		mean := Mean(xs)
		return iv.Lo <= mean && mean <= iv.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCI95ThreeRuns(t *testing.T) {
	// Hand check with the df=2 critical value 4.303.
	xs := []float64{10, 11, 12}
	iv := CI95(xs)
	half := 4.303 * StdDev(xs) / math.Sqrt(3)
	if !almostEqual(iv.Lo, 11-half, 1e-9) || !almostEqual(iv.Hi, 11+half, 1e-9) {
		t.Errorf("CI = %v, want 11 +- %v", iv, half)
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{0, 2}
	cases := []struct {
		b    Interval
		want bool
	}{
		{Interval{1, 3}, true},
		{Interval{2, 3}, true}, // touching counts as overlap
		{Interval{2.1, 3}, false},
		{Interval{-5, -1}, false},
		{Interval{-1, 5}, true}, // containment
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("overlap not symmetric for %v", c.b)
		}
	}
}

func TestSignificantlyDifferent(t *testing.T) {
	tight1 := []float64{10.0, 10.1, 9.9}
	tight2 := []float64{20.0, 20.1, 19.9}
	if !SignificantlyDifferent(tight1, tight2) {
		t.Error("clearly separated tight samples should be significant")
	}
	noisy1 := []float64{10, 30, 20}
	noisy2 := []float64{15, 35, 25}
	if SignificantlyDifferent(noisy1, noisy2) {
		t.Error("overlapping noisy samples should not be significant")
	}
	if SignificantlyDifferent(nil, tight1) {
		t.Error("empty sample can never be significant")
	}
}

func TestSignificantlyDifferentSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		a := []float64{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
		b := []float64{5 + r.Float64()*10, 5 + r.Float64()*10, 5 + r.Float64()*10}
		return SignificantlyDifferent(a, b) == SignificantlyDifferent(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
