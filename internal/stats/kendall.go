package stats

import "math"

// KendallTau computes Kendall's tau-b rank correlation between two
// paired samples, with tie correction. It is used by the robustness
// tooling to compare configuration rankings (Table III) obtained from
// different measurement seeds: tau near 1 means the ranking is stable
// against timing noise, addressing the paper's concern that performance
// analysis "can be confounded by chance effects".
//
// Returns NaN for fewer than two pairs or when either sample is
// entirely tied.
func KendallTau(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return math.NaN()
	}
	var concordant, discordant float64
	var tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				// Tied in both: contributes to neither denominator term.
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case (dx > 0) == (dy > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if denom == 0 {
		return math.NaN()
	}
	return (concordant - discordant) / denom
}
