package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKendallTauPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := KendallTau(x, x); !almostEqual(got, 1, 1e-12) {
		t.Errorf("tau(x,x) = %v, want 1", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := KendallTau(x, rev); !almostEqual(got, -1, 1e-12) {
		t.Errorf("tau(x,rev) = %v, want -1", got)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// Classic example: one discordant pair among C(4,2)=6.
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 2, 4, 3}
	if got := KendallTau(x, y); !almostEqual(got, 4.0/6.0, 1e-12) {
		t.Errorf("tau = %v, want 2/3", got)
	}
}

func TestKendallTauDegenerate(t *testing.T) {
	if !math.IsNaN(KendallTau([]float64{1}, []float64{2})) {
		t.Error("single pair should be NaN")
	}
	if !math.IsNaN(KendallTau([]float64{1, 2}, []float64{3})) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("fully tied x should be NaN")
	}
}

func TestKendallTauWithTies(t *testing.T) {
	// Ties reduce the magnitude but keep the sign.
	x := []float64{1, 2, 2, 3}
	y := []float64{1, 2, 3, 4}
	got := KendallTau(x, y)
	if got <= 0.7 || got >= 1 {
		t.Errorf("tau with ties = %v, want strong positive below 1", got)
	}
}

func TestKendallTauProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 20
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		tau := KendallTau(x, y)
		if math.IsNaN(tau) {
			return false
		}
		// Bounded, symmetric, and anti-symmetric under negation.
		if tau < -1 || tau > 1 {
			return false
		}
		if !almostEqual(tau, KendallTau(y, x), 1e-12) {
			return false
		}
		neg := make([]float64, n)
		for i := range y {
			neg[i] = -y[i]
		}
		return almostEqual(tau, -KendallTau(x, neg), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
