package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", m)
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			if r.LogNormal(0.05) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogNormalZeroSigmaIsOne(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10; i++ {
		if v := r.LogNormal(0); v != 1 {
			t.Fatalf("LogNormal(0) = %v, want exactly 1", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		m := int(n % 50)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForkDecorrelates(t *testing.T) {
	parent := NewRNG(123)
	child := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked stream matches parent on %d/100 draws", same)
	}
}
