package stats

import "math"

// tCritical95 holds two-sided 95% critical values of Student's t
// distribution indexed by degrees of freedom. The study compares sets of
// three timed runs (df = 2 for a single sample's CI), so only small df
// matter; beyond the table we fall back to the asymptotic 1.96.
var tCritical95 = []float64{
	math.NaN(), // df 0: undefined
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% critical t value for the given
// degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < len(tCritical95) {
		return tCritical95[df]
	}
	return 1.96
}

// Interval is a closed interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Overlaps reports whether the two intervals intersect.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// CI95 returns the 95% confidence interval for the mean of xs using
// Student's t distribution. With fewer than two samples the interval is
// degenerate at the single value (or NaN for none), which makes the
// overlap test conservative: a degenerate interval still has to fall
// outside the other interval to be called different.
func CI95(xs []float64) Interval {
	n := len(xs)
	switch n {
	case 0:
		return Interval{math.NaN(), math.NaN()}
	case 1:
		return Interval{xs[0], xs[0]}
	}
	m := Mean(xs)
	half := TCritical95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
	return Interval{m - half, m + half}
}

// SignificantlyDifferent implements the paper's SIGNIFICANT predicate
// (Algorithm 1, line 14): two sets of timed runs differ when their 95%
// confidence intervals do not overlap. This gates which normalised
// runtimes enter the Mann-Whitney A/B lists, filtering out pure noise
// before the rank test sees it.
func SignificantlyDifferent(a, b []float64) bool {
	ia, ib := CI95(a), CI95(b)
	if math.IsNaN(ia.Lo) || math.IsNaN(ib.Lo) {
		return false
	}
	return !ia.Overlaps(ib)
}
