package measure

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gpuport/internal/chip"
	"gpuport/internal/dataset"
	"gpuport/internal/fault"
	"gpuport/internal/opt"
)

// faultyOptions is smallOptions plus a fault profile exercising every
// failure mode.
func faultyOptions() Options {
	o := smallOptions()
	o.Faults = &fault.Profile{
		Seed:      13,
		Transient: 0.05,
		Hang:      0.02,
		Corrupt:   0.05,
		Dropout:   1,
	}
	return o
}

// datasetCSV marshals a dataset for bit-identical comparison.
func datasetCSV(t *testing.T, d *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameOutcomes compares the scheduling-independent fault-outcome fields
// of two reports (Resumed is provenance and may differ).
func sameOutcomes(t *testing.T, a, b *Report) {
	t.Helper()
	if a.Cells != b.Cells || a.Measured != b.Measured || a.Retried != b.Retried ||
		a.Attempts != b.Attempts || a.Quarantined != b.Quarantined || a.WaitNS != b.WaitNS {
		t.Errorf("report counters differ:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(a.Failures, b.Failures) {
		t.Errorf("failure lists differ:\n%v\n%v", a.Failures, b.Failures)
	}
	if !reflect.DeepEqual(a.FailuresByKind, b.FailuresByKind) {
		t.Errorf("failure kinds differ: %v vs %v", a.FailuresByKind, b.FailuresByKind)
	}
}

func TestZeroRateFaultsBitIdentical(t *testing.T) {
	plain, err := Collect(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := smallOptions()
	o.Faults = &fault.Profile{Seed: 99} // zero rates: layer active, nothing fires
	faulted, rep, err := CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetCSV(t, plain), datasetCSV(t, faulted)) {
		t.Fatal("zero-rate fault profile changed the dataset")
	}
	if !rep.Complete() || rep.Retried != 0 || rep.Quarantined != 0 {
		t.Errorf("zero-rate profile produced fault activity: %+v", rep)
	}
}

func TestFaultedCollectDeterministicAcrossWorkers(t *testing.T) {
	var ref []byte
	var refRep *Report
	for _, workers := range []int{1, 8, 3} {
		o := faultyOptions()
		o.Workers = workers
		d, rep, err := CollectReport(o)
		if err != nil {
			t.Fatal(err)
		}
		csv := datasetCSV(t, d)
		if ref == nil {
			ref, refRep = csv, rep
			if len(rep.Failures) == 0 {
				t.Fatal("fault profile with dropout=1 produced no failures; test is vacuous")
			}
			continue
		}
		if !bytes.Equal(ref, csv) {
			t.Errorf("workers=%d produced a different dataset", workers)
		}
		sameOutcomes(t, refRep, rep)
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	ref, refRep, err := CollectReport(faultyOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Simulate an interrupted sweep: persist roughly half the measured
	// cells (what a killed process leaves behind), then resume.
	half := dataset.New()
	i := 0
	for _, tp := range ref.Tuples() {
		for _, cfg := range opt.All() {
			if s := ref.Samples(tp, cfg); s != nil && i%2 == 0 {
				half.Add(dataset.Record{Key: dataset.Key{Tuple: tp, Config: cfg}, Samples: s})
			}
			i++
		}
	}
	path := filepath.Join(t.TempDir(), "ck.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := half.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o := faultyOptions()
	o.Checkpoint = path
	o.CheckpointEvery = 1
	resumed, rep, err := CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != half.Len() {
		t.Errorf("Resumed = %d, want %d", rep.Resumed, half.Len())
	}
	if !bytes.Equal(datasetCSV(t, ref), datasetCSV(t, resumed)) {
		t.Fatal("resumed dataset differs from uninterrupted run")
	}
	sameOutcomes(t, refRep, rep)

	// The finished checkpoint file is itself the complete dataset.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fromCk := loadCheckpointRows(raw)
	if fromCk == nil || fromCk.Len() != ref.Len() {
		t.Fatalf("checkpoint holds %v records, want %d", fromCk.Len(), ref.Len())
	}
}

func TestCancelMidSweepThenResume(t *testing.T) {
	ref, _, err := CollectReport(faultyOptions())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ck.csv")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel as soon as the first shards hit the disk; if the sweep
		// wins the race the first phase just completes in full.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st, err := os.Stat(path); err == nil && st.Size() > 64 {
				break
			}
		}
		cancel()
	}()
	o := faultyOptions()
	o.Ctx = ctx
	o.Checkpoint = path
	o.CheckpointEvery = 1
	o.Workers = 1
	d, _, err := CollectReport(o)
	cancel()
	if err == nil {
		// The sweep outran the canceller; it must then be complete.
		if !bytes.Equal(datasetCSV(t, ref), datasetCSV(t, d)) {
			t.Fatal("uncancelled sweep differs from reference")
		}
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Resume from whatever the interrupted run persisted.
	o = faultyOptions()
	o.Checkpoint = path
	resumed, _, err := CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetCSV(t, ref), datasetCSV(t, resumed)) {
		t.Fatal("resume after cancellation differs from uninterrupted run")
	}
}

func TestContextCancelledBeforeSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := smallOptions()
	o.Ctx = ctx
	if _, err := Collect(o); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("pipe burst") }

func TestProgressWriteErrorPropagates(t *testing.T) {
	o := smallOptions()
	o.Progress = failingWriter{}
	if _, err := Collect(o); err == nil {
		t.Fatal("progress write error was swallowed")
	}
}

func TestChipDropoutGracefulDegradation(t *testing.T) {
	o := smallOptions()
	o.Faults = &fault.Profile{Seed: 4, Dropout: 1}
	d, rep, err := CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DropoutChip == "" {
		t.Fatal("dropout=1 scheduled no dropout")
	}
	if rep.Complete() {
		t.Fatal("whole-chip dropout left the dataset complete")
	}
	if d.Len() == 0 {
		t.Fatal("dropout wiped the entire dataset")
	}
	if d.Len()+len(rep.Failures) != rep.Cells {
		t.Errorf("accounting broken: %d records + %d failures != %d cells",
			d.Len(), len(rep.Failures), rep.Cells)
	}
	for _, f := range rep.Failures {
		if f.Reason != fault.Dropout {
			t.Errorf("unexpected failure kind %v for %v", f.Reason, f.Key)
		}
		if f.Key.Chip != rep.DropoutChip {
			t.Errorf("failure on %s but dropout hit %s", f.Key.Chip, rep.DropoutChip)
		}
	}
	// The surviving chip is fully covered.
	for _, ch := range o.Chips {
		if ch.Name == rep.DropoutChip {
			continue
		}
		for _, tp := range d.Tuples() {
			if tp.Chip != ch.Name {
				continue
			}
			for _, cfg := range opt.All() {
				if d.Samples(tp, cfg) == nil {
					t.Fatalf("surviving chip %s missing cell %v/%v", ch.Name, tp, cfg)
				}
			}
		}
	}
}

func TestRetriesHealTransientFaults(t *testing.T) {
	o := smallOptions()
	o.Faults = &fault.Profile{Seed: 8, Transient: 0.2, Hang: 0.05}
	d, rep, err := CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retried == 0 {
		t.Fatal("20% transient rate triggered no retries")
	}
	if rep.WaitNS <= 0 {
		t.Error("retries accumulated no virtual backoff time")
	}
	// With 4 retries at these rates virtually every cell heals.
	if rep.Coverage() < 0.99 {
		t.Errorf("coverage %.3f, want >= 0.99 (retries should heal transients)", rep.Coverage())
	}
	// Cells that healed on a retry carry retry-stream samples, so they
	// differ from the fault-free sweep - but cells that never faulted
	// must be bit-identical to it.
	clean, err := Collect(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, tp := range clean.Tuples() {
		for _, cfg := range opt.All() {
			a, b := clean.Samples(tp, cfg), d.Samples(tp, cfg)
			if a != nil && b != nil && reflect.DeepEqual(a, b) {
				same++
			}
		}
	}
	if same == 0 {
		t.Error("no cell survived fault injection untouched; noise streams are entangled")
	}
}

func TestCheckpointHealsTruncatedRow(t *testing.T) {
	// A process killed mid-append leaves a truncated final line; the
	// loader must skip it and the appender must not corrupt the file.
	path := filepath.Join(t.TempDir(), "ck.csv")
	ref, err := Collect(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	tp := ref.Tuples()[0]
	good := dataset.New()
	good.Add(dataset.Record{
		Key:     dataset.Key{Tuple: tp, Config: opt.Config{}},
		Samples: ref.Samples(tp, opt.Config{}),
	})
	var buf bytes.Buffer
	if err := good.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(tp.Chip + "," + tp.App) // truncated row, no newline
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	o := smallOptions()
	o.Checkpoint = path
	d, rep, err := CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1 (the intact row)", rep.Resumed)
	}
	if rep.CheckpointError != "" {
		t.Errorf("checkpoint error: %s", rep.CheckpointError)
	}
	if !bytes.Equal(datasetCSV(t, ref), datasetCSV(t, d)) {
		t.Fatal("dataset differs after healing a truncated checkpoint")
	}
	// The healed file must now load cleanly and completely.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := loadCheckpointRows(raw); got == nil || got.Len() != ref.Len() {
		t.Fatalf("healed checkpoint holds %v records, want %d", got.Len(), ref.Len())
	}
}

func TestWorkersOptionRespected(t *testing.T) {
	// Workers beyond the job count must not deadlock or change results.
	o := smallOptions()
	o.Workers = 64
	a, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetCSV(t, a), datasetCSV(t, b)) {
		t.Fatal("worker count changed the dataset")
	}
}

func TestCleanReportShape(t *testing.T) {
	_, rep, err := CollectReport(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 1 * len(opt.All())
	if rep.Cells != want || rep.Measured != want {
		t.Errorf("cells/measured = %d/%d, want %d", rep.Cells, rep.Measured, want)
	}
	if rep.Coverage() != 1 || !rep.Complete() || rep.Eventful() {
		t.Errorf("clean run misreported: %+v", rep)
	}
	if rep.Attempts != want {
		t.Errorf("attempts = %d, want %d", rep.Attempts, want)
	}
}

// TestDroppedChipStillListedInChips documents that a chip wiped from
// cell 0 simply never appears in the dataset dimensions - the report is
// the only place that knows the intended grid.
func TestDroppedChipStillListedInChips(t *testing.T) {
	o := smallOptions()
	// Find a seed whose dropout starts at cell 0 by scanning plans.
	names := []string{o.Chips[0].Name, o.Chips[1].Name}
	cells := 2 * len(opt.All())
	for seed := uint64(0); seed < 200; seed++ {
		in := fault.NewInjector(fault.Profile{Seed: seed, Dropout: 1}, names, cells)
		if _, from, ok := in.DropoutPlan(); ok && from == 0 {
			o.Faults = &fault.Profile{Seed: seed, Dropout: 1}
			break
		}
	}
	if o.Faults == nil {
		t.Skip("no seed under 200 drops a chip at cell 0; widen the scan if this trips (#27)")
	}
	d, rep, err := CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DropoutFrom != 0 {
		t.Fatalf("expected cell-0 dropout, got from=%d", rep.DropoutFrom)
	}
	if len(d.Chips()) != 1 {
		t.Errorf("dataset chips = %v, want only the survivor", d.Chips())
	}
	if len(rep.Failures) != cells {
		t.Errorf("failures = %d, want %d (the whole chip)", len(rep.Failures), cells)
	}
	_ = chip.All // keep import shape stable if smallOptions changes
}
