package measure

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"gpuport/internal/apps"
	"gpuport/internal/cost"
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
	"gpuport/internal/obs"
	"gpuport/internal/tracecache"
)

// tracePair is one (input, application) unit of the trace phase, in the
// canonical input-major order the serial harness always used.
type tracePair struct {
	in  *graph.Graph
	app apps.App
}

func tracePairs(o *Options) []tracePair {
	pairs := make([]tracePair, 0, len(o.Inputs)*len(o.Apps))
	for _, in := range o.Inputs {
		for _, app := range o.Apps {
			pairs = append(pairs, tracePair{in, app})
		}
	}
	return pairs
}

// orderedProgress serialises per-pair progress lines back into the
// canonical pair order, whatever order the workers complete in, so the
// -v output of a parallel run is byte-identical to a serial run's.
type orderedProgress struct {
	w     io.Writer
	mu    sync.Mutex
	lines []string
	ready []bool
	next  int
}

func newOrderedProgress(w io.Writer, n int) *orderedProgress {
	return &orderedProgress{w: w, lines: make([]string, n), ready: make([]bool, n)}
}

// emit records pair i's line and flushes every line that is now next in
// order. Write errors abort the run (matching the serial harness).
func (p *orderedProgress) emit(i int, line string) error {
	if p.w == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lines[i], p.ready[i] = line, true
	for p.next < len(p.ready) && p.ready[p.next] {
		if _, err := io.WriteString(p.w, p.lines[p.next]); err != nil {
			return fmt.Errorf("measure: progress writer: %w", err)
		}
		p.lines[p.next] = ""
		p.next++
	}
	return nil
}

// Traces obtains the cost-model profile of every (application, input)
// pair. Exposed separately so microbenchmarks and examples can reuse
// traces without collecting a full dataset.
//
// Pairs are traced concurrently by a worker pool (o.Workers, default
// GOMAXPROCS); the returned slice is in the canonical input-major order
// and bit-identical for any worker count, because every pair writes to
// a pre-assigned slot and applications are deterministic. When
// o.TraceCache is set, a pair whose trace is already cached under
// (app, app version, input fingerprint, validate flag) skips execution
// entirely; fresh traces are written back so an interrupted trace phase
// resumes where it left off. Cancelling o.Ctx stops the pool between
// pairs and returns the context's error.
func Traces(o Options) ([]*cost.TraceProfile, error) {
	o.fill()
	defer o.Obs.Start(obs.StageTrace)()
	phase := o.Obs.StartSpan(obs.StageTrace, 0)
	defer phase.End()
	pairs := tracePairs(&o)

	// Fingerprint each input once, not once per pair: hashing a large
	// graph 17 times would eat a good slice of a warm run's win.
	var fps map[*graph.Graph]string
	if o.TraceCache != nil {
		fps = make(map[*graph.Graph]string, len(o.Inputs))
		for _, in := range o.Inputs {
			fps[in] = in.Fingerprint()
		}
	}

	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}

	// The first failure (validation, progress write) cancels the pool;
	// o.Ctx cancellation is distinguished from it on the way out.
	ctx, cancel := context.WithCancel(o.Ctx)
	defer cancel()
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	results := make([]*cost.TraceProfile, len(pairs))
	prog := newOrderedProgress(o.Progress, len(pairs))
	var pairsDone atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without starting new work
				}
				p := pairs[i]
				// Span identity comes from (app, input); the worker id is
				// only the export lane, so the trace canonicalises
				// identically at any worker count.
				sp := phase.StartSpan(obs.SpanTracePair, w,
					obs.String(obs.AttrApp, p.app.Name), obs.String(obs.AttrInput, p.in.Name))
				tr, cached, err := traceOne(&o, p, fps[p.in])
				if err != nil {
					sp.End()
					fail(err)
					continue
				}
				if cached {
					sp.Event(obs.EvTraceCached)
				}
				recordWorkload(&o, tr, i)
				sp.End()
				results[i] = cost.NewTraceProfile(tr)
				verb := "traced"
				if cached {
					verb = "cached"
				}
				if err := prog.emit(i, fmt.Sprintf("%s %s on %s: %d launches, %d edge work\n",
					verb, tr.App, tr.Input, tr.TotalLaunches(), tr.TotalEdgeWork())); err != nil {
					fail(err)
				}
				if o.Notify != nil {
					o.Notify(obs.StageTrace, int(pairsDone.Add(1)), len(pairs))
				}
			}
		}(w)
	}
feed:
	for i := range pairs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if err := o.Ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// traceOne produces the trace of one pair, through the cache when one
// is configured. The reported cached flag is true for a cache hit.
func traceOne(o *Options, p tracePair, fp string) (*irgl.Trace, bool, error) {
	var key tracecache.Key
	if o.TraceCache != nil {
		key = tracecache.Key{App: p.app.Name, AppVersion: p.app.Version, GraphFP: fp, Validated: o.Validate}
		if tr, ok := o.TraceCache.Get(key); ok {
			// Belt and braces: the key's fingerprint already pins the
			// identity, but a tampered entry with a valid checksum must
			// still never impersonate another pair.
			if tr.App == p.app.Name && tr.Input == p.in.Name {
				o.Obs.Add(obs.CtrCacheHits, 1)
				return tr, true, nil
			}
			o.Obs.Add(obs.CtrCacheMismatches, 1)
		}
		o.Obs.Add(obs.CtrCacheMisses, 1)
	}
	tr, output := p.app.Run(p.in)
	if o.Validate {
		if err := p.app.Check(p.in, output); err != nil {
			return nil, false, fmt.Errorf("measure: %s on %s failed validation: %w", p.app.Name, p.in.Name, err)
		}
	}
	if o.TraceCache != nil {
		// A failed write is an observability event, not a failure: the
		// trace is good, it just will not be cached.
		if err := o.TraceCache.Put(key, tr); err != nil {
			o.Obs.Add(obs.CtrCachePutErrors, 1)
		}
	}
	return tr, false, nil
}

// recordWorkload accumulates the simulated-workload accounting of one
// traced pair: launch/edge/push totals, the per-launch frontier and
// edge-work histograms (batched worker-locally, merged once), and -
// when the recorder captures the simulated timeline - the pair's
// virtual kernel timeline on lane pairIdx.
func recordWorkload(o *Options, tr *irgl.Trace, pairIdx int) {
	o.Obs.Add(obs.CtrKernelLaunches, int64(tr.TotalLaunches()))
	o.Obs.Add(obs.CtrEdgeWork, tr.TotalEdgeWork())
	o.Obs.Add(obs.CtrAtomicPushes, tr.TotalAtomicPushes())
	var frontier, edges obs.Hist
	for i := range tr.Launches {
		frontier.Observe(tr.Launches[i].Items)
		edges.Observe(tr.Launches[i].TotalWork)
	}
	o.Obs.MergeHist(obs.HistFrontier, &frontier)
	o.Obs.MergeHist(obs.HistLaunchEdges, &edges)
	tr.EmitSim(o.Obs, pairIdx)
}
