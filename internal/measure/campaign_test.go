package measure

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"gpuport/internal/fault"
	"gpuport/internal/opt"
)

func TestCampaignFingerprintStable(t *testing.T) {
	a := NewCampaign(smallOptions()).Fingerprint()
	b := NewCampaign(smallOptions()).Fingerprint()
	if a != b {
		t.Fatalf("fingerprint not stable: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length = %d, want 64 hex chars", len(a))
	}
}

func TestCampaignFingerprintSensitive(t *testing.T) {
	base := NewCampaign(smallOptions()).Fingerprint()
	mutate := map[string]func(*Options){
		"seed":     func(o *Options) { o.Seed++ },
		"runs":     func(o *Options) { o.Runs++ },
		"validate": func(o *Options) { o.Validate = true },
		"chips":    func(o *Options) { o.Chips = o.Chips[:1] },
		"apps":     func(o *Options) { o.Apps = o.Apps[:1] },
		"configs":  func(o *Options) { o.Configs = []opt.Config{{}} },
		"faults":   func(o *Options) { o.Faults = &fault.Profile{Seed: 9, Transient: 0.1} },
	}
	for name, f := range mutate {
		o := smallOptions()
		f(&o)
		if got := NewCampaign(o).Fingerprint(); got == base {
			t.Errorf("%s: fingerprint unchanged by identity mutation", name)
		}
	}
}

func TestCampaignFingerprintIgnoresBindings(t *testing.T) {
	o := smallOptions()
	base := NewCampaign(o).Fingerprint()
	o.Workers = 7
	o.Checkpoint = "x.csv"
	o.Progress = &bytes.Buffer{}
	if got := NewCampaign(o).Fingerprint(); got != base {
		t.Fatalf("runtime bindings changed the fingerprint")
	}
}

// TestConfigsSubspaceBitIdentical proves the subspace contract: a sweep
// restricted to a config subset reproduces exactly the matching cells
// of the full sweep, bit for bit.
func TestConfigsSubspaceBitIdentical(t *testing.T) {
	full, err := Collect(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	sub := smallOptions()
	sub.Configs = []opt.Config{{}, {SG: true}, {SG: true, SZ256: true}}
	part, err := Collect(sub)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(full.Tuples()) * len(sub.Configs); part.Len() != want {
		t.Fatalf("subspace records = %d, want %d", part.Len(), want)
	}
	for _, tp := range part.Tuples() {
		for _, cfg := range sub.Configs {
			got := part.Samples(tp, cfg)
			want := full.Samples(tp, cfg)
			if len(got) == 0 {
				t.Fatalf("%v/%v: missing in subspace run", tp, cfg)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v/%v run %d: subspace %v != full %v", tp, cfg, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCampaignRunMatchesCollect proves the job object is a pure
// re-packaging: Campaign.Run with a zero Env produces the same CSV
// bytes as the one-shot Collect entry point.
func TestCampaignRunMatchesCollect(t *testing.T) {
	direct, err := Collect(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds, rep, err := NewCampaign(smallOptions()).Run(context.Background(), Env{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("campaign incomplete: %d/%d", rep.Measured, rep.Cells)
	}
	var a, b bytes.Buffer
	if err := direct.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Campaign.Run CSV differs from Collect CSV")
	}
}

// TestNotifyProgress checks the coarse progress callback: both phases
// report every completion and converge on done == total.
func TestNotifyProgress(t *testing.T) {
	o := smallOptions()
	var mu sync.Mutex
	calls := map[string]int{}
	final := map[string][2]int{}
	o.Notify = func(phase string, done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls[phase]++
		if cur := final[phase]; done > cur[0] {
			final[phase] = [2]int{done, total}
		}
	}
	if _, err := Collect(o); err != nil {
		t.Fatal(err)
	}
	pairs := len(o.Apps) * len(o.Inputs)
	jobs := len(o.Chips) * pairs
	if got := final["trace"]; got != [2]int{pairs, pairs} {
		t.Errorf("trace progress = %v, want [%d %d]", got, pairs, pairs)
	}
	if got := final["sweep"]; got != [2]int{jobs, jobs} {
		t.Errorf("sweep progress = %v, want [%d %d]", got, jobs, jobs)
	}
	if calls["trace"] != pairs || calls["sweep"] != jobs {
		t.Errorf("notify calls = %v, want %d trace / %d sweep", calls, pairs, jobs)
	}
}
