// Package measure is the experiment harness: it runs every application
// on every input once to obtain execution traces, then sweeps all
// chips and optimisation configurations through the cost model, taking
// several noisy timing samples per cell, and assembles the study
// dataset.
package measure

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"

	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/cost"
	"gpuport/internal/dataset"
	"gpuport/internal/graph"
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// Options configures a collection run.
type Options struct {
	// Seed drives the measurement noise streams. The same seed yields
	// a bit-identical dataset regardless of iteration order.
	Seed uint64
	// Runs is the number of timed samples per cell (the paper: 3).
	Runs int
	// Chips, Apps, Inputs restrict the sweep; nil means all.
	Chips  []chip.Chip
	Apps   []apps.App
	Inputs []*graph.Graph
	// Progress, when non-nil, receives one line per (app, input) pair
	// as traces are gathered.
	Progress io.Writer
	// Validate re-checks every application output against its
	// reference implementation while tracing.
	Validate bool
}

func (o *Options) fill() {
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Chips == nil {
		o.Chips = chip.All()
	}
	if o.Apps == nil {
		o.Apps = apps.All()
	}
	if o.Inputs == nil {
		o.Inputs = graph.StandardInputs()
	}
}

// Collect produces the full dataset for the configured sweep. Cost
// evaluation is parallelised across (chip, trace) pairs; the assembled
// dataset is bit-identical regardless of parallelism because every
// record is written to a pre-assigned slot and the per-cell noise
// streams are keyed, not sequential.
func Collect(o Options) (*dataset.Dataset, error) {
	o.fill()
	profiles, err := Traces(o)
	if err != nil {
		return nil, err
	}
	configs := opt.All()

	type job struct{ chipIdx, traceIdx int }
	jobs := make([]job, 0, len(o.Chips)*len(profiles))
	for ci := range o.Chips {
		for ti := range profiles {
			jobs = append(jobs, job{ci, ti})
		}
	}
	records := make([]dataset.Record, len(jobs)*len(configs))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range next {
				ch := o.Chips[jobs[ji].chipIdx]
				tp := profiles[jobs[ji].traceIdx]
				// Each goroutine owns a disjoint slice region; no locks
				// are needed and the final order is deterministic.
				out := records[ji*len(configs) : (ji+1)*len(configs)]
				for k, cfg := range configs {
					base := cost.Estimate(ch, cfg, tp)
					out[k] = dataset.Record{
						Key: dataset.Key{
							Tuple:  dataset.Tuple{Chip: ch.Name, App: tp.App, Input: tp.Input},
							Config: cfg,
						},
						Samples: samples(base, ch, cfg, tp.App, tp.Input, o),
					}
				}
			}
		}()
	}
	for ji := range jobs {
		next <- ji
	}
	close(next)
	wg.Wait()

	d := dataset.New()
	for i := range records {
		d.Add(records[i])
	}
	return d, nil
}

// Traces runs every (application, input) pair once and returns the
// cost-model profiles. Exposed separately so microbenchmarks and
// examples can reuse traces without collecting a full dataset.
func Traces(o Options) ([]*cost.TraceProfile, error) {
	o.fill()
	var out []*cost.TraceProfile
	for _, in := range o.Inputs {
		for _, app := range o.Apps {
			tr, output := app.Run(in)
			if o.Validate {
				if err := app.Check(in, output); err != nil {
					return nil, fmt.Errorf("measure: %s on %s failed validation: %w", app.Name, in.Name, err)
				}
			}
			out = append(out, cost.NewTraceProfile(tr))
			if o.Progress != nil {
				fmt.Fprintf(o.Progress, "traced %s on %s: %d launches, %d edge work\n",
					app.Name, in.Name, tr.TotalLaunches(), tr.TotalEdgeWork())
			}
		}
	}
	return out, nil
}

// samples draws o.Runs noisy timings around base. The noise stream is
// keyed by (seed, chip, app, input, config) so each cell's samples are
// independent of sweep order.
func samples(base float64, ch chip.Chip, cfg opt.Config, app, input string, o Options) []float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%s", o.Seed, ch.Name, app, input, cfg.String())
	rng := stats.NewRNG(h.Sum64())
	out := make([]float64, o.Runs)
	for i := range out {
		out[i] = base * rng.LogNormal(ch.NoiseSigma)
	}
	return out
}
