// Package measure is the experiment harness: it runs every application
// on every input once to obtain execution traces, then sweeps all
// chips and optimisation configurations through the cost model, taking
// several noisy timing samples per cell, and assembles the study
// dataset.
//
// The harness is built to survive the failure modes of a real
// multi-vendor campaign (see internal/fault): cells retry transient
// launch failures with capped exponential backoff, hung launches are
// cut off by a deadline, corrupted samples are quarantined by robust
// outlier rejection, and a cell that exhausts its retries - or sits on
// a dropped-out chip - is recorded as missing with a reason rather than
// aborting the sweep. Long sweeps can persist completed shards to a
// checkpoint file and resume bit-identically after an interruption.
package measure

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/cost"
	"gpuport/internal/cost/columnar"
	"gpuport/internal/dataset"
	"gpuport/internal/fault"
	"gpuport/internal/graph"
	"gpuport/internal/obs"
	"gpuport/internal/opt"
	"gpuport/internal/tracecache"
)

// Options configures a collection run.
type Options struct {
	// Seed drives the measurement noise streams. The same seed yields
	// a bit-identical dataset regardless of iteration order.
	Seed uint64
	// Runs is the number of timed samples per cell (the paper: 3).
	Runs int
	// Chips, Apps, Inputs restrict the sweep; nil means all.
	Chips  []chip.Chip
	Apps   []apps.App
	Inputs []*graph.Graph
	// Configs restricts the optimisation-configuration axis; nil means
	// the full 96-configuration grid. Because both the noise and the
	// fault streams are keyed per cell (not sequential), a subspace
	// sweep produces bit-for-bit the same samples as the matching cells
	// of a full-grid sweep under the same seed.
	Configs []opt.Config
	// Progress, when non-nil, receives one line per (app, input) pair
	// as traces are gathered. Write errors abort the run.
	Progress io.Writer
	// Notify, when non-nil, receives coarse progress events as the run
	// advances: phase is obs.StageTrace or obs.StageSweep, done/total
	// count completed units (trace pairs, (chip, trace) sweep jobs).
	// It is called concurrently from worker goroutines and must be
	// safe for concurrent use; done counts are monotonic per phase but
	// the interleaving across phases is scheduling-dependent, so
	// notifications feed progress displays, never datasets.
	Notify func(phase string, done, total int)
	// Validate re-checks every application output against its
	// reference implementation while tracing.
	Validate bool

	// Ctx, when non-nil, cancels the sweep: tracing stops between
	// applications and the worker pool drains without starting new
	// jobs. Completed shards are still flushed to the checkpoint, so a
	// cancelled sweep can resume.
	Ctx context.Context
	// Workers caps the cost-evaluation worker pool; 0 means GOMAXPROCS.
	// The dataset is bit-identical for any worker count.
	Workers int
	// Faults, when non-nil, enables deterministic fault injection with
	// the embedded retry/backoff/deadline policy.
	Faults *fault.Profile
	// Checkpoint names a CSV file for incremental shard persistence:
	// completed cells are appended as the sweep runs, and cells already
	// present are resumed (skipped bit-identically) instead of
	// re-measured.
	Checkpoint string
	// CheckpointEvery flushes the checkpoint after this many completed
	// (chip, trace) jobs (default 4).
	CheckpointEvery int

	// ReferenceCost forces the sweep through the reference
	// cost.Estimate path instead of the columnar engine
	// (internal/cost/columnar). The dataset is bit-identical either
	// way - the conform differential property enforces it - so the
	// switch exists only for benchmarking and triage.
	ReferenceCost bool

	// TraceCache, when non-nil, short-circuits the trace phase through
	// the content-addressed store: pairs whose traces are cached skip
	// execution entirely, and fresh traces are written back. The
	// resulting dataset is bit-identical to an uncached run.
	TraceCache *tracecache.Store
	// Obs receives stage timings (trace, sweep, assemble) and cache
	// hit/miss counters; nil allocates a private recorder whose summary
	// lands in the collection report.
	Obs *obs.Recorder
}

func (o *Options) fill() {
	o.fillGrid()
	if o.Ctx == nil {
		//lint:allow ctxprop Options.fill is the documented default for callers that pass no context
		o.Ctx = context.Background()
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 4
	}
	if o.Obs == nil {
		o.Obs = obs.New()
	}
}

// fillGrid resolves the semantic sweep grid (the campaign's identity:
// what is measured, under which seed and policy) without touching the
// runtime bindings (context, recorder, cache, workers). Split from
// fill so Campaign.Fingerprint can normalise identity without
// allocating execution resources.
func (o *Options) fillGrid() {
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Chips == nil {
		o.Chips = chip.All()
	}
	if o.Apps == nil {
		o.Apps = apps.All()
	}
	if o.Inputs == nil {
		o.Inputs = graph.StandardInputs()
	}
	if o.Configs == nil {
		o.Configs = opt.All()
	}
}

// cellKey is the canonical identity of one measured cell; it keys both
// the measurement-noise and the fault-decision streams. The format is
// frozen: attempt-0 noise must reproduce the historical fault-free
// stream so that enabling a zero-rate fault profile changes nothing.
func cellKey(seed uint64, chipName, app, input string, cfg opt.Config) string {
	return fmt.Sprintf("%d|%s|%s|%s|%s", seed, chipName, app, input, cfg.String())
}

// cellState tracks the fault bookkeeping of one cell slot.
type cellState struct {
	attempts    int
	quarantined int
	waitNS      float64
	failed      fault.Kind
	measured    bool
	resumed     bool
}

// Collect produces the dataset for the configured sweep, discarding the
// collection report. See CollectReport.
func Collect(o Options) (*dataset.Dataset, error) {
	d, _, err := CollectReport(o)
	return d, err
}

// CollectReport produces the dataset for the configured sweep plus a
// report accounting for every cell: measured, resumed from checkpoint,
// retried, or missing with the fault kind that killed it. Cost
// evaluation runs on the columnar engine - traces are converted to
// columns once and reused across the full config x chip x sample grid -
// unless o.ReferenceCost selects the reference path; both produce the
// same bits. Evaluation is parallelised across (chip, trace) pairs; the
// assembled dataset is bit-identical regardless of parallelism because every
// record is written to a pre-assigned slot and both the noise and the
// fault streams are keyed per cell, not sequential.
//
// Under fault injection the dataset may be partial; it is returned
// (not an error) together with the report, and the analysis layer
// degrades gracefully to the covered cells.
func CollectReport(o Options) (*dataset.Dataset, *Report, error) {
	o.fill()
	ctx := o.Ctx
	profiles, err := Traces(o)
	if err != nil {
		return nil, nil, err
	}
	// Columnar form of every trace, built once per (app, input) and
	// shared read-only across the whole config x chip x sample grid.
	var cols []*columnar.Columns
	if !o.ReferenceCost {
		cols = make([]*columnar.Columns, len(profiles))
		for i, tp := range profiles {
			cols[i] = columnar.Build(tp)
		}
	}
	stopSweep := o.Obs.Start(obs.StageSweep)
	sweepSpan := o.Obs.StartSpan(obs.StageSweep, 0)
	configs := o.Configs
	nc := len(configs)

	type job struct{ chipIdx, traceIdx int }
	jobs := make([]job, 0, len(o.Chips)*len(profiles))
	for ci := range o.Chips {
		for ti := range profiles {
			jobs = append(jobs, job{ci, ti})
		}
	}
	records := make([]dataset.Record, len(jobs)*nc)
	cells := make([]cellState, len(jobs)*nc)

	var ck *checkpoint
	var resumeSet *dataset.Dataset
	if o.Checkpoint != "" {
		ck, resumeSet, err = openCheckpoint(o.Checkpoint, o.Runs, o.CheckpointEvery)
		if err != nil {
			return nil, nil, err
		}
	}

	var inj *fault.Injector
	if o.Faults != nil {
		names := make([]string, len(o.Chips))
		for i, ch := range o.Chips {
			names[i] = ch.Name
		}
		inj = fault.NewInjector(*o.Faults, names, len(profiles)*nc)
	}

	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var jobsDone atomic.Int64
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ji := range next {
				if ctx.Err() != nil {
					continue // drain without starting new work
				}
				ch := o.Chips[jobs[ji].chipIdx]
				tp := profiles[jobs[ji].traceIdx]
				// Span identity is (chip, app, input); the worker id is
				// only the export lane (see traces.go).
				jobSpan := sweepSpan.StartSpan(obs.SpanSweepJob, w,
					obs.String(obs.AttrChip, ch.Name),
					obs.String(obs.AttrApp, tp.App),
					obs.String(obs.AttrInput, tp.Input))
				// Fault accounting is batched worker-locally per job and
				// folded in once: counters and histograms are integer, so
				// the snapshot is identical at any worker count.
				var fAttempts, fRetries, fQuar int64
				var attemptsHist, waitHist obs.Hist
				// Each goroutine owns a disjoint slice region; no locks
				// are needed and the final order is deterministic.
				out := records[ji*nc : (ji+1)*nc]
				st := cells[ji*nc : (ji+1)*nc]
				fresh := false
				// The evaluator applies the chip to the shared columns;
				// built lazily so fully resumed or faulted jobs never
				// pay for it, and per-goroutine because its shape memo
				// is unguarded.
				var ev *columnar.Evaluator
				for k, cfg := range configs {
					dkey := dataset.Key{
						Tuple:  dataset.Tuple{Chip: ch.Name, App: tp.App, Input: tp.Input},
						Config: cfg,
					}
					if inj != nil && inj.Dropped(ch.Name, jobs[ji].traceIdx*nc+k) {
						st[k] = cellState{failed: fault.Dropout}
						continue
					}
					key := cellKey(o.Seed, ch.Name, tp.App, tp.Input, cfg)
					var factors []float64
					if inj != nil {
						res := inj.MeasureCell(key, o.Runs, ch.NoiseSigma)
						st[k] = cellState{
							attempts:    res.Attempts,
							quarantined: res.Quarantined,
							waitNS:      res.WaitNS,
							failed:      res.Failed,
						}
						fAttempts += int64(res.Attempts)
						fRetries += int64(res.Attempts - 1)
						fQuar += int64(res.Quarantined)
						attemptsHist.Observe(int64(res.Attempts))
						waitHist.Observe(int64(res.WaitNS))
						res.Emit(o.Obs, jobSpan.ID(), obs.String(obs.AttrConfig, cfg.String()))
						if res.Failed != fault.None {
							continue
						}
						factors = res.Factors
					} else {
						st[k] = cellState{attempts: 1}
					}
					st[k].measured = true
					var prior []float64
					if resumeSet != nil {
						prior = resumeSet.Samples(dkey.Tuple, cfg)
					}
					if prior != nil {
						// Resumed from checkpoint: skip the expensive
						// cost evaluation; the fault outcome above was
						// replayed so the report stays bit-identical.
						st[k].resumed = true
						out[k] = dataset.Record{Key: dkey, Samples: prior}
						continue
					}
					var base float64
					if o.ReferenceCost {
						base = cost.Estimate(ch, cfg, tp)
					} else {
						if ev == nil {
							ev = columnar.NewEvaluator(ch, cols[jobs[ji].traceIdx])
						}
						base = ev.Estimate(cfg)
					}
					if factors == nil {
						factors = fault.NoiseFactors(key, 0, o.Runs, ch.NoiseSigma)
					}
					samples := make([]float64, len(factors))
					for i, f := range factors {
						samples[i] = base * f
					}
					out[k] = dataset.Record{Key: dkey, Samples: samples}
					fresh = true
				}
				if inj != nil {
					o.Obs.Add(obs.CtrFaultAttempts, fAttempts)
					o.Obs.Add(obs.CtrFaultRetries, fRetries)
					o.Obs.Add(obs.CtrFaultQuarantined, fQuar)
					o.Obs.MergeHist(obs.HistCellAttempts, &attemptsHist)
					o.Obs.MergeHist(obs.HistCellWaitNS, &waitHist)
				}
				jobSpan.End()
				if ck != nil && fresh {
					ck.appendJob(out, st)
				}
				if o.Notify != nil {
					o.Notify(obs.StageSweep, int(jobsDone.Add(1)), len(jobs))
				}
			}
		}(w)
	}
feed:
	for ji := range jobs {
		select {
		case next <- ji:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	sweepSpan.End()
	stopSweep()
	ckErr := ""
	if ck != nil {
		ckErr = ck.close()
	}
	if err := ctx.Err(); err != nil {
		// Completed shards are persisted (when checkpointing); the
		// sweep can resume from them.
		return nil, nil, err
	}

	stopAssemble := o.Obs.Start(obs.StageAssemble)
	assembleSpan := o.Obs.StartSpan(obs.StageAssemble, 0)
	d := dataset.New()
	rep := &Report{
		Cells:           len(records),
		FailuresByKind:  map[fault.Kind]int{},
		CheckpointError: ckErr,
	}
	if o.Faults != nil {
		p := *o.Faults
		p.Fill()
		rep.Profile = &p
		if inj != nil {
			if chipName, from, ok := inj.DropoutPlan(); ok {
				rep.DropoutChip, rep.DropoutFrom = chipName, from
			}
		}
	}
	for i := range records {
		st := cells[i]
		rep.Attempts += st.attempts
		rep.Quarantined += st.quarantined
		rep.WaitNS += st.waitNS
		if st.measured {
			rep.Measured++
			if st.resumed {
				rep.Resumed++
			}
			if st.attempts > 1 {
				rep.Retried++
			}
			d.Add(records[i])
			continue
		}
		ji := i / nc
		cfg := configs[i%nc]
		ch := o.Chips[jobs[ji].chipIdx]
		tp := profiles[jobs[ji].traceIdx]
		rep.Failures = append(rep.Failures, CellFailure{
			Key: dataset.Key{
				Tuple:  dataset.Tuple{Chip: ch.Name, App: tp.App, Input: tp.Input},
				Config: cfg,
			},
			Reason:   st.failed,
			Attempts: st.attempts,
		})
		rep.FailuresByKind[st.failed]++
	}
	assembleSpan.End()
	stopAssemble()
	rep.Pipeline = o.Obs.Summary()
	rep.Obs = o.Obs.Snapshot()
	return d, rep, nil
}
