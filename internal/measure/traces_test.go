package measure

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"gpuport/internal/apps"
	"gpuport/internal/dataset"
	"gpuport/internal/graph"
	"gpuport/internal/opt"
	"gpuport/internal/tracecache"
)

// mediumOptions is a trace-phase workload with enough pairs (8 apps x 2
// inputs) to exercise the worker pool properly.
func mediumOptions(t *testing.T) Options {
	t.Helper()
	o := smallOptions()
	o.Apps = apps.All()[:8]
	o.Inputs = []*graph.Graph{
		graph.GenerateUniform("t-rand", 500, 5, 9),
		graph.GenerateRoad("t-road", 16, 2),
	}
	return o
}

func profilesEqual(t *testing.T, a, b []*traceProfileView) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trace profiles differ")
	}
}

// traceProfileView strips the memoisation cache out of a profile so
// DeepEqual compares only the measured content.
type traceProfileView struct {
	App, Input string
	Launches   []any
	Loops      []any
}

func viewProfiles(o Options, t *testing.T) []*traceProfileView {
	t.Helper()
	ps, err := Traces(o)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*traceProfileView, len(ps))
	for i, p := range ps {
		v := &traceProfileView{App: p.App, Input: p.Input}
		for j := range p.Launches {
			v.Launches = append(v.Launches, p.Launches[j].KernelStats)
		}
		for _, l := range p.Loops {
			v.Loops = append(v.Loops, l)
		}
		out[i] = v
	}
	return out
}

func TestTracesParallelBitIdentical(t *testing.T) {
	o := mediumOptions(t)
	o.Workers = 1
	serial := viewProfiles(o, t)
	for _, workers := range []int{2, 4, 8} {
		o.Workers = workers
		profilesEqual(t, serial, viewProfiles(o, t))
	}
}

func TestTracesColdVsWarmCacheBitIdentical(t *testing.T) {
	o := mediumOptions(t)
	cold := viewProfiles(o, t) // no cache at all

	store, err := tracecache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	o.TraceCache = store
	coldCache := viewProfiles(o, t) // populates the cache
	warm := viewProfiles(o, t)      // served from the cache
	profilesEqual(t, cold, coldCache)
	profilesEqual(t, cold, warm)

	st := store.Stats()
	wantPairs := int64(len(o.Apps) * len(o.Inputs))
	if st.Misses != wantPairs || st.Hits != wantPairs {
		t.Errorf("cache stats = %+v, want %d misses then %d hits", st, wantPairs, wantPairs)
	}
}

func TestCollectColdVsWarmCacheBitIdentical(t *testing.T) {
	o := smallOptions()
	base, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	store, err := tracecache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	o.TraceCache = store
	for _, label := range []string{"cold", "warm"} {
		d, rep, err := CollectReport(o)
		if err != nil {
			t.Fatal(err)
		}
		datasetsMustMatch(t, base, d, label)
		hits, misses := rep.TraceCacheHits(), rep.TraceCacheMisses()
		if label == "cold" && (hits != 0 || misses != 2) {
			t.Errorf("cold: hits=%d misses=%d, want 0/2", hits, misses)
		}
		if label == "warm" && (hits != 2 || misses != 0) {
			t.Errorf("warm: hits=%d misses=%d, want 2/0", hits, misses)
		}
	}
}

func datasetsMustMatch(t *testing.T, a, b *dataset.Dataset, label string) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: dataset size %d vs %d", label, b.Len(), a.Len())
	}
	for _, tp := range a.Tuples() {
		for _, cfg := range opt.All() {
			sa, sb := a.Samples(tp, cfg), b.Samples(tp, cfg)
			if !reflect.DeepEqual(sa, sb) {
				t.Fatalf("%s: %v/%v samples differ: %v vs %v", label, tp, cfg, sb, sa)
			}
		}
	}
}

// TestTracesCorruptCacheFallsBackToRetrace damages every cached entry
// in a different way and proves a warm run still produces traces
// bit-identical to a cold run.
func TestTracesCorruptCacheFallsBackToRetrace(t *testing.T) {
	o := mediumOptions(t)
	cold := viewProfiles(o, t)

	dir := t.TempDir()
	store, err := tracecache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	o.TraceCache = store
	viewProfiles(o, t) // populate

	entries, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written: %v", err)
	}
	for i, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // truncation
			raw = raw[:len(raw)*2/3]
		case 1: // payload corruption behind an intact header
			raw[len(raw)-3] ^= 0x11
		case 2: // stale format version
			raw = bytes.Replace(raw, []byte("gpuport-tracecache 1 "), []byte("gpuport-tracecache 999 "), 1)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	profilesEqual(t, cold, viewProfiles(o, t))
	if st := store.Stats(); st.Corrupt != int64(len(entries)) {
		t.Errorf("corrupt entries detected = %d, want %d", st.Corrupt, len(entries))
	}
	// And the re-trace healed the cache: next run is all hits.
	before := store.Stats().Hits
	profilesEqual(t, cold, viewProfiles(o, t))
	if got := store.Stats().Hits - before; got != int64(len(cold)) {
		t.Errorf("healed cache served %d hits, want %d", got, len(cold))
	}
}

// cancelAfterWriter cancels a context after n progress lines, modelling
// SIGINT landing mid trace phase.
type cancelAfterWriter struct {
	mu     sync.Mutex
	n      int
	cancel context.CancelFunc
	lines  int
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lines += bytes.Count(p, []byte("\n"))
	if w.lines >= w.n {
		w.cancel()
	}
	return len(p), nil
}

func TestTracesCancelledMidPhase(t *testing.T) {
	o := mediumOptions(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o.Ctx = ctx
	o.Workers = 2
	o.Progress = &cancelAfterWriter{n: 2, cancel: cancel}
	if _, err := Traces(o); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTracesCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := smallOptions()
	o.Ctx = ctx
	if _, err := Traces(o); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTracesInterruptedThenResumedBitIdentical interrupts the trace
// phase mid-flight with a warm-up cache attached, then reruns to
// completion against the same cache: the partially-populated cache must
// yield a dataset bit-identical to a never-interrupted cold run.
func TestTracesInterruptedThenResumedBitIdentical(t *testing.T) {
	o := mediumOptions(t)
	base, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}

	store, err := tracecache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := o
	interrupted.Ctx = ctx
	interrupted.TraceCache = store
	interrupted.Workers = 2
	interrupted.Progress = &cancelAfterWriter{n: 3, cancel: cancel}
	if _, err := Traces(interrupted); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if store.Len() == 0 {
		t.Fatal("interrupted trace phase persisted nothing; resume would restart from scratch")
	}

	resumed := o
	resumed.TraceCache = store
	d, rep, err := CollectReport(resumed)
	if err != nil {
		t.Fatal(err)
	}
	datasetsMustMatch(t, base, d, "interrupted-then-resumed")
	if rep.TraceCacheHits() == 0 {
		t.Error("resume re-traced everything; the interrupted phase's work was wasted")
	}
}

func TestTracesProgressOrderedUnderParallelism(t *testing.T) {
	o := mediumOptions(t)
	var serial, parallel bytes.Buffer
	o.Workers = 1
	o.Progress = &serial
	if _, err := Traces(o); err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	o.Progress = &parallel
	if _, err := Traces(o); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("progress output depends on worker count:\nserial:\n%s\nparallel:\n%s", serial.String(), parallel.String())
	}
	if !strings.Contains(serial.String(), "traced bfs-wl on t-rand") {
		t.Errorf("unexpected progress format:\n%s", serial.String())
	}
}

func TestTracesProgressMarksCacheHits(t *testing.T) {
	o := smallOptions()
	store, err := tracecache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	o.TraceCache = store
	var cold, warm bytes.Buffer
	o.Progress = &cold
	if _, err := Traces(o); err != nil {
		t.Fatal(err)
	}
	o.Progress = &warm
	if _, err := Traces(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold.String(), "traced bfs-wl") {
		t.Errorf("cold run should say traced:\n%s", cold.String())
	}
	if !strings.Contains(warm.String(), "cached bfs-wl") {
		t.Errorf("warm run should say cached:\n%s", warm.String())
	}
	// Modulo the verb, the lines carry identical content.
	norm := func(s string) string { return strings.ReplaceAll(s, "cached ", "traced ") }
	if norm(cold.String()) != norm(warm.String()) {
		t.Errorf("cold and warm progress disagree beyond the verb:\n%s\n%s", cold.String(), warm.String())
	}
}

func TestTracesValidationErrorPropagatesParallel(t *testing.T) {
	broken := apps.App{
		Name:    "bfs-broken",
		Problem: "BFS",
		Version: "1",
	}
	real, _ := apps.ByName("bfs-wl")
	broken.Run = real.Run
	broken.Check = func(g *graph.Graph, out any) error { return errors.New("always wrong") }

	o := mediumOptions(t)
	o.Apps = append([]apps.App{}, o.Apps...)
	o.Apps[3] = broken
	o.Validate = true
	o.Workers = 4
	_, err := Traces(o)
	if err == nil || !strings.Contains(err.Error(), "failed validation") {
		t.Fatalf("err = %v, want validation failure", err)
	}
}

// TestTracesValidateFlagPartitionsCache proves a cached unvalidated
// trace never satisfies a validating run (the flag is part of the key).
func TestTracesValidateFlagPartitionsCache(t *testing.T) {
	o := smallOptions()
	store, err := tracecache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	o.TraceCache = store
	if _, err := Traces(o); err != nil { // unvalidated fill
		t.Fatal(err)
	}
	o.Validate = true
	if _, err := Traces(o); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Hits != 0 {
		t.Errorf("validating run hit %d unvalidated entries", st.Hits)
	}
}

// discardAfterWriter fails writes after the first n lines.
type failAfterWriter struct {
	mu    sync.Mutex
	n     int
	lines int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lines += bytes.Count(p, []byte("\n"))
	if w.lines > w.n {
		return 0, errors.New("pipe burst")
	}
	return len(p), nil
}

func TestTracesProgressErrorPropagatesParallel(t *testing.T) {
	o := mediumOptions(t)
	o.Workers = 4
	o.Progress = &failAfterWriter{n: 2}
	_, err := Traces(o)
	if err == nil || !strings.Contains(err.Error(), "progress writer") {
		t.Fatalf("err = %v, want progress writer failure", err)
	}
}

var _ io.Writer = (*failAfterWriter)(nil)
