package measure

import (
	"bytes"
	"testing"

	"gpuport/internal/fault"
	"gpuport/internal/obs"
)

// exportRun collects the small sweep under fault injection with span
// capture on and returns the canonicalised trace and metrics exports.
func exportRun(t *testing.T, workers int) (trace, metrics []byte, rep *Report) {
	t.Helper()
	o := smallOptions()
	o.Workers = workers
	o.Faults = (&fault.Profile{Transient: 0.2, Corrupt: 0.1, Seed: 11}).Fill()
	o.Obs = obs.New().EnableSim()
	_, rep, err := CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rep.Obs); err != nil {
		t.Fatal(err)
	}
	canonTrace, err := obs.CanonicalTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := obs.WriteMetrics(&buf, rep.Obs); err != nil {
		t.Fatal(err)
	}
	return canonTrace, obs.CanonicalMetrics(buf.Bytes()), rep
}

// TestObsExportsDeterministicAcrossWorkers is the determinism golden
// gate for the observability subsystem: the exported artifacts - with
// wall-clock fields stripped by the canonicalisers - must be
// byte-identical across runs AND across worker counts, faults and all.
func TestObsExportsDeterministicAcrossWorkers(t *testing.T) {
	trace1, metrics1, rep1 := exportRun(t, 1)
	trace4, metrics4, rep4 := exportRun(t, 4)
	if !bytes.Equal(trace1, trace4) {
		t.Errorf("canonical traces differ between 1 and 4 workers:\n%s\n---\n%s", trace1, trace4)
	}
	if !bytes.Equal(metrics1, metrics4) {
		t.Errorf("canonical metrics differ between 1 and 4 workers:\n%s\n---\n%s", metrics1, metrics4)
	}

	// The run must actually have exercised the interesting paths,
	// otherwise this test proves nothing.
	var retries int
	for _, ev := range rep1.Obs.Events {
		if ev.Name == obs.EvRetry {
			retries++
		}
	}
	if retries == 0 {
		t.Error("fault-injected run recorded no retry events")
	}
	if rep1.Pipeline.Counter(obs.CtrFaultRetries) == 0 {
		t.Errorf("%s = 0 under transient faults", obs.CtrFaultRetries)
	}
	if got := rep4.Pipeline.Counter(obs.CtrFaultRetries); got != rep1.Pipeline.Counter(obs.CtrFaultRetries) {
		t.Errorf("retry counters differ across worker counts: %d vs %d",
			rep1.Pipeline.Counter(obs.CtrFaultRetries), got)
	}
	var simSpans, realSpans int
	for _, sp := range rep1.Obs.Spans {
		if sp.Track == obs.TrackSim {
			simSpans++
		} else {
			realSpans++
		}
	}
	if simSpans == 0 || realSpans == 0 {
		t.Errorf("want spans on both tracks, got %d sim / %d real", simSpans, realSpans)
	}
}

// TestObsSpanPopulation pins the span counts of the instrumented
// pipeline: one phase span per stage, one pair span per (app, input),
// one job span per (chip, pair), and a sim timeline per traced pair.
func TestObsSpanPopulation(t *testing.T) {
	o := smallOptions()
	o.Obs = obs.New().EnableSim()
	_, rep, err := CollectReport(o)
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, sp := range rep.Obs.Spans {
		count[sp.Name]++
	}
	// 2 apps x 1 input = 2 pairs; 2 chips x 2 pairs = 4 jobs.
	for name, want := range map[string]int{
		obs.StageTrace:      1,
		obs.StageSweep:      1,
		obs.StageAssemble:   1,
		obs.SpanTracePair:   2,
		obs.SpanSweepJob:    4,
		obs.SpanSimTimeline: 2,
	} {
		if count[name] != want {
			t.Errorf("%s spans = %d, want %d", name, count[name], want)
		}
	}
	// Workload counters are recorded by the always-on layer too.
	if rep.Pipeline.Counter(obs.CtrKernelLaunches) == 0 {
		t.Errorf("%s = 0 after a traced run", obs.CtrKernelLaunches)
	}
	var frontier *obs.Hist
	for i := range rep.Obs.Hists {
		if rep.Obs.Hists[i].Name == obs.HistFrontier {
			frontier = &rep.Obs.Hists[i]
		}
	}
	if frontier == nil || frontier.Count != rep.Pipeline.Counter(obs.CtrKernelLaunches) {
		t.Errorf("frontier hist count = %+v, want one observation per launch (%d)",
			frontier, rep.Pipeline.Counter(obs.CtrKernelLaunches))
	}
}

// TestObsDisabledByDefault proves the span layer stays out of the way:
// a default CollectReport captures counters and stages but no spans.
func TestObsDisabledByDefault(t *testing.T) {
	_, rep, err := CollectReport(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Obs == nil {
		t.Fatal("report is missing the obs snapshot")
	}
	if len(rep.Obs.Spans) != 0 || len(rep.Obs.Events) != 0 {
		t.Errorf("default run captured %d spans, %d events",
			len(rep.Obs.Spans), len(rep.Obs.Events))
	}
	if rep.Obs.Summary.StageDuration(obs.StageSweep) == 0 {
		t.Error("stage timers should run even with tracing disabled")
	}
}
