package measure

import (
	"bytes"
	"strings"
	"testing"

	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
	"gpuport/internal/opt"
)

// smallOptions restricts the sweep so tests run in milliseconds.
func smallOptions() Options {
	bfs, _ := apps.ByName("bfs-wl")
	pr, _ := apps.ByName("pr-residual")
	chips := chip.All()[:2]
	return Options{
		Seed:   7,
		Runs:   3,
		Chips:  chips,
		Apps:   []apps.App{bfs, pr},
		Inputs: []*graph.Graph{graph.GenerateUniform("m-rand", 600, 5, 9)},
	}
}

func TestCollectShape(t *testing.T) {
	d, err := Collect(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantRecords := 2 * 2 * 1 * len(opt.All())
	if d.Len() != wantRecords {
		t.Errorf("records = %d, want %d", d.Len(), wantRecords)
	}
	if len(d.Tuples()) != 4 {
		t.Errorf("tuples = %d, want 4", len(d.Tuples()))
	}
	for _, tp := range d.Tuples() {
		for _, cfg := range opt.All() {
			s := d.Samples(tp, cfg)
			if len(s) != 3 {
				t.Fatalf("%v/%v: %d samples", tp, cfg, len(s))
			}
			for _, v := range s {
				if v <= 0 {
					t.Fatalf("%v/%v: non-positive sample", tp, cfg)
				}
			}
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	a, err := Collect(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range a.Tuples() {
		for _, cfg := range opt.All() {
			sa, sb := a.Samples(tp, cfg), b.Samples(tp, cfg)
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("%v/%v sample %d differs: %v vs %v", tp, cfg, i, sa[i], sb[i])
				}
			}
		}
	}
}

// TestReferenceCostBitIdentical proves the engine switch is invisible:
// the dataset collected through the columnar engine (the default) is
// bit-identical to one collected through the reference cost path.
func TestReferenceCostBitIdentical(t *testing.T) {
	columnarOpts := smallOptions()
	refOpts := smallOptions()
	refOpts.ReferenceCost = true
	a, err := Collect(columnarOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("record counts differ: %d vs %d", a.Len(), b.Len())
	}
	for _, tp := range a.Tuples() {
		for _, cfg := range opt.All() {
			sa, sb := a.Samples(tp, cfg), b.Samples(tp, cfg)
			if len(sa) != len(sb) {
				t.Fatalf("%v/%v: sample counts differ", tp, cfg)
			}
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("%v/%v sample %d: columnar %x != reference %x",
						tp, cfg, i, sa[i], sb[i])
				}
			}
		}
	}
}

func TestSeedChangesNoiseNotScale(t *testing.T) {
	o1 := smallOptions()
	o2 := smallOptions()
	o2.Seed = 99
	a, _ := Collect(o1)
	b, _ := Collect(o2)
	same, diff := 0, 0
	for _, tp := range a.Tuples() {
		for _, cfg := range opt.All() {
			sa, sb := a.Samples(tp, cfg), b.Samples(tp, cfg)
			ma, mb := (sa[0]+sa[1]+sa[2])/3, (sb[0]+sb[1]+sb[2])/3
			if sa[0] == sb[0] {
				same++
			} else {
				diff++
			}
			// Means stay within the noise envelope of each other.
			if ma/mb > 1.3 || mb/ma > 1.3 {
				t.Fatalf("%v/%v: seeds changed scale %v vs %v", tp, cfg, ma, mb)
			}
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical samples")
	}
	if same > diff/10 {
		t.Errorf("suspiciously many identical samples across seeds: %d vs %d", same, diff)
	}
}

func TestValidateOption(t *testing.T) {
	o := smallOptions()
	o.Validate = true
	if _, err := Collect(o); err != nil {
		t.Fatalf("validation should pass for correct apps: %v", err)
	}
}

func TestProgressOutput(t *testing.T) {
	o := smallOptions()
	var buf bytes.Buffer
	o.Progress = &buf
	if _, err := Collect(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "traced bfs-wl on m-rand") {
		t.Errorf("progress output missing trace lines: %q", out)
	}
}

func TestTracesOnly(t *testing.T) {
	o := smallOptions()
	profiles, err := Traces(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d, want 2", len(profiles))
	}
	for _, p := range profiles {
		if len(p.Launches) == 0 {
			t.Errorf("%s: empty profile", p.App)
		}
	}
}

func TestDefaultsFill(t *testing.T) {
	var o Options
	o.fill()
	if o.Runs != 3 || len(o.Chips) != 6 || len(o.Apps) != 17 || len(o.Inputs) != 3 {
		t.Errorf("defaults = runs %d, %d chips, %d apps, %d inputs",
			o.Runs, len(o.Chips), len(o.Apps), len(o.Inputs))
	}
}

// TestValidateCatchesBrokenApp injects an application that computes a
// wrong answer and checks the harness refuses to time it.
func TestValidateCatchesBrokenApp(t *testing.T) {
	broken := apps.App{
		Name:    "bfs-broken",
		Problem: "BFS",
		Run: func(g *graph.Graph) (*irgl.Trace, any) {
			rt := irgl.NewRuntime("bfs-broken", g)
			k := rt.Launch("noop")
			k.ForAllNodes(func(it *irgl.Item, u int32) {})
			k.End()
			// All-zero distances: wrong for any graph with >1 node.
			return rt.Trace(), make([]int32, g.NumNodes())
		},
	}
	real, _ := apps.ByName("bfs-wl")
	broken.Check = real.Check

	o := smallOptions()
	o.Apps = []apps.App{broken}
	o.Validate = true
	if _, err := Collect(o); err == nil {
		t.Fatal("harness accepted a wrong answer")
	}
	// Without validation the harness times whatever it is given.
	o.Validate = false
	if _, err := Collect(o); err != nil {
		t.Fatalf("unvalidated collection should proceed: %v", err)
	}
}
