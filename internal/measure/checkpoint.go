package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"gpuport/internal/dataset"
	"gpuport/internal/opt"
)

// checkpoint appends completed cells to a CSV shard file as the sweep
// runs. The format is the dataset CSV format (ReadCSV-compatible), so a
// finished checkpoint doubles as a saved dataset. Appends from worker
// goroutines are serialised by a mutex; row order in the file is
// therefore scheduling-dependent, which is fine because resume loads it
// into a keyed index.
type checkpoint struct {
	mu      sync.Mutex
	f       *os.File
	cw      *csv.Writer
	pending int
	every   int
	err     string
}

// openCheckpoint opens (or creates) the shard file at path and returns
// the writer plus the set of cells already persisted, which the sweep
// resumes instead of re-measuring.
//
// Loading is deliberately lenient where dataset.ReadCSV is strict: a
// checkpoint written by a process that died mid-append can end in a
// truncated row, and a self-healing harness must treat that as "one
// cell not yet persisted", not as a fatal error. Malformed rows are
// skipped; if the file does not end in a newline, one is inserted so
// appended rows stay parseable.
func openCheckpoint(path string, runs, every int) (*checkpoint, *dataset.Dataset, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("measure: checkpoint: %w", err)
	}
	var resumed *dataset.Dataset
	if len(raw) > 0 {
		resumed = loadCheckpointRows(raw)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("measure: checkpoint: %w", err)
	}
	ck := &checkpoint{f: f, cw: csv.NewWriter(f), every: every}
	if len(raw) == 0 {
		header := []string{"chip", "app", "input", "config"}
		for i := 0; i < runs; i++ {
			header = append(header, fmt.Sprintf("run%d", i+1))
		}
		if err := ck.cw.Write(header); err != nil {
			_ = f.Close() // best-effort: the write error is the one worth reporting
			return nil, nil, fmt.Errorf("measure: checkpoint: %w", err)
		}
		ck.cw.Flush()
	} else if raw[len(raw)-1] != '\n' {
		// Heal a truncated final line so our appends start clean.
		if _, err := f.Write([]byte("\n")); err != nil {
			_ = f.Close() // best-effort: the write error is the one worth reporting
			return nil, nil, fmt.Errorf("measure: checkpoint: %w", err)
		}
	}
	if err := ck.cw.Error(); err != nil {
		_ = f.Close() // best-effort: the Flush error is the one worth reporting
		return nil, nil, fmt.Errorf("measure: checkpoint: %w", err)
	}
	return ck, resumed, nil
}

// loadCheckpointRows parses shard rows leniently: any row that is not a
// complete, valid dataset record is skipped.
func loadCheckpointRows(raw []byte) *dataset.Dataset {
	cr := csv.NewReader(strings.NewReader(string(raw)))
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = true
	d := dataset.New()
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			continue
		}
		if len(row) < 5 || row[0] == "chip" {
			continue
		}
		cfg, err := opt.Parse(row[3])
		if err != nil {
			continue
		}
		rec := dataset.Record{Key: dataset.Key{
			Tuple:  dataset.Tuple{Chip: row[0], App: row[1], Input: row[2]},
			Config: cfg,
		}}
		ok := true
		for _, field := range row[4:] {
			if strings.TrimSpace(field) == "" {
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil || v <= 0 {
				ok = false
				break
			}
			rec.Samples = append(rec.Samples, v)
		}
		if !ok || len(rec.Samples) == 0 {
			continue
		}
		d.Add(rec)
	}
	if d.Len() == 0 {
		return nil
	}
	return d
}

// appendJob persists the freshly measured cells of one completed job.
// Resumed cells are already in the file and failed cells have no data;
// neither is rewritten. A write error disables further checkpointing
// (the sweep continues; the error surfaces in the report).
func (ck *checkpoint) appendJob(records []dataset.Record, states []cellState) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.err != "" {
		return
	}
	for k := range records {
		if !states[k].measured || states[k].resumed {
			continue
		}
		r := &records[k]
		row := []string{r.Chip, r.App, r.Input, r.Config.String()}
		for _, s := range r.Samples {
			row = append(row, strconv.FormatFloat(s, 'g', 17, 64))
		}
		if err := ck.cw.Write(row); err != nil {
			ck.err = err.Error()
			return
		}
	}
	ck.pending++
	if ck.pending >= ck.every {
		ck.pending = 0
		ck.cw.Flush()
		if err := ck.cw.Error(); err != nil {
			ck.err = err.Error()
		}
	}
}

// close flushes and closes the shard file, returning the first error
// encountered over the checkpoint's lifetime ("" when clean).
func (ck *checkpoint) close() string {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.cw.Flush()
	if err := ck.cw.Error(); err != nil && ck.err == "" {
		ck.err = err.Error()
	}
	if err := ck.f.Close(); err != nil && ck.err == "" {
		ck.err = err.Error()
	}
	return ck.err
}
