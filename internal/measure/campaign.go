package measure

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"strconv"

	"gpuport/internal/dataset"
	"gpuport/internal/obs"
	"gpuport/internal/tracecache"
)

// Campaign is one portability study as a resumable job object: the
// semantic identity of a sweep (what is measured - chips, apps, inputs,
// config subspace - under which seed, sampling budget and fault policy)
// separated from the runtime bindings of one execution (context,
// workers, cache, recorder, checkpoint file). The identity is
// content-addressed by Fingerprint, so two campaigns with equal
// fingerprints produce bit-identical datasets and a finished result can
// be served from a cache without re-running anything; the bindings are
// supplied per execution through Env, so the same campaign can run,
// be cancelled, and resume later under a different context and worker
// budget while remaining the same job.
type Campaign struct {
	o Options
}

// NewCampaign resolves the semantic grid of o (nil axes become the
// full study axes) and captures it as a job object. Runtime bindings
// present in o (context, cache, recorder, workers, checkpoint) are
// carried along as defaults and overridden per execution by Env.
func NewCampaign(o Options) *Campaign {
	o.fillGrid()
	return &Campaign{o: o}
}

// Options returns a copy of the campaign's resolved options.
func (c *Campaign) Options() Options { return c.o }

// Cells returns the intended sweep size of the campaign.
func (c *Campaign) Cells() int {
	return len(c.o.Chips) * len(c.o.Apps) * len(c.o.Inputs) * len(c.o.Configs)
}

// campaignFPVersion versions the fingerprint preimage. Bump it when
// the identity schema changes; every persisted result keyed by an old
// fingerprint then misses, which is the safe failure mode.
const campaignFPVersion = "gpuport-campaign-v1"

// Fingerprint content-addresses the campaign's semantic identity:
// seed, sampling budget, validation flag, chip set, application set
// (name and version token), input set (name and graph content
// fingerprint), configuration subspace, and the full fault profile.
// Runtime bindings (workers, cache, recorder, checkpoint path) do not
// participate: they are proven not to change the dataset. The digest
// is a hex sha256, stable across processes and machines.
func (c *Campaign) Fingerprint() string {
	h := sha256.New()
	field := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	field(campaignFPVersion)
	field(strconv.FormatUint(c.o.Seed, 10))
	field(strconv.Itoa(c.o.Runs))
	field(strconv.FormatBool(c.o.Validate))
	for _, ch := range c.o.Chips {
		field("chip=" + ch.Name)
	}
	for _, a := range c.o.Apps {
		field("app=" + a.Name + "@" + a.Version)
	}
	for _, in := range c.o.Inputs {
		field("input=" + in.Name + "#" + in.Fingerprint())
	}
	for _, cfg := range c.o.Configs {
		field("config=" + cfg.String())
	}
	field("faults=" + c.o.Faults.String())
	return hex.EncodeToString(h.Sum(nil))
}

// Env binds one execution of a campaign to runtime resources. Every
// field is optional; the zero value runs the campaign standalone with
// the defaults captured at NewCampaign time.
type Env struct {
	// Workers caps the trace and cost-evaluation worker pools
	// (0 means GOMAXPROCS). The dataset is bit-identical either way.
	Workers int
	// TraceCache short-circuits the trace phase through the shared
	// content-addressed store; safe for concurrent campaigns.
	TraceCache *tracecache.Store
	// Obs receives the execution's stage timings, counters and spans.
	// Give each execution its own recorder for per-job isolation.
	Obs *obs.Recorder
	// Progress receives one line per traced (app, input) pair.
	Progress io.Writer
	// Notify receives coarse progress events (see Options.Notify).
	Notify func(phase string, done, total int)
	// Checkpoint names the CSV shard file making the execution
	// resumable; cells already persisted there are not re-measured.
	Checkpoint string
	// CheckpointEvery flushes the checkpoint after this many completed
	// (chip, trace) jobs (default 4).
	CheckpointEvery int
}

// Run executes the campaign under ctx with the given bindings and
// returns the dataset plus the per-cell collection report. The dataset
// depends only on the campaign's identity: re-running, resuming from
// the checkpoint, sharing the trace cache with concurrent campaigns
// and changing the worker count all produce the same bits.
func (c *Campaign) Run(ctx context.Context, env Env) (*dataset.Dataset, *Report, error) {
	o := c.o
	if ctx != nil {
		o.Ctx = ctx
	}
	if env.Workers != 0 {
		o.Workers = env.Workers
	}
	if env.TraceCache != nil {
		o.TraceCache = env.TraceCache
	}
	if env.Obs != nil {
		o.Obs = env.Obs
	}
	if env.Progress != nil {
		o.Progress = env.Progress
	}
	if env.Notify != nil {
		o.Notify = env.Notify
	}
	if env.Checkpoint != "" {
		o.Checkpoint = env.Checkpoint
	}
	if env.CheckpointEvery > 0 {
		o.CheckpointEvery = env.CheckpointEvery
	}
	return CollectReport(o)
}
