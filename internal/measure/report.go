package measure

import (
	"gpuport/internal/dataset"
	"gpuport/internal/fault"
	"gpuport/internal/obs"
)

// CellFailure explains one missing cell of a partial dataset.
type CellFailure struct {
	// Key identifies the missing cell.
	Key dataset.Key
	// Reason is the fault kind that exhausted the failure policy.
	Reason fault.Kind
	// Attempts is the number of launches tried before giving up (0 for
	// a dropped-out cell that was never attempted).
	Attempts int
}

// Report accounts for every cell of a collection run. A fault-free,
// non-resumed sweep reports Measured == Cells and nothing else; under
// fault injection the report is the authoritative record of what the
// dataset is missing and why.
//
// All fault-outcome fields (Attempts, Retried, Quarantined, WaitNS,
// Failures) are bit-identical for a given seed regardless of worker
// count and of whether the run was checkpoint-resumed; only Resumed,
// which records provenance, differs between a fresh and a resumed run.
type Report struct {
	// Cells is the intended sweep size; Measured the cells with data in
	// the returned dataset (including resumed ones).
	Cells, Measured int
	// Resumed counts cells loaded from the checkpoint instead of
	// re-measured.
	Resumed int
	// Retried counts measured cells that needed more than one attempt.
	Retried int
	// Attempts is the total number of simulated launches.
	Attempts int
	// Quarantined counts timing samples rejected by the outlier gate.
	Quarantined int
	// WaitNS is the total virtual time spent on backoffs and hang
	// deadlines across the sweep.
	WaitNS float64
	// Failures lists every missing cell with its reason, in canonical
	// sweep order.
	Failures []CellFailure
	// FailuresByKind aggregates Failures per fault kind.
	FailuresByKind map[fault.Kind]int
	// Profile is the (default-filled) fault profile the sweep ran
	// under; nil when fault injection was disabled.
	Profile *fault.Profile
	// DropoutChip / DropoutFrom record the scheduled whole-chip
	// dropout ("" when none fired).
	DropoutChip string
	DropoutFrom int
	// CheckpointError is non-empty when shard persistence failed; the
	// sweep itself still completed.
	CheckpointError string
	// Pipeline is the stage-timing and counter summary of the run:
	// trace / sweep / assemble wall-clock plus trace-cache hit, miss
	// and put-error counts. Wall-clock varies run to run, so it is
	// reported but never feeds the dataset.
	Pipeline *obs.Summary
	// Obs is the full observability snapshot of the run: spans, events,
	// histograms and lane labels in addition to the flat summary. It is
	// what the -obs-trace / -obs-metrics exports render. Span capture
	// is off by default; without it the snapshot holds only the always-
	// on counters and stage timers.
	Obs *obs.Snapshot
}

// TraceCacheHits returns the number of trace-phase cache hits.
func (r *Report) TraceCacheHits() int64 {
	if r == nil {
		return 0
	}
	return r.Pipeline.Counter(obs.CtrCacheHits)
}

// TraceCacheMisses returns the number of trace-phase cache misses.
func (r *Report) TraceCacheMisses() int64 {
	if r == nil {
		return 0
	}
	return r.Pipeline.Counter(obs.CtrCacheMisses)
}

// TraceCacheEvictions returns the number of store-level LRU evictions
// seen by the run (0 unless the store was attached to the recorder).
func (r *Report) TraceCacheEvictions() int64 {
	if r == nil {
		return 0
	}
	return r.Pipeline.Counter(obs.CtrCacheEvictions)
}

// TraceCacheHealed returns the number of damaged cache entries the
// store detected and deleted during the run.
func (r *Report) TraceCacheHealed() int64 {
	if r == nil {
		return 0
	}
	return r.Pipeline.Counter(obs.CtrCacheCorrupt)
}

// Coverage returns the fraction of intended cells that were measured.
func (r *Report) Coverage() float64 {
	if r == nil || r.Cells == 0 {
		return 1
	}
	return float64(r.Measured) / float64(r.Cells)
}

// Complete reports whether every intended cell was measured.
func (r *Report) Complete() bool { return r == nil || r.Measured == r.Cells }

// Eventful reports whether the run has anything beyond a clean
// full-coverage sweep to tell: faults enabled, failures, retries,
// quarantines, resumed cells, or checkpoint trouble.
func (r *Report) Eventful() bool {
	if r == nil {
		return false
	}
	return r.Profile != nil || len(r.Failures) > 0 || r.Retried > 0 ||
		r.Quarantined > 0 || r.Resumed > 0 || r.CheckpointError != ""
}
