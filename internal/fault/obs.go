package fault

import "gpuport/internal/obs"

// Emit records the cell's retry history as events on rec's real track,
// attached to the owning span: one EvRetry per failed-and-retried
// attempt and one EvCellFailed if the cell exhausted its retries. The
// extra attributes (chip, app, config, ...) identify the cell; together
// with the attempt index they make each event's identity unique, so
// the exported artifacts are byte-stable regardless of scheduling.
// No-op unless tracing is enabled.
func (r *CellResult) Emit(rec *obs.Recorder, spanID uint64, extra ...obs.Attr) {
	if !rec.TracingEnabled() {
		return
	}
	for i, k := range r.Trail {
		if k == None {
			continue
		}
		attrs := make([]obs.Attr, 0, len(extra)+2)
		attrs = append(attrs, extra...)
		attrs = append(attrs,
			obs.Int(obs.AttrAttempt, int64(i)),
			obs.String(obs.AttrKind, k.String()))
		name := obs.EvRetry
		if i == len(r.Trail)-1 && r.Failed != None {
			name = obs.EvCellFailed
		}
		rec.Event(name, spanID, attrs...)
	}
}
