package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParsePresetsAndSpecs(t *testing.T) {
	if p, err := Parse(""); err != nil || p != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil profile", p, err)
	}
	if p, err := Parse("none"); err != nil || p != nil {
		t.Errorf("Parse(none) = %v, %v; want nil profile", p, err)
	}
	p, err := Parse("light")
	if err != nil || !p.Active() || p.Transient != 0.02 {
		t.Errorf("Parse(light) = %+v, %v", p, err)
	}
	p, err = Parse("heavy,seed=9,retries=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.MaxRetries != 2 || p.Dropout != 1 {
		t.Errorf("preset overrides lost: %+v", p)
	}
	p, err = Parse("transient=0.1,corrupt=0.05,timeout=5e6")
	if err != nil {
		t.Fatal(err)
	}
	if p.Transient != 0.1 || p.Corrupt != 0.05 || p.TimeoutNS != 5e6 {
		t.Errorf("pair spec lost values: %+v", p)
	}
	if p.MaxRetries != 4 || p.BackoffNS != 1e6 {
		t.Errorf("defaults not filled: %+v", p)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"transient", "transient=x", "nope=1", "transient=-0.1",
		"corrupt=1.5", "transient=0.7,hang=0.7",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestProfileStringRoundTrip(t *testing.T) {
	orig := &Profile{Seed: 7, Transient: 0.03, Hang: 0.01, Corrupt: 0.02, Dropout: 1, MaxRetries: 3}
	orig.Fill()
	back, err := Parse(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *orig {
		t.Errorf("round trip: %+v -> %+v", orig, back)
	}
}

func TestNoiseFactorsMatchLegacyStream(t *testing.T) {
	// Attempt 0 must be a pure function of the key; retries differ.
	a := NoiseFactors("42|M4000|bfs-wl|usa.ny|baseline", 0, 3, 0.05)
	b := NoiseFactors("42|M4000|bfs-wl|usa.ny|baseline", 0, 3, 0.05)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("noise stream not deterministic")
	}
	r := NoiseFactors("42|M4000|bfs-wl|usa.ny|baseline", 1, 3, 0.05)
	if reflect.DeepEqual(a, r) {
		t.Fatal("retry stream must differ from first attempt")
	}
	for _, f := range a {
		if f <= 0 || math.Abs(math.Log(f)) > 0.05*6 {
			t.Errorf("implausible noise factor %v", f)
		}
	}
}

func TestMeasureCellCleanUnderZeroRates(t *testing.T) {
	in := NewInjector(Profile{Seed: 1}, []string{"A", "B"}, 100)
	res := in.MeasureCell("k", 3, 0.05)
	if res.Failed != None || res.Attempts != 1 || res.Quarantined != 0 || res.WaitNS != 0 {
		t.Fatalf("zero-rate profile injected something: %+v", res)
	}
	want := NoiseFactors("k", 0, 3, 0.05)
	if !reflect.DeepEqual(res.Factors, want) {
		t.Fatalf("zero-rate factors %v != clean stream %v", res.Factors, want)
	}
}

func TestMeasureCellDeterministic(t *testing.T) {
	p := Profile{Seed: 3, Transient: 0.2, Hang: 0.1, Corrupt: 0.3}
	a := NewInjector(p, []string{"A"}, 10)
	b := NewInjector(p, []string{"A"}, 10)
	for _, key := range []string{"cell-1", "cell-2", "cell-3", "cell-4"} {
		ra, rb := a.MeasureCell(key, 3, 0.05), b.MeasureCell(key, 3, 0.05)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("%s: %+v != %+v", key, ra, rb)
		}
	}
}

func TestMeasureCellRetriesAndFails(t *testing.T) {
	// With certain launch failure every attempt fails; retries exhaust.
	p := Profile{Seed: 5, Transient: 1, MaxRetries: 3}
	in := NewInjector(p, []string{"A"}, 10)
	res := in.MeasureCell("doomed", 3, 0.05)
	if res.Failed != Transient {
		t.Fatalf("Failed = %v, want transient", res.Failed)
	}
	if res.Attempts != 4 {
		t.Errorf("Attempts = %d, want 4 (1 + 3 retries)", res.Attempts)
	}
	if res.Factors != nil {
		t.Errorf("failed cell returned factors %v", res.Factors)
	}
	if res.WaitNS <= 0 {
		t.Error("retries must accumulate virtual backoff time")
	}
}

func TestMeasureCellHangCostsTimeout(t *testing.T) {
	p := Profile{Seed: 5, Hang: 1, MaxRetries: 2, TimeoutNS: 7e6}
	in := NewInjector(p, []string{"A"}, 10)
	res := in.MeasureCell("hung", 3, 0.05)
	if res.Failed != Hang {
		t.Fatalf("Failed = %v, want hang", res.Failed)
	}
	if res.WaitNS < 3*7e6 {
		t.Errorf("WaitNS = %v, want at least 3 deadlines", res.WaitNS)
	}
}

func TestMeasureCellQuarantinesCorruption(t *testing.T) {
	// Corruption over many cells: quarantined samples must show up, and
	// nearly all surviving factors stay within the genuine noise
	// envelope. Median-based rejection has a 50% breakdown point, so a
	// cell whose samples are majority-corrupted (rare at realistic
	// rates) can keep bad values - tolerate a small poisoned fraction.
	p := Profile{Seed: 11, Corrupt: 0.1}
	in := NewInjector(p, []string{"A"}, 10)
	quarantined, cells, poisoned := 0, 0, 0
	for i := 0; i < 400; i++ {
		res := in.MeasureCell(keyN(i), 3, 0.05)
		if res.Failed != None {
			continue
		}
		cells++
		quarantined += res.Quarantined
		for _, f := range res.Factors {
			if f > 1.5 || f < 0.5 {
				poisoned++
				break
			}
		}
	}
	if quarantined == 0 {
		t.Fatal("10% corruption quarantined nothing across 400 cells")
	}
	if cells == 0 {
		t.Fatal("every cell failed")
	}
	if frac := float64(poisoned) / float64(cells); frac > 0.05 {
		t.Errorf("%.1f%% of cells kept corrupted factors, want <= 5%%", frac*100)
	}
}

func keyN(i int) string {
	return "cell-" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
}

func TestDropoutPlanDeterministicAndSpanning(t *testing.T) {
	chips := []string{"A", "B", "C"}
	p := Profile{Seed: 21, Dropout: 1}
	a := NewInjector(p, chips, 50)
	b := NewInjector(p, chips, 50)
	chipA, fromA, okA := a.DropoutPlan()
	chipB, fromB, okB := b.DropoutPlan()
	if !okA || !okB || chipA != chipB || fromA != fromB {
		t.Fatalf("dropout plan not deterministic: (%s,%d,%v) vs (%s,%d,%v)",
			chipA, fromA, okA, chipB, fromB, okB)
	}
	if fromA < 0 || fromA >= 50 {
		t.Fatalf("dropout start %d outside chip span", fromA)
	}
	// Every cell from the start index onward is dead, none before it,
	// and other chips are untouched.
	for i := 0; i < 50; i++ {
		if got := a.Dropped(chipA, i); got != (i >= fromA) {
			t.Errorf("Dropped(%s, %d) = %v", chipA, i, got)
		}
	}
	for _, c := range chips {
		if c == chipA {
			continue
		}
		if a.Dropped(c, 0) || a.Dropped(c, 49) {
			t.Errorf("chip %s wrongly dropped", c)
		}
	}
}

func TestDropoutRateZeroNeverFires(t *testing.T) {
	in := NewInjector(Profile{Seed: 21, Transient: 0.5}, []string{"A"}, 50)
	if _, _, ok := in.DropoutPlan(); ok {
		t.Error("dropout fired with rate 0")
	}
}

func TestFaultRatesApproximatelyHonoured(t *testing.T) {
	// Across many cells, the fraction whose first attempt faulted
	// (Attempts > 1) must sit near transient+hang (binomial, n=2000).
	p := Profile{Seed: 33, Transient: 0.1, Hang: 0.05}
	in := NewInjector(p, []string{"A"}, 10)
	retried := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if res := in.MeasureCell(keyN(i)+"-rate", 3, 0.05); res.Attempts > 1 {
			retried++
		}
	}
	got := float64(retried) / n
	if got < 0.10 || got > 0.20 {
		t.Errorf("observed launch-fault rate %.3f, want ~0.15", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Transient: "transient", Hang: "hang",
		Corrupt: "corrupt", Dropout: "chip-dropout",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
