// Package fault is a deterministic, seeded fault-injection layer that
// models the failure modes of a real multi-vendor OpenCL measurement
// campaign: transient kernel-launch failures, hung launches caught by a
// deadline, corrupted timing samples, and whole-chip dropouts spanning
// a contiguous run of cells.
//
// Every decision - whether a fault fires, how long a retry backs off,
// how badly a sample is corrupted - is a pure function of the profile
// seed and the cell's identity, never of wall-clock time or goroutine
// scheduling. The same seed therefore yields the same fault schedule
// whether the sweep runs serially, across eight workers, or resumes
// from a checkpoint; the harness exploits this to replay the fault
// outcome of an already-persisted cell without re-measuring it.
//
// Time is simulated: backoff delays and hang deadlines accumulate on a
// per-cell virtual clock (reported, never slept), so fault-injected
// test runs finish in milliseconds.
package fault

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"gpuport/internal/stats"
)

// Kind classifies a fault outcome.
type Kind uint8

const (
	// None means the cell (or attempt) completed cleanly.
	None Kind = iota
	// Transient is a kernel-launch failure that may succeed on retry
	// (lost event, ICD hiccup, spurious CL_OUT_OF_RESOURCES).
	Transient
	// Hang is a launch that never completes; the harness detects it
	// when the virtual deadline expires and retries.
	Hang
	// Corrupt marks timing-sample corruption: an attempt whose samples
	// were all quarantined, or (in reports) a cell lost to it.
	Corrupt
	// Dropout is a whole-chip failure: the device disappears from the
	// platform mid-sweep and every later cell on it fails permanently.
	Dropout
)

// String returns the report name of the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Hang:
		return "hang"
	case Corrupt:
		return "corrupt"
	case Dropout:
		return "chip-dropout"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Quarantine parameters: a sample is rejected when it sits further from
// the cell median than max(QuarantineK * MAD, QuarantineFloor * median).
// Corruption multipliers start at 16x (or 1/16th), far outside the
// <= 1.5x envelope the floor admits for genuine log-normal noise, so
// injected corruption is always caught and clean samples never are.
const (
	QuarantineK     = 8.0
	QuarantineFloor = 0.5
)

// Profile configures the fault model and the harness failure policy.
// The zero value injects nothing; Fill supplies policy defaults.
type Profile struct {
	// Seed drives every fault decision stream.
	Seed uint64

	// Transient is the per-attempt probability of a retryable
	// kernel-launch failure.
	Transient float64
	// Hang is the per-attempt probability of a hung launch (costs
	// TimeoutNS of virtual time before the deadline fires).
	Hang float64
	// Corrupt is the per-sample probability of a corrupted timing.
	Corrupt float64
	// Dropout is the probability that the campaign suffers one
	// whole-chip dropout: a seeded choice of chip and starting cell
	// after which every cell on that chip fails permanently.
	Dropout float64

	// MaxRetries is the number of extra attempts after the first
	// before a cell is abandoned (default 4).
	MaxRetries int
	// BackoffNS is the initial retry backoff on the virtual clock
	// (default 1ms); it doubles per attempt up to BackoffCapNS
	// (default 64ms) with deterministic jitter in [0.5, 1.5).
	BackoffNS    float64
	BackoffCapNS float64
	// TimeoutNS is the hang-detection deadline (default 10ms).
	TimeoutNS float64
}

// Fill applies policy defaults in place and returns the profile.
func (p *Profile) Fill() *Profile {
	if p.MaxRetries == 0 {
		p.MaxRetries = 4
	}
	if p.BackoffNS == 0 {
		p.BackoffNS = 1e6
	}
	if p.BackoffCapNS == 0 {
		p.BackoffCapNS = 64e6
	}
	if p.TimeoutNS == 0 {
		p.TimeoutNS = 10e6
	}
	return p
}

// Active reports whether any fault can fire under the profile.
func (p *Profile) Active() bool {
	return p != nil && (p.Transient > 0 || p.Hang > 0 || p.Corrupt > 0 || p.Dropout > 0)
}

// String renders the profile in the spec syntax Parse accepts.
func (p *Profile) String() string {
	if p == nil {
		return "none"
	}
	q := *p
	q.Fill()
	return fmt.Sprintf("transient=%v,hang=%v,corrupt=%v,dropout=%v,seed=%d,retries=%d,backoff=%g,cap=%g,timeout=%g",
		q.Transient, q.Hang, q.Corrupt, q.Dropout, q.Seed, q.MaxRetries, q.BackoffNS, q.BackoffCapNS, q.TimeoutNS)
}

// Light is the preset modelling a healthy but imperfect campaign:
// occasional launch failures and the odd corrupted sample.
func Light() *Profile {
	return (&Profile{Transient: 0.02, Hang: 0.005, Corrupt: 0.02}).Fill()
}

// Heavy is the preset modelling a hostile campaign: frequent transient
// failures, regular hangs and corruption, and a guaranteed whole-chip
// dropout.
func Heavy() *Profile {
	return (&Profile{Transient: 0.10, Hang: 0.02, Corrupt: 0.05, Dropout: 1}).Fill()
}

// Parse reads a fault spec: "none" (or "") for no injection, a preset
// name ("light", "heavy"), or comma-separated key=value pairs
// (transient, hang, corrupt, dropout, seed, retries, backoff, cap,
// timeout). A preset may be followed by overrides: "heavy,seed=9".
func Parse(spec string) (*Profile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	p := &Profile{}
	parts := strings.Split(spec, ",")
	switch parts[0] {
	case "light":
		p = Light()
		parts = parts[1:]
	case "heavy":
		p = Heavy()
		parts = parts[1:]
	}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("fault: bad spec entry %q (want key=value)", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "seed", "retries":
			n, err := strconv.ParseUint(val, 10, 63)
			if err != nil {
				return nil, fmt.Errorf("fault: %s=%q: %w", key, val, err)
			}
			if key == "seed" {
				p.Seed = n
			} else {
				p.MaxRetries = int(n)
			}
		case "transient", "hang", "corrupt", "dropout", "backoff", "cap", "timeout":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: %s=%q: %w", key, val, err)
			}
			if f < 0 {
				return nil, fmt.Errorf("fault: %s must be non-negative, got %v", key, f)
			}
			switch key {
			case "transient":
				p.Transient = f
			case "hang":
				p.Hang = f
			case "corrupt":
				p.Corrupt = f
			case "dropout":
				p.Dropout = f
			case "backoff":
				p.BackoffNS = f
			case "cap":
				p.BackoffCapNS = f
			case "timeout":
				p.TimeoutNS = f
			}
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q", key)
		}
	}
	rates := []struct {
		name string
		rate float64
	}{
		{"transient", p.Transient}, {"hang", p.Hang}, {"corrupt", p.Corrupt}, {"dropout", p.Dropout},
	}
	for _, r := range rates {
		if r.rate > 1 {
			return nil, fmt.Errorf("fault: %s rate %v exceeds 1", r.name, r.rate)
		}
	}
	if p.Transient+p.Hang > 1 {
		return nil, fmt.Errorf("fault: transient+hang = %v exceeds 1", p.Transient+p.Hang)
	}
	return p.Fill(), nil
}

// NoiseFactors draws the keyed measurement-noise stream for one cell
// attempt: runs log-normal multipliers around 1.0. Attempt 0 reproduces
// the historical fault-free stream exactly (same key bytes, same RNG),
// so enabling a zero-rate profile changes nothing; retries append a
// retry suffix to decorrelate their draws.
func NoiseFactors(cellKey string, attempt, runs int, sigma float64) []float64 {
	h := fnv.New64a()
	io.WriteString(h, cellKey)
	if attempt > 0 {
		fmt.Fprintf(h, "|retry%d", attempt)
	}
	rng := stats.NewRNG(h.Sum64())
	out := make([]float64, runs)
	for i := range out {
		out[i] = rng.LogNormal(sigma)
	}
	return out
}

// CellResult is the simulated outcome of measuring one cell under the
// failure policy.
type CellResult struct {
	// Factors holds the surviving unit-base noise multipliers (the
	// caller scales them by the modelled runtime); nil when Failed.
	Factors []float64
	// Attempts counts launches tried; 1 means first-try success, 0 a
	// dropped-out cell that was never attempted.
	Attempts int
	// Quarantined counts samples rejected by the outlier gate.
	Quarantined int
	// WaitNS is the virtual time spent on backoffs and hang deadlines.
	WaitNS float64
	// Failed is None on success, else the kind that exhausted retries.
	Failed Kind
	// Trail records the fate of every attempt in order - None for a
	// successful attempt, else the kind that failed it - so observers
	// can reconstruct the retry history. len(Trail) == Attempts (except
	// for never-attempted dropout cells, where both are zero).
	Trail []Kind
}

// Injector evaluates the fault schedule of one campaign. It is
// stateless apart from the precomputed dropout plan and safe for
// concurrent use.
type Injector struct {
	p Profile

	dropChip string
	dropFrom int
}

// NewInjector prepares the fault schedule for a campaign sweeping the
// given chips with cellsPerChip cells each (in canonical sweep order).
// The dropout plan - whether a chip dies, which one, and from which of
// its cells onward - is fixed here from the profile seed alone.
func NewInjector(p Profile, chips []string, cellsPerChip int) *Injector {
	p.Fill()
	in := &Injector{p: p, dropFrom: -1}
	if p.Dropout > 0 && len(chips) > 0 && cellsPerChip > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "dropout|%d", p.Seed)
		rng := stats.NewRNG(h.Sum64())
		if rng.Float64() < p.Dropout {
			in.dropChip = chips[rng.Intn(len(chips))]
			in.dropFrom = rng.Intn(cellsPerChip)
		}
	}
	return in
}

// Profile returns the (default-filled) profile the injector runs.
func (in *Injector) Profile() Profile { return in.p }

// DropoutPlan reports the scheduled whole-chip dropout, if any: the
// chip and the first of its canonical cell indices to fail.
func (in *Injector) DropoutPlan() (chip string, fromCell int, ok bool) {
	return in.dropChip, in.dropFrom, in.dropChip != ""
}

// Dropped reports whether the chip's cellIdx-th cell (canonical sweep
// order within the chip) is killed by the dropout plan.
func (in *Injector) Dropped(chip string, cellIdx int) bool {
	return chip == in.dropChip && cellIdx >= in.dropFrom
}

// attemptRNG keys the fault-decision stream for one cell attempt. It is
// separate from the measurement-noise stream so that fault decisions
// never shift the timings of cells where no fault fires.
func (in *Injector) attemptRNG(cellKey string, attempt int) *stats.RNG {
	h := fnv.New64a()
	fmt.Fprintf(h, "fault|%d|%s|%d", in.p.Seed, cellKey, attempt)
	return stats.NewRNG(h.Sum64())
}

// backoff returns the capped exponential retry delay for the attempt,
// with deterministic jitter drawn from rng.
func (in *Injector) backoff(rng *stats.RNG, attempt int) float64 {
	d := in.p.BackoffNS * math.Pow(2, float64(attempt))
	if d > in.p.BackoffCapNS {
		d = in.p.BackoffCapNS
	}
	return d * (0.5 + rng.Float64())
}

// corruptMultiplier draws the corruption applied to one sample: a
// factor in [16, 512) modelling a reading inflated by a stalled queue,
// inverted with probability 1/4 to model a truncated (too-fast-to-be-
// true) reading.
func corruptMultiplier(rng *stats.RNG) float64 {
	m := 16 * math.Exp(rng.Float64()*math.Log(32))
	if rng.Float64() < 0.25 {
		return 1 / m
	}
	return m
}

// MeasureCell simulates measuring one cell under the failure policy:
// launch (possibly failing or hanging), sample, quarantine outliers,
// and retry with capped exponential backoff until success or
// exhaustion. The result is a pure function of (profile, cellKey, runs,
// sigma) - the checkpoint-resume path calls it to replay the fault
// outcome of persisted cells without re-measuring them.
func (in *Injector) MeasureCell(cellKey string, runs int, sigma float64) CellResult {
	var res CellResult
	for attempt := 0; ; attempt++ {
		res.Attempts++
		frng := in.attemptRNG(cellKey, attempt)
		fate := None
		u := frng.Float64()
		switch {
		case u < in.p.Hang:
			fate = Hang
			res.WaitNS += in.p.TimeoutNS
		case u < in.p.Hang+in.p.Transient:
			fate = Transient
		}
		if fate == None {
			factors := NoiseFactors(cellKey, attempt, runs, sigma)
			quarantined := 0
			if in.p.Corrupt > 0 {
				for i := range factors {
					if frng.Float64() < in.p.Corrupt {
						factors[i] *= corruptMultiplier(frng)
					}
				}
				factors, quarantined = stats.RejectOutliers(factors, QuarantineK, QuarantineFloor)
			}
			if len(factors) > 0 {
				res.Factors = factors
				res.Quarantined = quarantined
				res.Trail = append(res.Trail, None)
				return res
			}
			// Every sample was quarantined: the attempt produced no
			// usable timing, so treat it as a corruption failure.
			fate = Corrupt
		}
		res.Trail = append(res.Trail, fate)
		if attempt >= in.p.MaxRetries {
			res.Failed = fate
			return res
		}
		res.WaitNS += in.backoff(frng, attempt)
	}
}

// SortKinds returns the kinds a report should enumerate, in a fixed
// order, with their display names.
func SortKinds(counts map[Kind]int) []Kind {
	kinds := make([]Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}
