package fault

import (
	"testing"

	"gpuport/internal/obs"
)

func TestMeasureCellTrail(t *testing.T) {
	// Clean profile: one successful attempt, trail [None].
	in := NewInjector(Profile{}, nil, 0)
	res := in.MeasureCell("chip|app|input|cfg", 3, 0.05)
	if len(res.Trail) != 1 || res.Trail[0] != None {
		t.Errorf("clean trail = %v, want [none]", res.Trail)
	}

	// Certain transient failure: every attempt fails, trail is all
	// Transient and matches Attempts.
	in = NewInjector(Profile{Transient: 1, MaxRetries: 2}, nil, 0)
	res = in.MeasureCell("chip|app|input|cfg", 3, 0.05)
	if res.Failed != Transient {
		t.Fatalf("Failed = %v, want transient", res.Failed)
	}
	if len(res.Trail) != res.Attempts || res.Attempts != 3 {
		t.Fatalf("trail %v vs attempts %d, want 3 entries", res.Trail, res.Attempts)
	}
	for _, k := range res.Trail {
		if k != Transient {
			t.Errorf("trail entry = %v, want transient", k)
		}
	}
}

func TestMeasureCellTrailHasRetriesUnderHeavyProfile(t *testing.T) {
	in := NewInjector(*Heavy(), nil, 0)
	sawRetry := false
	for cell := 0; cell < 200 && !sawRetry; cell++ {
		res := in.MeasureCell(string(rune('a'+cell%26))+string(rune('0'+cell/26)), 3, 0.05)
		for i, k := range res.Trail {
			if k != None && i < len(res.Trail)-1 {
				sawRetry = true
			}
			if i == len(res.Trail)-1 && res.Failed == None && k != None {
				t.Errorf("successful cell ends trail with %v", k)
			}
		}
	}
	if !sawRetry {
		t.Error("heavy profile produced no retried attempt in 200 cells")
	}
}

func TestCellResultEmit(t *testing.T) {
	rec := obs.New().EnableTracing()
	res := CellResult{
		Attempts: 3,
		Trail:    []Kind{Transient, Hang, None},
	}
	res.Emit(rec, 42, obs.String(obs.AttrChip, "gtx1080"))
	failed := CellResult{
		Attempts: 2,
		Failed:   Corrupt,
		Trail:    []Kind{Corrupt, Corrupt},
	}
	failed.Emit(rec, 43)

	s := rec.Snapshot()
	var retries, failures int
	for _, ev := range s.Events {
		switch ev.Name {
		case obs.EvRetry:
			retries++
		case obs.EvCellFailed:
			failures++
		}
	}
	// First cell: attempts 0 and 1 failed then were retried; the
	// second cell's attempt 0 was retried and attempt 1 ended the cell.
	if retries != 3 || failures != 1 {
		t.Errorf("retries = %d failures = %d, want 3 and 1: %+v", retries, failures, s.Events)
	}
	for _, ev := range s.Events {
		if ev.SpanID != 42 && ev.SpanID != 43 {
			t.Errorf("event not attached to a cell span: %+v", ev)
		}
	}

	// Disabled and nil recorders are no-ops.
	res.Emit(obs.New(), 1)
	var nilRec *obs.Recorder
	res.Emit(nilRec, 1)
}
