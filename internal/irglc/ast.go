package irglc

// AST node definitions. Every node carries the token that opened it for
// error reporting.

// Program is a parsed DSL program.
type Program struct {
	Name    string
	Nodes   []*NodeDecl
	Kernels []*Kernel
	Host    *Block
}

// KernelByName returns the kernel with the given name, or nil.
func (p *Program) KernelByName(name string) *Kernel {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// NodeDecl declares a per-node int array with an optional initialiser
// ("node dist: int = INF").
type NodeDecl struct {
	Tok  Token
	Name string
	Init Expr // nil means zero
}

// Kernel is a device kernel definition.
type Kernel struct {
	Tok  Token
	Name string
	Body *Block
}

// Block is a statement list.
type Block struct {
	Stmts []Stmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// Assign writes to a node array element or a local variable.
type Assign struct {
	Tok    Token
	Target Expr // *Index or *Var
	Value  Expr
}

// Let introduces a kernel-local (per-item) variable.
type Let struct {
	Tok   Token
	Name  string
	Value Expr
}

// If is a conditional with an optional else block.
type If struct {
	Tok  Token
	Cond Expr
	Then *Block
	Else *Block
}

// Forall is the outer data-parallel loop: over the worklist or over
// all nodes.
type Forall struct {
	Tok      Token
	Var      string
	Worklist bool // true: worklist-driven; false: over all nodes
	Body     *Block
}

// Foreach iterates the out-edges of a node expression, binding the
// destination and weight.
type Foreach struct {
	Tok    Token
	DstVar string
	WVar   string
	Node   Expr
	Body   *Block
}

// Push appends a node to the (implicit) worklist.
type Push struct {
	Tok  Token
	Node Expr
}

// Iterate is the host fixpoint loop: launch the kernel over the
// worklist until it drains.
type Iterate struct {
	Tok    Token
	Kernel string
}

// Expr is implemented by all expression nodes.
type Expr interface{ expr() }

// IntLit is an integer literal, INF, SRC or NUMNODES.
type IntLit struct {
	Tok  Token
	Kind Kind // INT, KWInf, KWSrc or KWNumNodes
	Val  int64
}

// Var references a loop variable or a let binding.
type Var struct {
	Tok  Token
	Name string
}

// Index references a node array element.
type Index struct {
	Tok   Token
	Array string
	At    Expr
}

// Call is a builtin call: atomicMin, atomicMax, atomicAdd, degree.
type Call struct {
	Tok  Token
	Name string
	Args []Expr
}

// Binary is a binary operation.
type Binary struct {
	Tok  Token
	Op   Kind
	L, R Expr
}

// Unary is !x or -x.
type Unary struct {
	Tok Token
	Op  Kind
	X   Expr
}

func (*Assign) stmt()  {}
func (*Let) stmt()     {}
func (*If) stmt()      {}
func (*Forall) stmt()  {}
func (*Foreach) stmt() {}
func (*Push) stmt()    {}
func (*Iterate) stmt() {}

func (*IntLit) expr() {}
func (*Var) expr()    {}
func (*Index) expr()  {}
func (*Call) expr()   {}
func (*Binary) expr() {}
func (*Unary) expr()  {}
