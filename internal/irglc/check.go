package irglc

import "fmt"

// Check validates a parsed program: names resolve, builtins get the
// right arity, loop structure is legal (foreach inside forall, iterate
// only in host code, push only in kernels or host top level), and
// conditions are boolean while arithmetic is integer.
func Check(p *Program) error {
	c := &checker{prog: p, arrays: map[string]bool{}}
	for _, d := range p.Nodes {
		if c.arrays[d.Name] {
			return fmt.Errorf("irglc: duplicate node array %q", d.Name)
		}
		c.arrays[d.Name] = true
		if d.Init != nil {
			if ty, err := c.exprType(d.Init, nil); err != nil {
				return err
			} else if ty != tyInt {
				return fmt.Errorf("irglc: initialiser of %q is not an int", d.Name)
			}
		}
	}
	seen := map[string]bool{}
	for _, k := range p.Kernels {
		if seen[k.Name] {
			return fmt.Errorf("irglc: duplicate kernel %q", k.Name)
		}
		seen[k.Name] = true
		if err := c.checkBlock(k.Body, ctx{inKernel: true}, map[string]bool{}); err != nil {
			return err
		}
		// A kernel must contain exactly one top-level forall.
		foralls := 0
		for _, s := range k.Body.Stmts {
			if _, ok := s.(*Forall); ok {
				foralls++
			}
		}
		if foralls != 1 || len(k.Body.Stmts) != 1 {
			return fmt.Errorf("irglc: kernel %q must consist of exactly one forall loop", k.Name)
		}
	}
	return c.checkBlock(p.Host, ctx{inHost: true}, map[string]bool{})
}

type checker struct {
	prog   *Program
	arrays map[string]bool
}

type ctx struct {
	inHost    bool
	inKernel  bool
	inForall  bool
	inForeach bool
}

type ty int

const (
	tyInt ty = iota
	tyBool
)

func (c *checker) checkBlock(b *Block, cx ctx, vars map[string]bool) error {
	local := map[string]bool{}
	for k := range vars {
		local[k] = true
	}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s, cx, local); err != nil {
			return err
		}
	}
	return nil
}

func errAt(t Token, format string, args ...any) error {
	return fmt.Errorf("irglc: %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (c *checker) checkStmt(s Stmt, cx ctx, vars map[string]bool) error {
	switch st := s.(type) {
	case *Let:
		if !cx.inForall && !cx.inHost {
			return errAt(st.Tok, "let is only allowed inside forall bodies or host code")
		}
		ty, err := c.exprType(st.Value, vars)
		if err != nil {
			return err
		}
		if ty != tyInt {
			return errAt(st.Tok, "let binds ints, got a boolean")
		}
		vars[st.Name] = true
		return nil
	case *Assign:
		switch tgt := st.Target.(type) {
		case *Index:
			if !c.arrays[tgt.Array] {
				return errAt(tgt.Tok, "unknown node array %q", tgt.Array)
			}
			if ty, err := c.exprType(tgt.At, vars); err != nil {
				return err
			} else if ty != tyInt {
				return errAt(tgt.Tok, "array index must be an int")
			}
		case *Var:
			if !vars[tgt.Name] {
				return errAt(tgt.Tok, "assignment to undeclared variable %q (use let)", tgt.Name)
			}
		}
		ty, err := c.exprType(st.Value, vars)
		if err != nil {
			return err
		}
		if ty != tyInt {
			return errAt(st.Tok, "assigned value must be an int")
		}
		return nil
	case *If:
		ty, err := c.exprType(st.Cond, vars)
		if err != nil {
			return err
		}
		if ty != tyBool {
			return errAt(st.Tok, "if condition must be boolean")
		}
		if err := c.checkBlock(st.Then, cx, vars); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(st.Else, cx, vars)
		}
		return nil
	case *Forall:
		if !cx.inKernel && !cx.inHost {
			return errAt(st.Tok, "forall is only allowed inside kernels or host code")
		}
		if cx.inHost && st.Worklist {
			return errAt(st.Tok, "host forall initialisation loops run over nodes, not the worklist")
		}
		if cx.inForall {
			return errAt(st.Tok, "forall loops do not nest")
		}
		inner := cx
		inner.inForall = true
		nv := map[string]bool{st.Var: true}
		for k := range vars {
			nv[k] = true
		}
		return c.checkBlock(st.Body, inner, nv)
	case *Foreach:
		if !cx.inForall || !cx.inKernel {
			return errAt(st.Tok, "foreach must appear inside a kernel's forall loop")
		}
		if cx.inForeach {
			return errAt(st.Tok, "foreach loops do not nest")
		}
		if ty, err := c.exprType(st.Node, vars); err != nil {
			return err
		} else if ty != tyInt {
			return errAt(st.Tok, "edges() takes a node id")
		}
		inner := cx
		inner.inForeach = true
		nv := map[string]bool{st.DstVar: true, st.WVar: true}
		for k := range vars {
			nv[k] = true
		}
		return c.checkBlock(st.Body, inner, nv)
	case *Push:
		if !cx.inForall && !cx.inHost {
			return errAt(st.Tok, "push is only allowed in kernels or host code")
		}
		ty, err := c.exprType(st.Node, vars)
		if err != nil {
			return err
		}
		if ty != tyInt {
			return errAt(st.Tok, "push takes a node id")
		}
		return nil
	case *Iterate:
		if !cx.inHost {
			return errAt(st.Tok, "iterate is host-only")
		}
		if c.prog.KernelByName(st.Kernel) == nil {
			return errAt(st.Tok, "iterate references unknown kernel %q", st.Kernel)
		}
		return nil
	default:
		return fmt.Errorf("irglc: unknown statement %T", s)
	}
}

// builtins maps name -> (arity, first arg must be array index, result type).
var builtins = map[string]struct {
	arity      int
	firstIndex bool
	result     ty
}{
	"atomicMin": {2, true, tyBool},
	"atomicMax": {2, true, tyBool},
	"atomicAdd": {2, true, tyInt},
	"degree":    {1, false, tyInt},
	"min":       {2, false, tyInt},
	"max":       {2, false, tyInt},
}

func (c *checker) exprType(e Expr, vars map[string]bool) (ty, error) {
	switch ex := e.(type) {
	case *IntLit:
		return tyInt, nil
	case *Var:
		if vars == nil || !vars[ex.Name] {
			return 0, errAt(ex.Tok, "unknown variable %q", ex.Name)
		}
		return tyInt, nil
	case *Index:
		if !c.arrays[ex.Array] {
			return 0, errAt(ex.Tok, "unknown node array %q", ex.Array)
		}
		if t, err := c.exprType(ex.At, vars); err != nil {
			return 0, err
		} else if t != tyInt {
			return 0, errAt(ex.Tok, "array index must be an int")
		}
		return tyInt, nil
	case *Call:
		b, ok := builtins[ex.Name]
		if !ok {
			return 0, errAt(ex.Tok, "unknown builtin %q", ex.Name)
		}
		if len(ex.Args) != b.arity {
			return 0, errAt(ex.Tok, "%s takes %d arguments, got %d", ex.Name, b.arity, len(ex.Args))
		}
		if b.firstIndex {
			if _, ok := ex.Args[0].(*Index); !ok {
				return 0, errAt(ex.Tok, "%s requires a node array element as its first argument", ex.Name)
			}
		}
		for _, a := range ex.Args {
			if t, err := c.exprType(a, vars); err != nil {
				return 0, err
			} else if t != tyInt {
				return 0, errAt(ex.Tok, "%s arguments must be ints", ex.Name)
			}
		}
		return b.result, nil
	case *Binary:
		lt, err := c.exprType(ex.L, vars)
		if err != nil {
			return 0, err
		}
		rt, err := c.exprType(ex.R, vars)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case AndAnd, OrOr:
			if lt != tyBool || rt != tyBool {
				return 0, errAt(ex.Tok, "logical operators need boolean operands")
			}
			return tyBool, nil
		case Eq, Neq, Lt, Leq, Gt, Geq:
			if lt != tyInt || rt != tyInt {
				return 0, errAt(ex.Tok, "comparisons need int operands")
			}
			return tyBool, nil
		default:
			if lt != tyInt || rt != tyInt {
				return 0, errAt(ex.Tok, "arithmetic needs int operands")
			}
			return tyInt, nil
		}
	case *Unary:
		t, err := c.exprType(ex.X, vars)
		if err != nil {
			return 0, err
		}
		if ex.Op == Not {
			if t != tyBool {
				return 0, errAt(ex.Tok, "! needs a boolean")
			}
			return tyBool, nil
		}
		if t != tyInt {
			return 0, errAt(ex.Tok, "unary minus needs an int")
		}
		return tyInt, nil
	default:
		return 0, fmt.Errorf("irglc: unknown expression %T", e)
	}
}
