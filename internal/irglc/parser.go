package irglc

import "fmt"

// Parse lexes and parses a DSL program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(t Token, format string, args ...any) error {
	return fmt.Errorf("irglc: %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k Kind, what string) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errorf(t, "expected %s, found %q", what, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) program() (*Program, error) {
	if _, err := p.expect(KWProgram, "'program'"); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT, "program name")
	if err != nil {
		return nil, err
	}
	prog := &Program{Name: name.Text}
	for p.cur().Kind != EOF {
		switch p.cur().Kind {
		case KWNode:
			d, err := p.nodeDecl()
			if err != nil {
				return nil, err
			}
			prog.Nodes = append(prog.Nodes, d)
		case KWKernel:
			k, err := p.kernel()
			if err != nil {
				return nil, err
			}
			prog.Kernels = append(prog.Kernels, k)
		case KWHost:
			if prog.Host != nil {
				return nil, p.errorf(p.cur(), "duplicate host block")
			}
			p.pos++
			b, err := p.block()
			if err != nil {
				return nil, err
			}
			prog.Host = b
		default:
			return nil, p.errorf(p.cur(), "expected node, kernel or host declaration")
		}
	}
	if prog.Host == nil {
		return nil, fmt.Errorf("irglc: program %s has no host block", prog.Name)
	}
	return prog, nil
}

func (p *parser) nodeDecl() (*NodeDecl, error) {
	tok := p.next() // 'node'
	name, err := p.expect(IDENT, "array name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon, "':'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(KWInt, "'int'"); err != nil {
		return nil, err
	}
	d := &NodeDecl{Tok: tok, Name: name.Text}
	if p.cur().Kind == OpAssign {
		p.pos++
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

func (p *parser) kernel() (*Kernel, error) {
	tok := p.next() // 'kernel'
	name, err := p.expect(IDENT, "kernel name")
	if err != nil {
		return nil, err
	}
	b, err := p.block()
	if err != nil {
		return nil, err
	}
	return &Kernel{Tok: tok, Name: name.Text, Body: b}, nil
}

func (p *parser) block() (*Block, error) {
	if _, err := p.expect(LBrace, "'{'"); err != nil {
		return nil, err
	}
	b := &Block{}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, p.errorf(p.cur(), "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // '}'
	return b, nil
}

func (p *parser) statement() (Stmt, error) {
	switch p.cur().Kind {
	case KWLet:
		tok := p.next()
		name, err := p.expect(IDENT, "variable name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(OpAssign, "'='"); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &Let{Tok: tok, Name: name.Text, Value: e}, nil
	case KWIf:
		tok := p.next()
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &If{Tok: tok, Cond: cond, Then: then}
		if p.cur().Kind == KWElse {
			p.pos++
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case KWForall:
		tok := p.next()
		v, err := p.expect(IDENT, "loop variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KWIn, "'in'"); err != nil {
			return nil, err
		}
		var wl bool
		switch p.cur().Kind {
		case KWWorklist:
			wl = true
		case KWNodes:
			wl = false
		default:
			return nil, p.errorf(p.cur(), "expected 'worklist' or 'nodes'")
		}
		p.pos++
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &Forall{Tok: tok, Var: v.Text, Worklist: wl, Body: body}, nil
	case KWForeach:
		tok := p.next()
		if _, err := p.expect(LParen, "'('"); err != nil {
			return nil, err
		}
		dst, err := p.expect(IDENT, "destination variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Comma, "','"); err != nil {
			return nil, err
		}
		wv, err := p.expect(IDENT, "weight variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen, "')'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(KWIn, "'in'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(KWEdges, "'edges'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen, "'('"); err != nil {
			return nil, err
		}
		node, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen, "')'"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &Foreach{Tok: tok, DstVar: dst.Text, WVar: wv.Text, Node: node, Body: body}, nil
	case KWPush:
		tok := p.next()
		if _, err := p.expect(LParen, "'('"); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen, "')'"); err != nil {
			return nil, err
		}
		return &Push{Tok: tok, Node: e}, nil
	case KWIterate:
		tok := p.next()
		name, err := p.expect(IDENT, "kernel name")
		if err != nil {
			return nil, err
		}
		return &Iterate{Tok: tok, Kernel: name.Text}, nil
	case IDENT:
		// Assignment: lvalue '=' expr.
		target, err := p.primary()
		if err != nil {
			return nil, err
		}
		tok, err := p.expect(OpAssign, "'=' (only assignments may start with an identifier)")
		if err != nil {
			return nil, err
		}
		value, err := p.expression()
		if err != nil {
			return nil, err
		}
		switch target.(type) {
		case *Index, *Var:
			return &Assign{Tok: tok, Target: target, Value: value}, nil
		default:
			return nil, p.errorf(tok, "cannot assign to this expression")
		}
	default:
		return nil, p.errorf(p.cur(), "expected a statement, found %q", p.cur().Text)
	}
}

// Expression parsing with precedence climbing.

var binPrec = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	Eq:     3, Neq: 3,
	Lt: 4, Leq: 4, Gt: 4, Geq: 4,
	Plus: 5, Minus: 5,
	Star: 6, Slash: 6, Percent: 6,
}

func (p *parser) expression() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, ok := binPrec[op.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Tok: op, Op: op.Kind, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().Kind {
	case Not, Minus:
		tok := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Tok: tok, Op: tok.Kind, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.pos++
		return &IntLit{Tok: t, Kind: INT, Val: t.Int}, nil
	case KWInf, KWSrc, KWNumNodes:
		p.pos++
		return &IntLit{Tok: t, Kind: t.Kind}, nil
	case LParen:
		p.pos++
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.pos++
		switch p.cur().Kind {
		case LBracket:
			p.pos++
			at, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket, "']'"); err != nil {
				return nil, err
			}
			return &Index{Tok: t, Array: t.Text, At: at}, nil
		case LParen:
			p.pos++
			call := &Call{Tok: t, Name: t.Text}
			for p.cur().Kind != RParen {
				arg, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.cur().Kind == Comma {
					p.pos++
				} else {
					break
				}
			}
			if _, err := p.expect(RParen, "')'"); err != nil {
				return nil, err
			}
			return call, nil
		default:
			return &Var{Tok: t, Name: t.Text}, nil
		}
	default:
		return nil, p.errorf(t, "expected an expression, found %q", t.Text)
	}
}
