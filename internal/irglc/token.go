// Package irglc is a small compiler for an IrGL-like graph-algorithm
// DSL - the missing "compiler" half of the study's system. The paper's
// framework takes algorithms written in a DSL, applies the optimisation
// space, and generates OpenCL; this package does the same in
// miniature:
//
//   - a lexer, parser and semantic checker for the DSL (token.go,
//     parser.go, check.go);
//   - an interpreter that executes a compiled program on a graph
//     through the instrumented irgl runtime, producing the same traces
//     as the hand-written applications (interp.go) - equivalence is
//     tested against internal/apps;
//   - a code generator that emits OpenCL C for any optimisation
//     configuration, making each transformation of Section V concrete:
//     cooperative conversion, nested parallelism (wg / sg / fg),
//     iteration outlining behind a portable global barrier, and the
//     workgroup size switch (codegen.go).
//
// The DSL (see testdata in the package tests and cmd/irglc) looks like:
//
//	program bfs
//	node dist: int = INF
//	host {
//	    dist[SRC] = 0
//	    push(SRC)
//	    iterate relax
//	}
//	kernel relax {
//	    forall u in worklist {
//	        foreach (v, w) in edges(u) {
//	            if atomicMin(dist[v], dist[u] + 1) { push(v) }
//	        }
//	    }
//	}
package irglc

import "fmt"

// Kind enumerates token kinds.
type Kind int

const (
	EOF Kind = iota
	IDENT
	INT
	// Keywords.
	KWProgram
	KWNode
	KWKernel
	KWHost
	KWForall
	KWForeach
	KWIn
	KWWorklist
	KWNodes
	KWEdges
	KWIf
	KWElse
	KWPush
	KWIterate
	KWLet
	KWInt
	KWInf
	KWSrc
	KWNumNodes
	// Punctuation and operators.
	LBrace
	RBrace
	LParen
	RParen
	LBracket
	RBracket
	Comma
	Colon
	OpAssign
	Plus
	Minus
	Star
	Slash
	Percent
	Eq
	Neq
	Lt
	Leq
	Gt
	Geq
	AndAnd
	OrOr
	Not
)

var keywords = map[string]Kind{
	"program":  KWProgram,
	"node":     KWNode,
	"kernel":   KWKernel,
	"host":     KWHost,
	"forall":   KWForall,
	"foreach":  KWForeach,
	"in":       KWIn,
	"worklist": KWWorklist,
	"nodes":    KWNodes,
	"edges":    KWEdges,
	"if":       KWIf,
	"else":     KWElse,
	"push":     KWPush,
	"iterate":  KWIterate,
	"let":      KWLet,
	"int":      KWInt,
	"INF":      KWInf,
	"SRC":      KWSrc,
	"NUMNODES": KWNumNodes,
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind Kind
	Text string
	Int  int64
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == IDENT || t.Kind == INT {
		return fmt.Sprintf("%s@%d:%d", t.Text, t.Line, t.Col)
	}
	return fmt.Sprintf("%q@%d:%d", t.Text, t.Line, t.Col)
}

// Lex tokenises src. Comments run from '#' to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	emit := func(k Kind, text string, val int64) {
		toks = append(toks, Token{Kind: k, Text: text, Int: val, Line: line, Col: col})
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			col = 1
			i++
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
			continue
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
			continue
		case c >= '0' && c <= '9':
			j := i
			var v int64
			for j < n && src[j] >= '0' && src[j] <= '9' {
				v = v*10 + int64(src[j]-'0')
				j++
			}
			emit(INT, src[i:j], v)
			col += j - i
			i = j
			continue
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(src[j]) {
				j++
			}
			word := src[i:j]
			if k, ok := keywords[word]; ok {
				emit(k, word, 0)
			} else {
				emit(IDENT, word, 0)
			}
			col += j - i
			i = j
			continue
		}

		two := ""
		if i+1 < n {
			two = src[i : i+2]
		}
		switch two {
		case "==":
			emit(Eq, two, 0)
		case "!=":
			emit(Neq, two, 0)
		case "<=":
			emit(Leq, two, 0)
		case ">=":
			emit(Geq, two, 0)
		case "&&":
			emit(AndAnd, two, 0)
		case "||":
			emit(OrOr, two, 0)
		default:
			two = ""
		}
		if two != "" {
			i += 2
			col += 2
			continue
		}

		var k Kind
		switch c {
		case '{':
			k = LBrace
		case '}':
			k = RBrace
		case '(':
			k = LParen
		case ')':
			k = RParen
		case '[':
			k = LBracket
		case ']':
			k = RBracket
		case ',':
			k = Comma
		case ':':
			k = Colon
		case '=':
			k = OpAssign
		case '+':
			k = Plus
		case '-':
			k = Minus
		case '*':
			k = Star
		case '/':
			k = Slash
		case '%':
			k = Percent
		case '<':
			k = Lt
		case '>':
			k = Gt
		case '!':
			k = Not
		default:
			return nil, fmt.Errorf("irglc: %d:%d: unexpected character %q", line, col, c)
		}
		emit(k, string(c), 0)
		i++
		col++
	}
	toks = append(toks, Token{Kind: EOF, Text: "", Line: line, Col: col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }
