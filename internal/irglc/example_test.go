package irglc_test

import (
	"fmt"

	"gpuport/internal/graph"
	"gpuport/internal/irglc"
	"gpuport/internal/opt"
)

// Compile a DSL program, run it on a graph and inspect the result.
func ExampleCompile() {
	exe, err := irglc.Compile(irglc.BFSSource)
	if err != nil {
		panic(err)
	}
	g := graph.GenerateRoad("example-road", 10, 1)
	trace, arrays, err := exe.Run(g)
	if err != nil {
		panic(err)
	}
	dist := arrays["dist"]
	fmt.Println("launches:", trace.TotalLaunches() > 0)
	fmt.Println("source distance:", dist[0] >= 0)
	// Output:
	// launches: true
	// source distance: true
}

// Emit the OpenCL translation of a program under one configuration.
func ExampleGenerateOpenCL() {
	exe, err := irglc.Compile(irglc.SSSPSource)
	if err != nil {
		panic(err)
	}
	cfg, _ := opt.Parse("fg8")
	src := irglc.GenerateOpenCL(exe.Program(), cfg)
	fmt.Println(len(src) > 0)
	// Output:
	// true
}
