package irglc

import (
	"strings"
	"testing"
	"testing/quick"

	"gpuport/internal/stats"
)

// TestParserNeverPanics throws token soup at the full compile pipeline:
// any input must produce a value or an error, never a panic.
func TestParserNeverPanics(t *testing.T) {
	fragments := []string{
		"program", "node", "kernel", "host", "forall", "foreach", "in",
		"worklist", "nodes", "edges", "if", "else", "push", "iterate",
		"let", "int", "INF", "SRC", "NUMNODES", "x", "y", "dist", "42",
		"{", "}", "(", ")", "[", "]", ",", ":", "=", "+", "-", "*", "/",
		"%", "==", "!=", "<", "<=", ">", ">=", "&&", "||", "!",
	}
	f := func(seed uint64, n uint8) bool {
		rng := stats.NewRNG(seed)
		var b strings.Builder
		for i := 0; i < int(n); i++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
			b.WriteByte(' ')
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("compile panicked on %q: %v", b.String(), r)
			}
		}()
		_, _ = Compile(b.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMutatedSamplesNeverPanic corrupts valid programs byte by byte.
func TestMutatedSamplesNeverPanic(t *testing.T) {
	rng := stats.NewRNG(99)
	for _, src := range Samples() {
		for trial := 0; trial < 200; trial++ {
			b := []byte(src)
			// 1-3 random mutations.
			for m := 0; m <= rng.Intn(3); m++ {
				pos := rng.Intn(len(b))
				switch rng.Intn(3) {
				case 0:
					b[pos] = byte(32 + rng.Intn(95))
				case 1:
					b = append(b[:pos], b[pos+1:]...)
				default:
					b = append(b[:pos], append([]byte{'{'}, b[pos:]...)...)
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("compile panicked on mutated source: %v", r)
					}
				}()
				_, _ = Compile(string(b))
			}()
		}
	}
}
