package irglc

import (
	"strings"
	"testing"

	"gpuport/internal/apps"
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
	"gpuport/internal/opt"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("program x # comment\nnode d: int = 42\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KWProgram, IDENT, KWNode, IDENT, Colon, KWInt, OpAssign, INT, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d (%v)", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
	if toks[7].Int != 42 {
		t.Errorf("int literal = %d", toks[7].Int)
	}
}

func TestLexOperatorsAndErrors(t *testing.T) {
	toks, err := Lex("== != <= >= && || < > ! + - * / %")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Eq, Neq, Leq, Geq, AndAnd, OrOr, Lt, Gt, Not, Plus, Minus, Star, Slash, Percent, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %d, want %d", i, toks[i].Kind, k)
		}
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("expected lex error for '@'")
	}
}

func TestParseSamples(t *testing.T) {
	for name, src := range Samples() {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prog.Name != name {
			t.Errorf("program name %q, want %q", prog.Name, name)
		}
		if err := Check(prog); err != nil {
			t.Errorf("%s: check: %v", name, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                             // no program
		"program",                      // missing name
		"program p",                    // no host
		"program p host { iterate k }", // unknown kernel
		"program p host { push( }",     // bad expr
		"program p kernel k { } host {}",
		"program p node d: int host { d[0 = 1 }",
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%.40q) should fail", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := map[string]string{
		"dup array": `program p
node d: int
node d: int
host {}`,
		"unknown array": `program p
host { x[0] = 1 }`,
		"bool assign": `program p
node d: int
host { d[0] = 1 < 2 }`,
		"iterate topo": `program p
node d: int
kernel k { forall u in nodes { d[u] = 0 } }
host { iterate k }`,
		"foreach outside kernel": `program p
node d: int
host { forall u in nodes { foreach (v, w) in edges(u) { d[v] = 0 } } }`,
		"push of bool": `program p
kernel k { forall u in worklist { push(1 < 2) } }
host { push(0) iterate k }`,
		"two foralls": `program p
node d: int
kernel k { forall u in worklist { d[u] = 0 } forall v in worklist { d[v] = 0 } }
host { iterate k }`,
		"atomic on scalar": `program p
node d: int
kernel k { forall u in worklist { if atomicMin(u, 3) { d[u] = 0 } } }
host { iterate k }`,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: expected compile error", name)
		}
	}
}

// TestBFSTraceEquivalence is the central compiler test: the DSL BFS
// must produce byte-identical per-launch statistics to the hand-written
// bfs-wl application, and the same distances.
func TestBFSTraceEquivalence(t *testing.T) {
	exe, err := Compile(BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Graph{
		graph.GenerateRoad("eq-road", 20, 3),
		graph.GenerateRMAT("eq-rmat", 9, 8, 4),
	} {
		dslTrace, arrays, err := exe.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		app, _ := apps.ByName("bfs-wl")
		nativeTrace, out := app.Run(g)
		native := out.([]int32)

		dist := arrays["dist"]
		for i := range native {
			if dist[i] != native[i] {
				t.Fatalf("%s: dist[%d] = %d, native %d", g.Name, i, dist[i], native[i])
			}
		}
		compareTraces(t, g.Name, dslTrace, nativeTrace)
	}
}

func TestSSSPTraceEquivalence(t *testing.T) {
	exe, err := Compile(SSSPSource)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GenerateRoad("eq-sssp", 16, 9)
	dslTrace, arrays, err := exe.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := apps.ByName("sssp-wl")
	nativeTrace, out := app.Run(g)
	native := out.([]int32)
	dist := arrays["dist"]
	for i := range native {
		if dist[i] != native[i] {
			t.Fatalf("dist[%d] = %d, native %d", i, dist[i], native[i])
		}
	}
	compareTraces(t, g.Name, dslTrace, nativeTrace)
}

func TestCCTraceEquivalence(t *testing.T) {
	exe, err := Compile(CCSource)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GenerateUniform("eq-cc", 600, 4, 8)
	dslTrace, arrays, err := exe.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := apps.ByName("cc-wl")
	nativeTrace, out := app.Run(g)
	native := out.([]int32)
	comp := arrays["comp"]
	for i := range native {
		if comp[i] != native[i] {
			t.Fatalf("comp[%d] = %d, native %d", i, comp[i], native[i])
		}
	}
	compareTraces(t, g.Name, dslTrace, nativeTrace)
}

// compareTraces asserts identical per-launch statistics (names differ).
func compareTraces(t *testing.T, input string, a, b *irgl.Trace) {
	t.Helper()
	if len(a.Launches) != len(b.Launches) {
		t.Fatalf("%s: launches %d vs %d", input, len(a.Launches), len(b.Launches))
	}
	for i := range a.Launches {
		la, lb := a.Launches[i], b.Launches[i]
		la.Name, lb.Name = "", ""
		if la != lb {
			t.Fatalf("%s: launch %d stats differ:\n dsl   %+v\n native %+v", input, i, la, lb)
		}
	}
	if len(a.Loops) != len(b.Loops) {
		t.Fatalf("%s: loops %d vs %d", input, len(a.Loops), len(b.Loops))
	}
	for i := range a.Loops {
		if a.Loops[i].Iterations != b.Loops[i].Iterations {
			t.Fatalf("%s: loop %d iterations %d vs %d", input, i,
				a.Loops[i].Iterations, b.Loops[i].Iterations)
		}
	}
}

func TestHostForallInit(t *testing.T) {
	src := `program init
node a: int
host {
    forall u in nodes {
        a[u] = u * 2
    }
}`
	exe, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GenerateUniform("init-g", 50, 3, 1)
	_, arrays, err := exe.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range arrays["a"] {
		if v != int32(i*2) {
			t.Fatalf("a[%d] = %d", i, v)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	src := `program oops
node d: int
host { d[NUMNODES] = 1 }`
	exe, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GenerateUniform("oops-g", 10, 2, 1)
	if _, _, err := exe.Run(g); err == nil {
		t.Error("out-of-range store should fail at runtime")
	}
	src2 := `program div
node d: int
host { d[0] = 1 / 0 }`
	exe2, err := Compile(src2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := exe2.Run(g); err == nil {
		t.Error("division by zero should fail at runtime")
	}
}

func TestCodegenMarkers(t *testing.T) {
	exe, err := Compile(BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	prog := exe.Program()
	cases := []struct {
		cfg     opt.Config
		want    []string
		wantNot []string
	}{
		{
			cfg:     opt.Config{},
			want:    []string{"#define WG_SIZE 128", "atomic_add(out_wl_tail, 1)", "clEnqueueNDRangeKernel"},
			wantNot: []string{"coop_push", "sub_group_barrier", "__global_barrier", "FG_CHUNK"},
		},
		{
			cfg:  opt.Config{CoopCV: true},
			want: []string{"coop_push(out_wl, out_wl_tail", "sub_group_scan_exclusive_add", "sub_group_reduce_add"},
		},
		{
			cfg:  opt.Config{SG: true},
			want: []string{"sub_group_barrier(CLK_LOCAL_MEM_FENCE)", "get_sub_group_local_id()"},
		},
		{
			cfg:  opt.Config{WG: true},
			want: []string{"barrier(CLK_LOCAL_MEM_FENCE)", "deg >= WG_SIZE", "lanes idle"},
		},
		{
			cfg:  opt.Config{FG: opt.FG8},
			want: []string{"#define FG_CHUNK 8", "base += FG_CHUNK"},
		},
		{
			cfg:  opt.Config{FG: opt.FG1},
			want: []string{"#define FG_CHUNK 1"},
		},
		{
			cfg:     opt.Config{OiterGB: true},
			want:    []string{"__global_barrier(bar)", "persistent kernel"},
			wantNot: []string{"clEnqueueNDRangeKernel"},
		},
		{
			cfg:  opt.Config{SZ256: true},
			want: []string{"#define WG_SIZE 256"},
		},
		{
			cfg: opt.Config{CoopCV: true, SG: true, WG: true, FG: opt.FG8, OiterGB: true, SZ256: true},
			want: []string{
				"#define WG_SIZE 256", "coop_push", "sub_group_barrier",
				"barrier(CLK_LOCAL_MEM_FENCE)", "FG_CHUNK 8", "__global_barrier",
			},
		},
	}
	for _, c := range cases {
		src := GenerateOpenCL(prog, c.cfg)
		for _, want := range c.want {
			if !strings.Contains(src, want) {
				t.Errorf("[%s]: generated code missing %q", c.cfg, want)
			}
		}
		for _, bad := range c.wantNot {
			if strings.Contains(src, bad) {
				t.Errorf("[%s]: generated code should not contain %q", c.cfg, bad)
			}
		}
	}
}

func TestCodegenAllConfigsProduceOutput(t *testing.T) {
	exe, _ := Compile(SSSPSource)
	for _, cfg := range opt.All() {
		src := GenerateOpenCL(exe.Program(), cfg)
		if !strings.Contains(src, "__kernel void relax(") {
			t.Fatalf("[%s]: kernel missing", cfg)
		}
		if !strings.Contains(src, "atomic_min(&dist[") {
			t.Fatalf("[%s]: atomicMin lowering missing", cfg)
		}
	}
}
