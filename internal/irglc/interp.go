package irglc

import (
	"fmt"

	"gpuport/internal/graph"
	"gpuport/internal/irgl"
)

// Infinity mirrors the apps package's unreached marker; the DSL's INF
// literal evaluates to it.
const Infinity int64 = 1<<30 - 1

// Executable is a compiled DSL program ready to run on graphs.
type Executable struct {
	prog *Program
}

// Compile parses and checks a DSL program.
func Compile(src string) (*Executable, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	// iterate only makes sense over worklist-driven kernels.
	var walk func(b *Block) error
	walk = func(b *Block) error {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *Iterate:
				k := prog.KernelByName(st.Kernel)
				fa := k.Body.Stmts[0].(*Forall)
				if !fa.Worklist {
					return errAt(st.Tok, "iterate needs a worklist-driven kernel, %q is topology-driven", st.Kernel)
				}
			case *If:
				if err := walk(st.Then); err != nil {
					return err
				}
				if st.Else != nil {
					if err := walk(st.Else); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := walk(prog.Host); err != nil {
		return nil, err
	}
	return &Executable{prog: prog}, nil
}

// Program exposes the checked AST (used by the code generator).
func (e *Executable) Program() *Program { return e.prog }

// Run executes the program on g through the instrumented runtime and
// returns the trace plus the final contents of every node array.
func (e *Executable) Run(g *graph.Graph) (*irgl.Trace, map[string][]int32, error) {
	n := g.NumNodes()
	ex := &interp{
		prog:   e.prog,
		g:      g,
		rt:     irgl.NewRuntime(e.prog.Name, g),
		wl:     irgl.NewWorklist(n),
		arrays: map[string][]int32{},
		src:    sourceNode(g),
	}
	for _, d := range e.prog.Nodes {
		arr := make([]int32, n)
		if d.Init != nil {
			v, err := ex.eval(d.Init, nil, nil)
			if err != nil {
				return nil, nil, err
			}
			for i := range arr {
				arr[i] = int32(v)
			}
		}
		ex.arrays[d.Name] = arr
	}
	if err := ex.hostBlock(e.prog.Host, map[string]int64{}); err != nil {
		return nil, nil, err
	}
	return ex.rt.Trace(), ex.arrays, nil
}

// sourceNode mirrors apps.SourceNode: the highest-degree node.
func sourceNode(g *graph.Graph) int64 {
	best, bestDeg := int64(0), -1
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		if d := g.Degree(u); d > bestDeg {
			best, bestDeg = int64(u), d
		}
	}
	return best
}

type interp struct {
	prog   *Program
	g      *graph.Graph
	rt     *irgl.Runtime
	wl     *irgl.Worklist
	arrays map[string][]int32
	src    int64
}

type runtimeError struct{ err error }

func (i *interp) fail(t Token, format string, args ...any) {
	panic(runtimeError{errAt(t, format, args...)})
}

func (i *interp) hostBlock(b *Block, vars map[string]int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(runtimeError); ok {
				err = re.err
				return
			}
			panic(r)
		}
	}()
	for _, s := range b.Stmts {
		i.hostStmt(s, vars)
	}
	return nil
}

func (i *interp) hostStmt(s Stmt, vars map[string]int64) {
	switch st := s.(type) {
	case *Let:
		vars[st.Name], _ = i.mustEval(st.Value, vars, nil)
	case *Assign:
		v, _ := i.mustEval(st.Value, vars, nil)
		i.store(st.Target, v, vars, nil)
	case *If:
		c, _ := i.mustEval(st.Cond, vars, nil)
		if c != 0 {
			for _, inner := range st.Then.Stmts {
				i.hostStmt(inner, vars)
			}
		} else if st.Else != nil {
			for _, inner := range st.Else.Stmts {
				i.hostStmt(inner, vars)
			}
		}
	case *Push:
		v, _ := i.mustEval(st.Node, vars, nil)
		i.checkNode(st.Tok, v)
		i.wl.SeedHost(int32(v))
	case *Forall:
		// Host initialisation loop over all nodes: executed by the
		// host (or a trivial memset-style kernel); not instrumented.
		for u := 0; u < i.g.NumNodes(); u++ {
			vars[st.Var] = int64(u)
			for _, inner := range st.Body.Stmts {
				i.hostStmt(inner, vars)
			}
		}
		delete(vars, st.Var)
	case *Iterate:
		kernel := i.prog.KernelByName(st.Kernel)
		i.rt.Iterate(st.Kernel, func(iter int) bool {
			i.launch(kernel)
			return i.wl.Swap() > 0
		})
	default:
		i.fail(tokenOf(s), "statement not allowed on the host")
	}
}

func tokenOf(s Stmt) Token {
	switch st := s.(type) {
	case *Assign:
		return st.Tok
	case *Let:
		return st.Tok
	case *If:
		return st.Tok
	case *Forall:
		return st.Tok
	case *Foreach:
		return st.Tok
	case *Push:
		return st.Tok
	case *Iterate:
		return st.Tok
	default:
		return Token{}
	}
}

// launch executes one kernel over the worklist (or all nodes).
func (i *interp) launch(kernel *Kernel) {
	fa := kernel.Body.Stmts[0].(*Forall)
	k := i.rt.Launch(kernel.Name)
	body := func(it *irgl.Item, u int32) {
		vars := map[string]int64{fa.Var: int64(u)}
		for _, s := range fa.Body.Stmts {
			i.kernelStmt(s, vars, it)
		}
	}
	if fa.Worklist {
		k.ForAll(i.wl.Items(), body)
	} else {
		k.ForAllNodes(body)
	}
	k.End()
}

func (i *interp) kernelStmt(s Stmt, vars map[string]int64, it *irgl.Item) {
	switch st := s.(type) {
	case *Let:
		vars[st.Name], _ = i.mustEval(st.Value, vars, it)
	case *Assign:
		v, _ := i.mustEval(st.Value, vars, it)
		i.store(st.Target, v, vars, it)
	case *If:
		c, _ := i.mustEval(st.Cond, vars, it)
		if c != 0 {
			for _, inner := range st.Then.Stmts {
				i.kernelStmt(inner, vars, it)
			}
		} else if st.Else != nil {
			for _, inner := range st.Else.Stmts {
				i.kernelStmt(inner, vars, it)
			}
		}
	case *Foreach:
		node, _ := i.mustEval(st.Node, vars, it)
		i.checkNode(st.Tok, node)
		it.VisitEdges(int32(node), func(v, w int32) {
			vars[st.DstVar] = int64(v)
			vars[st.WVar] = int64(w)
			for _, inner := range st.Body.Stmts {
				i.kernelStmt(inner, vars, it)
			}
		})
		delete(vars, st.DstVar)
		delete(vars, st.WVar)
	case *Push:
		v, _ := i.mustEval(st.Node, vars, it)
		i.checkNode(st.Tok, v)
		it.Push(i.wl, int32(v))
	default:
		i.fail(tokenOf(s), "statement not allowed in kernels")
	}
}

func (i *interp) checkNode(t Token, v int64) {
	if v < 0 || int(v) >= i.g.NumNodes() {
		i.fail(t, "node id %d out of range [0,%d)", v, i.g.NumNodes())
	}
}

func (i *interp) store(target Expr, v int64, vars map[string]int64, it *irgl.Item) {
	switch tgt := target.(type) {
	case *Index:
		at, _ := i.mustEval(tgt.At, vars, it)
		arr := i.arrays[tgt.Array]
		if at < 0 || int(at) >= len(arr) {
			i.fail(tgt.Tok, "index %d out of range for %q", at, tgt.Array)
		}
		arr[at] = int32(v)
	case *Var:
		vars[tgt.Name] = v
	}
}

func (i *interp) mustEval(e Expr, vars map[string]int64, it *irgl.Item) (int64, bool) {
	v, err := i.evalWith(e, vars, it)
	if err != nil {
		panic(runtimeError{err})
	}
	return v, true
}

// eval is the host-side (no item) entry used for initialisers.
func (i *interp) eval(e Expr, vars map[string]int64, it *irgl.Item) (int64, error) {
	return i.evalWith(e, vars, it)
}

func (i *interp) evalWith(e Expr, vars map[string]int64, it *irgl.Item) (int64, error) {
	switch ex := e.(type) {
	case *IntLit:
		switch ex.Kind {
		case KWInf:
			return Infinity, nil
		case KWSrc:
			return i.src, nil
		case KWNumNodes:
			return int64(i.g.NumNodes()), nil
		default:
			return ex.Val, nil
		}
	case *Var:
		v, ok := vars[ex.Name]
		if !ok {
			return 0, errAt(ex.Tok, "variable %q not bound", ex.Name)
		}
		return v, nil
	case *Index:
		at, err := i.evalWith(ex.At, vars, it)
		if err != nil {
			return 0, err
		}
		arr := i.arrays[ex.Array]
		if at < 0 || int(at) >= len(arr) {
			return 0, errAt(ex.Tok, "index %d out of range for %q", at, ex.Array)
		}
		return int64(arr[at]), nil
	case *Call:
		return i.call(ex, vars, it)
	case *Binary:
		l, err := i.evalWith(ex.L, vars, it)
		if err != nil {
			return 0, err
		}
		// Short-circuit logical operators.
		switch ex.Op {
		case AndAnd:
			if l == 0 {
				return 0, nil
			}
			return i.evalWith(ex.R, vars, it)
		case OrOr:
			if l != 0 {
				return 1, nil
			}
			return i.evalWith(ex.R, vars, it)
		}
		r, err := i.evalWith(ex.R, vars, it)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case Plus:
			return l + r, nil
		case Minus:
			return l - r, nil
		case Star:
			return l * r, nil
		case Slash:
			if r == 0 {
				return 0, errAt(ex.Tok, "division by zero")
			}
			return l / r, nil
		case Percent:
			if r == 0 {
				return 0, errAt(ex.Tok, "modulo by zero")
			}
			return l % r, nil
		case Eq:
			return b2i(l == r), nil
		case Neq:
			return b2i(l != r), nil
		case Lt:
			return b2i(l < r), nil
		case Leq:
			return b2i(l <= r), nil
		case Gt:
			return b2i(l > r), nil
		case Geq:
			return b2i(l >= r), nil
		}
		return 0, errAt(ex.Tok, "unknown operator")
	case *Unary:
		v, err := i.evalWith(ex.X, vars, it)
		if err != nil {
			return 0, err
		}
		if ex.Op == Not {
			return b2i(v == 0), nil
		}
		return -v, nil
	default:
		return 0, fmt.Errorf("irglc: unknown expression %T", e)
	}
}

func (i *interp) call(c *Call, vars map[string]int64, it *irgl.Item) (int64, error) {
	argv := make([]int64, len(c.Args))
	// The first argument of the atomic builtins is the target element;
	// evaluate only its index here.
	start := 0
	var arr []int32
	var at int64
	if builtins[c.Name].firstIndex {
		idx := c.Args[0].(*Index)
		v, err := i.evalWith(idx.At, vars, it)
		if err != nil {
			return 0, err
		}
		arr = i.arrays[idx.Array]
		if v < 0 || int(v) >= len(arr) {
			return 0, errAt(idx.Tok, "index %d out of range for %q", v, idx.Array)
		}
		at = v
		start = 1
	}
	for k := start; k < len(c.Args); k++ {
		v, err := i.evalWith(c.Args[k], vars, it)
		if err != nil {
			return 0, err
		}
		argv[k] = v
	}
	switch c.Name {
	case "atomicMin":
		if it == nil {
			return 0, errAt(c.Tok, "atomics are kernel-only")
		}
		return b2i(it.AtomicMin(arr, int32(at), int32(argv[1]))), nil
	case "atomicMax":
		if it == nil {
			return 0, errAt(c.Tok, "atomics are kernel-only")
		}
		return b2i(it.AtomicMax(arr, int32(at), int32(argv[1]))), nil
	case "atomicAdd":
		if it == nil {
			return 0, errAt(c.Tok, "atomics are kernel-only")
		}
		return int64(it.AtomicAdd(arr, int32(at), int32(argv[1]))), nil
	case "degree":
		v := argv[0]
		if v < 0 || int(v) >= i.g.NumNodes() {
			return 0, errAt(c.Tok, "degree of out-of-range node %d", v)
		}
		return int64(i.g.Degree(int32(v))), nil
	case "min":
		if argv[0] < argv[1] {
			return argv[0], nil
		}
		return argv[1], nil
	case "max":
		if argv[0] > argv[1] {
			return argv[0], nil
		}
		return argv[1], nil
	default:
		return 0, errAt(c.Tok, "unknown builtin %q", c.Name)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
