package irglc

// Sample DSL programs shipped with the compiler. BFSSource and
// SSSPSource compile to traces identical to the hand-written bfs-wl and
// sssp-wl applications (asserted by tests); CCSource matches cc-wl.

// BFSSource is worklist breadth-first search.
const BFSSource = `# breadth-first search, data-driven
program bfs

node dist: int = INF

host {
    dist[SRC] = 0
    push(SRC)
    iterate relax
}

kernel relax {
    forall u in worklist {
        let du = dist[u]
        foreach (v, w) in edges(u) {
            if atomicMin(dist[v], du + 1) {
                push(v)
            }
        }
    }
}
`

// SSSPSource is worklist Bellman-Ford.
const SSSPSource = `# single-source shortest paths, data-driven Bellman-Ford
program sssp

node dist: int = INF

host {
    dist[SRC] = 0
    push(SRC)
    iterate relax
}

kernel relax {
    forall u in worklist {
        let du = dist[u]
        foreach (v, w) in edges(u) {
            if atomicMin(dist[v], du + w) {
                push(v)
            }
        }
    }
}
`

// CCSource is worklist label-propagation connected components.
const CCSource = `# connected components by label propagation
program cc

node comp: int

host {
    forall u in nodes {
        comp[u] = u
        push(u)
    }
    iterate prop
}

kernel prop {
    forall u in worklist {
        let cu = comp[u]
        foreach (v, w) in edges(u) {
            if atomicMin(comp[v], cu) {
                push(v)
            }
        }
    }
}
`

// Samples returns the shipped programs by name.
func Samples() map[string]string {
	return map[string]string{
		"bfs":  BFSSource,
		"sssp": SSSPSource,
		"cc":   CCSource,
	}
}
