package graph

import (
	"strings"
	"testing"
)

func fpGraph() *Graph {
	b := NewBuilder("fp", ClassRandom, 4)
	b.AddUndirected(0, 1, 3)
	b.AddUndirected(1, 2, 5)
	b.AddEdge(3, 0, 7)
	return b.Build()
}

func TestFingerprintStable(t *testing.T) {
	a, b := fpGraph(), fpGraph()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical graphs produced different fingerprints")
	}
	if !strings.HasPrefix(a.Fingerprint(), "gfp2-") {
		t.Fatalf("fingerprint %q missing scheme prefix", a.Fingerprint())
	}
}

// TestFingerprintFrozen pins the exact fingerprint of a fixed graph.
// Cached traces are keyed by fingerprints, so the scheme must not change
// silently: if this test fails, bump fingerprintVersion.
func TestFingerprintFrozen(t *testing.T) {
	const want = "gfp2-ba9352a712f912a461babc60224afcff"
	if got := fpGraph().Fingerprint(); got != want {
		t.Fatalf("fingerprint scheme drifted:\n got %s\nwant %s\n(bump fingerprintVersion if the change is intentional)", got, want)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpGraph().Fingerprint()

	name := fpGraph()
	name.Name = "fp2"
	if name.Fingerprint() == base {
		t.Error("renaming the graph did not change the fingerprint")
	}

	class := fpGraph()
	class.Class = ClassSocial
	if class.Fingerprint() == base {
		t.Error("changing the class did not change the fingerprint")
	}

	weight := fpGraph()
	weight.Weight[0]++
	if weight.Fingerprint() == base {
		t.Error("changing a weight did not change the fingerprint")
	}

	b := NewBuilder("fp", ClassRandom, 4)
	b.AddUndirected(0, 1, 3)
	b.AddUndirected(1, 2, 5)
	b.AddEdge(0, 3, 7) // flipped direction vs fpGraph
	if b.Build().Fingerprint() == base {
		t.Error("changing the structure did not change the fingerprint")
	}
}

// TestFingerprintBoundaries checks that moving an element across the
// RowPtr/Dst array boundary cannot collide: the length prefixes keep the
// encodings distinct even when the concatenated values agree.
func TestFingerprintBoundaries(t *testing.T) {
	a := &Graph{Name: "b", RowPtr: []int32{0, 1, 1}, Dst: []int32{1}, Weight: []int32{1}}
	b := &Graph{Name: "b", RowPtr: []int32{0, 1, 1, 1}, Dst: []int32{1}, Weight: []int32{1}}
	// b is invalid as a graph (lengths disagree with RowPtr tail) but
	// the fingerprint must still distinguish the byte layouts.
	b.Dst, b.Weight = b.Dst[:0], b.Weight[:0]
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("length-prefixing failed to separate boundary shifts")
	}
}

func TestStandardInputsDistinctFingerprints(t *testing.T) {
	seen := map[string]string{}
	for _, g := range StandardInputs() {
		fp := g.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("inputs %s and %s share fingerprint %s", prev, g.Name, fp)
		}
		seen[fp] = g.Name
	}
}
