package graph

import "fmt"

// Structural transformations used by the conformance engine: node-ID
// permutation (metamorphic testing - an isomorphic relabelling must not
// change any trace-derived quantity for order-robust applications) and
// induced subgraphs (counterexample shrinking deletes nodes and needs
// the remainder re-indexed densely).

// Permute returns the graph with node u renamed to perm[u], preserving
// name, class, edges and weights. perm must be a permutation of
// [0, NumNodes); a malformed permutation panics, since permutations are
// produced internally (stats.RNG.Perm).
func Permute(g *Graph, perm []int32) *Graph {
	n := g.NumNodes()
	if len(perm) != n {
		panic(fmt.Sprintf("graph: permutation length %d for %d nodes", len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			panic(fmt.Sprintf("graph: malformed permutation (value %d)", p))
		}
		seen[p] = true
	}
	b := NewBuilder(g.Name, g.Class, n)
	for u := int32(0); int(u) < n; u++ {
		ws := g.EdgeWeights(u)
		for i, v := range g.Neighbors(u) {
			b.AddEdge(perm[u], perm[v], ws[i])
		}
	}
	return b.Build()
}

// Induced returns the subgraph induced by the nodes with keep[u] true,
// re-indexed densely in ascending original-ID order. Edges with either
// endpoint dropped disappear; weights are preserved.
func Induced(g *Graph, keep []bool) *Graph {
	n := g.NumNodes()
	if len(keep) != n {
		panic(fmt.Sprintf("graph: keep mask length %d for %d nodes", len(keep), n))
	}
	remap := make([]int32, n)
	kept := int32(0)
	for u := 0; u < n; u++ {
		if keep[u] {
			remap[u] = kept
			kept++
		} else {
			remap[u] = -1
		}
	}
	b := NewBuilder(g.Name, g.Class, int(kept))
	for u := int32(0); int(u) < n; u++ {
		if remap[u] < 0 {
			continue
		}
		ws := g.EdgeWeights(u)
		for i, v := range g.Neighbors(u) {
			if remap[v] >= 0 {
				b.AddEdge(remap[u], remap[v], ws[i])
			}
		}
	}
	return b.Build()
}

// WithoutEdgePair returns the graph with the undirected edge {u, v}
// removed (both stored directions). Removing a directed edge alone
// would break the symmetric-input contract every application is written
// against, so the conformance shrinker only ever deletes pairs.
func WithoutEdgePair(g *Graph, u, v int32) *Graph {
	n := g.NumNodes()
	b := NewBuilder(g.Name, g.Class, n)
	for s := int32(0); int(s) < n; s++ {
		ws := g.EdgeWeights(s)
		for i, d := range g.Neighbors(s) {
			if (s == u && d == v) || (s == v && d == u) {
				continue
			}
			b.AddEdge(s, d, ws[i])
		}
	}
	return b.Build()
}
