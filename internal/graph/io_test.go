package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		smallTriangle(),
		GenerateUniform("rt-uni", 300, 5, 4),
		GenerateRMAT("rt-rmat", 9, 8, 4),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g.Name, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", g.Name, err)
		}
		if got.Name != g.Name || got.Class != g.Class {
			t.Errorf("%s: metadata mismatch: %q/%v", g.Name, got.Name, got.Class)
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: size mismatch", g.Name)
		}
		for i := range g.Dst {
			if got.Dst[i] != g.Dst[i] || got.Weight[i] != g.Weight[i] {
				t.Fatalf("%s: edge %d mismatch", g.Name, i)
			}
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("GPGR"), // truncated after magic
		append([]byte("GPGR"), bytes.Repeat([]byte{0xff}, 16)...),
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadBinaryRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, smallTriangle()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // clobber version
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Error("expected version error")
	}
}

func TestWriteEdgeList(t *testing.T) {
	var buf bytes.Buffer
	g := smallTriangle()
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+g.NumEdges() {
		t.Fatalf("got %d lines, want %d", len(lines), 1+g.NumEdges())
	}
	if !strings.HasPrefix(lines[0], "# tri random 3 6") {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0 1 1" {
		t.Errorf("first edge = %q", lines[1])
	}
}
