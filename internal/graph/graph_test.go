package graph

import (
	"testing"
	"testing/quick"

	"gpuport/internal/stats"
)

func smallTriangle() *Graph {
	b := NewBuilder("tri", ClassRandom, 3)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(1, 2, 2)
	b.AddUndirected(0, 2, 3)
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := smallTriangle()
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < 3; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d, want 2", u, g.Degree(u))
		}
	}
}

func TestBuilderDropsSelfLoopsAndDuplicates(t *testing.T) {
	b := NewBuilder("dups", ClassRandom, 4)
	b.AddEdge(0, 0, 1) // self loop
	b.AddEdge(0, 1, 5)
	b.AddEdge(0, 1, 3) // duplicate, smaller weight should be kept
	b.AddEdge(0, 2, 7)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if w := g.EdgeWeights(0)[0]; w != 3 {
		t.Errorf("dedup kept weight %d, want smallest 3", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range edge")
		}
	}()
	NewBuilder("bad", ClassRandom, 2).AddEdge(0, 5, 1)
}

func TestHasEdge(t *testing.T) {
	g := smallTriangle()
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 0) {
		t.Error("expected edges missing")
	}
	if g.HasEdge(0, 0) {
		t.Error("unexpected self edge")
	}
}

func TestReverse(t *testing.T) {
	b := NewBuilder("dir", ClassRandom, 3)
	b.AddEdge(0, 1, 10)
	b.AddEdge(0, 2, 20)
	b.AddEdge(1, 2, 30)
	g := b.Build()
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 0) || !r.HasEdge(2, 1) {
		t.Error("reverse missing flipped edges")
	}
	if r.HasEdge(0, 1) {
		t.Error("reverse kept original direction")
	}
	if r.NumEdges() != g.NumEdges() {
		t.Errorf("reverse edges = %d, want %d", r.NumEdges(), g.NumEdges())
	}
	// Weight follows the edge.
	if w := r.EdgeWeights(2)[0]; w != 20 && w != 30 {
		t.Errorf("unexpected reversed weight %d", w)
	}
}

func TestReverseInvolution(t *testing.T) {
	g := GenerateUniform("inv", 200, 4, 99)
	rr := g.Reverse().Reverse()
	if rr.NumEdges() != g.NumEdges() || rr.NumNodes() != g.NumNodes() {
		t.Fatalf("double reverse changed size")
	}
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		a, b := g.Neighbors(u), rr.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("node %d degree changed", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency changed", u)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := smallTriangle()
	g.Dst[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("expected validation failure for bad destination")
	}
	g = smallTriangle()
	g.RowPtr[1] = 100
	if err := g.Validate(); err == nil {
		t.Error("expected validation failure for bad rowptr")
	}
	g = smallTriangle()
	g.Weight = g.Weight[:1]
	if err := g.Validate(); err == nil {
		t.Error("expected validation failure for weight length")
	}
}

func TestBuilderProducesValidGraphs(t *testing.T) {
	// Property: arbitrary random edge soups build into valid CSR.
	f := func(seed uint64, nn, ne uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nn%50) + 2
		b := NewBuilder("prop", ClassRandom, n)
		for i := 0; i < int(ne); i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(100)))
		}
		g := b.Build()
		return g.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	g := GenerateRMAT("sym", 8, 8, 5)
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.HasEdge(v, u) {
				t.Fatalf("undirected graph missing back edge (%d,%d)", v, u)
			}
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassRoad.String() != "road" || ClassSocial.String() != "social" || ClassRandom.String() != "random" {
		t.Error("class names wrong")
	}
	if Class(42).String() == "" {
		t.Error("unknown class should still render")
	}
}
