// Package graph provides the graph substrate for the study: a compact
// CSR (compressed sparse row) representation, synthetic generators for
// the three input classes the paper evaluates (road network, social
// network, uniform random), structural property analysis, and a simple
// binary/text serialisation.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a directed graph in CSR form. Node IDs are dense integers in
// [0, NumNodes). For node u, its outgoing edges are
// Dst[RowPtr[u]:RowPtr[u+1]] with matching weights in Weight.
//
// Undirected graphs are represented by storing each edge in both
// directions (the usual convention for GPU graph frameworks, including
// IrGL, whose applications this study reproduces).
type Graph struct {
	// Name identifies the input (e.g. "usa.ny") in datasets and reports.
	Name string
	// Class records which input class the graph belongs to.
	Class Class
	// RowPtr has length NumNodes+1; RowPtr[0] == 0.
	RowPtr []int32
	// Dst holds destination node IDs, grouped by source node.
	Dst []int32
	// Weight holds per-edge weights, parallel to Dst. Unweighted
	// applications ignore it; generators always populate it so every
	// application can run on every input.
	Weight []int32
}

// Class is the structural family of an input graph. The paper's three
// classes stress different bottlenecks: road networks have huge diameter
// and uniform low degree; social networks have tiny diameter and
// power-law degree; random graphs sit in between.
type Class uint8

const (
	// ClassRoad marks planar, large-diameter, low-degree graphs.
	ClassRoad Class = iota
	// ClassSocial marks power-law, small-diameter graphs.
	ClassSocial
	// ClassRandom marks uniform-degree Erdos-Renyi style graphs.
	ClassRandom
)

// String returns the class name used in tables.
func (c Class) String() string {
	switch c {
	case ClassRoad:
		return "road"
	case ClassSocial:
		return "social"
	case ClassRandom:
		return "random"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.RowPtr) - 1 }

// NumEdges returns the number of stored (directed) edges.
func (g *Graph) NumEdges() int { return len(g.Dst) }

// Degree returns the out-degree of node u.
func (g *Graph) Degree(u int32) int {
	return int(g.RowPtr[u+1] - g.RowPtr[u])
}

// Neighbors returns the slice of destinations for node u. The slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(u int32) []int32 {
	return g.Dst[g.RowPtr[u]:g.RowPtr[u+1]]
}

// EdgeWeights returns the weights parallel to Neighbors(u).
func (g *Graph) EdgeWeights(u int32) []int32 {
	return g.Weight[g.RowPtr[u]:g.RowPtr[u+1]]
}

// Edge is a single weighted directed edge, used by builders.
type Edge struct {
	Src, Dst int32
	Weight   int32
}

// Builder accumulates edges and produces a CSR Graph. It deduplicates
// parallel edges (keeping the smallest weight) and drops self-loops,
// matching the preprocessing graph frameworks apply to real inputs.
type Builder struct {
	name     string
	class    Class
	numNodes int
	edges    []Edge
}

// NewBuilder returns a builder for a graph with numNodes nodes.
func NewBuilder(name string, class Class, numNodes int) *Builder {
	return &Builder{name: name, class: class, numNodes: numNodes}
}

// AddEdge records a directed edge. Out-of-range endpoints panic: inputs
// are generated internally, so a bad ID is a programming error.
func (b *Builder) AddEdge(src, dst, weight int32) {
	if src < 0 || int(src) >= b.numNodes || dst < 0 || int(dst) >= b.numNodes {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", src, dst, b.numNodes))
	}
	b.edges = append(b.edges, Edge{src, dst, weight})
}

// AddUndirected records the edge in both directions with equal weight.
func (b *Builder) AddUndirected(u, v, weight int32) {
	b.AddEdge(u, v, weight)
	b.AddEdge(v, u, weight)
}

// Build produces the CSR graph. Edges are sorted by (src, dst); within a
// node's adjacency list destinations are strictly increasing, which the
// triangle-counting applications rely on.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].Src != b.edges[j].Src {
			return b.edges[i].Src < b.edges[j].Src
		}
		if b.edges[i].Dst != b.edges[j].Dst {
			return b.edges[i].Dst < b.edges[j].Dst
		}
		return b.edges[i].Weight < b.edges[j].Weight
	})

	g := &Graph{
		Name:   b.name,
		Class:  b.class,
		RowPtr: make([]int32, b.numNodes+1),
	}
	var prev Edge
	first := true
	for _, e := range b.edges {
		if e.Src == e.Dst {
			continue // drop self-loops
		}
		if !first && e.Src == prev.Src && e.Dst == prev.Dst {
			continue // drop parallel edges (sorted so smallest weight kept)
		}
		g.Dst = append(g.Dst, e.Dst)
		g.Weight = append(g.Weight, e.Weight)
		g.RowPtr[e.Src+1]++
		prev, first = e, false
	}
	for i := 1; i <= b.numNodes; i++ {
		g.RowPtr[i] += g.RowPtr[i-1]
	}
	return g
}

// Validate checks CSR structural invariants and returns a descriptive
// error on the first violation. It is used by tests and by the loader.
func (g *Graph) Validate() error {
	if len(g.RowPtr) == 0 {
		return fmt.Errorf("graph %q: empty RowPtr", g.Name)
	}
	if g.RowPtr[0] != 0 {
		return fmt.Errorf("graph %q: RowPtr[0] = %d, want 0", g.Name, g.RowPtr[0])
	}
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		if g.RowPtr[i+1] < g.RowPtr[i] {
			return fmt.Errorf("graph %q: RowPtr not monotone at node %d", g.Name, i)
		}
	}
	if int(g.RowPtr[n]) != len(g.Dst) {
		return fmt.Errorf("graph %q: RowPtr[n]=%d but %d edges", g.Name, g.RowPtr[n], len(g.Dst))
	}
	if len(g.Weight) != len(g.Dst) {
		return fmt.Errorf("graph %q: %d weights for %d edges", g.Name, len(g.Weight), len(g.Dst))
	}
	for i, d := range g.Dst {
		if d < 0 || int(d) >= n {
			return fmt.Errorf("graph %q: edge %d destination %d out of range", g.Name, i, d)
		}
	}
	for u := int32(0); int(u) < n; u++ {
		nbrs := g.Neighbors(u)
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i] <= nbrs[i-1] {
				return fmt.Errorf("graph %q: adjacency of node %d not strictly increasing", g.Name, u)
			}
		}
	}
	return nil
}

// HasEdge reports whether edge (u, v) exists, via binary search over the
// sorted adjacency list of u.
func (g *Graph) HasEdge(u, v int32) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// Reverse returns the transpose graph (every edge flipped), preserving
// weights. Pull-style applications (e.g. PageRank pull) use it.
func (g *Graph) Reverse() *Graph {
	n := g.NumNodes()
	b := NewBuilder(g.Name+".rev", g.Class, n)
	for u := int32(0); int(u) < n; u++ {
		ws := g.EdgeWeights(u)
		for i, v := range g.Neighbors(u) {
			b.AddEdge(v, u, ws[i])
		}
	}
	return b.Build()
}
