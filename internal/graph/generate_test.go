package graph

import (
	"testing"
)

func TestStandardInputsDeterministic(t *testing.T) {
	a := StandardInputs()
	b := StandardInputs()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("expected 3 standard inputs, got %d", len(a))
	}
	for i := range a {
		if a[i].NumNodes() != b[i].NumNodes() || a[i].NumEdges() != b[i].NumEdges() {
			t.Fatalf("input %s not deterministic in size", a[i].Name)
		}
		for j := range a[i].Dst {
			if a[i].Dst[j] != b[i].Dst[j] {
				t.Fatalf("input %s not deterministic at edge %d", a[i].Name, j)
			}
		}
	}
}

func TestStandardInputsValid(t *testing.T) {
	for _, g := range StandardInputs() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestInputByName(t *testing.T) {
	g, err := InputByName("usa.ny")
	if err != nil || g.Name != "usa.ny" {
		t.Fatalf("InputByName(usa.ny) = %v, %v", g, err)
	}
	if _, err := InputByName("nope"); err == nil {
		t.Error("expected error for unknown input")
	}
}

func TestRoadProperties(t *testing.T) {
	g := GenerateRoad("road-test", 40, 7)
	p := Analyze(g)
	if p.MaxDegree > 8 {
		t.Errorf("road max degree = %d, expected low uniform degree", p.MaxDegree)
	}
	if p.ApproxDiam < 40 {
		t.Errorf("road diameter = %d, expected at least side length", p.ApproxDiam)
	}
	if p.LargestCCFrac < 0.99 {
		t.Errorf("road should be connected, largest CC frac = %v", p.LargestCCFrac)
	}
	if p.DegreeCV > 0.5 {
		t.Errorf("road degree CV = %v, expected near-uniform degrees", p.DegreeCV)
	}
}

func TestRMATProperties(t *testing.T) {
	g := GenerateRMAT("rmat-test", 11, 16, 7)
	p := Analyze(g)
	// Power-law: hub degree far above median; small diameter.
	if float64(p.MaxDegree) < 10*p.MedianDegree {
		t.Errorf("rmat max degree %d vs median %v: not heavy-tailed", p.MaxDegree, p.MedianDegree)
	}
	if p.DegreeCV < 1.0 {
		t.Errorf("rmat degree CV = %v, expected > 1 (power law)", p.DegreeCV)
	}
	if p.ApproxDiam > 20 {
		t.Errorf("rmat diameter = %d, expected small world", p.ApproxDiam)
	}
}

func TestUniformProperties(t *testing.T) {
	g := GenerateUniform("uni-test", 4096, 8, 7)
	p := Analyze(g)
	if p.DegreeCV > 0.4 {
		t.Errorf("uniform degree CV = %v, expected < 0.4", p.DegreeCV)
	}
	if p.ApproxDiam > 15 {
		t.Errorf("uniform diameter = %d, expected small", p.ApproxDiam)
	}
}

func TestStructuralContrast(t *testing.T) {
	// The core premise of input sensitivity: road diameter dwarfs the
	// social diameter; social imbalance dwarfs road imbalance.
	inputs := StandardInputs()
	var road, social Properties
	for _, g := range inputs {
		switch g.Class {
		case ClassRoad:
			road = Analyze(g)
		case ClassSocial:
			social = Analyze(g)
		}
	}
	if road.ApproxDiam < 10*social.ApproxDiam {
		t.Errorf("road diam %d vs social diam %d: contrast too weak",
			road.ApproxDiam, social.ApproxDiam)
	}
	if social.DegreeCV < 3*road.DegreeCV {
		t.Errorf("social CV %v vs road CV %v: imbalance contrast too weak",
			social.DegreeCV, road.DegreeCV)
	}
}

func TestAnalyzeEmptyGraph(t *testing.T) {
	g := NewBuilder("empty", ClassRandom, 0).Build()
	p := Analyze(g)
	if p.Nodes != 0 || p.Edges != 0 {
		t.Errorf("empty graph props = %+v", p)
	}
}

func TestDifferentSeedsGiveDifferentGraphs(t *testing.T) {
	a := GenerateUniform("a", 500, 4, 1)
	b := GenerateUniform("b", 500, 4, 2)
	same := a.NumEdges() == b.NumEdges()
	if same {
		diff := false
		for i := range a.Dst {
			if a.Dst[i] != b.Dst[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestExtendedInputs(t *testing.T) {
	ext := ExtendedInputs()
	if len(ext) != 3 {
		t.Fatalf("extended inputs = %d, want 3", len(ext))
	}
	std := StandardInputs()
	classes := map[Class]int{}
	for _, g := range ext {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		classes[g.Class]++
		for _, s := range std {
			if s.Name == g.Name {
				t.Errorf("extended input %s collides with a standard input", g.Name)
			}
		}
	}
	if classes[ClassRoad] != 1 || classes[ClassSocial] != 1 || classes[ClassRandom] != 1 {
		t.Errorf("extended inputs should cover each class once: %v", classes)
	}
	// Both sets resolvable by name.
	for _, g := range append(std, ext...) {
		got, err := InputByName(g.Name)
		if err != nil || got.Name != g.Name {
			t.Errorf("InputByName(%s): %v", g.Name, err)
		}
	}
}
