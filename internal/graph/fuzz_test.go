package graph

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzFingerprint feeds arbitrary bytes to the binary decoder. The
// decoder must never panic; when it does accept an input, the resulting
// graph must be structurally valid, its fingerprint must be stable, and
// a serialise/deserialise round trip must preserve both the structure
// and the fingerprint. The committed corpus in testdata/fuzz seeds the
// fuzzer with well-formed files so mutation starts from deep inside the
// format rather than at the magic check. Runs bounded in CI (make fuzz).
func FuzzFingerprint(f *testing.F) {
	// Seed with real serialisations of each generator family plus the
	// degenerate shapes, so coverage reaches the array readers.
	for _, g := range []*Graph{
		GenerateUniform("fz-uniform", 40, 4, 1),
		GenerateRoad("fz-road", 5, 2),
		GenerateRMAT("fz-rmat", 5, 4, 3),
		NewBuilder("fz-empty", ClassRandom, 0).Build(),
		NewBuilder("fz-single", ClassRandom, 1).Build(),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("GPGR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("ReadBinary accepted an invalid graph: %v", err)
		}
		fp := g.Fingerprint()
		if again := g.Fingerprint(); again != fp {
			t.Fatalf("fingerprint unstable: %s vs %s", fp, again)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("re-encoding a decoded graph: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if !reflect.DeepEqual(g, g2) {
			t.Fatal("round trip changed the graph")
		}
		if fp2 := g2.Fingerprint(); fp2 != fp {
			t.Fatalf("round trip changed the fingerprint: %s vs %s", fp, fp2)
		}
	})
}
