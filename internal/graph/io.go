package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialisation: a small versioned format so generated inputs can
// be cached on disk by tools and examples.
//
//	magic   "GPGR" (4 bytes)
//	version uint32 (currently 1)
//	class   uint32
//	nameLen uint32, name bytes
//	nodes   uint64
//	edges   uint64
//	rowPtr  (nodes+1) x int32
//	dst     edges x int32
//	weight  edges x int32

const (
	binaryMagic   = "GPGR"
	binaryVersion = 1
)

// WriteBinary serialises g to w in the package's binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []uint32{binaryVersion, uint32(g.Class), uint32(len(g.Name))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(g.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumNodes())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumEdges())); err != nil {
		return err
	}
	for _, arr := range [][]int32{g.RowPtr, g.Dst, g.Weight} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserialises a graph written by WriteBinary, validating the
// structure before returning it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version, class, nameLen uint32
	for _, p := range []*uint32{&version, &class, &nameLen} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("graph: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var nodes, edges uint64
	if err := binary.Read(br, binary.LittleEndian, &nodes); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &edges); err != nil {
		return nil, err
	}
	if nodes > 1<<31 || edges > 1<<33 {
		return nil, fmt.Errorf("graph: implausible size %d nodes / %d edges", nodes, edges)
	}
	g := &Graph{Name: string(name), Class: Class(class)}
	var err error
	if g.RowPtr, err = readInt32s(br, nodes+1); err != nil {
		return nil, err
	}
	if g.Dst, err = readInt32s(br, edges); err != nil {
		return nil, err
	}
	if g.Weight, err = readInt32s(br, edges); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// readInt32s reads n little-endian int32 values, growing the result
// incrementally. Allocating chunk-by-chunk instead of trusting the
// header's count up front means a corrupted or hostile header (e.g.
// claiming 2^31 nodes followed by no data) fails with a read error
// after at most one chunk, rather than attempting a multi-gigabyte
// allocation.
func readInt32s(r io.Reader, n uint64) ([]int32, error) {
	const chunk = 1 << 16
	out := make([]int32, 0, min(n, chunk))
	for read := uint64(0); read < n; {
		c := min(n-read, chunk)
		buf := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: reading values: %w", err)
		}
		out = append(out, buf...)
		read += c
	}
	return out, nil
}

// WriteEdgeList writes g as "src dst weight" lines, one per directed
// edge, preceded by a "# name class nodes edges" header comment. This is
// the interchange format accepted by most graph tools.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s %s %d %d\n", g.Name, g.Class, g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for u := int32(0); int(u) < g.NumNodes(); u++ {
		ws := g.EdgeWeights(u)
		for i, v := range g.Neighbors(u) {
			if _, err := fmt.Fprintf(bw, "%d %d %d\n", u, v, ws[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
