package graph

import (
	"math"
	"sort"
)

// Properties summarises the structural features of an input that drive
// optimisation behaviour in the study (Table VIII): size, degree
// distribution shape (load imbalance potential) and approximate diameter
// (iteration count / launch overhead exposure).
type Properties struct {
	Name          string
	Class         Class
	Nodes         int
	Edges         int
	MinDegree     int
	MaxDegree     int
	MeanDegree    float64
	MedianDegree  float64
	DegreeP99     float64
	DegreeCV      float64 // coefficient of variation: stddev/mean
	ApproxDiam    int     // BFS eccentricity from a pseudo-peripheral node
	LargestCCFrac float64 // fraction of nodes in the largest connected component
}

// Analyze computes Properties for g. The diameter is approximated by the
// standard double-sweep BFS lower bound, which is exact on trees and
// very tight on road networks.
func Analyze(g *Graph) Properties {
	n := g.NumNodes()
	p := Properties{
		Name:  g.Name,
		Class: g.Class,
		Nodes: n,
		Edges: g.NumEdges(),
	}
	if n == 0 {
		return p
	}

	degs := make([]float64, n)
	p.MinDegree = math.MaxInt
	for u := 0; u < n; u++ {
		d := g.Degree(int32(u))
		degs[u] = float64(d)
		if d < p.MinDegree {
			p.MinDegree = d
		}
		if d > p.MaxDegree {
			p.MaxDegree = d
		}
	}
	sort.Float64s(degs)
	sum, sumsq := 0.0, 0.0
	for _, d := range degs {
		sum += d
		sumsq += d * d
	}
	p.MeanDegree = sum / float64(n)
	if n%2 == 1 {
		p.MedianDegree = degs[n/2]
	} else {
		p.MedianDegree = (degs[n/2-1] + degs[n/2]) / 2
	}
	p.DegreeP99 = degs[int(float64(n-1)*0.99)]
	if p.MeanDegree > 0 {
		variance := sumsq/float64(n) - p.MeanDegree*p.MeanDegree
		if variance < 0 {
			variance = 0
		}
		p.DegreeCV = math.Sqrt(variance) / p.MeanDegree
	}

	// Largest component + double-sweep diameter approximation.
	comp, largest := components(g)
	p.LargestCCFrac = float64(largest.size) / float64(n)
	_, far1 := bfsFarthest(g, largest.root, comp, largest.id)
	d2, _ := bfsFarthest(g, far1, comp, largest.id)
	p.ApproxDiam = d2
	return p
}

type ccInfo struct {
	id   int32
	root int32
	size int
}

// components labels connected components (treating edges as undirected,
// which they are for all generated inputs) and returns the label array
// plus info about the largest component.
func components(g *Graph) ([]int32, ccInfo) {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var best ccInfo
	best.id = -1
	var queue []int32
	next := int32(0)
	for s := int32(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := next
		next++
		comp[s] = id
		size := 1
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if comp[v] < 0 {
					comp[v] = id
					size++
					queue = append(queue, v)
				}
			}
		}
		if size > best.size {
			best = ccInfo{id: id, root: s, size: size}
		}
	}
	return comp, best
}

// bfsFarthest runs BFS from src restricted to component compID and
// returns the eccentricity found and one farthest node.
func bfsFarthest(g *Graph, src int32, comp []int32, compID int32) (int, int32) {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	cur := []int32{src}
	depth := 0
	farNode := src
	for len(cur) > 0 {
		var nxt []int32
		for _, u := range cur {
			for _, v := range g.Neighbors(u) {
				if comp[v] == compID && dist[v] < 0 {
					dist[v] = dist[u] + 1
					nxt = append(nxt, v)
					farNode = v
				}
			}
		}
		if len(nxt) > 0 {
			depth++
		}
		cur = nxt
	}
	return depth, farNode
}
