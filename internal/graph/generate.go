package graph

import (
	"fmt"

	"gpuport/internal/stats"
)

// The three standard study inputs. Sizes are chosen so the full 17-app x
// 3-input sweep runs in seconds while preserving the structural contrast
// the paper leans on: usa.ny has ~300x the diameter of the social input.
const (
	// RoadGridSide is the side length of the generated road network grid.
	RoadGridSide = 110
	// SocialScale is the log2 node count of the RMAT social graph.
	SocialScale = 13
	// SocialEdgeFactor is average directed edges per node for RMAT.
	SocialEdgeFactor = 16
	// RandomNodes is the node count of the uniform random graph.
	RandomNodes = 8192
	// RandomDegree is the uniform out-degree of the random graph.
	RandomDegree = 8
)

// StandardInputs generates the study's three inputs with fixed seeds:
// a usa.ny-like road network, an RMAT social network, and a uniform
// random graph. Deterministic: repeated calls return identical graphs.
func StandardInputs() []*Graph {
	return []*Graph{
		GenerateRoad("usa.ny", RoadGridSide, 1001),
		GenerateRMAT("soc-pokec", SocialScale, SocialEdgeFactor, 2002),
		GenerateUniform("rand-8k", RandomNodes, RandomDegree, 3003),
	}
}

// ExtendedInputs generates a second instance of each input class with
// different sizes and seeds. They are not part of the paper's study;
// the robustness tooling uses them to test whether recommendations
// derived on the standard inputs transfer to fresh inputs of the same
// classes (a domain-shift experiment).
func ExtendedInputs() []*Graph {
	return []*Graph{
		GenerateRoad("usa.bay", 150, 4004),
		GenerateRMAT("soc-lj", SocialScale, 12, 5005),
		GenerateUniform("rand-16k", 16384, 6, 6006),
	}
}

// InputByName regenerates a standard or extended input by name.
func InputByName(name string) (*Graph, error) {
	for _, g := range StandardInputs() {
		if g.Name == name {
			return g, nil
		}
	}
	for _, g := range ExtendedInputs() {
		if g.Name == name {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: unknown input %q", name)
}

// GenerateRoad builds a road-network-like graph: an n x n grid of
// intersections with 4-neighbour connectivity, a small fraction of
// removed streets (dead ends and irregular blocks), and a few long-range
// "highway" shortcuts. The result is connected, planar-ish, has uniform
// low degree (<= 4 + rare highways) and diameter O(n) - the properties
// that make BFS/SSSP on usa.ny iteration-bound in the paper.
func GenerateRoad(name string, side int, seed uint64) *Graph {
	rng := stats.NewRNG(seed)
	n := side * side
	b := NewBuilder(name, ClassRoad, n)
	id := func(r, c int) int32 { return int32(r*side + c) }

	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			// Edge weights model street lengths: 1..10.
			if c+1 < side {
				// Remove ~7% of east-west streets, but never disconnect
				// the first row (keeps the graph connected).
				if r == 0 || rng.Float64() >= 0.07 {
					b.AddUndirected(id(r, c), id(r, c+1), int32(1+rng.Intn(10)))
				}
			}
			if r+1 < side {
				if c == 0 || rng.Float64() >= 0.07 {
					b.AddUndirected(id(r, c), id(r+1, c), int32(1+rng.Intn(10)))
				}
			}
		}
	}
	// Highways: sparse long shortcuts, ~0.1% of nodes get one.
	highways := n / 1000
	for i := 0; i < highways; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			b.AddUndirected(u, v, int32(20+rng.Intn(30)))
		}
	}
	return b.Build()
}

// GenerateRMAT builds a power-law social-network-like graph using the
// RMAT recursive quadrant model with the canonical Graph500 parameters
// (a, b, c) = (0.57, 0.19, 0.19). Edges are made undirected so every
// application (including the symmetric ones) can consume the input, as
// the study's framework does.
func GenerateRMAT(name string, scale, edgeFactor int, seed uint64) *Graph {
	rng := stats.NewRNG(seed)
	n := 1 << scale
	m := n * edgeFactor / 2 // undirected edge pairs
	b := NewBuilder(name, ClassSocial, n)
	const a, bb, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+bb:
				v |= 1 << bit
			case r < a+bb+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			b.AddUndirected(int32(u), int32(v), int32(1+rng.Intn(100)))
		}
		u, v = 0, 0
	}
	return b.Build()
}

// GenerateUniform builds an Erdos-Renyi style graph where every node
// draws `degree` random neighbours. Degrees are near-uniform, so the
// nested-parallelism optimisations have little imbalance to exploit -
// the paper's "if there is very little load imbalance ... these schemes
// simply add overhead" case.
func GenerateUniform(name string, nodes, degree int, seed uint64) *Graph {
	rng := stats.NewRNG(seed)
	b := NewBuilder(name, ClassRandom, nodes)
	for u := 0; u < nodes; u++ {
		for d := 0; d < degree; d++ {
			v := rng.Intn(nodes)
			if v != u {
				b.AddUndirected(int32(u), int32(v), int32(1+rng.Intn(50)))
			}
		}
	}
	return b.Build()
}
