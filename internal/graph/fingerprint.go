package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// fingerprintVersion is baked into every fingerprint so that a change
// to the hashing scheme itself invalidates all previously computed
// fingerprints (and with them every cached trace keyed by one).
// Version 2 switched the CSR arrays from 8-byte words to their natural
// 4-byte encoding when chunked hashing was introduced.
const fingerprintVersion = 2

// Fingerprint returns a stable content hash of the graph: name, class,
// and the full CSR structure including edge weights. Two graphs share a
// fingerprint exactly when every field an application can observe is
// identical, so a fingerprint is a sound cache key for anything derived
// purely from the graph (execution traces in particular).
//
// The encoding is frozen: little-endian field values behind a version
// tag, with explicit length prefixes so that (RowPtr, Dst) boundary
// shifts cannot collide. Changing the scheme requires bumping
// fingerprintVersion.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	// Values are staged in a chunk buffer: hashing the CSR arrays in
	// 32 KiB blocks instead of one Write per value keeps fingerprinting
	// well under a millisecond even for the largest standard inputs
	// (it sits on the trace cache's hot path, paid once per input per
	// campaign).
	buf := make([]byte, 0, 32<<10)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	word := func(v uint64) {
		if len(buf)+8 > cap(buf) {
			flush()
		}
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	val := func(v int32) {
		if len(buf)+4 > cap(buf) {
			flush()
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	word(fingerprintVersion)
	word(uint64(len(g.Name)))
	flush()
	h.Write([]byte(g.Name))
	word(uint64(g.Class))
	word(uint64(len(g.RowPtr)))
	for _, v := range g.RowPtr {
		val(v)
	}
	word(uint64(len(g.Dst)))
	for _, v := range g.Dst {
		val(v)
	}
	word(uint64(len(g.Weight)))
	for _, v := range g.Weight {
		val(v)
	}
	flush()
	sum := h.Sum(nil)
	// 128 bits is ample for a cache key; the gfp1 prefix names the
	// scheme version in the cache directory listing.
	return fmt.Sprintf("gfp%d-%x", fingerprintVersion, sum[:16])
}
