// Package cost implements the performance model that converts an
// application execution trace (internal/irgl), a chip model
// (internal/chip) and an optimisation configuration (internal/opt) into
// a simulated runtime.
//
// The model is additive over kernel launches. Each launch contributes:
//
//	sync      - kernel launch latency, or a global-barrier round when
//	            the launch sits in a loop outlined by oitergb;
//	compute   - edge work inflated by SIMD load imbalance, deflated by
//	            whichever nested-parallelism schemes (wg / sg / fg) are
//	            enabled, each of which charges its own orchestration
//	            overhead; divided by chip throughput, occupancy at the
//	            selected workgroup size, and launch utilisation;
//	atomics   - worklist pushes (subject to subgroup combining, either
//	            by coop-cv or by a JIT that already combines) and data
//	            atomics;
//	divergence- irregular accesses times the chip's divergence penalty,
//	            relieved by barrier-inducing optimisations (sg / wg)
//	            and by the coalescing effect of fg.
//
// Host fixpoint loops additionally pay a per-iteration copy-back of the
// termination flag unless outlined.
//
// Every term maps to a row of the paper's Table VI. The absolute scale
// is arbitrary (model nanoseconds); only ratios matter to the study.
package cost

import (
	"sync"

	"gpuport/internal/chip"
	"gpuport/internal/irgl"
	"gpuport/internal/opt"
)

// Model tuning constants.
const (
	// Residual excess imbalance after fg linearises the iteration
	// space (per-chunk granularity leaves a little).
	fg1Residual = 0.02
	fg8Residual = 0.08

	// Divergence relief from the coalesced access pattern fg induces.
	fg1DivRelief = 0.35
	fg8DivRelief = 0.28

	// Inspector cost per work-item per enabled nested-parallelism
	// scheme (degree read + local-memory staging), in work units.
	inspectWorkPerItem = 0.5

	// Cooperative processing synchronises the executing group twice
	// per redistributed item (stage + drain).
	barriersPerItem = 2

	// coop-cv orchestration: local traffic per original push.
	coopLocalFactor = 0.15

	// Cooperative redistribution of an item smaller than the executing
	// group wastes the idle lanes, but memory-level parallelism hides a
	// fraction of the waste.
	coopWasteFactor = 0.55

	// Drift floor: even kernels with uniform trip counts desynchronise
	// somewhat, so barrier-induced divergence relief never scales to
	// zero (Section VIII-c's gratuitous-barrier effect exists on
	// uniform strided loops).
	driftFloor = 0.35

	// Minimum launch utilisation (a single straggling workgroup still
	// keeps a sliver of the machine busy).
	minUtilisation = 1.0 / 4096
)

// LaunchProfile wraps kernel stats with memoised imbalance factors.
// The memo is guarded so one profile can be evaluated against many
// chips concurrently (the harness parallelises over chips).
type LaunchProfile struct {
	irgl.KernelStats
	mu      sync.Mutex
	ifCache map[int]float64
}

// TraceProfile is the cost-model-ready form of a trace. Building it
// once per (application, input) amortises histogram analysis across the
// 96 configurations and 6 chips evaluated against it.
type TraceProfile struct {
	App      string
	Input    string
	Launches []LaunchProfile
	Loops    []irgl.LoopStats
}

// NewTraceProfile prepares tr for cost evaluation.
func NewTraceProfile(tr *irgl.Trace) *TraceProfile {
	tp := &TraceProfile{App: tr.App, Input: tr.Input, Loops: tr.Loops}
	tp.Launches = make([]LaunchProfile, len(tr.Launches))
	for i, l := range tr.Launches {
		tp.Launches[i].KernelStats = l
		tp.Launches[i].ifCache = make(map[int]float64, 4)
	}
	return tp
}

func (lp *LaunchProfile) imbalance(width int) float64 {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	if f, ok := lp.ifCache[width]; ok {
		return f
	}
	f := lp.ImbalanceFactor(width)
	lp.ifCache[width] = f
	return f
}

// Estimate returns the modelled runtime (in model nanoseconds) of the
// traced execution on ch under cfg. Deterministic; measurement noise is
// layered on by the measure package.
func Estimate(ch chip.Chip, cfg opt.Config, tp *TraceProfile) float64 {
	wgSize := cfg.WorkgroupSize()
	if wgSize > ch.MaxWorkgroup {
		wgSize = ch.MaxWorkgroup
	}
	occ := 1.0
	if cfg.SZ256 {
		occ = ch.Occupancy256
	}

	total := 0.0
	for i := range tp.Launches {
		total += launchCost(ch, cfg, &tp.Launches[i], wgSize, occ)
	}

	// Host loop costs: per-iteration copy-back of the fixpoint flag,
	// or - outlined - a single dispatch launch per loop.
	for _, loop := range tp.Loops {
		if cfg.OiterGB {
			total += ch.LaunchNS + ch.CopyNS
		} else {
			total += float64(loop.Iterations) * ch.CopyNS
		}
	}
	return total
}

// coopLaneWork returns the lane-occupancy cost of processing one item
// of work r cooperatively at the given group width: full rounds of
// width lanes, with idle-lane waste partially hidden by memory-level
// parallelism.
func coopLaneWork(r float64, width int) float64 {
	w := float64(width)
	rounds := float64(int((r + w - 1) / w))
	if rounds < 1 {
		rounds = 1
	}
	occupied := rounds * w
	return r + coopWasteFactor*(occupied-r)
}

func launchCost(ch chip.Chip, cfg opt.Config, lp *LaunchProfile, wgSize int, occ float64) float64 {
	outlined := cfg.OiterGB && lp.LoopID >= 0

	// --- synchronisation ---
	// The portable global barrier spins every resident workgroup on
	// shared flags, so its cost grows with how much of the machine the
	// outlined kernel occupies; a launch costs the same regardless.
	var ns float64
	if outlined {
		wgs := float64(lp.Items) / float64(wgSize) / float64(ch.CUs)
		if wgs > 4 {
			wgs = 4
		}
		ns = ch.GlobalBarrierNS * (0.6 + 0.4*wgs)
	} else {
		ns = ch.LaunchNS
	}
	if mutation("drop-launch-latency") {
		ns = 0
	}
	if lp.Items == 0 {
		return ns
	}

	// --- load balancing / nested parallelism ---
	// The nested-parallelism schemes route each work-item's inner loop
	// by its trip count (degree): wg takes items at workgroup width,
	// sg at subgroup width, fg linearises the rest. Crucially, when fg
	// is absent the enabled scheme must process *every* item
	// cooperatively - IrGL's executor serialises the workgroup's outer
	// loop - so wg without fg wastes wgSize/degree lanes per low-degree
	// item. This is the mechanism behind the catastrophic slowdowns of
	// the paper's Table II/III (sz256,wg combinations at the bottom).
	items := float64(lp.Items)
	work := float64(lp.TotalWork)
	sgW := ch.SubgroupSize
	if sgW < 1 {
		sgW = 1
	}

	extraWork := 0.0   // work-unit surcharges (parallel, throughput-bound)
	extraLaneNS := 0.0 // latency surcharges (already in ns)
	laneWork := 0.0    // lane-occupancy work including redistribution waste

	// The nested-parallelism transforms rewrite the kernel's inner
	// (edge) loop; kernels whose items never run more than one inner
	// iteration have no loop to rewrite and are generated untouched.
	anyNP := (cfg.WG || cfg.SG || cfg.FG != opt.FGOff) && lp.MaxWork > 1
	if !anyNP {
		// Plain per-lane execution: the subgroup runs in lockstep, so
		// lanes idle while the heaviest lane drains its edges.
		laneWork = work * lp.imbalance(sgW)
	} else {
		schemes := 0
		for _, on := range []bool{cfg.WG, cfg.SG, cfg.FG != opt.FGOff} {
			if on {
				schemes++
			}
		}
		extraWork += inspectWorkPerItem * float64(schemes) * items

		wgBar := ch.WorkgroupBarrierNS
		if wgSize > 128 {
			wgBar *= ch.WGBarrier256Factor
		}
		fgCost := 0.0
		fgResidual := 0.0
		switch cfg.FG {
		case opt.FG1:
			fgCost = ch.FG1CostPerEdge
			fgResidual = fg1Residual
		case opt.FG8:
			fgCost = ch.FG8CostPerEdge
			fgResidual = fg8Residual
		}

		for b := 0; b < irgl.WorkHistBuckets; b++ {
			c := float64(lp.WorkHist[b])
			if c == 0 {
				continue
			}
			r := float64(lp.WorkHistSum[b]) / c
			switch {
			case cfg.WG && (r >= float64(wgSize) || (!cfg.SG && cfg.FG == opt.FGOff)):
				laneWork += c * coopLaneWork(r, wgSize)
				if !mutation("drop-wg-barrier") {
					extraLaneNS += c * barriersPerItem * wgBar / float64(ch.CUs)
				}
			case cfg.SG && (r >= float64(sgW) || cfg.FG == opt.FGOff):
				laneWork += c * coopLaneWork(r, sgW)
				extraLaneNS += c * barriersPerItem * ch.SubgroupBarrierNS / float64(ch.CUs)
			default:
				// fg path: linearised iteration space.
				laneWork += c * r * (1 + fgResidual + fgCost)
			}
		}
	}

	// --- compute ---
	util := items / float64(ch.CUs*wgSize)
	if util > 1 {
		util = 1
	}
	if util < minUtilisation {
		util = minUtilisation
	}
	gbPen := 1.0
	if outlined {
		gbPen = ch.GBOccupancyPenalty
	}
	throughput := ch.EdgeThroughput * occ * util / gbPen
	ns += (laneWork + extraWork) / throughput
	ns += items * ch.ItemOverheadNS / (float64(ch.CUs) * occ)
	ns += extraLaneNS

	// --- atomics ---
	// Subgroup combining divides push count; either the programmer
	// asked for it (coop-cv) or the JIT does it regardless.
	pushes := float64(lp.AtomicPushes)
	if pushes > 0 {
		// Combining aggregates the pushes that the subgroup's lanes
		// issue in the same instruction; when only a fraction of lanes
		// push (sparse worklist updates), fewer pushes share an atomic.
		density := 1.0
		if denom := float64(lp.TotalWork); denom > pushes {
			density = pushes / denom
		}
		combine := 1.0
		if cfg.CoopCV || ch.JITCombinesAtomics {
			combine = float64(ch.SubgroupSize) * ch.CombineEfficiency * density
			if combine < 1 {
				combine = 1
			}
		}
		ns += pushes / combine * ch.AtomicNS
		if cfg.CoopCV && !mutation("drop-coopcv-overhead") {
			// Orchestration. OpenCL subgroup operations must be
			// uniform, so the compiler predicates the combining code
			// across every lane of every edge visit (Section V-A) -
			// the overhead scales with the kernel's work, not with
			// the pushes that actually happen. Pure overhead on chips
			// whose JIT already combines, and on MALI (subgroup 1).
			sgW := ch.SubgroupSize
			if sgW < 1 {
				sgW = 1
			}
			ns += work * ch.CoopOverheadNS / float64(ch.CUs)
			groups := pushes / float64(sgW)
			ns += groups * barriersPerItem * ch.SubgroupBarrierNS / float64(ch.CUs)
		}
	}
	ns += float64(lp.AtomicRMWs) * ch.AtomicDataNS

	// --- memory divergence ---
	// Barrier-bearing optimisations keep a workgroup's threads on the
	// same loop iteration, recovering part of the divergence penalty;
	// the recovery only materialises when there is drift to remove
	// (scaled by workgroup-level imbalance). fg's linearised accesses
	// coalesce independently of drift.
	if lp.RandomAccesses > 0 && !mutation("drop-divergence") {
		divFrac := 1.0
		if (cfg.SG || cfg.WG) && lp.MaxWork > 1 {
			drift := lp.imbalance(wgSize) - 1
			if drift > 1 {
				drift = 1
			}
			if drift < driftFloor {
				drift = driftFloor
			}
			relief := ch.BarrierDivergenceRelief
			if !cfg.SG {
				// wg's coarser barriers re-align the workgroup less
				// often than sg's per-subgroup staging does.
				relief *= 0.5
			}
			divFrac *= 1 - relief*drift
		}
		if lp.MaxWork > 1 {
			switch cfg.FG {
			case opt.FG1:
				divFrac *= 1 - fg1DivRelief
			case opt.FG8:
				divFrac *= 1 - fg8DivRelief
			}
		}
		ns += float64(lp.RandomAccesses) * ch.DivergencePenaltyNS * divFrac
	}
	return ns
}
