//go:build conformmutate

package cost

// Mutation names the active deliberate bug, or is empty for the
// unmutated model. It exists only under the conformmutate build tag and
// is set by the conformance engine's mutation-sanity test before any
// cost evaluation runs (never concurrently with one).
//
// Known names (see the hooks in cost.go):
//
//	drop-launch-latency  - kernel launches cost no sync time
//	drop-divergence      - the memory-divergence term is skipped
//	drop-wg-barrier      - workgroup-cooperative barrier time is free
//	drop-coopcv-overhead - coop-cv orchestration is free
var Mutation string

func mutation(name string) bool { return Mutation == name }
