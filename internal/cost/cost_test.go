package cost

import (
	"testing"
	"testing/quick"

	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
	"gpuport/internal/opt"
)

func mustChip(t *testing.T, name string) chip.Chip {
	t.Helper()
	c, err := chip.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// synthTrace builds a trace with the given launch shapes.
func synthTrace(launches ...irgl.KernelStats) *TraceProfile {
	tr := &irgl.Trace{App: "synth", Input: "synth"}
	tr.Launches = launches
	return NewTraceProfile(tr)
}

// launch builds a KernelStats where every item has identical work.
func uniformLaunch(items, workPerItem int64, loopID int) irgl.KernelStats {
	var s irgl.KernelStats
	s.Name = "k"
	s.LoopID = loopID
	s.Items = items
	if workPerItem > 0 {
		b := 0
		for w := workPerItem; w > 1; w >>= 1 {
			b++
		}
		s.WorkHist[b] = items
		s.WorkHistSum[b] = items * workPerItem
		s.TotalWork = items * workPerItem
		s.MaxWork = workPerItem
		s.RandomAccesses = s.TotalWork
	} else {
		s.ZeroWorkItems = items
	}
	return s
}

// skewedLaunch mixes many light items with a few heavy hubs.
func skewedLaunch(items int64, loopID int) irgl.KernelStats {
	var s irgl.KernelStats
	s.Name = "k"
	s.LoopID = loopID
	s.Items = items
	light := items - items/100
	heavy := items / 100
	s.WorkHist[2] = light // work 4
	s.WorkHistSum[2] = light * 4
	s.WorkHist[10] = heavy // work 1024
	s.WorkHistSum[10] = heavy * 1024
	s.TotalWork = light*4 + heavy*1024
	s.MaxWork = 1024
	s.RandomAccesses = s.TotalWork
	return s
}

func TestEstimatePositiveAndDeterministic(t *testing.T) {
	tp := synthTrace(uniformLaunch(1000, 8, -1))
	for _, ch := range chip.All() {
		for _, cfg := range opt.All() {
			a := Estimate(ch, cfg, tp)
			b := Estimate(ch, cfg, tp)
			if a <= 0 {
				t.Fatalf("%s/%s: non-positive estimate %v", ch.Name, cfg, a)
			}
			if a != b {
				t.Fatalf("%s/%s: estimate not deterministic", ch.Name, cfg)
			}
		}
	}
}

func TestEmptyLaunchCostsOnlySync(t *testing.T) {
	ch := mustChip(t, chip.R9)
	tp := synthTrace(uniformLaunch(0, 0, -1))
	got := Estimate(ch, opt.Config{}, tp)
	if got != ch.LaunchNS {
		t.Errorf("empty launch = %v, want launch latency %v", got, ch.LaunchNS)
	}
}

func TestOiterGBHelpsLaunchBoundOnR9(t *testing.T) {
	// Hundreds of tiny launches in a loop: the R9's expensive launches
	// dominate, and outlining must win big (the paper's road-network
	// speedups).
	ch := mustChip(t, chip.R9)
	var launches []irgl.KernelStats
	for i := 0; i < 300; i++ {
		launches = append(launches, uniformLaunch(64, 4, 0))
	}
	tp := synthTrace(launches...)
	tp.Loops = []irgl.LoopStats{{ID: 0, Iterations: 300, Launches: 300}}
	base := Estimate(ch, opt.Config{}, tp)
	outlined := Estimate(ch, opt.Config{OiterGB: true}, tp)
	if base < 4*outlined {
		t.Errorf("R9 outlining speedup = %v, want >= 4x", base/outlined)
	}
}

func TestOiterGBHurtsComputeBoundOnNvidia(t *testing.T) {
	// Few launches of big kernels on a chip with cheap launches: the
	// persistent-kernel occupancy penalty makes outlining a loss.
	ch := mustChip(t, chip.GTX1080)
	var launches []irgl.KernelStats
	for i := 0; i < 10; i++ {
		launches = append(launches, uniformLaunch(200000, 16, 0))
	}
	tp := synthTrace(launches...)
	tp.Loops = []irgl.LoopStats{{ID: 0, Iterations: 10, Launches: 10}}
	base := Estimate(ch, opt.Config{}, tp)
	outlined := Estimate(ch, opt.Config{OiterGB: true}, tp)
	if outlined <= base {
		t.Errorf("GTX1080 outlining on compute-bound: %v <= %v, want slowdown", outlined, base)
	}
}

func TestWGAloneCatastrophicOnLowDegree(t *testing.T) {
	// wg without fg serialises the outer loop: degree-4 items occupy a
	// 128-lane workgroup each. Must cost several times the baseline
	// (Table II's 22x class of slowdowns).
	ch := mustChip(t, chip.GTX1080)
	tp := synthTrace(uniformLaunch(100000, 4, -1))
	base := Estimate(ch, opt.Config{}, tp)
	wg := Estimate(ch, opt.Config{WG: true}, tp)
	if wg < 3*base {
		t.Errorf("wg-alone on low degree: %v vs base %v, want >= 3x slower", wg, base)
	}
	// With fg8 the low-degree items go down the fg path: harmless.
	wgfg := Estimate(ch, opt.Config{WG: true, FG: opt.FG8}, tp)
	if wgfg > 1.5*base {
		t.Errorf("wg+fg8 should be benign: %v vs base %v", wgfg, base)
	}
}

func TestSZ256AmplifiesWGBarriers(t *testing.T) {
	ch := mustChip(t, chip.R9)
	tp := synthTrace(uniformLaunch(100000, 4, -1))
	wg := Estimate(ch, opt.Config{WG: true}, tp)
	wg256 := Estimate(ch, opt.Config{WG: true, SZ256: true}, tp)
	if wg256 <= wg {
		t.Errorf("sz256 should worsen wg-alone: %v <= %v", wg256, wg)
	}
}

func TestFG8HelpsSkewedWork(t *testing.T) {
	// Power-law work distribution: linearising the iteration space
	// must beat lockstep per-lane execution on subgroup hardware.
	for _, name := range []string{chip.M4000, chip.GTX1080, chip.R9} {
		ch := mustChip(t, name)
		tp := synthTrace(skewedLaunch(50000, -1))
		base := Estimate(ch, opt.Config{}, tp)
		fg8 := Estimate(ch, opt.Config{FG: opt.FG8}, tp)
		if fg8 >= base {
			t.Errorf("%s: fg8 on skewed work %v >= base %v", name, fg8, base)
		}
	}
}

func TestNPDoesNotApplyToFlatKernels(t *testing.T) {
	// A kernel whose items do at most one unit of work has no inner
	// loop; nested-parallelism configs must cost the same as baseline.
	ch := mustChip(t, chip.GTX1080)
	flat := uniformLaunch(100000, 1, -1)
	tp := synthTrace(flat)
	base := Estimate(ch, opt.Config{}, tp)
	for _, cfg := range []opt.Config{{WG: true}, {SG: true}, {FG: opt.FG8}} {
		got := Estimate(ch, cfg, tp)
		if got != base {
			t.Errorf("%v on flat kernel: %v, want baseline %v", cfg, got, base)
		}
	}
}

func TestCoopCVOnR9VsNvidia(t *testing.T) {
	// Push-heavy kernel: combining wins on R9 (no JIT combining,
	// expensive atomics), pure overhead on GTX1080 (JIT combines).
	mk := func() irgl.KernelStats {
		s := uniformLaunch(50000, 8, -1)
		s.AtomicPushes = s.TotalWork // every edge pushes
		return s
	}
	r9 := mustChip(t, chip.R9)
	tp := synthTrace(mk())
	if base, coop := Estimate(r9, opt.Config{}, tp), Estimate(r9, opt.Config{CoopCV: true}, tp); coop >= base {
		t.Errorf("R9: coop-cv %v >= base %v, want speedup", coop, base)
	}
	gtx := mustChip(t, chip.GTX1080)
	tp = synthTrace(mk())
	if base, coop := Estimate(gtx, opt.Config{}, tp), Estimate(gtx, opt.Config{CoopCV: true}, tp); coop <= base {
		t.Errorf("GTX1080: coop-cv %v <= base %v, want overhead", coop, base)
	}
}

func TestSGRelievesDivergenceOnMALI(t *testing.T) {
	ch := mustChip(t, chip.MALI)
	tp := synthTrace(uniformLaunch(20000, 8, -1))
	base := Estimate(ch, opt.Config{}, tp)
	sg := Estimate(ch, opt.Config{SG: true}, tp)
	if sg >= base {
		t.Errorf("MALI: sg %v >= base %v, want divergence relief", sg, base)
	}
	// The relief should be a much smaller fraction on GTX1080.
	gtx := mustChip(t, chip.GTX1080)
	tp2 := synthTrace(uniformLaunch(20000, 8, -1))
	gtxBase := Estimate(gtx, opt.Config{}, tp2)
	gtxSG := Estimate(gtx, opt.Config{SG: true}, tp2)
	maliGain := (base - sg) / base
	gtxGain := (gtxBase - gtxSG) / gtxBase
	if maliGain < 2*gtxGain {
		t.Errorf("MALI sg gain %v should dwarf GTX gain %v", maliGain, gtxGain)
	}
}

func TestMoreWorkCostsMore(t *testing.T) {
	f := func(itemsSeed, workSeed uint8) bool {
		items := int64(itemsSeed)%1000 + 10
		work := int64(workSeed)%64 + 2
		ch, _ := chip.ByName(chip.IRIS)
		small := Estimate(ch, opt.Config{}, synthTrace(uniformLaunch(items, work, -1)))
		big := Estimate(ch, opt.Config{}, synthTrace(uniformLaunch(items*2, work, -1), uniformLaunch(items, work, -1)))
		return big > small
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRealTracesAllFinitePositive(t *testing.T) {
	g := graph.GenerateRMAT("cost-rmat", 9, 8, 3)
	for _, app := range apps.All() {
		tr, _ := app.Run(g)
		tp := NewTraceProfile(tr)
		for _, ch := range chip.All() {
			for _, cfg := range []opt.Config{{}, {SG: true, FG: opt.FG8, OiterGB: true}, {WG: true, SZ256: true, CoopCV: true}} {
				v := Estimate(ch, cfg, tp)
				if v <= 0 || v != v {
					t.Fatalf("%s on %s under %v: estimate %v", app.Name, ch.Name, cfg, v)
				}
			}
		}
	}
}

func TestProfilePreservesTraceIdentity(t *testing.T) {
	g := graph.GenerateRoad("cost-road", 12, 5)
	app, _ := apps.ByName("bfs-wl")
	tr, _ := app.Run(g)
	tp := NewTraceProfile(tr)
	if tp.App != "bfs-wl" || tp.Input != "cost-road" {
		t.Errorf("profile identity %s/%s", tp.App, tp.Input)
	}
	if len(tp.Launches) != len(tr.Launches) || len(tp.Loops) != len(tr.Loops) {
		t.Error("profile dropped launches or loops")
	}
}

func TestSZ256ClampedToMaxWorkgroup(t *testing.T) {
	// A chip limited to 128-wide workgroups treats sz256 as 128 for
	// the utilisation math; only the occupancy factor differs.
	ch := mustChip(t, chip.R9)
	ch.MaxWorkgroup = 128
	ch.Occupancy256 = 1.0
	tp := synthTrace(uniformLaunch(5000, 8, -1))
	base := Estimate(ch, opt.Config{}, tp)
	sz := Estimate(ch, opt.Config{SZ256: true}, tp)
	if base != sz {
		t.Errorf("clamped sz256 with occ=1 should equal baseline: %v vs %v", base, sz)
	}
}

func TestOutlinedBarrierScalesWithOccupancy(t *testing.T) {
	// The portable global barrier costs more when the outlined kernel
	// fills the machine (more workgroups spinning).
	ch := mustChip(t, chip.R9)
	small := synthTrace(uniformLaunch(64, 4, 0))
	big := synthTrace(uniformLaunch(200000, 4, 0))
	smallBar := Estimate(ch, opt.Config{OiterGB: true}, small) - Estimate(ch, opt.Config{}, small)
	bigBar := Estimate(ch, opt.Config{OiterGB: true}, big) - Estimate(ch, opt.Config{}, big)
	// Both replace a launch with a barrier (plus per-loop effects are
	// absent here since Loops is empty); the big launch's barrier must
	// be costlier, i.e. its saving must be smaller.
	if !(bigBar > smallBar) {
		t.Errorf("barrier saving should shrink with occupancy: small %v, big %v", smallBar, bigBar)
	}
}
