//go:build !conformmutate

package cost

// mutation reports whether the named deliberate bug is active. In
// normal builds it is a constant false that the compiler folds away, so
// the hooks in the cost model cost nothing. Builds tagged conformmutate
// replace this with a switchable version (mutate_on.go) that the
// conformance engine's mutation-sanity test drives; see
// internal/conform.
func mutation(string) bool { return false }
