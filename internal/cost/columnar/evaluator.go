package columnar

import (
	"gpuport/internal/chip"
	"gpuport/internal/cost"
	"gpuport/internal/irgl"
	"gpuport/internal/opt"
)

// sizeView holds the per-launch quantities that depend on the selected
// workgroup size (and its occupancy) but on nothing else of the config:
// outlined-sync cost, item overhead, throughput at both occupancy
// penalties, and the clamped barrier-relief drift.
type sizeView struct {
	wgSize  int
	wgSizeF float64
	occ     float64
	wgBar   float64

	syncOut []float64 // global-barrier round cost (outlined launches)
	itemNS  []float64 // items * ItemOverheadNS / (CUs * occ)
	thr     []float64 // EdgeThroughput * occ * util
	thrOut  []float64 // thr / GBOccupancyPenalty
	drift   []float64 // clamp(imbalance(wgSize) - 1)
}

// shape caches one bucket-classification pass for a (wg, sg, fg, size)
// projection of the config space, folded all the way down to the four
// trace totals its configs can produce. The four configs sharing a
// shape differ only in coop-cv and oitergb, both of which select among
// per-launch terms that are already known during the walk - so the walk
// accumulates all four variants as it goes and Estimate reduces to a
// table lookup.
//
// The folding is exact because the walk visits launches in trace order
// and assembles each launch's cost with the reference's own addition
// sequence: each total IS the reference's accumulation replayed
// verbatim, not a regrouping of it.
type shape struct {
	// totals[coopBit*2 + oiterBit]: full modelled trace time.
	totals [4]float64
}

// Evaluator applies one chip to one column set. It memoises the 24
// shape passes lazily, so it is cheap to construct even when only a few
// configs will be evaluated, yet a full 96-config sweep pays for each
// bucket walk only once - and each walk settles four configs.
//
// Not safe for concurrent use (the shape memo is unguarded); give each
// goroutine its own Evaluator over the shared Columns.
type Evaluator struct {
	ch   chip.Chip
	cols *Columns

	cusF     float64
	launchNS float64
	sgW      int // executing subgroup width, clamped to >= 1
	jit      bool

	// Per-launch chip applications, config-invariant.
	plainLane []float64 // work * imbalance(sgW): no nested parallelism
	pushComb  []float64 // push cost under subgroup combining
	pushPlain []float64 // push cost without combining
	coopA     []float64 // coop-cv predication overhead (work-scaled)
	coopB     []float64 // coop-cv subgroup-barrier overhead (push-scaled)
	rmwNS     []float64 // data-atomic cost
	randPen   []float64 // randomAccesses * DivergencePenaltyNS

	loopOutNS  float64   // outlined host loop: dispatch + one copy
	loopIterNS []float64 // per-loop: iterations * CopyNS

	// Per-bucket chip applications, shared by every shape walk so the
	// divides are paid once per chip rather than once per walk. Each
	// entry keeps the reference's own expression order, so reading it
	// mid-walk is bitwise identical to computing it mid-walk.
	c2WG [2][]float64 // bC2[j] * wgBar(size) / CUs
	c2SG []float64    // bC2[j] * sgBar / CUs

	// fgF[k] is the fine-grained work factor 1 + residual + cost for
	// FG1 / FG8. Walks apply it as bCR[j] * factor - the reference's
	// own (c*r)*fgFactor grouping - with factor 1.0 when fg is off.
	fgF [2]float64

	// Per-launch bucket-ordered sums of the columns above, for shape
	// projections where a single classification arm covers every
	// bucket (pure wg / sg / fg): those walks collapse to two loads.
	extraWGSum [2][]float64
	extraSGSum []float64
	laneFGSum  [2][]float64

	// base[8i + s*4 + v]: launch i's cost for variant v (coopBit*2 +
	// oiterBit) at size s when the launch takes the plain path -
	// sync-only, no nested parallelism, or a no-scheme config. Those
	// costs do not depend on the (wg, sg, fg) projection, so every
	// shape walk reads them back instead of re-deriving them (and
	// re-dividing by the launch throughput); the interleaved layout
	// puts all eight on one cache line. plainTotals[s] is the fold of
	// the base costs over the whole trace: the complete no-scheme
	// shape, prebuilt.
	base        []float64
	plainTotals [2][4]float64

	size   [2]sizeView
	shapes [24]shape // [combo + szIdx*12], combo = fg*4 + wgBit + 2*sgBit
	built  [12]bool  // per combo: both sizes are built together
}

// NewEvaluator precomputes every chip-dependent, config-invariant
// quantity for the trace: one pass over the launches plus two size
// views. Shape passes are filled in lazily by Estimate.
func NewEvaluator(ch chip.Chip, cols *Columns) *Evaluator {
	n := cols.n
	nb := len(cols.bC)
	// Every per-launch and per-bucket column the evaluator owns, carved
	// from one slab: a sweep constructs one evaluator per (chip, trace)
	// cell, so constructor allocations are on the hot path.
	fslab := make([]float64, 30*n+cols.nLoops+3*nb)
	carve := func(ln int) []float64 {
		s := fslab[:ln:ln]
		fslab = fslab[ln:]
		return s
	}
	e := &Evaluator{
		ch:        ch,
		cols:      cols,
		cusF:      float64(ch.CUs),
		launchNS:  ch.LaunchNS,
		jit:       ch.JITCombinesAtomics,
		plainLane: carve(n),
		pushComb:  carve(n),
		pushPlain: carve(n),
		coopA:     carve(n),
		coopB:     carve(n),
		rmwNS:     carve(n),
		randPen:   carve(n),
	}
	e.loopIterNS = carve(cols.nLoops)
	for s := 0; s < 2; s++ {
		sv := &e.size[s]
		sv.syncOut = carve(n)
		sv.itemNS = carve(n)
		sv.thr = carve(n)
		sv.thrOut = carve(n)
		sv.drift = carve(n)
		e.c2WG[s] = carve(nb)
		e.extraWGSum[s] = carve(n)
		e.laneFGSum[s] = carve(n)
	}
	e.c2SG = carve(nb)
	e.extraSGSum = carve(n)
	e.base = carve(8 * n)
	e.fgF = [2]float64{
		1 + cost.FG1Residual + ch.FG1CostPerEdge,
		1 + cost.FG8Residual + ch.FG8CostPerEdge,
	}
	e.sgW = ch.SubgroupSize
	if e.sgW < 1 {
		e.sgW = 1
	}
	sgWF := float64(e.sgW)
	for i := 0; i < n; i++ {
		e.plainLane[i] = cols.work[i] * cols.imbalance(i, e.sgW)
		p := cols.pushes[i]
		e.pushPlain[i] = p * ch.AtomicNS
		// Combining divides the push count by the lanes that share an
		// atomic; the raw (unclamped) subgroup width is what combines.
		combine := float64(ch.SubgroupSize) * ch.CombineEfficiency * cols.dens[i]
		if combine < 1 {
			combine = 1
		}
		e.pushComb[i] = p / combine * ch.AtomicNS
		e.coopA[i] = cols.work[i] * ch.CoopOverheadNS / e.cusF
		groups := p / sgWF
		e.coopB[i] = groups * cost.BarriersPerItem * ch.SubgroupBarrierNS / e.cusF
		e.rmwNS[i] = cols.rmws[i] * ch.AtomicDataNS
		e.randPen[i] = cols.random[i] * ch.DivergencePenaltyNS
	}
	e.loopOutNS = ch.LaunchNS + ch.CopyNS
	for l := 0; l < cols.nLoops; l++ {
		e.loopIterNS[l] = cols.loopIters[l] * ch.CopyNS
	}
	e.buildSize(0)
	e.buildSize(1)
	e.buildBuckets()
	e.basePass(0)
	e.basePass(1)
	return e
}

// basePass fills base[szIdx] - the per-launch, per-variant costs along
// the plain path - and folds them into the no-scheme shape totals. Each
// cost is assembled with the reference's addition sequence for a launch
// with no nested-parallelism rewrite: head (launch latency or outlined
// sync, work over throughput, item overhead), push terms, data atomics,
// divergence with no barrier relief. Terms that are exactly zero on
// this path (inspection work, per-bucket barrier overhead) are skipped;
// the remaining partial sums stay strictly positive, so skipping a zero
// add leaves every float bit-identical to the reference (x + 0.0 == x
// for x > 0).
func (e *Evaluator) basePass(szIdx int) {
	c := e.cols
	sv := &e.size[szIdx]
	ba := e.base
	var t0, t1, t2, t3 float64
	for i := 0; i < c.n; i++ {
		o := 8*i + szIdx*4
		if c.zero[i] {
			sync := e.launchNS
			if c.inLoop[i] {
				sync = sv.syncOut[i]
			}
			ba[o], ba[o+1], ba[o+2], ba[o+3] = e.launchNS, sync, e.launchNS, sync
			t0 += e.launchNS
			t1 += sync
			t2 += e.launchNS
			t3 += sync
			continue
		}
		num := e.plainLane[i]
		headP := e.launchNS
		headP += num / sv.thr[i]
		headP += sv.itemNS[i]
		inLoop := c.inLoop[i]
		headO := headP
		if inLoop {
			headO = sv.syncOut[i]
			headO += num / sv.thrOut[i]
			headO += sv.itemNS[i]
		}
		// No rewrite means no divergence relief: the fraction is
		// exactly 1, and randPen * 1.0 == randPen bitwise.
		divNS := 0.0
		if c.random[i] > 0 {
			divNS = e.randPen[i]
		}
		rmw := e.rmwNS[i]
		ns0 := headP // coop-cv off
		ns2 := headP // coop-cv on
		hasPush := c.pushes[i] > 0
		var comb, push, a, b float64
		if hasPush {
			comb = e.pushComb[i]
			push = e.pushPlain[i]
			if e.jit {
				push = comb
			}
			a, b = e.coopA[i], e.coopB[i]
			ns0 += push
			ns2 += comb
			ns2 += a
			ns2 += b
		}
		if rmw > 0 {
			ns0 += rmw
			ns2 += rmw
		}
		if divNS > 0 {
			ns0 += divNS
			ns2 += divNS
		}
		ns1, ns3 := ns0, ns2
		if inLoop {
			ns1 = headO
			ns3 = headO
			if hasPush {
				ns1 += push
				ns3 += comb
				ns3 += a
				ns3 += b
			}
			if rmw > 0 {
				ns1 += rmw
				ns3 += rmw
			}
			if divNS > 0 {
				ns1 += divNS
				ns3 += divNS
			}
		}
		ba[o], ba[o+1], ba[o+2], ba[o+3] = ns0, ns1, ns2, ns3
		t0 += ns0
		t1 += ns1
		t2 += ns2
		t3 += ns3
	}
	for l := 0; l < c.nLoops; l++ {
		it := e.loopIterNS[l]
		t0 += it
		t2 += it
		t1 += e.loopOutNS
		t3 += e.loopOutNS
	}
	e.plainTotals[szIdx] = [4]float64{t0, t1, t2, t3}
}

// buildBuckets fills the per-bucket chip columns and their per-launch
// pure-arm sums in one pass over the compacted histogram. Every term
// repeats the walk's own expression (division by CUs innermost) and
// every sum is a left fold in bucket order, preserving bit-identity.
func (e *Evaluator) buildBuckets() {
	c := e.cols
	sgBar := e.ch.SubgroupBarrierNS
	wgBar0, wgBar1 := e.size[0].wgBar, e.size[1].wgBar
	for i := 0; i < c.n; i++ {
		var sWG0, sWG1, sSG, sFG1, sFG8 float64
		for j, je := c.bStart[i], c.bStart[i+1]; j < je; j++ {
			b2 := c.bC2[j]
			v := b2 * wgBar0 / e.cusF
			e.c2WG[0][j] = v
			sWG0 += v
			v = b2 * wgBar1 / e.cusF
			e.c2WG[1][j] = v
			sWG1 += v
			v = b2 * sgBar / e.cusF
			e.c2SG[j] = v
			sSG += v
			cr := c.bCR[j]
			sFG1 += cr * e.fgF[0]
			sFG8 += cr * e.fgF[1]
		}
		e.extraWGSum[0][i] = sWG0
		e.extraWGSum[1][i] = sWG1
		e.extraSGSum[i] = sSG
		e.laneFGSum[0][i] = sFG1
		e.laneFGSum[1][i] = sFG8
	}
}

// buildSize fills the size view for szIdx (0: wg 128, 1: wg 256), with
// the workgroup size clamped to the chip's maximum exactly as the
// reference clamps it.
func (e *Evaluator) buildSize(s int) {
	ch := e.ch
	wgSize := 128
	occ := 1.0
	if s == 1 {
		wgSize = 256
		occ = ch.Occupancy256
	}
	if wgSize > ch.MaxWorkgroup {
		wgSize = ch.MaxWorkgroup
	}
	sv := &e.size[s]
	sv.wgSize = wgSize
	sv.wgSizeF = float64(wgSize)
	sv.occ = occ
	sv.wgBar = ch.WorkgroupBarrierNS
	if wgSize > 128 {
		sv.wgBar *= ch.WGBarrier256Factor
	}
	c := e.cols
	n := c.n
	for i := 0; i < n; i++ {
		items := c.items[i]
		wgs := items / sv.wgSizeF / e.cusF
		if wgs > 4 {
			wgs = 4
		}
		sv.syncOut[i] = ch.GlobalBarrierNS * (0.6 + 0.4*wgs)
		sv.itemNS[i] = items * ch.ItemOverheadNS / (e.cusF * occ)
		util := items / float64(ch.CUs*wgSize)
		if util > 1 {
			util = 1
		}
		if util < cost.MinUtilisation {
			util = cost.MinUtilisation
		}
		sv.thr[i] = ch.EdgeThroughput * occ * util
		sv.thrOut[i] = ch.EdgeThroughput * occ * util / ch.GBOccupancyPenalty
		drift := c.imbalance(i, wgSize) - 1
		if drift > 1 {
			drift = 1
		}
		if drift < cost.DriftFloor {
			drift = cost.DriftFloor
		}
		sv.drift[i] = drift
	}
}

// shapeFor returns the memoised shape pass for the config's (wg, sg,
// fg, size) projection, building both size shapes of its combination on
// first use.
func (e *Evaluator) shapeFor(cfg opt.Config, szIdx int) *shape {
	key := int(cfg.FG) * 4
	if cfg.WG {
		key++
	}
	if cfg.SG {
		key += 2
	}
	if !e.built[key] {
		e.buildCombo(cfg, key)
		e.built[key] = true
	}
	return &e.shapes[key+szIdx*12]
}

// buildCombo runs the bucket-classification pass - the only part of the
// model that walks the work histogram - for one (wg, sg, fg)
// combination at both workgroup sizes in a single walk over the trace,
// and folds the result all the way down to the eight sweep totals the
// combination's configs can produce (size x coop-cv x oitergb). The
// sizes share every size-invariant load, and the entire lane-work walk
// when the workgroup arm is off; each size's accumulation chain still
// replays the reference's addition sequence independently, so the
// fusion changes which pass computes a total, never the floats in it.
// Reads only cfg.WG, cfg.SG and cfg.FG.
func (e *Evaluator) buildCombo(cfg opt.Config, key int) {
	c := e.cols
	n := c.n

	if !cfg.WG && !cfg.SG && cfg.FG == opt.FGOff {
		// No scheme: every launch takes the plain path, which basePass
		// already folded over the whole trace.
		e.shapes[key] = shape{totals: e.plainTotals[0]}
		e.shapes[key+12] = shape{totals: e.plainTotals[1]}
		return
	}
	schemes := 0
	for _, on := range [3]bool{cfg.WG, cfg.SG, cfg.FG != opt.FGOff} {
		if on {
			schemes++
		}
	}
	inspect := cost.InspectWorkPerItem * float64(schemes)

	fgRelief := 1.0
	switch cfg.FG {
	case opt.FG1:
		fgRelief = 1 - cost.FG1DivRelief
	case opt.FG8:
		fgRelief = 1 - cost.FG8DivRelief
	}

	relief := 0.0
	if cfg.SG || cfg.WG {
		relief = e.ch.BarrierDivergenceRelief
		if !cfg.SG {
			relief *= 0.5
		}
	}

	// The walk's per-bucket classification ("which arm takes bucket j")
	// compares each bucket mean against the wg / sg widths. Bucket means
	// ascend within a launch, so each arm covers a contiguous range: fg
	// prefix, sg middle, wg suffix, delimited by the precomputed split
	// points. When a range covers the whole launch the per-launch sums
	// replace the range loop outright. Direct computation remains as the
	// fallback for widths outside the memo set (non-standard geometry).
	wgOn, sgOn := cfg.WG, cfg.SG
	fgIdx := -1
	switch cfg.FG {
	case opt.FG1:
		fgIdx = 0
	case opt.FG8:
		fgIdx = 1
	}
	wgAll := !sgOn && fgIdx < 0 // wg arm catches every bucket

	// Hoisted columns: this walk is the hot loop of a sweep. Size-
	// dependent quantities come in pairs indexed by szIdx.
	bStart, bR, bCR := c.bStart, c.bR, c.bCR
	sgWF := float64(e.sgW)
	sgSlot := widthSlot(e.sgW)
	var coopSG, coopSumSG []float64
	var splitSG []int32
	if sgSlot >= 0 {
		coopSG = c.bCoop[sgSlot]
		coopSumSG = c.coopSum[sgSlot]
		splitSG = c.split[sgSlot]
	}
	fgMul := 1.0 // (c*r) * fgFactor, exactly the reference's grouping
	var laneFGCol []float64
	if fgIdx >= 0 {
		fgMul = e.fgF[fgIdx]
		laneFGCol = e.laneFGSum[fgIdx]
	}
	var wgW [2]int
	var wgWF [2]float64
	var coopWG, coopSumWG [2][]float64
	var splitWG [2][]int32
	for s := 0; s < 2; s++ {
		wgW[s] = e.size[s].wgSize
		wgWF[s] = e.size[s].wgSizeF
		if slot := widthSlot(wgW[s]); slot >= 0 {
			coopWG[s] = c.bCoop[slot]
			coopSumWG[s] = c.coopSum[slot]
			splitWG[s] = c.split[slot]
		}
	}
	c2WGcol := e.c2WG
	c2SGcol := e.c2SG
	extraWGCol := e.extraWGSum
	extraSGCol := e.extraSGSum
	maxGT1, inLoopCol := c.maxGT1, c.inLoop
	items, pushes, random := c.items, c.pushes, c.random
	rmwNS, randPen := e.rmwNS, e.randPen
	sv0, sv1 := &e.size[0], &e.size[1]
	ba := e.base
	sgOrWG := sgOn || wgOn
	reps := 1
	if wgOn && wgW[0] != wgW[1] {
		reps = 2 // wg arm boundary depends on the workgroup width
	}

	// Totals: u* at size 0, v* at size 1, each [coopBit*2 + oiterBit].
	var u0, u1, u2, u3, v0, v1, v2, v3 float64
	for i := 0; i < n; i++ {
		if !maxGT1[i] {
			// Sync-only or no nested parallelism: the launch's cost is
			// projection-invariant and basePass already assembled it.
			o := 8 * i
			u0 += ba[o]
			u1 += ba[o+1]
			u2 += ba[o+2]
			u3 += ba[o+3]
			v0 += ba[o+4]
			v1 += ba[o+5]
			v2 += ba[o+6]
			v3 += ba[o+7]
			continue
		}
		extraWork := inspect * items[i]
		js, je := bStart[i], bStart[i+1]
		// The sg boundary before clamping against the wg boundary; it
		// does not depend on the workgroup size.
		sSGr := je
		if sgOn {
			switch {
			case fgIdx < 0:
				sSGr = js
			case splitSG != nil:
				sSGr = splitSG[i]
			default:
				for sSGr = js; sSGr < je && bR[sSGr] < sgWF; sSGr++ {
				}
			}
		}
		var lane, extra [2]float64
		for s := 0; s < reps; s++ {
			sWG := je // start of the wg suffix
			if wgOn {
				switch {
				case wgAll:
					sWG = js
				case splitWG[s] != nil:
					sWG = splitWG[s][i]
				default:
					for sWG = js; sWG < je && bR[sWG] < wgWF[s]; sWG++ {
					}
				}
			}
			sSG := sWG // start of the sg middle
			if sgOn {
				sSG = sSGr
				if sSG > sWG {
					sSG = sWG
				}
			}
			var lw, el float64
			cWG := coopWG[s]
			switch {
			case sWG == js && cWG != nil: // every bucket on the wg arm
				lw = coopSumWG[s][i]
				el = extraWGCol[s][i]
			case sSG == js && sWG == je && coopSG != nil: // every bucket on the sg arm
				lw = coopSumSG[i]
				el = extraSGCol[i]
			case sSG == je && fgIdx >= 0: // every bucket on the fg arm
				lw = laneFGCol[i]
			default:
				for j := js; j < sSG; j++ {
					lw += bCR[j] * fgMul
				}
				if coopSG != nil {
					for j := sSG; j < sWG; j++ {
						lw += coopSG[j]
						el += c2SGcol[j]
					}
				} else {
					for j := sSG; j < sWG; j++ {
						lw += c.bC[j] * cost.CoopLaneWork(bR[j], e.sgW)
						el += c2SGcol[j]
					}
				}
				if cWG != nil {
					for j := sWG; j < je; j++ {
						lw += cWG[j]
						el += c2WGcol[s][j]
					}
				} else {
					for j := sWG; j < je; j++ {
						lw += c.bC[j] * cost.CoopLaneWork(bR[j], wgW[s])
						el += c2WGcol[s][j]
					}
				}
			}
			lane[s], extra[s] = lw, el
		}
		if reps == 1 {
			lane[1], extra[1] = lane[0], extra[0]
		}

		// divNS and rmw are 0 exactly when the reference skips their
		// adds, and a cost is strictly positive, so both skipping and
		// adding zero are bitwise identical to the reference's guarded
		// adds (x + 0.0 == x for x > 0).
		inLoop := inLoopCol[i]
		var divNS0, divNS1 float64
		if random[i] > 0 {
			rp := randPen[i]
			divFrac := 1.0
			if sgOrWG {
				divFrac *= 1 - relief*sv0.drift[i]
			}
			if fgIdx >= 0 {
				divFrac *= fgRelief
			}
			divNS0 = rp * divFrac
			divFrac = 1.0
			if sgOrWG {
				divFrac *= 1 - relief*sv1.drift[i]
			}
			if fgIdx >= 0 {
				divFrac *= fgRelief
			}
			divNS1 = rp * divFrac
		}
		rmw := rmwNS[i]
		hasPush := pushes[i] > 0
		var comb, push, a, b float64
		if hasPush {
			comb = e.pushComb[i]
			push = e.pushPlain[i]
			if e.jit {
				push = comb // the chip's JIT combines even without coop-cv
			}
			a, b = e.coopA[i], e.coopB[i]
		}

		// Variants at size 0, each assembled with the reference's
		// addition sequence: head, push terms, data atomics,
		// divergence. The outlined pair duplicates the plain pair
		// bitwise when the launch is not in a loop.
		num := lane[0] + extraWork
		headP := e.launchNS
		headP += num / sv0.thr[i]
		headP += sv0.itemNS[i]
		headP += extra[0]
		ns0 := headP // coop-cv off
		ns2 := headP // coop-cv on
		if hasPush {
			ns0 += push
			ns2 += comb
			ns2 += a
			ns2 += b
		}
		if rmw > 0 {
			ns0 += rmw
			ns2 += rmw
		}
		if divNS0 > 0 {
			ns0 += divNS0
			ns2 += divNS0
		}
		u0 += ns0
		u2 += ns2
		if inLoop {
			headO := sv0.syncOut[i]
			headO += num / sv0.thrOut[i]
			headO += sv0.itemNS[i]
			headO += extra[0]
			ns1 := headO
			ns3 := headO
			if hasPush {
				ns1 += push
				ns3 += comb
				ns3 += a
				ns3 += b
			}
			if rmw > 0 {
				ns1 += rmw
				ns3 += rmw
			}
			if divNS0 > 0 {
				ns1 += divNS0
				ns3 += divNS0
			}
			u1 += ns1
			u3 += ns3
		} else {
			u1 += ns0
			u3 += ns2
		}

		// Variants at size 1: the same sequence against the size-1
		// throughput, overheads and drift.
		num = lane[1] + extraWork
		headP = e.launchNS
		headP += num / sv1.thr[i]
		headP += sv1.itemNS[i]
		headP += extra[1]
		ns0 = headP
		ns2 = headP
		if hasPush {
			ns0 += push
			ns2 += comb
			ns2 += a
			ns2 += b
		}
		if rmw > 0 {
			ns0 += rmw
			ns2 += rmw
		}
		if divNS1 > 0 {
			ns0 += divNS1
			ns2 += divNS1
		}
		v0 += ns0
		v2 += ns2
		if inLoop {
			headO := sv1.syncOut[i]
			headO += num / sv1.thrOut[i]
			headO += sv1.itemNS[i]
			headO += extra[1]
			ns1 := headO
			ns3 := headO
			if hasPush {
				ns1 += push
				ns3 += comb
				ns3 += a
				ns3 += b
			}
			if rmw > 0 {
				ns1 += rmw
				ns3 += rmw
			}
			if divNS1 > 0 {
				ns1 += divNS1
				ns3 += divNS1
			}
			v1 += ns1
			v3 += ns3
		} else {
			v1 += ns0
			v3 += ns2
		}
	}

	// Host loop tail, folded per loop in the reference's order.
	for l := 0; l < c.nLoops; l++ {
		it := e.loopIterNS[l]
		u0 += it
		u2 += it
		u1 += e.loopOutNS
		u3 += e.loopOutNS
		v0 += it
		v2 += it
		v1 += e.loopOutNS
		v3 += e.loopOutNS
	}
	e.shapes[key] = shape{totals: [4]float64{u0, u1, u2, u3}}
	e.shapes[key+12] = shape{totals: [4]float64{v0, v1, v2, v3}}
}

// Estimate returns the modelled runtime of the trace on the evaluator's
// chip under cfg - bit-identical to cost.Estimate on the profile the
// Columns were built from. Amortised over a sweep, the per-config cost
// is a memo lookup: each lazily-built shape pass already folded the
// full trace total for all four of its configs.
//
// The reference's conform mutation hooks (a fault-injection testing
// device) are deliberately not replicated here: under an active cost
// mutation the two engines genuinely diverge and the differential
// property reports it, which is exactly the evidence that the property
// has teeth.
func (e *Evaluator) Estimate(cfg opt.Config) float64 {
	szIdx := 0
	if cfg.SZ256 {
		szIdx = 1
	}
	sh := e.shapeFor(cfg, szIdx)
	v := 0
	if cfg.OiterGB {
		v = 1
	}
	if cfg.CoopCV {
		v += 2
	}
	return sh.totals[v]
}

// Estimate is the one-shot convenience form: build an evaluator for
// (ch, cols) and evaluate a single config. Sweeps should build one
// Evaluator per (chip, trace) and reuse it across configs instead.
func Estimate(ch chip.Chip, cfg opt.Config, cols *Columns) float64 {
	return NewEvaluator(ch, cols).Estimate(cfg)
}

// EstimateTrace builds columns for tr and evaluates one config - the
// columnar mirror of cost.Estimate(ch, cfg, cost.NewTraceProfile(tr)).
// Exists for spot checks and examples; sweeps should Build once.
func EstimateTrace(ch chip.Chip, cfg opt.Config, tr *irgl.Trace) float64 {
	return Estimate(ch, cfg, Build(cost.NewTraceProfile(tr)))
}
