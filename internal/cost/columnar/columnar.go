// Package columnar is the incremental sweep engine behind
// internal/measure: a struct-of-arrays replay of the reference cost
// model (internal/cost) that produces bit-identical model times at a
// fraction of the evaluation cost.
//
// The reference Estimate re-walks every launch's work histogram - and
// re-derives every launch's atomic, divergence and utilisation terms -
// for each of the 96 configurations evaluated against a trace. Almost
// all of that arithmetic is invariant across the sweep grid, and the
// paper's Table VI model is additive, so it factors cleanly into three
// tiers:
//
//	Build (once per trace, chip-free)      - Columns: parallel column
//	    slices of per-launch scalars, the compacted nonzero histogram
//	    buckets, per-bucket products (c*r, c*barriers, c*coopLaneWork
//	    at the standard group widths) and imbalance memos.
//	NewEvaluator (once per chip per trace) - per-launch chip
//	    applications: launch utilisation, throughput, item overhead,
//	    atomic combining, divergence penalties, at both workgroup
//	    sizes.
//	Estimate (per config)                  - selects one of 24 shape
//	    passes (wg x sg x fg x workgroup size - lazily computed, each
//	    shared by 4 configs) whose walk has already folded the full
//	    trace total for each of its coop-cv x oitergb variants, and
//	    returns the memoised total.
//
// Bit-identity with cost.Estimate is load-bearing, not cosmetic: the
// measure harness freezes its datasets byte-for-byte, so the engines
// must agree to the last ulp. Float addition is not associative, which
// pins the design: every precomputed value is a *prefix* of the
// reference's accumulation sequence (prefixes fold exactly; arbitrary
// regroupings do not), bucket passes run in the reference's bucket
// order, and shared constants come from the exported cost tuning
// surface rather than copies. The conform property
// engine-columnar-differential cross-validates the two engines over
// randomized traces x all chips x all configs.
//
// Columns are immutable after Build and safe to share across any
// number of concurrent Evaluators; an Evaluator memoises shape passes
// and must stay goroutine-local.
package columnar

import (
	"math"

	"gpuport/internal/cost"
	"gpuport/internal/irgl"
)

// memoWidths are the group widths whose cooperative lane-work products
// and imbalance factors are precomputed at build time: subgroup widths
// of the study's chips (1, 16, 32, 64) and the two workgroup sizes
// (128, 256). Other widths (non-standard chip geometries) fall back to
// direct - still bit-identical - computation.
var memoWidths = [6]int{1, 16, 32, 64, 128, 256}

// widthSlot returns the memoWidths index of width, or -1.
func widthSlot(width int) int {
	for k, w := range memoWidths {
		if w == width {
			return k
		}
	}
	return -1
}

// Columns is the chip-free columnar form of one trace: everything the
// cost model consumes, laid out as parallel per-launch slices with all
// config-invariant quantities precomputed. Build once per (application,
// input); read-only afterwards.
type Columns struct {
	// App and Input identify the trace.
	App   string
	Input string

	n int // number of launches

	// Per-launch scalar columns.
	items  []float64 // float64(Items)
	work   []float64 // float64(TotalWork)
	zero   []bool    // Items == 0 (sync-only launches)
	maxGT1 []bool    // MaxWork > 1 (has an inner loop to rewrite)
	inLoop []bool    // LoopID >= 0 (candidate for oitergb outlining)
	pushes []float64 // float64(AtomicPushes)
	dens   []float64 // push density (pushes/work, capped at 1)
	rmws   []float64 // float64(AtomicRMWs)
	random []float64 // float64(RandomAccesses)

	// Compacted work histogram: launch i owns the bucket range
	// bStart[i]:bStart[i+1] of the flat per-bucket columns, in the
	// reference's ascending bucket order with empty buckets dropped
	// (the reference skips them too, so compaction is exact).
	bStart []int32
	bC     []float64                  // bucket count
	bR     []float64                  // exact bucket mean work
	bCR    []float64                  // count * mean (fg path product)
	bC2    []float64                  // count * BarriersPerItem
	bCoop  [len(memoWidths)][]float64 // count * CoopLaneWork(mean, w)

	// Imbalance factors at the memoised widths.
	imb [len(memoWidths)][]float64

	// Per-launch bucket-ordered sums of the bCoop columns: the lane
	// work of a launch whose every bucket takes the same cooperative
	// arm. Shape passes where only one classification arm can fire use
	// these to skip the bucket walk outright; the sums are exact
	// because they are the walk's own left-to-right accumulation.
	coopSum [len(memoWidths)][]float64

	// split[k][i] is the first flat bucket index in launch i's range
	// whose mean work reaches memoWidths[k] (bStart[i+1] if none).
	// Bucket means are strictly ascending - the histogram is log2 by
	// work - so "mean >= width" holds on exactly the suffix from this
	// index, which turns the walk's per-bucket classification into
	// three contiguous ranges.
	split [len(memoWidths)][]int32

	// Host loops.
	nLoops    int
	loopIters []float64

	// Source profile, for imbalance factors at fallback widths. Columns
	// reads it but never writes it; the caller must not mutate the
	// profile while any Columns built from it is in use (the same
	// contract the reference engine already places on a TraceProfile
	// shared across a sweep).
	src *cost.TraceProfile
}

// Build converts a cost-model trace profile into its columnar form,
// paying every config-invariant computation exactly once. A first pass
// counts the nonzero histogram buckets so every column is carved from
// one exact-size slab per element type - no append growth, and the
// whole structure is two or three allocations for the collector.
func Build(tp *cost.TraceProfile) *Columns {
	n := len(tp.Launches)
	nb := 0
	for i := range tp.Launches {
		ks := &tp.Launches[i].KernelStats
		for b := 0; b < irgl.WorkHistBuckets; b++ {
			if ks.WorkHist[b] != 0 {
				nb++
			}
		}
	}
	nLoops := len(tp.Loops)

	const nw = len(memoWidths)
	fslab := make([]float64, (6+2*nw)*n+nLoops+4*nb)
	carve := func(ln int) []float64 {
		s := fslab[:ln:ln]
		fslab = fslab[ln:]
		return s
	}
	islab := make([]int32, (nw+1)*n+1)
	bslab := make([]bool, 3*n)
	c := &Columns{
		App:    tp.App,
		Input:  tp.Input,
		n:      n,
		items:  carve(n),
		work:   carve(n),
		pushes: carve(n),
		dens:   carve(n),
		rmws:   carve(n),
		random: carve(n),
		zero:   bslab[0:n:n],
		maxGT1: bslab[n : 2*n : 2*n],
		inLoop: bslab[2*n : 3*n : 3*n],
		bStart: islab[0 : n+1 : n+1],
		src:    tp,
	}
	islab = islab[n+1:]
	for k := range memoWidths {
		c.imb[k] = carve(n)
		c.coopSum[k] = carve(n)
		c.split[k] = islab[:n:n]
		islab = islab[n:]
	}
	c.loopIters = carve(nLoops)
	c.bC = carve(nb)
	c.bR = carve(nb)
	c.bCR = carve(nb)
	c.bC2 = carve(nb)
	coopSlab := make([]float64, nw*nb)
	for k := range memoWidths {
		c.bCoop[k] = coopSlab[:nb:nb]
		coopSlab = coopSlab[nb:]
	}

	j := int32(0)
	for i := range tp.Launches {
		ks := &tp.Launches[i].KernelStats
		c.items[i] = float64(ks.Items)
		c.work[i] = float64(ks.TotalWork)
		c.zero[i] = ks.Items == 0
		c.maxGT1[i] = ks.MaxWork > 1
		c.inLoop[i] = ks.LoopID >= 0
		p := float64(ks.AtomicPushes)
		c.pushes[i] = p
		// Push density exactly as the reference derives it: 1 unless
		// the launch's work strictly exceeds its pushes.
		d := 1.0
		if c.work[i] > p {
			d = p / c.work[i]
		}
		c.dens[i] = d
		c.rmws[i] = float64(ks.AtomicRMWs)
		c.random[i] = float64(ks.RandomAccesses)

		for b := 0; b < irgl.WorkHistBuckets; b++ {
			if ks.WorkHist[b] == 0 {
				continue
			}
			cnt := float64(ks.WorkHist[b])
			r := float64(ks.WorkHistSum[b]) / cnt
			c.bC[j] = cnt
			c.bR[j] = r
			c.bCR[j] = cnt * r
			c.bC2[j] = cnt * cost.BarriersPerItem
			for k, w := range memoWidths {
				c.bCoop[k][j] = cnt * cost.CoopLaneWork(r, w)
			}
			j++
		}
		c.bStart[i+1] = j
		for k, w := range memoWidths {
			s := 0.0
			wf := float64(w)
			split := c.bStart[i+1]
			for j, je := c.bStart[i], c.bStart[i+1]; j < je; j++ {
				s += c.bCoop[k][j]
				if split == c.bStart[i+1] && c.bR[j] >= wf {
					split = j
				}
			}
			c.coopSum[k][i] = s
			c.split[k][i] = split
		}
		c.imbalanceMemos(i, ks)
	}

	c.nLoops = nLoops
	for l := range tp.Loops {
		c.loopIters[l] = float64(tp.Loops[l].Iterations)
	}
	return c
}

// imbalanceMemos fills launch i's imbalance memo at every memo width in
// one histogram pass. KernelStats.ImbalanceFactor walks the histogram
// once per width, calling math.Pow per bucket; since the memo widths
// beyond 1 are the powers of two 2^4..2^8, one pow2Chain per bucket
// yields all five powers at once, bit-identical to the five Pow calls.
// The accumulation per width then replays ImbalanceFactor's own
// sequence, so the memo equals the reference factor exactly.
func (c *Columns) imbalanceMemos(i int, ks *irgl.KernelStats) {
	work := ks.TotalWork
	items := ks.Items - ks.ZeroWorkItems
	if items <= 0 || work <= 0 {
		for k := range memoWidths {
			c.imb[k][i] = 1
		}
		return
	}
	mean := float64(work) / float64(items)
	var cum float64
	total := float64(items)
	var prevPow, emax [5]float64
	for b := 0; b < irgl.WorkHistBuckets; b++ {
		cnt := ks.WorkHist[b]
		if cnt == 0 {
			continue
		}
		cum += float64(cnt)
		pows := pow2Chain(cum / total)
		rep := float64(ks.WorkHistSum[b]) / float64(cnt)
		for k := 0; k < 5; k++ {
			emax[k] += rep * (pows[k] - prevPow[k])
		}
		prevPow = pows
	}
	c.imb[0][i] = 1 // width 1: ImbalanceFactor short-circuits to 1
	for k := 0; k < 5; k++ {
		f := 1.0
		if emax[k] >= mean {
			f = emax[k] / mean
		}
		c.imb[k+1][i] = f
	}
}

// pow2Chain returns x**16, x**32, x**64, x**128 and x**256 for
// x in (0, 1], each bit-identical to math.Pow(x, k). For a one-bit
// integer exponent 2^j, math.Pow reduces to Frexp, j squarings of the
// renormalised mantissa and a final Ldexp, with an underflow break once
// the running binary exponent falls below -2^12 - and the mantissa
// states of that chain are shared by all five exponents, so one chain
// reads them all off. The exponent sequence is non-increasing for
// x <= 1, which is why a single "has it escaped yet" check per capture
// point covers Pow's per-iteration check.
func pow2Chain(x float64) (p [5]float64) {
	if x >= 1 {
		// The last nonzero bucket always lands here: cum reaches total
		// exactly (both are exact small-integer sums), and Pow(1, k)
		// is exactly 1.
		return [5]float64{1, 1, 1, 1, 1}
	}
	x1, xe := math.Frexp(x)
	for j := 1; j <= 8; j++ {
		x1 *= x1
		xe <<= 1
		if x1 < .5 {
			x1 += x1
			xe--
		}
		if j >= 4 {
			switch {
			case xe >= -1021:
				// x1 is in [0.5, 1), so its biased exponent is 1022 and
				// the scaled result stays normal: adding xe to the
				// exponent field IS Ldexp(x1, xe), without the call.
				p[j-4] = math.Float64frombits(math.Float64bits(x1) + uint64(int64(xe))<<52)
			case xe < -1<<12:
				p[j-4] = 0 // math.Pow's underflow break: Ldexp(1, xe) == 0
			default:
				p[j-4] = math.Ldexp(x1, xe)
			}
		}
	}
	return p
}

// Launches returns the number of launches in the trace.
func (c *Columns) Launches() int { return c.n }

// imbalance returns the launch's imbalance factor at the given width,
// from the build-time memo when the width is standard.
func (c *Columns) imbalance(i, width int) float64 {
	if k := widthSlot(width); k >= 0 {
		return c.imb[k][i]
	}
	return c.src.Launches[i].KernelStats.ImbalanceFactor(width)
}

// coopTerm returns count * CoopLaneWork(mean, width) for flat bucket j.
// slot is widthSlot(width), carried by the caller so the lookup is
// hoisted out of the bucket loop.
func (c *Columns) coopTerm(j int32, slot, width int) float64 {
	if slot >= 0 {
		return c.bCoop[slot][j]
	}
	return c.bC[j] * cost.CoopLaneWork(c.bR[j], width)
}
