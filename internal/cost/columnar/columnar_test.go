package columnar

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"gpuport/internal/chip"
	"gpuport/internal/cost"
	"gpuport/internal/graph"
	"gpuport/internal/irgl"
	"gpuport/internal/opt"
	"gpuport/internal/stats"
)

// buildLaunch runs the real irgl accounting over explicit per-item work
// values, exactly as internal/conform's generators do (re-implemented
// here because conform imports this package).
func buildLaunch(name string, loopID int, works []int64, pushes, rmws, random int64) irgl.KernelStats {
	g := graph.NewBuilder("synth", graph.ClassRandom, 0).Build()
	rt := irgl.NewRuntime("columnar-synth", g)
	k := rt.Launch(name)
	idx := 0
	k.ForAll(make([]int32, len(works)), func(it *irgl.Item, _ int32) {
		it.Work(works[idx])
		idx++
	})
	k.End()
	st := rt.Trace().Launches[0]
	st.LoopID = loopID
	st.AtomicPushes = pushes
	st.AtomicRMWs = rmws
	st.RandomAccesses = random
	return st
}

// degenerateTraces are the boundary shapes the issue pins: no launches
// at all, a single plain launch, a fixpoint-only trace (every launch in
// a loop, including empty-frontier iterations), and a maximally
// imbalanced launch (one giant hub among unit items).
func degenerateTraces() map[string]*irgl.Trace {
	out := map[string]*irgl.Trace{}

	out["zero-launch"] = &irgl.Trace{
		App: "degen-zero", Input: "synth",
		Loops: []irgl.LoopStats{{ID: 0, Name: "empty", Iterations: 7}},
	}

	single := &irgl.Trace{App: "degen-single", Input: "synth"}
	single.Launches = append(single.Launches,
		buildLaunch("k0", -1, []int64{3, 5, 0, 9}, 4, 2, 11))
	out["single-launch"] = single

	fix := &irgl.Trace{App: "degen-fixpoint", Input: "synth"}
	fix.Loops = append(fix.Loops, irgl.LoopStats{ID: 0, Name: "fixpoint", Iterations: 5, Launches: 5})
	for i := 0; i < 5; i++ {
		var works []int64
		if i != 3 { // iteration 3 has an empty frontier
			works = []int64{int64(i + 1), 2, 2}
		}
		fix.Launches = append(fix.Launches,
			buildLaunch(fmt.Sprintf("k%d", i), 0, works, int64(i), 0, int64(2*i)))
	}
	out["fixpoint-only"] = fix

	imb := &irgl.Trace{App: "degen-imbalance", Input: "synth"}
	works := make([]int64, 257)
	for i := range works {
		works[i] = 1
	}
	works[0] = 1 << 20 // one hub owns essentially all the work
	imb.Launches = append(imb.Launches, buildLaunch("hub", -1, works, 0, 3, 1<<20))
	out["max-imbalance"] = imb

	return out
}

// checkEquivalence asserts bit-identical Estimate results between the
// reference and columnar engines for every config, reusing one
// evaluator per chip the way a sweep does.
func checkEquivalence(t *testing.T, ch chip.Chip, tp *cost.TraceProfile, cols *Columns) {
	t.Helper()
	ev := NewEvaluator(ch, cols)
	for _, cfg := range opt.All() {
		ref := cost.Estimate(ch, cfg, tp)
		got := ev.Estimate(cfg)
		if got != ref {
			t.Fatalf("%s/%s on %s under %v: columnar %x != reference %x",
				tp.App, tp.Input, ch.Name, cfg, got, ref)
		}
	}
}

func TestDegenerateEquivalence(t *testing.T) {
	for name, tr := range degenerateTraces() {
		t.Run(name, func(t *testing.T) {
			tp := cost.NewTraceProfile(tr)
			cols := Build(tp)
			if cols.Launches() != len(tr.Launches) {
				t.Fatalf("Launches() = %d, want %d", cols.Launches(), len(tr.Launches))
			}
			for _, ch := range chip.All() {
				checkEquivalence(t, ch, tp, cols)
			}
		})
	}
}

// TestPrecomputePinsProfileMemos pins the build-time imbalance memos
// against the values the reference LaunchProfile derives, at every
// memoised width and a fallback width, for the degenerate traces.
func TestPrecomputePinsProfileMemos(t *testing.T) {
	for name, tr := range degenerateTraces() {
		tp := cost.NewTraceProfile(tr)
		cols := Build(tp)
		for i := range tp.Launches {
			lp := &tp.Launches[i]
			for k, w := range memoWidths {
				want := lp.ImbalanceFactor(w)
				if got := cols.imb[k][i]; got != want {
					t.Errorf("%s launch %d width %d: memo %x != profile %x", name, i, w, got, want)
				}
				if got := cols.imbalance(i, w); got != want {
					t.Errorf("%s launch %d width %d: imbalance() %x != profile %x", name, i, w, got, want)
				}
			}
			// Non-memoised width: falls back to a direct computation.
			if got, want := cols.imbalance(i, 7), lp.ImbalanceFactor(7); got != want {
				t.Errorf("%s launch %d fallback width 7: %x != %x", name, i, got, want)
			}
		}
	}
}

// localRandTrace draws a generic mixed trace (loops, in-loop launches,
// empty frontiers, atomics, divergence), mirroring conform's generator.
func localRandTrace(r *stats.RNG) *irgl.Trace {
	tr := &irgl.Trace{App: "columnar-rand", Input: "synth"}
	nLoops := r.Intn(3)
	for id := 0; id < nLoops; id++ {
		tr.Loops = append(tr.Loops, irgl.LoopStats{
			ID: id, Name: fmt.Sprintf("loop%d", id), Iterations: int64(1 + r.Intn(20)),
		})
	}
	nLaunches := 1 + r.Intn(6)
	for i := 0; i < nLaunches; i++ {
		loopID := -1
		if nLoops > 0 && r.Intn(2) == 0 {
			loopID = r.Intn(nLoops)
		}
		items := r.Intn(300)
		if r.Intn(12) == 0 {
			items = 0
		}
		works := make([]int64, items)
		var total int64
		for j := range works {
			switch r.Intn(10) {
			case 0:
				works[j] = int64(64 + r.Intn(448))
			case 1, 2:
				works[j] = int64(8 + r.Intn(56))
			default:
				works[j] = int64(r.Intn(4))
			}
			total += works[j]
		}
		var pushes, rmws, random int64
		if total > 0 {
			pushes = int64(r.Intn(int(total) + 1))
			rmws = int64(r.Intn(int(total) + 1))
			random = total + int64(r.Intn(int(total)+1))
		}
		tr.Launches = append(tr.Launches, buildLaunch(fmt.Sprintf("k%d", i), loopID, works, pushes, rmws, random))
		if loopID >= 0 {
			tr.Loops[loopID].Launches++
		}
	}
	return tr
}

func TestRandomTraceEquivalence(t *testing.T) {
	r := stats.NewRNG(0xC01C01)
	for round := 0; round < 25; round++ {
		tr := localRandTrace(r)
		tp := cost.NewTraceProfile(tr)
		cols := Build(tp)
		for _, ch := range chip.All() {
			checkEquivalence(t, ch, tp, cols)
		}
	}
}

// TestNonStandardChipGeometry drives the fallback paths: subgroup and
// workgroup widths outside the memoised set, a zero subgroup width, and
// a tiny MaxWorkgroup that clamps both size classes to the same width.
func TestNonStandardChipGeometry(t *testing.T) {
	odd := chip.All()[0]
	odd.Name = "odd"
	odd.SubgroupSize = 7
	odd.MaxWorkgroup = 100
	zero := chip.All()[4]
	zero.Name = "zero-sg"
	zero.SubgroupSize = 0
	zero.MaxWorkgroup = 200

	r := stats.NewRNG(0xBADF00D)
	for round := 0; round < 8; round++ {
		tr := localRandTrace(r)
		tp := cost.NewTraceProfile(tr)
		cols := Build(tp)
		checkEquivalence(t, odd, tp, cols)
		checkEquivalence(t, zero, tp, cols)
	}
}

// TestConcurrentEvaluators shares one immutable column set across a
// goroutine per chip, each with its own evaluator, and verifies every
// result against the reference. Run under -race this proves the
// Columns/Evaluator split is data-race free the way measure uses it.
func TestConcurrentEvaluators(t *testing.T) {
	r := stats.NewRNG(0xFACADE)
	tr := localRandTrace(r)
	for len(tr.Launches) < 4 { // ensure a non-trivial trace
		tr = localRandTrace(r)
	}
	tp := cost.NewTraceProfile(tr)
	cols := Build(tp)

	var wg sync.WaitGroup
	errs := make(chan error, len(chip.All()))
	for _, ch := range chip.All() {
		wg.Add(1)
		go func(ch chip.Chip) {
			defer wg.Done()
			ev := NewEvaluator(ch, cols)
			refTP := cost.NewTraceProfile(tr) // private profile per goroutine
			for _, cfg := range opt.All() {
				if got, want := ev.Estimate(cfg), cost.Estimate(ch, cfg, refTP); got != want {
					errs <- fmt.Errorf("%s under %v: %x != %x", ch.Name, cfg, got, want)
					return
				}
			}
		}(ch)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestOneShotHelpers(t *testing.T) {
	tr := degenerateTraces()["single-launch"]
	tp := cost.NewTraceProfile(tr)
	ch := chip.All()[1]
	cfg := opt.Config{CoopCV: true, WG: true, SZ256: true}
	want := cost.Estimate(ch, cfg, tp)
	if got := Estimate(ch, cfg, Build(tp)); got != want {
		t.Errorf("Estimate one-shot: %x != %x", got, want)
	}
	if got := EstimateTrace(ch, cfg, tr); got != want {
		t.Errorf("EstimateTrace: %x != %x", got, want)
	}
}

// TestPow2Chain pins the shared squaring chain bit for bit against
// math.Pow at every memo exponent, across the full (0, 1] domain the
// imbalance memo feeds it: exact powers of two, values whose chain
// exponent crosses math.Pow's underflow break, subnormal-adjacent
// inputs, and a dense pseudo-random sample.
func TestPow2Chain(t *testing.T) {
	exps := [5]float64{16, 32, 64, 128, 256}
	check := func(x float64) {
		t.Helper()
		p := pow2Chain(x)
		for k, y := range exps {
			if want := math.Pow(x, y); p[k] != want {
				t.Fatalf("pow2Chain(%x)[%d] = %x, want math.Pow(x, %v) = %x", x, k, p[k], y, want)
			}
		}
	}
	for _, x := range []float64{
		1, 0.5, 0.25, 0.999999999, 1e-3, 1e-6, 1e-10, 1e-16, 1e-18,
		1e-30, 1e-100, 1e-300, 5e-324, math.Nextafter(1, 0),
		math.Ldexp(1, -16), math.Ldexp(1, -17), // xe escape boundary at k=256
	} {
		check(x)
	}
	r := stats.NewRNG(0xB0C)
	for i := 0; i < 5000; i++ {
		x := r.Float64()
		if x == 0 {
			continue
		}
		check(x)
		check(x * 1e-5)
	}
}

func TestWidthSlot(t *testing.T) {
	for k, w := range memoWidths {
		if got := widthSlot(w); got != k {
			t.Errorf("widthSlot(%d) = %d, want %d", w, got, k)
		}
	}
	for _, w := range []int{0, 2, 7, 512} {
		if got := widthSlot(w); got != -1 {
			t.Errorf("widthSlot(%d) = %d, want -1", w, got)
		}
	}
}

func TestColumnsIdentity(t *testing.T) {
	tr := degenerateTraces()["fixpoint-only"]
	cols := Build(cost.NewTraceProfile(tr))
	if cols.App != tr.App || cols.Input != tr.Input {
		t.Errorf("identity (%q, %q), want (%q, %q)", cols.App, cols.Input, tr.App, tr.Input)
	}
}
