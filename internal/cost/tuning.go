package cost

// The exported tuning surface. The columnar engine
// (internal/cost/columnar) replays launchCost's arithmetic with a
// different evaluation schedule and must use the very same constants
// and helper the reference uses: aliasing them here (rather than
// duplicating the values) makes divergence impossible by construction.
const (
	// FG1Residual / FG8Residual: residual excess imbalance after fg
	// linearises the iteration space.
	FG1Residual = fg1Residual
	FG8Residual = fg8Residual

	// FG1DivRelief / FG8DivRelief: divergence relief from the
	// coalesced access pattern fg induces.
	FG1DivRelief = fg1DivRelief
	FG8DivRelief = fg8DivRelief

	// InspectWorkPerItem: inspector cost per work-item per enabled
	// nested-parallelism scheme, in work units.
	InspectWorkPerItem = inspectWorkPerItem

	// BarriersPerItem: group synchronisations per redistributed item.
	BarriersPerItem = barriersPerItem

	// DriftFloor: minimum barrier-relief drift scale.
	DriftFloor = driftFloor

	// MinUtilisation: minimum launch utilisation.
	MinUtilisation = minUtilisation
)

// CoopLaneWork exposes the cooperative lane-occupancy cost helper to
// the columnar engine. Both engines must compute redistribution waste
// through this one function so their results stay bit-identical.
func CoopLaneWork(r float64, width int) float64 {
	return coopLaneWork(r, width)
}
