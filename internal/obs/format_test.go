package obs

import (
	"errors"
	"testing"
)

type deadWriter struct{}

var errDead = errors.New("dead writer")

func (deadWriter) Write(p []byte) (int, error) { return 0, errDead }

// TestFormatPropagatesWriteError: Format reports the writer's failure
// instead of silently dropping the rest of the summary.
func TestFormatPropagatesWriteError(t *testing.T) {
	s := &Summary{
		Stages:   []Stage{{Name: "load", Calls: 1}},
		Counters: []Counter{{Name: "cache.hits", Value: 3}},
	}
	if err := s.Format(deadWriter{}); !errors.Is(err, errDead) {
		t.Errorf("stage write: got %v, want errDead", err)
	}
	if err := (&Summary{Counters: []Counter{{Name: "c", Value: 1}}}).Format(deadWriter{}); !errors.Is(err, errDead) {
		t.Errorf("counter write: got %v, want errDead", err)
	}
	var nilSummary *Summary
	if err := nilSummary.Format(deadWriter{}); err != nil {
		t.Errorf("nil summary: got %v, want nil (nothing to write)", err)
	}
}
