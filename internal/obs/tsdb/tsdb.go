// Package tsdb is a small in-process time-series store for the
// campaign server's live telemetry: per-endpoint request-latency
// histograms, queue-depth and utilization gauges, and cache counters,
// sampled into fixed-capacity ring buffers on an externally driven
// clock tick.
//
// The store never reads a clock itself - tick timestamps are injected
// by the caller (the daemon's tick loop in production, a virtual clock
// in tests) - and reuses the power-of-4 integer histograms of
// internal/obs, so snapshots are merge-order independent and the
// exposition is byte-stable for a given sequence of writes and ticks.
// Exposed metric families all carry the obs.RealtimePrefix, which
// obs.CanonicalMetrics strips: time-series values legitimately vary
// run to run, so they never participate in byte-identity proofs.
package tsdb

import (
	"sync"

	"gpuport/internal/obs"
)

// Kind discriminates the three series shapes.
type Kind uint8

const (
	// KindGauge samples a point-in-time level (queue depth).
	KindGauge Kind = iota
	// KindCounter samples a monotonic cumulative total; each tick also
	// records the delta since the previous tick (cache hits).
	KindCounter
	// KindHist accumulates integer observations into a power-of-4
	// histogram; each tick snapshots and resets the current window
	// (request latency in nanoseconds).
	KindHist
)

// String returns the exposition name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHist:
		return "hist"
	default:
		return "gauge"
	}
}

// Point is one sampled value of a gauge or counter series.
type Point struct {
	// TSNS is the tick timestamp, in whatever nanosecond clock the
	// caller drives Tick with.
	TSNS int64
	// Value is the gauge level, or the counter's cumulative total.
	Value int64
	// Delta is the counter increment since the previous tick (0 for
	// gauges).
	Delta int64
}

// HistPoint is one sampled histogram window.
type HistPoint struct {
	TSNS int64
	H    obs.Hist
}

// series is one named stream plus its sample ring. Rings are
// fixed-capacity circular buffers: write position advances modulo cap,
// so a long-running daemon holds the most recent cap ticks.
type series struct {
	name  string
	kind  Kind
	cur   int64    // gauge level or counter cumulative total
	last  int64    // counter total at the previous tick
	win   obs.Hist // hist observations since the previous tick
	total obs.Hist // hist observations since process start

	ring  []Point
	hring []HistPoint
	n     int // samples written (ring wraps at cap)
}

// Store is the time-series store. Safe for concurrent use; writers
// never block on readers beyond the mutex.
type Store struct {
	mu     sync.Mutex
	cap    int            // immutable after New
	series []*series      // guarded by mu
	idx    map[string]int // guarded by mu
	ticks  int            // guarded by mu
	lastTS int64          // guarded by mu
}

// DefaultCapacity is the ring size used when New is given a
// non-positive capacity: one hour of samples at a 10s tick.
const DefaultCapacity = 360

// New returns an empty store whose rings hold capacity samples.
func New(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{cap: capacity, idx: map[string]int{}}
}

// get returns the named series, creating it with the kind on first
// use. Callers hold s.mu. A name reused with a different kind keeps
// its original kind: series identity is the name, and the first writer
// fixes the shape (mixing shapes under one name is a programming
// error the tests catch via Kind()).
func (s *Store) get(name string, kind Kind) *series {
	if i, ok := s.idx[name]; ok {
		return s.series[i]
	}
	se := &series{name: name, kind: kind}
	switch kind {
	case KindHist:
		se.hring = make([]HistPoint, 0, s.cap)
	default:
		se.ring = make([]Point, 0, s.cap)
	}
	s.idx[name] = len(s.series)
	s.series = append(s.series, se)
	return se
}

// Set sets the named gauge's current level.
func (s *Store) Set(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.get(name, KindGauge).cur = v
	s.mu.Unlock()
}

// Inc adds delta to the named counter's cumulative total.
func (s *Store) Inc(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.get(name, KindCounter).cur += delta
	s.mu.Unlock()
}

// Mark sets the named counter's cumulative total absolutely (for
// mirroring an externally accumulated total, e.g. an obs counter).
// Totals are clamped monotonic: a smaller value than the current total
// is ignored, so repeated marks from restarting sources cannot make a
// counter run backwards.
func (s *Store) Mark(name string, total int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	se := s.get(name, KindCounter)
	if total > se.cur {
		se.cur = total
	}
	s.mu.Unlock()
}

// Observe adds one observation to the named histogram series' current
// window.
func (s *Store) Observe(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	se := s.get(name, KindHist)
	se.win.Observe(v)
	se.total.Observe(v)
	s.mu.Unlock()
}

// Tick samples every series at the given timestamp: gauges record
// their level, counters their total and per-tick delta, histograms
// snapshot and reset their window. Timestamps are caller-supplied and
// should be monotonic; the store does not inspect them.
func (s *Store) Tick(tsNS int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ticks++
	s.lastTS = tsNS
	for _, se := range s.series {
		switch se.kind {
		case KindHist:
			hp := HistPoint{TSNS: tsNS, H: se.win}
			hp.H.Name = se.name
			if len(se.hring) < s.cap {
				se.hring = append(se.hring, hp)
			} else {
				se.hring[se.n%s.cap] = hp
			}
			se.win = obs.Hist{}
			se.n++
		default:
			p := Point{TSNS: tsNS, Value: se.cur}
			if se.kind == KindCounter {
				p.Delta = se.cur - se.last
				se.last = se.cur
			}
			if len(se.ring) < s.cap {
				se.ring = append(se.ring, p)
			} else {
				se.ring[se.n%s.cap] = p
			}
			se.n++
		}
	}
}

// Ticks reports how many ticks the store has sampled.
func (s *Store) Ticks() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// Cap returns the ring capacity.
func (s *Store) Cap() int {
	if s == nil {
		return 0
	}
	return s.cap
}

// Kind reports the named series' kind; ok is false for an unknown
// series.
func (s *Store) Kind(name string) (Kind, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[name]
	if !ok {
		return 0, false
	}
	return s.series[i].kind, true
}

// Value returns the named gauge's or counter's current level/total (0
// for unknown or histogram series).
func (s *Store) Value(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.idx[name]; ok && s.series[i].kind != KindHist {
		return s.series[i].cur
	}
	return 0
}

// Window returns up to n most recent samples of the named gauge or
// counter series, oldest first. Nil for histogram or unknown series.
func (s *Store) Window(name string, n int) []Point {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[name]
	if !ok || s.series[i].kind == KindHist {
		return nil
	}
	se := s.series[i]
	have := len(se.ring)
	if n > have {
		n = have
	}
	out := make([]Point, 0, n)
	for k := se.n - n; k < se.n; k++ {
		out = append(out, se.ring[k%len(se.ring)])
	}
	return out
}

// HistWindow returns up to n most recent sampled windows of the named
// histogram series, oldest first. Nil for non-histogram series.
func (s *Store) HistWindow(name string, n int) []HistPoint {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[name]
	if !ok || s.series[i].kind != KindHist {
		return nil
	}
	se := s.series[i]
	have := len(se.hring)
	if n > have {
		n = have
	}
	out := make([]HistPoint, 0, n)
	for k := se.n - n; k < se.n; k++ {
		out = append(out, se.hring[k%len(se.hring)])
	}
	return out
}

// Total returns the cumulative histogram of the named series
// (including the not-yet-ticked current window). ok is false for
// non-histogram or unknown series.
func (s *Store) Total(name string) (obs.Hist, bool) {
	if s == nil {
		return obs.Hist{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[name]
	if !ok || s.series[i].kind != KindHist {
		return obs.Hist{}, false
	}
	h := s.series[i].total
	h.Name = name
	return h, true
}

// Quantile estimates the q-quantile (0 < q <= 1) of the named
// histogram series' cumulative distribution, as the upper bound of the
// bucket holding the q-th observation (the overflow bucket reports the
// largest finite bound). ok is false when the series is unknown, not a
// histogram, or empty.
func (s *Store) Quantile(name string, q float64) (int64, bool) {
	h, ok := s.Total(name)
	if !ok || h.Count == 0 || q <= 0 || q > 1 {
		return 0, false
	}
	// The rank is ceil(q * count), at least 1.
	rank := int64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) || rank == 0 {
		rank++
	}
	var cum int64
	for i, b := range obs.HistBounds {
		cum += h.Buckets[i]
		if cum >= rank {
			return b, true
		}
	}
	return obs.HistBounds[len(obs.HistBounds)-1], true
}
