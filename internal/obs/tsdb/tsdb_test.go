package tsdb

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"gpuport/internal/obs"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindGauge: "gauge", KindCounter: "counter", KindHist: "hist"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	s.Set("g", 1)
	s.Inc("c", 1)
	s.Mark("c", 5)
	s.Observe("h", 1)
	s.Tick(1)
	if s.Ticks() != 0 || s.Cap() != 0 || s.Value("g") != 0 {
		t.Fatal("nil store should report zeros")
	}
	if _, ok := s.Kind("g"); ok {
		t.Fatal("nil store should know no series")
	}
	if s.Window("g", 5) != nil || s.HistWindow("h", 5) != nil {
		t.Fatal("nil store should return nil windows")
	}
	if _, ok := s.Total("h"); ok {
		t.Fatal("nil store should have no totals")
	}
	if _, ok := s.Quantile("h", 0.5); ok {
		t.Fatal("nil store should have no quantiles")
	}
	if err := s.WriteMetrics(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteMetrics: %v", err)
	}
}

func TestDefaultCapacity(t *testing.T) {
	if got := New(0).Cap(); got != DefaultCapacity {
		t.Fatalf("New(0).Cap() = %d, want %d", got, DefaultCapacity)
	}
	if got := New(-3).Cap(); got != DefaultCapacity {
		t.Fatalf("New(-3).Cap() = %d, want %d", got, DefaultCapacity)
	}
	if got := New(7).Cap(); got != 7 {
		t.Fatalf("New(7).Cap() = %d, want 7", got)
	}
}

func TestGaugeSampling(t *testing.T) {
	s := New(4)
	s.Set("queue", 3)
	s.Tick(100)
	s.Set("queue", 7)
	s.Set("queue", 5)
	s.Tick(200)

	if v := s.Value("queue"); v != 5 {
		t.Fatalf("Value = %d, want 5", v)
	}
	if k, ok := s.Kind("queue"); !ok || k != KindGauge {
		t.Fatalf("Kind = %v,%v, want gauge,true", k, ok)
	}
	got := s.Window("queue", 10)
	want := []Point{{TSNS: 100, Value: 3}, {TSNS: 200, Value: 5}}
	if len(got) != len(want) {
		t.Fatalf("Window len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Window[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCounterDeltas(t *testing.T) {
	s := New(4)
	s.Inc("hits", 2)
	s.Tick(1)
	s.Inc("hits", 3)
	s.Inc("hits", 1)
	s.Tick(2)
	s.Tick(3) // no traffic

	got := s.Window("hits", 3)
	want := []Point{
		{TSNS: 1, Value: 2, Delta: 2},
		{TSNS: 2, Value: 6, Delta: 4},
		{TSNS: 3, Value: 6, Delta: 0},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Window[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMarkIsMonotonic(t *testing.T) {
	s := New(4)
	s.Mark("total", 10)
	s.Mark("total", 4) // regression ignored
	if v := s.Value("total"); v != 10 {
		t.Fatalf("Value after backwards Mark = %d, want 10", v)
	}
	s.Mark("total", 12)
	if v := s.Value("total"); v != 12 {
		t.Fatalf("Value after forward Mark = %d, want 12", v)
	}
}

func TestRingWrap(t *testing.T) {
	s := New(3)
	s.Set("g", 0)
	for ts := int64(1); ts <= 5; ts++ {
		s.Set("g", ts*10)
		s.Tick(ts)
	}
	got := s.Window("g", 10)
	want := []Point{{TSNS: 3, Value: 30}, {TSNS: 4, Value: 40}, {TSNS: 5, Value: 50}}
	if len(got) != 3 {
		t.Fatalf("Window len = %d, want 3 (capacity)", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Window[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// A smaller ask returns only the most recent samples.
	tail := s.Window("g", 2)
	if len(tail) != 2 || tail[0] != want[1] || tail[1] != want[2] {
		t.Fatalf("Window(2) = %+v, want %+v", tail, want[1:])
	}
	if s.Ticks() != 5 {
		t.Fatalf("Ticks = %d, want 5", s.Ticks())
	}
}

func TestHistWindowsResetPerTick(t *testing.T) {
	s := New(4)
	s.Observe("lat", 10)
	s.Observe("lat", 100)
	s.Tick(1)
	s.Observe("lat", 1000)
	s.Tick(2)
	s.Tick(3) // empty window

	wins := s.HistWindow("lat", 10)
	if len(wins) != 3 {
		t.Fatalf("HistWindow len = %d, want 3", len(wins))
	}
	if wins[0].H.Count != 2 || wins[0].H.Sum != 110 {
		t.Errorf("window 0 = count %d sum %d, want 2/110", wins[0].H.Count, wins[0].H.Sum)
	}
	if wins[1].H.Count != 1 || wins[1].H.Sum != 1000 {
		t.Errorf("window 1 = count %d sum %d, want 1/1000", wins[1].H.Count, wins[1].H.Sum)
	}
	if wins[2].H.Count != 0 {
		t.Errorf("window 2 count = %d, want 0", wins[2].H.Count)
	}
	if wins[0].H.Name != "lat" {
		t.Errorf("window Name = %q, want lat", wins[0].H.Name)
	}

	total, ok := s.Total("lat")
	if !ok || total.Count != 3 || total.Sum != 1110 {
		t.Fatalf("Total = %+v,%v, want count 3 sum 1110", total, ok)
	}
}

func TestTotalIncludesUntickedWindow(t *testing.T) {
	s := New(4)
	s.Observe("lat", 5)
	total, ok := s.Total("lat")
	if !ok || total.Count != 1 || total.Sum != 5 {
		t.Fatalf("Total before any tick = %+v,%v, want count 1 sum 5", total, ok)
	}
}

func TestQuantile(t *testing.T) {
	s := New(4)
	// 90 fast observations (<=16), 10 slow (<=1024).
	for i := 0; i < 90; i++ {
		s.Observe("lat", 10)
	}
	for i := 0; i < 10; i++ {
		s.Observe("lat", 1000)
	}
	if q, ok := s.Quantile("lat", 0.5); !ok || q != 16 {
		t.Errorf("p50 = %d,%v, want 16", q, ok)
	}
	if q, ok := s.Quantile("lat", 0.90); !ok || q != 16 {
		t.Errorf("p90 = %d,%v, want 16 (rank 90 is still fast)", q, ok)
	}
	if q, ok := s.Quantile("lat", 0.99); !ok || q != 1024 {
		t.Errorf("p99 = %d,%v, want 1024", q, ok)
	}
	if q, ok := s.Quantile("lat", 1); !ok || q != 1024 {
		t.Errorf("p100 = %d,%v, want 1024", q, ok)
	}
}

func TestQuantileEdges(t *testing.T) {
	s := New(4)
	if _, ok := s.Quantile("missing", 0.5); ok {
		t.Error("quantile of unknown series should be !ok")
	}
	s.Observe("lat", 1)
	if _, ok := s.Quantile("lat", 0); ok {
		t.Error("q=0 should be !ok")
	}
	if _, ok := s.Quantile("lat", 1.5); ok {
		t.Error("q>1 should be !ok")
	}
	if q, ok := s.Quantile("lat", 0.5); !ok || q != 1 {
		t.Errorf("single-sample p50 = %d,%v, want 1", q, ok)
	}
	// Overflow bucket reports the largest finite bound.
	o := New(4)
	o.Observe("big", 1<<40)
	want := obs.HistBounds[len(obs.HistBounds)-1]
	if q, ok := o.Quantile("big", 0.5); !ok || q != want {
		t.Errorf("overflow p50 = %d,%v, want %d", q, ok, want)
	}
	// Gauges have no quantiles.
	s.Set("g", 1)
	if _, ok := s.Quantile("g", 0.5); ok {
		t.Error("quantile of a gauge should be !ok")
	}
}

func TestKindMismatchKeepsOriginal(t *testing.T) {
	s := New(4)
	s.Set("x", 1)
	s.Inc("x", 5) // wrong kind; series stays a gauge, value still mutates
	if k, _ := s.Kind("x"); k != KindGauge {
		t.Fatalf("Kind = %v, want gauge (first writer fixes the shape)", k)
	}
	if s.Window("missing", 3) != nil {
		t.Error("Window of unknown series should be nil")
	}
	if s.HistWindow("x", 3) != nil {
		t.Error("HistWindow of a gauge should be nil")
	}
	s.Observe("h", 1)
	if s.Window("h", 3) != nil {
		t.Error("Window of a hist should be nil")
	}
	if v := s.Value("h"); v != 0 {
		t.Errorf("Value of a hist = %d, want 0", v)
	}
	if _, ok := s.Total("x"); ok {
		t.Error("Total of a gauge should be !ok")
	}
	if s.Window("x", 0) != nil {
		t.Error("Window(n<=0) should be nil")
	}
	if s.HistWindow("h", 0) != nil {
		t.Error("HistWindow(n<=0) should be nil")
	}
}

func TestWriteMetricsCanonical(t *testing.T) {
	s := New(4)
	// Insertion order deliberately unsorted: exposition must sort.
	s.Set("z-gauge", 9)
	s.Set("a-gauge", 1)
	s.Inc("m-counter", 4)
	s.Observe("lat", 100)
	s.Tick(1)

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Every line must carry the realtime prefix so CanonicalMetrics
	// strips the whole block.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, obs.RealtimePrefix) && !strings.HasPrefix(line, "# TYPE "+obs.RealtimePrefix) {
			t.Fatalf("line escapes realtime prefix: %q", line)
		}
	}
	if got := string(obs.CanonicalMetrics(buf.Bytes())); got != "" {
		t.Fatalf("CanonicalMetrics left realtime content behind:\n%s", got)
	}

	// Sorted series order within a family.
	if ia, iz := strings.Index(out, `name="a-gauge"`), strings.Index(out, `name="z-gauge"`); ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("gauges not sorted by name:\n%s", out)
	}
	for _, want := range []string{
		`gpuport_rt_gauge{name="a-gauge"} 1`,
		`gpuport_rt_gauge{name="z-gauge"} 9`,
		`gpuport_rt_counter_total{name="m-counter"} 4`,
		`gpuport_rt_counter_total{name="ticks"} 1`,
		`gpuport_rt_hist_sum{name="lat"} 100`,
		`gpuport_rt_hist_count{name="lat"} 1`,
		`gpuport_rt_hist_bucket{name="lat",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Byte-stable: the same state always writes the same bytes.
	var again bytes.Buffer
	if err := s.WriteMetrics(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("WriteMetrics is not byte-stable for unchanged state")
	}
}

func TestWriteMetricsEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New(4).WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	// An empty store still reports its tick counter (liveness signal).
	if !strings.Contains(buf.String(), `gpuport_rt_counter_total{name="ticks"} 0`) {
		t.Fatalf("empty exposition missing ticks counter:\n%s", buf.String())
	}
}

// TestConcurrentWritersUnderRace drives every mutating and reading
// method from parallel goroutines; run with -race it proves the store
// is data-race free while a ticker samples and readers stream.
func TestConcurrentWritersUnderRace(t *testing.T) {
	s := New(8)
	var wg sync.WaitGroup
	const writers = 8
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Set(obs.TSQueueDepth, int64(i))
				s.Inc("hits", 1)
				s.Mark("marked", int64(i))
				s.Observe(obs.TSLatencyPrefix+"submit", int64(i%2000))
			}
		}(w)
	}
	wg.Add(1)
	go func() { // ticker
		defer wg.Done()
		for ts := int64(1); ts <= 200; ts++ {
			s.Tick(ts)
		}
	}()
	wg.Add(1)
	go func() { // reader
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Window(obs.TSQueueDepth, 4)
			s.HistWindow(obs.TSLatencyPrefix+"submit", 4)
			s.Quantile(obs.TSLatencyPrefix+"submit", 0.99)
			s.Value("hits")
			s.WriteMetrics(&bytes.Buffer{})
		}
	}()
	wg.Wait()

	if got := s.Value("hits"); got != writers*500 {
		t.Fatalf("hits = %d, want %d", got, writers*500)
	}
	total, ok := s.Total(obs.TSLatencyPrefix + "submit")
	if !ok || total.Count != writers*500 {
		t.Fatalf("latency total count = %d,%v, want %d", total.Count, ok, writers*500)
	}
	if s.Ticks() != 200 {
		t.Fatalf("Ticks = %d, want 200", s.Ticks())
	}
}
