package tsdb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"gpuport/internal/obs"
)

// Prometheus text exposition of the store's current state. Every
// family carries obs.RealtimePrefix, so obs.CanonicalMetrics strips
// the whole block: time-series levels are wall-clock shaped and must
// never leak into byte-identity proofs. Within the block the layout is
// still canonical - series sorted by name, fixed bucket ladder - so a
// given sequence of writes and ticks always produces the same bytes.

// WriteMetrics writes the store's gauges, counters and cumulative
// histograms as Prometheus text exposition under the realtime prefix,
// plus a gpuport_rt_ticks_total sample-count counter.
func (s *Store) WriteMetrics(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	type snap struct {
		name  string
		kind  Kind
		cur   int64
		total obs.Hist
	}
	snaps := make([]snap, 0, len(s.series))
	for _, se := range s.series {
		// se.total already includes the not-yet-ticked window (Observe
		// feeds both), so the exposition needs no merge.
		snaps = append(snaps, snap{name: se.name, kind: se.kind, cur: se.cur, total: se.total})
	}
	ticks := s.ticks
	s.mu.Unlock()

	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })

	bw := bufio.NewWriter(w)
	var gauges, counters, hists []snap
	for _, sn := range snaps {
		switch sn.kind {
		case KindGauge:
			gauges = append(gauges, sn)
		case KindCounter:
			counters = append(counters, sn)
		case KindHist:
			hists = append(hists, sn)
		}
	}

	if len(gauges) > 0 {
		fmt.Fprintf(bw, "# TYPE %sgauge gauge\n", obs.RealtimePrefix)
		for _, sn := range gauges {
			fmt.Fprintf(bw, "%sgauge{name=%q} %d\n", obs.RealtimePrefix, sn.name, sn.cur)
		}
	}

	fmt.Fprintf(bw, "# TYPE %scounter_total counter\n", obs.RealtimePrefix)
	for _, sn := range counters {
		fmt.Fprintf(bw, "%scounter_total{name=%q} %d\n", obs.RealtimePrefix, sn.name, sn.cur)
	}
	fmt.Fprintf(bw, "%scounter_total{name=\"ticks\"} %d\n", obs.RealtimePrefix, ticks)

	if len(hists) > 0 {
		fmt.Fprintf(bw, "# TYPE %shist histogram\n", obs.RealtimePrefix)
		for _, sn := range hists {
			var cum int64
			for i, b := range obs.HistBounds {
				cum += sn.total.Buckets[i]
				fmt.Fprintf(bw, "%shist_bucket{name=%q,le=%q} %d\n", obs.RealtimePrefix, sn.name, strconv.FormatInt(b, 10), cum)
			}
			fmt.Fprintf(bw, "%shist_bucket{name=%q,le=\"+Inf\"} %d\n", obs.RealtimePrefix, sn.name, sn.total.Count)
			fmt.Fprintf(bw, "%shist_sum{name=%q} %d\n", obs.RealtimePrefix, sn.name, sn.total.Sum)
			fmt.Fprintf(bw, "%shist_count{name=%q} %d\n", obs.RealtimePrefix, sn.name, sn.total.Count)
		}
	}
	return bw.Flush()
}
