package obs

import (
	"testing"
	"time"
)

func TestSpanCaptureDisabledByDefault(t *testing.T) {
	r := NewWithClock(fakeClock(time.Millisecond))
	h := r.StartSpan(SpanTracePair, 0, String(AttrApp, "bfs-wl"))
	if h != nil {
		t.Fatal("StartSpan should return nil while tracing is disabled")
	}
	h.End()             // must not panic
	h.Event(EvRetry)    // must not panic
	h.StartSpan("x", 0) // must not panic
	r.Event(EvRetry, 0) // must not record
	r.SimSpan(0, 0, "k", 0, 1)
	r.NameLane(TrackSim, 0, "lane")
	s := r.Snapshot()
	if len(s.Spans) != 0 || len(s.Events) != 0 || len(s.Lanes) != 0 {
		t.Fatalf("disabled recorder captured %d spans, %d events, %d lanes",
			len(s.Spans), len(s.Events), len(s.Lanes))
	}
}

func TestSpanHierarchyAndDeterministicIDs(t *testing.T) {
	build := func() *Snapshot {
		r := NewWithClock(fakeClock(time.Millisecond)).EnableSim()
		root := r.StartSpan(StageTrace, 0)
		child := root.StartSpan(SpanTracePair, 3, String(AttrApp, "bfs-wl"), String(AttrInput, "road"))
		child.Event(EvRetry, Int(AttrAttempt, 1))
		child.End()
		root.End()
		r.SimSpan(7, 0, SpanSimTimeline, 0, 100, String(AttrApp, "bfs-wl"))
		return r.Snapshot()
	}
	a, b := build(), build()
	if len(a.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(a.Spans))
	}
	for i := range a.Spans {
		if a.Spans[i].ID != b.Spans[i].ID {
			t.Errorf("span %d id differs across identical runs: %x vs %x", i, a.Spans[i].ID, b.Spans[i].ID)
		}
		if a.Spans[i].ID == 0 {
			t.Errorf("span %d has zero id", i)
		}
	}
	// Child links to parent by ID.
	var root, child *Span
	for i := range a.Spans {
		switch a.Spans[i].Name {
		case StageTrace:
			root = &a.Spans[i]
		case SpanTracePair:
			child = &a.Spans[i]
		}
	}
	if root == nil || child == nil {
		t.Fatal("missing root or child span")
	}
	if child.Parent != root.ID {
		t.Errorf("child parent = %x, want root id %x", child.Parent, root.ID)
	}
	if len(a.Events) != 1 || a.Events[0].SpanID != child.ID {
		t.Errorf("event not attached to child span: %+v", a.Events)
	}
	// Fake clock: root spans two ticks of child plus its own.
	if root.DurNS <= child.DurNS {
		t.Errorf("root dur %d should exceed child dur %d", root.DurNS, child.DurNS)
	}
}

func TestSimSpanVirtualClock(t *testing.T) {
	r := New().EnableSim()
	rootID := r.SimSpan(2, 0, SpanSimTimeline, 0, 500, String(AttrApp, "a"), String(AttrInput, "i"))
	r.SimSpan(2, rootID, "kernel_relax", 10, 40, Int(AttrLaunch, 0), Int(AttrFrontier, 17))
	s := r.Snapshot()
	if len(s.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(s.Spans))
	}
	for _, sp := range s.Spans {
		if sp.Track != TrackSim {
			t.Errorf("span %q on track %v, want sim", sp.Name, sp.Track)
		}
	}
	var launch *Span
	for i := range s.Spans {
		if s.Spans[i].Name == "kernel_relax" {
			launch = &s.Spans[i]
		}
	}
	if launch == nil || launch.StartNS != 10 || launch.DurNS != 40 || launch.Parent != rootID {
		t.Fatalf("launch span = %+v, want start 10 dur 40 parent %x", launch, rootID)
	}
}

func TestHistFixedBounds(t *testing.T) {
	var h Hist
	h.Observe(0)
	h.Observe(1)
	h.Observe(2) // first bucket above 1 is 4
	h.Observe(4)
	h.Observe(5)       // -> le=16
	h.Observe(1 << 40) // overflow
	if h.Count != 6 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Buckets[0] != 2 { // <=1: the 0 and the 1
		t.Errorf("bucket le=1 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 2 { // <=4: the 2 and the 4
		t.Errorf("bucket le=4 = %d, want 2", h.Buckets[1])
	}
	if h.Buckets[2] != 1 { // <=16: the 5
		t.Errorf("bucket le=16 = %d, want 1", h.Buckets[2])
	}
	if h.Buckets[HistBuckets-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", h.Buckets[HistBuckets-1])
	}
	if h.Sum != 0+1+2+4+5+(1<<40) {
		t.Errorf("sum = %d", h.Sum)
	}
}

func TestMergeHistEqualsDirectObserve(t *testing.T) {
	direct := New()
	batched := New()
	var local Hist
	for v := int64(0); v < 100; v++ {
		direct.ObserveHist(HistFrontier, v*v)
		local.Observe(v * v)
	}
	batched.MergeHist(HistFrontier, &local)
	a, b := direct.Snapshot(), batched.Snapshot()
	if len(a.Hists) != 1 || len(b.Hists) != 1 {
		t.Fatalf("hists = %d/%d, want 1/1", len(a.Hists), len(b.Hists))
	}
	if a.Hists[0] != b.Hists[0] {
		t.Errorf("merge mismatch:\n%+v\n%+v", a.Hists[0], b.Hists[0])
	}
}

// TestMergeHistOrderIndependence: folding the same partial histograms
// in any order yields identical snapshots. This is what lets the
// server adopt per-job histograms in completion order (which varies
// with scheduling) while /metrics stays byte-canonical.
func TestMergeHistOrderIndependence(t *testing.T) {
	parts := make([]Hist, 3)
	for i := range parts {
		for v := int64(0); v < 50; v++ {
			parts[i].Observe(v * int64(i+1) * 7)
		}
	}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}}
	var snaps []Snapshot
	for _, order := range orders {
		r := New()
		for _, i := range order {
			r.MergeHist(HistFrontier, &parts[i])
		}
		snaps = append(snaps, *r.Snapshot())
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Hists[0] != snaps[0].Hists[0] {
			t.Errorf("merge order %v produced a different histogram:\n%+v\n%+v",
				orders[i], snaps[i].Hists[0], snaps[0].Hists[0])
		}
	}
}

func TestNilRecorderSpanSafety(t *testing.T) {
	var r *Recorder
	if r.TracingEnabled() || r.SimEnabled() {
		t.Error("nil recorder should report tracing disabled")
	}
	r.EnableTracing()
	r.EnableSim()
	r.StartSpan("x", 0).End()
	r.Event("x", 0)
	r.SimSpan(0, 0, "x", 0, 1)
	r.ObserveHist("x", 1)
	r.MergeHist("x", &Hist{})
	if r.Snapshot() != nil {
		t.Error("nil recorder should snapshot to nil")
	}
}

func TestLaneNamesFirstWins(t *testing.T) {
	r := New().EnableTracing()
	r.NameLane(TrackSim, 4, "first")
	r.NameLane(TrackSim, 4, "second")
	r.NameLane(TrackSim, 2, "other")
	s := r.Snapshot()
	if len(s.Lanes) != 2 {
		t.Fatalf("lanes = %+v", s.Lanes)
	}
	// Sorted by lane number; duplicate registration kept the first name.
	if s.Lanes[0].Name != "other" || s.Lanes[1].Name != "first" {
		t.Errorf("lanes = %+v", s.Lanes)
	}
}

func TestSnapshotCountersSorted(t *testing.T) {
	r := New()
	r.Add("zz", 1)
	r.Add("aa", 2)
	s := r.Snapshot()
	if s.Counters[0].Name != "aa" || s.Counters[1].Name != "zz" {
		t.Errorf("snapshot counters not sorted: %+v", s.Counters)
	}
	// Summary keeps first-use order, unchanged from the flat recorder.
	if s.Summary.Counters[0].Name != "zz" {
		t.Errorf("summary counters reordered: %+v", s.Summary.Counters)
	}
}
