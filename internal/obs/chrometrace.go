package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Chrome trace-event export. The emitted JSON loads in Perfetto
// (ui.perfetto.dev) and chrome://tracing; the real harness timeline and
// the simulated kernel timeline render as two separate processes.
//
// The writer is deterministic by construction: spans, events, counters
// and lane labels come pre-sorted from Snapshot, and every args map is
// marshalled with encoding/json (which sorts keys). The only run-to-run
// variation left in the file is wall-clock data on the real track -
// ts/dur values and the worker tids - which CanonicalTrace strips, so
// two runs of the same sweep canonicalise to identical bytes.

// trace pids: one Chrome "process" per track.
const (
	pidReal = 1
	pidSim  = 2
)

// chromeEvent is one entry of the traceEvents array. Field order (and
// json key sorting inside Args) fixes the byte layout.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func trackPid(t Track) int {
	if t == TrackSim {
		return pidSim
	}
	return pidReal
}

// us converts recorder nanoseconds to Chrome microseconds. Only the
// real track needs converting: the simulated track's clock is unit-less
// virtual time, carried through as integer trace units so its values
// stay exact (and byte-stable) in the JSON.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// hexID renders a span ID the way the trace args carry it.
func hexID(id uint64) string { return "0x" + strconv.FormatUint(id, 16) }

// WriteChromeTrace writes the snapshot in Chrome trace-event format:
// process/thread metadata, one counter event per counter, one complete
// ("X") event per span, and one instant ("i") event per event. One
// traceEvents entry per line, for greppability and stable diffs.
func WriteChromeTrace(w io.Writer, s *Snapshot) error {
	if s == nil {
		s = &Snapshot{}
	}
	events := make([]chromeEvent, 0, 8+len(s.Spans)+len(s.Events)+len(s.Counters))
	events = append(events,
		chromeEvent{Name: "process_name", Ph: "M", Pid: pidReal, Args: map[string]any{"name": "harness (real)"}},
		chromeEvent{Name: "process_name", Ph: "M", Pid: pidSim, Args: map[string]any{"name": "simulated kernel timeline"}},
	)
	for _, ln := range s.Lanes {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: trackPid(ln.Track), Tid: ln.Lane,
			Args: map[string]any{"name": ln.Name},
		})
	}
	for _, c := range s.Counters {
		events = append(events, chromeEvent{
			Name: c.Name, Ph: "C", Pid: pidReal,
			Args: map[string]any{"value": c.Value},
		})
	}
	for _, sp := range s.Spans {
		ts, d := us(sp.StartNS), us(sp.DurNS)
		if sp.Track == TrackSim {
			ts, d = float64(sp.StartNS), float64(sp.DurNS)
		}
		args := attrArgs(sp.Attrs)
		args["id"] = hexID(sp.ID)
		if sp.Parent != 0 {
			args["parent"] = hexID(sp.Parent)
		}
		if sp.TraceID != 0 {
			args["trace"] = hexID(sp.TraceID)
		}
		if len(sp.Links) > 0 {
			links := make([]string, len(sp.Links))
			for i, l := range sp.Links {
				links[i] = hexID(l)
			}
			sort.Strings(links)
			args["links"] = strings.Join(links, ",")
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Ph: "X", Pid: trackPid(sp.Track), Tid: sp.Lane,
			Ts: ts, Dur: &d, Args: args,
		})
	}
	for _, ev := range s.Events {
		ts := us(ev.TSNS)
		if ev.Track == TrackSim {
			ts = float64(ev.TSNS)
		}
		args := attrArgs(ev.Attrs)
		if ev.SpanID != 0 {
			args["span"] = hexID(ev.SpanID)
		}
		events = append(events, chromeEvent{
			Name: ev.Name, Ph: "i", Pid: trackPid(ev.Track), Tid: ev.Lane,
			Ts: ts, Scope: "t", Args: args,
		})
	}

	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	for i, ev := range events {
		blob, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			bw.WriteString(",\n")
		}
		bw.Write(blob)
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}

func attrArgs(attrs []Attr) map[string]any {
	args := make(map[string]any, len(attrs)+2)
	for _, a := range attrs {
		args[a.Key] = a.Value
	}
	return args
}

// CanonicalTrace rewrites an exported Chrome trace with every
// scheduling-dependent field neutralised: on the real track, ts and dur
// are zeroed and tids (worker ids) are cleared; the simulated track is
// left untouched, because its virtual clock is deterministic. Two runs
// of the same sweep - at any worker counts - must canonicalise to
// identical bytes; the determinism golden test enforces exactly that.
func CanonicalTrace(raw []byte) ([]byte, error) {
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("obs: canonical trace: %w", err)
	}
	out := make([]map[string]any, 0, len(doc.TraceEvents))
	for _, rawEv := range doc.TraceEvents {
		var ev map[string]any
		if err := json.Unmarshal(rawEv, &ev); err != nil {
			return nil, fmt.Errorf("obs: canonical trace: %w", err)
		}
		if pid, _ := ev["pid"].(float64); int(pid) == pidReal {
			if _, ok := ev["ts"]; ok {
				ev["ts"] = 0
			}
			if _, ok := ev["dur"]; ok {
				ev["dur"] = 0
			}
			ev["tid"] = 0
		}
		out = append(out, ev)
	}
	// The writer's order is already deterministic, but a canonical form
	// should not depend on that: sort by the serialised event itself
	// after neutralisation.
	blobs := make([]string, len(out))
	for i, ev := range out {
		b, err := json.Marshal(ev)
		if err != nil {
			return nil, err
		}
		blobs[i] = string(b)
	}
	sort.Strings(blobs)
	var buf []byte
	for _, b := range blobs {
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	return buf, nil
}
