package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// Live telemetry streaming. A Recorder can be watched: every span
// close and every counter delta is fanned out to subscribers as a
// StreamEvent, the unit of the NDJSON /debug/obs-stream endpoint.
// Publishing is non-blocking - a slow watcher drops intermediate
// events, never stalls the instrumented code - and costs nothing when
// nobody watches (one integer check under a lock the hot paths
// already hold).

// StreamEvent kinds.
const (
	// StreamSpan is a span-close event: the span's identity, trace
	// membership and measured duration.
	StreamSpan = "span"
	// StreamCounter is a counter-delta event: the increment just
	// applied and the resulting total.
	StreamCounter = "counter"
)

// StreamEvent is one live telemetry event. The JSON encoding is
// canonical by construction: fields marshal in declaration order and
// the attrs map marshals with sorted keys. DurNS is wall clock on the
// real track and therefore varies run to run; every other field is
// deterministic.
type StreamEvent struct {
	Kind   string            `json:"kind"`
	Track  string            `json:"track,omitempty"`
	Name   string            `json:"name"`
	Trace  string            `json:"trace,omitempty"`
	Span   string            `json:"span,omitempty"`
	Parent string            `json:"parent,omitempty"`
	DurNS  int64             `json:"dur_ns,omitempty"`
	Delta  int64             `json:"delta,omitempty"`
	Total  int64             `json:"total,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// AppendNDJSON appends the event's canonical NDJSON line (JSON object
// plus trailing newline) to dst and returns the extended slice.
func (e StreamEvent) AppendNDJSON(dst []byte) []byte {
	b, err := json.Marshal(e)
	if err != nil {
		// StreamEvent contains no unmarshalable types; reaching this is
		// a programming error worth surfacing loudly in tests.
		panic(fmt.Sprintf("obs: stream event marshal: %v", err))
	}
	dst = append(dst, b...)
	return append(dst, '\n')
}

// Watch subscribes to the recorder's live event stream. Events are
// delivered on the returned channel (buffered to buf, minimum 1);
// events published while the buffer is full are dropped. The cancel
// function unsubscribes and closes the channel.
func (r *Recorder) Watch(buf int) (<-chan StreamEvent, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan StreamEvent, buf)
	if r == nil {
		close(ch)
		return ch, func() {}
	}
	r.mu.Lock()
	if r.watchers == nil {
		r.watchers = map[int]chan StreamEvent{}
	}
	id := r.nextWatch
	r.nextWatch++
	r.watchers[id] = ch
	r.mu.Unlock()
	return ch, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.watchers[id]; ok {
			delete(r.watchers, id)
			close(ch)
		}
	}
}

// ForwardTo mirrors this recorder's stream events into parent's
// watchers, stamped as members of the given trace; forwarded span
// events whose recorded parent is 0 are re-parented under parentSpan.
// This is how a campaign job's private recorder feeds the daemon's
// live stream while the job runs: the daemon recorder adopts the
// job's spans only when the job finishes, but watchers see them close
// in real time. Call before concurrent use of the recorder begins.
func (r *Recorder) ForwardTo(parent *Recorder, trace, parentSpan uint64) *Recorder {
	if r != nil {
		r.fwd = parent
		r.fwdTrace = trace
		r.fwdParent = parentSpan
	}
	return r
}

// watched reports whether any watcher (here or downstream of a
// forward) would receive a published event. Callers hold r.mu.
func (r *Recorder) watchedLocked() bool {
	if len(r.watchers) > 0 {
		return true
	}
	if r.fwd == nil {
		return false
	}
	r.fwd.mu.Lock()
	n := len(r.fwd.watchers)
	r.fwd.mu.Unlock()
	return n > 0
}

// deliverLocked fans an event out to this recorder's watchers and to
// the forward target's watchers. Callers hold r.mu (but never
// r.fwd.mu: forward edges only ever point from job recorders to the
// daemon recorder, so the lock order r.mu -> r.fwd.mu is acyclic).
func (r *Recorder) deliverLocked(e StreamEvent) {
	for _, ch := range r.watchers {
		select {
		case ch <- e:
		default:
		}
	}
	if r.fwd == nil {
		return
	}
	if e.Kind == StreamSpan {
		if e.Trace == "" && r.fwdTrace != 0 {
			e.Trace = hexID(r.fwdTrace)
		}
		if e.Parent == "" && r.fwdParent != 0 {
			e.Parent = hexID(r.fwdParent)
		}
	}
	r.fwd.mu.Lock()
	for _, ch := range r.fwd.watchers {
		select {
		case ch <- e:
		default:
		}
	}
	r.fwd.mu.Unlock()
}

// publishSpanLocked emits a span-close event. Callers hold r.mu.
func (r *Recorder) publishSpanLocked(sp Span) {
	if !r.watchedLocked() {
		return
	}
	e := StreamEvent{
		Kind:  StreamSpan,
		Track: sp.Track.String(),
		Name:  sp.Name,
		Span:  hexID(sp.ID),
		DurNS: sp.DurNS,
	}
	if sp.TraceID != 0 {
		e.Trace = hexID(sp.TraceID)
	}
	if sp.Parent != 0 {
		e.Parent = hexID(sp.Parent)
	}
	if len(sp.Attrs) > 0 {
		e.Attrs = make(map[string]string, len(sp.Attrs))
		for _, a := range sp.Attrs {
			e.Attrs[a.Key] = a.Value
		}
	}
	r.deliverLocked(e)
}

// publishCounterLocked emits a counter-delta event. Callers hold r.mu.
func (r *Recorder) publishCounterLocked(name string, delta, total int64) {
	if !r.watchedLocked() {
		return
	}
	r.deliverLocked(StreamEvent{Kind: StreamCounter, Name: name, Delta: delta, Total: total})
}

// MergeStage folds an externally accumulated stage duration into the
// named stage timer (how a finished job's stage wall-clock reaches the
// daemon recorder behind /metrics).
func (r *Recorder) MergeStage(name string, d time.Duration, calls int) {
	if r == nil || calls == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.stageIdx[name]
	if !ok {
		i = len(r.stages)
		r.stageIdx[name] = i
		r.stages = append(r.stages, Stage{Name: name})
	}
	r.stages[i].Duration += d
	r.stages[i].Calls += calls
}

// Adopt folds another recorder's snapshot into r as one connected
// trace: adopted spans are stamped with the trace ID, real-track roots
// are re-parented under parent (the adopting span, typically the
// runner's campaign span), and events, histograms, counters, stage
// timers and simulated-track lane names are carried over. Real-track
// lane names are NOT adopted - worker lanes are scheduling artifacts
// of the donor and would collide with the adopter's own lanes.
//
// Adopted spans and events are not re-published to watchers: a
// forwarding recorder (see ForwardTo) already streamed them live.
func (r *Recorder) Adopt(s *Snapshot, trace, parent uint64) {
	if r == nil || s == nil {
		return
	}
	if r.TracingEnabled() {
		r.mu.Lock()
		for _, sp := range s.Spans {
			sp.TraceID = trace
			if sp.Parent == 0 && sp.Track == TrackReal {
				sp.Parent = parent
			}
			r.spans = append(r.spans, sp)
		}
		r.events = append(r.events, s.Events...)
		r.mu.Unlock()
		for _, ln := range s.Lanes {
			if ln.Track == TrackSim {
				r.NameLane(ln.Track, ln.Lane, ln.Name)
			}
		}
	}
	for i := range s.Hists {
		r.MergeHist(s.Hists[i].Name, &s.Hists[i])
	}
	for _, c := range s.Counters {
		r.Add(c.Name, c.Value)
	}
	if s.Summary != nil {
		for _, st := range s.Summary.Stages {
			r.MergeStage(st.Name, st.Duration, st.Calls)
		}
	}
}
