package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestSpanRecorderStress hammers one recorder from many goroutines -
// nested spans, events, counters, histograms and sim spans - while
// other goroutines take snapshots and export them mid-flight. Run
// under -race (make race / CI) this is the span recorder's
// concurrency gate, mirroring the trace-cache stress test from the
// pipeline PR.
func TestSpanRecorderStress(t *testing.T) {
	const (
		workers   = 8
		rounds    = 200
		snapshots = 50
	)
	r := New().EnableSim()
	var wg sync.WaitGroup
	start := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			var local Hist
			for i := 0; i < rounds; i++ {
				root := r.StartSpan(SpanTracePair, w, Int(AttrLaunch, int64(w*rounds+i)))
				child := root.StartSpan(SpanSweepJob, w, Int(AttrAttempt, int64(i)))
				child.Event(EvRetry, Int(AttrAttempt, int64(i%3)))
				r.Add(CtrFaultAttempts, 1)
				r.ObserveHist(HistCellAttempts, int64(i%7))
				local.Observe(int64(i))
				tl := r.SimSpan(w, 0, SpanSimTimeline, int64(i), 10, Int(AttrLaunch, int64(w*rounds+i)))
				r.SimSpan(w, tl, SpanSimTimeline, int64(i), 5, Int(AttrLaunch, int64(i)))
				child.End()
				root.End()
				stop := r.Start(StageSweep)
				stop()
			}
			r.MergeHist(HistFrontier, &local)
		}(w)
	}

	// Snapshot takers run concurrently with the writers and must only
	// ever observe consistent state: exports must not panic and the
	// flat counters must never exceed their final values.
	var snapWG sync.WaitGroup
	for s := 0; s < snapshots; s++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			<-start
			snap := r.Snapshot()
			if got := snap.Summary.Counter(CtrFaultAttempts); got > workers*rounds {
				t.Errorf("mid-flight counter %d exceeds maximum %d", got, workers*rounds)
			}
			var buf bytes.Buffer
			if err := WriteChromeTrace(&buf, snap); err != nil {
				t.Errorf("mid-flight trace export: %v", err)
			}
			buf.Reset()
			if err := WriteMetrics(&buf, snap); err != nil {
				t.Errorf("mid-flight metrics export: %v", err)
			}
		}()
	}

	close(start)
	wg.Wait()
	snapWG.Wait()

	final := r.Snapshot()
	if got := final.Summary.Counter(CtrFaultAttempts); got != workers*rounds {
		t.Errorf("final counter = %d, want %d", got, workers*rounds)
	}
	// Every Ended span must be present: 2 real + 2 sim per round.
	if got, want := len(final.Spans), workers*rounds*4; got != want {
		t.Errorf("final spans = %d, want %d", got, want)
	}
	if got, want := len(final.Events), workers*rounds; got != want {
		t.Errorf("final events = %d, want %d", got, want)
	}
	var frontier *Hist
	for i := range final.Hists {
		if final.Hists[i].Name == HistFrontier {
			frontier = &final.Hists[i]
		}
	}
	if frontier == nil || frontier.Count != workers*rounds {
		t.Errorf("merged hist = %+v, want count %d", frontier, workers*rounds)
	}
}
