package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// sampleRecorder builds a recorder with activity on both tracks.
func sampleRecorder() *Recorder {
	r := NewWithClock(fakeClock(time.Millisecond)).EnableSim()
	r.Start(StageTrace)()
	r.Add(CtrCacheHits, 3)
	r.Add(CtrCacheMisses, 1)
	root := r.StartSpan(StageTrace, 0)
	pair := root.StartSpan(SpanTracePair, 1, String(AttrApp, "bfs-wl"), String(AttrInput, "road"))
	pair.Event(EvRetry, Int(AttrAttempt, 1), String(AttrKind, "transient"))
	pair.End()
	root.End()
	r.NameLane(TrackSim, 0, "bfs-wl on road")
	tl := r.SimSpan(0, 0, SpanSimTimeline, 0, 60, String(AttrApp, "bfs-wl"), String(AttrInput, "road"))
	r.SimSpan(0, tl, "bfs_kernel", 0, 60, Int(AttrLaunch, 0), Int(AttrFrontier, 1), Int(AttrEdges, 5))
	r.ObserveHist(HistFrontier, 1)
	r.ObserveHist(HistFrontier, 700)
	return r
}

func TestWriteChromeTraceLoadsAndHasBothTracks(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleRecorder().Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	pids := map[int]bool{}
	phs := map[string]bool{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
		phs[ev.Ph] = true
		names[ev.Name] = true
	}
	if !pids[pidReal] || !pids[pidSim] {
		t.Errorf("want both real and sim pids, got %v", pids)
	}
	for _, ph := range []string{"M", "C", "X", "i"} {
		if !phs[ph] {
			t.Errorf("missing phase %q events", ph)
		}
	}
	for _, n := range []string{SpanTracePair, "bfs_kernel", EvRetry, CtrCacheHits} {
		if !names[n] {
			t.Errorf("missing event name %q", n)
		}
	}
}

func TestCanonicalTraceStripsWallClockOnly(t *testing.T) {
	var a bytes.Buffer
	if err := WriteChromeTrace(&a, sampleRecorder().Snapshot()); err != nil {
		t.Fatal(err)
	}
	// A second recorder with a much slower clock: every real ts/dur
	// differs, the sim track does not.
	r2 := sampleRecorder()
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, r2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ca, err := CanonicalTrace(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalTrace(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("canonical traces differ:\n%s\n---\n%s", ca, cb)
	}
	if strings.Contains(string(ca), `"dur":0.`) {
		t.Errorf("canonical trace kept a real duration:\n%s", ca)
	}
	// The sim track's virtual intervals must survive canonicalisation.
	if !strings.Contains(string(ca), "bfs_kernel") {
		t.Errorf("canonical trace lost the sim track:\n%s", ca)
	}
}

func TestWriteMetricsExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, sampleRecorder().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`gpuport_counter_total{name="trace-cache-hits"} 3`,
		`gpuport_counter_total{name="trace-cache-misses"} 1`,
		`gpuport_hist_bucket{name="frontier-items",le="1"} 1`,
		`gpuport_hist_bucket{name="frontier-items",le="1024"} 2`,
		`gpuport_hist_bucket{name="frontier-items",le="+Inf"} 2`,
		`gpuport_hist_sum{name="frontier-items"} 701`,
		`gpuport_hist_count{name="frontier-items"} 2`,
		`gpuport_span_total{track="real",name="trace-pair"} 1`,
		`gpuport_span_total{track="sim",name="timeline"} 1`,
		`gpuport_event_total{name="retry"} 1`,
		`gpuport_stage_sections_total{stage="trace"} 1`,
		`gpuport_stage_seconds{stage="trace"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCanonicalMetricsStripsStageSeconds(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, sampleRecorder().Snapshot()); err != nil {
		t.Fatal(err)
	}
	canon := string(CanonicalMetrics(buf.Bytes()))
	if strings.Contains(canon, "gpuport_stage_seconds") {
		t.Errorf("canonical metrics kept wall-clock lines:\n%s", canon)
	}
	if !strings.Contains(canon, "gpuport_stage_sections_total") {
		t.Errorf("canonical metrics lost deterministic stage counts:\n%s", canon)
	}
}

// TestCanonicalMetricsDegenerate pins CanonicalMetrics on empty and
// malformed inputs: nil in, empty out; an exposition that is nothing
// but wall-clock families strips to empty; lines without a trailing
// newline and non-exposition garbage pass through untouched (the
// canonicaliser filters families, it does not validate).
func TestCanonicalMetricsDegenerate(t *testing.T) {
	if got := CanonicalMetrics(nil); len(got) != 0 {
		t.Errorf("CanonicalMetrics(nil) = %q, want empty", got)
	}
	onlyRT := "# TYPE " + RealtimePrefix + "gauge gauge\n" +
		RealtimePrefix + `gauge{name="queue-depth"} 3` + "\n" +
		`gpuport_stage_seconds{stage="trace"} 0.5` + "\n"
	if got := CanonicalMetrics([]byte(onlyRT)); len(got) != 0 {
		t.Errorf("all-wall-clock exposition canonicalised to %q, want empty", got)
	}
	passthrough := "garbage line\ngpuport_counter_total{name=\"x\"} 1"
	if got := string(CanonicalMetrics([]byte(passthrough))); got != passthrough {
		t.Errorf("passthrough mangled:\n got %q\nwant %q", got, passthrough)
	}
}

func TestWriteEmptySnapshots(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("empty trace is not valid JSON: %s", buf.String())
	}
	buf.Reset()
	if err := WriteMetrics(&buf, nil); err != nil {
		t.Fatal(err)
	}
}
