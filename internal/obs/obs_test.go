package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step per reading, so stage durations are
// exact and the tests are immune to scheduler jitter.
func fakeClock(step time.Duration) func() time.Time {
	var mu sync.Mutex
	t := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

func TestStagesAndCounters(t *testing.T) {
	r := NewWithClock(fakeClock(time.Millisecond))
	stop := r.Start("trace")
	stop()
	stop = r.Start("sweep")
	stop()
	stop = r.Start("trace")
	stop()
	r.Add("hits", 2)
	r.Add("misses", 1)
	r.Add("hits", 3)

	s := r.Summary()
	if len(s.Stages) != 2 || s.Stages[0].Name != "trace" || s.Stages[1].Name != "sweep" {
		t.Fatalf("stages = %+v, want trace then sweep (first-use order)", s.Stages)
	}
	// Each Start/stop pair reads the clock twice -> 1ms per section.
	if d := s.StageDuration("trace"); d != 2*time.Millisecond {
		t.Errorf("trace duration = %v, want 2ms", d)
	}
	if s.Stages[0].Calls != 2 || s.Stages[1].Calls != 1 {
		t.Errorf("calls = %d/%d, want 2/1", s.Stages[0].Calls, s.Stages[1].Calls)
	}
	if s.Counter("hits") != 5 || s.Counter("misses") != 1 {
		t.Errorf("counters = %+v", s.Counters)
	}
	if s.Counter("absent") != 0 || s.StageDuration("absent") != 0 {
		t.Error("absent names should read as zero")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Start("x")()
	r.Add("y", 1)
	if r.Summary() != nil {
		t.Error("nil recorder should summarise to nil")
	}
	var s *Summary
	if s.Counter("x") != 0 || s.StageDuration("x") != 0 {
		t.Error("nil summary should read as zero")
	}
	s.Format(nil) // must not panic
}

func TestSummaryIsSnapshot(t *testing.T) {
	r := NewWithClock(fakeClock(time.Millisecond))
	r.Add("n", 1)
	s1 := r.Summary()
	r.Add("n", 1)
	if s1.Counter("n") != 1 {
		t.Error("summary mutated after snapshot")
	}
	if r.Summary().Counter("n") != 2 {
		t.Error("recorder stopped accumulating after snapshot")
	}
}

func TestFormat(t *testing.T) {
	r := NewWithClock(fakeClock(time.Second))
	r.Start("trace")()
	r.Add("trace-cache-hits", 51)
	var b strings.Builder
	r.Summary().Format(&b)
	out := b.String()
	for _, want := range []string{"stage trace", "1s", "trace-cache-hits", "51"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Start("stage")()
				r.Add("count", 1)
			}
		}()
	}
	wg.Wait()
	s := r.Summary()
	if s.Counter("count") != 800 {
		t.Errorf("count = %d, want 800", s.Counter("count"))
	}
	if s.Stages[0].Calls != 800 {
		t.Errorf("calls = %d, want 800", s.Stages[0].Calls)
	}
}
