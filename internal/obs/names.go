package obs

// Every span, event, counter, histogram and attribute name used by the
// instrumented packages is declared here. The lintgate rule
// "obs-names" enforces that call sites pass one of these constants (or
// a value computed from the workload, e.g. a kernel name) rather than
// an ad-hoc string literal: exported artifacts are golden-tested
// byte-for-byte, so a renamed or misspelled name is a silent schema
// change unless it has exactly one home.

// Pipeline stages (wall-clock stage timers and their phase spans).
const (
	StageTrace    = "trace"
	StageSweep    = "sweep"
	StageAssemble = "assemble"
)

// Counters.
const (
	// Trace-cache traffic seen by the measurement pipeline.
	CtrCacheHits       = "trace-cache-hits"
	CtrCacheMisses     = "trace-cache-misses"
	CtrCacheMismatches = "trace-cache-mismatches"
	CtrCachePutErrors  = "trace-cache-put-errors"
	// Store-level trace-cache events (emitted by internal/tracecache).
	CtrCacheEvictions = "trace-cache-evictions"
	CtrCacheCorrupt   = "trace-cache-corrupt-healed"
	// Fault-campaign traffic (emitted by internal/measure).
	CtrFaultAttempts    = "fault-attempts"
	CtrFaultRetries     = "fault-retries"
	CtrFaultQuarantined = "fault-quarantined"
	// Simulated-workload totals accumulated over traced pairs.
	CtrKernelLaunches = "kernel-launches"
	CtrEdgeWork       = "edge-work"
	CtrAtomicPushes   = "atomic-pushes"
	// Campaign-server job accounting (emitted by internal/server).
	CtrJobsSubmitted = "jobs-submitted"
	CtrJobsDeduped   = "jobs-deduped"
	CtrJobsCached    = "jobs-result-cached"
	CtrJobsCompleted = "jobs-completed"
	CtrJobsFailed    = "jobs-failed"
	CtrJobsCanceled  = "jobs-canceled"
)

// Span names.
const (
	// SpanTracePair covers tracing one (application, input) pair on the
	// real (harness) track.
	SpanTracePair = "trace-pair"
	// SpanSweepJob covers evaluating one (chip, trace) job - all its
	// optimisation configurations - on the real track.
	SpanSweepJob = "sweep-job"
	// SpanSimTimeline is the root span of one pair's simulated kernel
	// timeline; its children are loop and kernel-launch spans named
	// after the application's own loops and kernels.
	SpanSimTimeline = "timeline"
	// SpanCampaign covers one campaign job executed by the server's
	// runner pool, from dequeue to terminal state, on the lane of the
	// runner that executed it.
	SpanCampaign = "campaign"
	// SpanHTTPRequest covers one API request from accept to response
	// on the server's HTTP lane; its endpoint attribute names the
	// route. For campaign submissions it is the root of the request
	// trace (validate and enqueue are its children, and the queue-wait
	// and campaign spans link back to it).
	SpanHTTPRequest = "http-request"
	// SpanValidate covers spec validation/resolution inside a submit.
	SpanValidate = "validate"
	// SpanEnqueue covers job registration and queue insertion inside a
	// submit.
	SpanEnqueue = "enqueue"
	// SpanQueueWait covers the time a job spends queued: opened when
	// the job is enqueued, closed when a runner dequeues it (or the
	// job is canceled while still queued).
	SpanQueueWait = "queue-wait"
)

// Event names.
const (
	// EvRetry marks one failed launch attempt inside a cell (the cell
	// was retried after a backoff).
	EvRetry = "retry"
	// EvCellFailed marks a cell abandoned after exhausting its retries.
	EvCellFailed = "cell-failed"
	// EvCacheEvict marks one LRU eviction in the trace cache.
	EvCacheEvict = "cache-evict"
	// EvCacheHeal marks a damaged cache entry detected, deleted and
	// scheduled for re-tracing.
	EvCacheHeal = "cache-heal"
	// EvTraceCached marks a pair whose trace was served from the cache
	// instead of executed.
	EvTraceCached = "trace-cached"
	// EvSubmitOutcome marks how a submission resolved (its outcome
	// attribute is queued, deduped, cached, requeued or rejected).
	EvSubmitOutcome = "submit-outcome"
)

// Attribute keys.
const (
	AttrApp      = "app"
	AttrInput    = "input"
	AttrChip     = "chip"
	AttrConfig   = "config"
	AttrGraphFP  = "graph-fp"
	AttrCached   = "cached"
	AttrAttempt  = "attempt"
	AttrKind     = "kind"
	AttrWaitNS   = "wait-ns"
	AttrFrontier = "frontier"
	AttrEdges    = "edges"
	AttrPushes   = "pushes"
	AttrLaunch   = "launch"
	AttrLoop     = "loop"
	AttrIters    = "iterations"
	AttrPath     = "path"
	AttrJob      = "job"
	AttrEndpoint = "endpoint"
	AttrOutcome  = "outcome"
)

// Histogram names. All histograms observe deterministic (simulated or
// seeded) integer quantities, never wall-clock, so their snapshots are
// byte-stable across runs.
const (
	// HistFrontier observes the number of active work-items per kernel
	// launch.
	HistFrontier = "frontier-items"
	// HistLaunchEdges observes the edge work per kernel launch.
	HistLaunchEdges = "launch-edges"
	// HistCellAttempts observes launch attempts per measured cell.
	HistCellAttempts = "cell-attempts"
	// HistCellWaitNS observes per-cell virtual backoff/deadline time.
	HistCellWaitNS = "cell-wait-ns"
)

// Lane labels (real-track export threads with fixed roles; runner
// lanes are named dynamically).
const (
	// LaneHTTP is the lane the server's HTTP front end records its
	// request spans on (one past the runner lanes).
	LaneHTTP = "http"
)

// Time-series names (internal/obs/tsdb series sampled by the campaign
// server on each telemetry tick).
const (
	// TSQueueDepth gauges the number of campaigns waiting in the
	// scheduling queue.
	TSQueueDepth = "queue-depth"
	// TSRunnersBusy gauges how many campaign runners are executing a
	// job (worker utilization is TSRunnersBusy / configured runners).
	TSRunnersBusy = "runners-busy"
	// TSLatencyPrefix prefixes per-endpoint request-latency histogram
	// series; the endpoint name is appended ("http-latency:submit").
	TSLatencyPrefix = "http-latency:"
)

// HistBounds is the fixed upper-bound ladder shared by every
// histogram: powers of four from 1 to 4^15, plus an implicit +Inf
// overflow bucket. Fixed bounds are what make histogram snapshots
// byte-stable: two runs can only differ in counts, never in schema.
var HistBounds = [...]int64{
	1, 4, 16, 64, 256, 1024, 4096, 16384, 65536,
	262144, 1048576, 4194304, 16777216, 67108864, 268435456, 1073741824,
}

// HistBuckets is the number of counting buckets (bounds plus overflow).
const HistBuckets = len(HistBounds) + 1
