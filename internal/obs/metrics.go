package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus-style text exposition of a snapshot. Every family is
// emitted in sorted label order and histograms use the fixed HistBounds
// ladder, so the exposition of a deterministic run is byte-stable. The
// single wall-clock family, gpuport_stage_seconds, is the one thing
// that varies run to run; CanonicalMetrics strips it.

// stageSecondsFamily is the wall-clock gauge family name; it is the
// marker CanonicalMetrics keys on.
const stageSecondsFamily = "gpuport_stage_seconds"

// RealtimePrefix marks metric families whose values derive from wall
// clock or sampling cadence (the tsdb time-series exposition: request
// latencies, per-tick gauges). Everything under the prefix is stripped
// by CanonicalMetrics, the same contract gpuport_stage_seconds has.
const RealtimePrefix = "gpuport_rt_"

// WriteMetrics writes the snapshot as Prometheus text exposition.
func WriteMetrics(w io.Writer, s *Snapshot) error {
	if s == nil {
		s = &Snapshot{}
	}
	bw := bufio.NewWriter(w)

	if len(s.Counters) > 0 {
		fmt.Fprintf(bw, "# TYPE gpuport_counter_total counter\n")
		for _, c := range s.Counters {
			fmt.Fprintf(bw, "gpuport_counter_total{name=%q} %d\n", c.Name, c.Value)
		}
	}

	if len(s.Hists) > 0 {
		fmt.Fprintf(bw, "# TYPE gpuport_hist histogram\n")
		for _, h := range s.Hists {
			var cum int64
			for i, b := range HistBounds {
				cum += h.Buckets[i]
				fmt.Fprintf(bw, "gpuport_hist_bucket{name=%q,le=%q} %d\n", h.Name, strconv.FormatInt(b, 10), cum)
			}
			fmt.Fprintf(bw, "gpuport_hist_bucket{name=%q,le=\"+Inf\"} %d\n", h.Name, h.Count)
			fmt.Fprintf(bw, "gpuport_hist_sum{name=%q} %d\n", h.Name, h.Sum)
			fmt.Fprintf(bw, "gpuport_hist_count{name=%q} %d\n", h.Name, h.Count)
		}
	}

	// Span population per (track, name): deterministic (identities and
	// counts are scheduling-independent), unlike span durations, which
	// are deliberately not exported here.
	if len(s.Spans) > 0 {
		type key struct {
			track Track
			name  string
		}
		counts := map[key]int64{}
		for _, sp := range s.Spans {
			counts[key{sp.Track, sp.Name}]++
		}
		keys := make([]key, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].track != keys[j].track {
				return keys[i].track < keys[j].track
			}
			return keys[i].name < keys[j].name
		})
		fmt.Fprintf(bw, "# TYPE gpuport_span_total counter\n")
		for _, k := range keys {
			fmt.Fprintf(bw, "gpuport_span_total{track=%q,name=%q} %d\n", k.track.String(), k.name, counts[k])
		}
	}

	if len(s.Events) > 0 {
		counts := map[string]int64{}
		for _, ev := range s.Events {
			counts[ev.Name]++
		}
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(bw, "# TYPE gpuport_event_total counter\n")
		for _, n := range names {
			fmt.Fprintf(bw, "gpuport_event_total{name=%q} %d\n", n, counts[n])
		}
	}

	if s.Summary != nil && len(s.Summary.Stages) > 0 {
		stages := append([]Stage(nil), s.Summary.Stages...)
		sort.Slice(stages, func(i, j int) bool { return stages[i].Name < stages[j].Name })
		fmt.Fprintf(bw, "# TYPE gpuport_stage_sections_total counter\n")
		for _, st := range stages {
			fmt.Fprintf(bw, "gpuport_stage_sections_total{stage=%q} %d\n", st.Name, st.Calls)
		}
		fmt.Fprintf(bw, "# TYPE %s gauge\n", stageSecondsFamily)
		for _, st := range stages {
			fmt.Fprintf(bw, "%s{stage=%q} %.9f\n", stageSecondsFamily, st.Name, st.Duration.Seconds())
		}
	}
	return bw.Flush()
}

// CanonicalMetrics strips the wall-clock lines (the stage-seconds
// gauge family, every RealtimePrefix time-series family, and their
// TYPE headers) from an exposition, leaving the deterministic
// remainder for byte comparison.
func CanonicalMetrics(raw []byte) []byte {
	var out bytes.Buffer
	for _, line := range strings.SplitAfter(string(raw), "\n") {
		if strings.HasPrefix(line, stageSecondsFamily) ||
			strings.HasPrefix(line, "# TYPE "+stageSecondsFamily) ||
			strings.HasPrefix(line, RealtimePrefix) ||
			strings.HasPrefix(line, "# TYPE "+RealtimePrefix) {
			continue
		}
		out.WriteString(line)
	}
	return out.Bytes()
}
