// Package obs is a lightweight observability layer for the measurement
// pipeline: named wall-clock stage timers (trace vs. sweep vs.
// analysis) and integer counters (cache hits, misses, ...), accumulated
// concurrently and summarised deterministically.
//
// It deliberately measures only the harness, never the simulated
// experiment: stage durations are real wall-clock and therefore vary
// run to run, so they are reported alongside the dataset (in
// measure.Report and the CLI) but never feed into it.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Stage is one named phase's accumulated wall-clock.
type Stage struct {
	Name     string
	Duration time.Duration
	// Calls counts how many timed sections contributed to Duration.
	Calls int
}

// Counter is one named monotonic count.
type Counter struct {
	Name  string
	Value int64
}

// Summary is an immutable snapshot of a Recorder, with stages and
// counters in first-use order (deterministic for a fixed code path).
type Summary struct {
	Stages   []Stage
	Counters []Counter
}

// Counter returns the value of the named counter (0 when absent).
func (s *Summary) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// StageDuration returns the accumulated duration of the named stage
// (0 when absent).
func (s *Summary) StageDuration(name string) time.Duration {
	if s == nil {
		return 0
	}
	for _, st := range s.Stages {
		if st.Name == name {
			return st.Duration
		}
	}
	return 0
}

// Format writes the summary as "stage trace 1.2s | stage sweep 3.4s |
// hits 51" lines, one item per line, for -v logging. The first write
// error is returned.
func (s *Summary) Format(w io.Writer) error {
	if s == nil {
		return nil
	}
	for _, st := range s.Stages {
		if _, err := fmt.Fprintf(w, "pipeline: stage %-10s %12s  (%d sections)\n", st.Name, st.Duration.Round(time.Microsecond), st.Calls); err != nil {
			return err
		}
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "pipeline: %-16s %8d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	return nil
}

// Recorder accumulates stages and counters - and, when tracing is
// enabled, hierarchical spans, events and histograms (see span.go).
// Safe for concurrent use; the zero value is NOT usable, call New.
type Recorder struct {
	// now is the clock; tests may swap it before concurrent use begins.
	now func() time.Time
	// tracing/sim gate span capture; set before concurrent use begins.
	tracing, sim bool

	mu       sync.Mutex
	stages   []Stage        // guarded by mu
	stageIdx map[string]int // guarded by mu
	counters []Counter      // guarded by mu
	countIdx map[string]int // guarded by mu

	// epoch anchors real-track timestamps; set on first observation.
	epoch   time.Time      // guarded by mu
	spans   []Span         // guarded by mu
	events  []Event        // guarded by mu
	hists   []Hist         // guarded by mu
	histIdx map[string]int // guarded by mu
	lanes   []LaneName     // guarded by mu

	// Live streaming (see stream.go): registered watchers, and the
	// optional forward target a job recorder mirrors its events into.
	// The forward fields are set before concurrent use (ForwardTo),
	// so only the watcher registry is guarded.
	watchers  map[int]chan StreamEvent // guarded by mu
	nextWatch int                      // guarded by mu
	fwd       *Recorder
	fwdTrace  uint64
	fwdParent uint64
}

// New returns an empty recorder using the real clock.
func New() *Recorder {
	return &Recorder{
		now:      time.Now,
		stageIdx: map[string]int{},
		countIdx: map[string]int{},
		histIdx:  map[string]int{},
	}
}

// NewWithClock returns a recorder on an injected clock (tests).
func NewWithClock(now func() time.Time) *Recorder {
	r := New()
	r.now = now
	return r
}

// Start begins timing one section of the named stage; the returned stop
// function adds the elapsed time. Typical use:
//
//	defer rec.Start("trace")()
func (r *Recorder) Start(name string) (stop func()) {
	if r == nil {
		return func() {}
	}
	t0 := r.now()
	return func() {
		d := r.now().Sub(t0)
		r.mu.Lock()
		defer r.mu.Unlock()
		i, ok := r.stageIdx[name]
		if !ok {
			i = len(r.stages)
			r.stageIdx[name] = i
			r.stages = append(r.stages, Stage{Name: name})
		}
		r.stages[i].Duration += d
		r.stages[i].Calls++
	}
}

// Add increments the named counter by delta. A nil recorder is a no-op,
// so instrumented code never needs nil checks.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.countIdx[name]
	if !ok {
		i = len(r.counters)
		r.countIdx[name] = i
		r.counters = append(r.counters, Counter{Name: name})
	}
	r.counters[i].Value += delta
	r.publishCounterLocked(name, delta, r.counters[i].Value)
}

// Summary snapshots the recorder. The recorder remains usable; later
// snapshots include earlier activity.
func (r *Recorder) Summary() *Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Summary{
		Stages:   append([]Stage(nil), r.stages...),
		Counters: append([]Counter(nil), r.counters...),
	}
}
