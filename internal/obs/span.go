package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Track separates the two timelines a run records: the real wall-clock
// of the harness itself, and the simulated (virtual-nanosecond)
// timeline reconstructed from application traces.
type Track uint8

const (
	// TrackReal is the harness timeline: pipeline stages, per-pair and
	// per-job spans, retry events. Real timestamps and durations vary
	// run to run and are therefore stripped by CanonicalTrace.
	TrackReal Track = iota
	// TrackSim is the simulated timeline: kernel launches and host
	// loops on a virtual clock derived purely from the trace, so it is
	// bit-identical across runs.
	TrackSim
)

// String returns the export name of the track.
func (t Track) String() string {
	if t == TrackSim {
		return "sim"
	}
	return "real"
}

// Attr is one typed span or event attribute. Values are stored
// canonically rendered so snapshots compare byte-for-byte.
type Attr struct {
	Key, Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{key, value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{key, strconv.FormatInt(value, 10)} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{key, strconv.FormatBool(value)} }

// Span is one completed timed section on a track. IDs are
// deterministic: a span's ID is a hash of its parent ID, name and
// attributes, so the same logical span gets the same ID in every run
// regardless of scheduling. Identity must therefore be carried by the
// attributes (app, input, chip, launch index, ...), never by arrival
// order - the instrumented call sites all do this.
type Span struct {
	// ID is the deterministic span identity; Parent is 0 for roots.
	ID, Parent uint64
	// TraceID groups every span of one logical request (a campaign's
	// journey through submit, queue, runner and pipeline) into one
	// connected trace. It is derived from content (NewTraceID over the
	// campaign fingerprint), never from clocks or arrival order, so a
	// trace's identity is bit-identical across runs. 0 means the span
	// belongs to no request trace (the daemon's own housekeeping).
	TraceID uint64
	// Links name other spans this span is causally related to across
	// an async boundary (a runner's campaign span links back to the
	// HTTP request span that enqueued it). Link targets are span IDs,
	// deterministic like everything else here.
	Links []uint64
	Name  string
	Track Track
	// Lane is the export thread: the worker id on the real track
	// (scheduling-dependent, stripped by CanonicalTrace), the
	// canonical pair index on the simulated track (deterministic).
	Lane  int
	Attrs []Attr
	// StartNS/DurNS are nanoseconds since the recorder epoch on the
	// real track, virtual nanoseconds on the simulated track.
	StartNS, DurNS int64
}

// NewTraceID derives a deterministic 64-bit trace identity from the
// given parts (typically a kind tag plus a content fingerprint). The
// same parts yield the same trace ID in every run and process.
func NewTraceID(parts ...string) uint64 {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{'|'})
		}
		h.Write([]byte(p))
	}
	id := h.Sum64()
	if id == 0 {
		id = 1 // 0 is reserved for "no trace"
	}
	return id
}

// Event is one instantaneous occurrence attached to a span.
type Event struct {
	// SpanID names the owning span (0 for a free-standing event).
	SpanID uint64
	Name   string
	Track  Track
	Lane   int
	TSNS   int64
	Attrs  []Attr
}

// Hist is a fixed-bound histogram of a deterministic integer quantity.
// Bucket i counts observations <= HistBounds[i]; the final bucket is
// the +Inf overflow. Sum and Count are integers, so merging worker-
// local histograms in any order yields identical snapshots.
type Hist struct {
	Name    string
	Buckets [HistBuckets]int64
	Sum     int64
	Count   int64
}

// Observe adds one observation.
func (h *Hist) Observe(v int64) {
	i := sort.Search(len(HistBounds), func(i int) bool { return v <= HistBounds[i] })
	h.Buckets[i]++
	h.Sum += v
	h.Count++
}

// merge folds o into h.
func (h *Hist) merge(o *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Sum += o.Sum
	h.Count += o.Count
}

// LaneName labels one export thread of a track.
type LaneName struct {
	Track Track
	Lane  int
	Name  string
}

// spanID derives the deterministic identity of a span.
func spanID(parent uint64, name string, attrs []Attr) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", parent, name)
	for _, a := range attrs {
		fmt.Fprintf(h, "|%s=%s", a.Key, a.Value)
	}
	id := h.Sum64()
	if id == 0 {
		id = 1 // 0 is reserved for "no parent"
	}
	return id
}

// EnableTracing turns on span and event capture (off by default: the
// stage timers and counters of the original recorder cost nothing and
// are always on, while a traced full sweep records thousands of spans).
// Call before concurrent use begins.
func (r *Recorder) EnableTracing() *Recorder {
	if r != nil {
		r.tracing = true
	}
	return r
}

// EnableSim additionally turns on the simulated kernel timeline, the
// bulkiest capture (one span per kernel launch per traced pair).
// Implies EnableTracing.
func (r *Recorder) EnableSim() *Recorder {
	if r != nil {
		r.tracing = true
		r.sim = true
	}
	return r
}

// TracingEnabled reports whether spans and events are being captured.
func (r *Recorder) TracingEnabled() bool { return r != nil && r.tracing }

// SimEnabled reports whether the simulated timeline is being captured.
func (r *Recorder) SimEnabled() bool { return r != nil && r.sim }

// NowNS returns nanoseconds since the recorder's first observation on
// the recorder's clock. Instrumented packages that may not read the
// wall clock themselves (the walltime gate confines time.Now to the
// instrumentation layers) route latency measurements through this.
func (r *Recorder) NowNS() int64 {
	if r == nil {
		return 0
	}
	return r.epochNS()
}

// epochNS returns nanoseconds since the recorder's first observation.
func (r *Recorder) epochNS() int64 {
	now := r.now()
	r.mu.Lock()
	if r.epoch.IsZero() {
		r.epoch = now
	}
	d := now.Sub(r.epoch)
	r.mu.Unlock()
	return d.Nanoseconds()
}

// SpanHandle is an open span. End it exactly once; events and child
// spans may be attached while it is open. A nil handle (tracing
// disabled) is a no-op, so instrumented code never needs checks.
type SpanHandle struct {
	r    *Recorder
	span Span
}

// StartSpan opens a root span on the real track. The attributes are
// part of the span's identity and must make it unique among its
// siblings (see Span).
func (r *Recorder) StartSpan(name string, lane int, attrs ...Attr) *SpanHandle {
	if !r.TracingEnabled() {
		return nil
	}
	return &SpanHandle{r: r, span: Span{
		ID:      spanID(0, name, attrs),
		Name:    name,
		Lane:    lane,
		Attrs:   attrs,
		StartNS: r.epochNS(),
	}}
}

// StartSpan opens a child span of h on the real track. The child
// inherits h's trace ID as it is at creation time.
func (h *SpanHandle) StartSpan(name string, lane int, attrs ...Attr) *SpanHandle {
	if h == nil {
		return nil
	}
	return &SpanHandle{r: h.r, span: Span{
		ID:      spanID(h.span.ID, name, attrs),
		Parent:  h.span.ID,
		TraceID: h.span.TraceID,
		Name:    name,
		Lane:    lane,
		Attrs:   attrs,
		StartNS: h.r.epochNS(),
	}}
}

// InTrace binds the span to a request trace. It returns h for
// chaining. The trace ID is presentation, not identity: it does not
// participate in the span's ID, so it may be set after creation (a
// submit handler only learns the campaign fingerprint mid-request).
// Children opened after InTrace inherit the trace.
func (h *SpanHandle) InTrace(trace uint64) *SpanHandle {
	if h != nil {
		h.span.TraceID = trace
	}
	return h
}

// Link records a causal link from this span to another span (by its
// deterministic ID), connecting work across async boundaries such as
// the submit/runner handoff.
func (h *SpanHandle) Link(id uint64) {
	if h != nil && id != 0 {
		h.span.Links = append(h.span.Links, id)
	}
}

// ID returns the span's deterministic identity (0 on a nil handle).
func (h *SpanHandle) ID() uint64 {
	if h == nil {
		return 0
	}
	return h.span.ID
}

// Event attaches an instantaneous event to the span.
func (h *SpanHandle) Event(name string, attrs ...Attr) {
	if h == nil {
		return
	}
	h.r.event(Event{
		SpanID: h.span.ID,
		Name:   name,
		Track:  TrackReal,
		Lane:   h.span.Lane,
		TSNS:   h.r.epochNS(),
		Attrs:  attrs,
	})
}

// Event records a free-standing event on the real track; spanID may be
// 0 or a span obtained from SpanHandle.ID (this is how packages that
// only hold a span ID, not a handle, attach their events).
func (r *Recorder) Event(name string, spanID uint64, attrs ...Attr) {
	if !r.TracingEnabled() {
		return
	}
	r.event(Event{
		SpanID: spanID,
		Name:   name,
		Track:  TrackReal,
		TSNS:   r.epochNS(),
		Attrs:  attrs,
	})
}

func (r *Recorder) event(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// End closes the span, recording its duration and notifying any live
// stream watchers (see Watch).
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	h.span.DurNS = h.r.epochNS() - h.span.StartNS
	h.r.mu.Lock()
	h.r.spans = append(h.r.spans, h.span)
	h.r.publishSpanLocked(h.span)
	h.r.mu.Unlock()
}

// SimSpan records one completed span on the simulated track with an
// explicit virtual interval. Returns the span's ID for parenting.
func (r *Recorder) SimSpan(lane int, parent uint64, name string, startNS, durNS int64, attrs ...Attr) uint64 {
	if !r.SimEnabled() {
		return 0
	}
	s := Span{
		ID:      spanID(parent, name, attrs),
		Parent:  parent,
		Name:    name,
		Track:   TrackSim,
		Lane:    lane,
		Attrs:   attrs,
		StartNS: startNS,
		DurNS:   durNS,
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.publishSpanLocked(s)
	r.mu.Unlock()
	return s.ID
}

// NameLane labels an export thread (Chrome trace thread_name metadata).
// Naming the same lane twice keeps the first name.
func (r *Recorder) NameLane(track Track, lane int, name string) {
	if !r.TracingEnabled() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ln := range r.lanes {
		if ln.Track == track && ln.Lane == lane {
			return
		}
	}
	r.lanes = append(r.lanes, LaneName{track, lane, name})
}

// ObserveHist adds one observation to the named histogram. For bulk
// observation from a worker, fill a local Hist and MergeHist it once.
func (r *Recorder) ObserveHist(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.histByName(name).Observe(v)
	r.mu.Unlock()
}

// MergeHist folds a worker-local histogram into the named one. Sums
// and counts are integers, so merge order cannot change the snapshot.
func (r *Recorder) MergeHist(name string, h *Hist) {
	if r == nil || h == nil || h.Count == 0 {
		return
	}
	r.mu.Lock()
	r.histByName(name).merge(h)
	r.mu.Unlock()
}

// histByName returns the named histogram, creating it; callers hold mu.
func (r *Recorder) histByName(name string) *Hist {
	i, ok := r.histIdx[name]
	if !ok {
		i = len(r.hists)
		r.histIdx[name] = i
		r.hists = append(r.hists, Hist{Name: name})
	}
	return &r.hists[i]
}

// Snapshot is the full immutable state of a Recorder: the flat summary
// plus spans, events, histograms and lane labels, all in deterministic
// order (spans by track and ID, events by track, span, name and
// attributes, histograms and lanes sorted). Only spans that have Ended
// by snapshot time are included.
type Snapshot struct {
	Summary  *Summary
	Spans    []Span
	Events   []Event
	Hists    []Hist
	Lanes    []LaneName
	Counters []Counter // sorted by name (Summary keeps first-use order)
}

// Snapshot captures the recorder. The recorder remains usable.
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	sum := r.Summary()
	r.mu.Lock()
	s := &Snapshot{
		Summary: sum,
		Spans:   append([]Span(nil), r.spans...),
		Events:  append([]Event(nil), r.events...),
		Hists:   append([]Hist(nil), r.hists...),
		Lanes:   append([]LaneName(nil), r.lanes...),
	}
	r.mu.Unlock()
	s.Counters = append([]Counter(nil), sum.Counters...)
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Spans, func(i, j int) bool {
		a, b := s.Spans[i], s.Spans[j]
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.StartNS < b.StartNS
	})
	sort.Slice(s.Events, func(i, j int) bool { return eventKey(s.Events[i]) < eventKey(s.Events[j]) })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	sort.Slice(s.Lanes, func(i, j int) bool {
		a, b := s.Lanes[i], s.Lanes[j]
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Lane < b.Lane
	})
	return s
}

// eventKey is the deterministic sort key of an event. Real-track
// timestamps are scheduling-dependent and deliberately excluded:
// identity comes from the owning span, name and attributes.
func eventKey(e Event) string {
	k := fmt.Sprintf("%d|%020d|%s", e.Track, e.SpanID, e.Name)
	for _, a := range e.Attrs {
		k += "|" + a.Key + "=" + a.Value
	}
	if e.Track == TrackSim {
		k += fmt.Sprintf("|%020d", e.TSNS)
	}
	return k
}
