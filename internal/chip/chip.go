// Package chip models the study's six GPUs (Table I of the paper):
// two Nvidia (Quadro M4000, GTX 1080), two Intel (HD 5500, Iris 6100),
// one AMD (Radeon R9) and one ARM (Mali-T628).
//
// A Chip carries the architectural performance parameters that the
// paper's optimisations interact with (Table VI): kernel launch and
// copy-back latency, global barrier cost, aggregate edge throughput,
// atomic RMW cost, barrier throughput at subgroup and workgroup level,
// memory-divergence sensitivity, and occupancy behaviour at the two
// workgroup sizes. The parameters are calibrated so each chip exhibits
// the behaviours the paper documents for it (Section VIII, Table IX,
// Table X and Figure 5); see DESIGN.md section 4 for the target list.
package chip

import "fmt"

// Chip describes one GPU platform, including its runtime environment
// (the paper's "chip" explicitly includes driver and OS effects).
type Chip struct {
	// Name is the study-wide short name (Table I).
	Name string
	// Vendor is the GPU vendor.
	Vendor string
	// Arch is the microarchitecture / tier.
	Arch string
	// OS is the host operating system used in the study.
	OS string
	// CUs is the number of compute units.
	CUs int
	// SubgroupSize is the hardware subgroup (warp/wavefront) width; 1
	// on MALI, which exposes no subgroups.
	SubgroupSize int
	// Discrete is true for discrete boards (PCIe transfer costs).
	Discrete bool

	// LaunchNS is the kernel launch latency in model nanoseconds.
	// Nvidia's lean runtime makes this far lower than the other
	// vendors' OpenCL stacks - the root cause of Figure 5.
	LaunchNS float64
	// CopyNS is the cost of the per-iteration host<->device copy of
	// the fixpoint flag.
	CopyNS float64
	// GlobalBarrierNS is the cost of one portable global barrier
	// round (the oitergb synchronisation substitute for a launch).
	GlobalBarrierNS float64
	// GBOccupancyPenalty multiplies compute time of outlined kernels:
	// the persistent-thread execution environment required by the
	// portable barrier restricts occupancy slightly.
	GBOccupancyPenalty float64

	// EdgeThroughput is aggregate useful work throughput in work
	// units (edges) per nanosecond at full occupancy.
	EdgeThroughput float64
	// ItemOverheadNS is the fixed per-work-item scheduling cost.
	ItemOverheadNS float64

	// AtomicNS is the effective cost of one contended global atomic
	// RMW (worklist push); AtomicDataNS of a data atomic (min/CAS on
	// application arrays, spread over many addresses).
	AtomicNS     float64
	AtomicDataNS float64
	// JITCombinesAtomics is true when the vendor's OpenCL JIT already
	// performs subgroup atomic combining, making coop-cv redundant
	// (observed for both Nvidia chips and Intel HD5500, Section VIII-b).
	JITCombinesAtomics bool
	// CombineEfficiency scales the ideal subgroup-sized combining
	// factor to the achieved one (R9: 64-wide subgroup but ~22x).
	CombineEfficiency float64
	// CoopOverheadNS is the per-edge-visit orchestration cost coop-cv
	// adds (predicated local-memory staging plus subgroup
	// communication, executed uniformly by all lanes), spread across
	// the chip's compute units.
	CoopOverheadNS float64

	// SubgroupBarrierNS is the cost of one subgroup barrier; zero on
	// lockstep hardware where it compiles away.
	SubgroupBarrierNS float64
	// WorkgroupBarrierNS is the cost of one workgroup barrier at
	// workgroup size 128; at 256 it costs WGBarrier256Factor more.
	WorkgroupBarrierNS float64
	WGBarrier256Factor float64
	// LocalMemNS is the per-access local memory / cache-hit latency.
	LocalMemNS float64
	// LineFetchNS is the cost of one global memory line transaction
	// (used by the work-item simulator in internal/ocl).
	LineFetchNS float64
	// CacheLinesPerCU is the per-CU cache capacity in lines available
	// to one workgroup; drift beyond it causes thrashing (Table X's
	// m-divg microbenchmark).
	CacheLinesPerCU int

	// FG1CostPerEdge and FG8CostPerEdge are the fine-grained
	// scheduler's overhead per edge, in work units. They capture how
	// well the vendor's compiler handles the linearised inner loop:
	// cheap on Nvidia and AMD (where the paper finds fg8 nearly always
	// wins, CL > .85), expensive on Intel (CL < .6).
	FG1CostPerEdge float64
	FG8CostPerEdge float64

	// DivergencePenaltyNS is the extra cost per irregular global
	// access caused by intra-workgroup memory divergence. MALI's
	// small, easily-thrashed caches make this enormous (Table X,
	// m-divg row: 6.45x from a gratuitous barrier).
	DivergencePenaltyNS float64
	// BarrierDivergenceRelief is the fraction of the divergence
	// penalty removed when barriers keep the workgroup's threads on
	// the same loop iteration (the Section VIII-c effect).
	BarrierDivergenceRelief float64

	// Occupancy256 multiplies throughput when sz256 is enabled
	// (workgroup-local resource limits; >1 means 256 helps).
	Occupancy256 float64
	// MaxWorkgroup is the largest supported workgroup size.
	MaxWorkgroup int

	// NoiseSigma is the log-normal run-to-run timing jitter. OpenCL
	// has no device timers, so all chips carry some; the embedded
	// MALI platform is noisiest.
	NoiseSigma float64
}

// Names of the study's chips.
const (
	M4000   = "M4000"
	GTX1080 = "GTX1080"
	HD5500  = "HD5500"
	IRIS    = "IRIS"
	R9      = "R9"
	MALI    = "MALI"
)

// All returns the six chips of the study in Table I order.
func All() []Chip {
	return []Chip{
		{
			Name: M4000, Vendor: "Nvidia", Arch: "Maxwell", OS: "Linux",
			CUs: 13, SubgroupSize: 32, Discrete: true,
			LaunchNS: 5000, CopyNS: 2600, GlobalBarrierNS: 5600, GBOccupancyPenalty: 1.12,
			EdgeThroughput: 2.6, ItemOverheadNS: 0.55,
			AtomicNS: 4.5, AtomicDataNS: 2.2,
			JITCombinesAtomics: true, CombineEfficiency: 0.35, CoopOverheadNS: 6.5,
			SubgroupBarrierNS: 0, WorkgroupBarrierNS: 28, WGBarrier256Factor: 2.3,
			FG1CostPerEdge: 0.75, FG8CostPerEdge: 0.04,
			LineFetchNS: 30, CacheLinesPerCU: 6,
			LocalMemNS: 0.9, DivergencePenaltyNS: 0.40, BarrierDivergenceRelief: 0.30,
			Occupancy256: 1.06, MaxWorkgroup: 1024, NoiseSigma: 0.030,
		},
		{
			Name: GTX1080, Vendor: "Nvidia", Arch: "Pascal", OS: "Linux",
			CUs: 20, SubgroupSize: 32, Discrete: true,
			LaunchNS: 4300, CopyNS: 2300, GlobalBarrierNS: 5200, GBOccupancyPenalty: 1.12,
			EdgeThroughput: 5.6, ItemOverheadNS: 0.4,
			AtomicNS: 3.2, AtomicDataNS: 1.5,
			JITCombinesAtomics: true, CombineEfficiency: 0.35, CoopOverheadNS: 5.6,
			SubgroupBarrierNS: 0, WorkgroupBarrierNS: 22, WGBarrier256Factor: 2.6,
			FG1CostPerEdge: 0.70, FG8CostPerEdge: 0.03,
			LineFetchNS: 26, CacheLinesPerCU: 7,
			LocalMemNS: 0.7, DivergencePenaltyNS: 0.28, BarrierDivergenceRelief: 0.26,
			Occupancy256: 0.85, MaxWorkgroup: 1024, NoiseSigma: 0.030,
		},
		{
			Name: HD5500, Vendor: "Intel", Arch: "Broadwell GT2", OS: "Windows",
			CUs: 24, SubgroupSize: 16, Discrete: false,
			LaunchNS: 26000, CopyNS: 9000, GlobalBarrierNS: 4500, GBOccupancyPenalty: 1.15,
			EdgeThroughput: 0.85, ItemOverheadNS: 1.1,
			AtomicNS: 6.5, AtomicDataNS: 3.4,
			JITCombinesAtomics: true, CombineEfficiency: 0.5, CoopOverheadNS: 21.0,
			SubgroupBarrierNS: 1, WorkgroupBarrierNS: 44, WGBarrier256Factor: 2.4,
			FG1CostPerEdge: 1.60, FG8CostPerEdge: 0.85,
			LineFetchNS: 38, CacheLinesPerCU: 6,
			LocalMemNS: 1.5, DivergencePenaltyNS: 0.75, BarrierDivergenceRelief: 0.24,
			Occupancy256: 0.97, MaxWorkgroup: 256, NoiseSigma: 0.035,
		},
		{
			Name: IRIS, Vendor: "Intel", Arch: "Broadwell GT3", OS: "Windows",
			CUs: 47, SubgroupSize: 16, Discrete: false,
			LaunchNS: 24000, CopyNS: 8500, GlobalBarrierNS: 4500, GBOccupancyPenalty: 1.15,
			EdgeThroughput: 1.5, ItemOverheadNS: 1.0,
			AtomicNS: 25, AtomicDataNS: 4.2,
			JITCombinesAtomics: false, CombineEfficiency: 0.62, CoopOverheadNS: 2.4,
			SubgroupBarrierNS: 1, WorkgroupBarrierNS: 42, WGBarrier256Factor: 2.4,
			FG1CostPerEdge: 1.55, FG8CostPerEdge: 0.80,
			LineFetchNS: 36, CacheLinesPerCU: 6,
			LocalMemNS: 1.4, DivergencePenaltyNS: 0.70, BarrierDivergenceRelief: 0.25,
			Occupancy256: 1.0, MaxWorkgroup: 512, NoiseSigma: 0.035,
		},
		{
			Name: R9, Vendor: "AMD", Arch: "GCN", OS: "Windows",
			CUs: 28, SubgroupSize: 64, Discrete: true,
			LaunchNS: 32000, CopyNS: 16000, GlobalBarrierNS: 4000, GBOccupancyPenalty: 1.15,
			EdgeThroughput: 4.6, ItemOverheadNS: 0.5,
			AtomicNS: 32, AtomicDataNS: 5.5,
			JITCombinesAtomics: false, CombineEfficiency: 0.36, CoopOverheadNS: 1.8,
			SubgroupBarrierNS: 0, WorkgroupBarrierNS: 30, WGBarrier256Factor: 2.5,
			FG1CostPerEdge: 0.70, FG8CostPerEdge: 0.05,
			LineFetchNS: 30, CacheLinesPerCU: 3,
			LocalMemNS: 0.8, DivergencePenaltyNS: 0.45, BarrierDivergenceRelief: 0.28,
			Occupancy256: 1.02, MaxWorkgroup: 256, NoiseSigma: 0.030,
		},
		{
			Name: MALI, Vendor: "ARM", Arch: "Midgard T628", OS: "Linux",
			CUs: 4, SubgroupSize: 1, Discrete: false,
			LaunchNS: 150000, CopyNS: 42000, GlobalBarrierNS: 9000, GBOccupancyPenalty: 1.12,
			EdgeThroughput: 0.11, ItemOverheadNS: 3.2,
			AtomicNS: 8.0, AtomicDataNS: 7.0,
			JITCombinesAtomics: false, CombineEfficiency: 0.5, CoopOverheadNS: 80.0,
			SubgroupBarrierNS: 3, WorkgroupBarrierNS: 75, WGBarrier256Factor: 2.2,
			FG1CostPerEdge: 1.40, FG8CostPerEdge: 0.80,
			LineFetchNS: 120, CacheLinesPerCU: 4,
			LocalMemNS: 3.0, DivergencePenaltyNS: 16.0, BarrierDivergenceRelief: 0.88,
			Occupancy256: 0.90, MaxWorkgroup: 256, NoiseSigma: 0.040,
		},
	}
}

// ByName returns the chip with the given short name.
func ByName(name string) (Chip, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return Chip{}, fmt.Errorf("chip: unknown chip %q", name)
}

// Names returns the six chip names in Table I order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.Name
	}
	return out
}
