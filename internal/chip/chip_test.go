package chip

import "testing"

func TestAllSixChipsFourVendors(t *testing.T) {
	chips := All()
	if len(chips) != 6 {
		t.Fatalf("chip count = %d, want 6 (Table I)", len(chips))
	}
	vendors := map[string]bool{}
	names := map[string]bool{}
	for _, c := range chips {
		vendors[c.Vendor] = true
		if names[c.Name] {
			t.Errorf("duplicate chip name %s", c.Name)
		}
		names[c.Name] = true
	}
	if len(vendors) != 4 {
		t.Errorf("vendor count = %d, want 4", len(vendors))
	}
	for _, want := range []string{"Nvidia", "Intel", "AMD", "ARM"} {
		if !vendors[want] {
			t.Errorf("missing vendor %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName(MALI)
	if err != nil || c.Vendor != "ARM" {
		t.Fatalf("ByName(MALI) = %v, %v", c.Vendor, err)
	}
	if _, err := ByName("RTX9000"); err == nil {
		t.Error("expected error for unknown chip")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	want := []string{M4000, GTX1080, HD5500, IRIS, R9, MALI}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestParametersSane(t *testing.T) {
	for _, c := range All() {
		if c.CUs <= 0 || c.SubgroupSize < 1 || c.MaxWorkgroup < 128 {
			t.Errorf("%s: implausible topology %+v", c.Name, c)
		}
		for name, v := range map[string]float64{
			"LaunchNS":        c.LaunchNS,
			"CopyNS":          c.CopyNS,
			"GlobalBarrierNS": c.GlobalBarrierNS,
			"EdgeThroughput":  c.EdgeThroughput,
			"AtomicNS":        c.AtomicNS,
			"LineFetchNS":     c.LineFetchNS,
			"NoiseSigma":      c.NoiseSigma,
		} {
			if v <= 0 {
				t.Errorf("%s: %s = %v, want > 0", c.Name, name, v)
			}
		}
		if c.GBOccupancyPenalty < 1 {
			t.Errorf("%s: GB occupancy penalty %v < 1", c.Name, c.GBOccupancyPenalty)
		}
		if c.CacheLinesPerCU < 1 {
			t.Errorf("%s: cache lines %d", c.Name, c.CacheLinesPerCU)
		}
	}
}

// The paper-documented per-chip characteristics that everything else
// calibrates against.
func TestPaperCharacteristics(t *testing.T) {
	byName := map[string]Chip{}
	for _, c := range All() {
		byName[c.Name] = c
	}

	// Table I topology.
	if byName[MALI].SubgroupSize != 1 {
		t.Error("MALI must have subgroup size 1")
	}
	if byName[R9].SubgroupSize != 64 {
		t.Error("R9 must have subgroup size 64")
	}
	if byName[M4000].SubgroupSize != 32 || byName[GTX1080].SubgroupSize != 32 {
		t.Error("Nvidia subgroup size must be 32")
	}

	// Figure 5: Nvidia has the cheapest launches, MALI the dearest.
	for _, c := range All() {
		if c.Vendor == "Nvidia" {
			continue
		}
		if c.LaunchNS <= byName[GTX1080].LaunchNS || c.LaunchNS <= byName[M4000].LaunchNS {
			t.Errorf("%s launch (%v) should exceed Nvidia's", c.Name, c.LaunchNS)
		}
	}
	for _, c := range All() {
		if c.Name != MALI && c.LaunchNS >= byName[MALI].LaunchNS {
			t.Errorf("%s launch should be below MALI's", c.Name)
		}
	}

	// Section VIII-b: Nvidia and HD5500 JITs combine atomics; R9, IRIS
	// and MALI do not.
	for name, want := range map[string]bool{
		M4000: true, GTX1080: true, HD5500: true,
		IRIS: false, R9: false, MALI: false,
	} {
		if byName[name].JITCombinesAtomics != want {
			t.Errorf("%s JIT combining = %v, want %v", name, !want, want)
		}
	}

	// Section VIII-c: MALI is by far the most divergence-sensitive.
	for _, c := range All() {
		if c.Name == MALI {
			continue
		}
		if c.DivergencePenaltyNS*5 > byName[MALI].DivergencePenaltyNS {
			t.Errorf("%s divergence penalty too close to MALI's", c.Name)
		}
	}

	// oitergb economics: for non-Nvidia chips a global barrier round is
	// far cheaper than launch+copy; on Nvidia they are comparable.
	for _, c := range All() {
		ratio := (c.LaunchNS + c.CopyNS) / c.GlobalBarrierNS
		if c.Vendor == "Nvidia" {
			if ratio < 0.8 || ratio > 2.2 {
				t.Errorf("%s launch/barrier ratio %v should be near break-even", c.Name, ratio)
			}
		} else if ratio < 3 {
			t.Errorf("%s launch/barrier ratio %v should be >= 3", c.Name, ratio)
		}
	}
}
