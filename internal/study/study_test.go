package study

import (
	"testing"

	"gpuport/internal/analysis"
	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/graph"
	"gpuport/internal/measure"
)

// smallStudy builds a fast, restricted study for API tests that should
// not pay for the full sweep.
func smallStudy(t *testing.T) *Study {
	t.Helper()
	bfs, _ := apps.ByName("bfs-wl")
	sssp, _ := apps.ByName("sssp-nf")
	s, err := New(measure.Options{
		Seed:   5,
		Runs:   3,
		Chips:  chip.All()[:3],
		Apps:   []apps.App{bfs, sssp},
		Inputs: []*graph.Graph{graph.GenerateRoad("st-road", 30, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStrategiesList(t *testing.T) {
	s := smallStudy(t)
	strategies := s.Strategies()
	if len(strategies) != 10 {
		t.Fatalf("strategies = %d, want 10", len(strategies))
	}
	if strategies[0].Name != "baseline" || strategies[9].Name != "oracle" {
		t.Errorf("strategy order: %s ... %s", strategies[0].Name, strategies[9].Name)
	}
}

func TestFromDatasetSharesData(t *testing.T) {
	s := smallStudy(t)
	clone := FromDataset(s.Dataset())
	if clone.Dataset() != s.Dataset() {
		t.Error("FromDataset should wrap the same dataset")
	}
	// Independent caches: both can analyse without interfering.
	a := s.PerChip().Strategy
	b := clone.PerChip().Strategy
	for _, tp := range s.Dataset().Tuples()[:3] {
		if a.Config(tp) != b.Config(tp) {
			t.Errorf("same data, different recommendations on %v", tp)
		}
	}
}

func TestSamplingCurveAPI(t *testing.T) {
	s := smallStudy(t)
	pts := s.SamplingCurve(analysis.Dims{}, []float64{0.5, 1.0}, 2, 9)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].MeanAgreement < 0.999 {
		t.Errorf("full sample agreement = %v", pts[1].MeanAgreement)
	}
}

func TestCrossValidateAPI(t *testing.T) {
	s := smallStudy(t)
	results := s.CrossValidate(analysis.LOOApp)
	if len(results) != 2 {
		t.Fatalf("folds = %d, want 2 apps", len(results))
	}
}

func TestInputTransfer(t *testing.T) {
	bfs, _ := apps.ByName("bfs-wl")
	pr, _ := apps.ByName("pr-residual")
	base := measure.Options{
		Seed:  4,
		Runs:  3,
		Chips: chip.All()[:2],
		Apps:  []apps.App{bfs, pr},
	}
	res, err := InputTransfer(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalA == "" || res.GlobalB == "" {
		t.Errorf("missing global picks: %+v", res)
	}
	if res.ChipAgreement < 0.5 {
		t.Errorf("cross-domain agreement = %v, want >= 0.5 for same input classes", res.ChipAgreement)
	}
	if res.RankTau < 0.4 {
		t.Errorf("cross-domain rank tau = %v, want >= 0.4", res.RankTau)
	}
}

func TestSeedStability(t *testing.T) {
	bfs, _ := apps.ByName("bfs-wl")
	base := measure.Options{
		Runs:   3,
		Chips:  chip.All()[:2],
		Apps:   []apps.App{bfs},
		Inputs: []*graph.Graph{graph.GenerateUniform("st-rand", 800, 5, 3)},
	}
	res, err := SeedStability(base, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 || len(res.RankTau) != 3 || len(res.ChipAgreement) != 3 {
		t.Fatalf("result shape %+v", res)
	}
	if res.RankTau[0] != 1 || res.ChipAgreement[0] != 1 {
		t.Errorf("reference seed should self-agree: %+v", res)
	}
	for i := 1; i < 3; i++ {
		// Rankings built from the same model under different noise must
		// stay strongly correlated.
		if res.RankTau[i] < 0.6 {
			t.Errorf("seed %d rank tau = %v, want >= 0.6", res.Seeds[i], res.RankTau[i])
		}
		if res.ChipAgreement[i] < 0.6 {
			t.Errorf("seed %d chip agreement = %v, want >= 0.6", res.Seeds[i], res.ChipAgreement[i])
		}
	}
}
