package study

// This file is the reproduction gate: it runs the full study once and
// asserts the qualitative findings of the paper (the calibration
// targets listed in DESIGN.md section 4). If the chip models or the
// cost model drift, these tests say exactly which paper result broke.

import (
	"sync"
	"testing"

	"gpuport/internal/analysis"
	"gpuport/internal/chip"
	"gpuport/internal/dataset"
	"gpuport/internal/opt"
)

var (
	studyOnce sync.Once
	theStudy  *Study
	studyErr  error
)

func fullStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		theStudy, studyErr = Default()
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return theStudy
}

func TestDatasetShape(t *testing.T) {
	d := fullStudy(t).Dataset()
	if got := len(d.Tuples()); got != 306 {
		t.Errorf("tuples = %d, want 306 (6 chips x 17 apps x 3 inputs)", got)
	}
	if got := d.Len(); got != 306*96 {
		t.Errorf("records = %d, want %d", got, 306*96)
	}
}

// decisions returns the per-chip flag decisions keyed by chip and flag.
func chipDecisions(t *testing.T) map[string]map[opt.Flag]analysis.FlagDecision {
	t.Helper()
	spec := fullStudy(t).PerChip()
	out := map[string]map[opt.Flag]analysis.FlagDecision{}
	for _, p := range spec.Partitions {
		m := map[opt.Flag]analysis.FlagDecision{}
		for _, dec := range p.Decisions {
			m[dec.Flag] = dec
		}
		out[p.Key.Chip] = m
	}
	return out
}

// TestTableIXRecommendations checks the headline per-chip structure of
// Table IX.
func TestTableIXRecommendations(t *testing.T) {
	dec := chipDecisions(t)

	// coop-cv: enabled exactly on R9 and IRIS (Section VIII-b).
	for name, want := range map[string]bool{
		chip.R9: true, chip.IRIS: true,
		chip.M4000: false, chip.GTX1080: false, chip.HD5500: false, chip.MALI: false,
	} {
		if got := dec[name][opt.FlagCoopCV].Enabled; got != want {
			t.Errorf("coop-cv on %s = %v, want %v", name, got, want)
		}
	}

	// sg: enabled on every chip - including MALI, despite its trivial
	// subgroups (Section VIII-c).
	for _, name := range chip.Names() {
		if !dec[name][opt.FlagSG].Enabled {
			t.Errorf("sg should be enabled on %s", name)
		}
	}

	// wg: enabled nowhere, but with a non-zero effect size.
	for _, name := range chip.Names() {
		d := dec[name][opt.FlagWG]
		if d.Enabled {
			t.Errorf("wg should not be enabled on %s", name)
		}
		if d.CL <= 0 || d.CL >= 0.5 {
			t.Errorf("wg CL on %s = %v, want small but non-zero", name, d.CL)
		}
	}

	// fg8: enabled everywhere it matters; nearly always wins on Nvidia
	// and AMD (CL > .85), notably weaker on Intel.
	for _, name := range []string{chip.M4000, chip.GTX1080, chip.R9} {
		d := dec[name][opt.FlagFG8]
		if !d.Enabled || d.CL < 0.85 {
			t.Errorf("fg8 on %s: enabled=%v CL=%v, want enabled with CL > .85", name, d.Enabled, d.CL)
		}
	}
	for _, name := range []string{chip.HD5500, chip.IRIS} {
		d := dec[name][opt.FlagFG8]
		if d.CL >= 0.85 {
			t.Errorf("fg8 on %s CL = %v, want below the Nvidia/AMD band", name, d.CL)
		}
	}

	// oitergb: enabled on every chip except the two Nvidia ones, whose
	// launches are too cheap for outlining to pay (Section VIII-a).
	for name, want := range map[string]bool{
		chip.HD5500: true, chip.IRIS: true, chip.R9: true, chip.MALI: true,
		chip.M4000: false, chip.GTX1080: false,
	} {
		if got := dec[name][opt.FlagOiterGB].Enabled; got != want {
			t.Errorf("oitergb on %s = %v, want %v", name, got, want)
		}
	}

	// sz256: never recommended.
	for _, name := range chip.Names() {
		if dec[name][opt.FlagSZ256].Enabled {
			t.Errorf("sz256 should not be enabled on %s", name)
		}
	}
}

// TestGlobalStrategyIsPaperPick: the fully-portable strategy must land
// on the paper's choice {sg, fg8, oitergb} - and in particular reject
// coop-cv, whose wins on R9/IRIS a magnitude-based analysis overweights.
func TestGlobalStrategyIsPaperPick(t *testing.T) {
	cfg := fullStudy(t).Global().Strategy.Config(dataset.Tuple{})
	want := opt.Config{SG: true, FG: opt.FG8, OiterGB: true}
	if cfg != want {
		t.Errorf("global strategy = %v, want %v", cfg, want)
	}
}

func TestTableIIEnvelope(t *testing.T) {
	s := fullStudy(t)
	for _, e := range s.Extremes() {
		// Every chip has serious headroom in both directions.
		if e.MaxSpeedup < 3 {
			t.Errorf("%s max speedup %v, want >= 3x", e.Chip, e.MaxSpeedup)
		}
		if e.MaxSlowdown < 4 {
			t.Errorf("%s max slowdown %v, want >= 4x", e.Chip, e.MaxSlowdown)
		}
		// The envelope lives on the road network (the paper: "the input
		// in every case turns out to be usa.ny").
		if e.SlowdownInput != "usa.ny" {
			t.Errorf("%s worst slowdown on %s, want usa.ny", e.Chip, e.SlowdownInput)
		}
		// Nothing should explode beyond the paper's ~22x order.
		if e.MaxSlowdown > 60 || e.MaxSpeedup > 30 {
			t.Errorf("%s envelope implausible: +%vx -%vx", e.Chip, e.MaxSpeedup, e.MaxSlowdown)
		}
	}
	// The cross-vendor envelope exceeds the Nvidia-only one (Section
	// II-B: prior Nvidia-only studies missed the full range).
	byChip := map[string]analysis.Extreme{}
	for _, e := range s.Extremes() {
		byChip[e.Chip] = e
	}
	nvidiaMax := byChip[chip.M4000].MaxSpeedup
	if byChip[chip.GTX1080].MaxSpeedup > nvidiaMax {
		nvidiaMax = byChip[chip.GTX1080].MaxSpeedup
	}
	crossMax := nvidiaMax
	for _, e := range s.Extremes() {
		if e.MaxSpeedup > crossMax {
			crossMax = e.MaxSpeedup
		}
	}
	if crossMax <= nvidiaMax {
		t.Errorf("cross-vendor max speedup %v should exceed Nvidia-only %v", crossMax, nvidiaMax)
	}
}

func TestOracleGeoMeanModest(t *testing.T) {
	// Section II-B: the oracle's aggregate win is modest (paper: 1.5x)
	// despite the large individual extremes.
	got := analysis.MaxOracleGeoMean(fullStudy(t).Dataset())
	if got < 1.2 || got > 2.6 {
		t.Errorf("oracle geomean = %v, want modest (1.2-2.6)", got)
	}
}

// TestTableIIIShape checks the global ranking's paper structure.
func TestTableIIIShape(t *testing.T) {
	s := fullStudy(t)
	ranks := s.Ranks()
	if len(ranks) != 95 {
		t.Fatalf("ranks = %d", len(ranks))
	}
	// "Do no harm" fails: even the least harmful combination causes
	// slowdowns somewhere.
	if ranks[0].Slowdowns == 0 {
		t.Errorf("rank 0 (%v) causes no slowdowns; the do-no-harm pitfall needs some", ranks[0].Config)
	}
	// The bottom of the table is wg-without-fg combinations, mostly
	// with sz256.
	for i := len(ranks) - 5; i < len(ranks); i++ {
		r := ranks[i]
		if !r.Config.WG || r.Config.FG != opt.FGOff {
			t.Errorf("bottom rank %d = %v, want a wg-without-fg combination", i, r.Config)
		}
		if r.GeoMean > 0.8 {
			t.Errorf("bottom rank %d geomean = %v, want clearly harmful", i, r.GeoMean)
		}
	}
	// wg with fg8 is benign: it must rank in the top half.
	for _, r := range ranks {
		if r.Config == (opt.Config{WG: true, FG: opt.FG8, SG: true, OiterGB: true}) {
			if r.Rank > len(ranks)/2 {
				t.Errorf("sg,wg,fg8,oitergb ranked %d; fg should neutralise wg", r.Rank)
			}
		}
	}
}

// TestFigure1Shape checks the cross-chip heatmap structure.
func TestFigure1Shape(t *testing.T) {
	h := fullStudy(t).Heatmap()
	idx := map[string]int{}
	for i, c := range h.Rows {
		idx[c] = i
	}
	for i := range h.Rows {
		if h.Cell[i][i] < 0.999 || h.Cell[i][i] > 1.001 {
			t.Errorf("diagonal for %s = %v, want 1.0", h.Rows[i], h.Cell[i][i])
		}
		for j := range h.Cols {
			if i != j && h.Cell[i][j] < 1.0 {
				t.Errorf("cell [%s][%s] = %v below 1: impossible vs own optimum",
					h.Rows[i], h.Cols[j], h.Cell[i][j])
			}
		}
	}
	// Section II-A: no chip-specialised strategy is fully portable -
	// every off-diagonal column geomean is at least ~1.1.
	for j, c := range h.Cols {
		if h.ColMeanOffDiag[j] < 1.08 {
			t.Errorf("off-diagonal geomean for %s settings = %v, want >= 1.08", c, h.ColMeanOffDiag[j])
		}
	}
	// The Intel pair ports well relative to the rest.
	intelCell := h.Cell[idx[chip.HD5500]][idx[chip.IRIS]]
	if intelCell > 1.12 {
		t.Errorf("HD5500 under IRIS settings = %v, want close to 1", intelCell)
	}
	// Generational asymmetry: GTX1080 suffers more under M4000 settings
	// than M4000 does under GTX1080 settings.
	newUnderOld := h.Cell[idx[chip.GTX1080]][idx[chip.M4000]]
	oldUnderNew := h.Cell[idx[chip.M4000]][idx[chip.GTX1080]]
	if newUnderOld <= oldUnderNew {
		t.Errorf("generational asymmetry missing: GTX1080@M4000 %v vs M4000@GTX1080 %v",
			newUnderOld, oldUnderNew)
	}
	// MALI is among the most fragile chips under foreign settings.
	maliRow := h.RowMean[idx[chip.MALI]]
	better := 0
	for i := range h.Rows {
		if i != idx[chip.MALI] && h.RowMean[i] > maliRow {
			better++
		}
	}
	if better > 1 {
		t.Errorf("MALI row geomean %v should be among the two worst", maliRow)
	}
}

// TestFigure3And4Shape checks the specialisation trade-off curves.
func TestFigure3And4Shape(t *testing.T) {
	s := fullStudy(t)
	evals, excluded := s.Evaluations()
	byName := map[string]analysis.StrategyEval{}
	for _, e := range evals {
		byName[e.Name] = e
	}

	total := byName["baseline"].Tests()
	if total == 0 {
		t.Fatal("no improvable tests")
	}
	// A sizeable fraction of tests is non-improvable (paper: 43%).
	frac := float64(excluded) / float64(excluded+total)
	if frac < 0.10 || frac > 0.55 {
		t.Errorf("excluded fraction = %v, want 0.10-0.55", frac)
	}

	base := byName["baseline"]
	if base.Speedups != 0 || base.Slowdowns != 0 {
		t.Errorf("baseline outcomes %+v", base)
	}
	oracle := byName["oracle"]
	if oracle.Slowdowns != 0 {
		t.Errorf("oracle has %d slowdowns", oracle.Slowdowns)
	}
	if float64(oracle.Speedups)/float64(total) < 0.9 {
		t.Errorf("oracle speedups %d of %d, want ~all", oracle.Speedups, total)
	}

	global := byName["global"]
	// The portable strategy helps the majority of improvable tests
	// (paper: 62%).
	if sf := float64(global.Speedups) / float64(total); sf < 0.5 {
		t.Errorf("global speedup fraction = %v, want >= 0.5", sf)
	}
	// Figure 4 ordering: oracle <= full specialisation <= global <=
	// baseline in geomean-vs-oracle.
	full := byName["chip_app_input"]
	if !(oracle.GeoMeanSlowdownVsOracle <= full.GeoMeanSlowdownVsOracle+1e-9 &&
		full.GeoMeanSlowdownVsOracle <= global.GeoMeanSlowdownVsOracle+1e-9 &&
		global.GeoMeanSlowdownVsOracle <= base.GeoMeanSlowdownVsOracle+1e-9) {
		t.Errorf("vs-oracle ordering broken: oracle %v, full %v, global %v, baseline %v",
			oracle.GeoMeanSlowdownVsOracle, full.GeoMeanSlowdownVsOracle,
			global.GeoMeanSlowdownVsOracle, base.GeoMeanSlowdownVsOracle)
	}
	// Global beats not-optimising clearly (paper: 1.15x, ours richer).
	if global.GeoMeanVsBaseline < 1.1 {
		t.Errorf("global vs baseline = %v, want >= 1.1", global.GeoMeanVsBaseline)
	}
	// Chip is the best single specialisation dimension for speedups
	// (paper Section VII).
	if byName["chip"].Speedups < byName["app"].Speedups ||
		byName["chip"].Speedups < byName["input"].Speedups {
		t.Errorf("chip (%d) should beat app (%d) and input (%d) in speedups",
			byName["chip"].Speedups, byName["app"].Speedups, byName["input"].Speedups)
	}
}

// TestFigure2Shape: sg appears broadly in top-speedup configurations,
// most of all on MALI; oitergb appears heavily on expensive-launch
// chips and least on Nvidia.
func TestFigure2Shape(t *testing.T) {
	ffs := analysis.TopSpeedupOpts(fullStudy(t).Dataset())
	byChip := map[string]analysis.FlagFrequency{}
	for _, ff := range ffs {
		byChip[ff.Chip] = ff
	}
	for _, name := range []string{chip.HD5500, chip.IRIS, chip.R9, chip.MALI} {
		nv := byChip[chip.GTX1080]
		if float64(byChip[name].Count[opt.FlagOiterGB])/float64(byChip[name].Tests) <=
			float64(nv.Count[opt.FlagOiterGB])/float64(nv.Tests) {
			t.Errorf("%s should need oitergb more often than GTX1080", name)
		}
	}
	mali := byChip[chip.MALI]
	if float64(mali.Count[opt.FlagSG])/float64(mali.Tests) < 0.5 {
		t.Errorf("MALI should need sg in most top configs: %d of %d",
			mali.Count[opt.FlagSG], mali.Tests)
	}
}

func TestStudyCachesAreStable(t *testing.T) {
	s := fullStudy(t)
	if s.Ranks()[0].Config != s.Ranks()[0].Config {
		t.Error("unreachable")
	}
	a := s.PerChip()
	b := s.PerChip()
	if a != b {
		t.Error("PerChip should return the cached specialisation")
	}
	e1, x1 := s.Evaluations()
	e2, x2 := s.Evaluations()
	if len(e1) != len(e2) || x1 != x2 {
		t.Error("Evaluations not cached consistently")
	}
}
