// Package study is the top-level facade: it ties dataset collection,
// the portability analysis and the microbenchmarks together and caches
// intermediate results, so the CLI, the examples and the benchmark
// harness all drive the same pipeline.
package study

import (
	"sync"

	"gpuport/internal/analysis"
	"gpuport/internal/dataset"
	"gpuport/internal/graph"
	"gpuport/internal/measure"
)

// Study wraps a collected dataset with lazily-computed, cached analysis
// results. Safe for concurrent readers.
type Study struct {
	d *dataset.Dataset
	// rep is the collection report when the study collected its own
	// dataset; nil for FromDataset (e.g. CSV-loaded) studies.
	rep *measure.Report

	ranksOnce sync.Once
	ranks     []analysis.ConfigRank

	specMu sync.Mutex
	specs  map[string]*analysis.Specialisation

	oracleOnce sync.Once
	oracle     *analysis.Strategy

	evalOnce sync.Once
	evals    []analysis.StrategyEval
	excluded int

	heatOnce sync.Once
	heat     *analysis.Heatmap

	extremesOnce sync.Once
	extremes     []analysis.Extreme
}

// New collects a dataset with the given options and wraps it together
// with the collection report. Under fault injection the dataset may be
// partial; the analysis degrades to the covered cells and Coverage
// reports how much of the intended sweep is present.
func New(o measure.Options) (*Study, error) {
	d, rep, err := measure.CollectReport(o)
	if err != nil {
		return nil, err
	}
	s := FromDataset(d)
	s.rep = rep
	return s, nil
}

// Default runs the standard full study (seed 42, 3 runs).
func Default() (*Study, error) {
	return New(measure.Options{Seed: 42, Runs: 3})
}

// FromDataset wraps an existing dataset (e.g. loaded from CSV).
func FromDataset(d *dataset.Dataset) *Study {
	return &Study{d: d, specs: make(map[string]*analysis.Specialisation)}
}

// Dataset returns the underlying dataset.
func (s *Study) Dataset() *dataset.Dataset { return s.d }

// Report returns the collection report, or nil when the study wraps a
// pre-existing dataset.
func (s *Study) Report() *measure.Report { return s.rep }

// Coverage returns the fraction of the intended sweep that was
// measured (1 when the study has no collection report).
func (s *Study) Coverage() float64 { return s.rep.Coverage() }

// Ranks returns the global configuration ranking (Table III).
func (s *Study) Ranks() []analysis.ConfigRank {
	s.ranksOnce.Do(func() { s.ranks = analysis.RankConfigs(s.d) })
	return s.ranks
}

// Specialise returns the (cached) Algorithm 1 result for dims.
func (s *Study) Specialise(dims analysis.Dims) *analysis.Specialisation {
	s.specMu.Lock()
	defer s.specMu.Unlock()
	key := dims.Name()
	if sp, ok := s.specs[key]; ok {
		return sp
	}
	sp := analysis.Specialise(s.d, dims)
	s.specs[key] = sp
	return sp
}

// Global returns the fully-portable strategy's analysis.
func (s *Study) Global() *analysis.Specialisation {
	return s.Specialise(analysis.Dims{})
}

// PerChip returns the chip-specialised analysis (Table IX).
func (s *Study) PerChip() *analysis.Specialisation {
	return s.Specialise(analysis.Dims{Chip: true})
}

// Oracle returns the per-test-best strategy.
func (s *Study) Oracle() *analysis.Strategy {
	s.oracleOnce.Do(func() { s.oracle = analysis.Oracle(s.d) })
	return s.oracle
}

// Strategies returns the ten standard strategies: baseline, the eight
// specialisations, oracle.
func (s *Study) Strategies() []*analysis.Strategy {
	out := []*analysis.Strategy{analysis.Baseline()}
	for _, dims := range analysis.AllDims() {
		out = append(out, s.Specialise(dims).Strategy)
	}
	return append(out, s.Oracle())
}

// Evaluations returns the Figure 3 / Figure 4 evaluations over the
// improvable test subset, plus the number of excluded tests.
func (s *Study) Evaluations() ([]analysis.StrategyEval, int) {
	s.evalOnce.Do(func() {
		s.evals, s.excluded = analysis.EvaluateAll(s.d, s.Strategies())
	})
	return s.evals, s.excluded
}

// Heatmap returns the Figure 1 cross-chip portability heatmap.
func (s *Study) Heatmap() *analysis.Heatmap {
	s.heatOnce.Do(func() { s.heat = analysis.CrossChipHeatmap(s.d) })
	return s.heat
}

// Extremes returns Table II.
func (s *Study) Extremes() []analysis.Extreme {
	s.extremesOnce.Do(func() { s.extremes = analysis.Extremes(s.d) })
	return s.extremes
}

// SamplingCurve runs the Section IX subsampling sufficiency experiment
// at the given specialisation (not cached: parameterised).
func (s *Study) SamplingCurve(dims analysis.Dims, fractions []float64, trials int, seed uint64) []analysis.SamplingPoint {
	return analysis.SamplingCurve(s.d, dims, fractions, trials, seed)
}

// CrossValidate runs leave-one-out prediction along the dimension.
func (s *Study) CrossValidate(dim analysis.LOODimension) []analysis.LOOResult {
	return analysis.CrossValidate(s.d, dim)
}

// SeedStabilityResult reports how the study's conclusions move when the
// measurement noise stream changes.
type SeedStabilityResult struct {
	// Seeds are the evaluated noise seeds; the first is the reference.
	Seeds []uint64
	// GlobalConfigs holds each seed's fully-portable recommendation.
	GlobalConfigs []string
	// RankTau[i] is the Kendall tau-b between seed i's Table III
	// ranking and the reference seed's (RankTau[0] == 1).
	RankTau []float64
	// ChipAgreement[i] is the fraction of per-chip flag decisions
	// matching the reference seed's (ChipAgreement[0] == 1).
	ChipAgreement []float64
}

// TransferResult reports whether recommendations derived on one input
// domain survive on a fresh domain of the same structural classes.
type TransferResult struct {
	// GlobalA and GlobalB are the fully-portable picks on each domain.
	GlobalA, GlobalB string
	// ChipAgreement is the fraction of per-chip flag decisions that
	// match across domains; ChipUndecided the fraction domain B could
	// not decide.
	ChipAgreement, ChipUndecided float64
	// RankTau correlates the Table III rankings of the two domains.
	RankTau float64
}

// InputTransfer collects two datasets - the standard inputs and the
// extended (fresh, larger) inputs of the same classes - and compares
// the conclusions. High agreement means the study's recommendations
// describe the input *classes*, not the specific graphs measured.
func InputTransfer(base measure.Options) (*TransferResult, error) {
	stdOpts := base
	stdOpts.Inputs = graph.StandardInputs()
	extOpts := base
	extOpts.Inputs = graph.ExtendedInputs()

	std, err := New(stdOpts)
	if err != nil {
		return nil, err
	}
	ext, err := New(extOpts)
	if err != nil {
		return nil, err
	}
	res := &TransferResult{
		GlobalA: std.Global().Strategy.Config(dataset.Tuple{}).String(),
		GlobalB: ext.Global().Strategy.Config(dataset.Tuple{}).String(),
		RankTau: analysis.RankCorrelation(std.Ranks(), ext.Ranks()),
	}
	res.ChipAgreement, res.ChipUndecided = analysis.AgreementBetween(std.PerChip(), ext.PerChip())
	return res, nil
}

// SeedStability re-collects the dataset under each seed (first seed =
// this study's data is NOT reused; the sweep re-runs so options other
// than Seed must be supplied) and compares rankings and per-chip
// decisions across seeds.
func SeedStability(base measure.Options, seeds []uint64) (*SeedStabilityResult, error) {
	res := &SeedStabilityResult{Seeds: seeds}
	var refRanks []analysis.ConfigRank
	var refChip *analysis.Specialisation
	for i, seed := range seeds {
		o := base
		o.Seed = seed
		s, err := New(o)
		if err != nil {
			return nil, err
		}
		ranks := s.Ranks()
		chipSpec := s.PerChip()
		res.GlobalConfigs = append(res.GlobalConfigs,
			s.Global().Strategy.Config(dataset.Tuple{}).String())
		if i == 0 {
			refRanks, refChip = ranks, chipSpec
			res.RankTau = append(res.RankTau, 1)
			res.ChipAgreement = append(res.ChipAgreement, 1)
			continue
		}
		res.RankTau = append(res.RankTau, analysis.RankCorrelation(refRanks, ranks))
		agree, _ := analysis.AgreementBetween(refChip, chipSpec)
		res.ChipAgreement = append(res.ChipAgreement, agree)
	}
	return res, nil
}
