package study

import (
	"testing"

	"gpuport/internal/analysis"
	"gpuport/internal/apps"
	"gpuport/internal/chip"
	"gpuport/internal/fault"
	"gpuport/internal/graph"
	"gpuport/internal/measure"
)

func faultedStudyOptions() measure.Options {
	bfs, _ := apps.ByName("bfs-wl")
	sssp, _ := apps.ByName("sssp-nf")
	return measure.Options{
		Seed:   5,
		Runs:   3,
		Chips:  chip.All()[:3],
		Apps:   []apps.App{bfs, sssp},
		Inputs: []*graph.Graph{graph.GenerateRoad("st-road", 30, 2)},
	}
}

func TestStudyReportsCoverage(t *testing.T) {
	s := smallStudy(t)
	if s.Report() == nil {
		t.Fatal("collected study has no report")
	}
	if s.Coverage() != 1 || !s.Report().Complete() {
		t.Errorf("clean study coverage = %v", s.Coverage())
	}
	// CSV-loaded studies have no report and vacuous full coverage.
	loaded := FromDataset(s.Dataset())
	if loaded.Report() != nil || loaded.Coverage() != 1 {
		t.Errorf("FromDataset study: report %v, coverage %v",
			loaded.Report(), loaded.Coverage())
	}
}

// TestStudySurvivesChipDropout is the end-to-end graceful-degradation
// acceptance at the facade level: a whole chip drops out mid-sweep and
// the full study pipeline still runs on the partial dataset.
func TestStudySurvivesChipDropout(t *testing.T) {
	o := faultedStudyOptions()
	o.Faults = &fault.Profile{Seed: 4, Dropout: 1}
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep == nil || rep.DropoutChip == "" {
		t.Fatalf("dropout did not fire: %+v", rep)
	}
	if s.Coverage() >= 1 || s.Coverage() <= 0 {
		t.Fatalf("coverage = %v, want strictly partial", s.Coverage())
	}

	if got := len(s.Ranks()); got == 0 {
		t.Error("Ranks empty on partial dataset")
	}
	if s.Global().Strategy == nil || s.PerChip().Strategy == nil {
		t.Fatal("specialisation degenerated on partial dataset")
	}
	if got := len(s.Strategies()); got != 10 {
		t.Errorf("strategies = %d, want 10", got)
	}
	evals, _ := s.Evaluations()
	if len(evals) != 10 {
		t.Errorf("evaluations = %d, want 10", len(evals))
	}
	if s.Heatmap() == nil {
		t.Error("heatmap nil on partial dataset")
	}
	if len(s.Extremes()) == 0 {
		t.Error("extremes empty on partial dataset")
	}
	if got := s.Specialise(analysis.Dims{Chip: true, App: true}); got == nil {
		t.Error("deep specialisation nil on partial dataset")
	}
}

func TestSeedStabilityUnderFaults(t *testing.T) {
	o := faultedStudyOptions()
	o.Faults = &fault.Profile{Seed: 6, Transient: 0.05, Corrupt: 0.03}
	res, err := SeedStability(o, []uint64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RankTau) != 2 || len(res.ChipAgreement) != 2 {
		t.Fatalf("malformed result: %+v", res)
	}
	if res.RankTau[0] != 1 || res.ChipAgreement[0] != 1 {
		t.Errorf("reference seed must self-agree: %+v", res)
	}
}
