// Package microbench implements the three microbenchmarks the paper
// uses to dissect chip-specific optimisation choices (Section VIII):
//
//   - sg-cmb: N atomic fetch-adds on one location, with and without
//     subgroup combining (explains coop-cv's per-chip behaviour);
//   - m-divg: a strided-access loop with and without a gratuitous
//     workgroup barrier (explains sg on MALI);
//   - launch overhead: many constant-time kernel launches interleaved
//     with a tiny copy-back, reported as GPU utilisation (Figure 5,
//     explains oitergb's absence on Nvidia).
//
// The first two run as actual kernels on the internal/ocl lockstep
// simulator; the third sweeps the chip's launch/copy parameters exactly
// as the paper's calibration loop does.
package microbench

import (
	"gpuport/internal/chip"
	"gpuport/internal/ocl"
)

// SGCmbN is the atomic invocation count used by Table X (the paper
// uses N = 20000).
const SGCmbN = 20000

// Speedup is one microbenchmark outcome on one chip.
type Speedup struct {
	Chip string
	// Base and Optimised are the modelled times of the two variants.
	Base, Optimised float64
	// Factor is Base / Optimised (above 1 = the optimised variant wins).
	Factor float64
}

// SGCombine runs the sg-cmb microbenchmark on ch: N atomic adds to a
// single location versus the subgroup-combined version.
func SGCombine(ch chip.Chip, n int) Speedup {
	dev := &ocl.Device{Chip: ch}
	atomicKernel := func(combine bool) ocl.Kernel {
		return ocl.Kernel{
			Name:  "sg-cmb",
			Items: n,
			// One atomic per lane, all to element 0.
			Rounds:         1,
			At:             func(lane, round int) ocl.Access { return ocl.Access{Addr: 0, Atomic: true} },
			CombineAtomics: combine,
		}
	}
	base := dev.Run(atomicKernel(false)).TimeNS
	comb := dev.Run(atomicKernel(true)).TimeNS
	return Speedup{Chip: ch.Name, Base: base, Optimised: comb, Factor: base / comb}
}

// MDivgItems and MDivgRounds size the m-divg strided loop.
const (
	MDivgItems  = 16384
	MDivgRounds = 64
)

// MemDivergence runs the m-divg microbenchmark on ch: every lane walks
// a large array with a workgroup-wide stride; one variant inserts a
// gratuitous barrier each iteration so lanes stay within one iteration
// of each other, the other lets subgroups drift.
func MemDivergence(ch chip.Chip) Speedup {
	dev := &ocl.Device{Chip: ch}
	strided := func(barrier int) ocl.Kernel {
		return ocl.Kernel{
			Name:   "m-divg",
			Items:  MDivgItems,
			Rounds: MDivgRounds,
			At: func(lane, round int) ocl.Access {
				// Strided sharing: in each iteration all lanes of a
				// workgroup touch the same small block, so an
				// in-sync workgroup reuses two cache lines per round
				// while a drifted one spreads across the window.
				wg := lane / 128
				l := lane % 128
				return ocl.Access{Addr: int64(wg*32*(MDivgRounds+2) + round*32 + l%32)}
			},
			BarrierEvery: barrier,
		}
	}
	noBar := dev.Run(strided(0)).TimeNS
	withBar := dev.Run(strided(1)).TimeNS
	return Speedup{Chip: ch.Name, Base: noBar, Optimised: withBar, Factor: noBar / withBar}
}

// TableX computes both microbenchmark rows for the given chips.
func TableX(chips []chip.Chip) (sgcmb, mdivg []Speedup) {
	for _, ch := range chips {
		sgcmb = append(sgcmb, SGCombine(ch, SGCmbN))
		mdivg = append(mdivg, MemDivergence(ch))
	}
	return sgcmb, mdivg
}

// UtilisationPoint is one point of Figure 5.
type UtilisationPoint struct {
	KernelNS    float64
	Utilisation float64 // fraction of wall time spent in kernels
}

// LaunchOverheadLaunches is the launch count of the Figure 5 procedure
// (the paper launches 10000 constant-time kernels).
const LaunchOverheadLaunches = 10000

// LaunchOverhead sweeps constant-time kernel durations and reports GPU
// utilisation: kernels of duration t launched back to back with a
// 4-byte copy between each, so utilisation = t / (t + launch + copy).
func LaunchOverhead(ch chip.Chip, kernelNS []float64) []UtilisationPoint {
	out := make([]UtilisationPoint, 0, len(kernelNS))
	for _, t := range kernelNS {
		total := float64(LaunchOverheadLaunches) * (t + ch.LaunchNS + ch.CopyNS)
		busy := float64(LaunchOverheadLaunches) * t
		out = append(out, UtilisationPoint{KernelNS: t, Utilisation: busy / total})
	}
	return out
}

// Figure5Sweep is the standard kernel-duration sweep (model ns).
func Figure5Sweep() []float64 {
	return []float64{1000, 3000, 10000, 30000, 100000, 300000, 1000000}
}
