package microbench

import (
	"testing"

	"gpuport/internal/chip"
)

func factors(t *testing.T) (map[string]float64, map[string]float64) {
	t.Helper()
	sgcmb, mdivg := TableX(chip.All())
	a := map[string]float64{}
	b := map[string]float64{}
	for _, s := range sgcmb {
		a[s.Chip] = s.Factor
	}
	for _, s := range mdivg {
		b[s.Chip] = s.Factor
	}
	return a, b
}

// TestSGCmbMatchesPaper checks the Table X sg-cmb row: large combining
// wins only on R9 (~22x) and IRIS (~8x); roughly neutral-to-slightly-
// negative elsewhere (Nvidia/HD5500 JITs already combine; MALI has no
// subgroups).
func TestSGCmbMatchesPaper(t *testing.T) {
	sgcmb, _ := factors(t)
	if v := sgcmb[chip.R9]; v < 15 || v > 30 {
		t.Errorf("R9 sg-cmb = %v, want ~22x", v)
	}
	if v := sgcmb[chip.IRIS]; v < 5 || v > 12 {
		t.Errorf("IRIS sg-cmb = %v, want ~8x", v)
	}
	for _, name := range []string{chip.M4000, chip.GTX1080, chip.HD5500, chip.MALI} {
		if v := sgcmb[name]; v < 0.5 || v > 1.3 {
			t.Errorf("%s sg-cmb = %v, want no speedup (~0.75-1.0)", name, v)
		}
	}
}

// TestMDivgMatchesPaper checks the Table X m-divg row: every chip
// benefits from the gratuitous barrier, MALI spectacularly (~6.45x).
func TestMDivgMatchesPaper(t *testing.T) {
	_, mdivg := factors(t)
	if v := mdivg[chip.MALI]; v < 4.5 || v > 8.5 {
		t.Errorf("MALI m-divg = %v, want ~6.45x", v)
	}
	for _, name := range []string{chip.M4000, chip.GTX1080, chip.HD5500, chip.IRIS, chip.R9} {
		v := mdivg[name]
		if v < 1.0 || v > 2.5 {
			t.Errorf("%s m-divg = %v, want a mild benefit (1.0-2.5x)", name, v)
		}
		if v > mdivg[chip.MALI]/2 {
			t.Errorf("%s m-divg %v should be far below MALI's %v", name, v, mdivg[chip.MALI])
		}
	}
}

func TestSGCombineConsistency(t *testing.T) {
	for _, ch := range chip.All() {
		s := SGCombine(ch, SGCmbN)
		if s.Base <= 0 || s.Optimised <= 0 {
			t.Errorf("%s: non-positive times %v/%v", ch.Name, s.Base, s.Optimised)
		}
		if got := s.Base / s.Optimised; got != s.Factor {
			t.Errorf("%s: factor inconsistent", ch.Name)
		}
	}
}

func TestUtilisationProperties(t *testing.T) {
	sweep := Figure5Sweep()
	for _, ch := range chip.All() {
		points := LaunchOverhead(ch, sweep)
		if len(points) != len(sweep) {
			t.Fatalf("%s: %d points for %d durations", ch.Name, len(points), len(sweep))
		}
		prev := -1.0
		for _, p := range points {
			if p.Utilisation <= 0 || p.Utilisation >= 1 {
				t.Errorf("%s: utilisation %v out of (0,1)", ch.Name, p.Utilisation)
			}
			if p.Utilisation <= prev {
				t.Errorf("%s: utilisation not increasing with kernel time", ch.Name)
			}
			prev = p.Utilisation
		}
	}
}

// TestFigure5Ordering: at every kernel duration Nvidia shows the
// highest utilisation and MALI the lowest (the paper's explanation for
// oitergb's absence on Nvidia).
func TestFigure5Ordering(t *testing.T) {
	sweep := Figure5Sweep()
	util := map[string][]UtilisationPoint{}
	for _, ch := range chip.All() {
		util[ch.Name] = LaunchOverhead(ch, sweep)
	}
	for i := range sweep {
		for _, name := range []string{chip.HD5500, chip.IRIS, chip.R9, chip.MALI} {
			if util[name][i].Utilisation >= util[chip.GTX1080][i].Utilisation {
				t.Errorf("at %vns, %s utilisation >= GTX1080", sweep[i], name)
			}
			if util[name][i].Utilisation >= util[chip.M4000][i].Utilisation {
				t.Errorf("at %vns, %s utilisation >= M4000", sweep[i], name)
			}
		}
		for _, name := range []string{chip.M4000, chip.GTX1080, chip.HD5500, chip.IRIS, chip.R9} {
			if util[chip.MALI][i].Utilisation >= util[name][i].Utilisation {
				t.Errorf("at %vns, MALI utilisation >= %s", sweep[i], name)
			}
		}
	}
}
