package dataset

import (
	"bytes"
	"strings"
	"testing"

	"gpuport/internal/opt"
)

func sample(t Tuple, cfg opt.Config, xs ...float64) Record {
	return Record{Key: Key{t, cfg}, Samples: xs}
}

func tup(c, a, i string) Tuple { return Tuple{Chip: c, App: a, Input: i} }

func buildSmall() *Dataset {
	d := New()
	t1 := tup("chipA", "app1", "in1")
	t2 := tup("chipB", "app1", "in1")
	d.Add(sample(t1, opt.Config{}, 100, 101, 99))
	d.Add(sample(t1, opt.Config{SG: true}, 50, 51, 49))
	d.Add(sample(t1, opt.Config{WG: true}, 200, 201, 199))
	d.Add(sample(t2, opt.Config{}, 10, 10, 10))
	d.Add(sample(t2, opt.Config{SG: true}, 20, 21, 19))
	return d
}

func TestAddAndQuery(t *testing.T) {
	d := buildSmall()
	if d.Len() != 5 {
		t.Fatalf("len = %d", d.Len())
	}
	s := d.Samples(tup("chipA", "app1", "in1"), opt.Config{SG: true})
	if len(s) != 3 || s[0] != 50 {
		t.Errorf("samples = %v", s)
	}
	if s := d.Samples(tup("nope", "x", "y"), opt.Config{}); s != nil {
		t.Errorf("missing key should return nil, got %v", s)
	}
	m, ok := d.Mean(tup("chipB", "app1", "in1"), opt.Config{})
	if !ok || m != 10 {
		t.Errorf("mean = %v, %v", m, ok)
	}
}

func TestAddReplaces(t *testing.T) {
	d := buildSmall()
	n := d.Len()
	d.Add(sample(tup("chipA", "app1", "in1"), opt.Config{}, 500))
	if d.Len() != n {
		t.Errorf("replacement changed len to %d", d.Len())
	}
	m, _ := d.Mean(tup("chipA", "app1", "in1"), opt.Config{})
	if m != 500 {
		t.Errorf("replacement not applied: %v", m)
	}
}

func TestDimensions(t *testing.T) {
	d := buildSmall()
	if got := d.Chips(); len(got) != 2 || got[0] != "chipA" {
		t.Errorf("chips = %v", got)
	}
	if got := d.Apps(); len(got) != 1 {
		t.Errorf("apps = %v", got)
	}
	if got := d.Inputs(); len(got) != 1 {
		t.Errorf("inputs = %v", got)
	}
}

func TestTuplesSortedAndDistinct(t *testing.T) {
	d := buildSmall()
	tuples := d.Tuples()
	if len(tuples) != 2 {
		t.Fatalf("tuples = %v", tuples)
	}
	if tuples[0].Chip != "chipA" || tuples[1].Chip != "chipB" {
		t.Errorf("tuples unsorted: %v", tuples)
	}
	filtered := d.TuplesWhere(func(tp Tuple) bool { return tp.Chip == "chipB" })
	if len(filtered) != 1 || filtered[0].Chip != "chipB" {
		t.Errorf("filtered = %v", filtered)
	}
}

func TestBestConfig(t *testing.T) {
	d := buildSmall()
	cfg, mean, ok := d.BestConfig(tup("chipA", "app1", "in1"))
	if !ok || !cfg.SG || mean != 50 {
		t.Errorf("best = %v %v %v", cfg, mean, ok)
	}
	// chipB's baseline is fastest.
	cfg, _, ok = d.BestConfig(tup("chipB", "app1", "in1"))
	if !ok || !cfg.IsBaseline() {
		t.Errorf("chipB best = %v", cfg)
	}
	if _, _, ok := d.BestConfig(tup("none", "x", "y")); ok {
		t.Error("missing tuple should report !ok")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := buildSmall()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip len %d, want %d", got.Len(), d.Len())
	}
	for _, tp := range d.Tuples() {
		for _, cfg := range opt.All() {
			want := d.Samples(tp, cfg)
			have := got.Samples(tp, cfg)
			if len(want) != len(have) {
				t.Fatalf("%v/%v: %v vs %v", tp, cfg, want, have)
			}
			for i := range want {
				if want[i] != have[i] {
					t.Fatalf("%v/%v sample %d: %v vs %v", tp, cfg, i, want[i], have[i])
				}
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b,c\n1,2,3\n",
		"bad config":   "chip,app,input,config,run1\nc,a,i,zzz,1\n",
		"bad float":    "chip,app,input,config,run1\nc,a,i,baseline,xx\n",
		"no samples":   "chip,app,input,config,run1\nc,a,i,baseline,\n",
		"neg sample":   "chip,app,input,config,run1\nc,a,i,baseline,-5\n",
		"short record": "chip,app,input,config,run1\nc,a\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCSVHeaderRunColumns(t *testing.T) {
	d := New()
	d.Add(sample(tup("c", "a", "i"), opt.Config{}, 1, 2, 3, 4))
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if first != "chip,app,input,config,run1,run2,run3,run4" {
		t.Errorf("header = %q", first)
	}
}

func TestRecordMean(t *testing.T) {
	r := sample(tup("c", "a", "i"), opt.Config{}, 2, 4, 6)
	if r.Mean() != 4 {
		t.Errorf("mean = %v", r.Mean())
	}
}

func TestTupleString(t *testing.T) {
	if got := tup("c", "a", "i").String(); got != "c/a/i" {
		t.Errorf("tuple string = %q", got)
	}
}
