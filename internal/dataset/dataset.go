// Package dataset holds the study's empirical data: timed samples for
// every (chip, application, input, configuration) combination, with
// indexing, querying and CSV round-tripping.
//
// The full study is 6 chips x 17 applications x 3 inputs x 96
// configurations x 3 runs = 88,128 timings.
package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gpuport/internal/opt"
)

// Tuple identifies one test: a chip, application, input triple (the
// paper's "(application, input, chip)" unit).
type Tuple struct {
	Chip  string
	App   string
	Input string
}

// String renders the tuple for reports.
func (t Tuple) String() string {
	return fmt.Sprintf("%s/%s/%s", t.Chip, t.App, t.Input)
}

// Key identifies one measured cell: a tuple under a configuration.
type Key struct {
	Tuple
	Config opt.Config
}

// Record is the measured data for one key.
type Record struct {
	Key
	// Samples holds the timed runs (model nanoseconds).
	Samples []float64
}

// Mean returns the arithmetic mean of the samples.
func (r *Record) Mean() float64 {
	s := 0.0
	for _, x := range r.Samples {
		s += x
	}
	return s / float64(len(r.Samples))
}

// Dataset is the indexed collection of records.
type Dataset struct {
	records []Record
	index   map[Key]int

	chips  []string
	apps   []string
	inputs []string
}

// New returns an empty dataset.
func New() *Dataset {
	return &Dataset{index: make(map[Key]int)}
}

// Add inserts or replaces the record for its key.
func (d *Dataset) Add(rec Record) {
	if i, ok := d.index[rec.Key]; ok {
		d.records[i] = rec
		return
	}
	d.index[rec.Key] = len(d.records)
	d.records = append(d.records, rec)
	d.chips = addUnique(d.chips, rec.Chip)
	d.apps = addUnique(d.apps, rec.App)
	d.inputs = addUnique(d.inputs, rec.Input)
}

func addUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.records) }

// Chips, Apps and Inputs return the dimension values in insertion order.
func (d *Dataset) Chips() []string  { return append([]string(nil), d.chips...) }
func (d *Dataset) Apps() []string   { return append([]string(nil), d.apps...) }
func (d *Dataset) Inputs() []string { return append([]string(nil), d.inputs...) }

// Samples returns the timed runs for a key, or nil when absent.
func (d *Dataset) Samples(t Tuple, cfg opt.Config) []float64 {
	if i, ok := d.index[Key{t, cfg}]; ok {
		return d.records[i].Samples
	}
	return nil
}

// Mean returns the mean runtime for a key, or NaN-free 0 with ok=false
// when absent.
func (d *Dataset) Mean(t Tuple, cfg opt.Config) (float64, bool) {
	if i, ok := d.index[Key{t, cfg}]; ok {
		return d.records[i].Mean(), true
	}
	return 0, false
}

// Tuples returns all distinct tuples in deterministic order.
func (d *Dataset) Tuples() []Tuple {
	seen := map[Tuple]bool{}
	var out []Tuple
	for _, r := range d.records {
		if !seen[r.Tuple] {
			seen[r.Tuple] = true
			out = append(out, r.Tuple)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Chip != out[j].Chip {
			return out[i].Chip < out[j].Chip
		}
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].Input < out[j].Input
	})
	return out
}

// TuplesWhere returns tuples passing the filter, in the same order as
// Tuples.
func (d *Dataset) TuplesWhere(keep func(Tuple) bool) []Tuple {
	var out []Tuple
	for _, t := range d.Tuples() {
		if keep(t) {
			out = append(out, t)
		}
	}
	return out
}

// BestConfig returns the configuration with the lowest mean runtime for
// the tuple (the per-tuple oracle) and that runtime.
func (d *Dataset) BestConfig(t Tuple) (opt.Config, float64, bool) {
	best := opt.Config{}
	bestTime := 0.0
	found := false
	for _, cfg := range opt.All() {
		m, ok := d.Mean(t, cfg)
		if !ok {
			continue
		}
		if !found || m < bestTime {
			best, bestTime, found = cfg, m, true
		}
	}
	return best, bestTime, found
}

// TupleCoverage returns the fraction of the configuration grid that has
// data for the tuple (1 for a fully swept tuple, 0 for an absent one).
func (d *Dataset) TupleCoverage(t Tuple) float64 {
	configs := opt.All()
	have := 0
	for _, cfg := range configs {
		if _, ok := d.index[Key{t, cfg}]; ok {
			have++
		}
	}
	return float64(have) / float64(len(configs))
}

// Coverage returns the fraction of the chips x apps x inputs x configs
// grid spanned by the dataset's own dimensions that has data. Note this
// is relative to the dimensions the dataset knows about: a chip that
// produced no records at all does not shrink Coverage - the collection
// report (internal/measure) is the authoritative account of the
// intended sweep.
func (d *Dataset) Coverage() float64 {
	grid := len(d.chips) * len(d.apps) * len(d.inputs) * len(opt.All())
	if grid == 0 {
		return 1
	}
	return float64(len(d.records)) / float64(grid)
}

// MissingCells lists every (tuple, config) hole in the grid spanned by
// the dataset's dimensions, in dimension insertion order then config
// order. A complete dataset returns nil.
func (d *Dataset) MissingCells() []Key {
	var out []Key
	configs := opt.All()
	for _, ch := range d.chips {
		for _, app := range d.apps {
			for _, in := range d.inputs {
				t := Tuple{Chip: ch, App: app, Input: in}
				for _, cfg := range configs {
					if _, ok := d.index[Key{t, cfg}]; !ok {
						out = append(out, Key{t, cfg})
					}
				}
			}
		}
	}
	return out
}

// WriteCSV serialises the dataset: header then one row per record with
// samples in fixed columns.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	maxSamples := 0
	for _, r := range d.records {
		if len(r.Samples) > maxSamples {
			maxSamples = len(r.Samples)
		}
	}
	header := []string{"chip", "app", "input", "config"}
	for i := 0; i < maxSamples; i++ {
		header = append(header, fmt.Sprintf("run%d", i+1))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range d.records {
		row := []string{r.Chip, r.App, r.Input, r.Config.String()}
		for _, s := range r.Samples {
			row = append(row, strconv.FormatFloat(s, 'g', 17, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV deserialises a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	head := rows[0]
	if len(head) < 5 || head[0] != "chip" || head[3] != "config" {
		return nil, fmt.Errorf("dataset: unexpected header %v", head)
	}
	d := New()
	for i, row := range rows[1:] {
		if len(row) < 5 {
			return nil, fmt.Errorf("dataset: row %d has %d fields", i+2, len(row))
		}
		cfg, err := opt.Parse(row[3])
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", i+2, err)
		}
		rec := Record{Key: Key{Tuple{row[0], row[1], row[2]}, cfg}}
		for _, f := range row[4:] {
			if strings.TrimSpace(f) == "" {
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d: %w", i+2, err)
			}
			if v <= 0 {
				return nil, fmt.Errorf("dataset: row %d: non-positive sample %v", i+2, v)
			}
			rec.Samples = append(rec.Samples, v)
		}
		if len(rec.Samples) == 0 {
			return nil, fmt.Errorf("dataset: row %d: no samples", i+2)
		}
		d.Add(rec)
	}
	return d, nil
}
