package dataset

import (
	"bytes"
	"math"
	"testing"

	"gpuport/internal/opt"
)

// buildPartial returns a dataset with holes: tuple t1 fully swept, t2
// covering half the grid, t3 a single cell with a short (quarantined)
// sample list.
func buildPartial() (*Dataset, Tuple, Tuple, Tuple) {
	d := New()
	t1 := tup("chipA", "app1", "in1")
	t2 := tup("chipB", "app1", "in1")
	t3 := tup("chipC", "app1", "in1")
	configs := opt.All()
	for i, cfg := range configs {
		d.Add(sample(t1, cfg, 100+float64(i), 101, 99))
		if i%2 == 0 {
			d.Add(sample(t2, cfg, 50+float64(i), 51, 49))
		}
	}
	d.Add(sample(t3, configs[0], 7.25, 7.5)) // 2 of 3 runs survived
	return d, t1, t2, t3
}

func TestTupleCoverage(t *testing.T) {
	d, t1, t2, t3 := buildPartial()
	if c := d.TupleCoverage(t1); c != 1 {
		t.Errorf("full tuple coverage = %v", c)
	}
	if c := d.TupleCoverage(t2); math.Abs(c-0.5) > 0.01 {
		t.Errorf("half tuple coverage = %v", c)
	}
	want := 1.0 / float64(len(opt.All()))
	if c := d.TupleCoverage(t3); math.Abs(c-want) > 1e-12 {
		t.Errorf("single-cell coverage = %v, want %v", c, want)
	}
	if c := d.TupleCoverage(tup("ghost", "x", "y")); c != 0 {
		t.Errorf("absent tuple coverage = %v", c)
	}
}

func TestCoverageAndMissingCells(t *testing.T) {
	d, _, _, _ := buildPartial()
	nc := len(opt.All())
	wantRecords := nc + (nc+1)/2 + 1
	if d.Len() != wantRecords {
		t.Fatalf("len = %d, want %d", d.Len(), wantRecords)
	}
	grid := 3 * nc // 3 chips x 1 app x 1 input
	wantCov := float64(wantRecords) / float64(grid)
	if c := d.Coverage(); math.Abs(c-wantCov) > 1e-12 {
		t.Errorf("coverage = %v, want %v", c, wantCov)
	}
	missing := d.MissingCells()
	if len(missing) != grid-wantRecords {
		t.Fatalf("missing = %d cells, want %d", len(missing), grid-wantRecords)
	}
	for _, k := range missing {
		if d.Samples(k.Tuple, k.Config) != nil {
			t.Errorf("cell %v reported missing but has data", k)
		}
	}
	if c := New().Coverage(); c != 1 {
		t.Errorf("empty dataset coverage = %v, want 1 (vacuous)", c)
	}
	if m := buildSmallComplete().MissingCells(); m != nil {
		t.Errorf("complete dataset has missing cells: %v", m)
	}
}

// buildSmallComplete fills one tuple completely so MissingCells is nil.
func buildSmallComplete() *Dataset {
	d := New()
	t1 := tup("chipA", "app1", "in1")
	for i, cfg := range opt.All() {
		d.Add(sample(t1, cfg, float64(100+i)))
	}
	return d
}

func TestPartialCSVRoundTrip(t *testing.T) {
	d, _, t2, t3 := buildPartial()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)

	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip len %d != %d", back.Len(), d.Len())
	}
	// Holes stay holes, data stays bit-identical, ragged rows keep
	// their true sample count (no padding invented).
	for _, tp := range d.Tuples() {
		for _, cfg := range opt.All() {
			a, b := d.Samples(tp, cfg), back.Samples(tp, cfg)
			if (a == nil) != (b == nil) {
				t.Fatalf("%v/%v: presence changed across round trip", tp, cfg)
			}
			if len(a) != len(b) {
				t.Fatalf("%v/%v: %d samples became %d", tp, cfg, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v/%v sample %d: %v != %v (not bit-identical)", tp, cfg, i, a[i], b[i])
				}
			}
		}
	}
	if got := back.Samples(t3, opt.All()[0]); len(got) != 2 {
		t.Errorf("quarantined cell has %d samples after round trip, want 2", len(got))
	}
	if c := back.TupleCoverage(t2); math.Abs(c-0.5) > 0.01 {
		t.Errorf("coverage changed across round trip: %v", c)
	}

	// A second serialisation is byte-identical to the first.
	var buf2 bytes.Buffer
	if err := back.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("write -> read -> write is not byte-stable")
	}
}

func TestBestConfigOnPartialTuple(t *testing.T) {
	d, _, t2, t3 := buildPartial()
	if _, _, ok := d.BestConfig(t2); !ok {
		t.Error("half-covered tuple should still have a best config")
	}
	if cfg, v, ok := d.BestConfig(t3); !ok || v <= 0 {
		t.Errorf("single-cell tuple best = %v, %v, %v", cfg, v, ok)
	}
	if _, _, ok := d.BestConfig(tup("ghost", "x", "y")); ok {
		t.Error("absent tuple reported a best config")
	}
}
