// Package ocl is a small lockstep work-item simulator of the OpenCL
// execution hierarchy (Section IV of the paper): work-items grouped
// into subgroups, subgroups into workgroups, workgroups scheduled onto
// compute units. It executes micro-kernels - per-lane memory access
// sequences - round by round, modelling:
//
//   - caching: each workgroup sees a per-CU cache of limited line
//     capacity with LRU replacement; hits cost the chip's local-access
//     latency, misses a full line transaction;
//   - intra-workgroup drift: subgroups of a workgroup advance through
//     loops at different rates unless barriers re-align them, widening
//     the access window until it overflows the cache (the memory-
//     divergence effect of Section VIII-c that devastates MALI);
//   - atomic serialisation and subgroup combining: same-address atomics
//     from one subgroup round serialise unless combined, either by
//     coop-cv-style staging or by a JIT that combines automatically;
//   - barrier costs at workgroup granularity.
//
// The main study's cost model (internal/cost) works at trace level; this
// package exists so the paper's microbenchmarks (Table X, Figure 5) run
// as actual kernels over the simulated hierarchy rather than as closed-
// form formulas.
package ocl

import (
	"gpuport/internal/chip"
)

// LineBytes is the modelled cache-line / memory transaction size.
const LineBytes = 64

// ElemBytes is the access granularity (32-bit elements).
const ElemBytes = 4

// stagingCostFactor scales the local-memory traffic of explicit
// coop-cv-style combining (one staging write per push).
const stagingCostFactor = 0.10

// Access is one memory operation by one lane in one round.
type Access struct {
	// Addr is the element index accessed (scaled by ElemBytes for
	// line grouping). Negative means "no access this round".
	Addr int64
	// Atomic marks a global atomic RMW.
	Atomic bool
}

// NoAccess is the idle-round marker.
var NoAccess = Access{Addr: -1}

// Kernel describes a micro-kernel: every lane executes Rounds rounds,
// and At reports the access lane performs in a given logical round.
type Kernel struct {
	// Name labels the kernel in reports.
	Name string
	// Items is the global work size.
	Items int
	// Rounds is the per-lane loop trip count.
	Rounds int
	// At returns the access of global lane `lane` in its logical round
	// `round`.
	At func(lane, round int) Access
	// BarrierEvery inserts a workgroup barrier every N logical rounds,
	// re-aligning subgroup drift; 0 means no barriers (subgroups drift
	// freely).
	BarrierEvery int
	// CombineAtomics enables coop-cv style subgroup combining of
	// same-address atomics in the kernel code itself.
	CombineAtomics bool
}

// Result is the simulated execution outcome.
type Result struct {
	// TimeNS is the modelled execution time, excluding launch costs.
	TimeNS float64
	// Hits and Misses count cache outcomes of plain accesses.
	Hits, Misses int64
	// Atomics counts atomic operations issued after combining.
	Atomics int64
	// CombinedAtomics counts atomics elided by combining.
	CombinedAtomics int64
	// Barriers counts workgroup barriers executed.
	Barriers int64
}

// Device runs micro-kernels against a chip model.
type Device struct {
	Chip chip.Chip
	// WorkgroupSize defaults to 128.
	WorkgroupSize int
}

// lru is a tiny exact-LRU cache of memory lines.
type lru struct {
	cap   int
	tick  int64
	lines map[int64]int64 // line -> last use tick
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, lines: make(map[int64]int64, capacity+1)}
}

// touch returns true on a hit; on a miss the line is inserted, evicting
// the least recently used line if needed.
func (c *lru) touch(line int64) bool {
	c.tick++
	if _, ok := c.lines[line]; ok {
		c.lines[line] = c.tick
		return true
	}
	if len(c.lines) >= c.cap {
		var oldest int64
		var oldestTick int64 = 1 << 62
		for l, t := range c.lines {
			if t < oldestTick {
				oldest, oldestTick = l, t
			}
		}
		delete(c.lines, oldest)
	}
	c.lines[line] = c.tick
	return false
}

// driftOf returns the execution offset (in rounds) of a subgroup within
// its workgroup when no barrier re-aligns them. Hardware schedules
// subgroups independently; the more independent entities share a CU,
// the wider the drift window. Subgroup k runs k rounds behind the
// leader, capped at half the loop length.
func (d *Device) driftOf(subgroup, rounds int) int {
	if rounds <= 1 {
		return 0
	}
	max := rounds / 2
	if subgroup < max {
		return subgroup
	}
	return max
}

// Run simulates the kernel and returns its result.
func (d *Device) Run(k Kernel) Result {
	wg := d.WorkgroupSize
	if wg <= 0 {
		wg = 128
	}
	if wg > d.Chip.MaxWorkgroup {
		wg = d.Chip.MaxWorkgroup
	}
	sg := d.Chip.SubgroupSize
	if sg < 1 {
		sg = 1
	}
	if sg > wg {
		sg = wg
	}
	var res Result

	numWGs := (k.Items + wg - 1) / wg
	// Combining factor: explicit (coop-cv) or JIT-automatic. A factor
	// at or below one means combining degenerates to plain atomics
	// (MALI's subgroup size of 1).
	combineFactor := 1.0
	if k.CombineAtomics || d.Chip.JITCombinesAtomics {
		if f := float64(sg) * d.Chip.CombineEfficiency; f > 1 {
			combineFactor = f
		}
	}

	atomicAddrs := map[int64]int{}

	for wgID := 0; wgID < numWGs; wgID++ {
		base := wgID * wg
		lanesInWG := k.Items - base
		if lanesInWG > wg {
			lanesInWG = wg
		}
		subgroups := (lanesInWG + sg - 1) / sg
		cache := newLRU(d.Chip.CacheLinesPerCU)

		maxDrift := 0
		if k.BarrierEvery == 0 {
			for s := 0; s < subgroups; s++ {
				if dr := d.driftOf(s, k.Rounds); dr > maxDrift {
					maxDrift = dr
				}
			}
		}
		physRounds := k.Rounds + maxDrift

		for pr := 0; pr < physRounds; pr++ {
			for a := range atomicAddrs {
				delete(atomicAddrs, a)
			}
			for s := 0; s < subgroups; s++ {
				drift := 0
				if k.BarrierEvery == 0 {
					drift = d.driftOf(s, k.Rounds)
				}
				logical := pr - drift
				if logical < 0 || logical >= k.Rounds {
					continue
				}
				laneLo := s * sg
				laneHi := laneLo + sg
				if laneHi > lanesInWG {
					laneHi = lanesInWG
				}
				for l := laneLo; l < laneHi; l++ {
					acc := k.At(base+l, logical)
					if acc.Addr < 0 {
						continue
					}
					if acc.Atomic {
						atomicAddrs[acc.Addr]++
						continue
					}
					line := acc.Addr * ElemBytes / LineBytes
					if cache.touch(line) {
						res.Hits++
						res.TimeNS += d.Chip.LocalMemNS
					} else {
						res.Misses++
						res.TimeNS += d.Chip.LineFetchNS
					}
				}
			}

			// Atomics: same-address atomics combine by the subgroup
			// factor; distinct addresses serialise on the RMW unit.
			for _, count := range atomicAddrs {
				groups := int(float64(count)/combineFactor + 0.9999)
				if groups < 1 {
					groups = 1
				}
				if groups >= count {
					groups = count
				}
				res.Atomics += int64(groups)
				res.CombinedAtomics += int64(count - groups)
				res.TimeNS += float64(groups) * d.Chip.AtomicNS
				if k.CombineAtomics && combineFactor > 1 {
					// Explicit combining stages values through local
					// memory and subgroup barriers.
					res.TimeNS += float64(count) * d.Chip.LocalMemNS * stagingCostFactor
					sgCount := (count + sg - 1) / sg
					res.TimeNS += float64(2*sgCount) * d.Chip.SubgroupBarrierNS
				}
			}

			// Barriers re-align the workgroup.
			if k.BarrierEvery > 0 && (pr+1)%k.BarrierEvery == 0 {
				res.Barriers++
				res.TimeNS += d.Chip.WorkgroupBarrierNS
			}
		}
	}

	// The loop above accumulated time as if workgroups ran back to
	// back; compute units execute them concurrently, so divide by the
	// achieved parallelism (capped by the number of workgroups).
	parallel := numWGs
	if parallel > d.Chip.CUs {
		parallel = d.Chip.CUs
	}
	if parallel > 1 {
		res.TimeNS /= float64(parallel)
	}
	return res
}
