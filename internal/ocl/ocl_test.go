package ocl

import (
	"testing"

	"gpuport/internal/chip"
)

func mustChip(t *testing.T, name string) chip.Chip {
	t.Helper()
	c, err := chip.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLRUBasics(t *testing.T) {
	c := newLRU(2)
	if c.touch(1) {
		t.Error("first touch should miss")
	}
	if !c.touch(1) {
		t.Error("second touch should hit")
	}
	c.touch(2)
	c.touch(3) // evicts 1 (least recently used)
	if c.touch(1) {
		t.Error("evicted line should miss")
	}
	if !c.touch(3) {
		t.Error("line 3 should still be cached")
	}
}

func TestLRUMinCapacity(t *testing.T) {
	c := newLRU(0) // clamped to 1
	c.touch(5)
	if !c.touch(5) {
		t.Error("single-slot cache should hold the last line")
	}
	c.touch(6)
	if c.touch(5) {
		t.Error("single-slot cache should have evicted 5")
	}
}

func TestCoalescedAccessesShareLines(t *testing.T) {
	// 128 lanes reading 128 consecutive int32s touch 8 cache lines.
	d := &Device{Chip: mustChip(t, chip.GTX1080)}
	k := Kernel{
		Name:         "coalesced",
		Items:        128,
		Rounds:       1,
		At:           func(lane, round int) Access { return Access{Addr: int64(lane)} },
		BarrierEvery: 1,
	}
	res := d.Run(k)
	if res.Misses != 8 {
		t.Errorf("misses = %d, want 8 (128 x 4B / 64B lines)", res.Misses)
	}
	if res.Hits != 120 {
		t.Errorf("hits = %d, want 120", res.Hits)
	}
}

func TestScatteredAccessesMissMore(t *testing.T) {
	d := &Device{Chip: mustChip(t, chip.GTX1080)}
	scattered := Kernel{
		Name:   "scattered",
		Items:  128,
		Rounds: 1,
		At: func(lane, round int) Access {
			return Access{Addr: int64(lane) * 1000}
		},
		BarrierEvery: 1,
	}
	res := d.Run(scattered)
	if res.Misses != 128 {
		t.Errorf("scattered misses = %d, want 128", res.Misses)
	}
}

func TestAtomicCombining(t *testing.T) {
	// Same-address atomics from every lane.
	k := Kernel{
		Name:   "atomics",
		Items:  256,
		Rounds: 1,
		At:     func(lane, round int) Access { return Access{Addr: 0, Atomic: true} },
	}
	// R9 (no JIT combining): explicit combining cuts atomics hugely.
	r9 := &Device{Chip: mustChip(t, chip.R9)}
	plain := r9.Run(k)
	kc := k
	kc.CombineAtomics = true
	combined := r9.Run(kc)
	if plain.Atomics != 256 {
		t.Errorf("plain atomics = %d, want 256", plain.Atomics)
	}
	if combined.Atomics >= plain.Atomics/4 {
		t.Errorf("combined atomics = %d, want far fewer than %d", combined.Atomics, plain.Atomics)
	}
	if combined.CombinedAtomics+combined.Atomics != 256 {
		t.Errorf("combined+issued = %d, want 256", combined.CombinedAtomics+combined.Atomics)
	}
	if combined.TimeNS >= plain.TimeNS {
		t.Errorf("combining should be faster on R9: %v vs %v", combined.TimeNS, plain.TimeNS)
	}
}

func TestJITCombinesWithoutAsking(t *testing.T) {
	k := Kernel{
		Name:   "atomics",
		Items:  256,
		Rounds: 1,
		At:     func(lane, round int) Access { return Access{Addr: 0, Atomic: true} },
	}
	gtx := &Device{Chip: mustChip(t, chip.GTX1080)}
	res := gtx.Run(k)
	if res.Atomics >= 256 {
		t.Errorf("Nvidia JIT should combine: %d atomics issued", res.Atomics)
	}
}

func TestMALICombiningDegenerates(t *testing.T) {
	// Subgroup size 1: combining cannot elide anything.
	k := Kernel{
		Name:           "atomics",
		Items:          128,
		Rounds:         1,
		At:             func(lane, round int) Access { return Access{Addr: 0, Atomic: true} },
		CombineAtomics: true,
	}
	mali := &Device{Chip: mustChip(t, chip.MALI)}
	res := mali.Run(k)
	if res.Atomics != 128 || res.CombinedAtomics != 0 {
		t.Errorf("MALI combining should degenerate: issued %d, combined %d", res.Atomics, res.CombinedAtomics)
	}
}

func TestBarrierCountAndCost(t *testing.T) {
	ch := mustChip(t, chip.M4000)
	d := &Device{Chip: ch}
	k := Kernel{
		Name:         "barriers",
		Items:        128,
		Rounds:       10,
		At:           func(lane, round int) Access { return NoAccess },
		BarrierEvery: 1,
	}
	res := d.Run(k)
	if res.Barriers != 10 {
		t.Errorf("barriers = %d, want 10", res.Barriers)
	}
	if res.TimeNS != 10*ch.WorkgroupBarrierNS {
		t.Errorf("time = %v, want %v", res.TimeNS, 10*ch.WorkgroupBarrierNS)
	}
}

func TestDriftExtendsExecution(t *testing.T) {
	// Without barriers, drifted subgroups finish later but every
	// logical access still executes exactly once.
	d := &Device{Chip: mustChip(t, chip.M4000)} // 4 subgroups of 32 at wg=128
	count := 0
	k := Kernel{
		Name:   "drift",
		Items:  128,
		Rounds: 8,
		At: func(lane, round int) Access {
			count++
			return Access{Addr: int64(lane + round*128)}
		},
	}
	res := d.Run(k)
	if count != 128*8 {
		t.Errorf("accesses executed = %d, want %d", count, 128*8)
	}
	if res.Hits+res.Misses != 128*8 {
		t.Errorf("hits+misses = %d, want %d", res.Hits+res.Misses, 128*8)
	}
}

func TestWorkgroupParallelism(t *testing.T) {
	// Doubling workgroups beyond the CU count should increase time;
	// within the CU count it should not (they run concurrently).
	ch := mustChip(t, chip.MALI) // 4 CUs
	d := &Device{Chip: ch}
	mk := func(items int) Kernel {
		return Kernel{
			Name:         "wgs",
			Items:        items,
			Rounds:       4,
			At:           func(lane, round int) Access { return Access{Addr: int64(lane % 128)} },
			BarrierEvery: 1,
		}
	}
	t4 := d.Run(mk(4 * 128)).TimeNS // 4 workgroups = 4 CUs
	t8 := d.Run(mk(8 * 128)).TimeNS // 8 workgroups = 2 waves
	if t8 <= t4*1.5 {
		t.Errorf("oversubscription should slow down: %v vs %v", t8, t4)
	}
}

func TestMALIDivergenceSensitivity(t *testing.T) {
	// The structural heart of Table X m-divg: on MALI the barrier-free
	// variant must thrash while the barriered one stays cache-friendly,
	// and the contrast must far exceed any other chip's.
	strided := func(ch chip.Chip, barrier int) Result {
		d := &Device{Chip: ch}
		return d.Run(Kernel{
			Name:   "mdivg",
			Items:  2048,
			Rounds: 32,
			At: func(lane, round int) Access {
				wg := lane / 128
				return Access{Addr: int64(wg*4096 + round*32 + lane%32)}
			},
			BarrierEvery: barrier,
		})
	}
	ratio := func(name string) float64 {
		ch := mustChip(t, name)
		return strided(ch, 0).TimeNS / strided(ch, 1).TimeNS
	}
	mali := ratio(chip.MALI)
	if mali < 3 {
		t.Errorf("MALI barrier benefit = %v, want >= 3x", mali)
	}
	for _, other := range []string{chip.M4000, chip.GTX1080, chip.HD5500, chip.IRIS, chip.R9} {
		if r := ratio(other); r > mali/2 {
			t.Errorf("%s barrier benefit %v should be far below MALI's %v", other, r, mali)
		}
	}
}
