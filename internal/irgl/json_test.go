package irgl

import (
	"bytes"
	"strings"
	"testing"

	"gpuport/internal/graph"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	g := graph.GenerateUniform("json-g", 300, 5, 7)
	rt := NewRuntime("json-app", g)
	wl := NewWorklist(300)
	wl.SeedHost(0)
	rt.Iterate("loop", func(iter int) bool {
		k := rt.Launch("kernel")
		k.ForAll(wl.Items(), func(it *Item, u int32) {
			it.VisitEdges(u, func(v, w int32) {
				it.Push(wl, v)
			})
		})
		k.End()
		wl.Swap()
		return iter < 2
	})
	tr := rt.Trace()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App || got.Input != tr.Input {
		t.Errorf("identity %s/%s", got.App, got.Input)
	}
	if len(got.Launches) != len(tr.Launches) || len(got.Loops) != len(tr.Loops) {
		t.Fatalf("shape mismatch")
	}
	for i := range tr.Launches {
		if got.Launches[i] != tr.Launches[i] {
			t.Errorf("launch %d mismatch", i)
		}
	}
	for i := range tr.Loops {
		if got.Loops[i] != tr.Loops[i] {
			t.Errorf("loop %d mismatch", i)
		}
	}
}

func TestTraceJSONCompactRoundTrip(t *testing.T) {
	g := graph.GenerateUniform("json-g", 200, 4, 11)
	rt := NewRuntime("compact-app", g)
	k := rt.Launch("kernel")
	k.ForAllNodes(func(it *Item, u int32) {
		it.VisitEdges(u, func(v, w int32) {})
	})
	k.End()
	tr := rt.Trace()

	raw, err := tr.AppendJSONCompact(nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(raw, '\n') {
		t.Error("compact encoding should be a single line")
	}
	got, err := ReadTraceJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.App != tr.App || got.Input != tr.Input || len(got.Launches) != len(tr.Launches) {
		t.Fatalf("compact round-trip mismatch: %s/%s, %d launches", got.App, got.Input, len(got.Launches))
	}
	for i := range tr.Launches {
		if got.Launches[i] != tr.Launches[i] {
			t.Errorf("launch %d mismatch", i)
		}
	}
}

func TestReadTraceJSONErrors(t *testing.T) {
	if _, err := ReadTraceJSON(strings.NewReader("{nope")); err == nil {
		t.Error("bad JSON should error")
	}
	if _, err := ReadTraceJSON(strings.NewReader(`{"app":"a","input":"i","launches":[{"Items":-5}]}`)); err == nil {
		t.Error("negative counters should be rejected")
	}
}
