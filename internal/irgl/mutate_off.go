//go:build !conformmutate

package irgl

// mutation reports whether the named deliberate bug is active. Normal
// builds get a constant false (folded away); builds tagged conformmutate
// get the switchable version in mutate_on.go, driven by the conformance
// engine's mutation-sanity test. See internal/conform.
func mutation(string) bool { return false }
