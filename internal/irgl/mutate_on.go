//go:build conformmutate

package irgl

// Mutation names the active deliberate bug, or is empty for the
// unmutated runtime. It exists only under the conformmutate build tag
// and is set by the conformance engine's mutation-sanity test before
// any application runs (never concurrently with one).
//
// Known names (see the hooks in irgl.go):
//
//	skip-last-frontier - ForAll silently drops the last worklist item,
//	                     the classic off-by-one in a hand-rolled GPU
//	                     grid-stride loop
var Mutation string

func mutation(name string) bool { return Mutation == name }
