package irgl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Traces serialise to JSON for offline inspection and for the
// cmd/apptrace tool. The format is a single object:
//
//	{"app": ..., "input": ..., "launches": [...], "loops": [...]}
//
// All fields round-trip exactly; see TestTraceJSONRoundTrip.

type traceJSON struct {
	App      string        `json:"app"`
	Input    string        `json:"input"`
	Launches []KernelStats `json:"launches"`
	Loops    []LoopStats   `json:"loops,omitempty"`
}

// WriteJSON serialises the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traceJSON{t.App, t.Input, t.Launches, t.Loops}); err != nil {
		return err
	}
	return bw.Flush()
}

// AppendJSONCompact appends the trace's single-line JSON encoding to
// dst and returns the extended slice. It is the storage format of the
// trace cache: the same schema as WriteJSON without indentation, so
// ReadTraceJSON round-trips it losslessly (all counters are int64,
// which encoding/json encodes and decodes exactly).
func (t *Trace) AppendJSONCompact(dst []byte) ([]byte, error) {
	b, err := json.Marshal(traceJSON{t.App, t.Input, t.Launches, t.Loops})
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

// ReadTraceJSON deserialises a trace written by WriteJSON.
func ReadTraceJSON(r io.Reader) (*Trace, error) {
	var tj traceJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tj); err != nil {
		return nil, fmt.Errorf("irgl: decoding trace: %w", err)
	}
	tr := &Trace{App: tj.App, Input: tj.Input, Launches: tj.Launches, Loops: tj.Loops}
	for i, l := range tr.Launches {
		if l.Items < 0 || l.TotalWork < 0 {
			return nil, fmt.Errorf("irgl: launch %d has negative counters", i)
		}
	}
	return tr, nil
}
