package irgl

import "gpuport/internal/obs"

// Observability bridge: replaying a Trace onto the simulated track of
// an obs.Recorder. The virtual clock is derived purely from the trace -
// each launch occupies 1 (launch overhead) + Items + TotalWork virtual
// nanoseconds - so the emitted timeline is bit-identical across runs
// and worker counts, unlike the real harness track.

// TotalAtomicPushes sums worklist pushes across all launches.
func (t *Trace) TotalAtomicPushes() int64 {
	var sum int64
	for i := range t.Launches {
		sum += t.Launches[i].AtomicPushes
	}
	return sum
}

// launchDur is the virtual duration of one kernel launch: a fixed
// launch overhead plus one unit per work-item and per work unit. The
// absolute scale is meaningless (it is not the cost model); it only
// has to be deterministic and to order launches sensibly on a canvas.
func launchDur(k *KernelStats) int64 { return 1 + k.Items + k.TotalWork }

// EmitSim replays the trace as spans on rec's simulated track: one
// root timeline span for the pair, one span per host loop (covering
// its first through last launch) and one span per kernel launch,
// parented to its innermost loop. lane is the export thread - callers
// pass a deterministic pair index, never a worker id. No-op unless the
// recorder has the simulated timeline enabled.
func (t *Trace) EmitSim(rec *obs.Recorder, lane int) {
	if !rec.SimEnabled() {
		return
	}
	rec.NameLane(obs.TrackSim, lane, t.App+" on "+t.Input)

	// Lay launches end to end on the virtual clock.
	type interval struct{ start, dur int64 }
	ivs := make([]interval, len(t.Launches))
	var cursor int64
	for i := range t.Launches {
		d := launchDur(&t.Launches[i])
		ivs[i] = interval{cursor, d}
		cursor += d
	}
	root := rec.SimSpan(lane, 0, obs.SpanSimTimeline, 0, cursor,
		obs.String(obs.AttrApp, t.App), obs.String(obs.AttrInput, t.Input))

	// One span per host loop, spanning its first through last launch.
	// Nested loops produce overlapping spans on the same lane, which the
	// trace viewer renders stacked; launches link to the innermost loop.
	loopSpan := make(map[int]uint64, len(t.Loops))
	for _, lp := range t.Loops {
		first, end := int64(-1), int64(0)
		for i := range t.Launches {
			if t.Launches[i].LoopID != lp.ID {
				continue
			}
			if first < 0 {
				first = ivs[i].start
			}
			end = ivs[i].start + ivs[i].dur
		}
		if first < 0 {
			continue // loop body never launched a kernel
		}
		loopSpan[lp.ID] = rec.SimSpan(lane, root, lp.Name, first, end-first,
			obs.Int(obs.AttrLoop, int64(lp.ID)),
			obs.Int(obs.AttrIters, lp.Iterations))
	}

	for i := range t.Launches {
		k := &t.Launches[i]
		parent := root
		if id, ok := loopSpan[k.LoopID]; ok {
			parent = id
		}
		rec.SimSpan(lane, parent, k.Name, ivs[i].start, ivs[i].dur,
			obs.Int(obs.AttrLaunch, int64(i)),
			obs.Int(obs.AttrFrontier, k.Items),
			obs.Int(obs.AttrEdges, k.TotalWork),
			obs.Int(obs.AttrPushes, k.AtomicPushes))
	}
}
