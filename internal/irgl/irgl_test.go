package irgl

import (
	"testing"
	"testing/quick"

	"gpuport/internal/graph"
)

func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder("line", graph.ClassRoad, n)
	for i := 0; i < n-1; i++ {
		b.AddUndirected(int32(i), int32(i+1), 1)
	}
	return b.Build()
}

func starGraph(leaves int) *graph.Graph {
	b := graph.NewBuilder("star", graph.ClassSocial, leaves+1)
	for i := 1; i <= leaves; i++ {
		b.AddUndirected(0, int32(i), 1)
	}
	return b.Build()
}

func TestForAllNodesCountsItems(t *testing.T) {
	g := lineGraph(10)
	rt := NewRuntime("test", g)
	k := rt.Launch("k")
	k.ForAllNodes(func(it *Item, u int32) {
		it.VisitEdges(u, func(v, w int32) {})
	})
	k.End()
	tr := rt.Trace()
	if len(tr.Launches) != 1 {
		t.Fatalf("launches = %d", len(tr.Launches))
	}
	s := tr.Launches[0]
	if s.Items != 10 {
		t.Errorf("items = %d, want 10", s.Items)
	}
	if s.TotalWork != int64(g.NumEdges()) {
		t.Errorf("work = %d, want %d", s.TotalWork, g.NumEdges())
	}
	if s.RandomAccesses != int64(g.NumEdges()) {
		t.Errorf("random accesses = %d, want %d", s.RandomAccesses, g.NumEdges())
	}
	if s.MaxWork != 2 {
		t.Errorf("max work = %d, want 2 (interior line node)", s.MaxWork)
	}
	if s.LoopID != -1 {
		t.Errorf("top-level launch LoopID = %d, want -1", s.LoopID)
	}
}

func TestIterateTagsLaunches(t *testing.T) {
	g := lineGraph(5)
	rt := NewRuntime("test", g)
	iters := 0
	rt.Iterate("loop", func(iter int) bool {
		k := rt.Launch("body")
		k.ForAllNodes(func(it *Item, u int32) {})
		k.End()
		iters++
		return iters < 4
	})
	tr := rt.Trace()
	if len(tr.Loops) != 1 {
		t.Fatalf("loops = %d", len(tr.Loops))
	}
	if tr.Loops[0].Iterations != 4 {
		t.Errorf("iterations = %d, want 4", tr.Loops[0].Iterations)
	}
	if tr.Loops[0].Launches != 4 {
		t.Errorf("loop launches = %d, want 4", tr.Loops[0].Launches)
	}
	for _, l := range tr.Launches {
		if l.LoopID != tr.Loops[0].ID {
			t.Errorf("launch LoopID = %d, want %d", l.LoopID, tr.Loops[0].ID)
		}
	}
}

func TestNestedIterate(t *testing.T) {
	g := lineGraph(3)
	rt := NewRuntime("test", g)
	rt.Iterate("outer", func(i int) bool {
		rt.Iterate("inner", func(j int) bool {
			k := rt.Launch("inner_k")
			k.End()
			return j < 1
		})
		k := rt.Launch("outer_k")
		k.End()
		return i < 0 // single outer iteration
	})
	tr := rt.Trace()
	if len(tr.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(tr.Loops))
	}
	// Inner loop completes first; its launches carry its ID.
	inner, outer := tr.Loops[0], tr.Loops[1]
	if inner.Name != "inner" || outer.Name != "outer" {
		t.Fatalf("loop order: %q, %q", inner.Name, outer.Name)
	}
	if tr.Launches[0].LoopID != inner.ID || tr.Launches[1].LoopID != inner.ID {
		t.Error("inner launches mis-tagged")
	}
	if tr.Launches[2].LoopID != outer.ID {
		t.Error("outer launch mis-tagged")
	}
}

func TestAtomicsCountAndWork(t *testing.T) {
	g := starGraph(4)
	rt := NewRuntime("test", g)
	arr := []int32{10, 10, 10, 10, 10}
	wl := NewWorklist(5)
	k := rt.Launch("k")
	k.ForAll([]int32{0}, func(it *Item, u int32) {
		it.VisitEdges(u, func(v, w int32) {
			if it.AtomicMin(arr, v, 3) {
				it.Push(wl, v)
			}
		})
	})
	k.End()
	s := rt.Trace().Launches[0]
	if s.AtomicRMWs != 4 {
		t.Errorf("RMWs = %d, want 4", s.AtomicRMWs)
	}
	if s.AtomicPushes != 4 {
		t.Errorf("pushes = %d, want 4", s.AtomicPushes)
	}
	if wl.PendingLen() != 4 {
		t.Errorf("pending = %d, want 4", wl.PendingLen())
	}
	for i := 1; i <= 4; i++ {
		if arr[i] != 3 {
			t.Errorf("arr[%d] = %d, want 3", i, arr[i])
		}
	}
}

func TestAtomicSemantics(t *testing.T) {
	g := lineGraph(2)
	rt := NewRuntime("t", g)
	k := rt.Launch("k")
	arr := []int32{5}
	farr := []float64{1.5}
	k.ForAll([]int32{0}, func(it *Item, u int32) {
		if it.AtomicMin(arr, 0, 7) {
			t.Error("AtomicMin(7) over 5 should not improve")
		}
		if !it.AtomicMax(arr, 0, 9) {
			t.Error("AtomicMax(9) over 5 should improve")
		}
		if old := it.AtomicAdd(arr, 0, 1); old != 9 {
			t.Errorf("AtomicAdd old = %d, want 9", old)
		}
		if !it.AtomicCAS(arr, 0, 10, 20) {
			t.Error("CAS(10->20) should succeed")
		}
		if it.AtomicCAS(arr, 0, 10, 30) {
			t.Error("CAS on stale value should fail")
		}
		if old := it.AtomicAddF(farr, 0, 0.5); old != 1.5 {
			t.Errorf("AtomicAddF old = %v, want 1.5", old)
		}
	})
	k.End()
	if arr[0] != 20 || farr[0] != 2.0 {
		t.Errorf("final values %d, %v", arr[0], farr[0])
	}
}

func TestWorklistSwap(t *testing.T) {
	wl := NewWorklist(8)
	wl.SeedHost(3)
	if wl.Len() != 1 {
		t.Fatalf("len = %d", wl.Len())
	}
	g := lineGraph(4)
	rt := NewRuntime("t", g)
	k := rt.Launch("k")
	k.ForAll(wl.Items(), func(it *Item, v int32) {
		it.Push(wl, v+1)
		it.Push(wl, v+2)
	})
	k.End()
	if n := wl.Swap(); n != 2 {
		t.Fatalf("after swap len = %d, want 2", n)
	}
	if wl.PendingLen() != 0 {
		t.Error("swap should clear next buffer")
	}
	if wl.Items()[0] != 4 || wl.Items()[1] != 5 {
		t.Errorf("items = %v", wl.Items())
	}
}

func TestZeroWorkItems(t *testing.T) {
	g := starGraph(6)
	rt := NewRuntime("t", g)
	k := rt.Launch("k")
	k.ForAllNodes(func(it *Item, u int32) {
		if u == 0 {
			it.VisitEdges(u, func(v, w int32) {})
		}
		// leaves do nothing
	})
	k.End()
	s := rt.Trace().Launches[0]
	if s.ZeroWorkItems != 6 {
		t.Errorf("zero-work items = %d, want 6", s.ZeroWorkItems)
	}
	if s.TotalWork != 6 {
		t.Errorf("total work = %d, want 6", s.TotalWork)
	}
}

func TestEndTwicePanics(t *testing.T) {
	rt := NewRuntime("t", lineGraph(2))
	k := rt.Launch("k")
	k.End()
	defer func() {
		if recover() == nil {
			t.Error("second End should panic")
		}
	}()
	k.End()
}

func TestImbalanceFactorUniform(t *testing.T) {
	// All items have identical work: imbalance must be ~1 at any width.
	var s KernelStats
	s.Items = 1000
	for i := 0; i < 1000; i++ {
		s.TotalWork += 8
		s.WorkHist[3]++ // work 8 -> bucket 3
		s.WorkHistSum[3] += 8
	}
	s.MaxWork = 8
	for _, k := range []int{2, 8, 32, 64} {
		f := s.ImbalanceFactor(k)
		if f < 1 || f > 1.05 {
			t.Errorf("uniform imbalance at k=%d: %v, want ~1", k, f)
		}
	}
}

func TestImbalanceFactorSkewed(t *testing.T) {
	// 1% of items carry 1000x the work: imbalance grows with width.
	var s KernelStats
	s.Items = 1000
	for i := 0; i < 990; i++ {
		s.TotalWork += 2
		s.WorkHist[1]++
		s.WorkHistSum[1] += 2
	}
	for i := 0; i < 10; i++ {
		s.TotalWork += 2048
		s.WorkHist[11]++
		s.WorkHistSum[11] += 2048
	}
	s.MaxWork = 2048
	f8 := s.ImbalanceFactor(8)
	f64 := s.ImbalanceFactor(64)
	if f64 <= f8 {
		t.Errorf("imbalance should grow with width: f8=%v f64=%v", f8, f64)
	}
	if f64 < 3 {
		t.Errorf("heavy skew at k=64 should show large imbalance, got %v", f64)
	}
}

func TestImbalanceFactorEdgeCases(t *testing.T) {
	var s KernelStats
	if f := s.ImbalanceFactor(32); f != 1 {
		t.Errorf("empty stats imbalance = %v, want 1", f)
	}
	s.Items = 10
	s.TotalWork = 100
	s.WorkHist[3] = 10
	s.WorkHistSum[3] = 100
	if f := s.ImbalanceFactor(1); f != 1 {
		t.Errorf("width-1 imbalance = %v, want 1", f)
	}
}

func TestImbalanceFactorAtLeastOne(t *testing.T) {
	f := func(seed uint64) bool {
		var s KernelStats
		x := seed
		for b := 0; b < 12; b++ {
			x = x*6364136223846793005 + 1442695040888963407
			c := int64(x % 50)
			s.WorkHist[b] += c
			s.WorkHistSum[b] += c * int64(uint(1)<<uint(b))
			s.Items += c
			s.TotalWork += c * int64(uint(1)<<uint(b))
		}
		for _, k := range []int{2, 16, 128} {
			if s.ImbalanceFactor(k) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTraceAggregates(t *testing.T) {
	rt := NewRuntime("agg", lineGraph(6))
	for i := 0; i < 3; i++ {
		k := rt.Launch("k")
		k.ForAllNodes(func(it *Item, u int32) {
			it.Work(1)
		})
		k.End()
	}
	tr := rt.Trace()
	if tr.TotalLaunches() != 3 {
		t.Errorf("launches = %d", tr.TotalLaunches())
	}
	if tr.TotalEdgeWork() != 18 {
		t.Errorf("total work = %d, want 18", tr.TotalEdgeWork())
	}
}

func TestBarrierRoundAndDegree(t *testing.T) {
	g := starGraph(5)
	rt := NewRuntime("t", g)
	k := rt.Launch("k")
	k.BarrierRound()
	k.BarrierRound()
	k.ForAll([]int32{0}, func(it *Item, u int32) {
		if it.Degree(0) != 5 {
			t.Errorf("degree = %d, want 5", it.Degree(0))
		}
		it.Work(3)
		it.RandomAccess(7)
	})
	k.End()
	s := rt.Trace().Launches[0]
	if s.LocalBarrierRounds != 2 {
		t.Errorf("barrier rounds = %d", s.LocalBarrierRounds)
	}
	if s.TotalWork != 3 || s.RandomAccesses != 7 {
		t.Errorf("work %d / RA %d", s.TotalWork, s.RandomAccesses)
	}
}

func TestAtomicMin64(t *testing.T) {
	rt := NewRuntime("t", lineGraph(2))
	k := rt.Launch("k")
	arr := []int64{100}
	k.ForAll([]int32{0}, func(it *Item, u int32) {
		if !it.AtomicMin64(arr, 0, 50) {
			t.Error("50 should improve 100")
		}
		if it.AtomicMin64(arr, 0, 60) {
			t.Error("60 should not improve 50")
		}
	})
	k.End()
	if arr[0] != 50 {
		t.Errorf("final = %d", arr[0])
	}
	if rt.Trace().Launches[0].AtomicRMWs != 2 {
		t.Errorf("RMWs = %d", rt.Trace().Launches[0].AtomicRMWs)
	}
}
